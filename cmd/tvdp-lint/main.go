// Command tvdp-lint runs TVDP's invariant analyzers (internal/lint) over
// the module: lockorder, determinism, walpath, errdiscard, ctxflow,
// sqrtscan, guardedby, golifecycle, fsyncorder.
//
// Usage:
//
//	tvdp-lint ./...                        # whole module (the CI gate)
//	tvdp-lint ./internal/store             # restrict findings to a subtree
//	tvdp-lint ./internal/lint/testdata/lockorder   # lint a fixture package
//	tvdp-lint -list                        # print the analyzer registry
//	tvdp-lint -json ./...                  # machine-readable findings
//
// Exit status: 0 when clean, 1 when any finding survives nolint
// suppression, 2 on load or usage errors. Findings print one per line as
//
//	file:line:col: [analyzer] message (fix: hint)
//
// or, with -json, as one JSON object per line
//
//	{"file":...,"line":...,"col":...,"analyzer":...,"message":...,"hint":...}
//
// in the same deterministic order and with the same exit status, so CI
// and editors can consume findings without parsing prose.
//
// Suppression: //tvdp:nolint <analyzer>[,<analyzer>] <reason> on the
// offending line or the line above. The reason is mandatory; a bare
// directive suppresses nothing and is itself a finding, and a directive
// that no longer suppresses anything is reported as stale.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

// jsonFinding is the -json wire shape: one object per line.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Hint     string `json:"hint,omitempty"`
}

func main() {
	list := flag.Bool("list", false, "print the analyzer registry and exit")
	jsonOut := flag.Bool("json", false, "emit findings as one JSON object per line")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tvdp-lint [-list] [-json] [packages]\n\npackages: ./... for the whole module, directories for a subtree,\nor a testdata fixture directory for a standalone package.\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name(), a.Doc())
		}
		return
	}

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}

	findings, err := run(args, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tvdp-lint:", err)
		os.Exit(2)
	}
	enc := json.NewEncoder(os.Stdout)
	for _, f := range findings {
		if *jsonOut {
			if err := enc.Encode(jsonFinding{
				File:     f.Pos.Filename,
				Line:     f.Pos.Line,
				Col:      f.Pos.Column,
				Analyzer: f.Analyzer,
				Message:  f.Message,
				Hint:     f.Hint,
			}); err != nil {
				fmt.Fprintln(os.Stderr, "tvdp-lint:", err)
				os.Exit(2)
			}
			continue
		}
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "tvdp-lint: %d invariant finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func run(args []string, analyzers []lint.Analyzer) ([]lint.Finding, error) {
	// Fixture directories (under a testdata tree) load standalone, with
	// the path-scoped analyzers widened to cover them; everything else is
	// a selector over the module load.
	var fixtures, selectors []string
	wholeModule := false
	for _, a := range args {
		switch {
		case strings.Contains(a, "testdata"):
			fixtures = append(fixtures, a)
		case a == "./..." || a == "...":
			wholeModule = true
		default:
			selectors = append(selectors, strings.TrimSuffix(a, "/..."))
		}
	}

	var findings []lint.Finding
	if wholeModule || len(selectors) > 0 {
		root, err := moduleRoot()
		if err != nil {
			return nil, err
		}
		pkgs, err := lint.LoadModule(root)
		if err != nil {
			return nil, err
		}
		fs := lint.Run(pkgs, analyzers)
		if !wholeModule {
			fs, err = filterToDirs(fs, selectors)
			if err != nil {
				return nil, err
			}
		}
		findings = append(findings, fs...)
	}
	for _, dir := range fixtures {
		pkg, err := lint.LoadFixture(dir)
		if err != nil {
			return nil, err
		}
		findings = append(findings, lint.Run([]*lint.Package{pkg}, fixtureAnalyzers())...)
	}
	return findings, nil
}

// fixtureAnalyzers widens the path-scoped analyzers to the fixture
// namespace so a testdata package exercises every rule.
func fixtureAnalyzers() []lint.Analyzer {
	det := lint.NewDeterminism()
	det.Scope = []string{"fixture"}
	ed := lint.NewErrDiscard()
	ed.Scope = []string{"fixture"}
	cf := lint.NewCtxFlow()
	cf.BackgroundScope = []string{"fixture"}
	sq := lint.NewSqrtScan()
	sq.Scope = []string{"fixture"}
	gl := lint.NewGoLifecycle()
	gl.Scope = []string{"fixture"}
	fo := lint.NewFsyncOrder()
	fo.Scope = []string{"fixture"}
	return []lint.Analyzer{lint.NewLockOrder(), det, lint.NewWALPath(), ed, cf, sq, lint.NewGuardedBy(), gl, fo}
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// filterToDirs keeps findings whose file lives under one of the selector
// directories.
func filterToDirs(fs []lint.Finding, dirs []string) ([]lint.Finding, error) {
	var roots []string
	for _, d := range dirs {
		abs, err := filepath.Abs(d)
		if err != nil {
			return nil, err
		}
		roots = append(roots, abs)
	}
	var out []lint.Finding
	for _, f := range fs {
		abs, err := filepath.Abs(f.Pos.Filename)
		if err != nil {
			return nil, err
		}
		for _, r := range roots {
			if abs == r || strings.HasPrefix(abs, r+string(filepath.Separator)) {
				out = append(out, f)
				break
			}
		}
	}
	return out, nil
}
