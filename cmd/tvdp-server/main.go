// Command tvdp-server runs the TVDP REST platform (paper §V).
//
// Usage:
//
//	tvdp-server -addr :8080 -dir ./data          # durable store
//	tvdp-server -addr :8080 -demo 200            # seed a demo corpus,
//	                                             # print a ready API key
//	tvdp-server -addr :8080 -pprof :6060         # profiling side listener
//
// Lifecycle: SIGINT/SIGTERM triggers a graceful shutdown — the listener
// stops accepting, in-flight requests drain for up to -shutdown-grace,
// the group-commit committer quiesces, and the store snapshots and closes
// so the next open replays nothing. A clean shutdown exits 0.
//
// With -pprof, net/http/pprof is served on its own listener (never the
// API address), so serving-path contention is inspectable live:
//
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=10
//
// The demo mode ingests a labelled synthetic street-scene corpus, trains
// a cleanliness model over colour features, and prints a bootstrap API
// key so `curl` works immediately.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	tvdp "repro"
	"repro/internal/analysis"
	"repro/internal/feature"
	"repro/internal/store"
	"repro/internal/synth"
)

func main() {
	logger := log.New(os.Stderr, "tvdp ", log.LstdFlags)
	if err := run(logger); err != nil {
		logger.Printf("fatal: %v", err)
		os.Exit(1)
	}
}

// run owns the whole process lifecycle so that every exit path — flag
// errors, seed failures, server faults, signals — releases the platform
// (WAL close, committer quiesce) before the process ends. log.Fatalf is
// banned here: it would skip the deferred Close and leave the next open
// to replay the WAL.
func run(logger *log.Logger) error {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		dir        = flag.String("dir", "", "durability directory (empty = in-memory)")
		shards     = flag.Int("shards", 1, "partition the corpus across N store shards (1 = single store)")
		engine     = flag.String("engine", "segment", "persistence engine: segment (incremental, default) or snapshot (legacy full-snapshot)")
		walSync    = flag.String("wal-sync", "batch", "WAL durability: batch (one write per group-commit), immediate (fsync per batch), none (in-memory buffer)")
		flushThr   = flag.Int64("flush-threshold", 0, "segment engine: flush the memtable after this many WAL bytes (0 = default 8 MiB)")
		snapEvery  = flag.Int("snapshot-every", 0, "snapshot engine: auto-compact the WAL after N mutations (0 disables)")
		demo       = flag.Int("demo", 0, "seed N labelled synthetic images and train a demo model")
		seed       = flag.Int64("seed", 1, "demo corpus seed")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this side address (e.g. :6060); empty disables")
		reqTimeout = flag.Duration("request-timeout", 30*time.Second, "per-request deadline budget")
		grace      = flag.Duration("shutdown-grace", 10*time.Second, "in-flight drain budget after SIGINT/SIGTERM")
		rateLimit  = flag.Float64("rate-limit", 0, "admitted requests/sec per client before shedding 429s (0 disables)")
		rateBurst  = flag.Int("rate-burst", 0, "admission bucket capacity (0 derives from -rate-limit)")
		ingWork    = flag.Int("ingest-workers", 0, "streaming-ingest pipeline partitions (0 = default)")
		ingQueue   = flag.Int("ingest-queue", 0, "per-partition ingest queue depth before uploads shed 429s (0 = default)")
	)
	flag.Parse()

	// ctx is the process lifecycle: cancelled on the first SIGINT/SIGTERM.
	// A second signal kills the process the default way (stop() restores
	// default handling once ctx is done).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *pprofAddr != "" {
		// The pprof import registers its handlers on http.DefaultServeMux;
		// serving that mux on a separate listener keeps the profiling
		// surface off the API address. ReadHeaderTimeout keeps the side
		// listener Slowloris-proof.
		side := &http.Server{
			Addr:              *pprofAddr,
			Handler:           http.DefaultServeMux,
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			logger.Printf("pprof listening on %s", *pprofAddr)
			if err := side.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Printf("pprof listener: %v", err)
			}
		}()
		defer side.Close()
	}

	eng, err := store.ParseEngine(*engine)
	if err != nil {
		return err
	}
	syncMode, err := store.ParseWALSyncMode(*walSync)
	if err != nil {
		return err
	}
	p, err := tvdp.Open(tvdp.Config{
		Dir:            *dir,
		ShardCount:     *shards,
		Engine:         eng,
		WALSync:        syncMode,
		FlushThreshold: *flushThr,
		SnapshotEvery:  *snapEvery,
		IngestWorkers:  *ingWork,
		IngestQueue:    *ingQueue,
	})
	if err != nil {
		return err
	}
	defer func() {
		if err := p.Close(); err != nil {
			logger.Printf("closing platform: %v", err)
		}
	}()

	if *demo > 0 {
		if err := seedDemo(ctx, p, *demo, *seed, logger); err != nil {
			return err
		}
	}

	st := p.Stats()
	logger.Printf("platform ready: %d images, %d classifications, %d models, features %v",
		st.Images, st.Classifications, st.Models, st.FeatureKinds)
	logger.Printf("listening on %s", *addr)
	err = p.Serve(ctx, tvdp.ServeConfig{
		Addr:           *addr,
		Logger:         logger,
		RequestTimeout: *reqTimeout,
		ShutdownGrace:  *grace,
		RateLimit:      *rateLimit,
		RateBurst:      *rateBurst,
	})
	if err != nil {
		return err
	}
	// Clean drain: snapshot now so the next open is replay-free, then let
	// the deferred Close quiesce the committer and close the WAL.
	logger.Printf("drained; snapshotting store")
	if err := p.Store.Snapshot(); err != nil {
		return err
	}
	logger.Printf("shutdown complete")
	return nil
}

func seedDemo(ctx context.Context, p *tvdp.Platform, n int, seed int64, logger *log.Logger) error {
	if _, err := p.CreateClassification("street_cleanliness", synth.ClassNames[:]); err != nil {
		return err
	}
	g, err := synth.NewGenerator(synth.DefaultConfig(n, seed))
	if err != nil {
		return err
	}
	for _, rec := range g.Generate(n) {
		id, err := p.IngestRecord(ctx, rec)
		if err != nil {
			return err
		}
		if err := p.AnnotateHuman(id, "street_cleanliness", int(rec.Class), rec.CapturedAt); err != nil {
			return err
		}
	}
	spec, err := p.TrainModel(ctx, analysis.TrainConfig{
		Name:           "cleanliness-demo",
		Classification: "street_cleanliness",
		FeatureKind:    string(feature.KindColorHist),
		HoldoutFrac:    0.2,
		Owner:          "demo",
		Seed:           seed,
	})
	if err != nil {
		return err
	}
	logger.Printf("demo model %q trained on %d images (validation F1 %.3f)", spec.Name, spec.TrainedOn, spec.MacroF1)

	uid, err := p.Store.CreateUser("demo", "government")
	if err != nil {
		return err
	}
	key, err := p.Store.IssueAPIKey(uid, time.Now())
	if err != nil {
		return err
	}
	logger.Printf("demo API key: %s", key)
	logger.Printf(`try: curl -H "X-API-Key: %s" localhost%s/api/v1/classifications`, key, flag.Lookup("addr").Value)
	return nil
}
