// Command tvdp-server runs the TVDP REST platform (paper §V).
//
// Usage:
//
//	tvdp-server -addr :8080 -dir ./data          # durable store
//	tvdp-server -addr :8080 -demo 200            # seed a demo corpus,
//	                                             # print a ready API key
//	tvdp-server -addr :8080 -pprof :6060         # profiling side listener
//
// With -pprof, net/http/pprof is served on its own listener (never the
// API address), so serving-path contention is inspectable live:
//
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=10
//
// The demo mode ingests a labelled synthetic street-scene corpus, trains
// a cleanliness model over colour features, and prints a bootstrap API
// key so `curl` works immediately.
package main

import (
	"flag"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"time"

	tvdp "repro"
	"repro/internal/analysis"
	"repro/internal/feature"
	"repro/internal/synth"
)

func main() {
	var (
		addr  = flag.String("addr", ":8080", "listen address")
		dir   = flag.String("dir", "", "durability directory (empty = in-memory)")
		demo  = flag.Int("demo", 0, "seed N labelled synthetic images and train a demo model")
		seed  = flag.Int64("seed", 1, "demo corpus seed")
		pprof = flag.String("pprof", "", "serve net/http/pprof on this side address (e.g. :6060); empty disables")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "tvdp ", log.LstdFlags)

	if *pprof != "" {
		// The pprof import registers its handlers on http.DefaultServeMux;
		// serving that mux on a separate listener keeps the profiling
		// surface off the API address.
		go func() {
			logger.Printf("pprof listening on %s", *pprof)
			if err := http.ListenAndServe(*pprof, nil); err != nil {
				logger.Printf("pprof listener: %v", err)
			}
		}()
	}

	p, err := tvdp.Open(tvdp.Config{Dir: *dir})
	if err != nil {
		logger.Fatalf("opening platform: %v", err)
	}
	defer p.Close()

	if *demo > 0 {
		if err := seedDemo(p, *demo, *seed, logger); err != nil {
			logger.Fatalf("seeding demo: %v", err)
		}
	}

	st := p.Stats()
	logger.Printf("platform ready: %d images, %d classifications, %d models, features %v",
		st.Images, st.Classifications, st.Models, st.FeatureKinds)
	logger.Printf("listening on %s", *addr)
	if err := p.Serve(*addr, logger); err != nil {
		logger.Fatalf("server: %v", err)
	}
}

func seedDemo(p *tvdp.Platform, n int, seed int64, logger *log.Logger) error {
	if _, err := p.CreateClassification("street_cleanliness", synth.ClassNames[:]); err != nil {
		return err
	}
	g, err := synth.NewGenerator(synth.DefaultConfig(n, seed))
	if err != nil {
		return err
	}
	for _, rec := range g.Generate(n) {
		id, err := p.IngestRecord(rec)
		if err != nil {
			return err
		}
		if err := p.AnnotateHuman(id, "street_cleanliness", int(rec.Class), rec.CapturedAt); err != nil {
			return err
		}
	}
	spec, err := p.TrainModel(analysis.TrainConfig{
		Name:           "cleanliness-demo",
		Classification: "street_cleanliness",
		FeatureKind:    string(feature.KindColorHist),
		HoldoutFrac:    0.2,
		Owner:          "demo",
		Seed:           seed,
	})
	if err != nil {
		return err
	}
	logger.Printf("demo model %q trained on %d images (validation F1 %.3f)", spec.Name, spec.TrainedOn, spec.MacroF1)

	uid, err := p.Store.CreateUser("demo", "government")
	if err != nil {
		return err
	}
	key, err := p.Store.IssueAPIKey(uid, time.Now())
	if err != nil {
		return err
	}
	logger.Printf("demo API key: %s", key)
	logger.Printf(`try: curl -H "X-API-Key: %s" localhost%s/api/v1/classifications`, key, flag.Lookup("addr").Value)
	return nil
}
