// Command tvdp-ingest bulk-loads a synthetic street-scene corpus into a
// durable TVDP store directory, optionally with ground-truth labels —
// the batch equivalent of the LASAN garbage-truck collection runs (§II).
//
// Usage:
//
//	tvdp-ingest -dir ./data -n 1000 -label
package main

import (
	"context"
	"flag"
	"log"
	"time"

	tvdp "repro"
	"repro/internal/par"
	"repro/internal/synth"
)

func main() {
	ctx := context.Background()
	var (
		dir     = flag.String("dir", "", "store directory (required)")
		n       = flag.Int("n", 500, "number of images to generate")
		seed    = flag.Int64("seed", 1, "generator seed")
		label   = flag.Bool("label", true, "attach ground-truth cleanliness labels")
		workers = flag.Int("workers", 0, "worker goroutines for corpus rendering (0 = all CPUs); output is identical for any value")
	)
	flag.Parse()
	log.SetFlags(0)
	if *dir == "" {
		log.Fatal("-dir is required")
	}
	if *workers > 0 {
		par.SetWorkers(*workers)
	}
	log.Printf("rendering with %d worker(s)", par.Workers())
	p, err := tvdp.Open(tvdp.Config{Dir: *dir})
	if err != nil {
		log.Fatalf("opening platform: %v", err)
	}
	defer p.Close()

	if *label {
		if _, err := p.CreateClassification("street_cleanliness", synth.ClassNames[:]); err != nil {
			// Re-running against an existing store is fine.
			log.Printf("classification: %v (continuing)", err)
		}
	}
	g, err := synth.NewGenerator(synth.DefaultConfig(*n, *seed))
	if err != nil {
		log.Fatalf("generator: %v", err)
	}
	start := time.Now()
	for i, rec := range g.Generate(*n) {
		id, err := p.IngestRecord(ctx, rec)
		if err != nil {
			log.Fatalf("ingesting record %d: %v", i, err)
		}
		if *label {
			if err := p.AnnotateHuman(id, "street_cleanliness", int(rec.Class), rec.CapturedAt); err != nil {
				log.Fatalf("labelling record %d: %v", i, err)
			}
		}
		if (i+1)%500 == 0 {
			log.Printf("ingested %d/%d", i+1, *n)
		}
	}
	if err := p.Store.Snapshot(); err != nil {
		log.Fatalf("snapshot: %v", err)
	}
	log.Printf("done: %d images into %s in %s (snapshot written)",
		*n, *dir, time.Since(start).Round(time.Millisecond))
}
