// Command tvdp-ingest bulk-loads a synthetic street-scene corpus into a
// durable TVDP store directory, optionally with ground-truth labels —
// the batch equivalent of the LASAN garbage-truck collection runs (§II).
//
// Usage:
//
//	tvdp-ingest -dir ./data -n 1000 -label
//	tvdp-ingest -dir ./data -n 1000 -stream -ingest-workers 4
//
// Two ingest modes share the platform's staged pipeline:
//
//   - default (sync): each record is persisted, extracted, and indexed
//     before the next one starts — the legacy inline path, now routed
//     through ingest.SubmitSync so its semantics match the REST tier.
//   - -stream: records are acked as soon as they are WAL-durable and
//     extraction/indexing runs on partitioned pipeline workers. When a
//     partition's queue fills, admission sheds and this command backs
//     off and resubmits — the CLI face of the API's 429 contract.
//
// -refresh-every N snapshots the store off-path after every N
// extractions, the maintenance hook the paper's retraining loop plugs
// into.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"sync/atomic"
	"time"

	tvdp "repro"
	"repro/internal/ingest"
	"repro/internal/par"
	"repro/internal/synth"
)

func main() {
	ctx := context.Background()
	var (
		dir      = flag.String("dir", "", "store directory (required)")
		n        = flag.Int("n", 500, "number of images to generate")
		seed     = flag.Int64("seed", 1, "generator seed")
		label    = flag.Bool("label", true, "attach ground-truth cleanliness labels")
		workers  = flag.Int("workers", 0, "worker goroutines for corpus rendering (0 = all CPUs); output is identical for any value")
		stream   = flag.Bool("stream", false, "ack at WAL commit and extract on pipeline workers (default: inline sync)")
		ingWork  = flag.Int("ingest-workers", 0, "streaming pipeline partitions (0 = default)")
		ingQueue = flag.Int("ingest-queue", 0, "per-partition queue depth before admission sheds (0 = default)")
		refresh  = flag.Int("refresh-every", 0, "snapshot the store off-path after every N extractions (0 disables)")
	)
	flag.Parse()
	log.SetFlags(0)
	if *dir == "" {
		log.Fatal("-dir is required")
	}
	if *workers > 0 {
		par.SetWorkers(*workers)
	}
	log.Printf("rendering with %d worker(s)", par.Workers())
	cfg := tvdp.Config{
		Dir:           *dir,
		IngestWorkers: *ingWork,
		IngestQueue:   *ingQueue,
	}
	// The refresh hook needs the platform, which Open hasn't returned yet
	// when the config is built; it fires only after extractions complete,
	// but the pointer still crosses goroutines, hence the atomic.
	var plat atomic.Pointer[tvdp.Platform]
	if *refresh > 0 {
		cfg.IngestRefreshEvery = *refresh
		cfg.OnIngestRefresh = func(context.Context) error {
			p := plat.Load()
			if p == nil {
				return nil
			}
			return p.Store.Snapshot()
		}
	}
	p, err := tvdp.Open(cfg)
	if err != nil {
		log.Fatalf("opening platform: %v", err)
	}
	plat.Store(p)
	defer p.Close()

	if *label {
		if _, err := p.CreateClassification("street_cleanliness", synth.ClassNames[:]); err != nil {
			// Re-running against an existing store is fine.
			log.Printf("classification: %v (continuing)", err)
		}
	}
	g, err := synth.NewGenerator(synth.DefaultConfig(*n, *seed))
	if err != nil {
		log.Fatalf("generator: %v", err)
	}
	start := time.Now()
	var shed int
	for i, rec := range g.Generate(*n) {
		id, err := submit(ctx, p, rec, *stream, &shed)
		if err != nil {
			log.Fatalf("ingesting record %d: %v", i, err)
		}
		if *label {
			// The ack point guarantees the row is durable, so labelling
			// against the ID is safe even while extraction is still queued.
			if err := p.AnnotateHuman(id, "street_cleanliness", int(rec.Class), rec.CapturedAt); err != nil {
				log.Fatalf("labelling record %d: %v", i, err)
			}
		}
		if (i+1)%500 == 0 {
			log.Printf("ingested %d/%d", i+1, *n)
		}
	}
	if *stream {
		// Let the pipeline finish extraction/indexing before the snapshot.
		if err := p.Pipeline.Drain(ctx); err != nil {
			log.Fatalf("draining pipeline: %v", err)
		}
		if shed > 0 {
			log.Printf("backpressure: %d submissions shed and resubmitted", shed)
		}
	}
	if err := p.Store.Snapshot(); err != nil {
		log.Fatalf("snapshot: %v", err)
	}
	log.Printf("done: %d images into %s in %s (snapshot written)",
		*n, *dir, time.Since(start).Round(time.Millisecond))
}

// submit routes one record through the pipeline. In stream mode a shed
// (ErrBusy: queue full, nothing persisted) backs off and resubmits —
// at-least-once with no duplicates, because a shed record never reached
// the WAL.
func submit(ctx context.Context, p *tvdp.Platform, rec synth.Record, stream bool, shed *int) (uint64, error) {
	if !stream {
		return p.IngestRecord(ctx, rec)
	}
	for {
		id, err := p.IngestRecordAsync(ctx, rec)
		if !errors.Is(err, ingest.ErrBusy) {
			return id, err
		}
		*shed++
		time.Sleep(2 * time.Millisecond)
	}
}
