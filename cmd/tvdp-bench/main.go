// Command tvdp-bench regenerates the paper's evaluation figures (§VII)
// and the DESIGN.md ablation studies as text tables.
//
// Usage:
//
//	tvdp-bench -fig all                 # Fig. 6, 7, 8 at harness scale
//	tvdp-bench -fig 6 -n 2000 -folds 10 # bigger corpus, paper's 10-fold CV
//	tvdp-bench -ablations               # A1..A7
//	tvdp-bench -fig all -scale paper    # paper-scale corpus (slow)
//	tvdp-bench -figure serving          # mixed read/write throughput,
//	                                    # baseline mutex vs concurrent path
//	tvdp-bench -figure readpath         # exact vs quantized vs cached
//	                                    # visual search + quantized recall
//	tvdp-bench -figure sharding         # scatter-gather scaling: mixed
//	                                    # workload at 1, 2, 4, 8 shards
//	tvdp-bench -figure persistence      # snapshot vs segment engine:
//	                                    # p99 and max single-op stall
//	tvdp-bench -figure ingest           # inline vs streaming ack latency
//	                                    # at paced load + recall parity
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/par"
)

func main() {
	var (
		fig       = flag.String("fig", "", "figure to regenerate: 6, 7, 8, or all")
		figure    = flag.String("figure", "", "alias for -fig; also accepts \"serving\" and \"readpath\"")
		ablations = flag.Bool("ablations", false, "run the A1..A7 ablation studies")
		n         = flag.Int("n", 0, "override corpus size")
		folds     = flag.Int("folds", 0, "cross-validation folds for Fig. 6 (0 = skip)")
		scaleName = flag.String("scale", "default", "corpus scale: smoke, default, or paper")
		seed      = flag.Int64("seed", 2, "experiment seed")
		workers   = flag.Int("workers", 0, "worker goroutines for parallel stages (0 = all CPUs); results are identical for any value")

		clients  = flag.Int("clients", 8, "serving/sharding: concurrent workload clients")
		readfrac = flag.Float64("readfrac", 0.5, "serving/sharding: fraction of ops that are reads")
		duration = flag.Duration("duration", 2*time.Second, "serving/sharding: measured window per mode")
		preload  = flag.Int("preload", 64, "serving/sharding: images preloaded before timing")
		sync     = flag.Bool("sync", true, "serving/sharding: fsync every write (SyncEveryWrite)")
		out      = flag.String("out", "", "serving/readpath/sharding: output JSON path (default BENCH_<figure>.json)")

		timingN       = flag.Int("timing-n", 0, "readpath: timing-store vector count (0 = default 20000)")
		timingQueries = flag.Int("timing-queries", 0, "readpath: timed queries per mode (0 = default 240)")

		rate = flag.Int("rate", 0, "persistence/ingest: paced total ops/sec across clients (0 = figure default; negative = unpaced saturating)")

		records = flag.Int("records", 0, "ingest: uploads per mode (0 = figure default)")
		bowK    = flag.Int("bow-vocab", 0, "ingest: SIFT-BoW vocabulary size (0 = figure default)")
	)
	flag.Parse()
	special := *figure == "serving" || *figure == "readpath" || *figure == "sharding" || *figure == "persistence" || *figure == "ingest"
	if *fig == "" && *figure != "" && !special {
		*fig = *figure
	}
	if *fig == "" && !*ablations && !special {
		flag.Usage()
		os.Exit(2)
	}
	log.SetFlags(0)

	if *figure == "serving" {
		path := *out
		if path == "" {
			path = "BENCH_serving.json"
		}
		runServing(*clients, *readfrac, *duration, *preload, *sync, *seed, path)
		return
	}
	if *figure == "readpath" {
		path := *out
		if path == "" {
			path = "BENCH_readpath.json"
		}
		runReadpath(*scaleName, *seed, *timingN, *timingQueries, path)
		return
	}
	if *figure == "sharding" {
		path := *out
		if path == "" {
			path = "BENCH_sharding.json"
		}
		// Sharding has its own workload defaults (big preload, no
		// per-write fsync); a shared flag only overrides the config when
		// the user set it explicitly.
		cfg := experiments.DefaultShardingConfig()
		cfg.Seed = *seed
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "clients":
				cfg.Clients = *clients
			case "readfrac":
				cfg.ReadFrac = *readfrac
			case "duration":
				cfg.Duration = *duration
			case "preload":
				cfg.Preload = *preload
			case "sync":
				cfg.Sync = *sync
			}
		})
		runSharding(cfg, path)
		return
	}
	if *figure == "persistence" {
		path := *out
		if path == "" {
			path = "BENCH_persistence.json"
		}
		// Like sharding, the persistence figure has its own defaults (big
		// preload so snapshot rewrites visibly stall); shared flags only
		// override when set explicitly.
		cfg := experiments.DefaultPersistenceConfig()
		cfg.Seed = *seed
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "clients":
				cfg.Clients = *clients
			case "readfrac":
				cfg.ReadFrac = *readfrac
			case "duration":
				cfg.Duration = *duration
			case "preload":
				cfg.Preload = *preload
			case "rate":
				cfg.TargetOps = *rate
				if *rate < 0 {
					cfg.TargetOps = 0 // unpaced: clients saturate
				}
			}
		})
		runPersistence(cfg, path)
		return
	}
	if *figure == "ingest" {
		path := *out
		if path == "" {
			path = "BENCH_ingest.json"
		}
		cfg := experiments.DefaultIngestConfig()
		cfg.Seed = *seed
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "clients":
				cfg.Clients = *clients
			case "records":
				cfg.Records = *records
			case "bow-vocab":
				cfg.BoWVocab = *bowK
			case "rate":
				cfg.TargetOps = *rate
				if *rate < 0 {
					cfg.TargetOps = 0 // unpaced: clients saturate
				}
			}
		})
		runIngest(cfg, path)
		return
	}

	if *workers > 0 {
		par.SetWorkers(*workers)
	}
	log.Printf("parallel stages: %d worker(s)", par.Workers())

	scale := experiments.DefaultScale()
	switch *scaleName {
	case "smoke":
		scale = experiments.SmokeScale()
	case "default":
	case "paper":
		scale = experiments.PaperScale()
		log.Printf("paper scale selected: N=%d, BoW vocab=%d — expect hours on one core", scale.N, scale.BoWVocab)
	default:
		log.Fatalf("unknown scale %q", *scaleName)
	}
	if *n > 0 {
		scale.N = *n
	}
	scale.Seed = *seed

	needCorpus := *fig == "6" || *fig == "7" || *fig == "all"
	var corpus *experiments.Corpus
	if needCorpus {
		log.Printf("building corpus: N=%d (seed %d)...", scale.N, scale.Seed)
		start := time.Now()
		var err error
		corpus, err = experiments.BuildCorpus(scale)
		if err != nil {
			log.Fatalf("building corpus: %v", err)
		}
		log.Printf("corpus ready in %s (features: colour, SIFT-BoW, CNN)", time.Since(start).Round(time.Millisecond))
	}

	if *fig == "6" || *fig == "all" {
		start := time.Now()
		r, err := experiments.RunFig6(corpus, *folds)
		if err != nil {
			log.Fatalf("fig 6: %v", err)
		}
		fmt.Println(r.Render())
		for _, kind := range experiments.FeatureNames {
			name, f1 := r.Best(kind)
			fmt.Printf("  best for %-12s %-14s F1=%.3f\n", kind, name, f1)
		}
		fmt.Printf("  (elapsed %s, %d worker(s))\n\n", time.Since(start).Round(time.Millisecond), par.Workers())
	}
	if *fig == "7" || *fig == "all" {
		start := time.Now()
		r, err := experiments.RunFig7(corpus)
		if err != nil {
			log.Fatalf("fig 7: %v", err)
		}
		fmt.Println(r.Render())
		best, worst := r.CNNBestWorst()
		fmt.Printf("  CNN best category: %s, worst: %s\n", best, worst)
		fmt.Printf("  (elapsed %s, %d worker(s))\n\n", time.Since(start).Round(time.Millisecond), par.Workers())
	}
	if *fig == "8" || *fig == "all" {
		start := time.Now()
		r := experiments.RunFig8(*seed, 50)
		fmt.Println(r.Render())
		fmt.Printf("  (elapsed %s, %d worker(s))\n\n", time.Since(start).Round(time.Millisecond), par.Workers())
	}

	if *ablations {
		runAblations(*seed)
	}
}

func runServing(clients int, readfrac float64, duration time.Duration, preload int, sync bool, seed int64, out string) {
	cfg := experiments.ServingConfig{
		Clients: clients, ReadFrac: readfrac, Duration: duration,
		Preload: preload, Sync: sync, Seed: seed,
	}
	log.Printf("serving bench: %d clients, %.0f%% reads, %s per mode, sync=%v",
		cfg.Clients, cfg.ReadFrac*100, cfg.Duration, cfg.Sync)
	r, err := experiments.RunServing(cfg)
	if err != nil {
		log.Fatalf("serving: %v", err)
	}
	fmt.Println(r.Render())
	if out != "" {
		if err := r.WriteJSON(out); err != nil {
			log.Fatalf("serving: writing %s: %v", out, err)
		}
		log.Printf("wrote %s", out)
	}
}

func runSharding(cfg experiments.ShardingConfig, out string) {
	log.Printf("sharding bench: counts %v, %d clients, %.0f%% reads, %s per count, preload %d, sync=%v, snapshot every %d",
		cfg.Counts, cfg.Clients, cfg.ReadFrac*100, cfg.Duration, cfg.Preload, cfg.Sync, cfg.SnapshotEvery)
	r, err := experiments.RunSharding(cfg)
	if err != nil {
		log.Fatalf("sharding: %v", err)
	}
	fmt.Println(r.Render())
	if out != "" {
		if err := r.WriteJSON(out); err != nil {
			log.Fatalf("sharding: writing %s: %v", out, err)
		}
		log.Printf("wrote %s", out)
	}
}

func runPersistence(cfg experiments.PersistenceConfig, out string) {
	pace := "unpaced"
	if cfg.TargetOps > 0 {
		pace = fmt.Sprintf("%d ops/sec", cfg.TargetOps)
	}
	log.Printf("persistence bench: %d clients, %.0f%% reads, %s per engine at %s, preload %d, snapshot every %d vs flush at %d KiB",
		cfg.Clients, cfg.ReadFrac*100, cfg.Duration, pace, cfg.Preload, cfg.SnapshotEvery, cfg.FlushThreshold>>10)
	r, err := experiments.RunPersistence(cfg)
	if err != nil {
		log.Fatalf("persistence: %v", err)
	}
	fmt.Println(r.Render())
	if out != "" {
		if err := r.WriteJSON(out); err != nil {
			log.Fatalf("persistence: writing %s: %v", out, err)
		}
		log.Printf("wrote %s", out)
	}
}

func runIngest(cfg experiments.IngestConfig, out string) {
	pace := "unpaced"
	if cfg.TargetOps > 0 {
		pace = fmt.Sprintf("%d uploads/sec", cfg.TargetOps)
	}
	log.Printf("ingest bench: %d clients, %d records per mode at %s, BoW vocab %d, %d recall probes @%d",
		cfg.Clients, cfg.Records, pace, cfg.BoWVocab, cfg.Queries, cfg.K)
	r, err := experiments.RunIngest(cfg)
	if err != nil {
		log.Fatalf("ingest: %v", err)
	}
	fmt.Println(r.Render())
	if out != "" {
		if err := r.WriteJSON(out); err != nil {
			log.Fatalf("ingest: writing %s: %v", out, err)
		}
		log.Printf("wrote %s", out)
	}
}

func runReadpath(scaleName string, seed int64, timingN, timingQueries int, out string) {
	cfg := experiments.DefaultReadpathConfig()
	switch scaleName {
	case "smoke":
		cfg.Scale = experiments.SmokeScale()
	case "default", "":
		cfg.Scale = experiments.DefaultScale()
	case "paper":
		cfg.Scale = experiments.PaperScale()
	default:
		log.Fatalf("unknown scale %q", scaleName)
	}
	cfg.Seed = seed
	cfg.Scale.Seed = seed
	if timingN > 0 {
		cfg.TimingN = timingN
	}
	if timingQueries > 0 {
		cfg.TimingQueries = timingQueries
	}
	log.Printf("readpath bench: quality corpus N=%d, timing store N=%d, top-%d (seed %d)",
		cfg.Scale.N, cfg.TimingN, cfg.K, cfg.Seed)
	r, err := experiments.RunReadpath(cfg)
	if err != nil {
		log.Fatalf("readpath: %v", err)
	}
	fmt.Println(r.Render())
	if out != "" {
		if err := r.WriteJSON(out); err != nil {
			log.Fatalf("readpath: writing %s: %v", out, err)
		}
		log.Printf("wrote %s", out)
	}
}

func runAblations(seed int64) {
	if r, err := experiments.RunA1SpatialIndexes(20000, 200, seed); err != nil {
		log.Fatalf("A1: %v", err)
	} else {
		fmt.Println(r.Render())
	}
	if r, err := experiments.RunA2LSHvsExact(20000, 32, 10, 100, seed); err != nil {
		log.Fatalf("A2: %v", err)
	} else {
		fmt.Println(r.Render())
	}
	if r, err := experiments.RunA3Hybrid(3000, 50, seed); err != nil {
		log.Fatalf("A3: %v", err)
	} else {
		fmt.Println(r.Render())
	}
	if r, err := experiments.RunA4Crowd(seed); err != nil {
		log.Fatalf("A4: %v", err)
	} else {
		fmt.Println(r.Render())
	}
	if r, err := experiments.RunA5EdgeSelection(seed); err != nil {
		log.Fatalf("A5: %v", err)
	} else {
		fmt.Println(r.Render())
	}
	dir, err := os.MkdirTemp("", "tvdp-a6-*")
	if err != nil {
		log.Fatalf("A6: %v", err)
	}
	defer os.RemoveAll(dir)
	if r, err := experiments.RunA6Store(dir, 1000, seed); err != nil {
		log.Fatalf("A6: %v", err)
	} else {
		fmt.Println(r.Render())
	}
	if r, err := experiments.RunA7Text(50000, 500, seed); err != nil {
		log.Fatalf("A7: %v", err)
	} else {
		fmt.Println(r.Render())
	}
	if r, err := experiments.RunA8Augmentation(300, seed); err != nil {
		log.Fatalf("A8: %v", err)
	} else {
		fmt.Println(r.Render())
	}
}
