#!/usr/bin/env sh
# CI gate: formatting, vet, build, and the full test suite under the race
# detector. The race run matters here — the par layer fans work out across
# goroutines in most pipeline stages, and the determinism tests exercise
# those paths at several worker counts.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== tvdp-lint (invariant gate) =="
# The in-tree analyzers guard what vet and -race cannot: the store's
# six-lock acquisition order, the pipeline determinism contract, the
# WAL-frames-go-through-the-committer rule, discarded Close/Sync errors
# in the durability layers, the request-lifecycle context contract, the
# guardedby/requires lock annotations, goroutine join paths, and the
# temp+rename+dir-fsync install discipline. A failure here means a
# load-bearing invariant broke — read the finding's fix hint, don't
# reach for nolint.
if ! go run ./cmd/tvdp-lint ./...; then
    echo "tvdp-lint: a platform invariant broke (lock order / determinism / WAL path / error discard / ctx flow / guarded fields / goroutine lifecycle / fsync order)" >&2
    exit 1
fi
# The analyzers themselves must still detect violations: each fixture
# package is a known-bad corpus, so a clean exit on one means the
# analyzer went blind.
for fixture in lockorder determinism walpath errdiscard ctxflow nolint sqrtscan guardedby golifecycle fsyncorder; do
    if go run ./cmd/tvdp-lint "./internal/lint/testdata/$fixture" >/dev/null 2>&1; then
        echo "tvdp-lint: fixture $fixture produced no findings — analyzer regression" >&2
        exit 1
    fi
done

echo "== go build =="
go build ./...

echo "== concurrent serving gate (race) =="
# The decomposed-lock store and group-commit WAL are only correct if the
# mixed-workload and HTTP stress tests are race-clean: a failure here
# should read as "serving concurrency broke", not as a generic suite
# failure.
go test -race -run 'TestConcurrentMixedWorkload|TestGroupCommitBatching|TestImageIDsSortedAcrossDeletesAndReplay|TestGetImageMutationIsolation|TestCloseUnblocksAndFailsMutations' ./internal/store
go test -race -run 'TestConcurrentServingStress' ./internal/api

echo "== read-path cache + admission gate (race) =="
# The result cache's singleflight and generation-stamped invalidation,
# and the token-bucket admission filter, are shared mutable state on the
# hottest path: their tests must stay race-clean, and a failure here
# should read as "read-path caching broke", not as a generic suite
# failure.
go test -race -run 'TestCache|TestCanonicalKey' ./internal/query
go test -race -run 'TestAdmission|TestSearchDimMismatchIs400' ./internal/api

echo "== shard fan-out gate (race) =="
# The scatter-gather coordinator is shared mutable state on every search:
# per-shard context slicing, cancel-on-error, deterministic top-k merge,
# and the global ID allocator must stay race-clean and shard-count
# invariant. A failure here should read as "sharding broke", not as a
# generic suite failure.
go test -race -run 'TestShardCountInvariance|TestFanOutShardError|TestFanOutCancelNoLeak|TestShardCountMismatch|TestClassificationReplication|TestGenerationComposes' ./internal/shard

echo "== segment engine gate (race) =="
# The segmented storage engine's moving parts — freeze-swap flush,
# background compaction, WAL-tail recovery, legacy-snapshot migration,
# and the two-engine query-surface equivalence — must stay race-clean.
# The exhaustive kill-at-every-byte sweeps run in the full race suite
# below; this gate is the fast, named subset so a failure here reads as
# "segment engine broke", not as a generic suite failure.
go test -race -run 'TestSegmentFlushRecoverRoundtrip|TestSegmentCompaction|TestSegmentTombstones|TestSegmentWALTailRecovery|TestSegmentBackgroundFlush|TestLegacySnapshotMigration|TestSnapshotEngineRefusesSegmentDir|TestEngineEquivalence|TestGenerationMovesOnEveryWrite|TestWALSyncModesRoundTrip' ./internal/store

echo "== crash-recovery property tests (race) =="
# Torn-write recovery is its own gate: the kill-at-every-offset sweep, the
# snapshot-crash interleaving, and the reopen-cycle regression must pass
# under the race detector on every build, and a failure here should read
# as "durability broke", not as a generic suite failure.
go test -race -run 'TestKillAtEveryOffset|TestSnapshotPlusWALOffsetSweep|TestSnapshotCrashDiscardsStaleWAL|TestReopenMutateCycles|TestFaultInjectedTornWrites|TestBitFlipSurfacesCorruption|TestLegacyWALMigration' ./internal/store

echo "== ingest pipeline gate (race) =="
# The streaming ingestion tier is staged concurrency end to end:
# partitioned consumer-group workers, slot-token admission that sheds
# before persist, ack-at-WAL-commit, and the recovery sweep that
# re-drives the crash window between persist-ack and index insert. All
# of it must stay race-clean, and a failure here should read as
# "ingestion pipeline broke", not as a generic suite failure.
go test -race -run 'TestAckPrecedesExtraction|TestBackpressureShedsBeforePersist|TestPerSourceOrderingPreserved|TestFailedExtractionTrackedAndSweepRedrives|TestRefreshHookFiresOffPath|TestCloseIsIdempotentAndDrainsQueue|TestPipelineOverShardCoordinator' ./internal/ingest
go test -race -run 'TestStreamEndpointAcksPerRecord|TestUploadBusySheds429WithRetryAfter|TestUploadSyncErrorCarriesAssignedID|TestVideoSyncPartialFrameFailure' ./internal/api
go test -race -run 'TestCrashBetweenAckAndIndexSweepRedrives|TestReopenAfterCleanCloseSweepsNothing' ./internal/core

echo "== graceful shutdown gate (race) =="
# The request-lifecycle contract under the race detector: Serve must stop
# accepting on cancellation, drain in-flight uploads, and leave the store
# reopenable with every acknowledged write intact. Shutdown races the
# drain against live handlers and the committer quiesce, so this gate is
# race-enabled and should read as "graceful shutdown broke" on failure.
go test -race -run 'TestServeStopsOnCancel|TestServeGracefulShutdownDrainsInFlight' ./internal/core
go test -race -run 'TestForCtxCancelNeverDeadlocks|TestForCtxGrainsNeverTear' ./internal/par

echo "== SIGTERM drain smoke =="
# The real-process twin of the gate above: SIGTERM a loaded tvdp-server
# -dir, require exit 0 with the shutdown epilogue logged, then reopen the
# same directory and require the full corpus back (the post-drain snapshot
# makes the reopen replay-free). In-flight drain is covered by the race
# test; this smoke pins the process wiring (signal → drain → snapshot →
# close → exit code).
drain_dir=$(mktemp -d)
drain_port=$((20000 + $$ % 10000))
go build -o "$drain_dir/tvdp-server" ./cmd/tvdp-server
mkdir -p "$drain_dir/data"
"$drain_dir/tvdp-server" -addr "127.0.0.1:$drain_port" -dir "$drain_dir/data" -demo 24 -seed 7 >"$drain_dir/run1.log" 2>&1 &
srv_pid=$!
ready=0
i=0
while [ "$i" -lt 300 ]; do
    if grep -q "listening on" "$drain_dir/run1.log"; then ready=1; break; fi
    i=$((i + 1))
    sleep 0.2
done
if [ "$ready" -ne 1 ]; then
    echo "tvdp-server never became ready" >&2
    cat "$drain_dir/run1.log" >&2
    kill "$srv_pid" 2>/dev/null || true
    exit 1
fi
kill -TERM "$srv_pid"
if ! wait "$srv_pid"; then
    echo "tvdp-server did not exit 0 on SIGTERM" >&2
    cat "$drain_dir/run1.log" >&2
    exit 1
fi
grep -q "shutdown complete" "$drain_dir/run1.log" || {
    echo "tvdp-server exited without the graceful-shutdown epilogue" >&2
    cat "$drain_dir/run1.log" >&2
    exit 1
}
# Reopen: the seeded corpus must be back in full, from the snapshot alone.
"$drain_dir/tvdp-server" -addr "127.0.0.1:$drain_port" -dir "$drain_dir/data" >"$drain_dir/run2.log" 2>&1 &
srv_pid=$!
ready=0
i=0
while [ "$i" -lt 300 ]; do
    if grep -q "listening on" "$drain_dir/run2.log"; then ready=1; break; fi
    i=$((i + 1))
    sleep 0.2
done
if [ "$ready" -ne 1 ]; then
    echo "tvdp-server failed to reopen after graceful shutdown" >&2
    cat "$drain_dir/run2.log" >&2
    kill "$srv_pid" 2>/dev/null || true
    exit 1
fi
grep -q "platform ready: 24 images" "$drain_dir/run2.log" || {
    echo "reopened store lost data across graceful shutdown" >&2
    cat "$drain_dir/run2.log" >&2
    kill "$srv_pid" 2>/dev/null || true
    exit 1
}
kill -TERM "$srv_pid"
wait "$srv_pid" || { echo "reopened tvdp-server did not exit 0 on SIGTERM" >&2; exit 1; }
rm -rf "$drain_dir"

echo "== go test -race =="
go test -race ./...

echo "== serving bench smoke =="
# A short tvdp-bench -figure serving run must produce a well-formed
# BENCH_serving.json (the perf-trajectory artifact); throughput numbers
# from a 300ms window are noise, so only the report shape is checked.
bench_out=$(mktemp -d)
trap 'rm -rf "$bench_out"' EXIT
go run ./cmd/tvdp-bench -figure serving -duration 300ms -clients 4 -preload 16 -out "$bench_out/BENCH_serving.json"
for key in '"figure": "serving"' '"baseline_global_mutex"' '"concurrent"' '"ops_per_sec"' '"speedup_x"' '"p99_ms"' '"fsyncs_per_write"'; do
    if ! grep -q "$key" "$bench_out/BENCH_serving.json"; then
        echo "BENCH_serving.json missing $key" >&2
        exit 1
    fi
done

echo "== readpath bench smoke =="
# A reduced tvdp-bench -figure readpath run must produce a well-formed
# BENCH_readpath.json. Throughput from a tiny timing store is noise, so
# only the report shape is checked — but the quality numbers are real:
# the run itself fails the recall/ordering fields only via the committed
# test suite (TestRunReadpathSmoke), not here.
go run ./cmd/tvdp-bench -figure readpath -scale smoke -timing-n 1500 -timing-queries 24 -out "$bench_out/BENCH_readpath.json"
for key in '"figure": "readpath"' '"quantized"' '"cached"' '"recall_at_k"' '"fig6_ordering_preserved"' '"ops_per_sec"' '"allocs_per_op"' '"quant_speedup_x"'; do
    if ! grep -q "$key" "$bench_out/BENCH_readpath.json"; then
        echo "BENCH_readpath.json missing $key" >&2
        exit 1
    fi
done

echo "== sharding bench smoke =="
# A reduced tvdp-bench -figure sharding run must produce a well-formed
# BENCH_sharding.json. Scaling numbers from a 200ms window are noise, so
# only the report shape is checked — except topk_invariant, which is a
# correctness bit (bit-identical merged results at every shard count)
# and must be true at any scale.
go run ./cmd/tvdp-bench -figure sharding -duration 200ms -clients 4 -preload 64 -out "$bench_out/BENCH_sharding.json"
for key in '"figure": "sharding"' '"shards": 1' '"shards": 8' '"ops_per_sec"' '"speedup_x"' '"p99_ms"' '"snapshot_every"' '"topk_invariant": true'; do
    if ! grep -q "$key" "$bench_out/BENCH_sharding.json"; then
        echo "BENCH_sharding.json missing $key" >&2
        exit 1
    fi
done

echo "== persistence bench smoke =="
# A reduced tvdp-bench -figure persistence run must produce a well-formed
# BENCH_persistence.json. Stall numbers from a 300ms window on a small
# corpus are noise, so only the report shape is checked — the committed
# artifact is regenerated at full scale when the engines change.
go run ./cmd/tvdp-bench -figure persistence -duration 300ms -clients 4 -preload 64 -out "$bench_out/BENCH_persistence.json"
for key in '"figure": "persistence"' '"snapshot"' '"segment"' '"max_stall_ms"' '"flushes"' '"p99_improvement_x"' '"stall_improvement_x"'; do
    if ! grep -q "$key" "$bench_out/BENCH_persistence.json"; then
        echo "BENCH_persistence.json missing $key" >&2
        exit 1
    fi
done

echo "== ingest bench smoke =="
# A reduced tvdp-bench -figure ingest run must produce a well-formed
# BENCH_ingest.json. Ack latencies from a tiny unpaced run are noise, so
# only the report shape is checked — the committed artifact is
# regenerated at full scale when the pipeline changes. recall_at_k is
# checked as a key only; its value is pinned by the package tests.
go run ./cmd/tvdp-bench -figure ingest -records 48 -bow-vocab 8 -clients 2 -rate -1 -out "$bench_out/BENCH_ingest.json"
for key in '"figure": "ingest"' '"inline"' '"streaming"' '"ack_p50_ms"' '"ack_p99_ms"' '"sheds"' '"recall_at_k"' '"ack_p99_improvement_x"' '"recall_delta"'; do
    if ! grep -q "$key" "$bench_out/BENCH_ingest.json"; then
        echo "BENCH_ingest.json missing $key" >&2
        exit 1
    fi
done

echo "CI OK"
