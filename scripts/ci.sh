#!/usr/bin/env sh
# CI gate: formatting, vet, build, and the full test suite under the race
# detector. The race run matters here — the par layer fans work out across
# goroutines in most pipeline stages, and the determinism tests exercise
# those paths at several worker counts.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== crash-recovery property tests (race) =="
# Torn-write recovery is its own gate: the kill-at-every-offset sweep, the
# snapshot-crash interleaving, and the reopen-cycle regression must pass
# under the race detector on every build, and a failure here should read
# as "durability broke", not as a generic suite failure.
go test -race -run 'TestKillAtEveryOffset|TestSnapshotPlusWALOffsetSweep|TestSnapshotCrashDiscardsStaleWAL|TestReopenMutateCycles|TestFaultInjectedTornWrites|TestBitFlipSurfacesCorruption|TestLegacyWALMigration' ./internal/store

echo "== go test -race =="
go test -race ./...

echo "CI OK"
