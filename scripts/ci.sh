#!/usr/bin/env sh
# CI gate: formatting, vet, build, and the full test suite under the race
# detector. The race run matters here — the par layer fans work out across
# goroutines in most pipeline stages, and the determinism tests exercise
# those paths at several worker counts.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "CI OK"
