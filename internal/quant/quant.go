// Package quant implements scalar int8 quantization of feature vectors:
// each dimension d gets an independent uniform grid of 256 levels over
// [Min[d], Min[d]+256·Step[d]], a vector is stored as one byte per
// dimension, and reconstruction returns the centre of the level's cell.
// That cuts vector memory 8× against []float64 — a candidate scan over
// codes stays cache-resident at corpus sizes where the full-precision
// scan is memory-bound — while the per-dimension error stays bounded by
// Step[d]/2 for every in-range coordinate.
//
// Distances against codes are computed asymmetrically (the query stays
// full-precision): Table builds a per-query 256-entry lookup table per
// dimension of squared coordinate distances, and vecmath.SquaredL2Int8
// folds a code against it with one lookup+add per dimension, no
// dequantization and no multiplies. ErrBound converts the per-dimension
// cell radii into a single L2 bound, which is what lets radius queries
// prefilter on quantized distance without false negatives.
package quant

import (
	"errors"
	"fmt"
	"math"
)

// levels is the code alphabet size of one byte.
const levels = 256

// ErrNoVectors reports Train called with nothing to fit.
var ErrNoVectors = errors.New("quant: no vectors to train on")

// ErrDimMismatch reports a vector whose length disagrees with the
// quantizer's dimensionality.
var ErrDimMismatch = errors.New("quant: vector dimension mismatch")

// Scalar is a trained per-dimension min/max quantizer. Min and Step
// define each dimension's grid; both have length Dim.
type Scalar struct {
	Min  []float64
	Step []float64
}

// Train fits a quantizer to vecs: each dimension's grid covers the
// observed [lo, hi] range widened by headroom·(hi−lo) on both sides, so
// vectors drifting slightly outside the training distribution still
// encode without an immediate retrain. headroom < 0 is treated as 0.
func Train(vecs [][]float64, headroom float64) (*Scalar, error) {
	if len(vecs) == 0 {
		return nil, ErrNoVectors
	}
	dim := len(vecs[0])
	if dim == 0 {
		return nil, fmt.Errorf("%w: zero-dimensional vectors", ErrDimMismatch)
	}
	if headroom < 0 {
		headroom = 0
	}
	lo := append([]float64(nil), vecs[0]...)
	hi := append([]float64(nil), vecs[0]...)
	for _, v := range vecs[1:] {
		if len(v) != dim {
			return nil, fmt.Errorf("%w: got %d, want %d", ErrDimMismatch, len(v), dim)
		}
		for d, x := range v {
			if x < lo[d] {
				lo[d] = x
			}
			if x > hi[d] {
				hi[d] = x
			}
		}
	}
	s := &Scalar{Min: make([]float64, dim), Step: make([]float64, dim)}
	for d := range lo {
		span := hi[d] - lo[d]
		pad := headroom * span
		if span == 0 {
			// Constant dimension: give the grid a small symmetric width so
			// Step stays positive and the reconstruction error stays ~0.
			pad = 1e-9 + 1e-9*abs(lo[d])
		}
		s.Min[d] = lo[d] - pad
		s.Step[d] = (span + 2*pad) / levels
	}
	return s, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Dim returns the quantizer's dimensionality.
func (s *Scalar) Dim() int { return len(s.Min) }

// Covers reports whether every coordinate of v falls inside the trained
// grid. Out-of-range coordinates still encode (they clamp to the edge
// cells) but their reconstruction error is unbounded, so index owners
// retrain when Covers goes false.
func (s *Scalar) Covers(v []float64) bool {
	if len(v) != len(s.Min) {
		return false
	}
	for d, x := range v {
		if x < s.Min[d] || x > s.Min[d]+float64(levels)*s.Step[d] {
			return false
		}
	}
	return true
}

// Encode quantizes v into a fresh int8 code vector, clamping
// out-of-range coordinates to the edge cells.
func (s *Scalar) Encode(v []float64) ([]int8, error) {
	if len(v) != len(s.Min) {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrDimMismatch, len(v), len(s.Min))
	}
	codes := make([]int8, len(v))
	for d, x := range v {
		l := int((x - s.Min[d]) / s.Step[d])
		if l < 0 {
			l = 0
		} else if l > levels-1 {
			l = levels - 1
		}
		codes[d] = int8(l - 128)
	}
	return codes, nil
}

// reconstruct returns the centre of dimension d's cell for level l.
func (s *Scalar) reconstruct(d, l int) float64 {
	return s.Min[d] + (float64(l)+0.5)*s.Step[d]
}

// Decode reconstructs the cell-centre vector of a code.
func (s *Scalar) Decode(codes []int8) ([]float64, error) {
	if len(codes) != len(s.Min) {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrDimMismatch, len(codes), len(s.Min))
	}
	v := make([]float64, len(codes))
	for d, c := range codes {
		v[d] = s.reconstruct(d, int(c)+128)
	}
	return v, nil
}

// Table builds the per-query asymmetric-distance lookup table for q:
// entry d*256+l is the squared distance between q[d] and dimension d's
// reconstruction at level l, laid out so vecmath.SquaredL2Int8 indexes
// it with the code's biased byte. Summing the entries a code selects
// yields the exact squared L2 distance between q and the code's
// reconstruction.
func (s *Scalar) Table(q []float64) ([]float64, error) {
	lut := make([]float64, levels*len(s.Min))
	if err := s.TableInto(lut, q); err != nil {
		return nil, err
	}
	return lut, nil
}

// TableInto builds the lookup table into lut, which must have length
// 256·dim — the allocation-free variant scan loops use with a pooled
// buffer (the table is 2KB per dimension; allocating one per query is
// measurable GC pressure at serving rates). Every entry is overwritten.
func (s *Scalar) TableInto(lut []float64, q []float64) error {
	if len(q) != len(s.Min) {
		return fmt.Errorf("%w: got %d, want %d", ErrDimMismatch, len(q), len(s.Min))
	}
	if len(lut) != levels*len(q) {
		return fmt.Errorf("%w: lut len %d, want %d", ErrDimMismatch, len(lut), levels*len(q))
	}
	for d, x := range q {
		base := s.Min[d] + 0.5*s.Step[d]
		row := lut[d*levels : (d+1)*levels]
		for l := range row {
			diff := x - (base + float64(l)*s.Step[d])
			row[l] = diff * diff
		}
	}
	return nil
}

// ErrBound returns the maximum L2 distance between any in-range vector
// and its reconstruction: each dimension errs by at most Step[d]/2, so
// the worst case is the root of the summed squared cell radii. For any
// in-range x, |d(q,x) − d(q,Decode(Encode(x)))| <= ErrBound() by the
// triangle inequality — the margin radius prefilters add to r.
func (s *Scalar) ErrBound() float64 {
	sum := 0.0
	for _, st := range s.Step {
		r := st / 2
		sum += r * r
	}
	return math.Sqrt(sum)
}
