package quant

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/vecmath"
)

func randVecs(rng *rand.Rand, n, dim int) [][]float64 {
	vecs := make([][]float64, n)
	for i := range vecs {
		v := make([]float64, dim)
		for d := range v {
			v[d] = rng.NormFloat64()*3 + float64(d)
		}
		vecs[i] = v
	}
	return vecs
}

// TestRoundTripErrorBounded: every trained vector reconstructs within
// Step[d]/2 per dimension and within ErrBound() in L2.
func TestRoundTripErrorBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vecs := randVecs(rng, 200, 17)
	s, err := Train(vecs, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	bound := s.ErrBound()
	for _, v := range vecs {
		if !s.Covers(v) {
			t.Fatalf("trained vector not covered: %v", v)
		}
		codes, err := s.Encode(v)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := s.Decode(codes)
		if err != nil {
			t.Fatal(err)
		}
		for d := range v {
			if e := math.Abs(v[d] - rec[d]); e > s.Step[d]/2+1e-12 {
				t.Fatalf("dim %d error %v exceeds half step %v", d, e, s.Step[d]/2)
			}
		}
		if e := math.Sqrt(vecmath.SquaredL2(v, rec)); e > bound+1e-12 {
			t.Fatalf("L2 reconstruction error %v exceeds ErrBound %v", e, bound)
		}
	}
}

// TestTableMatchesDecodedDistance: the ADC table path must equal the
// plain squared distance between the query and the decoded code — the
// identity the shortlist selection and radius prefilter both rely on.
func TestTableMatchesDecodedDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vecs := randVecs(rng, 100, 24)
	s, err := Train(vecs, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	q := make([]float64, 24)
	for d := range q {
		q[d] = rng.NormFloat64()*3 + float64(d)
	}
	lut, err := s.Table(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vecs {
		codes, _ := s.Encode(v)
		rec, _ := s.Decode(codes)
		adc := vecmath.SquaredL2Int8(codes, lut)
		want := vecmath.SquaredL2(q, rec)
		if math.Abs(adc-want) > 1e-9*(1+want) {
			t.Fatalf("ADC %v != decoded distance %v", adc, want)
		}
	}
}

// TestCoversAndClamping: out-of-range vectors are reported uncovered and
// encode to edge cells rather than wrapping.
func TestCoversAndClamping(t *testing.T) {
	s, err := Train([][]float64{{0, 0}, {1, 10}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Covers([]float64{2, 5}) {
		t.Fatal("out-of-range vector reported covered")
	}
	if s.Covers([]float64{0.5}) {
		t.Fatal("wrong-dim vector reported covered")
	}
	codes, err := s.Encode([]float64{100, -100})
	if err != nil {
		t.Fatal(err)
	}
	if codes[0] != 127 || codes[1] != -128 {
		t.Fatalf("expected edge-cell clamps, got %v", codes)
	}
}

// TestConstantDimension: a dimension with zero spread must still train a
// positive step and reconstruct near-exactly.
func TestConstantDimension(t *testing.T) {
	s, err := Train([][]float64{{5, 1}, {5, 2}, {5, 3}}, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Step[0] <= 0 {
		t.Fatalf("constant dimension trained non-positive step %v", s.Step[0])
	}
	codes, _ := s.Encode([]float64{5, 2})
	rec, _ := s.Decode(codes)
	if math.Abs(rec[0]-5) > 1e-6 {
		t.Fatalf("constant dimension reconstructed %v, want ~5", rec[0])
	}
}

// TestTrainErrors: empty input and ragged dimensions are rejected.
func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, 0); err == nil {
		t.Fatal("empty training set accepted")
	}
	if _, err := Train([][]float64{{1, 2}, {3}}, 0); err == nil {
		t.Fatal("ragged training set accepted")
	}
}
