package analysis

import (
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/ml"
)

// Model export/import: the "Download machine learning models" API of §V.
// Linear models (the SVM and logistic regression — the platform's default
// and best estimators) serialise to a portable JSON document carrying the
// spec, the per-class weights, and the feature standardizer, so an edge
// device can run the model locally with no access to the server.

// ErrNotExportable reports a model family without a portable form.
var ErrNotExportable = errors.New("analysis: model is not exportable")

// exportedModel is the wire format (versioned for forward evolution).
type exportedModel struct {
	Version int       `json:"version"`
	Spec    ModelSpec `json:"spec"`
	// Type selects the estimator on import.
	Type string `json:"type"` // "svm" | "logreg"
	// W is classes x dim; B is per-class bias.
	W [][]float64 `json:"w"`
	B []float64   `json:"b"`
	// Mean/Std restore the feature standardizer (empty = none).
	Mean []float64 `json:"mean,omitempty"`
	Std  []float64 `json:"std,omitempty"`
}

// paramModel is the accessor surface shared by the linear estimators.
type paramModel interface {
	Weights() ([][]float64, error)
	Bias() ([]float64, error)
}

// Export serialises the named model for local execution on edge devices.
// Only linear estimators export; others return ErrNotExportable.
func (r *Registry) Export(name string) ([]byte, error) {
	r.mu.RLock()
	e, ok := r.models[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrModelNotFound, name)
	}
	var typ string
	switch e.clf.(type) {
	case *ml.LinearSVM:
		typ = "svm"
	case *ml.LogisticRegression:
		typ = "logreg"
	default:
		return nil, fmt.Errorf("%w: %T", ErrNotExportable, e.clf)
	}
	pm, ok := e.clf.(paramModel)
	if !ok {
		return nil, fmt.Errorf("%w: %T", ErrNotExportable, e.clf)
	}
	w, err := pm.Weights()
	if err != nil {
		return nil, err
	}
	b, err := pm.Bias()
	if err != nil {
		return nil, err
	}
	out := exportedModel{Version: 1, Spec: e.spec, Type: typ, W: w, B: b}
	if e.std != nil {
		out.Mean = e.std.Mean
		out.Std = e.std.Std
	}
	return json.Marshal(out)
}

// Import registers a model previously produced by Export (typically on a
// different registry — an edge device's local one) and returns its spec.
func (r *Registry) Import(data []byte) (ModelSpec, error) {
	var em exportedModel
	if err := json.Unmarshal(data, &em); err != nil {
		return ModelSpec{}, fmt.Errorf("analysis: decoding model export: %w", err)
	}
	if em.Version != 1 {
		return ModelSpec{}, fmt.Errorf("analysis: unsupported model export version %d", em.Version)
	}
	var clf ml.ProbClassifier
	switch em.Type {
	case "svm":
		m := ml.NewLinearSVM(ml.DefaultLinearConfig(0))
		if err := m.SetParams(em.W, em.B); err != nil {
			return ModelSpec{}, err
		}
		clf = m
	case "logreg":
		m := ml.NewLogisticRegression(ml.DefaultLinearConfig(0))
		if err := m.SetParams(em.W, em.B); err != nil {
			return ModelSpec{}, err
		}
		clf = m
	default:
		return ModelSpec{}, fmt.Errorf("analysis: unknown exported model type %q", em.Type)
	}
	var std *ml.Standardizer
	if len(em.Mean) > 0 {
		if len(em.Mean) != len(em.Std) {
			return ModelSpec{}, errors.New("analysis: standardizer mean/std length mismatch")
		}
		std = &ml.Standardizer{Mean: em.Mean, Std: em.Std}
	}
	if err := r.Register(em.Spec, clf, std); err != nil {
		return ModelSpec{}, err
	}
	return em.Spec, nil
}
