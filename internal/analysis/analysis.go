// Package analysis is TVDP's Analysis service (paper §V): a registry of
// shareable ML models with input/output specifications, training of new
// models from the annotated data already in the store, prediction over
// stored or uploaded images, and machine-annotation write-back — the step
// that turns one application's analysis results into another
// application's input ("translational data").
package analysis

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/feature"
	"repro/internal/imagesim"
	"repro/internal/ml"
	"repro/internal/store"
)

// recordCheckpoint is the cancellation-poll cadence of the service's
// per-record loops (training join, batch annotation): ctx.Err is consulted
// once per this many records.
const recordCheckpoint = 64

// ModelSpec is the shareable description of a registered model — the
// "defining its input and output specifications" of §V's devise-new-models
// API.
type ModelSpec struct {
	Name string
	// FeatureKind is the input feature family (the model consumes
	// vectors of that kind).
	FeatureKind string
	// Dim is the expected input dimensionality.
	Dim int
	// Classification names the store labelling scheme the model emits.
	Classification string
	// Labels echoes the scheme's label vocabulary.
	Labels []string
	// Owner identifies the contributing user.
	Owner string
	// TrainedOn is the number of training rows used.
	TrainedOn int
	// MacroF1 is the training-time validation score (0 if unknown).
	MacroF1 float64
}

// Registry stores models under unique names. Safe for concurrent use.
type Registry struct {
	mu     sync.RWMutex
	models map[string]*entry
}

type entry struct {
	spec ModelSpec
	clf  ml.ProbClassifier
	std  *ml.Standardizer
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{models: make(map[string]*entry)}
}

// Registry errors.
var (
	ErrModelExists   = errors.New("analysis: model already registered")
	ErrModelNotFound = errors.New("analysis: model not found")
)

// Register adds a trained model under spec.Name. std may be nil when the
// model was trained on raw features.
func (r *Registry) Register(spec ModelSpec, clf ml.ProbClassifier, std *ml.Standardizer) error {
	if spec.Name == "" {
		return errors.New("analysis: model needs a name")
	}
	if clf == nil {
		return errors.New("analysis: nil classifier")
	}
	if spec.Dim <= 0 {
		return fmt.Errorf("analysis: model %q has dim %d", spec.Name, spec.Dim)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.models[spec.Name]; dup {
		return fmt.Errorf("%w: %q", ErrModelExists, spec.Name)
	}
	r.models[spec.Name] = &entry{spec: spec, clf: clf, std: std}
	return nil
}

// Spec returns the registered model's specification.
func (r *Registry) Spec(name string) (ModelSpec, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.models[name]
	if !ok {
		return ModelSpec{}, fmt.Errorf("%w: %q", ErrModelNotFound, name)
	}
	return e.spec, nil
}

// List returns all specs sorted by name.
func (r *Registry) List() []ModelSpec {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]ModelSpec, 0, len(r.models))
	for _, e := range r.models {
		out = append(out, e.spec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Prediction is one model output.
type Prediction struct {
	Label      int
	LabelName  string
	Confidence float64
	Probs      []float64
}

// Predict runs the named model on a raw feature vector.
func (r *Registry) Predict(name string, vec []float64) (Prediction, error) {
	r.mu.RLock()
	e, ok := r.models[name]
	r.mu.RUnlock()
	if !ok {
		return Prediction{}, fmt.Errorf("%w: %q", ErrModelNotFound, name)
	}
	if len(vec) != e.spec.Dim {
		return Prediction{}, fmt.Errorf("analysis: model %q expects dim %d, got %d", name, e.spec.Dim, len(vec))
	}
	x := vec
	if e.std != nil {
		var err error
		x, err = e.std.Transform(vec)
		if err != nil {
			return Prediction{}, err
		}
	}
	probs, err := e.clf.PredictProba(x)
	if err != nil {
		return Prediction{}, err
	}
	best := 0
	for i := range probs {
		if probs[i] > probs[best] {
			best = i
		}
	}
	p := Prediction{Label: best, Confidence: probs[best], Probs: probs}
	if best < len(e.spec.Labels) {
		p.LabelName = e.spec.Labels[best]
	}
	return p, nil
}

// Service wires the registry to a store and a set of feature extractors.
type Service struct {
	Store    store.Backend
	Registry *Registry

	mu         sync.RWMutex
	extractors map[string]feature.Extractor
}

// NewService returns a service over st with an empty extractor set.
func NewService(st store.Backend) *Service {
	return &Service{
		Store:      st,
		Registry:   NewRegistry(),
		extractors: make(map[string]feature.Extractor),
	}
}

// RegisterExtractor makes a feature family available for ingest-time
// extraction and API-side "get visual features" calls.
func (s *Service) RegisterExtractor(e feature.Extractor) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.extractors[string(e.Kind())] = e
}

// Extractor returns a registered extractor.
func (s *Service) Extractor(kind string) (feature.Extractor, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.extractors[kind]
	if !ok {
		return nil, fmt.Errorf("analysis: no extractor for kind %q", kind)
	}
	return e, nil
}

// ExtractorKinds lists registered kinds, sorted.
func (s *Service) ExtractorKinds() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.extractors))
	for k := range s.extractors {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ExtractAndStore computes and stores every registered feature family for
// an image, returning the kinds written. Cancellation is honoured between
// feature families: kinds already written stay written (each PutFeature is
// durable on its own), and the partial list is returned with the error.
func (s *Service) ExtractAndStore(ctx context.Context, imageID uint64) ([]string, error) {
	return s.extractKinds(ctx, imageID, s.ExtractorKinds())
}

// ExtractMissing computes and stores only the feature families not yet
// present for the image — the idempotent re-drive the ingest pipeline's
// workers and pending-extraction sweep run: a row that crashed in the
// persisted-but-unextracted window can be resubmitted any number of times
// without re-extracting (or re-indexing) the kinds that already landed.
// Returns the kinds written by this call (nil when nothing was missing).
func (s *Service) ExtractMissing(ctx context.Context, imageID uint64) ([]string, error) {
	want := s.ExtractorKinds()
	have := make(map[string]bool)
	for _, k := range s.Store.FeatureKinds(imageID) {
		have[k] = true
	}
	missing := want[:0:0]
	for _, k := range want {
		if !have[k] {
			missing = append(missing, k)
		}
	}
	if len(missing) == 0 {
		// Still verify the row exists so callers get ErrNotFound, not a
		// silent no-op, for a deleted ID.
		if _, err := s.Store.Describe(imageID); err != nil {
			return nil, err
		}
		return nil, nil
	}
	return s.extractKinds(ctx, imageID, missing)
}

// extractKinds is the shared extraction loop over an explicit kind list.
func (s *Service) extractKinds(ctx context.Context, imageID uint64, kinds []string) ([]string, error) {
	img, err := s.Store.GetImage(imageID)
	if err != nil {
		return nil, err
	}
	var done []string
	for _, kind := range kinds {
		if err := ctx.Err(); err != nil {
			return done, err
		}
		// A multi-family extraction is several ms of uninterrupted CPU.
		// Yielding between kinds bounds how long one background
		// extraction can delay latency-sensitive goroutines (WAL
		// committer, upload ack paths) on small hosts; on idle hosts it
		// is a no-op.
		runtime.Gosched()
		e, err := s.Extractor(kind)
		if err != nil {
			return done, err
		}
		vec, err := e.Extract(img.Pixels)
		if err != nil {
			return done, fmt.Errorf("analysis: extracting %s for image %d: %w", kind, imageID, err)
		}
		if err := s.Store.PutFeature(imageID, kind, vec); err != nil {
			return done, err
		}
		done = append(done, kind)
	}
	return done, nil
}

// ExtractUploaded computes one feature family for an uploaded (unstored)
// image — the "Get visual features" API of §V.
func (s *Service) ExtractUploaded(kind string, img *imagesim.Image) ([]float64, error) {
	e, err := s.Extractor(kind)
	if err != nil {
		return nil, err
	}
	return e.Extract(img)
}

// TrainConfig controls TrainModel.
type TrainConfig struct {
	// Name registers the resulting model.
	Name string
	// Classification selects the store labelling scheme supplying
	// training labels.
	Classification string
	// FeatureKind selects the stored feature family used as input.
	FeatureKind string
	// Factory builds the estimator (defaults to a linear SVM).
	Factory ml.Factory
	// HoldoutFrac reserves a validation split for the reported MacroF1
	// (0 disables validation).
	HoldoutFrac float64
	// MinConfidence drops weaker machine annotations from training.
	MinConfidence float64
	// Owner is recorded on the spec.
	Owner string
	// Seed drives the split and stochastic estimators.
	Seed int64
}

// ErrNoTrainingData reports an empty training join.
var ErrNoTrainingData = errors.New("analysis: no training data")

// TrainModel joins stored features with stored annotations for the given
// classification, fits a classifier, registers it, and returns its spec.
// This is how a collaborator "devises a new ML model" from shared data.
func (s *Service) TrainModel(ctx context.Context, cfg TrainConfig) (ModelSpec, error) {
	if cfg.Name == "" {
		return ModelSpec{}, errors.New("analysis: TrainConfig.Name required")
	}
	cls, err := s.Store.ClassificationByName(cfg.Classification)
	if err != nil {
		return ModelSpec{}, err
	}
	if cfg.Factory == nil {
		cfg.Factory = func() ml.Classifier { return ml.NewLinearSVM(ml.DefaultLinearConfig(cfg.Seed)) }
	}
	var d ml.Dataset
	d.Classes = len(cls.Labels)
	joined := 0
	for label := range cls.Labels {
		for _, id := range s.Store.ImagesByLabel(cls.ID, label) {
			if joined%recordCheckpoint == 0 {
				if err := ctx.Err(); err != nil {
					return ModelSpec{}, err
				}
			}
			joined++
			if cfg.MinConfidence > 0 {
				ok := false
				for _, a := range s.Store.AnnotationsFor(id) {
					if a.ClassificationID == cls.ID && a.Label == label && a.Confidence >= cfg.MinConfidence {
						ok = true
						break
					}
				}
				if !ok {
					continue
				}
			}
			vec, err := s.Store.GetFeature(id, cfg.FeatureKind)
			if err != nil {
				continue // images without the feature do not train
			}
			d.X = append(d.X, vec)
			d.Y = append(d.Y, label)
		}
	}
	if d.Len() == 0 {
		return ModelSpec{}, fmt.Errorf("%w: classification %q feature %q", ErrNoTrainingData, cfg.Classification, cfg.FeatureKind)
	}
	// Phase boundary: join done, standardisation + fitting ahead.
	if err := ctx.Err(); err != nil {
		return ModelSpec{}, err
	}
	std, err := ml.FitStandardizer(d.X)
	if err != nil {
		return ModelSpec{}, err
	}
	d.X, err = std.TransformAll(d.X)
	if err != nil {
		return ModelSpec{}, err
	}

	spec := ModelSpec{
		Name: cfg.Name, FeatureKind: cfg.FeatureKind, Dim: len(std.Mean),
		Classification: cfg.Classification, Labels: cls.Labels,
		Owner: cfg.Owner, TrainedOn: d.Len(),
	}
	var final ml.Classifier
	if cfg.HoldoutFrac > 0 && cfg.HoldoutFrac < 1 && d.Len() >= 10 {
		train, test, err := ml.StratifiedSplit(d, 1-cfg.HoldoutFrac, cfg.Seed)
		if err == nil {
			res, err := ml.Evaluate(cfg.Factory(), train, test)
			if err != nil {
				return ModelSpec{}, err
			}
			spec.MacroF1 = res.MacroF1
		}
	}
	// Phase boundary: validation done, final fit ahead.
	if err := ctx.Err(); err != nil {
		return ModelSpec{}, err
	}
	final = cfg.Factory()
	if err := final.Fit(d); err != nil {
		return ModelSpec{}, err
	}
	prob, ok := final.(ml.ProbClassifier)
	if !ok {
		return ModelSpec{}, fmt.Errorf("analysis: estimator %s does not expose probabilities", final.Name())
	}
	if err := s.Registry.Register(spec, prob, std); err != nil {
		return ModelSpec{}, err
	}
	return spec, nil
}

// AnnotateImages runs the named model over stored images and writes
// machine annotations back (the translational write-back of §VII-B).
// Images lacking the model's feature kind are skipped and reported.
// Cancellation is honoured between records: annotations already written
// stay written and the partial counts are returned with the error.
func (s *Service) AnnotateImages(ctx context.Context, modelName string, imageIDs []uint64, at time.Time) (annotated, skipped int, err error) {
	spec, err := s.Registry.Spec(modelName)
	if err != nil {
		return 0, 0, err
	}
	cls, err := s.Store.ClassificationByName(spec.Classification)
	if err != nil {
		return 0, 0, err
	}
	for i, id := range imageIDs {
		if i%recordCheckpoint == 0 {
			if err := ctx.Err(); err != nil {
				return annotated, skipped, err
			}
		}
		vec, err := s.Store.GetFeature(id, spec.FeatureKind)
		if err != nil {
			skipped++
			continue
		}
		p, err := s.Registry.Predict(modelName, vec)
		if err != nil {
			return annotated, skipped, err
		}
		err = s.Store.Annotate(store.Annotation{
			ImageID:          id,
			ClassificationID: cls.ID,
			Label:            p.Label,
			Confidence:       p.Confidence,
			Source:           store.SourceMachine,
			AnnotatedAt:      at,
		})
		if err != nil {
			return annotated, skipped, err
		}
		annotated++
	}
	return annotated, skipped, nil
}

// AnnotateImagesWithRegions behaves like AnnotateImages but additionally
// attaches the largest salient region of each image to the written
// annotation — the part-of-image bounding boundary of §IV-A. Images where
// no region is proposed get a whole-image annotation.
func (s *Service) AnnotateImagesWithRegions(ctx context.Context, modelName string, imageIDs []uint64, at time.Time, rc feature.RegionConfig) (annotated, withRegion int, err error) {
	spec, err := s.Registry.Spec(modelName)
	if err != nil {
		return 0, 0, err
	}
	cls, err := s.Store.ClassificationByName(spec.Classification)
	if err != nil {
		return 0, 0, err
	}
	for i, id := range imageIDs {
		if i%recordCheckpoint == 0 {
			if err := ctx.Err(); err != nil {
				return annotated, withRegion, err
			}
		}
		vec, err := s.Store.GetFeature(id, spec.FeatureKind)
		if err != nil {
			continue
		}
		p, err := s.Registry.Predict(modelName, vec)
		if err != nil {
			return annotated, withRegion, err
		}
		ann := store.Annotation{
			ImageID:          id,
			ClassificationID: cls.ID,
			Label:            p.Label,
			Confidence:       p.Confidence,
			Source:           store.SourceMachine,
			AnnotatedAt:      at,
		}
		img, err := s.Store.GetImage(id)
		if err != nil {
			return annotated, withRegion, err
		}
		regs, err := feature.DetectRegions(img.Pixels, rc)
		if err != nil {
			return annotated, withRegion, err
		}
		if len(regs) > 0 {
			r := regs[0]
			ann.Region = &store.PixelRect{X0: r.X0, Y0: r.Y0, X1: r.X1, Y1: r.Y1}
			withRegion++
		}
		if err := s.Store.Annotate(ann); err != nil {
			return annotated, withRegion, err
		}
		annotated++
	}
	return annotated, withRegion, nil
}
