package analysis

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/feature"
	"repro/internal/geo"
	"repro/internal/imagesim"
	"repro/internal/ml"
	"repro/internal/store"
	"repro/internal/synth"
)

var la = geo.Point{Lat: 34.0522, Lon: -118.2437}

// fixture ingests a small synthetic corpus with human labels and colour
// features, leaving a few images unlabeled for machine annotation.
type fixture struct {
	st      *store.Store
	svc     *Service
	classID uint64
	labeled []uint64
	raw     []uint64 // ingested without annotations
}

func setup(t *testing.T) *fixture {
	t.Helper()
	st, err := store.Open(store.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	svc := NewService(st)
	svc.RegisterExtractor(feature.NewColorHistogram())
	classID, err := st.CreateClassification("street_cleanliness", synth.ClassNames[:])
	if err != nil {
		t.Fatal(err)
	}
	g, err := synth.NewGenerator(synth.DefaultConfig(100, 1))
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{st: st, svc: svc, classID: classID}
	for i, rec := range g.Generate(100) {
		id, err := st.AddImage(store.Image{
			FOV: rec.FOV, Pixels: rec.Image,
			TimestampCapturing: rec.CapturedAt, TimestampUploading: rec.UploadedAt,
			WorkerID: rec.WorkerID,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := svc.ExtractAndStore(context.Background(), id); err != nil {
			t.Fatal(err)
		}
		if i < 80 {
			if err := st.Annotate(store.Annotation{
				ImageID: id, ClassificationID: classID, Label: int(rec.Class),
				Confidence: 1, Source: store.SourceHuman,
			}); err != nil {
				t.Fatal(err)
			}
			f.labeled = append(f.labeled, id)
		} else {
			f.raw = append(f.raw, id)
		}
	}
	return f
}

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	clf := ml.NewKNN(1)
	d := ml.Dataset{X: [][]float64{{0, 0}, {1, 1}}, Y: []int{0, 1}, Classes: 2}
	if err := clf.Fit(d); err != nil {
		t.Fatal(err)
	}
	spec := ModelSpec{Name: "m", FeatureKind: "f", Dim: 2, Labels: []string{"a", "b"}}
	if err := r.Register(spec, clf, nil); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(spec, clf, nil); !errors.Is(err, ErrModelExists) {
		t.Fatal("duplicate registration accepted")
	}
	if err := r.Register(ModelSpec{}, clf, nil); err == nil {
		t.Fatal("nameless model accepted")
	}
	if err := r.Register(ModelSpec{Name: "x", Dim: 2}, nil, nil); err == nil {
		t.Fatal("nil classifier accepted")
	}
	if err := r.Register(ModelSpec{Name: "x", Dim: 0}, clf, nil); err == nil {
		t.Fatal("dim 0 accepted")
	}
	got, err := r.Spec("m")
	if err != nil || got.Name != "m" {
		t.Fatalf("spec = %+v err=%v", got, err)
	}
	if _, err := r.Spec("nope"); !errors.Is(err, ErrModelNotFound) {
		t.Fatal("missing spec err wrong")
	}
	if l := r.List(); len(l) != 1 {
		t.Fatalf("list = %+v", l)
	}
	p, err := r.Predict("m", []float64{0.9, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if p.Label != 1 || p.LabelName != "b" || p.Confidence <= 0 {
		t.Fatalf("prediction = %+v", p)
	}
	if _, err := r.Predict("m", []float64{1}); err == nil {
		t.Fatal("wrong dim accepted")
	}
	if _, err := r.Predict("nope", []float64{1, 2}); !errors.Is(err, ErrModelNotFound) {
		t.Fatal("missing model predict err wrong")
	}
}

func TestExtractAndStore(t *testing.T) {
	f := setup(t)
	kinds := f.st.FeatureKinds(f.labeled[0])
	if len(kinds) != 1 || kinds[0] != string(feature.KindColorHist) {
		t.Fatalf("kinds = %v", kinds)
	}
	vec, err := f.st.GetFeature(f.labeled[0], string(feature.KindColorHist))
	if err != nil || len(vec) != 50 {
		t.Fatalf("vec len=%d err=%v", len(vec), err)
	}
	if _, err := f.svc.ExtractAndStore(context.Background(), 99999); err == nil {
		t.Fatal("missing image accepted")
	}
}

func TestExtractUploaded(t *testing.T) {
	f := setup(t)
	img := imagesim.MustNew(16, 16)
	vec, err := f.svc.ExtractUploaded(string(feature.KindColorHist), img)
	if err != nil || len(vec) != 50 {
		t.Fatalf("uploaded extract: %d %v", len(vec), err)
	}
	if _, err := f.svc.ExtractUploaded("nope", img); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestTrainModelAndPredict(t *testing.T) {
	f := setup(t)
	spec, err := f.svc.TrainModel(context.Background(), TrainConfig{
		Name:           "cleanliness-color-svm",
		Classification: "street_cleanliness",
		FeatureKind:    string(feature.KindColorHist),
		HoldoutFrac:    0.25,
		Owner:          "usc",
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if spec.TrainedOn != 80 || spec.Dim != 50 {
		t.Fatalf("spec = %+v", spec)
	}
	if spec.MacroF1 <= 0.2 {
		t.Fatalf("validation F1 = %v, suspiciously low", spec.MacroF1)
	}
	// Predict via registry on a stored feature.
	vec, _ := f.st.GetFeature(f.labeled[0], string(feature.KindColorHist))
	p, err := f.svc.Registry.Predict("cleanliness-color-svm", vec)
	if err != nil {
		t.Fatal(err)
	}
	if p.Label < 0 || p.Label >= synth.NumClasses {
		t.Fatalf("prediction label = %d", p.Label)
	}
}

func TestTrainModelErrors(t *testing.T) {
	f := setup(t)
	if _, err := f.svc.TrainModel(context.Background(), TrainConfig{}); err == nil {
		t.Fatal("nameless train accepted")
	}
	if _, err := f.svc.TrainModel(context.Background(), TrainConfig{Name: "m", Classification: "nope", FeatureKind: "f"}); err == nil {
		t.Fatal("unknown classification accepted")
	}
	if _, err := f.svc.TrainModel(context.Background(), TrainConfig{
		Name: "m", Classification: "street_cleanliness", FeatureKind: "no_such_kind",
	}); !errors.Is(err, ErrNoTrainingData) {
		t.Fatal("unknown feature kind should give no training data")
	}
}

func TestAnnotateImagesWriteBack(t *testing.T) {
	f := setup(t)
	if _, err := f.svc.TrainModel(context.Background(), TrainConfig{
		Name:           "m",
		Classification: "street_cleanliness",
		FeatureKind:    string(feature.KindColorHist),
		Seed:           2,
	}); err != nil {
		t.Fatal(err)
	}
	at := time.Date(2019, 3, 1, 0, 0, 0, 0, time.UTC)
	annotated, skipped, err := f.svc.AnnotateImages(context.Background(), "m", f.raw, at)
	if err != nil {
		t.Fatal(err)
	}
	if annotated != len(f.raw) || skipped != 0 {
		t.Fatalf("annotated=%d skipped=%d", annotated, skipped)
	}
	anns := f.st.AnnotationsFor(f.raw[0])
	if len(anns) != 1 || anns[0].Source != store.SourceMachine || !anns[0].AnnotatedAt.Equal(at) {
		t.Fatalf("written annotation = %+v", anns)
	}
	if anns[0].Confidence <= 0 || anns[0].Confidence > 1 {
		t.Fatalf("confidence = %v", anns[0].Confidence)
	}
	// The annotated images are now discoverable by label — translational
	// reuse by another application.
	cls, _ := f.st.ClassificationByName("street_cleanliness")
	total := 0
	for label := range cls.Labels {
		total += len(f.st.ImagesByLabel(cls.ID, label))
	}
	if total != 100 {
		t.Fatalf("labelled images = %d, want 100", total)
	}
	// Unknown model errors; images without the feature are skipped.
	if _, _, err := f.svc.AnnotateImages(context.Background(), "nope", f.raw, at); !errors.Is(err, ErrModelNotFound) {
		t.Fatal("unknown model accepted")
	}
	// Add an image without features: it must be skipped, not fail.
	px := imagesim.MustNew(16, 16)
	id, _ := f.st.AddImage(store.Image{
		FOV:    geo.FOV{Camera: la, Direction: 0, Angle: 60, Radius: 100},
		Pixels: px, TimestampCapturing: at,
	})
	annotated, skipped, err = f.svc.AnnotateImages(context.Background(), "m", []uint64{id}, at)
	if err != nil || annotated != 0 || skipped != 1 {
		t.Fatalf("featureless image: annotated=%d skipped=%d err=%v", annotated, skipped, err)
	}
}

func TestMinConfidenceFiltersTraining(t *testing.T) {
	f := setup(t)
	// Machine-annotate the raw images with low confidence via a weak
	// manual annotation, then ensure MinConfidence excludes them.
	cls, _ := f.st.ClassificationByName("street_cleanliness")
	for _, id := range f.raw {
		_ = f.st.Annotate(store.Annotation{
			ImageID: id, ClassificationID: cls.ID, Label: 0,
			Confidence: 0.2, Source: store.SourceMachine,
		})
	}
	spec, err := f.svc.TrainModel(context.Background(), TrainConfig{
		Name:           "confident-only",
		Classification: "street_cleanliness",
		FeatureKind:    string(feature.KindColorHist),
		MinConfidence:  0.5,
		Seed:           3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if spec.TrainedOn != 80 {
		t.Fatalf("TrainedOn = %d, want 80 (low-confidence rows excluded)", spec.TrainedOn)
	}
}

func TestAnnotateImagesWithRegions(t *testing.T) {
	f := setup(t)
	if _, err := f.svc.TrainModel(context.Background(), TrainConfig{
		Name:           "regions-model",
		Classification: "street_cleanliness",
		FeatureKind:    string(feature.KindColorHist),
		Seed:           4,
	}); err != nil {
		t.Fatal(err)
	}
	at := time.Date(2019, 3, 2, 0, 0, 0, 0, time.UTC)
	annotated, withRegion, err := f.svc.AnnotateImagesWithRegions(context.Background(),
		"regions-model", f.raw, at, feature.DefaultRegionConfig())
	if err != nil {
		t.Fatal(err)
	}
	if annotated != len(f.raw) {
		t.Fatalf("annotated = %d", annotated)
	}
	// Synthetic scenes contain drawn objects: most images should yield a
	// region proposal.
	if withRegion < annotated/2 {
		t.Fatalf("withRegion = %d of %d", withRegion, annotated)
	}
	// The written annotations carry sane pixel boxes.
	found := false
	for _, id := range f.raw {
		for _, a := range f.st.AnnotationsFor(id) {
			if a.Region == nil {
				continue
			}
			found = true
			img, _ := f.st.GetImage(id)
			r := a.Region
			if r.X0 < 0 || r.Y0 < 0 || r.X1 > img.Pixels.W || r.Y1 > img.Pixels.H || r.X0 >= r.X1 || r.Y0 >= r.Y1 {
				t.Fatalf("bad region box %+v for %dx%d image", r, img.Pixels.W, img.Pixels.H)
			}
		}
	}
	if !found {
		t.Fatal("no region annotations written")
	}
	if _, _, err := f.svc.AnnotateImagesWithRegions(context.Background(), "nope", f.raw, at, feature.DefaultRegionConfig()); !errors.Is(err, ErrModelNotFound) {
		t.Fatal("unknown model accepted")
	}
}

func TestModelExportImportRoundTrip(t *testing.T) {
	f := setup(t)
	if _, err := f.svc.TrainModel(context.Background(), TrainConfig{
		Name:           "exportable",
		Classification: "street_cleanliness",
		FeatureKind:    string(feature.KindColorHist),
		Seed:           5,
	}); err != nil {
		t.Fatal(err)
	}
	data, err := f.svc.Registry.Export("exportable")
	if err != nil {
		t.Fatal(err)
	}
	// Import into a fresh registry (an "edge device") and compare
	// predictions on every stored feature vector.
	edgeReg := NewRegistry()
	spec, err := edgeReg.Import(data)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "exportable" || spec.Dim != 50 {
		t.Fatalf("imported spec = %+v", spec)
	}
	for _, id := range f.labeled[:20] {
		vec, err := f.st.GetFeature(id, string(feature.KindColorHist))
		if err != nil {
			t.Fatal(err)
		}
		server, err := f.svc.Registry.Predict("exportable", vec)
		if err != nil {
			t.Fatal(err)
		}
		local, err := edgeReg.Predict("exportable", vec)
		if err != nil {
			t.Fatal(err)
		}
		if server.Label != local.Label {
			t.Fatalf("image %d: server label %d vs local %d", id, server.Label, local.Label)
		}
		if math.Abs(server.Confidence-local.Confidence) > 1e-9 {
			t.Fatalf("image %d: confidences differ", id)
		}
	}
	if _, err := f.svc.Registry.Export("nope"); !errors.Is(err, ErrModelNotFound) {
		t.Fatal("unknown export accepted")
	}
	if _, err := edgeReg.Import([]byte("garbage")); err == nil {
		t.Fatal("garbage import accepted")
	}
	// Re-importing the same name collides.
	if _, err := edgeReg.Import(data); !errors.Is(err, ErrModelExists) {
		t.Fatal("duplicate import accepted")
	}
}

func TestExportNonLinearModelRejected(t *testing.T) {
	r := NewRegistry()
	knn := ml.NewKNN(3)
	d := ml.Dataset{X: [][]float64{{0}, {1}}, Y: []int{0, 1}, Classes: 2}
	if err := knn.Fit(d); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(ModelSpec{Name: "k", Dim: 1, Labels: []string{"a", "b"}}, knn, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Export("k"); !errors.Is(err, ErrNotExportable) {
		t.Fatalf("kNN export err = %v", err)
	}
}
