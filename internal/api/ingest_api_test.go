package api

// API-level coverage of the streaming ingestion tier: async 202 +
// status polling, NDJSON stream acks, backpressure 429s, durable-row
// error responses that carry the assigned ID, and the video per-frame
// partial-failure contract.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/feature"
	"repro/internal/imagesim"
	"repro/internal/ingest"
	"repro/internal/store"
	"repro/internal/synth"
)

// flakyExtractor fails the first `fails` extractions of marked images
// (Pix[0].R == flakyMarker), then succeeds — the shape of a transient
// extraction fault the sweep recovers from.
type flakyExtractor struct {
	fails int32
}

const flakyMarker = 13

func (f *flakyExtractor) Kind() feature.Kind { return "flaky" }
func (f *flakyExtractor) Dim() int           { return 2 }
func (f *flakyExtractor) Extract(img *imagesim.Image) ([]float64, error) {
	if len(img.Pix) > 0 && img.Pix[0].R == flakyMarker && atomic.AddInt32(&f.fails, -1) >= 0 {
		return nil, errors.New("flaky: transient extraction fault")
	}
	return []float64{1, 0}, nil
}

// blockedExtractor parks every Extract call until gate closes, pinning
// pipeline slots so admission tests can fill the queue deterministically.
type blockedExtractor struct {
	gate chan struct{}
}

func (b *blockedExtractor) Kind() feature.Kind { return "blocked" }
func (b *blockedExtractor) Dim() int           { return 1 }
func (b *blockedExtractor) Extract(img *imagesim.Image) ([]float64, error) {
	<-b.gate
	return []float64{1}, nil
}

// newPipeEnv is newEnv with explicit pipeline config and extra
// extractors — the knob the backpressure and sweep tests need.
func newPipeEnv(t *testing.T, icfg ingest.Config, extras ...feature.Extractor) *env {
	t.Helper()
	st, err := store.Open(store.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	svc := analysis.NewService(st)
	svc.RegisterExtractor(feature.NewColorHistogram())
	for _, e := range extras {
		svc.RegisterExtractor(e)
	}
	pipe := ingest.New(st, svc, icfg)
	pipe.Start(context.Background())
	t.Cleanup(func() { pipe.Close() })
	server := NewServer(st, svc, pipe, nil)
	server.Clock = func() time.Time { return time.Date(2019, 3, 1, 12, 0, 0, 0, time.UTC) }
	ts := httptest.NewServer(server)
	t.Cleanup(ts.Close)
	boot := NewClient(ts.URL, "")
	uid, err := boot.CreateUser("LASAN", "government")
	if err != nil {
		t.Fatal(err)
	}
	key, err := boot.CreateKey(uid)
	if err != nil {
		t.Fatal(err)
	}
	return &env{st: st, svc: svc, pipe: pipe, srv: ts, client: NewClient(ts.URL, key)}
}

func drain(t *testing.T, e *env) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := e.pipe.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestUploadAsyncAcceptedThenIndexed(t *testing.T) {
	e := newEnv(t)
	req := sampleUpload(t, 71)
	resp, err := e.client.UploadImageAsync(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID == 0 {
		t.Fatal("async upload returned zero ID")
	}
	if len(resp.PendingKinds) != 1 || len(resp.FeatureKinds) != 0 {
		t.Fatalf("async response = %+v, want pending kinds only", resp)
	}
	// The ack means the row is durable right now, before extraction.
	if _, err := e.st.GetImage(resp.ID); err != nil {
		t.Fatalf("acked row not readable: %v", err)
	}
	drain(t, e)
	st, err := e.client.ImageStatus(resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" || len(st.Kinds) != 1 {
		t.Fatalf("status after drain = %+v", st)
	}
	meta, err := e.client.GetImage(resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(meta.FeatureKinds) != 1 {
		t.Fatalf("features after drain = %v", meta.FeatureKinds)
	}
}

func TestImageStatusUnknownForAbsentRow(t *testing.T) {
	e := newEnv(t)
	st, err := e.client.ImageStatus(987654)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "unknown" {
		t.Fatalf("absent row status = %+v", st)
	}
}

func TestStreamEndpointAcksPerRecord(t *testing.T) {
	e := newEnv(t)
	const n = 5
	reqs := make([]UploadImageRequest, n)
	for i := range reqs {
		reqs[i] = sampleUpload(t, int64(100+i))
	}
	acks, err := e.client.StreamImages(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(acks) != n {
		t.Fatalf("got %d acks, want %d", len(acks), n)
	}
	seen := map[uint64]bool{}
	for i, ack := range acks {
		if ack.Seq != i+1 || ack.Status != "accepted" || ack.ID == 0 {
			t.Fatalf("ack %d = %+v", i, ack)
		}
		if seen[ack.ID] {
			t.Fatalf("duplicate ID %d in acks", ack.ID)
		}
		seen[ack.ID] = true
	}
	drain(t, e)
	stats, err := e.client.IngestStats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Persisted != n || stats.Extracted != n || stats.Pending != 0 {
		t.Fatalf("stats after stream = %+v", stats)
	}
	if e.st.NumImages() != n {
		t.Fatalf("store has %d images, want %d", e.st.NumImages(), n)
	}
}

func TestStreamRejectsMalformedRecordKeepsStreamOpen(t *testing.T) {
	e := newEnv(t)
	good := sampleUpload(t, 55)
	body := &bytes.Buffer{}
	body.WriteString("{not json}\n")
	if err := json.NewEncoder(body).Encode(good); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, e.srv.URL+"/api/v1/stream", body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-API-Key", e.client.APIKey)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var acks []StreamAck
	dec := json.NewDecoder(resp.Body)
	for {
		var ack StreamAck
		if err := dec.Decode(&ack); err != nil {
			break
		}
		acks = append(acks, ack)
	}
	if len(acks) != 2 {
		t.Fatalf("got %d acks, want 2: %+v", len(acks), acks)
	}
	if acks[0].Status != "error" || acks[0].ID != 0 {
		t.Fatalf("malformed-record ack = %+v", acks[0])
	}
	if acks[1].Status != "accepted" || acks[1].ID == 0 {
		t.Fatalf("good-record ack after bad = %+v", acks[1])
	}
}

func TestUploadBusySheds429WithRetryAfter(t *testing.T) {
	gate := &blockedExtractor{gate: make(chan struct{})}
	var releaseOnce sync.Once
	release := func() { releaseOnce.Do(func() { close(gate.gate) }) }
	e := newPipeEnv(t, ingest.Config{Partitions: 1, QueueDepth: 1}, gate)
	t.Cleanup(release)
	// First async upload takes the only slot and parks in extraction.
	if _, err := e.client.UploadImageAsync(sampleUpload(t, 200)); err != nil {
		t.Fatal(err)
	}
	// Admission now sheds: nothing persisted, 429 + Retry-After.
	before := e.st.NumImages()
	_, err := e.client.UploadImageAsync(sampleUpload(t, 201))
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("busy upload error = %v", err)
	}
	if e.st.NumImages() != before {
		t.Fatal("shed upload persisted a row")
	}
	// Raw request to see the Retry-After hint.
	body, err := json.Marshal(sampleUpload(t, 202))
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, e.srv.URL+"/api/v1/images", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-API-Key", e.client.APIKey)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("raw busy response = %d, Retry-After=%q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	// Stream records during saturation get per-record busy acks — flow
	// control, not a torn stream.
	acks, err := e.client.StreamImages([]UploadImageRequest{sampleUpload(t, 203), sampleUpload(t, 204)})
	if err != nil {
		t.Fatal(err)
	}
	for i, ack := range acks {
		if ack.Status != "busy" || ack.ID != 0 {
			t.Fatalf("saturated stream ack %d = %+v", i, ack)
		}
	}
	// Sync mode bypasses the queue entirely: it must still succeed while
	// the async tier is saturated... but it shares extractors, so release
	// the gate first.
	release()
	if _, err := e.client.UploadImage(sampleUpload(t, 205)); err != nil {
		t.Fatalf("sync upload after release: %v", err)
	}
}

func TestUploadSyncErrorCarriesAssignedID(t *testing.T) {
	flaky := &flakyExtractor{fails: 1}
	e := newPipeEnv(t, ingest.DefaultConfig(), flaky)
	req := sampleUpload(t, 300)
	img, err := req.Pixels.Decode()
	if err != nil {
		t.Fatal(err)
	}
	img.Pix[0].R = flakyMarker
	req.Pixels = EncodePixels(img)
	_, err = e.client.UploadImage(req)
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("marked sync upload error = %v", err)
	}
	if apiErr.ID == 0 {
		t.Fatalf("error response lost the assigned ID: %+v", apiErr)
	}
	// The row is durable — keywords and colour histogram made it.
	meta, err := e.client.GetImage(apiErr.ID)
	if err != nil {
		t.Fatalf("durable row not readable: %v", err)
	}
	if len(meta.Keywords) == 0 {
		t.Fatalf("durable row lost keywords: %+v", meta)
	}
	st, err := e.client.ImageStatus(apiErr.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "failed" || st.Err == "" {
		t.Fatalf("failed row status = %+v", st)
	}
	// The sweep re-drives it; the fault was transient, so it completes.
	n, err := e.client.SweepIngest()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("sweep requeued %d rows, want 1", n)
	}
	drain(t, e)
	st, err = e.client.ImageStatus(apiErr.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" || len(st.Kinds) != 2 {
		t.Fatalf("status after sweep = %+v", st)
	}
}

func TestVideoSyncPartialFrameFailure(t *testing.T) {
	flaky := &flakyExtractor{fails: 1 << 20}
	e := newPipeEnv(t, ingest.DefaultConfig(), flaky)
	g, err := synth.NewGenerator(synth.DefaultConfig(10, 77))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2019, 8, 14, 10, 0, 0, 0, time.UTC)
	var req UploadVideoRequest
	req.Description = "partial"
	req.WorkerID = "drone-9"
	for i := 0; i < 3; i++ {
		rec := g.Render(synth.Clean)
		if i == 1 {
			rec.Image.Pix[0].R = flakyMarker
		}
		req.Frames = append(req.Frames, struct {
			FOV        FOVDTO    `json:"fov"`
			Pixels     PixelsDTO `json:"pixels"`
			CapturedAt time.Time `json:"captured_at"`
			Keywords   []string  `json:"keywords,omitempty"`
		}{
			FOV:        FOVFromGeo(rec.FOV),
			Pixels:     EncodePixels(rec.Image),
			CapturedAt: start.Add(time.Duration(i) * time.Second),
		})
	}
	// A frame's extraction fault must NOT fail the video: every frame is
	// durable (one WAL batch) and a 5xx would invite a duplicating retry.
	up, err := e.client.UploadVideo(req)
	if err != nil {
		t.Fatalf("partial-failure video upload errored: %v", err)
	}
	if up.ID == 0 || len(up.FrameIDs) != 3 || len(up.Frames) != 3 {
		t.Fatalf("video response = %+v", up)
	}
	for i, fr := range up.Frames {
		if fr.ID != up.FrameIDs[i] {
			t.Fatalf("frame %d status ID %d != %d", i, fr.ID, up.FrameIDs[i])
		}
		if i == 1 {
			if fr.Error == "" {
				t.Fatalf("marked frame reported no error: %+v", fr)
			}
			continue
		}
		if fr.Error != "" || len(fr.FeatureKinds) != 2 {
			t.Fatalf("clean frame %d = %+v", i, fr)
		}
	}
	// All three frames are durable rows despite the failure.
	for _, id := range up.FrameIDs {
		if _, err := e.client.GetImage(id); err != nil {
			t.Fatalf("frame %d not durable: %v", id, err)
		}
	}
}

func TestVideoAsyncAccepted(t *testing.T) {
	e := newEnv(t)
	g, err := synth.NewGenerator(synth.DefaultConfig(10, 78))
	if err != nil {
		t.Fatal(err)
	}
	var req UploadVideoRequest
	req.Description = "async"
	for i := 0; i < 2; i++ {
		rec := g.Render(synth.Clean)
		req.Frames = append(req.Frames, struct {
			FOV        FOVDTO    `json:"fov"`
			Pixels     PixelsDTO `json:"pixels"`
			CapturedAt time.Time `json:"captured_at"`
			Keywords   []string  `json:"keywords,omitempty"`
		}{FOV: FOVFromGeo(rec.FOV), Pixels: EncodePixels(rec.Image), CapturedAt: rec.CapturedAt})
	}
	up, err := e.client.UploadVideoAsync(req)
	if err != nil {
		t.Fatal(err)
	}
	if up.ID == 0 || len(up.FrameIDs) != 2 || len(up.PendingKinds) != 1 {
		t.Fatalf("async video response = %+v", up)
	}
	drain(t, e)
	for _, id := range up.FrameIDs {
		meta, err := e.client.GetImage(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(meta.FeatureKinds) != 1 {
			t.Fatalf("frame %d features = %v", id, meta.FeatureKinds)
		}
	}
}
