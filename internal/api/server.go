package api

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/crowd"
	"repro/internal/edge"
	"repro/internal/geo"
	"repro/internal/index"
	"repro/internal/ingest"
	"repro/internal/query"
	"repro/internal/store"
)

// DefaultRequestTimeout is the per-request deadline budget handlers get
// when the Server's RequestTimeout field is left zero.
const DefaultRequestTimeout = 30 * time.Second

// StatusClientClosedRequest is the non-standard 499 status (nginx
// convention) reported when the client abandoned the request — the
// context was cancelled rather than deadline-expired.
const StatusClientClosedRequest = 499

// Server wires the platform services behind HTTP.
type Server struct {
	Store   store.Backend
	Service *analysis.Service
	Query   *query.Engine
	Ingest  *ingest.Pipeline
	Logger  *log.Logger
	// Clock supplies timestamps (injectable for tests).
	Clock func() time.Time
	// RequestTimeout is the deadline budget each request's context gets
	// (measured from dispatch). Zero means DefaultRequestTimeout.
	RequestTimeout time.Duration
	// RateLimit admits this many requests per second per client (keyed
	// by API key, else remote host) before shedding 429s. Zero disables
	// admission control.
	RateLimit float64
	// RateBurst is the bucket capacity above the steady rate; <= 0
	// selects max(1, ceil(RateLimit)).
	RateBurst int
	mux       *http.ServeMux
	admOnce   sync.Once
	adm       *admission
}

// NewServer builds the router. The query engine it serves is the cached
// one: repeated identical searches hit the generation-stamped result
// cache, and concurrent identical searches collapse onto one execution.
// Any store write invalidates, so cached answers are never stale.
//
// pipe is the ingestion tier every upload path runs through; the caller
// owns its lifecycle (Start before serving, Close after). A nil pipe
// builds an unstarted fallback: synchronous uploads still work (they
// bypass the queues), while streaming submissions answer 503.
func NewServer(st store.Backend, svc *analysis.Service, pipe *ingest.Pipeline, logger *log.Logger) *Server {
	if pipe == nil {
		pipe = ingest.New(st, svc, ingest.DefaultConfig())
	}
	s := &Server{
		Store:          st,
		Service:        svc,
		Query:          query.NewCached(st, 0),
		Ingest:         pipe,
		Logger:         logger,
		Clock:          time.Now,
		RequestTimeout: DefaultRequestTimeout,
		mux:            http.NewServeMux(),
	}
	s.routes()
	return s
}

// ServeHTTP implements http.Handler. Admission control runs first —
// overload is shed as 429 before the request costs any handler work.
// Every admitted request runs under a context derived from the client's
// with the server's deadline budget applied, so a slow scan is bounded
// even when the client never disconnects.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if rate := s.RateLimit; rate > 0 {
		s.admOnce.Do(func() { s.adm = newAdmission() })
		burst := s.RateBurst
		if burst <= 0 {
			burst = int(math.Ceil(rate))
			if burst < 1 {
				burst = 1
			}
		}
		ok, retry := s.adm.admit(clientKey(r), s.Clock(), rate, burst)
		if !ok {
			secs := int(math.Ceil(retry.Seconds()))
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			s.writeError(w, http.StatusTooManyRequests, errors.New("rate limit exceeded, retry later"))
			return
		}
	}
	budget := s.RequestTimeout
	if budget <= 0 {
		budget = DefaultRequestTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), budget)
	defer cancel()
	s.mux.ServeHTTP(w, r.WithContext(ctx))
}

func (s *Server) routes() {
	// Bootstrap endpoints (unauthenticated): participant and key
	// registration.
	s.mux.HandleFunc("POST /api/v1/users", s.handleCreateUser)
	s.mux.HandleFunc("POST /api/v1/keys", s.handleCreateKey)

	auth := s.requireKey
	s.mux.Handle("POST /api/v1/images", auth(s.handleUploadImage))
	s.mux.Handle("POST /api/v1/stream", auth(s.handleStream))
	s.mux.Handle("GET /api/v1/ingest/stats", auth(s.handleIngestStats))
	s.mux.Handle("POST /api/v1/ingest/sweep", auth(s.handleIngestSweep))
	s.mux.Handle("GET /api/v1/images/{id}/status", auth(s.handleImageStatus))
	s.mux.Handle("GET /api/v1/images/{id}", auth(s.handleGetImage))
	s.mux.Handle("GET /api/v1/images/{id}/pixels", auth(s.handleGetPixels))
	s.mux.Handle("POST /api/v1/images/{id}/annotations", auth(s.handleAnnotate))
	s.mux.Handle("POST /api/v1/search", auth(s.handleSearch))
	s.mux.Handle("GET /api/v1/datasets", auth(s.handleDownloadDataset))
	s.mux.Handle("POST /api/v1/features/{kind}", auth(s.handleExtractFeature))
	s.mux.Handle("GET /api/v1/models", auth(s.handleListModels))
	s.mux.Handle("POST /api/v1/models/train", auth(s.handleTrainModel))
	s.mux.Handle("POST /api/v1/models/{name}/predict", auth(s.handlePredict))
	s.mux.Handle("POST /api/v1/models/{name}/annotate", auth(s.handleModelAnnotate))
	s.mux.Handle("GET /api/v1/models/{name}/download", auth(s.handleModelDownload))
	s.mux.Handle("POST /api/v1/models/import", auth(s.handleModelImport))
	s.mux.Handle("GET /api/v1/classifications", auth(s.handleListClassifications))
	s.mux.Handle("POST /api/v1/classifications", auth(s.handleCreateClassification))
	s.mux.Handle("POST /api/v1/videos", auth(s.handleUploadVideo))
	s.mux.Handle("GET /api/v1/videos", auth(s.handleListVideos))
	s.mux.Handle("GET /api/v1/videos/{id}", auth(s.handleGetVideo))
	s.mux.Handle("POST /api/v1/campaigns", auth(s.handleCreateCampaign))
	s.mux.Handle("GET /api/v1/campaigns", auth(s.handleListCampaigns))
	s.mux.Handle("GET /api/v1/campaigns/{id}/coverage", auth(s.handleCampaignCoverage))
	s.mux.Handle("POST /api/v1/edge/dispatch", auth(s.handleDispatch))
}

// requireKey authenticates the X-API-Key header.
func (s *Server) requireKey(next http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key := r.Header.Get("X-API-Key")
		if key == "" {
			s.writeError(w, http.StatusUnauthorized, errors.New("missing X-API-Key header"))
			return
		}
		if _, err := s.Store.Authenticate(key); err != nil {
			s.writeError(w, http.StatusUnauthorized, errors.New("invalid API key"))
			return
		}
		next(w, r)
	})
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil && s.Logger != nil {
		s.Logger.Printf("api: encoding response: %v", err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	if s.Logger != nil && status >= 500 {
		s.Logger.Printf("api: %v", err)
	}
	s.writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

// statusFor maps domain errors to HTTP codes. Context errors come first:
// a deadline overrun is the server's 504, a client-side cancellation the
// nginx-style 499.
func statusFor(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest
	case errors.Is(err, ingest.ErrBusy):
		return http.StatusTooManyRequests
	case errors.Is(err, ingest.ErrStopped):
		return http.StatusServiceUnavailable
	case errors.Is(err, store.ErrNotFound), errors.Is(err, analysis.ErrModelNotFound):
		return http.StatusNotFound
	case errors.Is(err, store.ErrDuplicate), errors.Is(err, analysis.ErrModelExists):
		return http.StatusConflict
	case errors.Is(err, store.ErrInvalid), errors.Is(err, store.ErrUnknownLabel),
		errors.Is(err, analysis.ErrNoTrainingData), errors.Is(err, query.ErrEmptyQuery),
		errors.Is(err, analysis.ErrNotExportable), errors.Is(err, index.ErrDimMismatch):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

func decode[T any](r *http.Request) (T, error) {
	var v T
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&v); err != nil {
		return v, fmt.Errorf("invalid JSON body: %w", err)
	}
	return v, nil
}

func (s *Server) handleCreateUser(w http.ResponseWriter, r *http.Request) {
	req, err := decode[CreateUserRequest](r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	id, err := s.Store.CreateUser(req.Name, req.Role)
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	s.writeJSON(w, http.StatusCreated, CreateUserResponse{ID: id})
}

func (s *Server) handleCreateKey(w http.ResponseWriter, r *http.Request) {
	req, err := decode[CreateKeyRequest](r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	key, err := s.Store.IssueAPIKey(req.UserID, s.Clock())
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	s.writeJSON(w, http.StatusCreated, CreateKeyResponse{Key: key})
}

// uploadMode reads the ?mode= selector: "" or "async" is the streaming
// default, "sync" the inline compatibility path.
func uploadMode(r *http.Request) (sync bool, err error) {
	switch m := r.URL.Query().Get("mode"); m {
	case "", "async":
		return false, nil
	case "sync":
		return true, nil
	default:
		return false, fmt.Errorf("unknown mode %q (want sync or async)", m)
	}
}

// writeIngestError surfaces an ingest-path failure. When id is non-zero
// the row IS durable despite the error (keywords or extraction failed
// after the image committed), so the body carries the assigned ID —
// clients recover the row instead of re-uploading a duplicate. ErrBusy
// additionally gets a Retry-After hint, matching the admission layer.
func (s *Server) writeIngestError(w http.ResponseWriter, id uint64, err error) {
	status := statusFor(err)
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	if s.Logger != nil && status >= 500 {
		s.Logger.Printf("api: %v", err)
	}
	s.writeJSON(w, status, ErrorResponse{Error: err.Error(), ID: id})
}

// ingestRecord converts an upload body into the pipeline's input form.
func (s *Server) ingestRecord(req UploadImageRequest) (ingest.Record, error) {
	img, err := req.Pixels.Decode()
	if err != nil {
		return ingest.Record{}, err
	}
	return ingest.Record{
		Image: store.Image{
			FOV:                req.FOV.ToGeo(),
			Pixels:             img,
			TimestampCapturing: req.CapturedAt,
			TimestampUploading: s.Clock(),
			WorkerID:           req.WorkerID,
			CampaignID:         req.CampaignID,
		},
		Keywords: req.Keywords,
	}, nil
}

func (s *Server) handleUploadImage(w http.ResponseWriter, r *http.Request) {
	sync, err := uploadMode(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	req, err := decode[UploadImageRequest](r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	rec, err := s.ingestRecord(req)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if sync {
		id, kinds, err := s.Ingest.SubmitSync(r.Context(), rec)
		if err != nil {
			s.writeIngestError(w, id, err)
			return
		}
		s.writeJSON(w, http.StatusCreated, UploadImageResponse{ID: id, FeatureKinds: kinds})
		return
	}
	id, err := s.Ingest.SubmitAsync(r.Context(), rec)
	if err != nil {
		s.writeIngestError(w, id, err)
		return
	}
	s.writeJSON(w, http.StatusAccepted, UploadImageResponse{ID: id, PendingKinds: s.Service.ExtractorKinds()})
}

// handleStream is the NDJSON streaming ingest endpoint: one
// UploadImageRequest per request line, one StreamAck per response line,
// acked record-by-record as each row becomes WAL-durable. A "busy" ack
// is flow control — that record persisted nothing and should be resent
// after a pause; the stream itself stays open.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	// HTTP/1.x servers sever the request body once the response starts;
	// acks interleave with uploads, so the stream needs full duplex.
	// Transports that refuse (e.g. HTTP/2) interleave natively.
	if err := http.NewResponseController(w).EnableFullDuplex(); err != nil && s.Logger != nil {
		s.Logger.Printf("api: stream full-duplex unavailable: %v", err)
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	writeAck := func(ack StreamAck) bool {
		if err := enc.Encode(ack); err != nil {
			if s.Logger != nil {
				s.Logger.Printf("api: stream ack: %v", err)
			}
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 64*1024), streamMaxLine)
	seq := 0
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		seq++
		var req UploadImageRequest
		ack := StreamAck{Seq: seq}
		if err := json.Unmarshal(line, &req); err != nil {
			ack.Status = "error"
			ack.Error = fmt.Sprintf("invalid JSON record: %v", err)
			if !writeAck(ack) {
				return
			}
			continue
		}
		rec, err := s.ingestRecord(req)
		if err == nil {
			ack.ID, err = s.Ingest.SubmitAsync(r.Context(), rec)
		}
		switch {
		case err == nil:
			ack.Status = "accepted"
		case errors.Is(err, ingest.ErrBusy):
			ack.Status = "busy"
			ack.Error = err.Error()
		default:
			ack.Status = "error"
			ack.Error = err.Error()
		}
		if !writeAck(ack) {
			return
		}
	}
	if err := sc.Err(); err != nil && s.Logger != nil {
		s.Logger.Printf("api: stream read: %v", err)
	}
}

// streamMaxLine bounds one NDJSON record (pixels ride base64-encoded in
// the line, so the cap must hold a full raster comfortably).
const streamMaxLine = 8 << 20

func (s *Server) handleIngestStats(w http.ResponseWriter, r *http.Request) {
	st := s.Ingest.Stats()
	s.writeJSON(w, http.StatusOK, IngestStatsDTO{
		Submitted: st.Submitted, Shed: st.Shed, Persisted: st.Persisted,
		Extracted: st.Extracted, Failed: st.Failed, Swept: st.Swept,
		Refreshes: st.Refreshes, RefreshErr: st.RefreshErr,
		Pending: len(s.Ingest.Pending()),
	})
}

func (s *Server) handleIngestSweep(w http.ResponseWriter, r *http.Request) {
	n, err := s.Ingest.Sweep(r.Context())
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	s.writeJSON(w, http.StatusOK, SweepResponse{Requeued: n})
}

func (s *Server) handleImageStatus(w http.ResponseWriter, r *http.Request) {
	id, err := s.imageID(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	s.writeJSON(w, http.StatusOK, s.Ingest.Status(id))
}

func (s *Server) imageID(r *http.Request) (uint64, error) {
	return strconv.ParseUint(r.PathValue("id"), 10, 64)
}

func (s *Server) imageMeta(id uint64) (ImageMeta, error) {
	img, err := s.Store.GetImage(id)
	if err != nil {
		return ImageMeta{}, err
	}
	meta := ImageMeta{
		ID:           img.ID,
		FOV:          FOVFromGeo(img.FOV),
		CapturedAt:   img.TimestampCapturing,
		UploadedAt:   img.TimestampUploading,
		WorkerID:     img.WorkerID,
		Keywords:     s.Store.KeywordsFor(id),
		FeatureKinds: s.Store.FeatureKinds(id),
	}
	for _, a := range s.Store.AnnotationsFor(id) {
		cls, err := s.Store.GetClassification(a.ClassificationID)
		if err != nil {
			continue
		}
		meta.Annotations = append(meta.Annotations, Annotation{
			Classification: cls.Name,
			Label:          cls.Labels[a.Label],
			Confidence:     a.Confidence,
			Source:         string(a.Source),
		})
	}
	return meta, nil
}

func (s *Server) handleGetImage(w http.ResponseWriter, r *http.Request) {
	id, err := s.imageID(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	meta, err := s.imageMeta(id)
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	s.writeJSON(w, http.StatusOK, meta)
}

func (s *Server) handleGetPixels(w http.ResponseWriter, r *http.Request) {
	id, err := s.imageID(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	img, err := s.Store.GetImage(id)
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	s.writeJSON(w, http.StatusOK, EncodePixels(img.Pixels))
}

func (s *Server) handleAnnotate(w http.ResponseWriter, r *http.Request) {
	id, err := s.imageID(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	req, err := decode[AnnotateRequest](r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	cls, err := s.Store.ClassificationByName(req.Classification)
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	label := -1
	for i, l := range cls.Labels {
		if l == req.Label {
			label = i
			break
		}
	}
	if label < 0 {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("classification %q has no label %q", req.Classification, req.Label))
		return
	}
	source := store.AnnotationSource(req.Source)
	if source == "" {
		source = store.SourceHuman
	}
	conf := req.Confidence
	if conf == 0 {
		conf = 1
	}
	err = s.Store.Annotate(store.Annotation{
		ImageID: id, ClassificationID: cls.ID, Label: label,
		Confidence: conf, Source: source, AnnotatedAt: s.Clock(),
	})
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	req, err := decode[SearchRequest](r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	q := query.Query{Limit: req.Limit}
	if req.Spatial != nil {
		rect := geo.Rect{MinLat: req.Spatial.MinLat, MinLon: req.Spatial.MinLon,
			MaxLat: req.Spatial.MaxLat, MaxLon: req.Spatial.MaxLon}
		q.Spatial = &query.SpatialClause{Rect: &rect}
	}
	if req.Near != nil {
		p := geo.Point{Lat: req.Near.Lat, Lon: req.Near.Lon}
		q.Spatial = &query.SpatialClause{Near: &p, K: req.Near.K}
	}
	if req.Visual != nil {
		q.Visual = &query.VisualClause{
			Kind: req.Visual.Kind, Vec: req.Visual.Vector, K: req.Visual.K,
			Exact: req.Visual.Exact, Quant: req.Visual.Quant,
		}
	}
	if req.Categorical != nil {
		q.Categorical = &query.CategoricalClause{
			Classification: req.Categorical.Classification,
			Label:          req.Categorical.Label,
			MinConfidence:  req.Categorical.MinConfidence,
		}
	}
	if req.Textual != nil {
		q.Textual = &query.TextualClause{Terms: req.Textual.Terms, MatchAll: req.Textual.MatchAll}
	}
	if req.Temporal != nil {
		q.Temporal = &query.TemporalClause{From: req.Temporal.From, To: req.Temporal.To}
	}
	results, plan, err := s.Query.Run(r.Context(), q)
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	resp := SearchResponse{Plan: plan.String(), Results: make([]SearchHit, len(results))}
	for i, res := range results {
		resp.Results[i] = SearchHit{ID: res.ID, Score: res.Score}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDownloadDataset(w http.ResponseWriter, r *http.Request) {
	classification := r.URL.Query().Get("classification")
	label := r.URL.Query().Get("label")
	if classification == "" || label == "" {
		s.writeError(w, http.StatusBadRequest, errors.New("classification and label query params required"))
		return
	}
	results, err := s.Query.ByLabel(r.Context(), classification, label)
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	metas := make([]ImageMeta, 0, len(results))
	for _, res := range results {
		if err := r.Context().Err(); err != nil {
			s.writeError(w, statusFor(err), err)
			return
		}
		m, err := s.imageMeta(res.ID)
		if err != nil {
			continue
		}
		metas = append(metas, m)
	}
	s.writeJSON(w, http.StatusOK, metas)
}

func (s *Server) handleExtractFeature(w http.ResponseWriter, r *http.Request) {
	kind := r.PathValue("kind")
	req, err := decode[FeatureRequest](r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	img, err := req.Pixels.Decode()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	vec, err := s.Service.ExtractUploaded(kind, img)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	s.writeJSON(w, http.StatusOK, FeatureResponse{Kind: kind, Vector: vec})
}

func specDTO(spec analysis.ModelSpec) ModelSpecDTO {
	return ModelSpecDTO{
		Name: spec.Name, FeatureKind: spec.FeatureKind, Dim: spec.Dim,
		Classification: spec.Classification, Labels: spec.Labels,
		Owner: spec.Owner, TrainedOn: spec.TrainedOn, MacroF1: spec.MacroF1,
	}
}

func (s *Server) handleListModels(w http.ResponseWriter, r *http.Request) {
	specs := s.Service.Registry.List()
	out := make([]ModelSpecDTO, len(specs))
	for i, spec := range specs {
		out[i] = specDTO(spec)
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleTrainModel(w http.ResponseWriter, r *http.Request) {
	req, err := decode[TrainRequest](r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	owner := ""
	if u, err := s.Store.Authenticate(r.Header.Get("X-API-Key")); err == nil {
		owner = u.Name
	}
	spec, err := s.Service.TrainModel(r.Context(), analysis.TrainConfig{
		Name:           req.Name,
		Classification: req.Classification,
		FeatureKind:    req.FeatureKind,
		HoldoutFrac:    req.HoldoutFrac,
		MinConfidence:  req.MinConfidence,
		Owner:          owner,
		Seed:           req.Seed,
	})
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	s.writeJSON(w, http.StatusCreated, specDTO(spec))
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	req, err := decode[PredictRequest](r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	vec := req.Vector
	if vec == nil && req.Pixels != nil {
		spec, err := s.Service.Registry.Spec(name)
		if err != nil {
			s.writeError(w, statusFor(err), err)
			return
		}
		img, err := req.Pixels.Decode()
		if err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
		vec, err = s.Service.ExtractUploaded(spec.FeatureKind, img)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	if vec == nil {
		s.writeError(w, http.StatusBadRequest, errors.New("predict needs a vector or pixels"))
		return
	}
	p, err := s.Service.Registry.Predict(name, vec)
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	s.writeJSON(w, http.StatusOK, PredictResponse{
		Label: p.Label, LabelName: p.LabelName, Confidence: p.Confidence, Probs: p.Probs,
	})
}

func (s *Server) handleModelAnnotate(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req struct {
		ImageIDs []uint64 `json:"image_ids"`
	}
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	ids := req.ImageIDs
	if len(ids) == 0 {
		ids = s.Store.ImageIDs()
	}
	annotated, skipped, err := s.Service.AnnotateImages(r.Context(), name, ids, s.Clock())
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]int{"annotated": annotated, "skipped": skipped})
}

func (s *Server) handleListClassifications(w http.ResponseWriter, r *http.Request) {
	all := s.Store.Classifications()
	out := make([]ClassificationDTO, len(all))
	for i, c := range all {
		out[i] = ClassificationDTO{ID: c.ID, Name: c.Name, Labels: c.Labels}
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCreateClassification(w http.ResponseWriter, r *http.Request) {
	req, err := decode[ClassificationDTO](r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	id, err := s.Store.CreateClassification(req.Name, req.Labels)
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	s.writeJSON(w, http.StatusCreated, ClassificationDTO{ID: id, Name: req.Name, Labels: req.Labels})
}

func (s *Server) handleDispatch(w http.ResponseWriter, r *http.Request) {
	req, err := decode[DispatchRequest](r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	var dev edge.DeviceProfile
	switch edge.DeviceClass(req.Device) {
	case edge.ClassDesktop:
		dev = edge.Desktop
	case edge.ClassRaspberry:
		dev = edge.RaspberryPi3B
	case edge.ClassSmartphone:
		dev = edge.Smartphone
	default:
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("unknown device class %q", req.Device))
		return
	}
	c := edge.Constraints{ImageSide: req.ImageSide}
	if req.MaxLatencyMs > 0 {
		c.MaxLatency = time.Duration(req.MaxLatencyMs) * time.Millisecond
	}
	d, err := edge.Dispatch(dev, nnProfiles(), c, nil)
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	s.writeJSON(w, http.StatusOK, DispatchResponse{
		Model:            d.Model.Name,
		EstimatedLatency: float64(d.EstimatedLatency) / float64(time.Millisecond),
		MetConstraints:   d.MetConstraints,
	})
}

func videoDTO(v store.Video) VideoDTO {
	return VideoDTO{
		ID: v.ID, Description: v.Description, WorkerID: v.WorkerID,
		Start: v.Start, End: v.End, FrameIDs: v.FrameIDs,
	}
}

func (s *Server) handleUploadVideo(w http.ResponseWriter, r *http.Request) {
	sync, err := uploadMode(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	req, err := decode[UploadVideoRequest](r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	frames := make([]store.Frame, len(req.Frames))
	for i, f := range req.Frames {
		img, err := f.Pixels.Decode()
		if err != nil {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("frame %d: %w", i, err))
			return
		}
		frames[i] = store.Frame{
			Pixels: img, FOV: f.FOV.ToGeo(),
			CapturedAt: f.CapturedAt, Keywords: f.Keywords,
		}
	}
	v := ingest.VideoRecord{Description: req.Description, WorkerID: req.WorkerID, Frames: frames}
	if sync {
		vid, results, err := s.Ingest.SubmitVideoSync(r.Context(), v)
		if err != nil {
			// Persistence itself failed: nothing durable, safe to retry.
			s.writeError(w, statusFor(err), err)
			return
		}
		// Per-frame extraction failures are NOT a video error: every
		// frame is WAL-durable (one batch) and failed frames ride the
		// pending sweep. A 5xx here would invite a retry that
		// duplicates the whole video, so the response is 201 with
		// per-frame status instead.
		resp := UploadVideoResponse{ID: vid, FrameIDs: make([]uint64, 0, len(results))}
		for _, fr := range results {
			resp.FrameIDs = append(resp.FrameIDs, fr.ID)
			resp.Frames = append(resp.Frames, FrameStatusDTO{ID: fr.ID, FeatureKinds: fr.Kinds, Error: fr.Err})
		}
		s.writeJSON(w, http.StatusCreated, resp)
		return
	}
	vid, ids, err := s.Ingest.SubmitVideoAsync(r.Context(), v)
	if err != nil {
		s.writeIngestError(w, vid, err)
		return
	}
	s.writeJSON(w, http.StatusAccepted, UploadVideoResponse{
		ID: vid, FrameIDs: ids, PendingKinds: s.Service.ExtractorKinds(),
	})
}

func (s *Server) handleListVideos(w http.ResponseWriter, r *http.Request) {
	vs := s.Store.Videos()
	out := make([]VideoDTO, len(vs))
	for i, v := range vs {
		out[i] = videoDTO(v)
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGetVideo(w http.ResponseWriter, r *http.Request) {
	id, err := s.imageID(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	v, err := s.Store.GetVideo(id)
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	s.writeJSON(w, http.StatusOK, videoDTO(v))
}

// handleModelDownload serves the portable form of a trained model so
// edge devices can run it locally (paper §V, API 6).
func (s *Server) handleModelDownload(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	data, err := s.Service.Registry.Export(name)
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(data); err != nil && s.Logger != nil {
		s.Logger.Printf("api: writing model download: %v", err)
	}
}

// handleModelImport registers a previously exported model — the
// share-your-model path of §V's devise-new-models API.
func (s *Server) handleModelImport(w http.ResponseWriter, r *http.Request) {
	var raw json.RawMessage
	if err := json.NewDecoder(r.Body).Decode(&raw); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	spec, err := s.Service.Registry.Import(raw)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, analysis.ErrModelExists) {
			status = http.StatusConflict
		}
		s.writeError(w, status, err)
		return
	}
	s.writeJSON(w, http.StatusCreated, specDTO(spec))
}

func campaignDTO(c store.CampaignRec, images int) CampaignDTO {
	return CampaignDTO{
		ID: c.ID, Name: c.Name,
		MinLat: c.Region.MinLat, MinLon: c.Region.MinLon,
		MaxLat: c.Region.MaxLat, MaxLon: c.Region.MaxLon,
		TargetCoverage: c.TargetCoverage, CreatedAt: c.CreatedAt,
		Images: images,
	}
}

func (s *Server) handleCreateCampaign(w http.ResponseWriter, r *http.Request) {
	req, err := decode[CampaignDTO](r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	rec := store.CampaignRec{
		Name: req.Name,
		Region: geo.Rect{MinLat: req.MinLat, MinLon: req.MinLon,
			MaxLat: req.MaxLat, MaxLon: req.MaxLon},
		TargetCoverage: req.TargetCoverage,
		CreatedAt:      s.Clock(),
	}
	if u, err := s.Store.Authenticate(r.Header.Get("X-API-Key")); err == nil {
		rec.CreatedBy = u.ID
	}
	id, err := s.Store.CreateCampaign(rec)
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	rec.ID = id
	s.writeJSON(w, http.StatusCreated, campaignDTO(rec, 0))
}

func (s *Server) handleListCampaigns(w http.ResponseWriter, r *http.Request) {
	cs := s.Store.Campaigns()
	out := make([]CampaignDTO, len(cs))
	for i, c := range cs {
		out[i] = campaignDTO(c, len(s.Store.CampaignImages(c.ID)))
	}
	s.writeJSON(w, http.StatusOK, out)
}

// handleCampaignCoverage measures the campaign region's FOV coverage over
// the stored corpus and lists the weak cells the next collection round
// should target.
func (s *Server) handleCampaignCoverage(w http.ResponseWriter, r *http.Request) {
	id, err := s.imageID(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	c, err := s.Store.GetCampaign(id)
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	rows, err := queryInt(r, "rows", 10)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	cols, err := queryInt(r, "cols", 10)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	model, err := crowd.NewCoverageModel(c.Region, rows, cols, 1, 1)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	fovs := s.Store.FOVsInRegion(c.Region)
	cm := model.Measure(fovs)
	report := CoverageReport{Rows: rows, Cols: cols, FOVs: len(fovs), Ratio: cm.Ratio()}
	for _, p := range cm.WeakCells() {
		report.WeakCells = append(report.WeakCells, LatLon{Lat: p.Lat, Lon: p.Lon})
	}
	s.writeJSON(w, http.StatusOK, report)
}

// queryInt parses an optional positive-integer query parameter. An absent
// parameter means def; a malformed, zero, or negative value is an error
// for the caller to surface as 400, never silently coerced to def.
func queryInt(r *http.Request, key string, def int) (int, error) {
	v := r.URL.Query().Get(key)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("query param %s=%q: must be a positive integer", key, v)
	}
	return n, nil
}
