package api

import (
	"net"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Admission control: a per-client token bucket in front of the mux.
// Under overload the server sheds excess requests as 429 with a
// Retry-After hint *before* spending any handler work on them, keeping
// tail latency for admitted requests bounded instead of letting every
// request degrade together. Clients are keyed by API key when presented
// (one budget per principal, however many connections they open) and by
// remote host otherwise, so the unauthenticated bootstrap endpoints are
// covered too.

// bucketIdleEvict is how long an untouched client bucket survives before
// the next admission sweep reclaims it.
const bucketIdleEvict = 5 * time.Minute

type tokenBucket struct {
	tokens float64
	last   time.Time
}

// admission holds the per-client buckets. Rate and burst live on the
// Server (read per call), so the zero admission is usable as soon as the
// map exists.
type admission struct {
	mu sync.Mutex
	//tvdp:guardedby mu
	buckets map[string]*tokenBucket
	//tvdp:guardedby mu
	lastSweep time.Time
}

func newAdmission() *admission {
	return &admission{buckets: make(map[string]*tokenBucket)}
}

// admit refills key's bucket at rate tokens/sec up to burst and takes
// one token. When the bucket is empty it reports false and how long
// until a token accrues (the Retry-After hint, rounded up to a second).
func (a *admission) admit(key string, now time.Time, rate float64, burst int) (bool, time.Duration) {
	cap := float64(burst)
	a.mu.Lock()
	defer a.mu.Unlock()
	b, ok := a.buckets[key]
	if !ok {
		b = &tokenBucket{tokens: cap, last: now}
		a.buckets[key] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * rate
		if b.tokens > cap {
			b.tokens = cap
		}
	}
	b.last = now
	a.sweepLocked(now)
	if b.tokens < 1 {
		wait := time.Duration((1 - b.tokens) / rate * float64(time.Second))
		return false, wait
	}
	b.tokens--
	return true, 0
}

// sweepLocked drops buckets idle past bucketIdleEvict, at most once per
// evict interval, so one-shot clients don't accumulate forever.
//
//tvdp:requires mu
func (a *admission) sweepLocked(now time.Time) {
	if now.Sub(a.lastSweep) < bucketIdleEvict {
		return
	}
	a.lastSweep = now
	for key, b := range a.buckets {
		if now.Sub(b.last) >= bucketIdleEvict {
			delete(a.buckets, key)
		}
	}
}

// clientKey identifies the admission principal: the API key when the
// request carries one, else the remote host (ignoring the ephemeral
// port, so reconnecting does not refresh the budget).
//
// Two past aliasing bugs are pinned here (and in the tests):
//
//   - A present-but-blank X-API-Key header (empty or whitespace-only)
//     used to mint a "k:" principal shared by every such client — one
//     misconfigured fleet drained a single bucket for all of them. Blank
//     keys now fall back to remote-host keying.
//   - When RemoteAddr carries no port, a bracketed IPv6 literal
//     ("[::1]") and the raw form ("::1") keyed to different buckets, so
//     one client could double its budget by varying the form. The
//     brackets are stripped before keying.
func clientKey(r *http.Request) string {
	if key := strings.TrimSpace(r.Header.Get("X-API-Key")); key != "" {
		return "k:" + key
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
		if strings.HasPrefix(host, "[") && strings.HasSuffix(host, "]") {
			host = host[1 : len(host)-1]
		}
	}
	return "h:" + host
}
