package api

import (
	"bytes"
	"net/http"
	"strconv"
	"sync"
	"testing"
	"time"
)

// admissionEnv is an env whose server sheds load: rate tokens/sec,
// burst capacity, and a manually-advanced clock so refill is exact.
type admissionEnv struct {
	*env
	mu  sync.Mutex
	now time.Time
}

func newAdmissionEnv(t *testing.T, rate float64, burst int) *admissionEnv {
	t.Helper()
	e := newEnv(t)
	ae := &admissionEnv{env: e, now: time.Date(2019, 3, 1, 12, 0, 0, 0, time.UTC)}
	// newEnv's bootstrap requests are done; configure admission before
	// this test's own requests flow.
	srv := e.srv.Config.Handler.(*Server)
	srv.RateLimit = rate
	srv.RateBurst = burst
	srv.Clock = func() time.Time {
		ae.mu.Lock()
		defer ae.mu.Unlock()
		return ae.now
	}
	return ae
}

func (ae *admissionEnv) advance(d time.Duration) {
	ae.mu.Lock()
	ae.now = ae.now.Add(d)
	ae.mu.Unlock()
}

// get fires one request keyed by apiKey and returns the status code.
func (ae *admissionEnv) get(t *testing.T, apiKey string) (int, http.Header) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ae.srv.URL+"/api/v1/classifications", nil)
	if err != nil {
		t.Fatal(err)
	}
	if apiKey != "" {
		req.Header.Set("X-API-Key", apiKey)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode, resp.Header
}

// TestAdmissionSheds429: with a frozen clock, exactly burst requests are
// admitted per client; excess is shed as 429 with a Retry-After hint,
// and advancing the clock refills the bucket.
func TestAdmissionSheds429(t *testing.T) {
	ae := newAdmissionEnv(t, 1, 3)
	for i := 0; i < 3; i++ {
		if code, _ := ae.get(t, "worker-key"); code == http.StatusTooManyRequests {
			t.Fatalf("request %d within burst was shed", i)
		}
	}
	code, hdr := ae.get(t, "worker-key")
	if code != http.StatusTooManyRequests {
		t.Fatalf("request past burst got %d, want 429", code)
	}
	if ra, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer of seconds", hdr.Get("Retry-After"))
	}
	// A different client has its own bucket.
	if code, _ := ae.get(t, "other-key"); code == http.StatusTooManyRequests {
		t.Fatal("distinct client was shed by the first client's bucket")
	}
	// One second accrues one token at rate 1.
	ae.advance(time.Second)
	if code, _ := ae.get(t, "worker-key"); code == http.StatusTooManyRequests {
		t.Fatal("bucket did not refill after clock advance")
	}
	if code, _ := ae.get(t, "worker-key"); code != http.StatusTooManyRequests {
		t.Fatalf("second request after 1s refill got %d, want 429", code)
	}
}

// TestAdmissionConcurrent hammers one client key from many goroutines
// under the race detector: with a frozen clock exactly burst requests
// may pass, and every response is one of admitted or 429.
func TestAdmissionConcurrent(t *testing.T) {
	const burst, callers = 5, 20
	ae := newAdmissionEnv(t, 1, burst)
	codes := make([]int, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], _ = ae.get(t, "stress-key")
		}(i)
	}
	wg.Wait()
	shed := 0
	for _, code := range codes {
		if code == http.StatusTooManyRequests {
			shed++
		}
	}
	if shed != callers-burst {
		t.Fatalf("%d of %d shed, want exactly %d (burst %d, frozen clock)",
			shed, callers, callers-burst, burst)
	}
}

// TestAdmissionDisabledByDefault: RateLimit 0 never sheds.
func TestAdmissionDisabledByDefault(t *testing.T) {
	e := newEnv(t)
	for i := 0; i < 50; i++ {
		resp, err := http.Get(e.srv.URL + "/api/v1/classifications")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			t.Fatalf("request %d shed with admission disabled", i)
		}
	}
}

// TestSearchDimMismatchIs400: a query vector of the wrong width must
// surface as a client error, not a 500.
func TestSearchDimMismatchIs400(t *testing.T) {
	e := newEnv(t)
	if _, err := e.client.UploadImage(sampleUpload(t, 1)); err != nil {
		t.Fatal(err)
	}
	body := []byte(`{"visual":{"kind":"color_hist","vector":[1,2,3],"k":5,"exact":true}}`)
	req, err := http.NewRequest(http.MethodPost, e.srv.URL+"/api/v1/search", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-API-Key", e.client.APIKey)
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("dim-mismatched search got %d, want 400", resp.StatusCode)
	}
}

// TestClientKey pins the admission-principal derivation, including two
// regression cases: blank (present-but-empty or whitespace-only)
// X-API-Key headers must fall back to host keying instead of pooling
// every such client into one "k:" bucket, and IPv6 literals must key
// identically whether RemoteAddr carries brackets or not.
func TestClientKey(t *testing.T) {
	cases := []struct {
		name       string
		apiKey     *string // nil = header absent
		remoteAddr string
		want       string
	}{
		{"api key wins over host", strptr("secret-1"), "10.0.0.1:4444", "k:secret-1"},
		{"api key trimmed", strptr("  secret-1\t"), "10.0.0.1:4444", "k:secret-1"},
		{"absent key falls back to host", nil, "10.0.0.1:4444", "h:10.0.0.1"},
		{"empty key falls back to host", strptr(""), "10.0.0.2:4444", "h:10.0.0.2"},
		{"whitespace key falls back to host", strptr("   "), "10.0.0.3:4444", "h:10.0.0.3"},
		{"port stripped", nil, "10.0.0.4:50000", "h:10.0.0.4"},
		{"host without port kept", nil, "10.0.0.5", "h:10.0.0.5"},
		{"ipv6 with port", nil, "[::1]:8080", "h:::1"},
		{"ipv6 bracketed no port", nil, "[::1]", "h:::1"},
		{"ipv6 raw no port", nil, "::1", "h:::1"},
		{"ipv6 full bracketed", nil, "[2001:db8::7]", "h:2001:db8::7"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, err := http.NewRequest(http.MethodGet, "/api/v1/images", nil)
			if err != nil {
				t.Fatal(err)
			}
			r.RemoteAddr = tc.remoteAddr
			if tc.apiKey != nil {
				r.Header.Set("X-API-Key", *tc.apiKey)
			}
			if got := clientKey(r); got != tc.want {
				t.Fatalf("clientKey(%q key=%v) = %q, want %q", tc.remoteAddr, tc.apiKey, got, tc.want)
			}
		})
	}
}

func strptr(s string) *string { return &s }

// TestClientKeyIPv6FormsShareBucket drives the regression end to end:
// the same client presenting bracketed and raw IPv6 forms must drain one
// admission bucket, not two.
func TestClientKeyIPv6FormsShareBucket(t *testing.T) {
	a := newAdmission()
	now := time.Unix(1000, 0)
	// burst 1: the first form takes the only token; the second form must
	// be rejected (same bucket), not admitted from a fresh one.
	if ok, _ := a.admit(keyFor(t, "[::1]"), now, 1, 1); !ok {
		t.Fatal("first request should be admitted")
	}
	if ok, _ := a.admit(keyFor(t, "::1"), now, 1, 1); ok {
		t.Fatal("raw IPv6 form minted a second bucket: budget doubled")
	}
}

func keyFor(t *testing.T, remoteAddr string) string {
	t.Helper()
	r, err := http.NewRequest(http.MethodGet, "/", nil)
	if err != nil {
		t.Fatal(err)
	}
	r.RemoteAddr = remoteAddr
	return clientKey(r)
}
