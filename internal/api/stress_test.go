package api

import (
	"fmt"
	"sync"
	"testing"
)

// Concurrent-serving stress: hammer upload/annotate/search on one server
// from many goroutines and assert no write is lost and no read is torn.
// Run under -race (scripts/ci.sh does) for the full data-race guarantee.
func TestConcurrentServingStress(t *testing.T) {
	e := newEnv(t)
	if _, err := e.client.CreateClassification("street_cleanliness", []string{"Clean", "Dirty"}); err != nil {
		t.Fatal(err)
	}

	const writers, perWriter, readers = 8, 8, 4
	labels := []string{"Clean", "Dirty"}

	type upload struct {
		id    uint64
		label string
	}
	var (
		mu   sync.Mutex
		done []upload
	)
	record := func(u upload) {
		mu.Lock()
		done = append(done, u)
		mu.Unlock()
	}
	snapshot := func() []upload {
		mu.Lock()
		defer mu.Unlock()
		return append([]upload(nil), done...)
	}

	errs := make(chan error, writers+readers)
	var writeWG, readWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			for i := 0; i < perWriter; i++ {
				req := sampleUpload(t, int64(w*1000+i+1))
				up, err := e.client.UploadImage(req)
				if err != nil {
					errs <- fmt.Errorf("writer %d: upload: %w", w, err)
					return
				}
				label := labels[(w+i)%len(labels)]
				if err := e.client.Annotate(up.ID, AnnotateRequest{
					Classification: "street_cleanliness", Label: label, Confidence: 1, Source: "human",
				}); err != nil {
					errs <- fmt.Errorf("writer %d: annotate %d: %w", w, up.ID, err)
					return
				}
				record(upload{id: up.ID, label: label})
			}
		}(w)
	}

	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		readWG.Add(1)
		go func(r int) {
			defer readWG.Done()
			n := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				n++
				// Point reads over everything already acknowledged: a torn
				// read would surface as a mismatched or partial row.
				for _, u := range snapshot() {
					meta, err := e.client.GetImage(u.id)
					if err != nil {
						errs <- fmt.Errorf("reader %d: get %d: %w", r, u.id, err)
						return
					}
					if meta.ID != u.id || len(meta.Keywords) == 0 || len(meta.FeatureKinds) == 0 {
						errs <- fmt.Errorf("reader %d: torn read of %d: %+v", r, u.id, meta)
						return
					}
				}
				// Search across text and categorical planes; every hit must
				// resolve (this store never deletes).
				req := SearchRequest{Limit: 16}
				req.Categorical = &struct {
					Classification string  `json:"classification"`
					Label          string  `json:"label"`
					MinConfidence  float64 `json:"min_confidence"`
				}{Classification: "street_cleanliness", Label: labels[n%len(labels)]}
				res, err := e.client.Search(req)
				if err != nil {
					errs <- fmt.Errorf("reader %d: search: %w", r, err)
					return
				}
				for _, hit := range res.Results {
					if _, err := e.client.GetImage(hit.ID); err != nil {
						errs <- fmt.Errorf("reader %d: search hit %d unreadable: %w", r, hit.ID, err)
						return
					}
				}
			}
		}(r)
	}

	writeWG.Wait()
	close(stop)
	readWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// No lost writes: every acknowledged upload is present with its
	// annotation, and the store holds exactly the acknowledged set.
	final := snapshot()
	if len(final) != writers*perWriter {
		t.Fatalf("acknowledged %d uploads, want %d", len(final), writers*perWriter)
	}
	if n := e.st.NumImages(); n != writers*perWriter {
		t.Fatalf("store holds %d images, want %d", n, writers*perWriter)
	}
	for _, u := range final {
		meta, err := e.client.GetImage(u.id)
		if err != nil {
			t.Fatalf("lost write %d: %v", u.id, err)
		}
		found := false
		for _, a := range meta.Annotations {
			if a.Classification == "street_cleanliness" && a.Label == u.label {
				found = true
			}
		}
		if !found {
			t.Fatalf("lost annotation on %d: %+v", u.id, meta.Annotations)
		}
	}
	ids := e.st.ImageIDs()
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("ImageIDs not strictly ascending under concurrent upload: %v", ids[i-1:i+1])
		}
	}
}
