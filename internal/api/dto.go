// Package api exposes TVDP's Restful web services (paper §V): data
// upload, multi-modal search, dataset download, feature extraction, model
// listing/prediction/training, classification management, and edge model
// dispatch — all behind API-key authentication, with a typed Go client
// for programmatic use.
package api

import (
	"encoding/base64"
	"fmt"
	"time"

	"repro/internal/geo"
	"repro/internal/imagesim"
)

// FOVDTO mirrors geo.FOV on the wire.
type FOVDTO struct {
	Lat       float64 `json:"lat"`
	Lon       float64 `json:"lon"`
	Direction float64 `json:"direction"`
	Angle     float64 `json:"angle"`
	Radius    float64 `json:"radius"`
}

// ToGeo converts to the internal representation.
func (f FOVDTO) ToGeo() geo.FOV {
	return geo.FOV{
		Camera:    geo.Point{Lat: f.Lat, Lon: f.Lon},
		Direction: f.Direction, Angle: f.Angle, Radius: f.Radius,
	}
}

// FOVFromGeo converts from the internal representation.
func FOVFromGeo(f geo.FOV) FOVDTO {
	return FOVDTO{Lat: f.Camera.Lat, Lon: f.Camera.Lon,
		Direction: f.Direction, Angle: f.Angle, Radius: f.Radius}
}

// PixelsDTO carries raw RGB rasters as base64.
type PixelsDTO struct {
	W    int    `json:"w"`
	H    int    `json:"h"`
	Data string `json:"data"` // base64 of W*H*3 bytes, row-major RGB
}

// EncodePixels converts an image to its wire form.
func EncodePixels(img *imagesim.Image) PixelsDTO {
	buf := make([]byte, 0, len(img.Pix)*3)
	for _, p := range img.Pix {
		buf = append(buf, p.R, p.G, p.B)
	}
	return PixelsDTO{W: img.W, H: img.H, Data: base64.StdEncoding.EncodeToString(buf)}
}

// Decode converts the wire form back to an image.
func (p PixelsDTO) Decode() (*imagesim.Image, error) {
	raw, err := base64.StdEncoding.DecodeString(p.Data)
	if err != nil {
		return nil, fmt.Errorf("api: decoding pixels: %w", err)
	}
	img, err := imagesim.New(p.W, p.H)
	if err != nil {
		return nil, err
	}
	if len(raw) != p.W*p.H*3 {
		return nil, fmt.Errorf("api: pixel payload is %d bytes, want %d", len(raw), p.W*p.H*3)
	}
	for i := range img.Pix {
		img.Pix[i] = imagesim.RGB{R: raw[i*3], G: raw[i*3+1], B: raw[i*3+2]}
	}
	return img, nil
}

// UploadImageRequest is the "Add new data" API body.
type UploadImageRequest struct {
	FOV        FOVDTO    `json:"fov"`
	Pixels     PixelsDTO `json:"pixels"`
	CapturedAt time.Time `json:"captured_at"`
	Keywords   []string  `json:"keywords,omitempty"`
	WorkerID   string    `json:"worker_id,omitempty"`
	CampaignID uint64    `json:"campaign_id,omitempty"`
}

// UploadImageResponse confirms ingest. A synchronous upload (mode=sync,
// HTTP 201) reports the extracted FeatureKinds; a streaming upload (the
// default, HTTP 202) is acked as soon as the row is WAL-durable and
// reports the kinds still PendingKinds extraction on the pipeline.
type UploadImageResponse struct {
	ID uint64 `json:"id"`
	// FeatureKinds lists the feature families extracted at ingest.
	FeatureKinds []string `json:"feature_kinds,omitempty"`
	// PendingKinds lists the families the pipeline will extract
	// asynchronously (poll /images/{id}/status).
	PendingKinds []string `json:"pending_kinds,omitempty"`
}

// ImageMeta is the downloadable metadata view of one image.
type ImageMeta struct {
	ID           uint64       `json:"id"`
	FOV          FOVDTO       `json:"fov"`
	CapturedAt   time.Time    `json:"captured_at"`
	UploadedAt   time.Time    `json:"uploaded_at"`
	WorkerID     string       `json:"worker_id,omitempty"`
	Keywords     []string     `json:"keywords,omitempty"`
	Annotations  []Annotation `json:"annotations,omitempty"`
	FeatureKinds []string     `json:"feature_kinds,omitempty"`
}

// Annotation is the wire form of a stored annotation.
type Annotation struct {
	Classification string  `json:"classification"`
	Label          string  `json:"label"`
	Confidence     float64 `json:"confidence"`
	Source         string  `json:"source"`
}

// SearchRequest mirrors query.Query on the wire; absent clauses are nil.
type SearchRequest struct {
	Spatial *struct {
		MinLat float64 `json:"min_lat"`
		MinLon float64 `json:"min_lon"`
		MaxLat float64 `json:"max_lat"`
		MaxLon float64 `json:"max_lon"`
	} `json:"spatial,omitempty"`
	Near *struct {
		Lat float64 `json:"lat"`
		Lon float64 `json:"lon"`
		K   int     `json:"k"`
	} `json:"near,omitempty"`
	Visual *struct {
		Kind   string    `json:"kind"`
		Vector []float64 `json:"vector"`
		K      int       `json:"k"`
		// Exact forces the full-precision linear scan; Quant the int8
		// quantized scan with exact re-rank. Neither set = LSH probe.
		Exact bool `json:"exact,omitempty"`
		Quant bool `json:"quant,omitempty"`
	} `json:"visual,omitempty"`
	Categorical *struct {
		Classification string  `json:"classification"`
		Label          string  `json:"label"`
		MinConfidence  float64 `json:"min_confidence"`
	} `json:"categorical,omitempty"`
	Textual *struct {
		Terms    []string `json:"terms"`
		MatchAll bool     `json:"match_all"`
	} `json:"textual,omitempty"`
	Temporal *struct {
		From time.Time `json:"from"`
		To   time.Time `json:"to"`
	} `json:"temporal,omitempty"`
	Limit int `json:"limit,omitempty"`
}

// SearchResponse returns ranked hits plus the executed plan.
type SearchResponse struct {
	Results []SearchHit `json:"results"`
	Plan    string      `json:"plan"`
}

// SearchHit is one ranked result.
type SearchHit struct {
	ID    uint64  `json:"id"`
	Score float64 `json:"score"`
}

// FeatureRequest uploads an image for featurisation.
type FeatureRequest struct {
	Pixels PixelsDTO `json:"pixels"`
}

// FeatureResponse returns the extracted vector.
type FeatureResponse struct {
	Kind   string    `json:"kind"`
	Vector []float64 `json:"vector"`
}

// PredictRequest runs a registered model on a feature vector or image.
type PredictRequest struct {
	Vector []float64  `json:"vector,omitempty"`
	Pixels *PixelsDTO `json:"pixels,omitempty"`
}

// PredictResponse is the model output.
type PredictResponse struct {
	Label      int       `json:"label"`
	LabelName  string    `json:"label_name"`
	Confidence float64   `json:"confidence"`
	Probs      []float64 `json:"probs"`
}

// TrainRequest devises a new model from stored data.
type TrainRequest struct {
	Name           string  `json:"name"`
	Classification string  `json:"classification"`
	FeatureKind    string  `json:"feature_kind"`
	HoldoutFrac    float64 `json:"holdout_frac,omitempty"`
	MinConfidence  float64 `json:"min_confidence,omitempty"`
	Seed           int64   `json:"seed,omitempty"`
}

// ModelSpecDTO is the wire form of analysis.ModelSpec.
type ModelSpecDTO struct {
	Name           string   `json:"name"`
	FeatureKind    string   `json:"feature_kind"`
	Dim            int      `json:"dim"`
	Classification string   `json:"classification"`
	Labels         []string `json:"labels"`
	Owner          string   `json:"owner,omitempty"`
	TrainedOn      int      `json:"trained_on"`
	MacroF1        float64  `json:"macro_f1"`
}

// AnnotateRequest attaches a label to a stored image.
type AnnotateRequest struct {
	Classification string  `json:"classification"`
	Label          string  `json:"label"`
	Confidence     float64 `json:"confidence"`
	Source         string  `json:"source,omitempty"`
}

// ClassificationDTO is the wire form of a labelling scheme.
type ClassificationDTO struct {
	ID     uint64   `json:"id"`
	Name   string   `json:"name"`
	Labels []string `json:"labels"`
}

// CreateUserRequest registers a participant.
type CreateUserRequest struct {
	Name string `json:"name"`
	Role string `json:"role"`
}

// CreateUserResponse returns the new user's id.
type CreateUserResponse struct {
	ID uint64 `json:"id"`
}

// CreateKeyRequest mints an API key.
type CreateKeyRequest struct {
	UserID uint64 `json:"user_id"`
}

// CreateKeyResponse returns the minted key.
type CreateKeyResponse struct {
	Key string `json:"key"`
}

// DispatchRequest asks the edge service which model a device should run.
type DispatchRequest struct {
	Device       string `json:"device"` // "desktop" | "raspberry_pi" | "smartphone"
	MaxLatencyMs int    `json:"max_latency_ms,omitempty"`
	ImageSide    int    `json:"image_side,omitempty"`
}

// DispatchResponse reports the chosen model.
type DispatchResponse struct {
	Model            string  `json:"model"`
	EstimatedLatency float64 `json:"estimated_latency_ms"`
	MetConstraints   bool    `json:"met_constraints"`
}

// VideoDTO is the wire form of a stored video (a sequence of key-frame
// image IDs).
type VideoDTO struct {
	ID          uint64    `json:"id"`
	Description string    `json:"description"`
	WorkerID    string    `json:"worker_id,omitempty"`
	Start       time.Time `json:"start"`
	End         time.Time `json:"end"`
	FrameIDs    []uint64  `json:"frame_ids"`
}

// UploadVideoRequest ingests a video as ordered key frames.
type UploadVideoRequest struct {
	Description string `json:"description"`
	WorkerID    string `json:"worker_id,omitempty"`
	Frames      []struct {
		FOV        FOVDTO    `json:"fov"`
		Pixels     PixelsDTO `json:"pixels"`
		CapturedAt time.Time `json:"captured_at"`
		Keywords   []string  `json:"keywords,omitempty"`
	} `json:"frames"`
}

// FrameStatusDTO reports one frame of a video upload: its persisted row
// ID, the feature kinds extracted so far, and the extraction error if
// any. A frame with an error is still durable — it is re-driven by the
// pending-extraction sweep, never by re-uploading the video.
type FrameStatusDTO struct {
	ID           uint64   `json:"id"`
	FeatureKinds []string `json:"feature_kinds,omitempty"`
	Error        string   `json:"error,omitempty"`
}

// UploadVideoResponse confirms video ingest. The whole video commits as
// one WAL batch, so the ID and FrameIDs are durable in every response
// that carries them — including mode=sync responses where some Frames
// report extraction errors.
type UploadVideoResponse struct {
	ID       uint64   `json:"id"`
	FrameIDs []uint64 `json:"frame_ids"`
	// Frames carries per-frame extraction status (mode=sync only).
	Frames []FrameStatusDTO `json:"frames,omitempty"`
	// PendingKinds lists the families the pipeline will extract
	// asynchronously for every frame (default streaming mode).
	PendingKinds []string `json:"pending_kinds,omitempty"`
}

// CampaignDTO is the wire form of a data-collection campaign.
type CampaignDTO struct {
	ID             uint64    `json:"id"`
	Name           string    `json:"name"`
	MinLat         float64   `json:"min_lat"`
	MinLon         float64   `json:"min_lon"`
	MaxLat         float64   `json:"max_lat"`
	MaxLon         float64   `json:"max_lon"`
	TargetCoverage float64   `json:"target_coverage"`
	CreatedAt      time.Time `json:"created_at,omitempty"`
	// Images is the number of uploads attached so far (read-only).
	Images int `json:"images,omitempty"`
}

// CoverageReport is the FOV-based coverage measurement of a region
// (paper §III): the covered-cell ratio and the weak-cell centers the next
// campaign round should task workers at.
type CoverageReport struct {
	Rows      int      `json:"rows"`
	Cols      int      `json:"cols"`
	FOVs      int      `json:"fovs"`
	Ratio     float64  `json:"ratio"`
	WeakCells []LatLon `json:"weak_cells,omitempty"`
}

// LatLon is a bare coordinate pair.
type LatLon struct {
	Lat float64 `json:"lat"`
	Lon float64 `json:"lon"`
}

// ErrorResponse is the uniform error body. ID is set when the request
// persisted a row before failing (e.g. keywords or extraction failed
// after the image committed) so the client can recover the durable row
// instead of re-uploading a duplicate.
type ErrorResponse struct {
	Error string `json:"error"`
	ID    uint64 `json:"id,omitempty"`
}

// StreamAck is one reply line of the NDJSON /v1/stream endpoint, acking
// the record on the same-numbered request line. Status is "accepted"
// (row WAL-durable, extraction pending), "busy" (queue full, nothing
// persisted — back off and resend), or "error".
type StreamAck struct {
	Seq    int    `json:"seq"`
	ID     uint64 `json:"id,omitempty"`
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
}

// IngestStatsDTO is the wire form of the pipeline counters plus the
// current tracking-table size.
type IngestStatsDTO struct {
	Submitted  uint64 `json:"submitted"`
	Shed       uint64 `json:"shed"`
	Persisted  uint64 `json:"persisted"`
	Extracted  uint64 `json:"extracted"`
	Failed     uint64 `json:"failed"`
	Swept      uint64 `json:"swept"`
	Refreshes  uint64 `json:"refreshes"`
	RefreshErr string `json:"refresh_error,omitempty"`
	Pending    int    `json:"pending"`
}

// SweepResponse reports a pending-extraction sweep.
type SweepResponse struct {
	Requeued int `json:"requeued"`
}
