package api

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"repro/internal/ingest"
	"repro/internal/nn"
)

// nnProfiles indirection keeps the server's dispatch endpoint testable.
func nnProfiles() []nn.ModelProfile { return nn.Profiles() }

// DefaultClientTimeout bounds each client call when NewClient's caller
// does not override the transport.
const DefaultClientTimeout = 30 * time.Second

// Client is the typed cross-platform client library of §V. Every request
// carries a context: the convenience methods originate one internally
// (bounded by the HTTP client's timeout), and DoCtx-based variants let
// callers supply their own for cancellation or tighter deadlines.
type Client struct {
	BaseURL string
	APIKey  string
	HTTP    *http.Client
}

// NewClient returns a client for the given base URL (no trailing slash)
// and API key, with DefaultClientTimeout on every call.
func NewClient(baseURL, apiKey string) *Client {
	return NewClientTimeout(baseURL, apiKey, DefaultClientTimeout)
}

// NewClientTimeout is NewClient with an explicit per-call timeout;
// timeout <= 0 means unbounded (the caller then owns bounding calls via
// the ctx variants).
func NewClientTimeout(baseURL, apiKey string, timeout time.Duration) *Client {
	if timeout < 0 {
		timeout = 0
	}
	return &Client{
		BaseURL: baseURL,
		APIKey:  apiKey,
		HTTP:    &http.Client{Timeout: timeout},
	}
}

// APIError is a non-2xx response. ID, when non-zero, is the row the
// server persisted before failing — recover it rather than re-uploading.
type APIError struct {
	Status  int
	Message string
	ID      uint64
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("api: HTTP %d: %s", e.Status, e.Message)
}

// root originates the request context for the non-ctx convenience
// methods. The client library is a lifecycle boundary: its callers by
// definition have no surrounding request, so this is the one legitimate
// origination point in the package.
func (c *Client) root() context.Context {
	//tvdp:nolint ctxflow client convenience methods are lifecycle roots; calls stay bounded by the HTTP client timeout
	return context.Background()
}

func (c *Client) do(method, path string, in, out any) error {
	return c.doCtx(c.root(), method, path, in, out)
}

func (c *Client) doCtx(ctx context.Context, method, path string, in, out any) error {
	var body *bytes.Buffer
	if in != nil {
		body = &bytes.Buffer{}
		if err := json.NewEncoder(body).Encode(in); err != nil {
			return fmt.Errorf("api: encoding request: %w", err)
		}
	} else {
		body = &bytes.Buffer{}
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if c.APIKey != "" {
		req.Header.Set("X-API-Key", c.APIKey)
	}
	httpc := c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return err
	}
	//tvdp:nolint errdiscard response-body close errors are unactionable; the read path already surfaces transport failures
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var e ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return &APIError{Status: resp.StatusCode, Message: e.Error, ID: e.ID}
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("api: decoding response: %w", err)
		}
	}
	return nil
}

// CreateUser registers a participant (bootstrap; no key required).
func (c *Client) CreateUser(name, role string) (uint64, error) {
	var out CreateUserResponse
	err := c.do("POST", "/api/v1/users", CreateUserRequest{Name: name, Role: role}, &out)
	return out.ID, err
}

// CreateKey mints an API key for a user (bootstrap; no key required).
func (c *Client) CreateKey(userID uint64) (string, error) {
	var out CreateKeyResponse
	err := c.do("POST", "/api/v1/keys", CreateKeyRequest{UserID: userID}, &out)
	return out.Key, err
}

// UploadImage adds new visual data on the synchronous compatibility path
// (mode=sync): the response carries the extracted FeatureKinds and the
// caller pays full extraction latency.
func (c *Client) UploadImage(req UploadImageRequest) (UploadImageResponse, error) {
	return c.UploadImageCtx(c.root(), req)
}

// UploadImageCtx is UploadImage bounded by the caller's context.
func (c *Client) UploadImageCtx(ctx context.Context, req UploadImageRequest) (UploadImageResponse, error) {
	var out UploadImageResponse
	err := c.doCtx(ctx, "POST", "/api/v1/images?mode=sync", req, &out)
	return out, err
}

// UploadImageAsync adds new visual data on the streaming path: the 202
// ack means the row is WAL-durable; PendingKinds extract behind it (poll
// ImageStatus). A 429 means the pipeline shed the record unpersisted.
func (c *Client) UploadImageAsync(req UploadImageRequest) (UploadImageResponse, error) {
	return c.UploadImageAsyncCtx(c.root(), req)
}

// UploadImageAsyncCtx is UploadImageAsync bounded by the caller's
// context.
func (c *Client) UploadImageAsyncCtx(ctx context.Context, req UploadImageRequest) (UploadImageResponse, error) {
	var out UploadImageResponse
	err := c.doCtx(ctx, "POST", "/api/v1/images", req, &out)
	return out, err
}

// ImageStatus reports one row's ingest progress ("queued", "failed",
// "done", or "unknown").
func (c *Client) ImageStatus(id uint64) (ingest.RecordStatus, error) {
	var out ingest.RecordStatus
	err := c.do("GET", fmt.Sprintf("/api/v1/images/%d/status", id), nil, &out)
	return out, err
}

// IngestStats fetches the pipeline counters.
func (c *Client) IngestStats() (IngestStatsDTO, error) {
	var out IngestStatsDTO
	err := c.do("GET", "/api/v1/ingest/stats", nil, &out)
	return out, err
}

// SweepIngest triggers a pending-extraction sweep and returns the number
// of rows re-queued.
func (c *Client) SweepIngest() (int, error) {
	var out SweepResponse
	err := c.do("POST", "/api/v1/ingest/sweep", nil, &out)
	return out.Requeued, err
}

// StreamImages submits records over the NDJSON /v1/stream endpoint and
// returns the per-record acks in request order. The Go HTTP/1.1 client
// cannot interleave request and response bodies, so acks are read after
// the full batch is sent; wire-level incremental acking is exercised by
// raw-connection tests and available to any client that streams.
func (c *Client) StreamImages(reqs []UploadImageRequest) ([]StreamAck, error) {
	return c.StreamImagesCtx(c.root(), reqs)
}

// StreamImagesCtx is StreamImages bounded by the caller's context.
func (c *Client) StreamImagesCtx(ctx context.Context, reqs []UploadImageRequest) ([]StreamAck, error) {
	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	for _, r := range reqs {
		if err := enc.Encode(r); err != nil {
			return nil, fmt.Errorf("api: encoding stream record: %w", err)
		}
	}
	req, err := http.NewRequestWithContext(ctx, "POST", c.BaseURL+"/api/v1/stream", &body)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	if c.APIKey != "" {
		req.Header.Set("X-API-Key", c.APIKey)
	}
	httpc := c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return nil, err
	}
	//tvdp:nolint errdiscard response-body close errors are unactionable; the read path already surfaces transport failures
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var e ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return nil, &APIError{Status: resp.StatusCode, Message: e.Error, ID: e.ID}
	}
	var acks []StreamAck
	dec := json.NewDecoder(resp.Body)
	for {
		var ack StreamAck
		if err := dec.Decode(&ack); err != nil {
			if errors.Is(err, io.EOF) {
				return acks, nil
			}
			return acks, fmt.Errorf("api: decoding stream ack: %w", err)
		}
		acks = append(acks, ack)
	}
}

// GetImage fetches metadata.
func (c *Client) GetImage(id uint64) (ImageMeta, error) {
	var out ImageMeta
	err := c.do("GET", fmt.Sprintf("/api/v1/images/%d", id), nil, &out)
	return out, err
}

// GetPixels fetches the raster payload.
func (c *Client) GetPixels(id uint64) (PixelsDTO, error) {
	var out PixelsDTO
	err := c.do("GET", fmt.Sprintf("/api/v1/images/%d/pixels", id), nil, &out)
	return out, err
}

// Annotate attaches a label to a stored image.
func (c *Client) Annotate(id uint64, req AnnotateRequest) error {
	return c.do("POST", fmt.Sprintf("/api/v1/images/%d/annotations", id), req, nil)
}

// Search runs a multi-modal query.
func (c *Client) Search(req SearchRequest) (SearchResponse, error) {
	return c.SearchCtx(c.root(), req)
}

// SearchCtx is Search bounded by the caller's context.
func (c *Client) SearchCtx(ctx context.Context, req SearchRequest) (SearchResponse, error) {
	var out SearchResponse
	err := c.doCtx(ctx, "POST", "/api/v1/search", req, &out)
	return out, err
}

// DownloadDataset fetches the metadata of all images with a label.
func (c *Client) DownloadDataset(classification, label string) ([]ImageMeta, error) {
	var out []ImageMeta
	q := url.Values{"classification": {classification}, "label": {label}}
	err := c.do("GET", "/api/v1/datasets?"+q.Encode(), nil, &out)
	return out, err
}

// ExtractFeature featurises an uploaded image.
func (c *Client) ExtractFeature(kind string, pixels PixelsDTO) (FeatureResponse, error) {
	var out FeatureResponse
	err := c.do("POST", "/api/v1/features/"+url.PathEscape(kind), FeatureRequest{Pixels: pixels}, &out)
	return out, err
}

// ListModels returns the registered model specs.
func (c *Client) ListModels() ([]ModelSpecDTO, error) {
	var out []ModelSpecDTO
	err := c.do("GET", "/api/v1/models", nil, &out)
	return out, err
}

// TrainModel devises a new model from stored annotated data.
func (c *Client) TrainModel(req TrainRequest) (ModelSpecDTO, error) {
	return c.TrainModelCtx(c.root(), req)
}

// TrainModelCtx is TrainModel bounded by the caller's context — training
// is the longest-running endpoint, so cancellable invocation matters most
// here.
func (c *Client) TrainModelCtx(ctx context.Context, req TrainRequest) (ModelSpecDTO, error) {
	var out ModelSpecDTO
	err := c.doCtx(ctx, "POST", "/api/v1/models/train", req, &out)
	return out, err
}

// Predict runs a registered model.
func (c *Client) Predict(model string, req PredictRequest) (PredictResponse, error) {
	var out PredictResponse
	err := c.do("POST", fmt.Sprintf("/api/v1/models/%s/predict", url.PathEscape(model)), req, &out)
	return out, err
}

// ModelAnnotate machine-annotates stored images with a model; empty ids
// means all images.
func (c *Client) ModelAnnotate(model string, ids []uint64) (annotated, skipped int, err error) {
	var out map[string]int
	body := map[string][]uint64{"image_ids": ids}
	err = c.do("POST", fmt.Sprintf("/api/v1/models/%s/annotate", url.PathEscape(model)), body, &out)
	return out["annotated"], out["skipped"], err
}

// ListClassifications returns all labelling schemes.
func (c *Client) ListClassifications() ([]ClassificationDTO, error) {
	var out []ClassificationDTO
	err := c.do("GET", "/api/v1/classifications", nil, &out)
	return out, err
}

// CreateClassification registers a labelling scheme.
func (c *Client) CreateClassification(name string, labels []string) (ClassificationDTO, error) {
	var out ClassificationDTO
	err := c.do("POST", "/api/v1/classifications", ClassificationDTO{Name: name, Labels: labels}, &out)
	return out, err
}

// Dispatch asks which model a device should run.
func (c *Client) Dispatch(req DispatchRequest) (DispatchResponse, error) {
	var out DispatchResponse
	err := c.do("POST", "/api/v1/edge/dispatch", req, &out)
	return out, err
}

// UploadVideo ingests a video as ordered key frames on the synchronous
// compatibility path (mode=sync). The response carries per-frame
// extraction status: a frame with an Error is still durable and will be
// re-driven by the pending sweep — do not re-upload the video.
func (c *Client) UploadVideo(req UploadVideoRequest) (UploadVideoResponse, error) {
	var out UploadVideoResponse
	err := c.do("POST", "/api/v1/videos?mode=sync", req, &out)
	return out, err
}

// UploadVideoAsync ingests a video on the streaming path: the 202 ack
// means every frame is WAL-durable (one batch); extraction follows in
// frame order on the source's partition.
func (c *Client) UploadVideoAsync(req UploadVideoRequest) (UploadVideoResponse, error) {
	var out UploadVideoResponse
	err := c.do("POST", "/api/v1/videos", req, &out)
	return out, err
}

// ListVideos returns all stored videos.
func (c *Client) ListVideos() ([]VideoDTO, error) {
	var out []VideoDTO
	err := c.do("GET", "/api/v1/videos", nil, &out)
	return out, err
}

// GetVideo fetches one video's metadata and frame list.
func (c *Client) GetVideo(id uint64) (VideoDTO, error) {
	var out VideoDTO
	err := c.do("GET", fmt.Sprintf("/api/v1/videos/%d", id), nil, &out)
	return out, err
}

// DownloadModel fetches the portable form of a trained model for local
// execution (API 6 of §V).
func (c *Client) DownloadModel(name string) ([]byte, error) {
	return c.DownloadModelCtx(c.root(), name)
}

// DownloadModelCtx is DownloadModel bounded by the caller's context.
func (c *Client) DownloadModelCtx(ctx context.Context, name string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, "GET", c.BaseURL+"/api/v1/models/"+url.PathEscape(name)+"/download", nil)
	if err != nil {
		return nil, err
	}
	if c.APIKey != "" {
		req.Header.Set("X-API-Key", c.APIKey)
	}
	httpc := c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return nil, err
	}
	//tvdp:nolint errdiscard response-body close errors are unactionable; the read path already surfaces transport failures
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var e ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return nil, &APIError{Status: resp.StatusCode, Message: e.Error}
	}
	return io.ReadAll(resp.Body)
}

// ImportModel registers a previously exported model on the server.
func (c *Client) ImportModel(data []byte) (ModelSpecDTO, error) {
	var out ModelSpecDTO
	err := c.do("POST", "/api/v1/models/import", json.RawMessage(data), &out)
	return out, err
}

// CreateCampaign registers a data-collection campaign.
func (c *Client) CreateCampaign(req CampaignDTO) (CampaignDTO, error) {
	var out CampaignDTO
	err := c.do("POST", "/api/v1/campaigns", req, &out)
	return out, err
}

// ListCampaigns returns all campaigns with attached-upload counts.
func (c *Client) ListCampaigns() ([]CampaignDTO, error) {
	var out []CampaignDTO
	err := c.do("GET", "/api/v1/campaigns", nil, &out)
	return out, err
}

// CampaignCoverage measures a campaign region's current FOV coverage.
func (c *Client) CampaignCoverage(id uint64, rows, cols int) (CoverageReport, error) {
	var out CoverageReport
	q := url.Values{}
	if rows > 0 {
		q.Set("rows", fmt.Sprint(rows))
	}
	if cols > 0 {
		q.Set("cols", fmt.Sprint(cols))
	}
	path := fmt.Sprintf("/api/v1/campaigns/%d/coverage", id)
	if enc := q.Encode(); enc != "" {
		path += "?" + enc
	}
	err := c.do("GET", path, nil, &out)
	return out, err
}
