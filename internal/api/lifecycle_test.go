package api

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"testing"
	"time"
)

// Request-lifecycle tests: the deadline budget each handler derives, the
// HTTP mapping of context errors (504 for a blown deadline, 499 for a
// client that hung up), and the client library's ctx plumbing.

// TestExpiredDeadlineMapsTo504 serves with a deadline budget so small the
// handler's context is already expired when the query layer first checks
// it; the search must come back as 504 Gateway Timeout, not 500 and not a
// partial result set.
func TestExpiredDeadlineMapsTo504(t *testing.T) {
	e := newEnvTimeout(t, time.Nanosecond)
	var req SearchRequest
	req.Textual = &struct {
		Terms    []string `json:"terms"`
		MatchAll bool     `json:"match_all"`
	}{Terms: []string{"tent"}}
	_, err := e.client.Search(req)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusGatewayTimeout {
		t.Fatalf("expired-deadline search error = %v, want HTTP 504", err)
	}
}

// TestUploadExpiredDeadlineMapsTo504 pins the same contract on the write
// path: feature extraction checks its context between kinds.
func TestUploadExpiredDeadlineMapsTo504(t *testing.T) {
	e := newEnvTimeout(t, time.Nanosecond)
	_, err := e.client.UploadImage(sampleUpload(t, 3))
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusGatewayTimeout {
		t.Fatalf("expired-deadline upload error = %v, want HTTP 504", err)
	}
}

// TestStatusForContextErrors pins the error→status table for context
// errors, including wrapped forms: DeadlineExceeded is the server's fault
// budget running out (504); Canceled means the client went away (499, the
// nginx convention).
func TestStatusForContextErrors(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{context.DeadlineExceeded, http.StatusGatewayTimeout},
		{fmt.Errorf("search: %w", context.DeadlineExceeded), http.StatusGatewayTimeout},
		{context.Canceled, StatusClientClosedRequest},
		{fmt.Errorf("drive: %w", context.Canceled), StatusClientClosedRequest},
	}
	for _, c := range cases {
		if got := statusFor(c.err); got != c.want {
			t.Errorf("statusFor(%v) = %d, want %d", c.err, got, c.want)
		}
	}
	if StatusClientClosedRequest != 499 {
		t.Fatalf("StatusClientClosedRequest = %d, want 499", StatusClientClosedRequest)
	}
}

// TestClientCtxVariantsPropagate proves the ...Ctx client methods hand the
// caller's context to the transport: a pre-cancelled context aborts the
// call before any response is read.
func TestClientCtxVariantsPropagate(t *testing.T) {
	e := newEnv(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.client.SearchCtx(ctx, SearchRequest{}); !errors.Is(err, context.Canceled) {
		t.Errorf("SearchCtx err = %v, want context.Canceled", err)
	}
	if _, err := e.client.UploadImageCtx(ctx, sampleUpload(t, 4)); !errors.Is(err, context.Canceled) {
		t.Errorf("UploadImageCtx err = %v, want context.Canceled", err)
	}
	if _, err := e.client.TrainModelCtx(ctx, TrainRequest{}); !errors.Is(err, context.Canceled) {
		t.Errorf("TrainModelCtx err = %v, want context.Canceled", err)
	}
	if _, err := e.client.DownloadModelCtx(ctx, "missing"); !errors.Is(err, context.Canceled) {
		t.Errorf("DownloadModelCtx err = %v, want context.Canceled", err)
	}
}

// TestClientTimeoutConfigurable pins the NewClientTimeout contract: the
// default client carries DefaultClientTimeout, an explicit timeout is
// honoured, and <= 0 means unbounded.
func TestClientTimeoutConfigurable(t *testing.T) {
	if c := NewClient("http://x", ""); c.HTTP.Timeout != DefaultClientTimeout {
		t.Fatalf("default timeout = %v", c.HTTP.Timeout)
	}
	if c := NewClientTimeout("http://x", "", 5*time.Second); c.HTTP.Timeout != 5*time.Second {
		t.Fatalf("explicit timeout = %v", c.HTTP.Timeout)
	}
	if c := NewClientTimeout("http://x", "", -1); c.HTTP.Timeout != 0 {
		t.Fatalf("negative timeout = %v, want unbounded", c.HTTP.Timeout)
	}
}
