package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/feature"
	"repro/internal/imagesim"
	"repro/internal/ingest"
	"repro/internal/store"
	"repro/internal/synth"
)

// env is a running test server plus an authenticated client.
type env struct {
	st     *store.Store
	svc    *analysis.Service
	pipe   *ingest.Pipeline
	srv    *httptest.Server
	client *Client
}

func newEnv(t *testing.T) *env {
	return newEnvTimeout(t, 0)
}

// newEnvTimeout is newEnv with an explicit per-request deadline budget
// (0 keeps the default); the budget must be set before the listener
// starts so handlers and the test never race on the field.
func newEnvTimeout(t *testing.T, budget time.Duration) *env {
	t.Helper()
	st, err := store.Open(store.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	svc := analysis.NewService(st)
	svc.RegisterExtractor(feature.NewColorHistogram())
	pipe := ingest.New(st, svc, ingest.DefaultConfig())
	pipe.Start(context.Background())
	t.Cleanup(func() { pipe.Close() })
	server := NewServer(st, svc, pipe, nil)
	server.Clock = func() time.Time { return time.Date(2019, 3, 1, 12, 0, 0, 0, time.UTC) }
	if budget != 0 {
		server.RequestTimeout = budget
	}
	ts := httptest.NewServer(server)
	t.Cleanup(ts.Close)
	boot := NewClient(ts.URL, "")
	uid, err := boot.CreateUser("LASAN", "government")
	if err != nil {
		t.Fatal(err)
	}
	key, err := boot.CreateKey(uid)
	if err != nil {
		t.Fatal(err)
	}
	return &env{st: st, svc: svc, pipe: pipe, srv: ts, client: NewClient(ts.URL, key)}
}

func sampleUpload(t *testing.T, seed int64) UploadImageRequest {
	t.Helper()
	g, err := synth.NewGenerator(synth.DefaultConfig(1, seed))
	if err != nil {
		t.Fatal(err)
	}
	rec := g.Render(synth.Encampment)
	return UploadImageRequest{
		FOV:        FOVFromGeo(rec.FOV),
		Pixels:     EncodePixels(rec.Image),
		CapturedAt: rec.CapturedAt,
		Keywords:   rec.Keywords,
		WorkerID:   rec.WorkerID,
	}
}

func TestAuthRequired(t *testing.T) {
	e := newEnv(t)
	anon := NewClient(e.srv.URL, "")
	_, err := anon.GetImage(1)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusUnauthorized {
		t.Fatalf("unauthenticated error = %v", err)
	}
	bad := NewClient(e.srv.URL, "wrong-key")
	if _, err := bad.GetImage(1); !errors.As(err, &apiErr) || apiErr.Status != http.StatusUnauthorized {
		t.Fatalf("bad-key error = %v", err)
	}
}

func TestUploadAndFetchImage(t *testing.T) {
	e := newEnv(t)
	up, err := e.client.UploadImage(sampleUpload(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if up.ID == 0 || len(up.FeatureKinds) != 1 {
		t.Fatalf("upload = %+v", up)
	}
	meta, err := e.client.GetImage(up.ID)
	if err != nil {
		t.Fatal(err)
	}
	if meta.ID != up.ID || len(meta.Keywords) == 0 || len(meta.FeatureKinds) != 1 {
		t.Fatalf("meta = %+v", meta)
	}
	if meta.UploadedAt.IsZero() {
		t.Fatal("upload time not set by server clock")
	}
	px, err := e.client.GetPixels(up.ID)
	if err != nil {
		t.Fatal(err)
	}
	img, err := px.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if img.W != 48 || img.H != 48 {
		t.Fatalf("pixels = %dx%d", img.W, img.H)
	}
	var apiErr *APIError
	if _, err := e.client.GetImage(9999); !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("missing image error = %v", err)
	}
}

func TestUploadValidation(t *testing.T) {
	e := newEnv(t)
	req := sampleUpload(t, 2)
	req.FOV.Angle = 0
	var apiErr *APIError
	if _, err := e.client.UploadImage(req); !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("invalid FOV error = %v", err)
	}
	req = sampleUpload(t, 2)
	req.Pixels.Data = "!!! not base64 !!!"
	if _, err := e.client.UploadImage(req); !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("bad pixels error = %v", err)
	}
}

func TestClassificationsAndAnnotations(t *testing.T) {
	e := newEnv(t)
	cls, err := e.client.CreateClassification("street_cleanliness", synth.ClassNames[:])
	if err != nil {
		t.Fatal(err)
	}
	if cls.ID == 0 {
		t.Fatal("no classification id")
	}
	var apiErr *APIError
	if _, err := e.client.CreateClassification("street_cleanliness", synth.ClassNames[:]); !errors.As(err, &apiErr) || apiErr.Status != http.StatusConflict {
		t.Fatalf("duplicate classification error = %v", err)
	}
	list, err := e.client.ListClassifications()
	if err != nil || len(list) != 1 {
		t.Fatalf("list = %+v err=%v", list, err)
	}
	up, err := e.client.UploadImage(sampleUpload(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.client.Annotate(up.ID, AnnotateRequest{
		Classification: "street_cleanliness", Label: "Encampment",
	}); err != nil {
		t.Fatal(err)
	}
	meta, _ := e.client.GetImage(up.ID)
	if len(meta.Annotations) != 1 || meta.Annotations[0].Label != "Encampment" {
		t.Fatalf("annotations = %+v", meta.Annotations)
	}
	if meta.Annotations[0].Source != string(store.SourceHuman) {
		t.Fatalf("default source = %q", meta.Annotations[0].Source)
	}
	if err := e.client.Annotate(up.ID, AnnotateRequest{
		Classification: "street_cleanliness", Label: "NoSuchLabel",
	}); !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("bad label error = %v", err)
	}
}

// populateLabeled uploads n labeled encampment/clean images.
func populateLabeled(t *testing.T, e *env, n int) []uint64 {
	t.Helper()
	if _, err := e.client.CreateClassification("street_cleanliness", synth.ClassNames[:]); err != nil {
		t.Fatal(err)
	}
	g, err := synth.NewGenerator(synth.DefaultConfig(n, 9))
	if err != nil {
		t.Fatal(err)
	}
	var ids []uint64
	for i := 0; i < n; i++ {
		cls := synth.Encampment
		if i%2 == 1 {
			cls = synth.Clean
		}
		rec := g.Render(cls)
		up, err := e.client.UploadImage(UploadImageRequest{
			FOV: FOVFromGeo(rec.FOV), Pixels: EncodePixels(rec.Image),
			CapturedAt: rec.CapturedAt, Keywords: rec.Keywords,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.client.Annotate(up.ID, AnnotateRequest{
			Classification: "street_cleanliness", Label: cls.String(),
		}); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, up.ID)
	}
	return ids
}

func TestSearchEndpoints(t *testing.T) {
	e := newEnv(t)
	ids := populateLabeled(t, e, 20)
	// Categorical search.
	var req SearchRequest
	req.Categorical = &struct {
		Classification string  `json:"classification"`
		Label          string  `json:"label"`
		MinConfidence  float64 `json:"min_confidence"`
	}{Classification: "street_cleanliness", Label: "Encampment"}
	resp, err := e.client.Search(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 10 || resp.Plan == "" {
		t.Fatalf("categorical search = %+v", resp)
	}
	// Textual search: encampment keywords exist in the corpus.
	var treq SearchRequest
	treq.Textual = &struct {
		Terms    []string `json:"terms"`
		MatchAll bool     `json:"match_all"`
	}{Terms: []string{"tent", "homeless", "encampment", "shelter"}}
	tresp, err := e.client.Search(treq)
	if err != nil {
		t.Fatal(err)
	}
	if len(tresp.Results) == 0 {
		t.Fatal("textual search found nothing")
	}
	// Empty query is a 400.
	var apiErr *APIError
	if _, err := e.client.Search(SearchRequest{}); !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("empty query error = %v", err)
	}
	// Dataset download.
	metas, err := e.client.DownloadDataset("street_cleanliness", "Clean")
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 10 {
		t.Fatalf("dataset size = %d", len(metas))
	}
	_ = ids
}

func TestFeatureExtractEndpoint(t *testing.T) {
	e := newEnv(t)
	img := imagesim.MustNew(16, 16)
	img.Fill(imagesim.RGB{R: 200, G: 10, B: 10})
	out, err := e.client.ExtractFeature(string(feature.KindColorHist), EncodePixels(img))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Vector) != 50 {
		t.Fatalf("vector len = %d", len(out.Vector))
	}
	var apiErr *APIError
	if _, err := e.client.ExtractFeature("no_such_kind", EncodePixels(img)); !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("unknown kind error = %v", err)
	}
}

func TestModelLifecycleOverAPI(t *testing.T) {
	e := newEnv(t)
	populateLabeled(t, e, 30)
	spec, err := e.client.TrainModel(TrainRequest{
		Name:           "enc-vs-clean",
		Classification: "street_cleanliness",
		FeatureKind:    string(feature.KindColorHist),
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if spec.TrainedOn != 30 || spec.Owner != "LASAN" {
		t.Fatalf("trained spec = %+v", spec)
	}
	models, err := e.client.ListModels()
	if err != nil || len(models) != 1 {
		t.Fatalf("models = %+v err=%v", models, err)
	}
	// Predict from raw pixels (server extracts the right feature kind).
	g, _ := synth.NewGenerator(synth.DefaultConfig(1, 77))
	rec := g.Render(synth.Encampment)
	pred, err := e.client.Predict("enc-vs-clean", PredictRequest{Pixels: ptr(EncodePixels(rec.Image))})
	if err != nil {
		t.Fatal(err)
	}
	if pred.LabelName == "" || pred.Confidence <= 0 {
		t.Fatalf("prediction = %+v", pred)
	}
	// Machine-annotate everything; every stored image has the feature.
	annotated, skipped, err := e.client.ModelAnnotate("enc-vs-clean", nil)
	if err != nil {
		t.Fatal(err)
	}
	if annotated != 30 || skipped != 0 {
		t.Fatalf("model annotate = %d/%d", annotated, skipped)
	}
	var apiErr *APIError
	if _, err := e.client.Predict("nope", PredictRequest{Vector: make([]float64, 50)}); !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("unknown model error = %v", err)
	}
	if _, err := e.client.Predict("enc-vs-clean", PredictRequest{}); !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("empty predict error = %v", err)
	}
	// Training with no data is a 400.
	if _, err := e.client.TrainModel(TrainRequest{
		Name: "m2", Classification: "street_cleanliness", FeatureKind: "no_kind",
	}); !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("no-data train error = %v", err)
	}
}

func ptr[T any](v T) *T { return &v }

func TestDispatchEndpoint(t *testing.T) {
	e := newEnv(t)
	resp, err := e.client.Dispatch(DispatchRequest{Device: "raspberry_pi", MaxLatencyMs: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Model == "InceptionV3" || !resp.MetConstraints {
		t.Fatalf("RPI dispatch = %+v", resp)
	}
	resp, err = e.client.Dispatch(DispatchRequest{Device: "desktop", MaxLatencyMs: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Model != "InceptionV3" {
		t.Fatalf("desktop dispatch = %+v", resp)
	}
	var apiErr *APIError
	if _, err := e.client.Dispatch(DispatchRequest{Device: "toaster"}); !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("unknown device error = %v", err)
	}
}

func TestCreateKeyForMissingUser(t *testing.T) {
	e := newEnv(t)
	boot := NewClient(e.srv.URL, "")
	var apiErr *APIError
	if _, err := boot.CreateKey(9999); !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("missing user key error = %v", err)
	}
}

func TestPixelsRoundTrip(t *testing.T) {
	img := imagesim.MustNew(5, 3)
	img.Set(2, 1, imagesim.RGB{R: 9, G: 8, B: 7})
	dto := EncodePixels(img)
	back, err := dto.Decode()
	if err != nil {
		t.Fatal(err)
	}
	for i := range img.Pix {
		if back.Pix[i] != img.Pix[i] {
			t.Fatal("pixel round trip failed")
		}
	}
	bad := dto
	bad.W = 99
	if _, err := bad.Decode(); err == nil {
		t.Fatal("inconsistent dims accepted")
	}
}

func TestVideoEndpoints(t *testing.T) {
	e := newEnv(t)
	g, _ := synth.NewGenerator(synth.DefaultConfig(10, 44))
	start := time.Date(2019, 8, 14, 10, 0, 0, 0, time.UTC)
	var req UploadVideoRequest
	req.Description = "survey"
	req.WorkerID = "drone-1"
	for i := 0; i < 3; i++ {
		rec := g.Render(synth.Clean)
		req.Frames = append(req.Frames, struct {
			FOV        FOVDTO    `json:"fov"`
			Pixels     PixelsDTO `json:"pixels"`
			CapturedAt time.Time `json:"captured_at"`
			Keywords   []string  `json:"keywords,omitempty"`
		}{
			FOV:        FOVFromGeo(rec.FOV),
			Pixels:     EncodePixels(rec.Image),
			CapturedAt: start.Add(time.Duration(i) * time.Second),
			Keywords:   []string{"drone"},
		})
	}
	up, err := e.client.UploadVideo(req)
	if err != nil {
		t.Fatal(err)
	}
	if up.ID == 0 || len(up.FrameIDs) != 3 {
		t.Fatalf("video upload = %+v", up)
	}
	// Frames exist as images with extracted features.
	meta, err := e.client.GetImage(up.FrameIDs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(meta.FeatureKinds) != 1 {
		t.Fatalf("frame features = %v", meta.FeatureKinds)
	}
	v, err := e.client.GetVideo(up.ID)
	if err != nil || v.Description != "survey" || len(v.FrameIDs) != 3 {
		t.Fatalf("get video = %+v err=%v", v, err)
	}
	vs, err := e.client.ListVideos()
	if err != nil || len(vs) != 1 {
		t.Fatalf("list videos = %+v err=%v", vs, err)
	}
	var apiErr *APIError
	if _, err := e.client.GetVideo(9999); !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("missing video error = %v", err)
	}
	// Empty video rejected.
	if _, err := e.client.UploadVideo(UploadVideoRequest{Description: "x"}); !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("empty video error = %v", err)
	}
}

func TestModelDownloadAndImportOverAPI(t *testing.T) {
	e := newEnv(t)
	populateLabeled(t, e, 20)
	if _, err := e.client.TrainModel(TrainRequest{
		Name:           "portable",
		Classification: "street_cleanliness",
		FeatureKind:    string(feature.KindColorHist),
		Seed:           2,
	}); err != nil {
		t.Fatal(err)
	}
	data, err := e.client.DownloadModel("portable")
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty model download")
	}
	// A "device" imports the model into its own local registry and runs
	// it offline.
	local := analysis.NewRegistry()
	spec, err := local.Import(data)
	if err != nil {
		t.Fatal(err)
	}
	vec := make([]float64, spec.Dim)
	lp, err := local.Predict("portable", vec)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := e.client.Predict("portable", PredictRequest{Vector: vec})
	if err != nil {
		t.Fatal(err)
	}
	if lp.Label != sp.Label {
		t.Fatalf("local label %d vs server %d", lp.Label, sp.Label)
	}
	// Importing back to the server under the same name conflicts.
	var apiErr *APIError
	if _, err := e.client.ImportModel(data); !errors.As(err, &apiErr) || apiErr.Status != http.StatusConflict {
		t.Fatalf("duplicate import error = %v", err)
	}
	// Unknown model download is a 404.
	if _, err := e.client.DownloadModel("nope"); !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("unknown download error = %v", err)
	}
	// Garbage import is a 400.
	if _, err := e.client.ImportModel([]byte(`{"version":9}`)); !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("bad import error = %v", err)
	}
}

func TestCampaignEndpoints(t *testing.T) {
	e := newEnv(t)
	// Create a campaign over a 1 km box around downtown.
	req := CampaignDTO{
		Name:   "dtla-sweep",
		MinLat: 34.04, MinLon: -118.26, MaxLat: 34.07, MaxLon: -118.23,
		TargetCoverage: 0.9,
	}
	created, err := e.client.CreateCampaign(req)
	if err != nil {
		t.Fatal(err)
	}
	if created.ID == 0 || created.CreatedAt.IsZero() {
		t.Fatalf("campaign = %+v", created)
	}
	// Upload one image attached to the campaign, inside its region.
	g, _ := synth.NewGenerator(synth.DefaultConfig(1, 55))
	rec := g.Render(synth.Clean)
	up := UploadImageRequest{
		FOV:        FOVDTO{Lat: 34.055, Lon: -118.245, Direction: 0, Angle: 60, Radius: 100},
		Pixels:     EncodePixels(rec.Image),
		CapturedAt: rec.CapturedAt,
		CampaignID: created.ID,
	}
	if _, err := e.client.UploadImage(up); err != nil {
		t.Fatal(err)
	}
	list, err := e.client.ListCampaigns()
	if err != nil || len(list) != 1 {
		t.Fatalf("campaigns = %+v err=%v", list, err)
	}
	if list[0].Images != 1 {
		t.Fatalf("attached images = %d", list[0].Images)
	}
	// Coverage: one narrow capture covers few of the 100 cells; the rest
	// are weak.
	cov, err := e.client.CampaignCoverage(created.ID, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if cov.FOVs != 1 || cov.Rows != 10 || cov.Cols != 10 {
		t.Fatalf("coverage meta = %+v", cov)
	}
	if cov.Ratio <= 0 || cov.Ratio > 0.2 {
		t.Fatalf("coverage ratio = %v", cov.Ratio)
	}
	if len(cov.WeakCells) == 0 {
		t.Fatal("no weak cells reported")
	}
	// Validation paths.
	var apiErr *APIError
	if _, err := e.client.CreateCampaign(CampaignDTO{Name: "x"}); !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("degenerate campaign error = %v", err)
	}
	if _, err := e.client.CampaignCoverage(9999, 0, 0); !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("missing campaign coverage error = %v", err)
	}
}

func TestNearSearchOverAPI(t *testing.T) {
	e := newEnv(t)
	ids := populateLabeled(t, e, 10)
	meta, err := e.client.GetImage(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	var req SearchRequest
	req.Near = &struct {
		Lat float64 `json:"lat"`
		Lon float64 `json:"lon"`
		K   int     `json:"k"`
	}{Lat: meta.FOV.Lat, Lon: meta.FOV.Lon, K: 3}
	resp, err := e.client.Search(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 || resp.Results[0].ID != ids[0] {
		t.Fatalf("near search = %+v", resp.Results)
	}
}

func TestGetPixelsMissing(t *testing.T) {
	e := newEnv(t)
	var apiErr *APIError
	if _, err := e.client.GetPixels(12345); !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("missing pixels error = %v", err)
	}
}

func TestModelAnnotateExplicitIDs(t *testing.T) {
	e := newEnv(t)
	ids := populateLabeled(t, e, 10)
	if _, err := e.client.TrainModel(TrainRequest{
		Name: "m", Classification: "street_cleanliness",
		FeatureKind: string(feature.KindColorHist), Seed: 1,
	}); err != nil {
		t.Fatal(err)
	}
	annotated, skipped, err := e.client.ModelAnnotate("m", ids[:4])
	if err != nil || annotated != 4 || skipped != 0 {
		t.Fatalf("explicit annotate = %d/%d err=%v", annotated, skipped, err)
	}
}

func TestListCampaignsEmpty(t *testing.T) {
	e := newEnv(t)
	cs, err := e.client.ListCampaigns()
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 0 {
		t.Fatalf("campaigns = %+v", cs)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	e := newEnv(t)
	// DELETE on a GET/POST-only route is rejected by the router.
	req, _ := http.NewRequest("DELETE", e.srv.URL+"/api/v1/models", nil)
	req.Header.Set("X-API-Key", e.client.APIKey)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed && resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

// TestCoverageRejectsInvalidGridParams locks in the queryInt contract:
// malformed, zero, or negative rows/cols are a 400, never silently
// coerced to the defaults (which used to mask caller bugs), while absent
// params still mean the 10×10 default grid.
func TestCoverageRejectsInvalidGridParams(t *testing.T) {
	e := newEnv(t)
	created, err := e.client.CreateCampaign(CampaignDTO{
		Name:   "grid-check",
		MinLat: 34.04, MinLon: -118.26, MaxLat: 34.07, MaxLon: -118.23,
		TargetCoverage: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	get := func(t *testing.T, query string) *http.Response {
		t.Helper()
		url := fmt.Sprintf("%s/api/v1/campaigns/%d/coverage", e.srv.URL, created.ID)
		if query != "" {
			url += "?" + query
		}
		req, err := http.NewRequest("GET", url, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-API-Key", e.client.APIKey)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	for _, bad := range []string{"rows=abc", "rows=-3", "rows=0", "cols=1e3", "cols=10x"} {
		if resp := get(t, bad); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", bad, resp.StatusCode)
		}
	}
	// An empty value counts as absent, like a missing param.
	for _, q := range []string{"", "rows=4", "rows=4&cols=7", "rows=4&cols="} {
		resp := get(t, q)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%q: status = %d, want 200", q, resp.StatusCode)
		}
		var report CoverageReport
		if err := json.NewDecoder(resp.Body).Decode(&report); err != nil {
			t.Fatal(err)
		}
		wantRows, wantCols := 10, 10
		if q != "" {
			wantRows = 4
		}
		if q == "rows=4&cols=7" {
			wantCols = 7
		}
		if report.Rows != wantRows || report.Cols != wantCols {
			t.Fatalf("%q: grid = %dx%d, want %dx%d", q, report.Rows, report.Cols, wantRows, wantCols)
		}
	}
}
