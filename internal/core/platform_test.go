package core

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/api"
	"repro/internal/crowd"
	"repro/internal/edge"
	"repro/internal/feature"
	"repro/internal/geo"
	"repro/internal/query"
	"repro/internal/synth"
)

func openPlatform(t *testing.T, dir string) *Platform {
	t.Helper()
	p, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// seedCorpus ingests n labelled synthetic records.
func seedCorpus(t *testing.T, p *Platform, n int, seed int64) []uint64 {
	t.Helper()
	if _, err := p.CreateClassification("street_cleanliness", synth.ClassNames[:]); err != nil {
		t.Fatal(err)
	}
	g, err := synth.NewGenerator(synth.DefaultConfig(n, seed))
	if err != nil {
		t.Fatal(err)
	}
	var ids []uint64
	for _, rec := range g.Generate(n) {
		id, err := p.IngestRecord(context.Background(), rec)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.AnnotateHuman(id, "street_cleanliness", int(rec.Class), rec.CapturedAt); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	return ids
}

func TestEndToEndPipeline(t *testing.T) {
	p := openPlatform(t, "")
	ids := seedCorpus(t, p, 60, 1)
	if p.Store.NumImages() != 60 {
		t.Fatalf("images = %d", p.Store.NumImages())
	}
	// Train, predict, annotate-all.
	spec, err := p.TrainModel(context.Background(), analysis.TrainConfig{
		Name:           "cleanliness",
		Classification: "street_cleanliness",
		FeatureKind:    string(feature.KindColorHist),
		Factory:        DefaultClassifierFactory(1),
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if spec.TrainedOn != 60 {
		t.Fatalf("spec = %+v", spec)
	}
	vec, err := p.Store.GetFeature(ids[0], string(feature.KindColorHist))
	if err != nil {
		t.Fatal(err)
	}
	pred, err := p.Predict("cleanliness", vec)
	if err != nil {
		t.Fatal(err)
	}
	if pred.LabelName == "" {
		t.Fatalf("prediction = %+v", pred)
	}
	annotated, skipped, err := p.AnnotateAll(context.Background(), "cleanliness", time.Date(2019, 3, 1, 0, 0, 0, 0, time.UTC))
	if err != nil || annotated != 60 || skipped != 0 {
		t.Fatalf("annotate-all = %d/%d err=%v", annotated, skipped, err)
	}
	// Search by label now returns both human and machine annotations'
	// targets; encampment class had 12 human labels at minimum.
	res, err := p.Query.ByLabel(context.Background(), "street_cleanliness", "Encampment")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) < 12 {
		t.Fatalf("encampment results = %d", len(res))
	}
	st := p.Stats()
	if st.Images != 60 || st.Models != 1 || st.Classifications != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDurabilityAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	p := openPlatform(t, dir)
	seedCorpus(t, p, 10, 2)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	p2 := openPlatform(t, dir)
	if p2.Store.NumImages() != 10 {
		t.Fatalf("recovered %d images", p2.Store.NumImages())
	}
	// Query indexes were rebuilt.
	res, err := p2.Query.ByKeywords(context.Background(), "street", "sidewalk", "losangeles", "lasan", "survey")
	if err != nil || len(res) == 0 {
		t.Fatalf("post-recovery keyword search: %d err=%v", len(res), err)
	}
}

func TestSearchFacade(t *testing.T) {
	p := openPlatform(t, "")
	seedCorpus(t, p, 30, 3)
	r := geo.NewRect(geo.Destination(la, 315, 12000), geo.Destination(la, 135, 12000))
	res, plan, err := p.Search(context.Background(), query.Query{Spatial: &query.SpatialClause{Rect: &r}})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Driving != "spatial" || len(res) != 30 {
		t.Fatalf("city-wide search: %d hits plan=%v", len(res), plan)
	}
}

func TestDispatchFacade(t *testing.T) {
	p := openPlatform(t, "")
	d, err := p.Dispatch(edge.RaspberryPi3B, edge.Constraints{MaxLatency: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if d.Model.Name == "InceptionV3" {
		t.Fatalf("RPI got the heavy model: %+v", d)
	}
}

func TestCampaignFacadeSeedsFromStore(t *testing.T) {
	p := openPlatform(t, "")
	seedCorpus(t, p, 40, 4)
	region := geo.NewRect(geo.Destination(la, 315, 1500), geo.Destination(la, 135, 1500))
	workers := []crowd.Worker{
		{ID: "w1", Location: la, MaxTravelM: 4000, Capacity: 6},
		{ID: "w2", Location: geo.Destination(la, 90, 500), MaxTravelM: 4000, Capacity: 6},
	}
	runner, err := p.NewCampaignRunner(
		crowd.Campaign{ID: 1, Name: "gaps", Region: region, TargetCoverage: 0.8, MaxRounds: 6},
		5, 5, workers, crowd.DefaultCaptureFunc(2, 150, 5), 6)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := runner.Run()
	if err != nil {
		t.Fatal(err)
	}
	final := reports[len(reports)-1]
	if final.Coverage < 0.8 {
		t.Fatalf("campaign coverage = %v", final.Coverage)
	}
	// Store images inside the region seeded round 0 above zero.
	if reports[0].Coverage <= 0 {
		t.Fatal("existing store images did not seed coverage")
	}
}

func TestTrainCNNExtractorFromStore(t *testing.T) {
	p := openPlatform(t, "")
	seedCorpus(t, p, 25, 5)
	cfg := feature.DefaultCNNTrainConfig(synth.NumClasses)
	cfg.Train.Epochs = 2 // keep the unit test fast
	cfg.Augment = 0
	ex, err := p.TrainCNNExtractor(context.Background(), "street_cleanliness", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Dim() != cfg.Net.Hidden {
		t.Fatalf("extractor dim = %d", ex.Dim())
	}
	p.RegisterExtractor(ex)
	kinds := p.Analysis.ExtractorKinds()
	if len(kinds) != 2 {
		t.Fatalf("kinds = %v", kinds)
	}
	if _, err := p.TrainCNNExtractor(context.Background(), "no_such", cfg); err == nil {
		t.Fatal("unknown classification accepted")
	}
}

func TestServeHandlerIntegration(t *testing.T) {
	p := openPlatform(t, "")
	ts := httptest.NewServer(p.Handler(nil))
	defer ts.Close()
	boot := api.NewClient(ts.URL, "")
	uid, err := boot.CreateUser("usc", "research")
	if err != nil {
		t.Fatal(err)
	}
	key, err := boot.CreateKey(uid)
	if err != nil {
		t.Fatal(err)
	}
	c := api.NewClient(ts.URL, key)
	g, _ := synth.NewGenerator(synth.DefaultConfig(1, 6))
	rec := g.Render(synth.Clean)
	up, err := c.UploadImage(api.UploadImageRequest{
		FOV: api.FOVFromGeo(rec.FOV), Pixels: api.EncodePixels(rec.Image),
		CapturedAt: rec.CapturedAt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if up.ID == 0 {
		t.Fatal("no id")
	}
	if p.Store.NumImages() != 1 {
		t.Fatal("HTTP upload did not reach the store")
	}
}
