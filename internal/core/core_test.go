package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/feature"
	"repro/internal/geo"
	"repro/internal/imagesim"
	"repro/internal/store"
	"repro/internal/synth"
)

var la = geo.Point{Lat: 34.0522, Lon: -118.2437}

func open(t *testing.T) *Platform {
	t.Helper()
	p, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func TestOpenDefaultsColorExtractor(t *testing.T) {
	p := open(t)
	kinds := p.Analysis.ExtractorKinds()
	if len(kinds) != 1 || kinds[0] != string(feature.KindColorHist) {
		t.Fatalf("default extractors = %v", kinds)
	}
}

func TestOpenWithExplicitExtractors(t *testing.T) {
	p, err := Open(Config{Extractors: []feature.Extractor{feature.NewColorHistogram()}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if len(p.Analysis.ExtractorKinds()) != 1 {
		t.Fatal("explicit extractor not registered")
	}
}

func TestIngestExtractsFeatures(t *testing.T) {
	p := open(t)
	img := imagesim.MustNew(24, 24)
	fov := geo.FOV{Camera: la, Direction: 0, Angle: 60, Radius: 100}
	id, err := p.Ingest(context.Background(), img, fov, time.Date(2019, 5, 1, 0, 0, 0, 0, time.UTC), []string{"kw"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Store.GetFeature(id, string(feature.KindColorHist)); err != nil {
		t.Fatalf("feature not extracted at ingest: %v", err)
	}
	if kw := p.Store.KeywordsFor(id); len(kw) != 1 {
		t.Fatalf("keywords = %v", kw)
	}
}

func TestIngestVideoExtractsPerFrame(t *testing.T) {
	p := open(t)
	mk := func(brg float64, at time.Time) store.Frame {
		return store.Frame{
			Pixels:     imagesim.MustNew(16, 16),
			FOV:        geo.FOV{Camera: geo.Destination(la, brg, 300), Direction: brg, Angle: 80, Radius: 120},
			CapturedAt: at,
		}
	}
	base := time.Date(2019, 8, 1, 0, 0, 0, 0, time.UTC)
	vid, ids, err := p.IngestVideo(context.Background(), "flight", "drone", []store.Frame{
		mk(0, base), mk(10, base.Add(time.Second)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if vid == 0 || len(ids) != 2 {
		t.Fatalf("video = %d, frames = %v", vid, ids)
	}
	for _, id := range ids {
		if _, err := p.Store.GetFeature(id, string(feature.KindColorHist)); err != nil {
			t.Fatalf("frame %d feature missing: %v", id, err)
		}
	}
	if _, _, err := p.IngestVideo(context.Background(), "empty", "w", nil); err == nil {
		t.Fatal("empty video accepted")
	}
}

func TestAnnotateHumanUnknownClassification(t *testing.T) {
	p := open(t)
	img := imagesim.MustNew(16, 16)
	id, err := p.Ingest(context.Background(), img, geo.FOV{Camera: la, Direction: 0, Angle: 60, Radius: 100}, time.Now(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AnnotateHuman(id, "no_such_scheme", 0, time.Now()); err == nil {
		t.Fatal("unknown classification accepted")
	}
}

func TestStatsEmpty(t *testing.T) {
	p := open(t)
	st := p.Stats()
	if st.Images != 0 || st.Models != 0 || st.Classifications != 0 {
		t.Fatalf("empty stats = %+v", st)
	}
	if len(st.FeatureKinds) != 1 {
		t.Fatalf("feature kinds = %v", st.FeatureKinds)
	}
}

func TestDefaultClassifierFactory(t *testing.T) {
	f := DefaultClassifierFactory(1)
	if f == nil || f().Name() != "SVM" {
		t.Fatal("factory should produce the SVM")
	}
}

func TestHybridConfigFlowsThrough(t *testing.T) {
	kind := string(feature.KindColorHist)
	p, err := Open(Config{HybridKinds: []string{kind}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	g, err := synth.NewGenerator(synth.DefaultConfig(10, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range g.Generate(10) {
		if _, err := p.IngestRecord(context.Background(), rec); err != nil {
			t.Fatal(err)
		}
	}
	r := geo.NewRect(geo.Destination(la, 315, 12000), geo.Destination(la, 135, 12000))
	vec := make([]float64, 50)
	ms, ok, err := p.Store.SearchHybrid(context.Background(), kind, r, vec, 3)
	if err != nil || !ok {
		t.Fatalf("hybrid not maintained: ok=%v err=%v", ok, err)
	}
	if len(ms) != 3 {
		t.Fatalf("hybrid results = %d", len(ms))
	}
}
