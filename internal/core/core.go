// Package core implements the TVDP platform object — the paper's
// primary contribution: the unified "translational" layer that wires the
// four A-services (Acquisition, Access, Analysis, Action) over one
// durable geo-tagged visual data store. The root package tvdp re-exports
// this API for downstream users.
//
// TVDP reproduces "TVDP: Translational Visual Data
// Platform for Smart Cities" (Kim, Alfarrarjeh, Constantinou, Shahabi —
// ICDE 2019).
//
// A Platform bundles the paper's four core services around a durable
// geo-tagged image store:
//
//   - Acquisition — spatial-crowdsourcing campaigns that fill coverage
//     gaps (NewCampaignRunner, internal coverage model),
//   - Access — the comprehensive data model (FOV + scene location,
//     features, annotations, keywords, timestamps) behind multi-modal
//     indexed queries (Search, Query engine),
//   - Analysis — feature extraction (colour histogram / SIFT-BoW / CNN)
//     and shareable trained models (TrainModel, Predict, Annotate), and
//   - Action — the edge component that dispatches model variants by
//     device capability (Dispatch) and folds edge data back into training.
//
// The usual lifecycle is Open → IngestRecord/Ingest → TrainModel →
// AnnotateAll → Search / Serve.
package core

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"repro/internal/analysis"
	"repro/internal/api"
	"repro/internal/crowd"
	"repro/internal/edge"
	"repro/internal/feature"
	"repro/internal/geo"
	"repro/internal/imagesim"
	"repro/internal/ingest"
	"repro/internal/ml"
	"repro/internal/nn"
	"repro/internal/query"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/synth"
)

// Config controls platform construction.
type Config struct {
	// Dir is the durability directory; empty runs in memory.
	Dir string
	// ShardCount partitions the corpus across this many store shards
	// (internal/shard). 0 and 1 both mean a single unsharded store with
	// the exact on-disk layout earlier releases wrote; N > 1 places each
	// shard under Dir/shard-XXX and scatter-gathers queries.
	ShardCount int
	// Engine selects the persistence engine: store.EngineSegment (the
	// default) or store.EngineSnapshot (the legacy full-snapshot engine).
	Engine store.Engine
	// WALSync selects WAL batch durability: store.SyncBatch (default),
	// store.SyncImmediate, or store.SyncNone.
	WALSync store.WALSyncMode
	// SyncEveryWrite fsyncs the WAL per mutation (same as WALSync =
	// store.SyncImmediate).
	SyncEveryWrite bool
	// SnapshotEvery auto-compacts the WAL after this many mutations
	// (snapshot engine only; 0 disables).
	SnapshotEvery int
	// FlushThreshold is the segment engine's memtable flush trigger in
	// WAL bytes (0 means store.DefaultFlushThreshold).
	FlushThreshold int64
	// CompactSegments is the segment count that triggers background
	// compaction (0 means store.DefaultCompactSegments).
	CompactSegments int
	// HybridKinds lists feature kinds that maintain a single-pass
	// spatial-visual hybrid index.
	HybridKinds []string
	// Extractors are registered at open; nil installs the colour
	// histogram only (CNN and BoW extractors need training data — add
	// them later via RegisterExtractor).
	Extractors []feature.Extractor
	// IngestWorkers is the streaming-ingest partition count (0 means
	// ingest.DefaultConfig). Records from the same source always land on
	// the same partition, preserving per-source order.
	IngestWorkers int
	// IngestQueue bounds each partition's queued-plus-in-flight records;
	// past it admission sheds ingest.ErrBusy (HTTP 429). 0 means the
	// ingest default.
	IngestQueue int
	// IngestRefreshEvery fires OnIngestRefresh after this many successful
	// extractions (0 disables the hook).
	IngestRefreshEvery int
	// OnIngestRefresh is the off-path maintenance hook (quantizer / BoW
	// retrain, snapshot). It runs on the pipeline's refresher goroutine,
	// never on an upload path.
	OnIngestRefresh func(context.Context) error
}

// Platform is one running TVDP instance.
type Platform struct {
	Store    store.Backend
	Analysis *analysis.Service
	Query    *query.Engine
	// Pipeline is the staged upload pipeline every entry point (REST
	// handlers, CLI, Platform.Ingest*) routes through. It is started at
	// Open and drained at Close.
	Pipeline *ingest.Pipeline
}

// Open creates or recovers a platform.
func Open(cfg Config) (*Platform, error) {
	var st store.Backend
	if cfg.ShardCount > 1 {
		co, err := shard.Open(shard.Config{
			Dir:             cfg.Dir,
			ShardCount:      cfg.ShardCount,
			Engine:          cfg.Engine,
			WALSync:         cfg.WALSync,
			SyncEveryWrite:  cfg.SyncEveryWrite,
			HybridKinds:     cfg.HybridKinds,
			SnapshotEvery:   cfg.SnapshotEvery,
			FlushThreshold:  cfg.FlushThreshold,
			CompactSegments: cfg.CompactSegments,
		})
		if err != nil {
			return nil, err
		}
		st = co
	} else {
		sc := store.DefaultConfig()
		sc.Dir = cfg.Dir
		sc.Engine = cfg.Engine
		sc.WALSync = cfg.WALSync
		sc.SyncEveryWrite = cfg.SyncEveryWrite
		sc.HybridKinds = cfg.HybridKinds
		sc.SnapshotEvery = cfg.SnapshotEvery
		sc.FlushThreshold = cfg.FlushThreshold
		sc.CompactSegments = cfg.CompactSegments
		s, err := store.Open(sc)
		if err != nil {
			return nil, err
		}
		st = s
	}
	svc := analysis.NewService(st)
	if cfg.Extractors == nil {
		svc.RegisterExtractor(feature.NewColorHistogram())
	} else {
		for _, e := range cfg.Extractors {
			svc.RegisterExtractor(e)
		}
	}
	icfg := ingest.DefaultConfig()
	if cfg.IngestWorkers > 0 {
		icfg.Partitions = cfg.IngestWorkers
	}
	if cfg.IngestQueue > 0 {
		icfg.QueueDepth = cfg.IngestQueue
	}
	icfg.RefreshEvery = cfg.IngestRefreshEvery
	icfg.OnRefresh = cfg.OnIngestRefresh
	pipe := ingest.New(st, svc, icfg)
	pipe.Start(context.Background())
	p := &Platform{Store: st, Analysis: svc, Query: query.New(st), Pipeline: pipe}
	// At-least-once recovery: rows whose persist committed before a crash
	// but whose extraction never ran are re-driven now, off the open path.
	if _, err := pipe.Sweep(context.Background()); err != nil {
		pipe.Close()
		st.Close()
		return nil, err
	}
	return p, nil
}

// Close drains the ingest pipeline (workers still hold store handles),
// then flushes and closes the underlying store.
func (p *Platform) Close() error {
	perr := p.Pipeline.Close()
	serr := p.Store.Close()
	if perr != nil {
		return perr
	}
	return serr
}

// RegisterExtractor adds a feature family (e.g. a trained CNN or BoW
// extractor) for ingest-time extraction.
func (p *Platform) RegisterExtractor(e feature.Extractor) {
	p.Analysis.RegisterExtractor(e)
}

// Ingest stores one image with its spatial and temporal descriptors plus
// optional keywords, extracts all registered feature families, and
// returns the new image ID.
func (p *Platform) Ingest(ctx context.Context, img *imagesim.Image, fov geo.FOV, capturedAt time.Time, keywords []string) (uint64, error) {
	id, _, err := p.Pipeline.SubmitSync(ctx, ingest.Record{
		Image: store.Image{
			FOV:                fov,
			Pixels:             img,
			TimestampCapturing: capturedAt,
		},
		Keywords: keywords,
	})
	return id, err
}

// IngestRecord stores one synthetic capture record (the MediaQ-style
// ingest path used by examples and benchmarks).
func (p *Platform) IngestRecord(ctx context.Context, rec synth.Record) (uint64, error) {
	id, _, err := p.Pipeline.SubmitSync(ctx, ingest.Record{
		Image: store.Image{
			FOV:                rec.FOV,
			Pixels:             rec.Image,
			TimestampCapturing: rec.CapturedAt,
			TimestampUploading: rec.UploadedAt,
			WorkerID:           rec.WorkerID,
		},
		Keywords: rec.Keywords,
	})
	return id, err
}

// IngestRecordAsync admits one capture record to the streaming pipeline:
// it returns as soon as the row is WAL-durable, with feature extraction
// and index maintenance completing on a partition worker. ingest.ErrBusy
// means the partition's queue is full and nothing was persisted — retry
// after a beat.
func (p *Platform) IngestRecordAsync(ctx context.Context, rec synth.Record) (uint64, error) {
	return p.Pipeline.SubmitAsync(ctx, ingest.Record{
		Image: store.Image{
			FOV:                rec.FOV,
			Pixels:             rec.Image,
			TimestampCapturing: rec.CapturedAt,
			TimestampUploading: rec.UploadedAt,
			WorkerID:           rec.WorkerID,
		},
		Keywords: rec.Keywords,
	})
}

// IngestVideo stores a video as ordered key frames (each a full image
// row with its own FOV, per the paper's video model) and extracts every
// registered feature family for each frame.
func (p *Platform) IngestVideo(ctx context.Context, description, workerID string, frames []store.Frame) (uint64, []uint64, error) {
	vid, res, err := p.Pipeline.SubmitVideoSync(ctx, ingest.VideoRecord{
		Description: description,
		WorkerID:    workerID,
		Frames:      frames,
	})
	if err != nil {
		return 0, nil, err
	}
	ids := make([]uint64, len(res))
	for i, fr := range res {
		ids[i] = fr.ID
		if fr.Err != "" && err == nil {
			err = fmt.Errorf("tvdp: frame %d extraction: %s", fr.ID, fr.Err)
		}
	}
	return vid, ids, err
}

// CreateClassification registers a labelling scheme (e.g. the LASAN
// street-cleanliness labels) and returns its ID.
func (p *Platform) CreateClassification(name string, labels []string) (uint64, error) {
	return p.Store.CreateClassification(name, labels)
}

// AnnotateHuman records a ground-truth human label on an image.
func (p *Platform) AnnotateHuman(imageID uint64, classification string, label int, at time.Time) error {
	cls, err := p.Store.ClassificationByName(classification)
	if err != nil {
		return err
	}
	return p.Store.Annotate(store.Annotation{
		ImageID: imageID, ClassificationID: cls.ID, Label: label,
		Confidence: 1, Source: store.SourceHuman, AnnotatedAt: at,
	})
}

// TrainModel fits a classifier on the store's annotated features and
// registers it under cfg.Name.
func (p *Platform) TrainModel(ctx context.Context, cfg analysis.TrainConfig) (analysis.ModelSpec, error) {
	return p.Analysis.TrainModel(ctx, cfg)
}

// Predict runs a registered model on a feature vector.
func (p *Platform) Predict(model string, vec []float64) (analysis.Prediction, error) {
	return p.Analysis.Registry.Predict(model, vec)
}

// AnnotateAll machine-annotates every stored image with the model,
// writing results back as augmented knowledge (the translational step).
func (p *Platform) AnnotateAll(ctx context.Context, model string, at time.Time) (annotated, skipped int, err error) {
	return p.Analysis.AnnotateImages(ctx, model, p.Store.ImageIDs(), at)
}

// Search executes a multi-modal query.
func (p *Platform) Search(ctx context.Context, q query.Query) ([]query.Result, query.Plan, error) {
	return p.Query.Run(ctx, q)
}

// Handler returns the REST API handler (paper §V) over this platform.
func (p *Platform) Handler(logger *log.Logger) http.Handler {
	return api.NewServer(p.Store, p.Analysis, p.Pipeline, logger)
}

// ServeConfig controls Platform.Serve. The zero value of each field
// selects a production-safe default.
type ServeConfig struct {
	// Addr is the listen address (host:port).
	Addr string
	// Logger receives request and lifecycle lines; nil discards.
	Logger *log.Logger
	// RequestTimeout is the per-request deadline budget each handler
	// derives from the client's context (default 30s).
	RequestTimeout time.Duration
	// ShutdownGrace bounds the in-flight drain after ctx is cancelled
	// (default 10s). Requests still running when it expires are
	// force-closed.
	ShutdownGrace time.Duration
	// Ready, when non-nil, is called once with the bound listen address
	// before the first request is accepted. With Addr ":0" it is the only
	// way to learn the kernel-assigned port (tests, the CI shutdown gate).
	Ready func(addr net.Addr)
	// RateLimit admits this many requests per second per client before
	// the API sheds 429s; zero disables admission control.
	RateLimit float64
	// RateBurst is the admission bucket capacity (<= 0 derives it from
	// RateLimit).
	RateBurst int
}

// Serve runs the REST API on cfg.Addr until ctx is cancelled or the
// listener fails. On cancellation it stops accepting, drains in-flight
// requests for up to cfg.ShutdownGrace, then force-closes stragglers. A
// nil return means every request drained cleanly; the caller then owns
// quiescing the store (Snapshot + Close). The http.Server carries full
// slow-client armour: header/read/write/idle timeouts all set.
func (p *Platform) Serve(ctx context.Context, cfg ServeConfig) error {
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.ShutdownGrace <= 0 {
		cfg.ShutdownGrace = 10 * time.Second
	}
	h := api.NewServer(p.Store, p.Analysis, p.Pipeline, cfg.Logger)
	h.RequestTimeout = cfg.RequestTimeout
	h.RateLimit = cfg.RateLimit
	h.RateBurst = cfg.RateBurst
	srv := &http.Server{
		Addr:              cfg.Addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		// WriteTimeout must outlast the handler deadline budget, or slow
		// (but in-budget) handlers get their response writes torn.
		WriteTimeout: cfg.RequestTimeout + 30*time.Second,
		IdleTimeout:  2 * time.Minute,
		ErrorLog:     cfg.Logger,
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return err
	}
	if cfg.Ready != nil {
		cfg.Ready(ln.Addr())
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	// The parent is already cancelled; the drain needs its own budget, so
	// derive it from a cancellation-stripped copy (not Background — the
	// parent's values survive).
	sdCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), cfg.ShutdownGrace)
	defer cancel()
	if err := srv.Shutdown(sdCtx); err != nil {
		srv.Close()
		return fmt.Errorf("tvdp: shutdown drain: %w", err)
	}
	return nil
}

// Dispatch picks the model variant an edge device should run.
func (p *Platform) Dispatch(device edge.DeviceProfile, c edge.Constraints) (edge.Decision, error) {
	return edge.Dispatch(device, nn.Profiles(), c, nil)
}

// NewCampaignRunner builds an iterative crowdsourcing campaign over a
// region. Existing stored images seed the coverage map, so campaigns only
// task workers at genuine gaps.
func (p *Platform) NewCampaignRunner(c crowd.Campaign, rows, cols int, workers []crowd.Worker, capture crowd.CaptureFunc, seed int64) (*crowd.Runner, error) {
	model, err := crowd.NewCoverageModel(c.Region, rows, cols, 1, 1)
	if err != nil {
		return nil, err
	}
	var existing []geo.FOV
	for _, id := range p.Store.ImageIDs() {
		d, err := p.Store.Describe(id)
		if err != nil {
			continue
		}
		if c.Region.Intersects(d.Scene) {
			existing = append(existing, d.FOV)
		}
	}
	return crowd.NewRunner(c, model, workers, capture, existing, seed)
}

// TrainCNNExtractor fine-tunes a CNN feature extractor on labelled store
// images of the given classification and returns it (register it with
// RegisterExtractor to use at ingest).
func (p *Platform) TrainCNNExtractor(ctx context.Context, classification string, cfg feature.CNNTrainConfig) (*feature.CNNExtractor, error) {
	cls, err := p.Store.ClassificationByName(classification)
	if err != nil {
		return nil, err
	}
	var imgs []*imagesim.Image
	var labels []int
	for label := range cls.Labels {
		for _, id := range p.Store.ImagesByLabel(cls.ID, label) {
			img, err := p.Store.GetImage(id)
			if err != nil {
				continue
			}
			imgs = append(imgs, img.Pixels)
			labels = append(labels, label)
		}
	}
	if len(imgs) == 0 {
		return nil, fmt.Errorf("tvdp: no labelled images for %q", classification)
	}
	if cfg.Net.Classes == 0 {
		cfg = feature.DefaultCNNTrainConfig(len(cls.Labels))
	}
	return feature.TrainCNN(ctx, imgs, labels, cfg)
}

// Stats summarises platform contents.
type Stats struct {
	Images          int
	Classifications int
	Models          int
	FeatureKinds    []string
}

// Stats returns a content summary.
func (p *Platform) Stats() Stats {
	return Stats{
		Images:          p.Store.NumImages(),
		Classifications: len(p.Store.Classifications()),
		Models:          len(p.Analysis.Registry.List()),
		FeatureKinds:    p.Analysis.ExtractorKinds(),
	}
}

// DefaultClassifierFactory returns the paper's best estimator (linear
// SVM) as an ml.Factory for TrainModel configs.
func DefaultClassifierFactory(seed int64) ml.Factory {
	return func() ml.Classifier { return ml.NewLinearSVM(ml.DefaultLinearConfig(seed)) }
}
