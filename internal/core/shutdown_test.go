package core

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/synth"
)

// Graceful-shutdown tests: Serve must stop accepting on cancellation,
// drain whatever is in flight, and leave the store in a state where
// Snapshot + Close + reopen shows every acknowledged write and nothing
// torn — the same contract cmd/tvdp-server relies on for SIGTERM.

// startServe runs p.Serve on a kernel-assigned port and returns the base
// URL plus the channel Serve's return value lands on.
func startServe(t *testing.T, ctx context.Context, p *Platform, grace time.Duration) (string, <-chan error) {
	t.Helper()
	addrCh := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- p.Serve(ctx, ServeConfig{
			Addr:           "127.0.0.1:0",
			RequestTimeout: 10 * time.Second,
			ShutdownGrace:  grace,
			Ready:          func(a net.Addr) { addrCh <- a },
		})
	}()
	select {
	case a := <-addrCh:
		return "http://" + a.String(), done
	case err := <-done:
		t.Fatalf("Serve exited before binding: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("Serve never bound its listener")
	}
	return "", nil
}

func waitServe(t *testing.T, done <-chan error) error {
	t.Helper()
	select {
	case err := <-done:
		return err
	case <-time.After(15 * time.Second):
		t.Fatal("Serve did not return after cancellation")
		return nil
	}
}

// TestServeStopsOnCancel is the quiet-path contract: no traffic, cancel,
// and Serve returns nil promptly.
func TestServeStopsOnCancel(t *testing.T) {
	p := openPlatform(t, "")
	ctx, cancel := context.WithCancel(context.Background())
	_, done := startServe(t, ctx, p, 5*time.Second)
	cancel()
	if err := waitServe(t, done); err != nil {
		t.Fatalf("Serve = %v, want nil (clean drain)", err)
	}
}

// TestServeGracefulShutdownDrainsInFlight fires concurrent uploads,
// cancels the serve context while they are on the wire, and checks the
// drain contract end to end: Serve returns nil, every upload the client
// saw acknowledged is durable across Snapshot + Close + reopen, and the
// reopened store serves reads — the programmatic twin of SIGTERM-ing a
// loaded tvdp-server.
func TestServeGracefulShutdownDrainsInFlight(t *testing.T) {
	dir := t.TempDir()
	p := openPlatform(t, dir)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base, done := startServe(t, ctx, p, 10*time.Second)

	boot := api.NewClient(base, "")
	uid, err := boot.CreateUser("lasan", "government")
	if err != nil {
		t.Fatal(err)
	}
	key, err := boot.CreateKey(uid)
	if err != nil {
		t.Fatal(err)
	}
	c := api.NewClient(base, key)

	g, err := synth.NewGenerator(synth.DefaultConfig(8, 11))
	if err != nil {
		t.Fatal(err)
	}
	recs := g.Generate(8)
	upload := func(i int) (uint64, error) {
		resp, err := c.UploadImage(api.UploadImageRequest{
			FOV:        api.FOVFromGeo(recs[i].FOV),
			Pixels:     api.EncodePixels(recs[i].Image),
			CapturedAt: recs[i].CapturedAt,
			Keywords:   recs[i].Keywords,
		})
		return resp.ID, err
	}

	// One synchronous upload proves the path works before shutdown races in.
	firstID, err := upload(0)
	if err != nil || firstID == 0 {
		t.Fatalf("baseline upload = (%d, %v)", firstID, err)
	}

	// Fire the rest concurrently and cancel while they are in flight.
	var (
		mu    sync.Mutex
		acked []uint64
	)
	var wg sync.WaitGroup
	for i := 1; i < len(recs); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if id, err := upload(i); err == nil && id != 0 {
				mu.Lock()
				acked = append(acked, id)
				mu.Unlock()
			}
			// Uploads cut off by the closing listener simply don't count as
			// acknowledged; the durability assertion below only covers acks.
		}(i)
	}
	cancel()
	wg.Wait()
	if err := waitServe(t, done); err != nil {
		t.Fatalf("Serve = %v, want nil (in-flight requests must drain within grace)", err)
	}

	// The cmd/tvdp-server epilogue: snapshot so the next open replays
	// nothing, then close (quiescing the group-commit committer).
	if err := p.Store.Snapshot(); err != nil {
		t.Fatalf("post-drain snapshot: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("post-drain close: %v", err)
	}

	p2 := openPlatform(t, dir)
	want := append([]uint64{firstID}, acked...)
	for _, id := range want {
		if _, err := p2.Store.GetImage(id); err != nil {
			t.Errorf("acknowledged image %d lost across shutdown+reopen: %v", id, err)
		}
	}
	if n := p2.Store.NumImages(); n < len(want) {
		t.Errorf("reopened store has %d images, want at least %d", n, len(want))
	}
	// The reopened platform still answers queries.
	if _, err := p2.Query.ByKeywords(context.Background(), recs[0].Keywords...); err != nil {
		t.Errorf("post-reopen query: %v", err)
	}
}
