package core

// Crash-window coverage for the at-least-once ingest contract: a record
// acked at WAL commit whose extraction never lands (crash between the
// persist ack and the index insert) must be re-driven by the sweep on
// the next open, and end up searchable.

import (
	"context"
	"testing"
	"time"

	"repro/internal/feature"
	"repro/internal/imagesim"
	"repro/internal/query"
	"repro/internal/synth"
)

// gatedExtractor delegates to the real colour histogram but parks every
// Extract until gate closes — it holds pipeline workers inside the
// crash window (row durable, features not yet written).
type gatedExtractor struct {
	inner *feature.ColorHistogram
	gate  chan struct{}
}

func (g *gatedExtractor) Kind() feature.Kind { return g.inner.Kind() }
func (g *gatedExtractor) Dim() int           { return g.inner.Dim() }
func (g *gatedExtractor) Extract(img *imagesim.Image) ([]float64, error) {
	<-g.gate
	return g.inner.Extract(img)
}

func TestCrashBetweenAckAndIndexSweepRedrives(t *testing.T) {
	dir := t.TempDir()
	gate := &gatedExtractor{inner: feature.NewColorHistogram(), gate: make(chan struct{})}
	p, err := Open(Config{Dir: dir, Extractors: []feature.Extractor{gate}})
	if err != nil {
		t.Fatal(err)
	}
	g, err := synth.NewGenerator(synth.DefaultConfig(8, 91))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var ids []uint64
	for _, rec := range g.Generate(5) {
		// The returned ack means the row is WAL-durable right now; its
		// extraction is queued behind the gate.
		id, err := p.IngestRecordAsync(ctx, rec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Crash: durability is cut while every extraction is still in the
	// window between persist-ack and index insert. Workers then wake and
	// fail their PutFeature against the closed store (ErrClosed), exactly
	// as a killed process would have left the disk state.
	if err := p.Store.Close(); err != nil {
		t.Fatal(err)
	}
	close(gate.gate)
	p.Pipeline.Close()
	if got := p.Pipeline.Stats().Failed; got == 0 {
		t.Fatal("no extraction failed inside the crash window — test lost its race shape")
	}

	// Recovery: Open sweeps pending-extraction rows onto the pipeline.
	p2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	for _, id := range ids {
		img, err := p2.Store.GetImage(id)
		if err != nil {
			t.Fatalf("acked row %d did not survive the crash: %v", id, err)
		}
		if img.Pixels == nil {
			t.Fatalf("row %d lost pixels", id)
		}
	}
	dctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := p2.Pipeline.Drain(dctx); err != nil {
		t.Fatalf("draining recovery sweep: %v", err)
	}
	if got := p2.Pipeline.Stats().Swept; got < uint64(len(ids)) {
		t.Fatalf("sweep re-drove %d rows, want >= %d", got, len(ids))
	}
	for _, id := range ids {
		if kinds := p2.Store.FeatureKinds(id); len(kinds) != 1 {
			t.Fatalf("row %d features after sweep = %v", id, kinds)
		}
	}
	// The re-driven rows are searchable: probe with row 0's own vector.
	vec, err := p2.Store.GetFeature(ids[0], string(feature.KindColorHist))
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := p2.Search(ctx, query.Query{
		Visual: &query.VisualClause{Kind: string(feature.KindColorHist), Vec: vec, K: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res {
		if r.ID == ids[0] {
			found = true
		}
	}
	if !found {
		t.Fatalf("swept row %d not found by visual search: %+v", ids[0], res)
	}
}

// TestReopenAfterCleanCloseSweepsNothing pins the converse: a drained
// shutdown leaves no pending-extraction rows, so the recovery sweep on
// the next open is a no-op.
func TestReopenAfterCleanCloseSweepsNothing(t *testing.T) {
	dir := t.TempDir()
	p, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	g, err := synth.NewGenerator(synth.DefaultConfig(8, 92))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, rec := range g.Generate(3) {
		if _, err := p.IngestRecordAsync(ctx, rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	p2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if got := p2.Pipeline.Stats().Swept; got != 0 {
		t.Fatalf("clean close left %d rows for the sweep", got)
	}
}
