package crowd

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/geo"
)

var la = geo.Point{Lat: 34.0522, Lon: -118.2437}

func region(sizeM float64) geo.Rect {
	return geo.NewRect(geo.Destination(la, 315, sizeM), geo.Destination(la, 135, sizeM))
}

func TestNewCoverageModelValidation(t *testing.T) {
	if _, err := NewCoverageModel(geo.Rect{}, 4, 4, 1, 1); err == nil {
		t.Fatal("degenerate region accepted")
	}
	if _, err := NewCoverageModel(region(1000), 0, 4, 1, 1); err == nil {
		t.Fatal("zero rows accepted")
	}
	m, err := NewCoverageModel(region(1000), 4, 4, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.DirBins != 1 || m.MinCount != 1 {
		t.Fatalf("defaults not applied: %+v", m)
	}
}

func TestCellRectTilesRegion(t *testing.T) {
	m, _ := NewCoverageModel(region(1000), 3, 3, 1, 1)
	// Union of all cells == region (within float slop).
	first := m.CellRect(0, 0)
	last := m.CellRect(2, 2)
	if first.MinLat != m.Region.MinLat || first.MinLon != m.Region.MinLon {
		t.Fatal("first cell corner wrong")
	}
	const eps = 1e-9
	if last.MaxLat < m.Region.MaxLat-eps || last.MaxLon < m.Region.MaxLon-eps {
		t.Fatal("last cell corner wrong")
	}
	// Adjacent cells do not overlap interiors.
	a := m.CellRect(0, 0)
	b := m.CellRect(0, 1)
	if a.MaxLon > b.MinLon+eps {
		t.Fatal("cells overlap")
	}
}

func TestMeasureEmptyAndFull(t *testing.T) {
	m, _ := NewCoverageModel(region(500), 4, 4, 1, 1)
	cm := m.Measure(nil)
	if cm.Ratio() != 0 {
		t.Fatalf("empty coverage = %v", cm.Ratio())
	}
	if len(cm.WeakCells()) != 16 {
		t.Fatalf("weak cells = %d", len(cm.WeakCells()))
	}
	// One omnidirectional FOV with a huge radius covers everything.
	cm = m.Measure([]geo.FOV{{Camera: la, Direction: 0, Angle: 360, Radius: 3000}})
	if cm.Ratio() != 1 {
		t.Fatalf("full coverage = %v", cm.Ratio())
	}
	if len(cm.WeakCells()) != 0 {
		t.Fatal("weak cells remain under full coverage")
	}
}

func TestMeasurePartial(t *testing.T) {
	m, _ := NewCoverageModel(region(1000), 4, 4, 1, 1)
	// A narrow FOV in one corner covers few cells.
	corner := geo.Destination(la, 315, 800)
	cm := m.Measure([]geo.FOV{{Camera: corner, Direction: 180, Angle: 40, Radius: 100}})
	r := cm.Ratio()
	if r <= 0 || r > 0.5 {
		t.Fatalf("partial coverage = %v", r)
	}
}

func TestDirectionalCoverage(t *testing.T) {
	m, _ := NewCoverageModel(region(200), 2, 2, 4, 1)
	// All FOVs face north: directional ratio stays low even when the
	// plain ratio saturates.
	var fovs []geo.FOV
	for i := 0; i < 8; i++ {
		fovs = append(fovs, geo.FOV{
			Camera:    geo.Destination(la, float64(i*45), 100),
			Direction: 0, Angle: 90, Radius: 400,
		})
	}
	cm := m.Measure(fovs)
	if cm.Ratio() != 1 {
		t.Fatalf("plain ratio = %v", cm.Ratio())
	}
	if dr := cm.DirectionalRatio(); dr > 0.5 {
		t.Fatalf("directional ratio = %v for single-direction captures", dr)
	}
}

func TestMinCountThreshold(t *testing.T) {
	m, _ := NewCoverageModel(region(200), 1, 1, 1, 3)
	f := geo.FOV{Camera: la, Direction: 0, Angle: 360, Radius: 1000}
	if m.Measure([]geo.FOV{f, f}).Ratio() != 0 {
		t.Fatal("2 captures should not satisfy MinCount=3")
	}
	if m.Measure([]geo.FOV{f, f, f}).Ratio() != 1 {
		t.Fatal("3 captures should satisfy MinCount=3")
	}
}

func TestRedundancy(t *testing.T) {
	f := geo.FOV{Camera: la, Direction: 0, Angle: 60, Radius: 300}
	same := []geo.FOV{f, f, f}
	r, err := Redundancy(same, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.9 {
		t.Fatalf("identical FOV redundancy = %v", r)
	}
	spread := []geo.FOV{
		f,
		{Camera: geo.Destination(la, 90, 5000), Direction: 0, Angle: 60, Radius: 300},
	}
	r2, _ := Redundancy(spread, 0)
	if r2 != 0 {
		t.Fatalf("disjoint redundancy = %v", r2)
	}
	if _, err := Redundancy([]geo.FOV{f}, 0); !errors.Is(err, ErrNoFOVs) {
		t.Fatal("single FOV accepted")
	}
}

func makeWorkers(n int, spreadM float64, capacity int, maxTravel float64, seed int64) []Worker {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Worker, n)
	for i := range out {
		out[i] = Worker{
			ID:         string(rune('A' + i)),
			Location:   geo.Destination(la, rng.Float64()*360, rng.Float64()*spreadM),
			MaxTravelM: maxTravel,
			Capacity:   capacity,
		}
	}
	return out
}

func makeTasks(n int, spreadM float64, seed int64) []Task {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Task, n)
	for i := range out {
		out[i] = Task{ID: uint64(i + 1), Location: geo.Destination(la, rng.Float64()*360, rng.Float64()*spreadM)}
	}
	return out
}

func TestAssignStrategies(t *testing.T) {
	tasks := makeTasks(20, 1500, 1)
	workers := makeWorkers(10, 1500, 3, 2000, 2)
	for _, s := range []Strategy{StrategyGreedy, StrategyEntropy, StrategyRandom} {
		asn, err := Assign(tasks, workers, s, 3)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if asn.Assigned() == 0 {
			t.Fatalf("%s assigned nothing", s)
		}
		// Capacity respected.
		load := map[string]int{}
		for _, w := range asn.TaskWorker {
			load[w]++
		}
		for w, n := range load {
			if n > 3 {
				t.Fatalf("%s overloaded worker %s with %d tasks", s, w, n)
			}
		}
		// Travel bound respected.
		byID := map[uint64]Task{}
		for _, task := range tasks {
			byID[task.ID] = task
		}
		wByID := map[string]Worker{}
		for _, w := range workers {
			wByID[w.ID] = w
		}
		for tid, wid := range asn.TaskWorker {
			d := geo.Haversine(wByID[wid].Location, byID[tid].Location)
			if d > wByID[wid].MaxTravelM+1 {
				t.Fatalf("%s exceeded travel bound: %.0f m", s, d)
			}
		}
	}
	if _, err := Assign(tasks, workers, "bogus", 1); !errors.Is(err, ErrUnknownStrategy) {
		t.Fatal("bogus strategy accepted")
	}
}

func TestGreedyAssignsAllWhenCapacityAllows(t *testing.T) {
	tasks := makeTasks(6, 500, 4)
	workers := makeWorkers(6, 500, 2, 5000, 5)
	asn, _ := Assign(tasks, workers, StrategyGreedy, 1)
	if asn.Assigned() != 6 {
		t.Fatalf("greedy assigned %d/6", asn.Assigned())
	}
}

func TestEntropyBeatsGreedyOnConstrainedInstance(t *testing.T) {
	// One distant task reachable only by worker A; one central task
	// reachable by everyone. Greedy may spend A on the central task; the
	// entropy heuristic assigns the constrained task first.
	far := geo.Destination(la, 0, 1800)
	tasks := []Task{
		{ID: 1, Location: geo.Destination(la, 0, 30)}, // central
		{ID: 2, Location: far},                        // constrained
	}
	workers := []Worker{
		{ID: "A", Location: geo.Destination(far, 180, 150), MaxTravelM: 200, Capacity: 1},
		{ID: "B", Location: geo.Destination(la, 90, 3000), MaxTravelM: 5000, Capacity: 1},
	}
	asn, err := Assign(tasks, workers, StrategyEntropy, 1)
	if err != nil {
		t.Fatal(err)
	}
	if asn.TaskWorker[2] != "A" {
		t.Fatalf("entropy did not reserve constrained worker: %+v", asn.TaskWorker)
	}
	if asn.Assigned() != 2 {
		t.Fatalf("entropy assigned %d/2", asn.Assigned())
	}
}

func TestCampaignReachesTargetCoverage(t *testing.T) {
	m, err := NewCoverageModel(region(800), 5, 5, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	workers := makeWorkers(8, 1000, 5, 3000, 3)
	c := Campaign{ID: 1, Name: "fill-gaps", Region: m.Region, TargetCoverage: 0.9, MaxRounds: 8, Strategy: StrategyGreedy}
	r, err := NewRunner(c, m, workers, DefaultCaptureFunc(2, 150, 4), nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) < 2 {
		t.Fatalf("campaign ran %d rounds", len(reports))
	}
	final := reports[len(reports)-1]
	if final.Coverage < 0.9 {
		t.Fatalf("final coverage = %.3f, want >= 0.9 (reports %+v)", final.Coverage, reports)
	}
	// Coverage is monotonically nondecreasing.
	for i := 1; i < len(reports); i++ {
		if reports[i].Coverage < reports[i-1].Coverage {
			t.Fatal("coverage decreased across rounds")
		}
	}
	if len(r.FOVs()) == 0 {
		t.Fatal("no captures accumulated")
	}
}

func TestCampaignStopsWhenStuck(t *testing.T) {
	m, _ := NewCoverageModel(region(5000), 4, 4, 1, 1)
	// Workers that can barely move: no weak cell is reachable.
	workers := []Worker{{ID: "A", Location: geo.Destination(la, 0, 20000), MaxTravelM: 10, Capacity: 1}}
	c := Campaign{ID: 1, Region: m.Region, TargetCoverage: 1, MaxRounds: 50}
	r, err := NewRunner(c, m, workers, DefaultCaptureFunc(1, 100, 1), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) > 3 {
		t.Fatalf("stuck campaign ran %d rounds", len(reports))
	}
}

func TestNewRunnerValidation(t *testing.T) {
	m, _ := NewCoverageModel(region(500), 2, 2, 1, 1)
	w := makeWorkers(1, 100, 1, 1000, 1)
	cap := DefaultCaptureFunc(1, 100, 1)
	if _, err := NewRunner(Campaign{TargetCoverage: 0.5}, nil, w, cap, nil, 1); err == nil {
		t.Fatal("nil model accepted")
	}
	if _, err := NewRunner(Campaign{TargetCoverage: 0.5}, m, nil, cap, nil, 1); !errors.Is(err, ErrNoWorkers) {
		t.Fatal("no workers accepted")
	}
	if _, err := NewRunner(Campaign{TargetCoverage: 0.5}, m, w, nil, nil, 1); err == nil {
		t.Fatal("nil capture accepted")
	}
	if _, err := NewRunner(Campaign{TargetCoverage: 0}, m, w, cap, nil, 1); err == nil {
		t.Fatal("zero target accepted")
	}
	if _, err := NewRunner(Campaign{TargetCoverage: 1.5}, m, w, cap, nil, 1); err == nil {
		t.Fatal("target > 1 accepted")
	}
}

func TestExistingFOVsSeedCoverage(t *testing.T) {
	m, _ := NewCoverageModel(region(300), 2, 2, 1, 1)
	full := geo.FOV{Camera: la, Direction: 0, Angle: 360, Radius: 2000}
	w := makeWorkers(1, 100, 1, 1000, 1)
	c := Campaign{ID: 1, Region: m.Region, TargetCoverage: 0.9, MaxRounds: 5}
	r, err := NewRunner(c, m, w, DefaultCaptureFunc(1, 100, 1), []geo.FOV{full}, 1)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Already covered: only the baseline report, no rounds executed.
	if len(reports) != 1 || reports[0].Coverage != 1 {
		t.Fatalf("reports = %+v", reports)
	}
}

func TestDefaultCaptureFuncFacesTask(t *testing.T) {
	f := DefaultCaptureFunc(3, 120, 9)
	task := Task{ID: 1, Location: geo.Destination(la, 45, 400)}
	caps := f(task, "W")
	if len(caps) != 3 {
		t.Fatalf("captures = %d", len(caps))
	}
	for _, c := range caps {
		if c.WorkerID != "W" || c.TaskID != 1 {
			t.Fatalf("capture metadata wrong: %+v", c)
		}
		if err := c.FOV.Validate(); err != nil {
			t.Fatal(err)
		}
		if !c.FOV.Contains(task.Location) {
			t.Fatalf("capture does not view the task location: %+v", c.FOV)
		}
	}
}
