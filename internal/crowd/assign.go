package crowd

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/geo"
)

// Task is one requested capture: photograph the location, facing it,
// before the campaign round ends.
type Task struct {
	ID       uint64
	Location geo.Point
	// CampaignID links the task to its campaign.
	CampaignID uint64
}

// Worker is one mobile participant.
type Worker struct {
	ID       string
	Location geo.Point
	// MaxTravelM bounds the distance the worker accepts tasks within.
	MaxTravelM float64
	// Capacity is the number of tasks the worker accepts per round.
	Capacity int
}

// Assignment maps tasks to workers for one round.
type Assignment struct {
	// TaskWorker[taskID] = workerID.
	TaskWorker map[uint64]string
	// TravelM is the total travel distance of the matching.
	TravelM float64
}

// Assigned returns the number of matched tasks.
func (a Assignment) Assigned() int { return len(a.TaskWorker) }

// Strategy names an assignment algorithm.
type Strategy string

// Assignment strategies: the greedy nearest-worker heuristic, the
// least-location-entropy heuristic of the GeoCrowd line of work
// (prioritise tasks reachable by the fewest workers), and a random
// baseline for the A4 ablation.
const (
	StrategyGreedy  Strategy = "greedy"
	StrategyEntropy Strategy = "entropy"
	StrategyRandom  Strategy = "random"
)

// ErrUnknownStrategy reports an unsupported strategy name.
var ErrUnknownStrategy = errors.New("crowd: unknown assignment strategy")

// Assign matches tasks to workers under travel and capacity constraints.
func Assign(tasks []Task, workers []Worker, strategy Strategy, seed int64) (Assignment, error) {
	switch strategy {
	case StrategyGreedy:
		return assignGreedy(tasks, workers), nil
	case StrategyEntropy:
		return assignEntropy(tasks, workers), nil
	case StrategyRandom:
		return assignRandom(tasks, workers, seed), nil
	default:
		return Assignment{}, fmt.Errorf("%w: %q", ErrUnknownStrategy, strategy)
	}
}

type workerState struct {
	Worker
	remaining int
}

func eligible(w *workerState, t Task) (float64, bool) {
	if w.remaining <= 0 {
		return 0, false
	}
	d := geo.Haversine(w.Location, t.Location)
	if w.MaxTravelM > 0 && d > w.MaxTravelM {
		return 0, false
	}
	return d, true
}

func states(workers []Worker) []*workerState {
	out := make([]*workerState, len(workers))
	for i, w := range workers {
		cap := w.Capacity
		if cap <= 0 {
			cap = 1
		}
		out[i] = &workerState{Worker: w, remaining: cap}
	}
	return out
}

// assignGreedy processes tasks in ascending best-distance order, matching
// each to its nearest eligible worker.
func assignGreedy(tasks []Task, workers []Worker) Assignment {
	ws := states(workers)
	out := Assignment{TaskWorker: make(map[uint64]string)}
	remaining := append([]Task(nil), tasks...)
	// Repeatedly pick the globally closest (task, worker) pair. O(T·W·T)
	// worst case, fine at campaign scales.
	for {
		bestT := -1
		var bestW *workerState
		bestD := math.Inf(1)
		for i, t := range remaining {
			for _, w := range ws {
				if d, ok := eligible(w, t); ok && d < bestD {
					bestT, bestW, bestD = i, w, d
				}
			}
		}
		if bestT < 0 {
			return out
		}
		t := remaining[bestT]
		out.TaskWorker[t.ID] = bestW.ID
		out.TravelM += bestD
		bestW.remaining--
		remaining = append(remaining[:bestT], remaining[bestT+1:]...)
	}
}

// assignEntropy processes the most constrained tasks first: tasks with the
// fewest eligible workers are matched before flexible ones, which raises
// total assignment counts when worker coverage is uneven (the
// least-location-entropy idea).
func assignEntropy(tasks []Task, workers []Worker) Assignment {
	ws := states(workers)
	out := Assignment{TaskWorker: make(map[uint64]string)}
	remaining := append([]Task(nil), tasks...)
	for len(remaining) > 0 {
		// Rank remaining tasks by current eligible-worker count.
		type ranked struct {
			idx      int
			eligible int
		}
		rs := make([]ranked, 0, len(remaining))
		for i, t := range remaining {
			n := 0
			for _, w := range ws {
				if _, ok := eligible(w, t); ok {
					n++
				}
			}
			rs = append(rs, ranked{idx: i, eligible: n})
		}
		sort.Slice(rs, func(i, j int) bool {
			if rs[i].eligible != rs[j].eligible {
				return rs[i].eligible < rs[j].eligible
			}
			return remaining[rs[i].idx].ID < remaining[rs[j].idx].ID
		})
		pick := rs[0]
		t := remaining[pick.idx]
		remaining = append(remaining[:pick.idx], remaining[pick.idx+1:]...)
		if pick.eligible == 0 {
			continue // unassignable this round
		}
		var bestW *workerState
		bestD := math.Inf(1)
		for _, w := range ws {
			if d, ok := eligible(w, t); ok && d < bestD {
				bestW, bestD = w, d
			}
		}
		out.TaskWorker[t.ID] = bestW.ID
		out.TravelM += bestD
		bestW.remaining--
	}
	return out
}

// assignRandom matches tasks to random eligible workers (baseline).
func assignRandom(tasks []Task, workers []Worker, seed int64) Assignment {
	rng := rand.New(rand.NewSource(seed))
	ws := states(workers)
	out := Assignment{TaskWorker: make(map[uint64]string)}
	order := rng.Perm(len(tasks))
	for _, i := range order {
		t := tasks[i]
		var elig []*workerState
		for _, w := range ws {
			if _, ok := eligible(w, t); ok {
				elig = append(elig, w)
			}
		}
		if len(elig) == 0 {
			continue
		}
		w := elig[rng.Intn(len(elig))]
		out.TaskWorker[t.ID] = w.ID
		out.TravelM += geo.Haversine(w.Location, t.Location)
		w.remaining--
	}
	return out
}
