// Package crowd implements TVDP's acquisition service (paper §III):
// FOV-based spatial coverage measurement, data-collection campaigns over
// under-covered cells, GeoCrowd-style task assignment to mobile workers,
// and an iterative collect-measure-recollect loop that proactively fills
// coverage gaps.
package crowd

import (
	"errors"
	"fmt"

	"repro/internal/geo"
)

// CoverageModel measures how well a set of FOVs covers a region, following
// the cell-decomposition spatial coverage measurement of the paper's
// reference [17]: the region splits into a uniform cell grid and each cell
// accumulates the count of FOVs viewing it, optionally split by viewing
// direction so that a cell seen only from the north is distinguishable
// from one photographed all around.
type CoverageModel struct {
	Region geo.Rect
	// Rows and Cols set the cell resolution.
	Rows, Cols int
	// DirBins splits each cell's coverage into compass sectors (1 =
	// direction-agnostic).
	DirBins int
	// MinCount is the per-(cell, direction) capture count for "covered".
	MinCount int
}

// NewCoverageModel validates and returns a model.
func NewCoverageModel(region geo.Rect, rows, cols, dirBins, minCount int) (*CoverageModel, error) {
	if !region.Valid() || region.Area() == 0 {
		return nil, fmt.Errorf("crowd: degenerate region %+v", region)
	}
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("crowd: grid %dx%d invalid", rows, cols)
	}
	if dirBins <= 0 {
		dirBins = 1
	}
	if minCount <= 0 {
		minCount = 1
	}
	return &CoverageModel{Region: region, Rows: rows, Cols: cols, DirBins: dirBins, MinCount: minCount}, nil
}

// CoverageMap is the measured result.
type CoverageMap struct {
	Model *CoverageModel
	// Counts[cell][dirBin] is the number of FOVs viewing the cell from
	// that direction sector; cell = row*Cols+col.
	Counts [][]int
}

// CellRect returns the geographic rectangle of a cell.
func (m *CoverageModel) CellRect(row, col int) geo.Rect {
	latStep := (m.Region.MaxLat - m.Region.MinLat) / float64(m.Rows)
	lonStep := (m.Region.MaxLon - m.Region.MinLon) / float64(m.Cols)
	return geo.Rect{
		MinLat: m.Region.MinLat + float64(row)*latStep,
		MinLon: m.Region.MinLon + float64(col)*lonStep,
		MaxLat: m.Region.MinLat + float64(row+1)*latStep,
		MaxLon: m.Region.MinLon + float64(col)*lonStep + lonStep,
	}
}

// Measure accumulates the coverage of the given FOVs.
func (m *CoverageModel) Measure(fovs []geo.FOV) *CoverageMap {
	cm := &CoverageMap{Model: m, Counts: make([][]int, m.Rows*m.Cols)}
	for i := range cm.Counts {
		cm.Counts[i] = make([]int, m.DirBins)
	}
	for _, f := range fovs {
		cm.Add(f)
	}
	return cm
}

// Add accumulates one FOV into the map.
func (c *CoverageMap) Add(f geo.FOV) {
	m := c.Model
	mbr := f.SceneLocation()
	// Candidate cells: those intersecting the scene MBR.
	for row := 0; row < m.Rows; row++ {
		for col := 0; col < m.Cols; col++ {
			cell := m.CellRect(row, col)
			if !cell.Intersects(mbr) {
				continue
			}
			if !f.IntersectsRect(cell) {
				continue
			}
			bin := 0
			if m.DirBins > 1 {
				bin = int(geo.NormalizeBearing(f.Direction)/360*float64(m.DirBins)) % m.DirBins
			}
			c.Counts[row*m.Cols+col][bin]++
		}
	}
}

// CellCovered reports whether the (row, col) cell meets MinCount in at
// least one direction bin.
func (c *CoverageMap) CellCovered(row, col int) bool {
	for _, n := range c.Counts[row*c.Model.Cols+col] {
		if n >= c.Model.MinCount {
			return true
		}
	}
	return false
}

// Ratio returns the fraction of covered cells in [0, 1].
func (c *CoverageMap) Ratio() float64 {
	covered := 0
	for row := 0; row < c.Model.Rows; row++ {
		for col := 0; col < c.Model.Cols; col++ {
			if c.CellCovered(row, col) {
				covered++
			}
		}
	}
	return float64(covered) / float64(c.Model.Rows*c.Model.Cols)
}

// DirectionalRatio returns the fraction of (cell, direction) pairs that
// meet MinCount — the stricter coverage notion for applications needing
// all-around views.
func (c *CoverageMap) DirectionalRatio() float64 {
	covered, total := 0, 0
	for _, bins := range c.Counts {
		for _, n := range bins {
			total++
			if n >= c.Model.MinCount {
				covered++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(covered) / float64(total)
}

// WeakCells returns the center points of uncovered cells, the targets the
// next campaign round turns into tasks.
func (c *CoverageMap) WeakCells() []geo.Point {
	var out []geo.Point
	for row := 0; row < c.Model.Rows; row++ {
		for col := 0; col < c.Model.Cols; col++ {
			if !c.CellCovered(row, col) {
				out = append(out, c.Model.CellRect(row, col).Center())
			}
		}
	}
	return out
}

// ErrNoFOVs reports an empty measurement input where one is required.
var ErrNoFOVs = errors.New("crowd: no FOVs")

// Redundancy returns the mean pairwise FOV overlap of the set — high
// values mean collection effort is being wasted on near-duplicate views
// (the redundancy concern of paper challenge 2). Sampled at most over
// maxPairs pairs for large sets.
func Redundancy(fovs []geo.FOV, maxPairs int) (float64, error) {
	if len(fovs) < 2 {
		return 0, ErrNoFOVs
	}
	if maxPairs <= 0 {
		maxPairs = 10000
	}
	total, n := 0.0, 0
	for i := 0; i < len(fovs) && n < maxPairs; i++ {
		for j := i + 1; j < len(fovs) && n < maxPairs; j++ {
			total += fovs[i].Overlap(fovs[j])
			n++
		}
	}
	return total / float64(n), nil
}
