package crowd

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/geo"
)

// Campaign is one proactive data-collection effort: achieve the target
// coverage of the region by repeatedly tasking workers at weak cells
// (paper §III, "iterative spatial crowdsourcing ... towards assuring the
// sufficiency of the available data").
type Campaign struct {
	ID     uint64
	Name   string
	Region geo.Rect
	// TargetCoverage in [0, 1] ends the campaign when reached.
	TargetCoverage float64
	// MaxRounds bounds iteration.
	MaxRounds int
	// Strategy selects the assignment algorithm.
	Strategy Strategy
}

// Capture is a simulated task execution: the FOV a worker produced.
type Capture struct {
	TaskID   uint64
	WorkerID string
	FOV      geo.FOV
}

// CaptureFunc executes one assigned task, returning the produced FOV
// captures (the simulation hook; production would await MediaQ uploads).
type CaptureFunc func(task Task, workerID string) []Capture

// RoundReport summarises one campaign iteration.
type RoundReport struct {
	Round         int
	TasksIssued   int
	TasksAssigned int
	Captures      int
	Coverage      float64
	TravelM       float64
}

// Runner drives a campaign to completion.
type Runner struct {
	Campaign Campaign
	Model    *CoverageModel
	Workers  []Worker
	Capture  CaptureFunc
	// Seed drives the random strategy and worker jitter.
	Seed int64

	nextTaskID uint64
	fovs       []geo.FOV
}

// ErrNoWorkers reports a runner with an empty worker pool.
var ErrNoWorkers = errors.New("crowd: no workers")

// NewRunner validates and returns a campaign runner. Existing FOVs (from
// passive collection) seed the coverage map.
func NewRunner(c Campaign, m *CoverageModel, workers []Worker, capture CaptureFunc, existing []geo.FOV, seed int64) (*Runner, error) {
	if m == nil {
		return nil, errors.New("crowd: nil coverage model")
	}
	if len(workers) == 0 {
		return nil, ErrNoWorkers
	}
	if capture == nil {
		return nil, errors.New("crowd: nil capture func")
	}
	if c.TargetCoverage <= 0 || c.TargetCoverage > 1 {
		return nil, fmt.Errorf("crowd: target coverage %.3f out of (0,1]", c.TargetCoverage)
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = 10
	}
	if c.Strategy == "" {
		c.Strategy = StrategyGreedy
	}
	return &Runner{
		Campaign: c, Model: m, Workers: workers, Capture: capture,
		Seed: seed, fovs: append([]geo.FOV(nil), existing...),
	}, nil
}

// FOVs returns all captures accumulated so far (seed + campaign rounds).
func (r *Runner) FOVs() []geo.FOV { return append([]geo.FOV(nil), r.fovs...) }

// Run iterates until the target coverage or MaxRounds, returning one
// report per executed round (plus a round-0 baseline report).
func (r *Runner) Run() ([]RoundReport, error) {
	cm := r.Model.Measure(r.fovs)
	reports := []RoundReport{{Round: 0, Coverage: cm.Ratio()}}
	rng := rand.New(rand.NewSource(r.Seed))
	for round := 1; round <= r.Campaign.MaxRounds; round++ {
		if cm.Ratio() >= r.Campaign.TargetCoverage {
			break
		}
		weak := cm.WeakCells()
		tasks := make([]Task, 0, len(weak))
		for _, p := range weak {
			r.nextTaskID++
			tasks = append(tasks, Task{ID: r.nextTaskID, Location: p, CampaignID: r.Campaign.ID})
		}
		asn, err := Assign(tasks, r.workersThisRound(rng), r.Campaign.Strategy, rng.Int63())
		if err != nil {
			return reports, err
		}
		captures := 0
		for _, t := range tasks {
			wid, ok := asn.TaskWorker[t.ID]
			if !ok {
				continue
			}
			for _, cap := range r.Capture(t, wid) {
				r.fovs = append(r.fovs, cap.FOV)
				cm.Add(cap.FOV)
				captures++
			}
		}
		reports = append(reports, RoundReport{
			Round:         round,
			TasksIssued:   len(tasks),
			TasksAssigned: asn.Assigned(),
			Captures:      captures,
			Coverage:      cm.Ratio(),
			TravelM:       asn.TravelM,
		})
		if captures == 0 {
			// No worker could reach any weak cell; more rounds cannot
			// make progress.
			break
		}
	}
	return reports, nil
}

// workersThisRound re-positions workers with small random drift between
// rounds, simulating urban movement.
func (r *Runner) workersThisRound(rng *rand.Rand) []Worker {
	out := make([]Worker, len(r.Workers))
	for i, w := range r.Workers {
		drift := rng.Float64() * 300
		w.Location = geo.Destination(w.Location, rng.Float64()*360, drift)
		out[i] = w
	}
	return out
}

// DefaultCaptureFunc returns a CaptureFunc that produces `perTask` FOVs
// near the task location with direction spread — the MediaQ-style capture
// simulation.
func DefaultCaptureFunc(perTask int, radiusM float64, seed int64) CaptureFunc {
	if perTask <= 0 {
		perTask = 1
	}
	if radiusM <= 0 {
		radiusM = 80
	}
	rng := rand.New(rand.NewSource(seed))
	return func(task Task, workerID string) []Capture {
		out := make([]Capture, 0, perTask)
		for i := 0; i < perTask; i++ {
			standoff := 10 + rng.Float64()*30
			brg := rng.Float64() * 360
			cam := geo.Destination(task.Location, brg, standoff)
			out = append(out, Capture{
				TaskID:   task.ID,
				WorkerID: workerID,
				FOV: geo.FOV{
					Camera: cam,
					// Face back toward the task location.
					Direction: geo.Bearing(cam, task.Location),
					Angle:     50 + rng.Float64()*30,
					Radius:    radiusM,
				},
			})
		}
		return out
	}
}
