// Package imagesim is TVDP's image substrate: a compact RGB image type,
// RGB↔HSV conversion, drawing primitives used by the synthetic street-scene
// generator, and the augmentation operations (crop, rotate, flip,
// brightness, noise) the paper's data-storage layer applies to derive
// augmented images from originals (paper §IV-B).
//
// The module is offline and stdlib-only, so images are plain pixel buffers
// rather than encoded files; everything downstream (feature extraction,
// CNN training) consumes these buffers directly.
package imagesim

import (
	"errors"
	"fmt"
	"math"
)

// RGB is one 8-bit-per-channel pixel.
type RGB struct {
	R, G, B uint8
}

// Image is a dense row-major RGB raster.
type Image struct {
	W, H int
	Pix  []RGB // len == W*H, row-major
}

// ErrBadDimensions reports a non-positive image size.
var ErrBadDimensions = errors.New("imagesim: width and height must be positive")

// New returns a black image of the given size.
func New(w, h int) (*Image, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("%w: %dx%d", ErrBadDimensions, w, h)
	}
	return &Image{W: w, H: h, Pix: make([]RGB, w*h)}, nil
}

// MustNew is New for statically valid sizes; it panics on error.
func MustNew(w, h int) *Image {
	img, err := New(w, h)
	if err != nil {
		panic(err)
	}
	return img
}

// At returns the pixel at (x, y). Out-of-bounds coordinates are clamped to
// the nearest edge pixel, which gives augmentation ops simple and safe
// border behaviour.
func (m *Image) At(x, y int) RGB {
	if x < 0 {
		x = 0
	} else if x >= m.W {
		x = m.W - 1
	}
	if y < 0 {
		y = 0
	} else if y >= m.H {
		y = m.H - 1
	}
	return m.Pix[y*m.W+x]
}

// Set writes the pixel at (x, y); out-of-bounds writes are ignored.
func (m *Image) Set(x, y int, c RGB) {
	if x < 0 || x >= m.W || y < 0 || y >= m.H {
		return
	}
	m.Pix[y*m.W+x] = c
}

// Clone returns a deep copy of m: the pixel buffer is freshly allocated,
// so mutating the copy never touches the original raster. Cloning a nil
// image yields nil.
func (m *Image) Clone() *Image {
	if m == nil {
		return nil
	}
	out := &Image{W: m.W, H: m.H, Pix: make([]RGB, len(m.Pix))}
	copy(out.Pix, m.Pix)
	return out
}

// Fill sets every pixel to c.
func (m *Image) Fill(c RGB) {
	for i := range m.Pix {
		m.Pix[i] = c
	}
}

// FillRect fills the axis-aligned rectangle [x0,x1)×[y0,y1) with c,
// clipped to the image bounds.
func (m *Image) FillRect(x0, y0, x1, y1 int, c RGB) {
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > m.W {
		x1 = m.W
	}
	if y1 > m.H {
		y1 = m.H
	}
	for y := y0; y < y1; y++ {
		row := m.Pix[y*m.W : y*m.W+m.W]
		for x := x0; x < x1; x++ {
			row[x] = c
		}
	}
}

// FillCircle fills the disc of the given radius centered at (cx, cy).
func (m *Image) FillCircle(cx, cy, r int, c RGB) {
	r2 := r * r
	for y := cy - r; y <= cy+r; y++ {
		for x := cx - r; x <= cx+r; x++ {
			dx, dy := x-cx, y-cy
			if dx*dx+dy*dy <= r2 {
				m.Set(x, y, c)
			}
		}
	}
}

// DrawLine draws a 1-pixel line from (x0,y0) to (x1,y1) (Bresenham).
func (m *Image) DrawLine(x0, y0, x1, y1 int, c RGB) {
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx, sy := 1, 1
	if x0 > x1 {
		sx = -1
	}
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		m.Set(x0, y0, c)
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Gray returns the luminance of a pixel in [0,255].
func (c RGB) Gray() float64 {
	return 0.299*float64(c.R) + 0.587*float64(c.G) + 0.114*float64(c.B)
}

// HSV holds hue in [0,360), saturation and value in [0,1].
type HSV struct {
	H, S, V float64
}

// ToHSV converts an RGB pixel to HSV.
func (c RGB) ToHSV() HSV {
	r := float64(c.R) / 255
	g := float64(c.G) / 255
	b := float64(c.B) / 255
	mx := math.Max(r, math.Max(g, b))
	mn := math.Min(r, math.Min(g, b))
	d := mx - mn
	var h float64
	switch {
	case d == 0:
		h = 0
	case mx == r:
		h = 60 * math.Mod((g-b)/d, 6)
	case mx == g:
		h = 60 * ((b-r)/d + 2)
	default:
		h = 60 * ((r-g)/d + 4)
	}
	if h < 0 {
		h += 360
	}
	s := 0.0
	if mx > 0 {
		s = d / mx
	}
	return HSV{H: h, S: s, V: mx}
}

// ToRGB converts HSV back to RGB (inverse of RGB.ToHSV up to quantisation).
func (h HSV) ToRGB() RGB {
	c := h.V * h.S
	x := c * (1 - math.Abs(math.Mod(h.H/60, 2)-1))
	m := h.V - c
	var r, g, b float64
	switch {
	case h.H < 60:
		r, g, b = c, x, 0
	case h.H < 120:
		r, g, b = x, c, 0
	case h.H < 180:
		r, g, b = 0, c, x
	case h.H < 240:
		r, g, b = 0, x, c
	case h.H < 300:
		r, g, b = x, 0, c
	default:
		r, g, b = c, 0, x
	}
	to8 := func(v float64) uint8 {
		u := math.Round((v + m) * 255)
		if u < 0 {
			u = 0
		}
		if u > 255 {
			u = 255
		}
		return uint8(u)
	}
	return RGB{R: to8(r), G: to8(g), B: to8(b)}
}

// GrayPlane returns the image's luminance as a row-major float64 plane in
// [0,255]; feature extractors operate on this representation.
func (m *Image) GrayPlane() []float64 {
	out := make([]float64, len(m.Pix))
	for i, p := range m.Pix {
		out[i] = p.Gray()
	}
	return out
}

// MeanRGB returns the per-channel mean of the image in [0,255].
func (m *Image) MeanRGB() (r, g, b float64) {
	if len(m.Pix) == 0 {
		return 0, 0, 0
	}
	for _, p := range m.Pix {
		r += float64(p.R)
		g += float64(p.G)
		b += float64(p.B)
	}
	n := float64(len(m.Pix))
	return r / n, g / n, b / n
}

// Resize returns a nearest-neighbour resampling of m to w×h.
func (m *Image) Resize(w, h int) (*Image, error) {
	out, err := New(w, h)
	if err != nil {
		return nil, err
	}
	for y := 0; y < h; y++ {
		sy := y * m.H / h
		for x := 0; x < w; x++ {
			sx := x * m.W / w
			out.Pix[y*w+x] = m.Pix[sy*m.W+sx]
		}
	}
	return out, nil
}
