package imagesim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Augmentation operations. The paper's data model distinguishes "original"
// and "augmented" visual data, with augmented images synthesised by image
// processing such as cropping and rotating (paper §IV-B, footnote 2, citing
// the Python Augmentor library). This file is that library's TVDP-native
// equivalent.

// ErrBadCrop reports an invalid crop window.
var ErrBadCrop = errors.New("imagesim: invalid crop window")

// Crop returns the sub-image [x0,x0+w)×[y0,y0+h).
func Crop(m *Image, x0, y0, w, h int) (*Image, error) {
	if w <= 0 || h <= 0 || x0 < 0 || y0 < 0 || x0+w > m.W || y0+h > m.H {
		return nil, fmt.Errorf("%w: (%d,%d) %dx%d of %dx%d", ErrBadCrop, x0, y0, w, h, m.W, m.H)
	}
	out := MustNew(w, h)
	for y := 0; y < h; y++ {
		copy(out.Pix[y*w:(y+1)*w], m.Pix[(y0+y)*m.W+x0:(y0+y)*m.W+x0+w])
	}
	return out, nil
}

// FlipH returns m mirrored left-right.
func FlipH(m *Image) *Image {
	out := MustNew(m.W, m.H)
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			out.Pix[y*m.W+x] = m.Pix[y*m.W+(m.W-1-x)]
		}
	}
	return out
}

// FlipV returns m mirrored top-bottom.
func FlipV(m *Image) *Image {
	out := MustNew(m.W, m.H)
	for y := 0; y < m.H; y++ {
		copy(out.Pix[y*m.W:(y+1)*m.W], m.Pix[(m.H-1-y)*m.W:(m.H-y)*m.W])
	}
	return out
}

// Rotate returns m rotated by deg degrees counterclockwise about its
// center, same output size, nearest-neighbour sampling with edge clamping.
func Rotate(m *Image, deg float64) *Image {
	out := MustNew(m.W, m.H)
	rad := deg * math.Pi / 180
	sin, cos := math.Sin(rad), math.Cos(rad)
	cx, cy := float64(m.W-1)/2, float64(m.H-1)/2
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			// Inverse mapping: rotate destination back into source space.
			dx, dy := float64(x)-cx, float64(y)-cy
			sx := cos*dx + sin*dy + cx
			sy := -sin*dx + cos*dy + cy
			out.Pix[y*m.W+x] = m.At(int(math.Round(sx)), int(math.Round(sy)))
		}
	}
	return out
}

// AdjustBrightness scales every channel by factor (1 = unchanged), clamping
// to [0,255].
func AdjustBrightness(m *Image, factor float64) *Image {
	out := MustNew(m.W, m.H)
	scale := func(v uint8) uint8 {
		f := float64(v) * factor
		if f < 0 {
			f = 0
		}
		if f > 255 {
			f = 255
		}
		return uint8(math.Round(f))
	}
	for i, p := range m.Pix {
		out.Pix[i] = RGB{R: scale(p.R), G: scale(p.G), B: scale(p.B)}
	}
	return out
}

// AddGaussianNoise adds zero-mean Gaussian noise with the given standard
// deviation (in 0-255 channel units) to every channel.
func AddGaussianNoise(m *Image, stddev float64, rng *rand.Rand) *Image {
	out := MustNew(m.W, m.H)
	jitter := func(v uint8, n float64) uint8 {
		f := float64(v) + n
		if f < 0 {
			f = 0
		}
		if f > 255 {
			f = 255
		}
		return uint8(math.Round(f))
	}
	for i, p := range m.Pix {
		out.Pix[i] = RGB{
			R: jitter(p.R, rng.NormFloat64()*stddev),
			G: jitter(p.G, rng.NormFloat64()*stddev),
			B: jitter(p.B, rng.NormFloat64()*stddev),
		}
	}
	return out
}

// Op identifies one augmentation operation in a pipeline.
type Op int

// Supported augmentation operations.
const (
	OpCrop Op = iota
	OpFlipH
	OpFlipV
	OpRotate
	OpBrightness
	OpNoise
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpCrop:
		return "crop"
	case OpFlipH:
		return "flip_h"
	case OpFlipV:
		return "flip_v"
	case OpRotate:
		return "rotate"
	case OpBrightness:
		return "brightness"
	case OpNoise:
		return "noise"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Augmentor applies a randomised pipeline of augmentation ops, producing
// the "augmented images" rows of the TVDP schema from originals.
type Augmentor struct {
	Ops []Op
	rng *rand.Rand
}

// NewAugmentor returns an Augmentor with the given op set and seed. An
// empty op set defaults to the full pipeline.
func NewAugmentor(seed int64, ops ...Op) *Augmentor {
	if len(ops) == 0 {
		ops = []Op{OpCrop, OpFlipH, OpRotate, OpBrightness, OpNoise}
	}
	return &Augmentor{Ops: ops, rng: rand.New(rand.NewSource(seed))}
}

// Apply produces one augmented variant of m by applying each configured op
// with probability 1/2 and randomised parameters. The result always has
// the same dimensions as the input (crops are re-expanded), so downstream
// feature extractors need no special casing.
func (a *Augmentor) Apply(m *Image) *Image {
	out := m
	for _, op := range a.Ops {
		if a.rng.Float64() < 0.5 {
			continue
		}
		switch op {
		case OpCrop:
			w := m.W * 3 / 4
			h := m.H * 3 / 4
			if w < 1 || h < 1 {
				continue
			}
			x0 := a.rng.Intn(m.W - w + 1)
			y0 := a.rng.Intn(m.H - h + 1)
			c, err := Crop(out, x0, y0, w, h)
			if err != nil {
				continue
			}
			if r, err := c.Resize(m.W, m.H); err == nil {
				out = r
			}
		case OpFlipH:
			out = FlipH(out)
		case OpFlipV:
			out = FlipV(out)
		case OpRotate:
			out = Rotate(out, a.rng.Float64()*30-15)
		case OpBrightness:
			out = AdjustBrightness(out, 0.7+a.rng.Float64()*0.6)
		case OpNoise:
			out = AddGaussianNoise(out, 4+a.rng.Float64()*8, a.rng)
		}
	}
	if out == m {
		out = m.Clone()
	}
	return out
}
