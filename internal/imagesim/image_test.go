package imagesim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 5); err == nil {
		t.Fatal("zero width accepted")
	}
	if _, err := New(5, -1); err == nil {
		t.Fatal("negative height accepted")
	}
	img, err := New(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if img.W != 3 || img.H != 2 || len(img.Pix) != 6 {
		t.Fatalf("bad image: %+v", img)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(0,0) should panic")
		}
	}()
	MustNew(0, 0)
}

func TestAtSetClamping(t *testing.T) {
	img := MustNew(4, 4)
	red := RGB{255, 0, 0}
	img.Set(0, 0, red)
	if img.At(0, 0) != red {
		t.Fatal("round trip failed")
	}
	// Out-of-bounds reads clamp to the edge.
	if img.At(-5, -5) != red {
		t.Fatal("negative read should clamp to (0,0)")
	}
	img.Set(3, 3, RGB{0, 255, 0})
	if img.At(10, 10) != (RGB{0, 255, 0}) {
		t.Fatal("overflow read should clamp to (W-1,H-1)")
	}
	// Out-of-bounds writes are dropped silently.
	img.Set(-1, 0, RGB{1, 1, 1})
	img.Set(0, 99, RGB{1, 1, 1})
	if img.At(0, 0) != red {
		t.Fatal("out-of-bounds write leaked")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := MustNew(2, 2)
	a.Fill(RGB{9, 9, 9})
	b := a.Clone()
	b.Set(0, 0, RGB{1, 2, 3})
	if a.At(0, 0) != (RGB{9, 9, 9}) {
		t.Fatal("clone shares storage with original")
	}
}

func TestFillRectClipping(t *testing.T) {
	img := MustNew(4, 4)
	img.FillRect(-2, -2, 2, 2, RGB{5, 5, 5})
	if img.At(0, 0) != (RGB{5, 5, 5}) || img.At(1, 1) != (RGB{5, 5, 5}) {
		t.Fatal("clipped fill missed interior")
	}
	if img.At(2, 2) != (RGB{}) {
		t.Fatal("fill overflowed")
	}
	img.FillRect(3, 3, 100, 100, RGB{7, 7, 7})
	if img.At(3, 3) != (RGB{7, 7, 7}) {
		t.Fatal("corner fill missed")
	}
}

func TestFillCircle(t *testing.T) {
	img := MustNew(11, 11)
	img.FillCircle(5, 5, 3, RGB{1, 1, 1})
	if img.At(5, 5) != (RGB{1, 1, 1}) || img.At(5, 8) != (RGB{1, 1, 1}) {
		t.Fatal("circle interior missing")
	}
	if img.At(0, 0) != (RGB{}) || img.At(5, 9) != (RGB{}) {
		t.Fatal("circle overflow")
	}
}

func TestDrawLine(t *testing.T) {
	img := MustNew(5, 5)
	img.DrawLine(0, 0, 4, 4, RGB{2, 2, 2})
	for i := 0; i < 5; i++ {
		if img.At(i, i) != (RGB{2, 2, 2}) {
			t.Fatalf("diagonal pixel (%d,%d) not drawn", i, i)
		}
	}
	img2 := MustNew(5, 5)
	img2.DrawLine(4, 2, 0, 2, RGB{3, 3, 3}) // right-to-left horizontal
	for i := 0; i < 5; i++ {
		if img2.At(i, 2) != (RGB{3, 3, 3}) {
			t.Fatalf("horizontal pixel (%d,2) not drawn", i)
		}
	}
}

func TestHSVRoundTrip(t *testing.T) {
	f := func(r, g, b uint8) bool {
		in := RGB{r, g, b}
		out := in.ToHSV().ToRGB()
		// 8-bit quantisation allows +-2 per channel.
		d := func(a, b uint8) int {
			x := int(a) - int(b)
			if x < 0 {
				x = -x
			}
			return x
		}
		return d(in.R, out.R) <= 2 && d(in.G, out.G) <= 2 && d(in.B, out.B) <= 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestHSVKnownColors(t *testing.T) {
	cases := []struct {
		c RGB
		h HSV
	}{
		{RGB{255, 0, 0}, HSV{0, 1, 1}},
		{RGB{0, 255, 0}, HSV{120, 1, 1}},
		{RGB{0, 0, 255}, HSV{240, 1, 1}},
		{RGB{255, 255, 255}, HSV{0, 0, 1}},
		{RGB{0, 0, 0}, HSV{0, 0, 0}},
	}
	for _, c := range cases {
		got := c.c.ToHSV()
		if math.Abs(got.H-c.h.H) > 0.5 || math.Abs(got.S-c.h.S) > 0.01 || math.Abs(got.V-c.h.V) > 0.01 {
			t.Errorf("ToHSV(%v) = %+v, want %+v", c.c, got, c.h)
		}
	}
}

func TestGray(t *testing.T) {
	if g := (RGB{255, 255, 255}).Gray(); math.Abs(g-255) > 0.01 {
		t.Fatalf("white gray = %v", g)
	}
	if g := (RGB{}).Gray(); g != 0 {
		t.Fatalf("black gray = %v", g)
	}
	// Green contributes the most luminance.
	if (RGB{0, 200, 0}).Gray() <= (RGB{200, 0, 0}).Gray() {
		t.Fatal("green should out-weigh red in luminance")
	}
}

func TestGrayPlane(t *testing.T) {
	img := MustNew(2, 1)
	img.Set(0, 0, RGB{255, 255, 255})
	p := img.GrayPlane()
	if len(p) != 2 || math.Abs(p[0]-255) > 0.01 || p[1] != 0 {
		t.Fatalf("gray plane = %v", p)
	}
}

func TestMeanRGB(t *testing.T) {
	img := MustNew(2, 1)
	img.Set(0, 0, RGB{100, 0, 0})
	img.Set(1, 0, RGB{200, 0, 0})
	r, g, b := img.MeanRGB()
	if r != 150 || g != 0 || b != 0 {
		t.Fatalf("mean = %v %v %v", r, g, b)
	}
}

func TestResize(t *testing.T) {
	img := MustNew(4, 4)
	img.FillRect(0, 0, 2, 4, RGB{255, 0, 0})
	img.FillRect(2, 0, 4, 4, RGB{0, 0, 255})
	small, err := img.Resize(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if small.At(0, 0) != (RGB{255, 0, 0}) || small.At(1, 0) != (RGB{0, 0, 255}) {
		t.Fatalf("resize content wrong: %+v", small.Pix)
	}
	if _, err := img.Resize(0, 2); err == nil {
		t.Fatal("zero-size resize accepted")
	}
	big, err := small.Resize(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if big.At(0, 0) != (RGB{255, 0, 0}) || big.At(7, 7) != (RGB{0, 0, 255}) {
		t.Fatal("upscale content wrong")
	}
}

func TestCrop(t *testing.T) {
	img := MustNew(4, 4)
	img.Set(1, 1, RGB{9, 9, 9})
	c, err := Crop(img, 1, 1, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.W != 2 || c.H != 2 || c.At(0, 0) != (RGB{9, 9, 9}) {
		t.Fatalf("crop wrong: %+v", c)
	}
	for _, bad := range [][4]int{{-1, 0, 2, 2}, {0, 0, 5, 2}, {3, 3, 2, 2}, {0, 0, 0, 1}} {
		if _, err := Crop(img, bad[0], bad[1], bad[2], bad[3]); err == nil {
			t.Errorf("bad crop %v accepted", bad)
		}
	}
}

func TestFlipInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	img := MustNew(5, 3)
	for i := range img.Pix {
		img.Pix[i] = RGB{uint8(rng.Intn(256)), uint8(rng.Intn(256)), uint8(rng.Intn(256))}
	}
	hh := FlipH(FlipH(img))
	vv := FlipV(FlipV(img))
	for i := range img.Pix {
		if hh.Pix[i] != img.Pix[i] {
			t.Fatal("FlipH is not an involution")
		}
		if vv.Pix[i] != img.Pix[i] {
			t.Fatal("FlipV is not an involution")
		}
	}
	h := FlipH(img)
	if h.At(0, 0) != img.At(4, 0) {
		t.Fatal("FlipH content wrong")
	}
	v := FlipV(img)
	if v.At(0, 0) != img.At(0, 2) {
		t.Fatal("FlipV content wrong")
	}
}

func TestRotateZeroIsIdentity(t *testing.T) {
	img := MustNew(6, 6)
	img.FillCircle(3, 3, 2, RGB{8, 8, 8})
	r := Rotate(img, 0)
	for i := range img.Pix {
		if r.Pix[i] != img.Pix[i] {
			t.Fatal("Rotate(0) changed image")
		}
	}
}

func TestRotate180TwiceRestoresCenterMass(t *testing.T) {
	img := MustNew(9, 9)
	img.FillRect(1, 1, 4, 4, RGB{200, 0, 0})
	once := Rotate(img, 180)
	// The red block should have moved to the opposite quadrant.
	if once.At(2, 2) == (RGB{200, 0, 0}) {
		t.Fatal("rotation did not move content")
	}
	if once.At(6, 6) != (RGB{200, 0, 0}) {
		t.Fatal("180-degree rotation misplaced content")
	}
	twice := Rotate(once, 180)
	if twice.At(2, 2) != (RGB{200, 0, 0}) {
		t.Fatal("two 180-degree rotations should restore content")
	}
}

func TestAdjustBrightness(t *testing.T) {
	img := MustNew(1, 1)
	img.Set(0, 0, RGB{100, 100, 100})
	if got := AdjustBrightness(img, 2).At(0, 0); got != (RGB{200, 200, 200}) {
		t.Fatalf("2x brightness = %v", got)
	}
	if got := AdjustBrightness(img, 10).At(0, 0); got != (RGB{255, 255, 255}) {
		t.Fatalf("brightness should clamp: %v", got)
	}
	if got := AdjustBrightness(img, 0).At(0, 0); got != (RGB{}) {
		t.Fatalf("zero brightness = %v", got)
	}
}

func TestAddGaussianNoiseBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	img := MustNew(16, 16)
	img.Fill(RGB{128, 128, 128})
	n := AddGaussianNoise(img, 10, rng)
	changed := 0
	for i, p := range n.Pix {
		if p != img.Pix[i] {
			changed++
		}
	}
	if changed < len(img.Pix)/2 {
		t.Fatalf("noise changed only %d/%d pixels", changed, len(img.Pix))
	}
	// Mean should remain close to 128.
	r, _, _ := n.MeanRGB()
	if math.Abs(r-128) > 5 {
		t.Fatalf("noise shifted mean to %v", r)
	}
}

func TestAugmentorPreservesDims(t *testing.T) {
	a := NewAugmentor(42)
	img := MustNew(32, 24)
	img.FillCircle(16, 12, 6, RGB{100, 50, 20})
	for i := 0; i < 20; i++ {
		out := a.Apply(img)
		if out.W != img.W || out.H != img.H {
			t.Fatalf("augmented dims %dx%d, want %dx%d", out.W, out.H, img.W, img.H)
		}
		if out == img {
			t.Fatal("Apply must not return the input aliased")
		}
	}
}

func TestAugmentorDeterministicBySeed(t *testing.T) {
	img := MustNew(16, 16)
	img.FillRect(2, 2, 10, 10, RGB{50, 90, 130})
	a1 := NewAugmentor(7)
	a2 := NewAugmentor(7)
	for i := 0; i < 5; i++ {
		o1, o2 := a1.Apply(img), a2.Apply(img)
		for j := range o1.Pix {
			if o1.Pix[j] != o2.Pix[j] {
				t.Fatal("same seed produced different augmentations")
			}
		}
	}
}

func TestOpString(t *testing.T) {
	names := map[Op]string{
		OpCrop: "crop", OpFlipH: "flip_h", OpFlipV: "flip_v",
		OpRotate: "rotate", OpBrightness: "brightness", OpNoise: "noise",
	}
	for op, want := range names {
		if op.String() != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, op.String(), want)
		}
	}
	if Op(99).String() != "op(99)" {
		t.Errorf("unknown op string = %q", Op(99).String())
	}
}
