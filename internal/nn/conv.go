package nn

import "math/rand"

// Conv2D is a 2-D convolution with square kernels, stride 1, and zero
// padding that preserves spatial size ("same" padding, odd kernel sizes).
// Activations are (C, H, W) volumes flattened channel-major.
type Conv2D struct {
	InC, OutC, K int
	in           Shape
	W            []float64 // OutC x InC x K x K
	B            []float64
	gW, gB       []float64
	vW, vB       []float64
	lastX        []float64
}

// NewConv2D returns a Conv2D layer for inShape inputs. k must be odd.
func NewConv2D(inShape Shape, outC, k int, rng *rand.Rand) *Conv2D {
	if k%2 == 0 {
		panic("nn: Conv2D kernel size must be odd")
	}
	n := outC * inShape.C * k * k
	c := &Conv2D{
		InC: inShape.C, OutC: outC, K: k, in: inShape,
		W: make([]float64, n), B: make([]float64, outC),
		gW: make([]float64, n), gB: make([]float64, outC),
		vW: make([]float64, n), vB: make([]float64, outC),
	}
	fanIn := inShape.C * k * k
	for i := range c.W {
		c.W[i] = xavier(rng, fanIn)
	}
	return c
}

// OutShape implements Layer.
func (c *Conv2D) OutShape(in Shape) Shape {
	return Shape{C: c.OutC, H: in.H, W: in.W}
}

func (c *Conv2D) widx(oc, ic, ky, kx int) int {
	return ((oc*c.InC+ic)*c.K+ky)*c.K + kx
}

// Forward implements Layer.
func (c *Conv2D) Forward(x []float64) []float64 {
	c.lastX = x
	return c.Infer(x)
}

// Infer implements Layer.
func (c *Conv2D) Infer(x []float64) []float64 {
	h, w := c.in.H, c.in.W
	half := c.K / 2
	y := make([]float64, c.OutC*h*w)
	for oc := 0; oc < c.OutC; oc++ {
		for oy := 0; oy < h; oy++ {
			for ox := 0; ox < w; ox++ {
				s := c.B[oc]
				for ic := 0; ic < c.InC; ic++ {
					base := ic * h * w
					for ky := 0; ky < c.K; ky++ {
						iy := oy + ky - half
						if iy < 0 || iy >= h {
							continue
						}
						rowBase := base + iy*w
						wBase := c.widx(oc, ic, ky, 0)
						for kx := 0; kx < c.K; kx++ {
							ix := ox + kx - half
							if ix < 0 || ix >= w {
								continue
							}
							s += c.W[wBase+kx] * x[rowBase+ix]
						}
					}
				}
				y[(oc*h+oy)*w+ox] = s
			}
		}
	}
	return y
}

// Backward implements Layer.
func (c *Conv2D) Backward(gradOut []float64) []float64 {
	h, w := c.in.H, c.in.W
	half := c.K / 2
	gin := make([]float64, c.InC*h*w)
	for oc := 0; oc < c.OutC; oc++ {
		for oy := 0; oy < h; oy++ {
			for ox := 0; ox < w; ox++ {
				g := gradOut[(oc*h+oy)*w+ox]
				if g == 0 {
					continue
				}
				c.gB[oc] += g
				for ic := 0; ic < c.InC; ic++ {
					base := ic * h * w
					for ky := 0; ky < c.K; ky++ {
						iy := oy + ky - half
						if iy < 0 || iy >= h {
							continue
						}
						rowBase := base + iy*w
						wBase := c.widx(oc, ic, ky, 0)
						for kx := 0; kx < c.K; kx++ {
							ix := ox + kx - half
							if ix < 0 || ix >= w {
								continue
							}
							c.gW[wBase+kx] += g * c.lastX[rowBase+ix]
							gin[rowBase+ix] += g * c.W[wBase+kx]
						}
					}
				}
			}
		}
	}
	return gin
}

// Update implements Layer.
func (c *Conv2D) Update(lr, mu, scale float64) {
	sgd(c.W, c.gW, c.vW, lr, mu, scale)
	sgd(c.B, c.gB, c.vB, lr, mu, scale)
}

// shadow implements shadowLayer: aliased weights, owned gradient buffers.
func (c *Conv2D) shadow() Layer {
	return &Conv2D{
		InC: c.InC, OutC: c.OutC, K: c.K, in: c.in, W: c.W, B: c.B,
		gW: make([]float64, len(c.gW)), gB: make([]float64, len(c.gB)),
	}
}

// absorb implements shadowLayer.
func (c *Conv2D) absorb(s Layer) {
	sh := s.(*Conv2D)
	addInto(c.gW, sh.gW)
	addInto(c.gB, sh.gB)
}

// Params implements Layer.
func (c *Conv2D) Params() int { return len(c.W) + len(c.B) }

// FLOPs implements Layer.
func (c *Conv2D) FLOPs() int64 {
	return int64(c.OutC) * int64(c.in.H) * int64(c.in.W) * int64(c.InC) * int64(c.K*c.K)
}

// MaxPool2 is 2x2 max pooling with stride 2. Odd trailing rows/columns are
// dropped (floor semantics).
type MaxPool2 struct {
	in     Shape
	argmax []int
}

// NewMaxPool2 returns a MaxPool2 layer for inShape inputs.
func NewMaxPool2(inShape Shape) *MaxPool2 { return &MaxPool2{in: inShape} }

// OutShape implements Layer.
func (p *MaxPool2) OutShape(in Shape) Shape {
	return Shape{C: in.C, H: in.H / 2, W: in.W / 2}
}

// Forward implements Layer.
func (p *MaxPool2) Forward(x []float64) []float64 {
	y, argmax := p.pool(x)
	p.argmax = argmax
	return y
}

// Infer implements Layer.
func (p *MaxPool2) Infer(x []float64) []float64 {
	y, _ := p.pool(x)
	return y
}

func (p *MaxPool2) pool(x []float64) ([]float64, []int) {
	oh, ow := p.in.H/2, p.in.W/2
	y := make([]float64, p.in.C*oh*ow)
	argmax := make([]int, len(y))
	for c := 0; c < p.in.C; c++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := -1
				bv := 0.0
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						idx := (c*p.in.H+(oy*2+dy))*p.in.W + ox*2 + dx
						if best == -1 || x[idx] > bv {
							best, bv = idx, x[idx]
						}
					}
				}
				out := (c*oh+oy)*ow + ox
				y[out] = bv
				argmax[out] = best
			}
		}
	}
	return y, argmax
}

// shadow implements shadowLayer.
func (p *MaxPool2) shadow() Layer { return NewMaxPool2(p.in) }

// absorb implements shadowLayer (no parameters).
func (p *MaxPool2) absorb(Layer) {}

// Backward implements Layer.
func (p *MaxPool2) Backward(gradOut []float64) []float64 {
	gin := make([]float64, p.in.Size())
	for i, g := range gradOut {
		gin[p.argmax[i]] += g
	}
	return gin
}

// Update implements Layer.
func (p *MaxPool2) Update(lr, mu, scale float64) {}

// Params implements Layer.
func (p *MaxPool2) Params() int { return 0 }

// FLOPs implements Layer.
func (p *MaxPool2) FLOPs() int64 { return 0 }

// GlobalAvgPool averages each channel plane to a single value.
type GlobalAvgPool struct {
	in Shape
}

// NewGlobalAvgPool returns a GlobalAvgPool for inShape inputs.
func NewGlobalAvgPool(inShape Shape) *GlobalAvgPool { return &GlobalAvgPool{in: inShape} }

// OutShape implements Layer.
func (p *GlobalAvgPool) OutShape(in Shape) Shape { return Shape{C: in.C, H: 1, W: 1} }

// Forward implements Layer.
func (p *GlobalAvgPool) Forward(x []float64) []float64 {
	plane := p.in.H * p.in.W
	y := make([]float64, p.in.C)
	for c := 0; c < p.in.C; c++ {
		s := 0.0
		for i := c * plane; i < (c+1)*plane; i++ {
			s += x[i]
		}
		y[c] = s / float64(plane)
	}
	return y
}

// Infer implements Layer (the forward pass is already stateless).
func (p *GlobalAvgPool) Infer(x []float64) []float64 { return p.Forward(x) }

// shadow implements shadowLayer.
func (p *GlobalAvgPool) shadow() Layer { return NewGlobalAvgPool(p.in) }

// absorb implements shadowLayer (no parameters).
func (p *GlobalAvgPool) absorb(Layer) {}

// Backward implements Layer.
func (p *GlobalAvgPool) Backward(gradOut []float64) []float64 {
	plane := p.in.H * p.in.W
	gin := make([]float64, p.in.Size())
	for c := 0; c < p.in.C; c++ {
		g := gradOut[c] / float64(plane)
		for i := c * plane; i < (c+1)*plane; i++ {
			gin[i] = g
		}
	}
	return gin
}

// Update implements Layer.
func (p *GlobalAvgPool) Update(lr, mu, scale float64) {}

// Params implements Layer.
func (p *GlobalAvgPool) Params() int { return 0 }

// FLOPs implements Layer.
func (p *GlobalAvgPool) FLOPs() int64 { return 0 }
