package nn

import (
	"fmt"
	"math/rand"
)

// ModelProfile captures the published complexity characteristics of the
// pretrained architectures the paper transfers onto (MobileNetV1,
// MobileNetV2, InceptionV3). The edge component uses these profiles — not
// full re-implementations of the architectures — because Fig. 8 depends
// only on compute cost (FLOPs), memory footprint, and relative accuracy,
// and those are published constants of each architecture.
type ModelProfile struct {
	Name string
	// MFLOPsAt224 is the multiply-accumulate cost (in millions) of one
	// forward pass at 224x224 input.
	MFLOPsAt224 float64
	// ParamsM is the parameter count in millions.
	ParamsM float64
	// SizeMB is the serialized model size in megabytes (float32 weights).
	SizeMB float64
	// BaseAccuracy is the published ImageNet top-1 accuracy, used as a
	// relative quality prior when the dispatcher trades speed for quality.
	BaseAccuracy float64
	// MinMemoryMB is the working-set memory needed to run inference.
	MinMemoryMB float64
}

// Published profiles of the three architectures evaluated in Fig. 8.
var (
	MobileNetV1 = ModelProfile{
		Name: "MobileNetV1", MFLOPsAt224: 569, ParamsM: 4.2, SizeMB: 16.9,
		BaseAccuracy: 0.709, MinMemoryMB: 80,
	}
	MobileNetV2 = ModelProfile{
		Name: "MobileNetV2", MFLOPsAt224: 300, ParamsM: 3.4, SizeMB: 13.6,
		BaseAccuracy: 0.718, MinMemoryMB: 70,
	}
	InceptionV3 = ModelProfile{
		Name: "InceptionV3", MFLOPsAt224: 5700, ParamsM: 23.8, SizeMB: 95.2,
		BaseAccuracy: 0.779, MinMemoryMB: 300,
	}
)

// Profiles returns the Fig. 8 model set in paper order.
func Profiles() []ModelProfile {
	return []ModelProfile{MobileNetV1, MobileNetV2, InceptionV3}
}

// ProfileByName returns the named profile.
func ProfileByName(name string) (ModelProfile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return ModelProfile{}, fmt.Errorf("nn: unknown model profile %q", name)
}

// FLOPsAt returns the forward-pass cost at a square input of the given
// side, scaling quadratically with resolution as convolutions do.
func (p ModelProfile) FLOPsAt(side int) float64 {
	r := float64(side) / 224
	return p.MFLOPsAt224 * 1e6 * r * r
}

// FeatureNetConfig sizes the small trainable convnet that produces TVDP's
// "CNN features".
type FeatureNetConfig struct {
	In       Shape // input volume, e.g. {3, 32, 32}
	Conv1    int   // channels of first conv block
	Conv2    int   // channels of second conv block
	Hidden   int   // penultimate dense width == CNN feature dimension
	Classes  int
	KernelSz int
	Seed     int64
}

// DefaultFeatureNetConfig returns the configuration used by the Fig. 6/7
// harness: a 2-conv-block network over 32x32 RGB crops with a 64-d
// penultimate feature layer.
func DefaultFeatureNetConfig(classes int) FeatureNetConfig {
	return FeatureNetConfig{
		In:    Shape{C: 3, H: 32, W: 32},
		Conv1: 8, Conv2: 16, Hidden: 64,
		Classes: classes, KernelSz: 3, Seed: 1,
	}
}

// BuildFeatureNet constructs conv→relu→pool→conv→relu→pool→dense→relu→dense.
// FeatureVector(x, 1) on the result yields the post-ReLU penultimate
// activations (the stored CNN feature).
func BuildFeatureNet(cfg FeatureNetConfig) *Network {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := NewNetwork(cfg.In)
	s := cfg.In
	c1 := NewConv2D(s, cfg.Conv1, cfg.KernelSz, rng)
	s = c1.OutShape(s)
	p1 := NewMaxPool2(s)
	s = p1.OutShape(s)
	c2 := NewConv2D(s, cfg.Conv2, cfg.KernelSz, rng)
	s = c2.OutShape(s)
	p2 := NewMaxPool2(s)
	s = p2.OutShape(s)
	d1 := NewDense(s.Size(), cfg.Hidden, rng)
	d2 := NewDense(cfg.Hidden, cfg.Classes, rng)
	return n.Add(c1, NewReLU(), p1, c2, NewReLU(), p2, d1, NewReLU(), d2)
}

// BuildMLP constructs a dense in→hidden→classes classifier head; the edge
// crowd-learning loop retrains these cheap heads over extracted features.
func BuildMLP(in, hidden, classes int, seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	n := NewNetwork(Shape{C: in, H: 1, W: 1})
	return n.Add(
		NewDense(in, hidden, rng), NewReLU(),
		NewDense(hidden, classes, rng),
	)
}
