// Package nn is TVDP's from-scratch neural-network engine. It provides the
// small convolutional networks the platform fine-tunes for "CNN features"
// (paper §IV-A, §VII-A: Caffe transfer learning) and the model-complexity
// profiles (MobileNetV1/V2, InceptionV3) the edge component dispatches to
// heterogeneous devices (paper §VI, Fig. 8).
//
// The engine is intentionally compact: dense/conv/pool layers over float64
// tensors, ReLU, softmax cross-entropy, and minibatch SGD with momentum.
// It trains genuinely (loss decreases, weights update) at the laptop scales
// used by the reproduction harness.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/vecmath"
)

// Shape describes a (channels, height, width) activation volume. Dense
// vectors use Shape{C: n, H: 1, W: 1}.
type Shape struct {
	C, H, W int
}

// Size returns the number of elements in the volume.
func (s Shape) Size() int { return s.C * s.H * s.W }

// String implements fmt.Stringer.
func (s Shape) String() string { return fmt.Sprintf("%dx%dx%d", s.C, s.H, s.W) }

// Layer is one differentiable stage of a network.
type Layer interface {
	// OutShape returns the output volume shape for the given input shape.
	OutShape(in Shape) Shape
	// Forward computes the layer output for x (length in.Size()). The
	// layer may retain x and intermediate state for the next Backward.
	Forward(x []float64) []float64
	// Infer computes the layer output for x without retaining any state.
	// It is safe for concurrent use while no Update is in flight, which is
	// what lets feature extraction fan out across a worker pool.
	Infer(x []float64) []float64
	// Backward consumes the gradient w.r.t. the layer output, accumulates
	// parameter gradients, and returns the gradient w.r.t. the input.
	Backward(gradOut []float64) []float64
	// Update applies accumulated gradients with learning rate lr and
	// momentum mu, then clears them. scale divides gradients (batch size).
	Update(lr, mu, scale float64)
	// Params returns the number of learnable parameters.
	Params() int
	// FLOPs returns the multiply-accumulate cost of one forward pass.
	FLOPs() int64
}

// shadowLayer is implemented by layers that support data-parallel training.
// A shadow shares the primary's weights (read-only during a batch) but owns
// its gradient accumulators and activation scratch, so several shadows can
// run Forward/Backward concurrently over disjoint batch shards.
type shadowLayer interface {
	Layer
	// shadow returns the shard-local replica of this layer.
	shadow() Layer
	// absorb adds the gradient accumulators of s (a layer previously
	// returned by shadow) into the receiver's and zeroes s's. Absorbing
	// shadows in shard index order keeps gradient sums bit-deterministic.
	absorb(s Layer)
}

// xavier returns a weight initialisation scale for fanIn inputs.
func xavier(rng *rand.Rand, fanIn int) float64 {
	return rng.NormFloat64() * math.Sqrt(2.0/float64(fanIn))
}

// Dense is a fully connected layer: y = Wx + b.
type Dense struct {
	In, Out int
	W       []float64 // Out x In, row-major
	B       []float64
	gW, gB  []float64
	vW, vB  []float64 // momentum velocities
	lastX   []float64
}

// NewDense returns a Dense layer with Xavier-initialised weights.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{
		In: in, Out: out,
		W: make([]float64, in*out), B: make([]float64, out),
		gW: make([]float64, in*out), gB: make([]float64, out),
		vW: make([]float64, in*out), vB: make([]float64, out),
	}
	for i := range d.W {
		d.W[i] = xavier(rng, in)
	}
	return d
}

// OutShape implements Layer.
func (d *Dense) OutShape(Shape) Shape { return Shape{C: d.Out, H: 1, W: 1} }

// Forward implements Layer.
func (d *Dense) Forward(x []float64) []float64 {
	d.lastX = x
	return d.Infer(x)
}

// Infer implements Layer.
func (d *Dense) Infer(x []float64) []float64 {
	y := make([]float64, d.Out)
	for o := 0; o < d.Out; o++ {
		row := d.W[o*d.In : (o+1)*d.In]
		y[o] = d.B[o] + vecmath.Dot(row, x)
	}
	return y
}

// shadow implements shadowLayer: the replica aliases W and B (read-only
// during a batch) and owns fresh gradient buffers; momentum state stays on
// the primary because Update only ever runs there.
func (d *Dense) shadow() Layer {
	return &Dense{
		In: d.In, Out: d.Out, W: d.W, B: d.B,
		gW: make([]float64, len(d.gW)), gB: make([]float64, len(d.gB)),
	}
}

// absorb implements shadowLayer.
func (d *Dense) absorb(s Layer) {
	sh := s.(*Dense)
	addInto(d.gW, sh.gW)
	addInto(d.gB, sh.gB)
}

// addInto adds src into dst elementwise and zeroes src.
func addInto(dst, src []float64) {
	for i, v := range src {
		dst[i] += v
		src[i] = 0
	}
}

// Backward implements Layer.
func (d *Dense) Backward(gradOut []float64) []float64 {
	gin := make([]float64, d.In)
	for o := 0; o < d.Out; o++ {
		g := gradOut[o]
		d.gB[o] += g
		row := d.W[o*d.In : (o+1)*d.In]
		grow := d.gW[o*d.In : (o+1)*d.In]
		for i := 0; i < d.In; i++ {
			grow[i] += g * d.lastX[i]
			gin[i] += g * row[i]
		}
	}
	return gin
}

// Update implements Layer.
func (d *Dense) Update(lr, mu, scale float64) {
	sgd(d.W, d.gW, d.vW, lr, mu, scale)
	sgd(d.B, d.gB, d.vB, lr, mu, scale)
}

// Params implements Layer.
func (d *Dense) Params() int { return len(d.W) + len(d.B) }

// FLOPs implements Layer.
func (d *Dense) FLOPs() int64 { return int64(d.In) * int64(d.Out) }

func sgd(w, g, v []float64, lr, mu, scale float64) {
	for i := range w {
		v[i] = mu*v[i] - lr*g[i]/scale
		w[i] += v[i]
		g[i] = 0
	}
}

// ReLU applies max(0, x) elementwise.
type ReLU struct {
	mask []bool
}

// NewReLU returns a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// OutShape implements Layer.
func (r *ReLU) OutShape(in Shape) Shape { return in }

// Forward implements Layer.
func (r *ReLU) Forward(x []float64) []float64 {
	y := make([]float64, len(x))
	if cap(r.mask) < len(x) {
		r.mask = make([]bool, len(x))
	}
	r.mask = r.mask[:len(x)]
	for i, v := range x {
		if v > 0 {
			y[i] = v
			r.mask[i] = true
		} else {
			r.mask[i] = false
		}
	}
	return y
}

// Infer implements Layer.
func (r *ReLU) Infer(x []float64) []float64 {
	y := make([]float64, len(x))
	for i, v := range x {
		if v > 0 {
			y[i] = v
		}
	}
	return y
}

// shadow implements shadowLayer.
func (r *ReLU) shadow() Layer { return NewReLU() }

// absorb implements shadowLayer (no parameters).
func (r *ReLU) absorb(Layer) {}

// Backward implements Layer.
func (r *ReLU) Backward(gradOut []float64) []float64 {
	gin := make([]float64, len(gradOut))
	for i, g := range gradOut {
		if r.mask[i] {
			gin[i] = g
		}
	}
	return gin
}

// Update implements Layer.
func (r *ReLU) Update(lr, mu, scale float64) {}

// Params implements Layer.
func (r *ReLU) Params() int { return 0 }

// FLOPs implements Layer.
func (r *ReLU) FLOPs() int64 { return 0 }
