package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestDenseForwardKnown(t *testing.T) {
	d := NewDense(2, 2, rand.New(rand.NewSource(1)))
	d.W = []float64{1, 2, 3, 4} // row-major: out0=[1,2], out1=[3,4]
	d.B = []float64{0.5, -0.5}
	y := d.Forward([]float64{1, 1})
	if math.Abs(y[0]-3.5) > 1e-12 || math.Abs(y[1]-6.5) > 1e-12 {
		t.Fatalf("dense forward = %v", y)
	}
}

// numericGrad checks dLoss/dx via central differences where loss = sum(y).
func numericGrad(layer Layer, x []float64, i int) float64 {
	const eps = 1e-6
	xp := append([]float64(nil), x...)
	xp[i] += eps
	yp := layer.Forward(xp)
	sp := 0.0
	for _, v := range yp {
		sp += v
	}
	xm := append([]float64(nil), x...)
	xm[i] -= eps
	ym := layer.Forward(xm)
	sm := 0.0
	for _, v := range ym {
		sm += v
	}
	return (sp - sm) / (2 * eps)
}

func TestDenseBackwardMatchesNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := NewDense(4, 3, rng)
	x := []float64{0.3, -0.7, 1.2, 0.1}
	y := d.Forward(x)
	grad := make([]float64, len(y))
	for i := range grad {
		grad[i] = 1 // loss = sum(y)
	}
	gin := d.Backward(grad)
	for i := range x {
		want := numericGrad(d, x, i)
		if math.Abs(gin[i]-want) > 1e-5 {
			t.Fatalf("dense input grad[%d] = %v, numeric %v", i, gin[i], want)
		}
	}
}

func TestConvBackwardMatchesNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := Shape{C: 2, H: 4, W: 4}
	c := NewConv2D(in, 3, 3, rng)
	x := make([]float64, in.Size())
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := c.Forward(x)
	grad := make([]float64, len(y))
	for i := range grad {
		grad[i] = 1
	}
	gin := c.Backward(grad)
	for _, i := range []int{0, 5, 13, 21, 31} {
		want := numericGrad(c, x, i)
		if math.Abs(gin[i]-want) > 1e-5 {
			t.Fatalf("conv input grad[%d] = %v, numeric %v", i, gin[i], want)
		}
	}
}

func TestConvOutShapeAndFLOPs(t *testing.T) {
	in := Shape{C: 3, H: 8, W: 8}
	c := NewConv2D(in, 4, 3, rand.New(rand.NewSource(1)))
	if got := c.OutShape(in); got != (Shape{4, 8, 8}) {
		t.Fatalf("OutShape = %v", got)
	}
	wantFLOPs := int64(4 * 8 * 8 * 3 * 9)
	if c.FLOPs() != wantFLOPs {
		t.Fatalf("FLOPs = %d, want %d", c.FLOPs(), wantFLOPs)
	}
	if c.Params() != 4*3*9+4 {
		t.Fatalf("Params = %d", c.Params())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("even kernel should panic")
		}
	}()
	NewConv2D(in, 4, 2, rand.New(rand.NewSource(1)))
}

func TestReLU(t *testing.T) {
	r := NewReLU()
	y := r.Forward([]float64{-1, 0, 2})
	if y[0] != 0 || y[1] != 0 || y[2] != 2 {
		t.Fatalf("relu forward = %v", y)
	}
	g := r.Backward([]float64{5, 5, 5})
	if g[0] != 0 || g[1] != 0 || g[2] != 5 {
		t.Fatalf("relu backward = %v", g)
	}
}

func TestMaxPool(t *testing.T) {
	in := Shape{C: 1, H: 4, W: 4}
	p := NewMaxPool2(in)
	x := []float64{
		1, 2, 0, 0,
		3, 4, 0, 9,
		0, 0, 5, 6,
		0, 0, 7, 8,
	}
	y := p.Forward(x)
	want := []float64{4, 9, 0, 8}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("pool out = %v, want %v", y, want)
		}
	}
	g := p.Backward([]float64{1, 1, 1, 1})
	// Gradient flows only to argmax positions.
	if g[5] != 1 || g[7] != 1 || g[8] != 1 || g[15] != 1 {
		t.Fatalf("pool grad = %v", g)
	}
	sum := 0.0
	for _, v := range g {
		sum += v
	}
	if sum != 4 {
		t.Fatalf("pool grad mass = %v, want 4", sum)
	}
}

func TestGlobalAvgPool(t *testing.T) {
	in := Shape{C: 2, H: 2, W: 2}
	p := NewGlobalAvgPool(in)
	y := p.Forward([]float64{1, 2, 3, 4, 10, 10, 10, 10})
	if y[0] != 2.5 || y[1] != 10 {
		t.Fatalf("gap = %v", y)
	}
	g := p.Backward([]float64{4, 8})
	for i := 0; i < 4; i++ {
		if g[i] != 1 {
			t.Fatalf("gap grad = %v", g)
		}
	}
	for i := 4; i < 8; i++ {
		if g[i] != 2 {
			t.Fatalf("gap grad = %v", g)
		}
	}
}

func TestSoftmax(t *testing.T) {
	p := Softmax([]float64{1, 1, 1})
	for _, v := range p {
		if math.Abs(v-1.0/3) > 1e-12 {
			t.Fatalf("uniform softmax = %v", p)
		}
	}
	// Stability under large logits.
	p = Softmax([]float64{1000, 1001})
	if math.IsNaN(p[0]) || p[1] < p[0] {
		t.Fatalf("large-logit softmax = %v", p)
	}
	sum := p[0] + p[1]
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("softmax sum = %v", sum)
	}
}

func TestNetworkShapesAndErrors(t *testing.T) {
	n := BuildMLP(4, 8, 3, 1)
	if got := n.OutShape(); got != (Shape{3, 1, 1}) {
		t.Fatalf("OutShape = %v", got)
	}
	if n.Params() != 4*8+8+8*3+3 {
		t.Fatalf("Params = %d", n.Params())
	}
	if _, err := n.Forward([]float64{1, 2}); err == nil {
		t.Fatal("wrong input length accepted")
	}
	if _, err := n.FeatureVector([]float64{1, 2, 3, 4}, 99); err == nil {
		t.Fatal("bad skip accepted")
	}
	fv, err := n.FeatureVector([]float64{1, 2, 3, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(fv) != 8 {
		t.Fatalf("feature dim = %d, want 8", len(fv))
	}
}

// xorData builds the classic non-linearly-separable dataset.
func xorData() ([][]float64, []int) {
	xs := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	ys := []int{0, 1, 1, 0}
	var X [][]float64
	var Y []int
	for rep := 0; rep < 25; rep++ {
		for i := range xs {
			X = append(X, xs[i])
			Y = append(Y, ys[i])
		}
	}
	return X, Y
}

func TestTrainLearnsXOR(t *testing.T) {
	n := BuildMLP(2, 8, 2, 42)
	X, Y := xorData()
	cfg := TrainConfig{Epochs: 200, BatchSize: 8, LR: 0.1, Momentum: 0.9, Seed: 3}
	loss, err := n.Train(X, Y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if loss > 0.2 {
		t.Fatalf("final XOR loss = %v, want < 0.2", loss)
	}
	acc, err := n.Accuracy(X, Y)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.99 {
		t.Fatalf("XOR accuracy = %v, want ~1", acc)
	}
}

func TestTrainLossDecreases(t *testing.T) {
	n := BuildMLP(2, 8, 2, 5)
	X, Y := xorData()
	var losses []float64
	cfg := TrainConfig{Epochs: 50, BatchSize: 8, LR: 0.1, Momentum: 0.9, Seed: 4,
		Verbose: func(epoch int, loss float64) { losses = append(losses, loss) }}
	if _, err := n.Train(X, Y, cfg); err != nil {
		t.Fatal(err)
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("loss did not decrease: first %v last %v", losses[0], losses[len(losses)-1])
	}
}

func TestTrainValidation(t *testing.T) {
	n := BuildMLP(2, 4, 2, 1)
	if _, err := n.Train(nil, nil, DefaultTrainConfig()); err == nil {
		t.Fatal("empty training set accepted")
	}
	if _, err := n.Train([][]float64{{1, 2}}, []int{5}, DefaultTrainConfig()); err == nil {
		t.Fatal("out-of-range label accepted")
	}
	if _, err := n.Train([][]float64{{1, 2}}, []int{0, 1}, DefaultTrainConfig()); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := n.Train([][]float64{{1}}, []int{0}, DefaultTrainConfig()); err == nil {
		t.Fatal("wrong sample width accepted")
	}
}

func TestFeatureNetTrainsOnToyImages(t *testing.T) {
	cfg := FeatureNetConfig{
		In: Shape{C: 1, H: 8, W: 8}, Conv1: 4, Conv2: 4, Hidden: 16,
		Classes: 2, KernelSz: 3, Seed: 9,
	}
	net := BuildFeatureNet(cfg)
	// Class 0: bright top half; class 1: bright bottom half.
	rng := rand.New(rand.NewSource(10))
	var X [][]float64
	var Y []int
	for i := 0; i < 60; i++ {
		img := make([]float64, 64)
		cls := i % 2
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				v := rng.Float64() * 0.2
				if (cls == 0 && y < 4) || (cls == 1 && y >= 4) {
					v += 0.8
				}
				img[y*8+x] = v
			}
		}
		X = append(X, img)
		Y = append(Y, cls)
	}
	_, err := net.Train(X, Y, TrainConfig{Epochs: 15, BatchSize: 8, LR: 0.05, Momentum: 0.9, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := net.Accuracy(X, Y)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Fatalf("feature net accuracy = %v, want >= 0.9", acc)
	}
	fv, err := net.FeatureVector(X[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(fv) != 16 {
		t.Fatalf("feature dim = %d, want 16", len(fv))
	}
}

func TestModelProfiles(t *testing.T) {
	ps := Profiles()
	if len(ps) != 3 {
		t.Fatalf("profiles = %d, want 3", len(ps))
	}
	if InceptionV3.MFLOPsAt224 <= MobileNetV1.MFLOPsAt224 {
		t.Fatal("InceptionV3 must be heavier than MobileNetV1")
	}
	if MobileNetV2.MFLOPsAt224 >= MobileNetV1.MFLOPsAt224 {
		t.Fatal("MobileNetV2 must be lighter than MobileNetV1")
	}
	// FLOPs scale quadratically with resolution.
	f224 := MobileNetV1.FLOPsAt(224)
	f112 := MobileNetV1.FLOPsAt(112)
	if math.Abs(f224/f112-4) > 1e-9 {
		t.Fatalf("FLOPs scaling = %v, want 4", f224/f112)
	}
	if _, err := ProfileByName("MobileNetV2"); err != nil {
		t.Fatal(err)
	}
	if _, err := ProfileByName("ResNet50"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestShapeString(t *testing.T) {
	if s := (Shape{3, 32, 32}).String(); s != "3x32x32" {
		t.Fatalf("shape string = %q", s)
	}
	if (Shape{3, 32, 32}).Size() != 3072 {
		t.Fatal("shape size wrong")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	cfg := FeatureNetConfig{
		In: Shape{C: 1, H: 8, W: 8}, Conv1: 2, Conv2: 2, Hidden: 8,
		Classes: 3, KernelSz: 3, Seed: 21,
	}
	n := BuildFeatureNet(cfg)
	x := make([]float64, 64)
	for i := range x {
		x[i] = float64(i%7) / 7
	}
	want, err := n.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	data, err := Marshal(n)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("round-trip output differs at %d: %v vs %v", i, got[i], want[i])
		}
	}
	if back.Params() != n.Params() {
		t.Fatalf("param counts differ: %d vs %d", back.Params(), n.Params())
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte("not gob")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestUnmarshaledNetworkIsTrainable(t *testing.T) {
	// A downloaded model must support further fine-tuning on-device
	// (gradient buffers are reconstructed by Unmarshal).
	n := BuildMLP(2, 8, 2, 31)
	X, Y := xorData()
	if _, err := n.Train(X, Y, TrainConfig{Epochs: 30, BatchSize: 8, LR: 0.1, Momentum: 0.9, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	data, err := Marshal(n)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := back.Train(X, Y, TrainConfig{Epochs: 100, BatchSize: 8, LR: 0.1, Momentum: 0.9, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	acc, err := back.Accuracy(X, Y)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Fatalf("resumed training accuracy = %v", acc)
	}
}
