package nn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/par"
)

// Network is a feed-forward stack of layers trained with softmax
// cross-entropy and minibatch SGD.
type Network struct {
	In     Shape
	Layers []Layer
}

// ErrShapeMismatch reports an input of the wrong length.
var ErrShapeMismatch = errors.New("nn: input length does not match network input shape")

// NewNetwork returns an empty network accepting inputs of shape in.
func NewNetwork(in Shape) *Network { return &Network{In: in} }

// Add appends layers to the network and returns it for chaining.
func (n *Network) Add(layers ...Layer) *Network {
	n.Layers = append(n.Layers, layers...)
	return n
}

// OutShape returns the network's output shape.
func (n *Network) OutShape() Shape {
	s := n.In
	for _, l := range n.Layers {
		s = l.OutShape(s)
	}
	return s
}

// Params returns the total number of learnable parameters.
func (n *Network) Params() int {
	total := 0
	for _, l := range n.Layers {
		total += l.Params()
	}
	return total
}

// FLOPs returns the multiply-accumulate cost of one forward pass.
func (n *Network) FLOPs() int64 {
	var total int64
	for _, l := range n.Layers {
		total += l.FLOPs()
	}
	return total
}

// Forward runs the full network and returns the final activations (logits).
// It retains per-layer state for a subsequent Backward, so it must not be
// called concurrently; inference paths should use Infer instead.
func (n *Network) Forward(x []float64) ([]float64, error) {
	if len(x) != n.In.Size() {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrShapeMismatch, len(x), n.In.Size())
	}
	a := x
	for _, l := range n.Layers {
		a = l.Forward(a)
	}
	return a, nil
}

// Infer runs a stateless forward pass and returns the final activations.
// It is safe for concurrent use while no training step is in flight, which
// lets batch feature extraction fan out over the par worker pool.
func (n *Network) Infer(x []float64) ([]float64, error) {
	if len(x) != n.In.Size() {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrShapeMismatch, len(x), n.In.Size())
	}
	a := x
	for _, l := range n.Layers {
		a = l.Infer(a)
	}
	return a, nil
}

// FeatureVector runs the network through all but the last `skip` layers and
// returns the penultimate activations — the "CNN feature" representation
// the platform stores per image (paper §IV-A). The pass is stateless and
// safe for concurrent use.
func (n *Network) FeatureVector(x []float64, skip int) ([]float64, error) {
	if len(x) != n.In.Size() {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrShapeMismatch, len(x), n.In.Size())
	}
	if skip < 0 || skip > len(n.Layers) {
		return nil, fmt.Errorf("nn: skip %d out of range [0,%d]", skip, len(n.Layers))
	}
	a := x
	for _, l := range n.Layers[:len(n.Layers)-skip] {
		a = l.Infer(a)
	}
	out := make([]float64, len(a))
	copy(out, a)
	return out, nil
}

// Softmax returns the softmax of logits (numerically stable).
func Softmax(logits []float64) []float64 {
	mx := math.Inf(-1)
	for _, v := range logits {
		if v > mx {
			mx = v
		}
	}
	out := make([]float64, len(logits))
	sum := 0.0
	for i, v := range logits {
		e := math.Exp(v - mx)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// Predict returns the argmax class and its softmax probability. It uses
// the stateless inference path and is safe for concurrent use.
func (n *Network) Predict(x []float64) (class int, prob float64, err error) {
	logits, err := n.Infer(x)
	if err != nil {
		return 0, 0, err
	}
	p := Softmax(logits)
	best := 0
	for i := range p {
		if p[i] > p[best] {
			best = i
		}
	}
	return best, p[best], nil
}

// TrainConfig controls SGD training.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	Momentum  float64
	Seed      int64
	// Verbose receives one line per epoch when non-nil.
	Verbose func(epoch int, loss float64)
	// Stop, when non-nil, is polled between minibatches; a non-nil return
	// aborts training with that error. A context-aware caller passes
	// ctx.Err, making training cancellable without the package depending
	// on context (and without storing a context in a struct). Completed
	// minibatches are never torn: the abort happens only on batch
	// boundaries, after the optimiser update.
	Stop func() error
}

// DefaultTrainConfig returns sensible small-scale defaults.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 10, BatchSize: 16, LR: 0.05, Momentum: 0.9, Seed: 1}
}

// trainShardGrain is the number of batch items per gradient shard. It is a
// fixed constant — never derived from the worker count — so the order of
// gradient additions, and therefore every trained weight, is bit-identical
// no matter how many workers par schedules.
const trainShardGrain = 4

// gradShards holds one shadow replica of the network's layers per batch
// shard. Replicas alias the primary's weights but own gradient accumulators
// and activation scratch, so shards backpropagate concurrently.
type gradShards struct {
	replicas [][]Layer
	loss     []float64
}

// newGradShards builds replicas for up to maxShards concurrent shards, or
// returns nil if any layer does not support shadowing (serial fallback).
func newGradShards(layers []Layer, maxShards int) *gradShards {
	g := &gradShards{replicas: make([][]Layer, maxShards), loss: make([]float64, maxShards)}
	for s := range g.replicas {
		rep := make([]Layer, len(layers))
		for i, l := range layers {
			sl, ok := l.(shadowLayer)
			if !ok {
				return nil
			}
			rep[i] = sl.shadow()
		}
		g.replicas[s] = rep
	}
	return g
}

// Train fits the network to (xs, ys) with softmax cross-entropy and returns
// the final mean epoch loss. Within each minibatch, forward/backward passes
// fan out over the par worker pool in fixed-grain shards whose gradients
// are reduced in shard order, so the fitted weights are bit-identical for
// any worker count (including one).
func (n *Network) Train(xs [][]float64, ys []int, cfg TrainConfig) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("nn: empty training set")
	}
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("nn: %d inputs but %d labels", len(xs), len(ys))
	}
	classes := n.OutShape().Size()
	for i, y := range ys {
		if y < 0 || y >= classes {
			return 0, fmt.Errorf("nn: label %d of sample %d out of range [0,%d)", y, i, classes)
		}
		if len(xs[i]) != n.In.Size() {
			return 0, fmt.Errorf("%w: sample %d has %d values, want %d", ErrShapeMismatch, i, len(xs[i]), n.In.Size())
		}
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	shards := newGradShards(n.Layers, par.NumShards(cfg.BatchSize, trainShardGrain))
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := make([]int, len(xs))
	for i := range order {
		order[i] = i
	}
	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		epochLoss := 0.0
		for start := 0; start < len(order); start += cfg.BatchSize {
			if cfg.Stop != nil {
				if err := cfg.Stop(); err != nil {
					return lastLoss, err
				}
			}
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			batch := order[start:end]
			if shards != nil {
				epochLoss += n.batchStep(shards, xs, ys, batch)
			} else {
				// Serial fallback for networks with non-shadowable layers.
				for _, idx := range batch {
					epochLoss += n.sampleStep(n.Layers, xs[idx], ys[idx])
				}
			}
			for _, l := range n.Layers {
				l.Update(cfg.LR, cfg.Momentum, float64(len(batch)))
			}
		}
		lastLoss = epochLoss / float64(len(xs))
		if cfg.Verbose != nil {
			cfg.Verbose(epoch, lastLoss)
		}
	}
	return lastLoss, nil
}

// sampleStep runs one forward/backward pass through the given layer stack,
// accumulating gradients in it, and returns the sample's loss.
func (n *Network) sampleStep(layers []Layer, x []float64, y int) float64 {
	a := x
	for _, l := range layers {
		a = l.Forward(a)
	}
	p := Softmax(a)
	loss := -math.Log(math.Max(p[y], 1e-12))
	// Gradient of softmax cross-entropy w.r.t. logits.
	grad := make([]float64, len(p))
	copy(grad, p)
	grad[y] -= 1
	for i := len(layers) - 1; i >= 0; i-- {
		grad = layers[i].Backward(grad)
	}
	return loss
}

// batchStep fans the minibatch out over fixed-grain shards, each owning a
// shadow replica, then absorbs shard gradients into the primary layers in
// shard index order (the deterministic reduction) and returns the batch
// loss, summed in the same order.
func (n *Network) batchStep(shards *gradShards, xs [][]float64, ys []int, batch []int) float64 {
	count := par.NumShards(len(batch), trainShardGrain)
	par.ForShards(len(batch), trainShardGrain, func(s, lo, hi int) {
		rep := shards.replicas[s]
		loss := 0.0
		for _, idx := range batch[lo:hi] {
			loss += n.sampleStep(rep, xs[idx], ys[idx])
		}
		shards.loss[s] = loss
	})
	total := 0.0
	for s := 0; s < count; s++ {
		for i, l := range n.Layers {
			l.(shadowLayer).absorb(shards.replicas[s][i])
		}
		total += shards.loss[s]
	}
	return total
}

// Accuracy returns the fraction of samples whose argmax prediction matches.
// Predictions fan out over the par worker pool.
func (n *Network) Accuracy(xs [][]float64, ys []int) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("nn: empty evaluation set")
	}
	hits, err := par.Map(len(xs), func(i int) (bool, error) {
		c, _, err := n.Predict(xs[i])
		return c == ys[i], err
	})
	if err != nil {
		return 0, err
	}
	correct := 0
	for _, h := range hits {
		if h {
			correct++
		}
	}
	return float64(correct) / float64(len(xs)), nil
}
