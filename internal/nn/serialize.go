package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Serialization: networks are exported as an explicit layer-spec list so
// edge devices can download models ("Download machine learning models",
// paper §V) and run them locally. The format captures architecture and
// weights; optimiser state (momentum) is not persisted.

// layerSpec is the gob-encodable description of one layer.
type layerSpec struct {
	Kind string
	// Dense / Conv2D payloads.
	In, Out, K int
	InShape    Shape
	W, B       []float64
}

type networkSpec struct {
	In     Shape
	Layers []layerSpec
}

// Marshal serialises the network (architecture + weights).
func Marshal(n *Network) ([]byte, error) {
	spec := networkSpec{In: n.In}
	shape := n.In
	for i, l := range n.Layers {
		var ls layerSpec
		switch v := l.(type) {
		case *Dense:
			ls = layerSpec{Kind: "dense", In: v.In, Out: v.Out,
				W: append([]float64(nil), v.W...), B: append([]float64(nil), v.B...)}
		case *Conv2D:
			ls = layerSpec{Kind: "conv2d", In: v.InC, Out: v.OutC, K: v.K, InShape: v.in,
				W: append([]float64(nil), v.W...), B: append([]float64(nil), v.B...)}
		case *ReLU:
			ls = layerSpec{Kind: "relu"}
		case *MaxPool2:
			ls = layerSpec{Kind: "maxpool2", InShape: v.in}
		case *GlobalAvgPool:
			ls = layerSpec{Kind: "gap", InShape: v.in}
		default:
			return nil, fmt.Errorf("nn: cannot marshal layer %d (%T)", i, l)
		}
		spec.Layers = append(spec.Layers, ls)
		shape = l.OutShape(shape)
	}
	_ = shape
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(spec); err != nil {
		return nil, fmt.Errorf("nn: encoding network: %w", err)
	}
	return buf.Bytes(), nil
}

// Unmarshal reconstructs a network serialised by Marshal.
func Unmarshal(data []byte) (*Network, error) {
	var spec networkSpec
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&spec); err != nil {
		return nil, fmt.Errorf("nn: decoding network: %w", err)
	}
	n := NewNetwork(spec.In)
	for i, ls := range spec.Layers {
		switch ls.Kind {
		case "dense":
			if len(ls.W) != ls.In*ls.Out || len(ls.B) != ls.Out {
				return nil, fmt.Errorf("nn: dense layer %d weight shape mismatch", i)
			}
			d := &Dense{
				In: ls.In, Out: ls.Out,
				W: append([]float64(nil), ls.W...), B: append([]float64(nil), ls.B...),
				gW: make([]float64, ls.In*ls.Out), gB: make([]float64, ls.Out),
				vW: make([]float64, ls.In*ls.Out), vB: make([]float64, ls.Out),
			}
			n.Add(d)
		case "conv2d":
			want := ls.Out * ls.In * ls.K * ls.K
			if len(ls.W) != want || len(ls.B) != ls.Out {
				return nil, fmt.Errorf("nn: conv layer %d weight shape mismatch", i)
			}
			c := &Conv2D{
				InC: ls.In, OutC: ls.Out, K: ls.K, in: ls.InShape,
				W: append([]float64(nil), ls.W...), B: append([]float64(nil), ls.B...),
				gW: make([]float64, want), gB: make([]float64, ls.Out),
				vW: make([]float64, want), vB: make([]float64, ls.Out),
			}
			n.Add(c)
		case "relu":
			n.Add(NewReLU())
		case "maxpool2":
			n.Add(NewMaxPool2(ls.InShape))
		case "gap":
			n.Add(NewGlobalAvgPool(ls.InShape))
		default:
			return nil, fmt.Errorf("nn: unknown layer kind %q at %d", ls.Kind, i)
		}
	}
	return n, nil
}
