// Package shard partitions the TVDP corpus across N store shards and
// presents them as one store.Backend. Writes route by a stable hash of
// the image ID; reads by ID go straight to the owning shard; searches
// scatter to every shard and gather deterministically (search.go).
//
// Placement contract (stable — it is an on-disk format):
//
//   - Data-plane rows (images, features, annotations, keywords) live on
//     shard mix64(imageID) % N.
//   - Catalog rows (users, API keys, videos, campaigns) live on shard 0.
//   - Classifications replicate to every shard so Annotate can validate
//     labels locally on the owning shard.
//
// ID allocation is global: the coordinator owns a single atomic counter
// (recovered at open as the max of the shards' LastID) and pre-assigns
// IDs before routing, so IDs are unique across shards and the hash
// placement is well defined.
//
// ShardCount == 1 is byte-compatible with a bare *store.Store: the single
// shard opens cfg.Dir itself and writes the same WAL/snapshot files a
// non-sharded deployment would.
package shard

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/geo"
	"repro/internal/index"
	"repro/internal/store"
)

// markerFile records the shard count under the root directory of an N>1
// layout, so a reopen with a different count fails loudly instead of
// silently mis-routing IDs.
const markerFile = "SHARDS"

// ErrShardMismatch reports a reopen whose ShardCount disagrees with the
// on-disk layout. Repartitioning requires an explicit offline migration,
// not a config change.
var ErrShardMismatch = errors.New("shard: shard count does not match on-disk layout")

// Config controls the coordinator. The per-store fields mirror
// store.Config and are applied to every shard identically — in
// particular LSH.Seed, so all shards draw the same hyperplanes and a
// cross-shard candidate union behaves like a single index's.
type Config struct {
	// Dir is the durability root; empty means memory-only shards.
	// With ShardCount <= 1 the store uses Dir directly; with N > 1 each
	// shard owns Dir/shard-XXX.
	Dir string
	// ShardCount is the number of partitions; 0 and 1 both mean one.
	ShardCount      int
	Engine          store.Engine
	WALSync         store.WALSyncMode
	SyncEveryWrite  bool
	RTree           index.RTreeConfig
	LSH             index.LSHConfig
	HybridKinds     []string
	SnapshotEvery   int
	FlushThreshold  int64
	CompactSegments int
}

// Coordinator implements store.Backend over N shards.
type Coordinator struct {
	cfg    Config
	shards []*store.Store
	nextID atomic.Uint64
}

var _ store.Backend = (*Coordinator)(nil)

// Open creates or recovers a sharded deployment.
func Open(cfg Config) (*Coordinator, error) {
	n := cfg.ShardCount
	if n <= 0 {
		n = 1
	}
	if cfg.Dir != "" {
		if err := checkLayout(cfg.Dir, n); err != nil {
			return nil, err
		}
	}
	c := &Coordinator{cfg: cfg}
	for i := 0; i < n; i++ {
		scfg := store.Config{
			Engine:          cfg.Engine,
			WALSync:         cfg.WALSync,
			SyncEveryWrite:  cfg.SyncEveryWrite,
			RTree:           cfg.RTree,
			LSH:             cfg.LSH,
			HybridKinds:     cfg.HybridKinds,
			SnapshotEvery:   cfg.SnapshotEvery,
			FlushThreshold:  cfg.FlushThreshold,
			CompactSegments: cfg.CompactSegments,
		}
		if cfg.Dir != "" {
			scfg.Dir = shardDir(cfg.Dir, n, i)
			if err := os.MkdirAll(scfg.Dir, 0o755); err != nil {
				return nil, errors.Join(fmt.Errorf("shard: %w", err), c.closeOpened())
			}
		}
		s, err := store.Open(scfg)
		if err != nil {
			return nil, errors.Join(fmt.Errorf("shard %d: %w", i, err), c.closeOpened())
		}
		c.shards = append(c.shards, s)
		if last := s.LastID(); last > c.nextID.Load() {
			c.nextID.Store(last)
		}
	}
	return c, nil
}

// shardDir returns shard i's durability directory: the root itself for a
// single shard (byte-compat with a bare store), a numbered subdirectory
// otherwise.
func shardDir(root string, n, i int) string {
	if n <= 1 {
		return root
	}
	return filepath.Join(root, fmt.Sprintf("shard-%03d", i))
}

// checkLayout validates the root directory against the requested count
// and writes the marker for a fresh N>1 layout.
func checkLayout(root string, n int) error {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	raw, err := os.ReadFile(filepath.Join(root, markerFile))
	switch {
	case err == nil:
		have, perr := strconv.Atoi(strings.TrimSpace(string(raw)))
		if perr != nil {
			return fmt.Errorf("shard: corrupt marker %q: %w", strings.TrimSpace(string(raw)), perr)
		}
		if have != n {
			return fmt.Errorf("%w: dir has %d shards, config wants %d", ErrShardMismatch, have, n)
		}
		return nil
	case !os.IsNotExist(err):
		return fmt.Errorf("shard: %w", err)
	}
	// No marker. A single-store layout has its durability files directly
	// in root — legacy snapshot.gob/wal.gob or a segment-engine MANIFEST;
	// opening that with N>1 would strand the existing corpus.
	if n > 1 {
		for _, f := range []string{"snapshot.gob", "wal.gob", "MANIFEST"} {
			if _, serr := os.Stat(filepath.Join(root, f)); serr == nil {
				return fmt.Errorf("%w: dir holds a single-store layout (%s present), config wants %d shards", ErrShardMismatch, f, n)
			}
		}
		if err := os.WriteFile(filepath.Join(root, markerFile), []byte(strconv.Itoa(n)+"\n"), 0o644); err != nil {
			return fmt.Errorf("shard: %w", err)
		}
	}
	return nil
}

// closeOpened rolls back a partially opened coordinator. Close errors
// are returned (joined) so the caller can attach them to the primary
// failure instead of silently dropping them.
func (c *Coordinator) closeOpened() error {
	var err error
	for _, s := range c.shards {
		err = errors.Join(err, s.Close())
	}
	return err
}

// NumShards returns the shard count.
func (c *Coordinator) NumShards() int { return len(c.shards) }

// mix64 is the splitmix64 finalizer: a fixed bijective mixer that spreads
// sequential IDs uniformly across shards. It is part of the on-disk
// placement contract — changing it orphans every routed row.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// shardOf returns the shard owning image id.
func (c *Coordinator) shardOf(id uint64) *store.Store {
	return c.shards[mix64(id)%uint64(len(c.shards))]
}

// alloc hands out the next global ID.
func (c *Coordinator) alloc() uint64 { return c.nextID.Add(1) }

// adopt raises the global allocator to at least id (after delegated
// writes where a shard allocated locally).
func (c *Coordinator) adopt(id uint64) {
	for {
		cur := c.nextID.Load()
		if id <= cur || c.nextID.CompareAndSwap(cur, id) {
			return
		}
	}
}

// catalog returns the shard holding singleton catalog state (users, API
// keys, videos, campaigns).
func (c *Coordinator) catalog() *store.Store { return c.shards[0] }

// ---- Lifecycle ----

// Close closes every shard, returning the first error but attempting all.
func (c *Coordinator) Close() error {
	var errs []error
	for i, s := range c.shards {
		if err := s.Close(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// Snapshot compacts every shard's WAL.
func (c *Coordinator) Snapshot() error {
	var errs []error
	for i, s := range c.shards {
		if err := s.Snapshot(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// Generation composes the per-shard mutation generations by summation.
// Each shard's generation is monotonic, so the sum changes whenever any
// shard applies a data-plane write — which is exactly the coherence
// stamp generation-checked caches need.
func (c *Coordinator) Generation() uint64 {
	var g uint64
	for _, s := range c.shards {
		g += s.Generation()
	}
	return g
}

// ---- Images ----

// AddImage routes the image to its hash shard under a pre-assigned
// global ID.
func (c *Coordinator) AddImage(img store.Image) (uint64, error) {
	if img.ID == 0 {
		img.ID = c.alloc()
	} else {
		c.adopt(img.ID)
	}
	return c.shardOf(img.ID).AddImage(img)
}

// GetImage reads from the owning shard.
func (c *Coordinator) GetImage(id uint64) (store.Image, error) {
	return c.shardOf(id).GetImage(id)
}

// Describe reads from the owning shard.
func (c *Coordinator) Describe(id uint64) (store.Descriptor, error) {
	return c.shardOf(id).Describe(id)
}

// DeleteImage routes to the owning shard.
func (c *Coordinator) DeleteImage(id uint64) error {
	return c.shardOf(id).DeleteImage(id)
}

// NumImages sums the shard counts.
func (c *Coordinator) NumImages() int {
	n := 0
	for _, s := range c.shards {
		n += s.NumImages()
	}
	return n
}

// ImageIDs merges the per-shard sorted ID lists, ascending.
func (c *Coordinator) ImageIDs() []uint64 {
	var out []uint64
	for _, s := range c.shards {
		out = append(out, s.ImageIDs()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ---- Features ----

// PutFeature routes to the image's shard.
func (c *Coordinator) PutFeature(imageID uint64, kind string, vec []float64) error {
	return c.shardOf(imageID).PutFeature(imageID, kind, vec)
}

// GetFeature reads from the image's shard.
func (c *Coordinator) GetFeature(imageID uint64, kind string) ([]float64, error) {
	return c.shardOf(imageID).GetFeature(imageID, kind)
}

// FeatureKinds reads from the image's shard.
func (c *Coordinator) FeatureKinds(imageID uint64) []string {
	return c.shardOf(imageID).FeatureKinds(imageID)
}

// ---- Classifications and annotations ----

// CreateClassification replicates the scheme to every shard under one
// pre-assigned ID, so annotation validation stays shard-local. The
// replication is fail-fast, not transactional: a shard failing mid-loop
// leaves the scheme present on a prefix of shards. That divergence is
// benign for reads (catalog reads go to shard 0, which is written first)
// and self-heals on retry because PutClassification of an identical dup
// name fails only on the shards that already have it.
func (c *Coordinator) CreateClassification(name string, labels []string) (uint64, error) {
	cl := store.Classification{ID: c.alloc(), Name: name, Labels: labels}
	for i, s := range c.shards {
		if _, err := s.PutClassification(cl); err != nil {
			if i > 0 {
				return 0, fmt.Errorf("shard %d (scheme replicated to %d/%d shards): %w", i, i, len(c.shards), err)
			}
			return 0, err
		}
	}
	return cl.ID, nil
}

// GetClassification reads the replicated scheme from the catalog shard.
func (c *Coordinator) GetClassification(id uint64) (store.Classification, error) {
	return c.catalog().GetClassification(id)
}

// ClassificationByName reads from the catalog shard.
func (c *Coordinator) ClassificationByName(name string) (store.Classification, error) {
	return c.catalog().ClassificationByName(name)
}

// Classifications reads from the catalog shard.
func (c *Coordinator) Classifications() []store.Classification {
	return c.catalog().Classifications()
}

// Annotate routes to the annotated image's shard, which holds both the
// image row and (by replication) the classification scheme.
func (c *Coordinator) Annotate(a store.Annotation) error {
	return c.shardOf(a.ImageID).Annotate(a)
}

// AnnotationsFor reads from the image's shard.
func (c *Coordinator) AnnotationsFor(imageID uint64) []store.Annotation {
	return c.shardOf(imageID).AnnotationsFor(imageID)
}

// ImagesByLabel merges the per-shard ID lists, ascending.
func (c *Coordinator) ImagesByLabel(classificationID uint64, label int) []uint64 {
	var out []uint64
	for _, s := range c.shards {
		out = append(out, s.ImagesByLabel(classificationID, label)...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ---- Keywords ----

// AddKeywords routes to the image's shard.
func (c *Coordinator) AddKeywords(imageID uint64, words []string) error {
	return c.shardOf(imageID).AddKeywords(imageID, words)
}

// KeywordsFor reads from the image's shard.
func (c *Coordinator) KeywordsFor(imageID uint64) []string {
	return c.shardOf(imageID).KeywordsFor(imageID)
}

// ---- Users and API keys ----

// CreateUser stores the user on the catalog shard under a global ID.
func (c *Coordinator) CreateUser(name, role string) (uint64, error) {
	return c.catalog().PutUser(store.User{ID: c.alloc(), Name: name, Role: role})
}

// IssueAPIKey delegates to the catalog shard.
func (c *Coordinator) IssueAPIKey(userID uint64, now time.Time) (string, error) {
	return c.catalog().IssueAPIKey(userID, now)
}

// Authenticate delegates to the catalog shard.
func (c *Coordinator) Authenticate(key string) (store.User, error) {
	return c.catalog().Authenticate(key)
}

// ---- Videos ----

// AddVideo ingests a video. With one shard it delegates wholesale,
// keeping the single-store one-WAL-batch atomicity. With N>1 the ingest
// decomposes: frames land on their hash shards as individual AddImage /
// AddKeywords writes and the video row lands on the catalog shard last,
// so the operation is NOT atomic across shards — a crash mid-ingest can
// leave frames without a video row. The video row is written last so a
// registered video always has all its frames.
func (c *Coordinator) AddVideo(description, workerID string, frames []store.Frame) (uint64, []uint64, error) {
	if len(c.shards) == 1 {
		id, frameIDs, err := c.shards[0].AddVideo(description, workerID, frames)
		if err == nil {
			c.adopt(c.shards[0].LastID())
		}
		return id, frameIDs, err
	}
	if len(frames) == 0 {
		return 0, nil, fmt.Errorf("%w: video needs frames", store.ErrInvalid)
	}
	for i, f := range frames {
		if f.Pixels == nil {
			return 0, nil, fmt.Errorf("%w: frame %d has no pixels", store.ErrInvalid, i)
		}
		if err := f.FOV.Validate(); err != nil {
			return 0, nil, fmt.Errorf("%w: frame %d: %v", store.ErrInvalid, i, err)
		}
	}
	videoID := c.alloc()
	v := store.Video{
		ID: videoID, Description: description, WorkerID: workerID,
		Start: frames[0].CapturedAt, End: frames[0].CapturedAt,
	}
	frameIDs := make([]uint64, 0, len(frames))
	for i, f := range frames {
		img := store.Image{
			ID:                 c.alloc(),
			Origin:             store.OriginOriginal,
			FOV:                f.FOV,
			Pixels:             f.Pixels,
			TimestampCapturing: f.CapturedAt,
			TimestampUploading: f.CapturedAt,
			WorkerID:           workerID,
			VideoID:            videoID,
			FrameIndex:         i,
		}
		if _, err := c.shardOf(img.ID).AddImage(img); err != nil {
			return 0, nil, fmt.Errorf("frame %d: %w", i, err)
		}
		if len(f.Keywords) > 0 {
			if err := c.shardOf(img.ID).AddKeywords(img.ID, f.Keywords); err != nil {
				return 0, nil, fmt.Errorf("frame %d keywords: %w", i, err)
			}
		}
		frameIDs = append(frameIDs, img.ID)
		if f.CapturedAt.Before(v.Start) {
			v.Start = f.CapturedAt
		}
		if f.CapturedAt.After(v.End) {
			v.End = f.CapturedAt
		}
	}
	v.FrameIDs = frameIDs
	if _, err := c.catalog().PutVideo(v); err != nil {
		return 0, nil, err
	}
	return videoID, frameIDs, nil
}

// GetVideo reads from the catalog shard.
func (c *Coordinator) GetVideo(id uint64) (store.Video, error) {
	return c.catalog().GetVideo(id)
}

// Videos reads from the catalog shard.
func (c *Coordinator) Videos() []store.Video {
	return c.catalog().Videos()
}

// ---- Campaigns ----

// CreateCampaign stores the campaign on the catalog shard under a global
// ID.
func (c *Coordinator) CreateCampaign(rec store.CampaignRec) (uint64, error) {
	if rec.ID == 0 {
		rec.ID = c.alloc()
	} else {
		c.adopt(rec.ID)
	}
	return c.catalog().CreateCampaign(rec)
}

// GetCampaign reads from the catalog shard.
func (c *Coordinator) GetCampaign(id uint64) (store.CampaignRec, error) {
	return c.catalog().GetCampaign(id)
}

// Campaigns reads from the catalog shard.
func (c *Coordinator) Campaigns() []store.CampaignRec {
	return c.catalog().Campaigns()
}

// CampaignImages merges the per-shard ID lists, ascending.
func (c *Coordinator) CampaignImages(campaignID uint64) []uint64 {
	var out []uint64
	for _, s := range c.shards {
		out = append(out, s.CampaignImages(campaignID)...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FOVsInRegion concatenates per-shard FOV lists in shard order. The
// consumer (coverage measurement) is order-insensitive.
func (c *Coordinator) FOVsInRegion(r geo.Rect) []geo.FOV {
	var out []geo.FOV
	for _, s := range c.shards {
		out = append(out, s.FOVsInRegion(r)...)
	}
	return out
}
