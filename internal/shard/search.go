package shard

import (
	"context"
	"sort"
	"sync"
	"time"

	"repro/internal/geo"
	"repro/internal/index"
	"repro/internal/store"
)

// Scatter-gather query tier.
//
// Every Search* fans out to all shards concurrently, then merges under
// the same total order a single store uses — (Dist, ID) for visual and
// nearest matches, (score desc, ID) for text, (time, ID) for temporal
// ranges, ascending ID where unranked — so the merged result is
// bit-identical for any shard count wherever the per-shard primitive is
// itself partition-invariant (exact visual scans, text with global IDF,
// spatial nearest under the tie-collecting walk, scene, time).
//
// Failure semantics: any shard error fails the whole query; there are no
// partial results. Partial answers would poison the generation-stamped
// result cache (a cached partial is indistinguishable from a complete
// one) and break shard-count invariance, so a deadline on one shard
// surfaces as the query's error rather than a quietly smaller result.

// reserveFrac and reserveCap size the slice of the caller's remaining
// deadline budget held back for the merge step: 10% of what is left,
// at most 50ms.
const (
	reserveFrac = 10
	reserveCap  = 50 * time.Millisecond
)

// sliceDeadline derives the per-shard probe context: the parent's
// deadline minus a merge reserve. Contexts without a deadline pass
// through (cancellation still propagates). The returned cancel must be
// called.
func sliceDeadline(ctx context.Context) (context.Context, context.CancelFunc) {
	dl, ok := ctx.Deadline()
	if !ok {
		return context.WithCancel(ctx)
	}
	remaining := time.Until(dl)
	reserve := remaining / reserveFrac
	if reserve > reserveCap {
		reserve = reserveCap
	}
	if reserve > 0 {
		dl = dl.Add(-reserve)
	}
	return context.WithDeadline(ctx, dl)
}

// fanOut probes every shard concurrently and collects the results in
// shard order. On any probe error the remaining probes are cancelled and
// the first error observed wins, preferring a root cause over the
// context.Canceled noise the cancellation itself induces in siblings.
// All probe goroutines are joined before return — no leaks, even when
// the caller's context dies mid-flight.
func fanOut[T any](ctx context.Context, shards []*store.Store, probe func(context.Context, *store.Store) (T, error)) ([]T, error) {
	if len(shards) == 1 {
		out, err := probe(ctx, shards[0])
		if err != nil {
			return nil, err
		}
		return []T{out}, nil
	}
	pctx, cancel := sliceDeadline(ctx)
	defer cancel()
	results := make([]T, len(shards))
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for i, s := range shards {
		wg.Add(1)
		go func(i int, s *store.Store) {
			defer wg.Done()
			out, err := probe(pctx, s)
			if err != nil {
				errs[i] = err
				cancel() // stop sibling probes; their work is already wasted
				return
			}
			results[i] = out
		}(i, s)
	}
	wg.Wait()
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if first == nil {
			first = err
		}
		// A sibling cancelled by our own cancel() reports
		// context.Canceled; the probe that actually failed holds the root
		// cause. Prefer it.
		if first == context.Canceled && err != context.Canceled {
			first = err
		}
	}
	if first != nil {
		return nil, first
	}
	return results, nil
}

// mergeMatches k-way merges per-shard match lists (each already sorted
// under (Dist, ID)) into one ordered list, truncated to k when k > 0.
func mergeMatches(lists [][]index.Match, k int) []index.Match {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	if total == 0 {
		return nil
	}
	out := make([]index.Match, 0, total)
	for _, l := range lists {
		out = append(out, l...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// mergeScored merges score-ranked lists (score descending, ID ascending
// on ties) — the text-search order.
func mergeScored(lists [][]index.Match) []index.Match {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	if total == 0 {
		return nil
	}
	out := make([]index.Match, 0, total)
	for _, l := range lists {
		out = append(out, l...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist > out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// mergeIDs merges unranked ID lists, ascending.
func mergeIDs(lists [][]uint64) []uint64 {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	if total == 0 {
		return nil
	}
	out := make([]uint64, 0, total)
	for _, l := range lists {
		out = append(out, l...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SearchScene scatters the scene-intersection query; IDs merge
// ascending.
func (c *Coordinator) SearchScene(ctx context.Context, r geo.Rect) ([]uint64, error) {
	lists, err := fanOut(ctx, c.shards, func(ctx context.Context, s *store.Store) ([]uint64, error) {
		return s.SearchScene(ctx, r)
	})
	if err != nil {
		return nil, err
	}
	return mergeIDs(lists), nil
}

// SearchNearest gathers per-shard scored top-k lists and re-selects the
// global top-k under (Dist, ID), then strips the scores.
func (c *Coordinator) SearchNearest(ctx context.Context, p geo.Point, k int) ([]uint64, error) {
	lists, err := fanOut(ctx, c.shards, func(ctx context.Context, s *store.Store) ([]index.Match, error) {
		return s.SearchNearestScored(ctx, p, k)
	})
	if err != nil {
		return nil, err
	}
	ms := mergeMatches(lists, k)
	out := make([]uint64, len(ms))
	for i, m := range ms {
		out[i] = m.ID
	}
	return out, nil
}

// SearchVisual merges per-shard LSH top-k lists under (Dist, ID).
func (c *Coordinator) SearchVisual(ctx context.Context, kind string, vec []float64, k int) ([]index.Match, error) {
	lists, err := fanOut(ctx, c.shards, func(ctx context.Context, s *store.Store) ([]index.Match, error) {
		return s.SearchVisual(ctx, kind, vec, k)
	})
	if err != nil {
		return nil, err
	}
	return mergeMatches(lists, k), nil
}

// SearchVisualQuant merges per-shard quantized-scan top-k lists.
func (c *Coordinator) SearchVisualQuant(ctx context.Context, kind string, vec []float64, k int) ([]index.Match, error) {
	lists, err := fanOut(ctx, c.shards, func(ctx context.Context, s *store.Store) ([]index.Match, error) {
		return s.SearchVisualQuant(ctx, kind, vec, k)
	})
	if err != nil {
		return nil, err
	}
	return mergeMatches(lists, k), nil
}

// SearchVisualExact merges per-shard exact-scan top-k lists. Because the
// per-shard scan is exhaustive, the merged list is bit-identical to a
// single store's for any shard count.
func (c *Coordinator) SearchVisualExact(ctx context.Context, kind string, vec []float64, k int) ([]index.Match, error) {
	lists, err := fanOut(ctx, c.shards, func(ctx context.Context, s *store.Store) ([]index.Match, error) {
		return s.SearchVisualExact(ctx, kind, vec, k)
	})
	if err != nil {
		return nil, err
	}
	return mergeMatches(lists, k), nil
}

// SearchVisualRadius merges per-shard radius scans (unbounded k).
func (c *Coordinator) SearchVisualRadius(ctx context.Context, kind string, vec []float64, r float64) ([]index.Match, error) {
	lists, err := fanOut(ctx, c.shards, func(ctx context.Context, s *store.Store) ([]index.Match, error) {
		return s.SearchVisualRadius(ctx, kind, vec, r)
	})
	if err != nil {
		return nil, err
	}
	return mergeMatches(lists, 0), nil
}

// SearchHybrid is available iff every shard reports the kind hybrid-
// configured. Availability is config-driven (identical across shards),
// so ok is shard-invariant; a !ok from any shard cancels the remaining
// probes via the fan-out error path and reports unavailable.
func (c *Coordinator) SearchHybrid(ctx context.Context, kind string, r geo.Rect, vec []float64, k int) ([]index.Match, bool, error) {
	type hybridOut struct {
		ms []index.Match
		ok bool
	}
	lists, err := fanOut(ctx, c.shards, func(ctx context.Context, s *store.Store) (hybridOut, error) {
		ms, ok, err := s.SearchHybrid(ctx, kind, r, vec, k)
		if err != nil {
			return hybridOut{}, err
		}
		if !ok {
			// Not an error, but further probing is pointless: surface
			// unavailability through the error path to cancel siblings,
			// then translate back below.
			return hybridOut{}, errHybridUnavailable
		}
		return hybridOut{ms: ms, ok: true}, nil
	})
	if err == errHybridUnavailable {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	merged := make([][]index.Match, len(lists))
	for i, h := range lists {
		merged[i] = h.ms
	}
	return mergeMatches(merged, k), true, nil
}

// errHybridUnavailable is a sentinel carrying "kind not hybrid-indexed"
// through the fan-out error path. Never returned to callers.
var errHybridUnavailable = errSentinel("shard: hybrid unavailable")

type errSentinel string

func (e errSentinel) Error() string { return string(e) }

// SearchText scores each shard's postings under global corpus statistics
// (docs and document frequencies summed across shards), then merges by
// (score desc, ID). Global IDF is what makes the ranking identical to a
// single index over the union corpus.
func (c *Coordinator) SearchText(ctx context.Context, terms []string) ([]index.Match, error) {
	return c.searchTextStats(ctx, terms, false)
}

// SearchTextAll is the conjunctive variant of SearchText. The AND filter
// is shard-local, which is exact: all keywords of an image live on its
// shard.
func (c *Coordinator) SearchTextAll(ctx context.Context, terms []string) ([]index.Match, error) {
	return c.searchTextStats(ctx, terms, true)
}

func (c *Coordinator) searchTextStats(ctx context.Context, terms []string, conjunctive bool) ([]index.Match, error) {
	type stats struct {
		docs int
		df   []int
	}
	// Phase 1: gather per-shard corpus statistics.
	perShard, err := fanOut(ctx, c.shards, func(ctx context.Context, s *store.Store) (stats, error) {
		docs, df, err := s.TextStats(ctx, terms)
		return stats{docs: docs, df: df}, err
	})
	if err != nil {
		return nil, err
	}
	docs := 0
	df := make([]int, len(terms))
	for _, st := range perShard {
		docs += st.docs
		for i, d := range st.df {
			df[i] += d
		}
	}
	// Phase 2: score each shard under the global statistics.
	lists, err := fanOut(ctx, c.shards, func(ctx context.Context, s *store.Store) ([]index.Match, error) {
		if conjunctive {
			return s.SearchTextAllStats(ctx, terms, docs, df)
		}
		return s.SearchTextStats(ctx, terms, docs, df)
	})
	if err != nil {
		return nil, err
	}
	return mergeScored(lists), nil
}

// SearchTime interleaves per-shard range scans under (time, ID), then
// strips the timestamps.
func (c *Coordinator) SearchTime(ctx context.Context, from, to time.Time) ([]uint64, error) {
	lists, err := fanOut(ctx, c.shards, func(ctx context.Context, s *store.Store) ([]index.TimeEntry, error) {
		return s.SearchTimeEntries(ctx, from, to)
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	if total == 0 {
		return nil, nil
	}
	entries := make([]index.TimeEntry, 0, total)
	for _, l := range lists {
		entries = append(entries, l...)
	}
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].At.Equal(entries[j].At) {
			return entries[i].At.Before(entries[j].At)
		}
		return entries[i].ID < entries[j].ID
	})
	out := make([]uint64, len(entries))
	for i, e := range entries {
		out[i] = e.ID
	}
	return out, nil
}
