package shard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/imagesim"
	"repro/internal/store"
)

var la = geo.Point{Lat: 34.0522, Lon: -118.2437}

func memCoord(t *testing.T, n int) *Coordinator {
	t.Helper()
	c, err := Open(Config{ShardCount: n})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func testImage(brg float64) store.Image {
	px := imagesim.MustNew(8, 8)
	px.Fill(imagesim.RGB{R: uint8(100 + int(brg)%100), G: 120, B: 140})
	cam := geo.Destination(la, brg, 500)
	return store.Image{
		FOV:                geo.FOV{Camera: cam, Direction: brg, Angle: 60, Radius: 100},
		Pixels:             px,
		TimestampCapturing: time.Date(2019, 2, 1, 8, 0, 0, 0, time.UTC).Add(time.Duration(brg) * time.Minute),
		WorkerID:           "w-1",
	}
}

var vocab = []string{"street", "garbage", "clean", "truck", "overflow", "bin"}

// seedCorpus ingests n images with keywords and a feature vector through
// any backend; identical calls produce identical IDs on a bare store and
// on a coordinator of any shard count (both allocate sequentially from
// zero).
func seedCorpus(t *testing.T, b store.Backend, n int) []uint64 {
	t.Helper()
	ids := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		id, err := b.AddImage(testImage(float64(i * 3)))
		if err != nil {
			t.Fatal(err)
		}
		kw := []string{vocab[i%len(vocab)], vocab[(i*2+1)%len(vocab)]}
		if err := b.AddKeywords(id, kw); err != nil {
			t.Fatal(err)
		}
		vec := []float64{float64(i % 7), float64((i * 5) % 11), float64((i * 3) % 13)}
		if err := b.PutFeature(id, "hist", vec); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	return ids
}

// TestShardCountInvariance is the core determinism contract: every
// Search* built on partition-invariant primitives returns bit-identical
// results for a bare store and for 1, 2, 4, and 8 shards.
func TestShardCountInvariance(t *testing.T) {
	bare, err := store.Open(store.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	backends := map[string]store.Backend{"bare": bare}
	for _, n := range []int{1, 2, 4, 8} {
		backends[fmt.Sprintf("shards=%d", n)] = memCoord(t, n)
	}
	const corpus = 60
	for _, b := range backends {
		seedCorpus(t, b, corpus)
	}
	ctx := context.Background()
	qvec := []float64{2, 4, 6}
	queries := map[string]func(store.Backend) (any, error){
		"visual-exact": func(b store.Backend) (any, error) { return b.SearchVisualExact(ctx, "hist", qvec, 10) },
		"text-any": func(b store.Backend) (any, error) {
			return b.SearchText(ctx, []string{"garbage", "truck"})
		},
		"text-all": func(b store.Backend) (any, error) {
			return b.SearchTextAll(ctx, []string{"garbage", "clean"})
		},
		"time": func(b store.Backend) (any, error) {
			from := time.Date(2019, 2, 1, 8, 30, 0, 0, time.UTC)
			return b.SearchTime(ctx, from, from.Add(time.Hour))
		},
		"scene": func(b store.Backend) (any, error) {
			return b.SearchScene(ctx, geo.Rect{MinLat: la.Lat - 0.01, MinLon: la.Lon - 0.01, MaxLat: la.Lat + 0.01, MaxLon: la.Lon + 0.01})
		},
		"nearest": func(b store.Backend) (any, error) { return b.SearchNearest(ctx, la, 15) },
		"radius":  func(b store.Backend) (any, error) { return b.SearchVisualRadius(ctx, "hist", qvec, 6) },
		"ids":     func(b store.Backend) (any, error) { return b.ImageIDs(), nil },
	}
	for qname, run := range queries {
		want, err := run(backends["bare"])
		if err != nil {
			t.Fatalf("%s on bare store: %v", qname, err)
		}
		for bname, b := range backends {
			got, err := run(b)
			if err != nil {
				t.Fatalf("%s on %s: %v", qname, bname, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s diverges on %s:\n got  %v\n want %v", qname, bname, got, want)
			}
		}
	}
}

// TestFanOutShardError pins the whole-query-fails semantics: one shard
// failing (e.g. its deadline slice expiring) surfaces as the query's
// error with no partial results, and the root cause wins over the
// context.Canceled noise that cancelling the sibling probes induces.
func TestFanOutShardError(t *testing.T) {
	c := memCoord(t, 4)
	ctx := context.Background()
	var canceledSiblings atomic.Int32
	out, err := fanOut(ctx, c.shards, func(ctx context.Context, s *store.Store) (int, error) {
		if s == c.shards[2] {
			return 0, context.DeadlineExceeded
		}
		<-ctx.Done() // siblings park until the failing probe cancels them
		canceledSiblings.Add(1)
		return 0, ctx.Err()
	})
	if out != nil {
		t.Fatalf("partial results %v leaked through a shard error", out)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want the root-cause DeadlineExceeded", err)
	}
	if got := canceledSiblings.Load(); got != 3 {
		t.Fatalf("%d siblings observed cancellation, want 3", got)
	}
}

// TestFanOutCancelNoLeak cancels the caller's context mid-fan-out and
// checks both that the error propagates and that every probe goroutine
// is joined (no leaks for the race detector to chase).
func TestFanOutCancelNoLeak(t *testing.T) {
	c := memCoord(t, 8)
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		started := make(chan struct{}, len(c.shards))
		go func() {
			for range c.shards {
				<-started
			}
			cancel()
		}()
		_, err := fanOut(ctx, c.shards, func(ctx context.Context, s *store.Store) (int, error) {
			started <- struct{}{}
			<-ctx.Done()
			return 0, ctx.Err()
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want Canceled", err)
		}
		cancel()
	}
	// All probe goroutines are joined before fanOut returns, so the count
	// settles back to the baseline (allow slack for runtime helpers).
	deadline := time.Now().Add(2 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSliceDeadline checks the merge reserve: the per-shard deadline is
// strictly earlier than the caller's, by at most the 50ms cap.
func TestSliceDeadline(t *testing.T) {
	parent, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	child, ccancel := sliceDeadline(parent)
	defer ccancel()
	pd, _ := parent.Deadline()
	cd, ok := child.Deadline()
	if !ok {
		t.Fatal("child lost the deadline")
	}
	if !cd.Before(pd) {
		t.Fatal("child deadline not earlier than parent")
	}
	if pd.Sub(cd) > reserveCap {
		t.Fatalf("reserve %v exceeds cap %v", pd.Sub(cd), reserveCap)
	}
	// No parent deadline → none imposed on the probes.
	child2, ccancel2 := sliceDeadline(context.Background())
	defer ccancel2()
	if _, ok := child2.Deadline(); ok {
		t.Fatal("sliceDeadline invented a deadline")
	}
}

// TestSingleShardByteCompat: a ShardCount=1 coordinator writes the exact
// bytes a bare store writes, and a bare store can reopen the directory.
func TestSingleShardByteCompat(t *testing.T) {
	dirBare, dirCoord := t.TempDir(), t.TempDir()
	writeAll := func(b store.Backend) {
		t.Helper()
		seedCorpus(t, b, 12)
		if _, err := b.CreateClassification("clean", []string{"yes", "no"}); err != nil {
			t.Fatal(err)
		}
	}
	bare, err := store.Open(store.Config{Dir: dirBare})
	if err != nil {
		t.Fatal(err)
	}
	writeAll(bare)
	if err := bare.Close(); err != nil {
		t.Fatal(err)
	}
	coord, err := Open(Config{Dir: dirCoord, ShardCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	writeAll(coord)
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"MANIFEST", "wal-000001.log"} {
		a, err := os.ReadFile(filepath.Join(dirBare, f))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirCoord, f))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s differs between bare store and 1-shard coordinator (%d vs %d bytes)", f, len(a), len(b))
		}
	}
	// No shard marker or subdirectories in the single-shard layout.
	if _, err := os.Stat(filepath.Join(dirCoord, markerFile)); !os.IsNotExist(err) {
		t.Fatal("single-shard layout must not write a marker file")
	}
	// Interop: a bare store opens the coordinator's directory.
	reopened, err := store.Open(store.Config{Dir: dirCoord})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if n := reopened.NumImages(); n != 12 {
		t.Fatalf("bare reopen sees %d images, want 12", n)
	}
}

// TestReopenRecoversState: a multi-shard deployment recovers rows, the
// global ID allocator, and keeps allocating without collisions.
func TestReopenRecoversState(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(Config{Dir: dir, ShardCount: 3})
	if err != nil {
		t.Fatal(err)
	}
	ids := seedCorpus(t, c, 20)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(Config{Dir: dir, ShardCount: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if n := c2.NumImages(); n != 20 {
		t.Fatalf("recovered %d images, want 20", n)
	}
	seen := make(map[uint64]bool, len(ids))
	for _, id := range ids {
		if _, err := c2.GetImage(id); err != nil {
			t.Fatalf("image %d lost across reopen: %v", id, err)
		}
		seen[id] = true
	}
	newID, err := c2.AddImage(testImage(359))
	if err != nil {
		t.Fatal(err)
	}
	if seen[newID] {
		t.Fatalf("post-reopen allocation reused ID %d", newID)
	}
}

// TestShardCountMismatch: reopening with a different count, or pointing
// N>1 at a single-store directory, fails loudly.
func TestShardCountMismatch(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(Config{Dir: dir, ShardCount: 4})
	if err != nil {
		t.Fatal(err)
	}
	seedCorpus(t, c, 4)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Dir: dir, ShardCount: 2}); !errors.Is(err, ErrShardMismatch) {
		t.Fatalf("reopen with wrong count: err = %v, want ErrShardMismatch", err)
	}
	if _, err := Open(Config{Dir: dir, ShardCount: 1}); !errors.Is(err, ErrShardMismatch) {
		t.Fatalf("reopen as single store: err = %v, want ErrShardMismatch", err)
	}

	single := t.TempDir()
	s, err := store.Open(store.Config{Dir: single})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddImage(testImage(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Dir: single, ShardCount: 2}); !errors.Is(err, ErrShardMismatch) {
		t.Fatalf("sharding a single-store dir: err = %v, want ErrShardMismatch", err)
	}
}

// TestClassificationReplication: schemes land on every shard, so
// annotations validate locally wherever the image hashes.
func TestClassificationReplication(t *testing.T) {
	c := memCoord(t, 4)
	ids := seedCorpus(t, c, 16)
	clsID, err := c.CreateClassification("cleanliness", []string{"clean", "dirty"})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range c.shards {
		if _, err := s.GetClassification(clsID); err != nil {
			t.Fatalf("scheme missing on a shard: %v", err)
		}
	}
	at := time.Date(2019, 3, 1, 0, 0, 0, 0, time.UTC)
	for i, id := range ids {
		err := c.Annotate(store.Annotation{
			ImageID: id, ClassificationID: clsID, Label: i % 2,
			Confidence: 1, Source: store.SourceHuman, AnnotatedAt: at,
		})
		if err != nil {
			t.Fatalf("annotate %d: %v", id, err)
		}
	}
	got := c.ImagesByLabel(clsID, 0)
	if len(got) != len(ids)/2 {
		t.Fatalf("ImagesByLabel returned %d, want %d", len(got), len(ids)/2)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatal("ImagesByLabel not ascending")
		}
	}
}

// TestVideoDecomposed: the N>1 video ingest spreads frames across shards
// but keeps the video row, frame order, and keywords intact.
func TestVideoDecomposed(t *testing.T) {
	c := memCoord(t, 4)
	base := time.Date(2019, 4, 1, 12, 0, 0, 0, time.UTC)
	frames := make([]store.Frame, 6)
	for i := range frames {
		px := imagesim.MustNew(8, 8)
		px.Fill(imagesim.RGB{R: uint8(10 * i), G: 50, B: 50})
		frames[i] = store.Frame{
			Pixels:     px,
			FOV:        geo.FOV{Camera: geo.Destination(la, float64(i*10), 200), Direction: float64(i * 10), Angle: 60, Radius: 100},
			CapturedAt: base.Add(time.Duration(i) * time.Second),
			Keywords:   []string{"drone", vocab[i%len(vocab)]},
		}
	}
	vid, frameIDs, err := c.AddVideo("flight", "w-7", frames)
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.GetVideo(vid)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v.FrameIDs, frameIDs) {
		t.Fatalf("FrameIDs %v != returned %v", v.FrameIDs, frameIDs)
	}
	if !v.Start.Equal(base) || !v.End.Equal(base.Add(5*time.Second)) {
		t.Fatalf("span [%v, %v] wrong", v.Start, v.End)
	}
	perShard := make(map[*store.Store]int)
	for i, id := range frameIDs {
		img, err := c.GetImage(id)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if img.VideoID != vid || img.FrameIndex != i {
			t.Fatalf("frame %d links (video=%d idx=%d)", i, img.VideoID, img.FrameIndex)
		}
		if kw := c.KeywordsFor(id); len(kw) != 2 {
			t.Fatalf("frame %d keywords %v", i, kw)
		}
		perShard[c.shardOf(id)]++
	}
	if len(perShard) < 2 {
		t.Fatalf("6 frames all hashed to %d shard(s); placement not spreading", len(perShard))
	}
}

// TestGenerationComposes: any data-plane write on any shard changes the
// coordinator generation (the cache-coherence stamp).
func TestGenerationComposes(t *testing.T) {
	c := memCoord(t, 4)
	ids := seedCorpus(t, c, 8)
	g0 := c.Generation()
	if err := c.AddKeywords(ids[3], []string{"extra"}); err != nil {
		t.Fatal(err)
	}
	if c.Generation() == g0 {
		t.Fatal("generation unchanged after a routed write")
	}
	g1 := c.Generation()
	if err := c.DeleteImage(ids[5]); err != nil {
		t.Fatal(err)
	}
	if c.Generation() == g1 {
		t.Fatal("generation unchanged after a routed delete")
	}
}

// TestHybridUnavailable: a kind with no hybrid index reports ok=false
// with no error, same as a bare store.
func TestHybridUnavailable(t *testing.T) {
	c := memCoord(t, 2)
	seedCorpus(t, c, 4)
	_, ok, err := c.SearchHybrid(context.Background(), "hist", geo.Rect{MinLat: 0, MinLon: 0, MaxLat: 1, MaxLon: 1}, []float64{1, 2, 3}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("hybrid reported available without configuration")
	}
}
