package index

import (
	"sort"
	"time"
)

// Temporal indexes items by timestamp for the temporal-filter queries of
// §IV-C. It keeps a sorted slice with binary-search range scans —
// append-mostly insertion stays near O(1) amortised because captures
// arrive roughly in time order.
type Temporal struct {
	entries []temporalEntry
	sorted  bool
}

type temporalEntry struct {
	at time.Time
	id uint64
}

// NewTemporal returns an empty index.
func NewTemporal() *Temporal { return &Temporal{sorted: true} }

// Len returns the number of indexed entries.
func (t *Temporal) Len() int { return len(t.entries) }

// Insert adds (id, at). Out-of-order inserts mark the index for a lazy
// re-sort on the next query.
func (t *Temporal) Insert(id uint64, at time.Time) {
	if n := len(t.entries); n > 0 && at.Before(t.entries[n-1].at) {
		t.sorted = false
	}
	t.entries = append(t.entries, temporalEntry{at: at, id: id})
}

// Remove deletes the entry with the given id and timestamp; absent pairs
// are a no-op.
func (t *Temporal) Remove(id uint64, at time.Time) {
	t.ensureSorted()
	i := sort.Search(len(t.entries), func(i int) bool {
		return !t.entries[i].at.Before(at)
	})
	for ; i < len(t.entries) && t.entries[i].at.Equal(at); i++ {
		if t.entries[i].id == id {
			t.entries = append(t.entries[:i], t.entries[i+1:]...)
			return
		}
	}
}

func (t *Temporal) ensureSorted() {
	if t.sorted {
		return
	}
	sort.Slice(t.entries, func(i, j int) bool {
		if !t.entries[i].at.Equal(t.entries[j].at) {
			return t.entries[i].at.Before(t.entries[j].at)
		}
		return t.entries[i].id < t.entries[j].id
	})
	t.sorted = true
}

// Range returns the IDs captured in [from, to] in ascending time order.
func (t *Temporal) Range(from, to time.Time) []uint64 {
	if to.Before(from) {
		return nil
	}
	t.ensureSorted()
	lo := sort.Search(len(t.entries), func(i int) bool {
		return !t.entries[i].at.Before(from)
	})
	var out []uint64
	for i := lo; i < len(t.entries) && !t.entries[i].at.After(to); i++ {
		out = append(out, t.entries[i].id)
	}
	return out
}

// TimeEntry is one (id, timestamp) hit from a range scan, exposed with
// its timestamp so a sharded merge can interleave per-shard ranges under
// the (At, ID) total order.
type TimeEntry struct {
	ID uint64
	At time.Time
}

// RangeEntries is Range with each hit's timestamp attached, in the same
// ascending time order.
func (t *Temporal) RangeEntries(from, to time.Time) []TimeEntry {
	if to.Before(from) {
		return nil
	}
	t.ensureSorted()
	lo := sort.Search(len(t.entries), func(i int) bool {
		return !t.entries[i].at.Before(from)
	})
	var out []TimeEntry
	for i := lo; i < len(t.entries) && !t.entries[i].at.After(to); i++ {
		out = append(out, TimeEntry{ID: t.entries[i].id, At: t.entries[i].at})
	}
	return out
}

// Latest returns up to k IDs with the most recent timestamps, newest
// first.
func (t *Temporal) Latest(k int) []uint64 {
	if k <= 0 {
		return nil
	}
	t.ensureSorted()
	n := len(t.entries)
	if k > n {
		k = n
	}
	out := make([]uint64, 0, k)
	for i := n - 1; i >= n-k; i-- {
		out = append(out, t.entries[i].id)
	}
	return out
}
