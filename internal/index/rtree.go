// Package index implements TVDP's access paths (paper §IV-C): an R-tree
// with R*-style splits for spatial queries, p-stable LSH for visual
// similarity, an inverted index for textual queries, a sorted temporal
// index, a uniform grid baseline, and a hybrid spatial-visual R-tree that
// prunes on both modalities at once.
package index

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/geo"
)

// RTreeConfig sizes the tree nodes.
type RTreeConfig struct {
	// MaxEntries is the node fan-out M; MinEntries defaults to M*2/5
	// (the R* recommendation) when zero.
	MaxEntries int
	MinEntries int
}

// DefaultRTreeConfig returns M=16, m=6.
func DefaultRTreeConfig() RTreeConfig { return RTreeConfig{MaxEntries: 16} }

// SpatialItem is one indexed object.
type SpatialItem struct {
	ID   uint64
	Rect geo.Rect
}

type rnode struct {
	leaf     bool
	rect     geo.Rect
	items    []SpatialItem // leaf payload
	children []*rnode      // internal payload
}

// RTree is an in-memory R-tree with quadratic-cost R*-flavoured splits.
// It is not safe for concurrent mutation; the store layer serialises
// writers and snapshots for readers.
type RTree struct {
	cfg  RTreeConfig
	root *rnode
	size int
	// path is scratch space reused by chooseLeaf/splitUpward.
	path []pathEntry
}

// ErrBadConfig reports invalid node size parameters.
var ErrBadConfig = errors.New("index: invalid configuration")

// NewRTree returns an empty tree.
func NewRTree(cfg RTreeConfig) (*RTree, error) {
	if cfg.MaxEntries < 4 {
		return nil, fmt.Errorf("%w: MaxEntries %d < 4", ErrBadConfig, cfg.MaxEntries)
	}
	if cfg.MinEntries <= 0 {
		cfg.MinEntries = cfg.MaxEntries * 2 / 5
	}
	if cfg.MinEntries < 2 || cfg.MinEntries > cfg.MaxEntries/2 {
		return nil, fmt.Errorf("%w: MinEntries %d out of [2,%d]", ErrBadConfig, cfg.MinEntries, cfg.MaxEntries/2)
	}
	return &RTree{cfg: cfg, root: &rnode{leaf: true}}, nil
}

// Len returns the number of indexed items.
func (t *RTree) Len() int { return t.size }

// Insert adds an item. Duplicate IDs are allowed (the store enforces
// uniqueness above this layer).
func (t *RTree) Insert(item SpatialItem) error {
	if !item.Rect.Valid() {
		return fmt.Errorf("index: inserting invalid rect %+v", item.Rect)
	}
	leaf := t.chooseLeaf(t.root, item.Rect)
	leaf.items = append(leaf.items, item)
	leaf.rect = extend(leaf, item.Rect)
	t.size++
	t.splitUpward(leaf)
	return nil
}

func extend(n *rnode, r geo.Rect) geo.Rect {
	if len(n.items) == 1 && len(n.children) == 0 && n.leaf {
		return r
	}
	if n.rect.Valid() && (n.rect != geo.Rect{}) {
		return n.rect.Union(r)
	}
	return r
}

// path caching: chooseLeaf records parents for upward adjustment.
type pathEntry struct {
	node *rnode
}

var errNotFound = errors.New("index: item not found")

func (t *RTree) chooseLeaf(n *rnode, r geo.Rect) *rnode {
	t.path = t.path[:0]
	for {
		t.path = append(t.path, pathEntry{n})
		if n.leaf {
			return n
		}
		best := n.children[0]
		bestEnl := math.Inf(1)
		bestArea := math.Inf(1)
		for _, c := range n.children {
			enl := c.rect.Enlargement(r)
			area := c.rect.Area()
			if enl < bestEnl || (enl == bestEnl && area < bestArea) {
				best, bestEnl, bestArea = c, enl, area
			}
		}
		best.rect = best.rect.Union(r)
		n = best
	}
}

// splitUpward splits overflowing nodes along the recorded path.
func (t *RTree) splitUpward(n *rnode) {
	for i := len(t.path) - 1; i >= 0; i-- {
		node := t.path[i].node
		if nodeLen(node) <= t.cfg.MaxEntries {
			continue
		}
		a, b := t.split(node)
		if i == 0 {
			// Root split: grow the tree.
			t.root = &rnode{
				leaf:     false,
				rect:     a.rect.Union(b.rect),
				children: []*rnode{a, b},
			}
			continue
		}
		parent := t.path[i-1].node
		// Replace node with a, append b.
		for j, c := range parent.children {
			if c == node {
				parent.children[j] = a
				break
			}
		}
		parent.children = append(parent.children, b)
	}
}

func nodeLen(n *rnode) int {
	if n.leaf {
		return len(n.items)
	}
	return len(n.children)
}

type splitEntry struct {
	rect  geo.Rect
	item  SpatialItem
	child *rnode
}

func entriesOf(n *rnode) []splitEntry {
	if n.leaf {
		out := make([]splitEntry, len(n.items))
		for i, it := range n.items {
			out[i] = splitEntry{rect: it.Rect, item: it}
		}
		return out
	}
	out := make([]splitEntry, len(n.children))
	for i, c := range n.children {
		out[i] = splitEntry{rect: c.rect, child: c}
	}
	return out
}

// split divides an overflowing node using the R* axis-sort heuristic:
// choose the axis with smallest total margin, then the distribution with
// least overlap (ties by area).
func (t *RTree) split(n *rnode) (*rnode, *rnode) {
	entries := entriesOf(n)
	m := t.cfg.MinEntries
	bestGoodness := math.Inf(1)
	var bestLeft, bestRight []splitEntry
	for axis := 0; axis < 2; axis++ {
		sorted := append([]splitEntry(nil), entries...)
		sort.Slice(sorted, func(i, j int) bool {
			ri, rj := sorted[i].rect, sorted[j].rect
			if axis == 0 {
				if ri.MinLat != rj.MinLat {
					return ri.MinLat < rj.MinLat
				}
				return ri.MaxLat < rj.MaxLat
			}
			if ri.MinLon != rj.MinLon {
				return ri.MinLon < rj.MinLon
			}
			return ri.MaxLon < rj.MaxLon
		})
		for k := m; k <= len(sorted)-m; k++ {
			left, right := sorted[:k], sorted[k:]
			lr, rr := mbrOf(left), mbrOf(right)
			overlap := lr.OverlapArea(rr)
			goodness := overlap*1e6 + lr.Area() + rr.Area()
			if goodness < bestGoodness {
				bestGoodness = goodness
				bestLeft = append([]splitEntry(nil), left...)
				bestRight = append([]splitEntry(nil), right...)
			}
		}
	}
	return buildNode(n.leaf, bestLeft), buildNode(n.leaf, bestRight)
}

func mbrOf(es []splitEntry) geo.Rect {
	r := es[0].rect
	for _, e := range es[1:] {
		r = r.Union(e.rect)
	}
	return r
}

func buildNode(leaf bool, es []splitEntry) *rnode {
	n := &rnode{leaf: leaf, rect: mbrOf(es)}
	if leaf {
		for _, e := range es {
			n.items = append(n.items, e.item)
		}
	} else {
		for _, e := range es {
			n.children = append(n.children, e.child)
		}
	}
	return n
}

// SearchRect returns the IDs of all items whose rect intersects q.
func (t *RTree) SearchRect(q geo.Rect) []uint64 {
	if t.size == 0 {
		return nil
	}
	var out []uint64
	var walk func(n *rnode)
	walk = func(n *rnode) {
		if n.leaf {
			for _, it := range n.items {
				if it.Rect.Intersects(q) {
					out = append(out, it.ID)
				}
			}
			return
		}
		for _, c := range n.children {
			if c.rect.Intersects(q) {
				walk(c)
			}
		}
	}
	walk(t.root)
	return out
}

// SearchPoint returns the IDs of all items whose rect contains p.
func (t *RTree) SearchPoint(p geo.Point) []uint64 {
	return t.SearchRect(geo.Rect{MinLat: p.Lat, MinLon: p.Lon, MaxLat: p.Lat, MaxLon: p.Lon})
}

// NearestK returns up to k item IDs ordered by ascending distance from p
// to the item rect (best-first branch and bound).
func (t *RTree) NearestK(p geo.Point, k int) []uint64 {
	ms := t.NearestKMatches(p, k)
	if len(ms) == 0 {
		return nil
	}
	out := make([]uint64, len(ms))
	for i, m := range ms {
		out[i] = m.ID
	}
	return out
}

// NearestKMatches is NearestK with each hit's point-to-rect distance
// attached, selected under the (Dist, ID) total order: the best-first
// walk pops past the k-th hit while equal-distance items remain, then the
// tie is broken by ID. The total order is what makes a sharded merge of
// per-shard top-k lists reproduce the single-tree result for any
// partitioning.
func (t *RTree) NearestKMatches(p geo.Point, k int) []Match {
	if k <= 0 || t.size == 0 {
		return nil
	}
	type cand struct {
		dist float64
		node *rnode
		item *SpatialItem
	}
	// A simple binary heap.
	var heap []cand
	push := func(c cand) {
		heap = append(heap, c)
		i := len(heap) - 1
		for i > 0 {
			parent := (i - 1) / 2
			if heap[parent].dist <= heap[i].dist {
				break
			}
			heap[parent], heap[i] = heap[i], heap[parent]
			i = parent
		}
	}
	pop := func() cand {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < len(heap) && heap[l].dist < heap[small].dist {
				small = l
			}
			if r < len(heap) && heap[r].dist < heap[small].dist {
				small = r
			}
			if small == i {
				break
			}
			heap[i], heap[small] = heap[small], heap[i]
			i = small
		}
		return top
	}
	push(cand{dist: 0, node: t.root})
	var out []Match
	// kthDist is the distance of the k-th collected hit; once k hits are
	// in, only equal-distance items still compete (on ID), so the walk
	// continues until the heap's best exceeds it.
	kthDist := 0.0
	for len(heap) > 0 {
		if len(out) >= k && heap[0].dist > kthDist {
			break
		}
		c := pop()
		switch {
		case c.item != nil:
			out = append(out, Match{ID: c.item.ID, Dist: c.dist})
			kthDist = c.dist
		case c.node.leaf:
			for i := range c.node.items {
				it := &c.node.items[i]
				push(cand{dist: geo.DistancePointRect(p, it.Rect), item: it})
			}
		default:
			for _, child := range c.node.children {
				push(cand{dist: geo.DistancePointRect(p, child.rect), node: child})
			}
		}
	}
	sortMatches(out)
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// Delete removes one item with the given ID and rect. It reports
// errNotFound (wrapped) when absent. Underflowing leaves are tolerated —
// the tree remains correct, merely less tight, which is the standard
// trade-off for delete-light workloads like TVDP's append-mostly store.
func (t *RTree) Delete(id uint64, r geo.Rect) error {
	var walk func(n *rnode) bool
	walk = func(n *rnode) bool {
		if !n.rect.Intersects(r) && t.size > 1 {
			return false
		}
		if n.leaf {
			for i, it := range n.items {
				if it.ID == id && it.Rect == r {
					n.items = append(n.items[:i], n.items[i+1:]...)
					n.rect = recomputeRect(n)
					return true
				}
			}
			return false
		}
		for _, c := range n.children {
			if walk(c) {
				n.rect = recomputeRect(n)
				return true
			}
		}
		return false
	}
	if !walk(t.root) {
		return fmt.Errorf("index: delete %d: %w", id, errNotFound)
	}
	t.size--
	return nil
}

func recomputeRect(n *rnode) geo.Rect {
	es := entriesOf(n)
	if len(es) == 0 {
		return geo.Rect{}
	}
	return mbrOf(es)
}

// Depth returns the height of the tree (1 for a root-only tree).
func (t *RTree) Depth() int {
	d := 1
	n := t.root
	for !n.leaf {
		d++
		n = n.children[0]
	}
	return d
}
