package index

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"

	"repro/internal/quant"
	"repro/internal/vecmath"
)

// scanCheckpoint is the cancellation-poll cadence of the candidate-scan
// loops: ctx.Err is consulted once per this many candidate distances, so
// a cancelled search returns within one checkpoint grain of work.
const scanCheckpoint = 256

// quantHeadroom widens the quantizer's trained range by this fraction of
// the observed per-dimension spread on both sides, so inserts that drift
// slightly past the seen data don't force a retrain. Each retrain covers
// the then-current data plus headroom again, which keeps retrain
// frequency logarithmic in range growth rather than per-insert.
const quantHeadroom = 0.25

// rerankAlpha and rerankFloor size the exact re-rank shortlist: the
// quantized scan keeps the best k·rerankAlpha (at least rerankFloor)
// candidates by asymmetric distance, and only those are re-scored at
// full precision. The shortlist margin absorbs quantization error in the
// ordering near the cut, so the final top-k matches the full-precision
// top-k in practice (the readpath recall gate pins ≥ 0.9 recall@10).
const (
	rerankAlpha = 4
	rerankFloor = 32
)

// LSH is a locality-sensitive hash index for Euclidean (L2) similarity
// over feature vectors, using p-stable (Gaussian) projections (Datar et
// al., SoCG 2004) — the visual-query index of the paper's §IV-C.
//
// Alongside the full-precision vectors the index maintains an int8
// quantized twin of every vector (internal/quant): candidate scans run
// over the 8×-smaller codes via asymmetric distance tables, and only the
// final shortlist is re-ranked against the float64 vectors.
type LSH struct {
	cfg LSHConfig
	dim int
	// tables[t][bucketKey] -> ids
	tables []map[string][]uint64
	// proj[t][h] is one projection vector; offsets[t][h] its bias.
	proj    [][][]float64
	offsets [][]float64
	// vectors retains indexed data for exact re-ranking.
	vectors map[uint64][]float64
	// The int8 quantized twins live in one contiguous slab (row i is
	// slabIDs[i]'s codes, dim bytes each) rather than a map of slices:
	// the quantized scan is a sequential walk over 1/8th the memory of
	// the float vectors, with no per-candidate pointer chase — which is
	// where its speed advantage over the exact scan comes from. slabPos
	// maps id -> row for the bucketed (non-sequential) lookups; Remove
	// swap-deletes rows to keep the slab dense. quantizer covers every
	// indexed vector (retrained with fresh headroom whenever an insert
	// falls outside the trained range).
	slab      []int8
	slabIDs   []uint64
	slabPos   map[uint64]int
	quantizer *quant.Scalar
	// lutPool recycles per-query asymmetric-distance tables (256·dim
	// float64s — allocating one per query is the read path's largest
	// per-op allocation and shows up as GC tail latency at serving
	// rates). Concurrent readers each Get their own buffer.
	lutPool sync.Pool
}

// LSHConfig sizes the hash family.
type LSHConfig struct {
	// Tables is the number of independent hash tables L.
	Tables int
	// Hashes is the number of concatenated hash functions per table k.
	Hashes int
	// W is the quantisation bucket width of each projection.
	W float64
	// Seed drives projection sampling.
	Seed int64
}

// DefaultLSHConfig returns L=8 tables of k=6 hashes with W=4.
func DefaultLSHConfig(seed int64) LSHConfig {
	return LSHConfig{Tables: 8, Hashes: 6, W: 4, Seed: seed}
}

// NewLSH returns an empty index over dim-dimensional vectors.
func NewLSH(dim int, cfg LSHConfig) (*LSH, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("%w: dim %d", ErrBadConfig, dim)
	}
	if cfg.Tables <= 0 || cfg.Hashes <= 0 || cfg.W <= 0 {
		return nil, fmt.Errorf("%w: %+v", ErrBadConfig, cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	l := &LSH{
		cfg:     cfg,
		dim:     dim,
		tables:  make([]map[string][]uint64, cfg.Tables),
		proj:    make([][][]float64, cfg.Tables),
		offsets: make([][]float64, cfg.Tables),
		vectors: make(map[uint64][]float64),
		slabPos: make(map[uint64]int),
	}
	l.lutPool.New = func() any { return make([]float64, 256*dim) }
	for t := 0; t < cfg.Tables; t++ {
		l.tables[t] = make(map[string][]uint64)
		l.proj[t] = make([][]float64, cfg.Hashes)
		l.offsets[t] = make([]float64, cfg.Hashes)
		for h := 0; h < cfg.Hashes; h++ {
			v := make([]float64, dim)
			for j := range v {
				v[j] = rng.NormFloat64()
			}
			l.proj[t][h] = v
			l.offsets[t][h] = rng.Float64() * cfg.W
		}
	}
	return l, nil
}

// Len returns the number of indexed vectors.
func (l *LSH) Len() int { return len(l.vectors) }

// Dim returns the indexed dimensionality.
func (l *LSH) Dim() int { return l.dim }

func (l *LSH) key(t int, x []float64) string {
	var b strings.Builder
	for h := 0; h < l.cfg.Hashes; h++ {
		dot := l.offsets[t][h] + vecmath.Dot(l.proj[t][h], x)
		fmt.Fprintf(&b, "%d|", int(math.Floor(dot/l.cfg.W)))
	}
	return b.String()
}

// ErrDimMismatch reports a vector of the wrong length.
var ErrDimMismatch = errors.New("index: vector dimension mismatch")

// Insert adds (id, vec). Re-inserting an ID replaces its vector.
func (l *LSH) Insert(id uint64, vec []float64) error {
	if len(vec) != l.dim {
		return fmt.Errorf("%w: got %d, want %d", ErrDimMismatch, len(vec), l.dim)
	}
	if _, ok := l.vectors[id]; ok {
		l.Remove(id)
	}
	cp := append([]float64(nil), vec...)
	l.vectors[id] = cp
	for t := range l.tables {
		k := l.key(t, cp)
		l.tables[t][k] = append(l.tables[t][k], id)
	}
	return l.encode(id, cp)
}

// encode maintains the quantized twin of one freshly inserted vector,
// retraining the quantizer over the full data (plus headroom) whenever
// the vector escapes the trained range.
func (l *LSH) encode(id uint64, vec []float64) error {
	if l.quantizer == nil || !l.quantizer.Covers(vec) {
		return l.retrain()
	}
	codes, err := l.quantizer.Encode(vec)
	if err != nil {
		return err
	}
	l.appendRow(id, codes)
	return nil
}

// appendRow adds one code row to the slab. The id must not already have
// a row (Insert removes first on replacement).
func (l *LSH) appendRow(id uint64, codes []int8) {
	l.slabPos[id] = len(l.slabIDs)
	l.slabIDs = append(l.slabIDs, id)
	l.slab = append(l.slab, codes...)
}

// row returns the code row at slab position pos.
func (l *LSH) row(pos int) []int8 {
	return l.slab[pos*l.dim : (pos+1)*l.dim]
}

// retrain refits the quantizer to every indexed vector and re-encodes
// all codes. O(n·dim), amortised by quantHeadroom: each retrain covers a
// widened range, so a drifting stream triggers retrains at most
// logarithmically often in its total range growth. Order-independent —
// min/max fitting and per-id encoding don't depend on map iteration.
func (l *LSH) retrain() error {
	all := make([][]float64, 0, len(l.vectors))
	for _, v := range l.vectors {
		all = append(all, v)
	}
	qz, err := quant.Train(all, quantHeadroom)
	if err != nil {
		return err
	}
	l.quantizer = qz
	// Re-encode existing rows in place (slab order is irrelevant to
	// results — selection is under a total order), then append rows for
	// vectors not yet in the slab (the insert that triggered retrain).
	for i, id := range l.slabIDs {
		codes, err := qz.Encode(l.vectors[id])
		if err != nil {
			return err
		}
		copy(l.row(i), codes)
	}
	for id, v := range l.vectors {
		if _, ok := l.slabPos[id]; ok {
			continue
		}
		codes, err := qz.Encode(v)
		if err != nil {
			return err
		}
		l.appendRow(id, codes)
	}
	return nil
}

// Remove deletes an ID; absent IDs are a no-op.
func (l *LSH) Remove(id uint64) {
	vec, ok := l.vectors[id]
	if !ok {
		return
	}
	for t := range l.tables {
		k := l.key(t, vec)
		bucket := l.tables[t][k]
		for i, v := range bucket {
			if v == id {
				l.tables[t][k] = append(bucket[:i], bucket[i+1:]...)
				break
			}
		}
		if len(l.tables[t][k]) == 0 {
			delete(l.tables[t], k)
		}
	}
	delete(l.vectors, id)
	if pos, ok := l.slabPos[id]; ok {
		last := len(l.slabIDs) - 1
		if pos != last {
			lastID := l.slabIDs[last]
			copy(l.row(pos), l.row(last))
			l.slabIDs[pos] = lastID
			l.slabPos[lastID] = pos
		}
		l.slab = l.slab[:last*l.dim]
		l.slabIDs = l.slabIDs[:last]
		delete(l.slabPos, id)
	}
}

// candidates gathers the union of bucket contents across tables, checking
// for cancellation between tables (each table probe is one hash + one
// bucket append run; the boundary between them is the natural abort
// point).
func (l *LSH) candidates(ctx context.Context, q []float64) (map[uint64]bool, error) {
	set := make(map[uint64]bool)
	for t := range l.tables {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for _, id := range l.tables[t][l.key(t, q)] {
			set[id] = true
		}
	}
	return set, nil
}

// shortlistSize is the exact-re-rank shortlist length for a top-k query.
func shortlistSize(k int) int {
	if s := k * rerankAlpha; s > rerankFloor {
		return s
	}
	return rerankFloor
}

// rerank re-scores the best shortlist entries of approx at full
// precision and returns the top k by true distance (still squared;
// callers finalize). approx must already be sorted ascending.
func (l *LSH) rerank(ctx context.Context, q []float64, approx []Match, k int) ([]Match, error) {
	if shortlist := shortlistSize(k); len(approx) > shortlist {
		approx = approx[:shortlist]
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i := range approx {
		approx[i].Dist = vecmath.SquaredL2(q, l.vectors[approx[i].ID])
	}
	sortMatches(approx)
	if len(approx) > k {
		approx = approx[:k]
	}
	return approx, nil
}

// TopK returns up to k approximate nearest neighbours of q, ordered by
// ascending L2 distance: LSH buckets propose candidates, the quantized
// codes order them cheaply, and the top k·rerankAlpha shortlist is
// re-ranked at full precision (so the returned ordering is exact over
// the candidate set up to quantization error at the shortlist cut). The
// scan honours ctx between hash tables and every scanCheckpoint
// candidates.
func (l *LSH) TopK(ctx context.Context, q []float64, k int) ([]Match, error) {
	if len(q) != l.dim {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrDimMismatch, len(q), l.dim)
	}
	if k <= 0 {
		return nil, nil
	}
	cands, err := l.candidates(ctx, q)
	if err != nil {
		return nil, err
	}
	if len(cands) == 0 {
		return nil, nil
	}
	lut := l.lutPool.Get().([]float64)
	defer l.lutPool.Put(lut)
	if err := l.quantizer.TableInto(lut, q); err != nil {
		return nil, err
	}
	sel := newTopSelector(shortlistSize(k))
	scanned := 0
	for id := range cands {
		if scanned%scanCheckpoint == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		scanned++
		sel.offer(Match{ID: id, Dist: vecmath.SquaredL2Int8(l.row(l.slabPos[id]), lut)})
	}
	out, err := l.rerank(ctx, q, sel.results(), k)
	if err != nil {
		return nil, err
	}
	finalizeMatches(out)
	return out, nil
}

// QuantTopK returns up to k approximate nearest neighbours of q by a
// full quantized scan over every indexed code (no LSH bucketing), with
// the usual full-precision shortlist re-rank. It is the cheap linear
// baseline of the readpath figure: same scan shape as ExactTopK but
// reading 1 byte per dimension instead of 8.
func (l *LSH) QuantTopK(ctx context.Context, q []float64, k int) ([]Match, error) {
	if len(q) != l.dim {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrDimMismatch, len(q), l.dim)
	}
	if k <= 0 || len(l.slabIDs) == 0 {
		return nil, nil
	}
	lut := l.lutPool.Get().([]float64)
	defer l.lutPool.Put(lut)
	if err := l.quantizer.TableInto(lut, q); err != nil {
		return nil, err
	}
	sel := newTopSelector(shortlistSize(k))
	for pos := range l.slabIDs {
		if pos%scanCheckpoint == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		sel.offer(Match{ID: l.slabIDs[pos], Dist: vecmath.SquaredL2Int8(l.row(pos), lut)})
	}
	out, err := l.rerank(ctx, q, sel.results(), k)
	if err != nil {
		return nil, err
	}
	finalizeMatches(out)
	return out, nil
}

// WithinRadius returns all candidates within L2 distance <= r of q,
// ordered by ascending distance (the threshold visual query of §IV-C).
// The quantized codes prefilter at radius r+ErrBound — no vector within
// r of q can have a reconstruction farther than that, so the prefilter
// admits no false negatives — and only survivors pay a full-precision
// distance, compared against r².
func (l *LSH) WithinRadius(ctx context.Context, q []float64, r float64) ([]Match, error) {
	if len(q) != l.dim {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrDimMismatch, len(q), l.dim)
	}
	cands, err := l.candidates(ctx, q)
	if err != nil {
		return nil, err
	}
	if len(cands) == 0 {
		return nil, nil
	}
	lut := l.lutPool.Get().([]float64)
	defer l.lutPool.Put(lut)
	if err := l.quantizer.TableInto(lut, q); err != nil {
		return nil, err
	}
	pre := r + l.quantizer.ErrBound()
	pre2 := pre * pre
	r2 := r * r
	var out []Match
	scanned := 0
	for id := range cands {
		if scanned%scanCheckpoint == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		scanned++
		if vecmath.SquaredL2Int8(l.row(l.slabPos[id]), lut) > pre2 {
			continue
		}
		if d2 := vecmath.SquaredL2(q, l.vectors[id]); d2 <= r2 {
			out = append(out, Match{ID: id, Dist: d2})
		}
	}
	sortMatches(out)
	finalizeMatches(out)
	return out, nil
}

// ExactTopK linearly scans every indexed vector at full precision — the
// ground-truth baseline the LSH ablation (bench A2) and the readpath
// figure compare against. The scan honours ctx every scanCheckpoint
// vectors.
func (l *LSH) ExactTopK(ctx context.Context, q []float64, k int) ([]Match, error) {
	if len(q) != l.dim {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrDimMismatch, len(q), l.dim)
	}
	if k <= 0 {
		return nil, nil
	}
	sel := newTopSelector(k)
	scanned := 0
	for id, v := range l.vectors {
		if scanned%scanCheckpoint == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		scanned++
		sel.offer(Match{ID: id, Dist: vecmath.SquaredL2(q, v)})
	}
	out := sel.results()
	finalizeMatches(out)
	return out, nil
}
