package index

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// scanCheckpoint is the cancellation-poll cadence of the exact re-rank
// loops: ctx.Err is consulted once per this many candidate distances, so
// a cancelled search returns within one checkpoint grain of work.
const scanCheckpoint = 256

// LSH is a locality-sensitive hash index for Euclidean (L2) similarity
// over feature vectors, using p-stable (Gaussian) projections (Datar et
// al., SoCG 2004) — the visual-query index of the paper's §IV-C.
type LSH struct {
	cfg LSHConfig
	dim int
	// tables[t][bucketKey] -> ids
	tables []map[string][]uint64
	// proj[t][h] is one projection vector; offsets[t][h] its bias.
	proj    [][][]float64
	offsets [][]float64
	// vectors retains indexed data for exact re-ranking.
	vectors map[uint64][]float64
}

// LSHConfig sizes the hash family.
type LSHConfig struct {
	// Tables is the number of independent hash tables L.
	Tables int
	// Hashes is the number of concatenated hash functions per table k.
	Hashes int
	// W is the quantisation bucket width of each projection.
	W float64
	// Seed drives projection sampling.
	Seed int64
}

// DefaultLSHConfig returns L=8 tables of k=6 hashes with W=4.
func DefaultLSHConfig(seed int64) LSHConfig {
	return LSHConfig{Tables: 8, Hashes: 6, W: 4, Seed: seed}
}

// NewLSH returns an empty index over dim-dimensional vectors.
func NewLSH(dim int, cfg LSHConfig) (*LSH, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("%w: dim %d", ErrBadConfig, dim)
	}
	if cfg.Tables <= 0 || cfg.Hashes <= 0 || cfg.W <= 0 {
		return nil, fmt.Errorf("%w: %+v", ErrBadConfig, cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	l := &LSH{
		cfg:     cfg,
		dim:     dim,
		tables:  make([]map[string][]uint64, cfg.Tables),
		proj:    make([][][]float64, cfg.Tables),
		offsets: make([][]float64, cfg.Tables),
		vectors: make(map[uint64][]float64),
	}
	for t := 0; t < cfg.Tables; t++ {
		l.tables[t] = make(map[string][]uint64)
		l.proj[t] = make([][]float64, cfg.Hashes)
		l.offsets[t] = make([]float64, cfg.Hashes)
		for h := 0; h < cfg.Hashes; h++ {
			v := make([]float64, dim)
			for j := range v {
				v[j] = rng.NormFloat64()
			}
			l.proj[t][h] = v
			l.offsets[t][h] = rng.Float64() * cfg.W
		}
	}
	return l, nil
}

// Len returns the number of indexed vectors.
func (l *LSH) Len() int { return len(l.vectors) }

// Dim returns the indexed dimensionality.
func (l *LSH) Dim() int { return l.dim }

func (l *LSH) key(t int, x []float64) string {
	var b strings.Builder
	for h := 0; h < l.cfg.Hashes; h++ {
		dot := l.offsets[t][h]
		for j, v := range x {
			dot += l.proj[t][h][j] * v
		}
		fmt.Fprintf(&b, "%d|", int(math.Floor(dot/l.cfg.W)))
	}
	return b.String()
}

// ErrDimMismatch reports a vector of the wrong length.
var ErrDimMismatch = errors.New("index: vector dimension mismatch")

// Insert adds (id, vec). Re-inserting an ID replaces its vector.
func (l *LSH) Insert(id uint64, vec []float64) error {
	if len(vec) != l.dim {
		return fmt.Errorf("%w: got %d, want %d", ErrDimMismatch, len(vec), l.dim)
	}
	if _, ok := l.vectors[id]; ok {
		l.Remove(id)
	}
	cp := append([]float64(nil), vec...)
	l.vectors[id] = cp
	for t := range l.tables {
		k := l.key(t, cp)
		l.tables[t][k] = append(l.tables[t][k], id)
	}
	return nil
}

// Remove deletes an ID; absent IDs are a no-op.
func (l *LSH) Remove(id uint64) {
	vec, ok := l.vectors[id]
	if !ok {
		return
	}
	for t := range l.tables {
		k := l.key(t, vec)
		bucket := l.tables[t][k]
		for i, v := range bucket {
			if v == id {
				l.tables[t][k] = append(bucket[:i], bucket[i+1:]...)
				break
			}
		}
		if len(l.tables[t][k]) == 0 {
			delete(l.tables[t], k)
		}
	}
	delete(l.vectors, id)
}

// Match is a scored search hit.
type Match struct {
	ID   uint64
	Dist float64
}

// candidates gathers the union of bucket contents across tables, checking
// for cancellation between tables (each table probe is one hash + one
// bucket append run; the boundary between them is the natural abort
// point).
func (l *LSH) candidates(ctx context.Context, q []float64) (map[uint64]bool, error) {
	set := make(map[uint64]bool)
	for t := range l.tables {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for _, id := range l.tables[t][l.key(t, q)] {
			set[id] = true
		}
	}
	return set, nil
}

// TopK returns up to k approximate nearest neighbours of q by exact
// re-ranking of LSH candidates, ordered by ascending L2 distance. The
// scan honours ctx between hash tables and every scanCheckpoint
// candidates of the re-rank.
func (l *LSH) TopK(ctx context.Context, q []float64, k int) ([]Match, error) {
	if len(q) != l.dim {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrDimMismatch, len(q), l.dim)
	}
	if k <= 0 {
		return nil, nil
	}
	cands, err := l.candidates(ctx, q)
	if err != nil {
		return nil, err
	}
	out := make([]Match, 0, len(cands))
	for id := range cands {
		if len(out)%scanCheckpoint == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		out = append(out, Match{ID: id, Dist: l2(q, l.vectors[id])})
	}
	sortMatches(out)
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}

// WithinRadius returns all candidates within L2 distance <= r of q,
// ordered by ascending distance (the threshold visual query of §IV-C).
func (l *LSH) WithinRadius(ctx context.Context, q []float64, r float64) ([]Match, error) {
	if len(q) != l.dim {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrDimMismatch, len(q), l.dim)
	}
	cands, err := l.candidates(ctx, q)
	if err != nil {
		return nil, err
	}
	var out []Match
	scanned := 0
	for id := range cands {
		if scanned%scanCheckpoint == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		scanned++
		if d := l2(q, l.vectors[id]); d <= r {
			out = append(out, Match{ID: id, Dist: d})
		}
	}
	sortMatches(out)
	return out, nil
}

// ExactTopK linearly scans every indexed vector — the ground-truth
// baseline the LSH ablation (bench A2) compares against. The scan honours
// ctx every scanCheckpoint vectors.
func (l *LSH) ExactTopK(ctx context.Context, q []float64, k int) ([]Match, error) {
	if len(q) != l.dim {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrDimMismatch, len(q), l.dim)
	}
	if k <= 0 {
		return nil, nil
	}
	out := make([]Match, 0, len(l.vectors))
	for id, v := range l.vectors {
		if len(out)%scanCheckpoint == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		out = append(out, Match{ID: id, Dist: l2(q, v)})
	}
	sortMatches(out)
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}

func sortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Dist != ms[j].Dist {
			return ms[i].Dist < ms[j].Dist
		}
		return ms[i].ID < ms[j].ID
	})
}

func l2(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
