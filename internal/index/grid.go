package index

import (
	"fmt"

	"repro/internal/geo"
)

// Grid is a fixed uniform spatial grid over a bounded region — the
// baseline the spatial-index ablation (bench A1) compares the R-tree
// against. Items are registered in every cell their rect touches.
type Grid struct {
	bounds     geo.Rect
	rows, cols int
	cells      [][]SpatialItem
}

// NewGrid partitions bounds into rows x cols cells.
func NewGrid(bounds geo.Rect, rows, cols int) (*Grid, error) {
	if !bounds.Valid() || bounds.Area() == 0 {
		return nil, fmt.Errorf("%w: degenerate bounds %+v", ErrBadConfig, bounds)
	}
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("%w: %dx%d grid", ErrBadConfig, rows, cols)
	}
	return &Grid{
		bounds: bounds, rows: rows, cols: cols,
		cells: make([][]SpatialItem, rows*cols),
	}, nil
}

func (g *Grid) cellRange(r geo.Rect) (r0, r1, c0, c1 int, ok bool) {
	ix, found := g.bounds.Intersection(r)
	if !found {
		return 0, 0, 0, 0, false
	}
	latSpan := g.bounds.MaxLat - g.bounds.MinLat
	lonSpan := g.bounds.MaxLon - g.bounds.MinLon
	rowOf := func(lat float64) int {
		row := int((lat - g.bounds.MinLat) / latSpan * float64(g.rows))
		if row < 0 {
			row = 0
		}
		if row >= g.rows {
			row = g.rows - 1
		}
		return row
	}
	colOf := func(lon float64) int {
		col := int((lon - g.bounds.MinLon) / lonSpan * float64(g.cols))
		if col < 0 {
			col = 0
		}
		if col >= g.cols {
			col = g.cols - 1
		}
		return col
	}
	return rowOf(ix.MinLat), rowOf(ix.MaxLat), colOf(ix.MinLon), colOf(ix.MaxLon), true
}

// Insert registers the item in all overlapping cells. Items entirely
// outside the bounds are rejected.
func (g *Grid) Insert(item SpatialItem) error {
	if !item.Rect.Valid() {
		return fmt.Errorf("index: grid insert invalid rect %+v", item.Rect)
	}
	r0, r1, c0, c1, ok := g.cellRange(item.Rect)
	if !ok {
		return fmt.Errorf("index: grid insert %d outside bounds", item.ID)
	}
	for r := r0; r <= r1; r++ {
		for c := c0; c <= c1; c++ {
			g.cells[r*g.cols+c] = append(g.cells[r*g.cols+c], item)
		}
	}
	return nil
}

// SearchRect returns IDs of items intersecting q (deduplicated).
func (g *Grid) SearchRect(q geo.Rect) []uint64 {
	r0, r1, c0, c1, ok := g.cellRange(q)
	if !ok {
		return nil
	}
	seen := make(map[uint64]bool)
	var out []uint64
	for r := r0; r <= r1; r++ {
		for c := c0; c <= c1; c++ {
			for _, it := range g.cells[r*g.cols+c] {
				if !seen[it.ID] && it.Rect.Intersects(q) {
					seen[it.ID] = true
					out = append(out, it.ID)
				}
			}
		}
	}
	return out
}

// LinearScan is the no-index baseline: a plain slice of items scanned per
// query.
type LinearScan struct {
	items []SpatialItem
}

// NewLinearScan returns an empty scan baseline.
func NewLinearScan() *LinearScan { return &LinearScan{} }

// Insert appends the item.
func (s *LinearScan) Insert(item SpatialItem) { s.items = append(s.items, item) }

// Len returns the item count.
func (s *LinearScan) Len() int { return len(s.items) }

// SearchRect scans all items.
func (s *LinearScan) SearchRect(q geo.Rect) []uint64 {
	var out []uint64
	for _, it := range s.items {
		if it.Rect.Intersects(q) {
			out = append(out, it.ID)
		}
	}
	return out
}
