package index

import (
	"math"
	"sort"
	"strings"
)

// Inverted is a keyword → posting-list index with TF-IDF ranking for the
// textual queries of §IV-C (Zobel & Moffat style inverted files).
type Inverted struct {
	// postings[term][docID] = term frequency.
	postings map[string]map[uint64]int
	// docLens[docID] = token count; also the document registry.
	docLens map[uint64]int
}

// NewInverted returns an empty index.
func NewInverted() *Inverted {
	return &Inverted{
		postings: make(map[string]map[uint64]int),
		docLens:  make(map[uint64]int),
	}
}

// Tokenize lower-cases and splits text on non-alphanumeric runes.
func Tokenize(text string) []string {
	return strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !(r >= 'a' && r <= 'z' || r >= '0' && r <= '9')
	})
}

// Add indexes the document's terms; re-adding an ID merges new terms into
// the existing posting lists (keywords accumulate on TVDP images).
func (ix *Inverted) Add(id uint64, terms []string) {
	for _, t := range terms {
		t = strings.ToLower(t)
		if t == "" {
			continue
		}
		m := ix.postings[t]
		if m == nil {
			m = make(map[uint64]int)
			ix.postings[t] = m
		}
		m[id]++
		ix.docLens[id]++
	}
}

// AddText tokenizes free text and indexes it.
func (ix *Inverted) AddText(id uint64, text string) {
	ix.Add(id, Tokenize(text))
}

// Remove deletes a document from every posting list.
func (ix *Inverted) Remove(id uint64) {
	if _, ok := ix.docLens[id]; !ok {
		return
	}
	for term, m := range ix.postings {
		delete(m, id)
		if len(m) == 0 {
			delete(ix.postings, term)
		}
	}
	delete(ix.docLens, id)
}

// Docs returns the number of indexed documents.
func (ix *Inverted) Docs() int { return len(ix.docLens) }

// Terms returns the vocabulary size.
func (ix *Inverted) Terms() int { return len(ix.postings) }

// SearchAny returns documents matching at least one query term, ranked by
// TF-IDF score descending (ties by ascending ID).
func (ix *Inverted) SearchAny(terms []string) []Match {
	scores := make(map[uint64]float64)
	n := float64(len(ix.docLens))
	if n == 0 {
		return nil
	}
	for _, t := range terms {
		t = strings.ToLower(t)
		m := ix.postings[t]
		if len(m) == 0 {
			continue
		}
		idf := math.Log2(n/float64(len(m))) + 1
		for id, tf := range m {
			scores[id] += float64(tf) * idf
		}
	}
	out := make([]Match, 0, len(scores))
	for id, s := range scores {
		// Higher score = better; reuse Match.Dist as the score with
		// descending sort below.
		out = append(out, Match{ID: id, Dist: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist > out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// SearchAll returns documents containing every query term (conjunctive),
// ranked by TF-IDF.
func (ix *Inverted) SearchAll(terms []string) []Match {
	if len(terms) == 0 {
		return nil
	}
	any := ix.SearchAny(terms)
	out := any[:0]
	for _, m := range any {
		hasAll := true
		for _, t := range terms {
			if ix.postings[strings.ToLower(t)][m.ID] == 0 {
				hasAll = false
				break
			}
		}
		if hasAll {
			out = append(out, m)
		}
	}
	return out
}
