package index

import (
	"math"
	"sort"
	"strings"
)

// Inverted is a keyword → posting-list index with TF-IDF ranking for the
// textual queries of §IV-C (Zobel & Moffat style inverted files).
type Inverted struct {
	// postings[term][docID] = term frequency.
	postings map[string]map[uint64]int
	// docLens[docID] = token count; also the document registry.
	docLens map[uint64]int
}

// NewInverted returns an empty index.
func NewInverted() *Inverted {
	return &Inverted{
		postings: make(map[string]map[uint64]int),
		docLens:  make(map[uint64]int),
	}
}

// Tokenize lower-cases and splits text on non-alphanumeric runes.
func Tokenize(text string) []string {
	return strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !(r >= 'a' && r <= 'z' || r >= '0' && r <= '9')
	})
}

// Add indexes the document's terms; re-adding an ID merges new terms into
// the existing posting lists (keywords accumulate on TVDP images).
func (ix *Inverted) Add(id uint64, terms []string) {
	for _, t := range terms {
		t = strings.ToLower(t)
		if t == "" {
			continue
		}
		m := ix.postings[t]
		if m == nil {
			m = make(map[uint64]int)
			ix.postings[t] = m
		}
		m[id]++
		ix.docLens[id]++
	}
}

// AddText tokenizes free text and indexes it.
func (ix *Inverted) AddText(id uint64, text string) {
	ix.Add(id, Tokenize(text))
}

// Remove deletes a document from every posting list.
func (ix *Inverted) Remove(id uint64) {
	if _, ok := ix.docLens[id]; !ok {
		return
	}
	for term, m := range ix.postings {
		delete(m, id)
		if len(m) == 0 {
			delete(ix.postings, term)
		}
	}
	delete(ix.docLens, id)
}

// Docs returns the number of indexed documents.
func (ix *Inverted) Docs() int { return len(ix.docLens) }

// Terms returns the vocabulary size.
func (ix *Inverted) Terms() int { return len(ix.postings) }

// DocFreqs returns the corpus statistics the TF-IDF scorer consumes: the
// number of indexed documents and, aligned with terms, each term's
// document frequency in this index. A sharded deployment sums these
// across shards and feeds the totals back through SearchAnyStats /
// SearchAllStats, so per-shard scoring uses global IDF and matches a
// single-index build bit for bit.
func (ix *Inverted) DocFreqs(terms []string) (docs int, df []int) {
	df = make([]int, len(terms))
	for i, t := range terms {
		df[i] = len(ix.postings[strings.ToLower(t)])
	}
	return len(ix.docLens), df
}

// SearchAny returns documents matching at least one query term, ranked by
// TF-IDF score descending (ties by ascending ID).
func (ix *Inverted) SearchAny(terms []string) []Match {
	docs, df := ix.DocFreqs(terms)
	return ix.SearchAnyStats(terms, docs, df)
}

// SearchAnyStats is SearchAny scored with caller-supplied corpus
// statistics (docs and per-term document frequencies, as from DocFreqs —
// possibly summed over several indexes). Posting lists still come from
// this index; only the IDF weights use the supplied stats.
func (ix *Inverted) SearchAnyStats(terms []string, docs int, df []int) []Match {
	scores := make(map[uint64]float64)
	n := float64(docs)
	if n == 0 {
		return nil
	}
	for i, t := range terms {
		t = strings.ToLower(t)
		m := ix.postings[t]
		if len(m) == 0 || df[i] == 0 {
			continue
		}
		idf := math.Log2(n/float64(df[i])) + 1
		for id, tf := range m {
			scores[id] += float64(tf) * idf
		}
	}
	if len(scores) == 0 {
		return nil
	}
	out := make([]Match, 0, len(scores))
	for id, s := range scores {
		// Higher score = better; reuse Match.Dist as the score with
		// descending sort below.
		out = append(out, Match{ID: id, Dist: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist > out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// SearchAll returns documents containing every query term (conjunctive),
// ranked by TF-IDF.
func (ix *Inverted) SearchAll(terms []string) []Match {
	docs, df := ix.DocFreqs(terms)
	return ix.SearchAllStats(terms, docs, df)
}

// SearchAllStats is SearchAll scored with caller-supplied corpus
// statistics (see SearchAnyStats). The conjunctive filter still tests
// this index's own postings: a document must carry every term locally,
// which holds in a sharded deployment because all keywords of one image
// live on its shard.
func (ix *Inverted) SearchAllStats(terms []string, docs int, df []int) []Match {
	if len(terms) == 0 {
		return nil
	}
	any := ix.SearchAnyStats(terms, docs, df)
	out := any[:0]
	for _, m := range any {
		hasAll := true
		for _, t := range terms {
			if ix.postings[strings.ToLower(t)][m.ID] == 0 {
				hasAll = false
				break
			}
		}
		if hasAll {
			out = append(out, m)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
