package index

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/geo"
	"repro/internal/vecmath"
)

func randRect(rng *rand.Rand) geo.Rect {
	lat := 34 + rng.Float64()*0.2
	lon := -118.4 + rng.Float64()*0.2
	return geo.Rect{
		MinLat: lat, MinLon: lon,
		MaxLat: lat + rng.Float64()*0.01, MaxLon: lon + rng.Float64()*0.01,
	}
}

func buildRTree(t testing.TB, n int, seed int64) (*RTree, []SpatialItem) {
	t.Helper()
	tr, err := NewRTree(DefaultRTreeConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	items := make([]SpatialItem, n)
	for i := range items {
		items[i] = SpatialItem{ID: uint64(i), Rect: randRect(rng)}
		if err := tr.Insert(items[i]); err != nil {
			t.Fatal(err)
		}
	}
	return tr, items
}

func idSet(ids []uint64) map[uint64]bool {
	m := make(map[uint64]bool, len(ids))
	for _, id := range ids {
		m[id] = true
	}
	return m
}

func TestNewRTreeValidation(t *testing.T) {
	if _, err := NewRTree(RTreeConfig{MaxEntries: 2}); err == nil {
		t.Fatal("tiny M accepted")
	}
	if _, err := NewRTree(RTreeConfig{MaxEntries: 8, MinEntries: 7}); err == nil {
		t.Fatal("m > M/2 accepted")
	}
	tr, err := NewRTree(RTreeConfig{MaxEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 || tr.Depth() != 1 {
		t.Fatal("empty tree shape wrong")
	}
}

func TestRTreeMatchesLinearScan(t *testing.T) {
	tr, items := buildRTree(t, 500, 1)
	scan := NewLinearScan()
	for _, it := range items {
		scan.Insert(it)
	}
	rng := rand.New(rand.NewSource(2))
	for q := 0; q < 50; q++ {
		query := randRect(rng)
		query.MaxLat += 0.02
		query.MaxLon += 0.02
		got := idSet(tr.SearchRect(query))
		want := idSet(scan.SearchRect(query))
		if len(got) != len(want) {
			t.Fatalf("query %d: rtree %d hits, scan %d", q, len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("query %d: missing id %d", q, id)
			}
		}
	}
}

func TestRTreeGrowsAndBalances(t *testing.T) {
	tr, _ := buildRTree(t, 2000, 3)
	if tr.Len() != 2000 {
		t.Fatalf("len = %d", tr.Len())
	}
	if d := tr.Depth(); d < 2 || d > 6 {
		t.Fatalf("depth = %d for 2000 items", d)
	}
}

func TestRTreeInsertInvalidRect(t *testing.T) {
	tr, _ := buildRTree(t, 1, 1)
	bad := geo.Rect{MinLat: 2, MaxLat: 1}
	if err := tr.Insert(SpatialItem{ID: 9, Rect: bad}); err == nil {
		t.Fatal("invalid rect accepted")
	}
}

func TestRTreeSearchPoint(t *testing.T) {
	tr, err := NewRTree(DefaultRTreeConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := geo.Rect{MinLat: 34, MinLon: -118, MaxLat: 34.1, MaxLon: -117.9}
	if err := tr.Insert(SpatialItem{ID: 1, Rect: r}); err != nil {
		t.Fatal(err)
	}
	if got := tr.SearchPoint(geo.Point{Lat: 34.05, Lon: -117.95}); len(got) != 1 || got[0] != 1 {
		t.Fatalf("point hit = %v", got)
	}
	if got := tr.SearchPoint(geo.Point{Lat: 35, Lon: -117.95}); len(got) != 0 {
		t.Fatalf("point miss = %v", got)
	}
}

func TestRTreeNearestK(t *testing.T) {
	tr, items := buildRTree(t, 300, 4)
	p := geo.Point{Lat: 34.1, Lon: -118.3}
	got := tr.NearestK(p, 10)
	if len(got) != 10 {
		t.Fatalf("NearestK returned %d", len(got))
	}
	// Verify against exhaustive ordering.
	type di struct {
		id uint64
		d  float64
	}
	all := make([]di, len(items))
	for i, it := range items {
		all[i] = di{id: it.ID, d: geo.DistancePointRect(p, it.Rect)}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].d < all[j].d })
	wantSet := map[uint64]bool{}
	// Allow ties at the boundary: collect distances.
	kth := all[9].d
	for _, e := range all {
		if e.d <= kth+1e-9 {
			wantSet[e.id] = true
		}
	}
	for _, id := range got {
		if !wantSet[id] {
			t.Fatalf("NearestK returned non-near id %d", id)
		}
	}
	// Results are distance-ordered.
	distOf := map[uint64]float64{}
	for _, e := range all {
		distOf[e.id] = e.d
	}
	for i := 1; i < len(got); i++ {
		if distOf[got[i]] < distOf[got[i-1]]-1e-9 {
			t.Fatal("NearestK not distance ordered")
		}
	}
	if got := tr.NearestK(p, 0); got != nil {
		t.Fatal("k=0 should return nil")
	}
	if got := tr.NearestK(p, 1000); len(got) != 300 {
		t.Fatalf("k>n returned %d", len(got))
	}
}

func TestRTreeDelete(t *testing.T) {
	tr, items := buildRTree(t, 100, 5)
	victim := items[37]
	if err := tr.Delete(victim.ID, victim.Rect); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 99 {
		t.Fatalf("len after delete = %d", tr.Len())
	}
	for _, id := range tr.SearchRect(victim.Rect) {
		if id == victim.ID {
			t.Fatal("deleted item still found")
		}
	}
	if err := tr.Delete(victim.ID, victim.Rect); err == nil {
		t.Fatal("double delete accepted")
	}
}

func TestRTreeSearchContainmentProperty(t *testing.T) {
	// Property: every inserted item is findable by its own rect.
	f := func(seed int64) bool {
		tr, items := buildRTree(t, 64, seed)
		for _, it := range items {
			found := false
			for _, id := range tr.SearchRect(it.Rect) {
				if id == it.ID {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestGridMatchesScan(t *testing.T) {
	bounds := geo.Rect{MinLat: 33.9, MinLon: -118.5, MaxLat: 34.3, MaxLon: -118.0}
	g, err := NewGrid(bounds, 20, 20)
	if err != nil {
		t.Fatal(err)
	}
	scan := NewLinearScan()
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 400; i++ {
		it := SpatialItem{ID: uint64(i), Rect: randRect(rng)}
		if err := g.Insert(it); err != nil {
			t.Fatal(err)
		}
		scan.Insert(it)
	}
	for q := 0; q < 30; q++ {
		query := randRect(rng)
		query.MaxLat += 0.05
		query.MaxLon += 0.05
		got := idSet(g.SearchRect(query))
		want := idSet(scan.SearchRect(query))
		if len(got) != len(want) {
			t.Fatalf("grid %d hits, scan %d", len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("grid missing %d", id)
			}
		}
	}
}

func TestGridValidation(t *testing.T) {
	bounds := geo.Rect{MinLat: 0, MinLon: 0, MaxLat: 1, MaxLon: 1}
	if _, err := NewGrid(bounds, 0, 5); err == nil {
		t.Fatal("zero rows accepted")
	}
	if _, err := NewGrid(geo.Rect{}, 5, 5); err == nil {
		t.Fatal("degenerate bounds accepted")
	}
	g, _ := NewGrid(bounds, 4, 4)
	outside := SpatialItem{ID: 1, Rect: geo.Rect{MinLat: 5, MinLon: 5, MaxLat: 6, MaxLon: 6}}
	if err := g.Insert(outside); err == nil {
		t.Fatal("outside insert accepted")
	}
	if got := g.SearchRect(outside.Rect); got != nil {
		t.Fatal("outside query should be empty")
	}
}

func randVec(rng *rand.Rand, dim int) []float64 {
	v := make([]float64, dim)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestLSHFindsNearDuplicates(t *testing.T) {
	const dim = 16
	l, err := NewLSH(dim, DefaultLSHConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	base := randVec(rng, dim)
	// id 0 is a near-duplicate of the query; the rest are random.
	if err := l.Insert(0, base); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 200; i++ {
		if err := l.Insert(uint64(i), randVec(rng, dim)); err != nil {
			t.Fatal(err)
		}
	}
	q := append([]float64(nil), base...)
	q[0] += 0.01
	got, err := l.TopK(context.Background(), q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != 0 {
		t.Fatalf("near-duplicate not found: %+v", got)
	}
}

func TestLSHRecallVsExact(t *testing.T) {
	const dim = 16
	l, err := NewLSH(dim, DefaultLSHConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	// Clustered data: LSH recall is meaningful when neighbours are near.
	for i := 0; i < 500; i++ {
		center := float64(i % 10)
		v := make([]float64, dim)
		for j := range v {
			v[j] = center + rng.NormFloat64()*0.2
		}
		if err := l.Insert(uint64(i), v); err != nil {
			t.Fatal(err)
		}
	}
	hits, total := 0, 0
	for trial := 0; trial < 20; trial++ {
		q := make([]float64, dim)
		c := float64(trial % 10)
		for j := range q {
			q[j] = c + rng.NormFloat64()*0.2
		}
		exact, _ := l.ExactTopK(context.Background(), q, 10)
		approx, _ := l.TopK(context.Background(), q, 10)
		aset := map[uint64]bool{}
		for _, m := range approx {
			aset[m.ID] = true
		}
		for _, m := range exact {
			total++
			if aset[m.ID] {
				hits++
			}
		}
	}
	recall := float64(hits) / float64(total)
	if recall < 0.7 {
		t.Fatalf("LSH recall = %.2f, want >= 0.7", recall)
	}
}

func TestLSHWithinRadius(t *testing.T) {
	l, _ := NewLSH(4, DefaultLSHConfig(3))
	_ = l.Insert(1, []float64{0, 0, 0, 0})
	_ = l.Insert(2, []float64{0.1, 0, 0, 0})
	_ = l.Insert(3, []float64{10, 10, 10, 10})
	got, err := l.WithinRadius(context.Background(), []float64{0, 0, 0, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	set := map[uint64]bool{}
	for _, m := range got {
		set[m.ID] = true
		if m.Dist > 1 {
			t.Fatalf("match outside radius: %+v", m)
		}
	}
	if !set[1] || !set[2] || set[3] {
		t.Fatalf("radius results = %+v", got)
	}
}

func TestLSHRemoveAndReplace(t *testing.T) {
	l, _ := NewLSH(4, DefaultLSHConfig(4))
	_ = l.Insert(1, []float64{1, 2, 3, 4})
	if l.Len() != 1 {
		t.Fatal("len after insert")
	}
	// Replacing moves the vector.
	_ = l.Insert(1, []float64{5, 6, 7, 8})
	if l.Len() != 1 {
		t.Fatalf("len after replace = %d", l.Len())
	}
	got, _ := l.ExactTopK(context.Background(), []float64{5, 6, 7, 8}, 1)
	if got[0].Dist != 0 {
		t.Fatal("replacement vector not stored")
	}
	l.Remove(1)
	if l.Len() != 0 {
		t.Fatal("remove failed")
	}
	l.Remove(42) // no-op
}

func TestLSHValidation(t *testing.T) {
	if _, err := NewLSH(0, DefaultLSHConfig(1)); err == nil {
		t.Fatal("dim 0 accepted")
	}
	if _, err := NewLSH(4, LSHConfig{Tables: 0, Hashes: 1, W: 1}); err == nil {
		t.Fatal("0 tables accepted")
	}
	l, _ := NewLSH(4, DefaultLSHConfig(1))
	if err := l.Insert(1, []float64{1}); err == nil {
		t.Fatal("wrong dim insert accepted")
	}
	if _, err := l.TopK(context.Background(), []float64{1}, 3); err == nil {
		t.Fatal("wrong dim query accepted")
	}
	if got, err := l.TopK(context.Background(), []float64{1, 2, 3, 4}, 0); err != nil || got != nil {
		t.Fatal("k=0 should be empty, nil error")
	}
}

func TestInvertedBasics(t *testing.T) {
	ix := NewInverted()
	ix.Add(1, []string{"tent", "homeless"})
	ix.Add(2, []string{"trash", "bags"})
	ix.Add(3, []string{"tent", "trash"})
	if ix.Docs() != 3 || ix.Terms() != 4 {
		t.Fatalf("docs=%d terms=%d", ix.Docs(), ix.Terms())
	}
	got := ix.SearchAny([]string{"tent"})
	set := idSet(matchIDs(got))
	if !set[1] || !set[3] || set[2] {
		t.Fatalf("tent search = %+v", got)
	}
	// Conjunctive.
	all := ix.SearchAll([]string{"tent", "trash"})
	if len(all) != 1 || all[0].ID != 3 {
		t.Fatalf("SearchAll = %+v", all)
	}
	if got := ix.SearchAll(nil); got != nil {
		t.Fatal("empty conjunctive query should be nil")
	}
	if got := ix.SearchAny([]string{"nonexistent"}); len(got) != 0 {
		t.Fatal("unknown term matched")
	}
}

func matchIDs(ms []Match) []uint64 {
	out := make([]uint64, len(ms))
	for i, m := range ms {
		out[i] = m.ID
	}
	return out
}

func TestInvertedTFIDFRanking(t *testing.T) {
	ix := NewInverted()
	// "rare" appears in one doc; "common" in all.
	ix.Add(1, []string{"rare", "common"})
	ix.Add(2, []string{"common"})
	ix.Add(3, []string{"common"})
	got := ix.SearchAny([]string{"rare", "common"})
	if got[0].ID != 1 {
		t.Fatalf("rare-term doc should rank first: %+v", got)
	}
}

func TestInvertedCaseAndTokenize(t *testing.T) {
	ix := NewInverted()
	ix.AddText(1, "Illegal Dumping near 5th St!")
	got := ix.SearchAny([]string{"DUMPING"})
	if len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("case-insensitive search failed: %+v", got)
	}
	toks := Tokenize("Hello, World-42!")
	want := []string{"hello", "world", "42"}
	if len(toks) != 3 {
		t.Fatalf("tokens = %v", toks)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Fatalf("tokens = %v", toks)
		}
	}
}

func TestInvertedRemove(t *testing.T) {
	ix := NewInverted()
	ix.Add(1, []string{"tent"})
	ix.Add(2, []string{"tent"})
	ix.Remove(1)
	if ix.Docs() != 1 {
		t.Fatalf("docs = %d", ix.Docs())
	}
	got := ix.SearchAny([]string{"tent"})
	if len(got) != 1 || got[0].ID != 2 {
		t.Fatalf("post-remove search = %+v", got)
	}
	ix.Remove(99) // no-op
}

func TestTemporalRange(t *testing.T) {
	ix := NewTemporal()
	base := time.Date(2019, 3, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 10; i++ {
		ix.Insert(uint64(i), base.Add(time.Duration(i)*time.Hour))
	}
	got := ix.Range(base.Add(2*time.Hour), base.Add(5*time.Hour))
	if len(got) != 4 || got[0] != 2 || got[3] != 5 {
		t.Fatalf("range = %v", got)
	}
	if got := ix.Range(base.Add(5*time.Hour), base.Add(2*time.Hour)); got != nil {
		t.Fatal("inverted range should be nil")
	}
	// Inclusive bounds.
	got = ix.Range(base, base)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("inclusive range = %v", got)
	}
}

func TestTemporalOutOfOrderInsert(t *testing.T) {
	ix := NewTemporal()
	base := time.Date(2019, 3, 1, 0, 0, 0, 0, time.UTC)
	ix.Insert(2, base.Add(2*time.Hour))
	ix.Insert(0, base)
	ix.Insert(1, base.Add(time.Hour))
	got := ix.Range(base, base.Add(3*time.Hour))
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("out-of-order range = %v", got)
	}
}

func TestTemporalLatestAndRemove(t *testing.T) {
	ix := NewTemporal()
	base := time.Date(2019, 3, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 5; i++ {
		ix.Insert(uint64(i), base.Add(time.Duration(i)*time.Minute))
	}
	got := ix.Latest(2)
	if len(got) != 2 || got[0] != 4 || got[1] != 3 {
		t.Fatalf("latest = %v", got)
	}
	ix.Remove(4, base.Add(4*time.Minute))
	if got := ix.Latest(1); got[0] != 3 {
		t.Fatalf("latest after remove = %v", got)
	}
	if ix.Len() != 4 {
		t.Fatalf("len = %d", ix.Len())
	}
	if got := ix.Latest(0); got != nil {
		t.Fatal("latest(0) should be nil")
	}
	if got := ix.Latest(100); len(got) != 4 {
		t.Fatalf("latest(100) = %v", got)
	}
}

func TestHybridTreeMatchesBruteForce(t *testing.T) {
	const dim = 8
	ht, err := NewHybridTree(dim, DefaultRTreeConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	type rec struct {
		it HybridItem
	}
	var recs []rec
	for i := 0; i < 400; i++ {
		it := HybridItem{ID: uint64(i), Rect: randRect(rng), Vec: randVec(rng, dim)}
		if err := ht.Insert(it); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec{it})
	}
	if ht.Len() != 400 {
		t.Fatalf("len = %d", ht.Len())
	}
	for trial := 0; trial < 15; trial++ {
		qr := randRect(rng)
		qr.MaxLat += 0.05
		qr.MaxLon += 0.05
		qv := randVec(rng, dim)
		got, err := ht.SearchSpatialVisual(context.Background(), qr, qv, 5)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force.
		var want []Match
		for _, r := range recs {
			if r.it.Rect.Intersects(qr) {
				want = append(want, Match{ID: r.it.ID, Dist: math.Sqrt(vecmath.SquaredL2(qv, r.it.Vec))})
			}
		}
		sortMatches(want)
		if len(want) > 5 {
			want = want[:5]
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d matches, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i].ID != want[i].ID {
				t.Fatalf("trial %d rank %d: got %d (%.4f), want %d (%.4f)",
					trial, i, got[i].ID, got[i].Dist, want[i].ID, want[i].Dist)
			}
		}
	}
}

func TestHybridTreeSpatialOnly(t *testing.T) {
	const dim = 4
	ht, _ := NewHybridTree(dim, DefaultRTreeConfig())
	scan := NewLinearScan()
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 300; i++ {
		it := HybridItem{ID: uint64(i), Rect: randRect(rng), Vec: randVec(rng, dim)}
		_ = ht.Insert(it)
		scan.Insert(SpatialItem{ID: it.ID, Rect: it.Rect})
	}
	for q := 0; q < 20; q++ {
		query := randRect(rng)
		query.MaxLat += 0.03
		query.MaxLon += 0.03
		got := idSet(ht.SearchRect(query))
		want := idSet(scan.SearchRect(query))
		if len(got) != len(want) {
			t.Fatalf("hybrid %d hits vs scan %d", len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("hybrid missing %d", id)
			}
		}
	}
}

func TestHybridTreeValidation(t *testing.T) {
	if _, err := NewHybridTree(0, DefaultRTreeConfig()); err == nil {
		t.Fatal("dim 0 accepted")
	}
	if _, err := NewHybridTree(4, RTreeConfig{MaxEntries: 2}); err == nil {
		t.Fatal("tiny M accepted")
	}
	ht, _ := NewHybridTree(4, DefaultRTreeConfig())
	if err := ht.Insert(HybridItem{ID: 1, Rect: geo.Rect{}, Vec: []float64{1}}); err == nil {
		t.Fatal("wrong-dim vec accepted")
	}
	if _, err := ht.SearchSpatialVisual(context.Background(), geo.Rect{}, []float64{1}, 3); err == nil {
		t.Fatal("wrong-dim query accepted")
	}
	got, err := ht.SearchSpatialVisual(context.Background(), geo.Rect{MaxLat: 1, MaxLon: 1}, []float64{1, 2, 3, 4}, 3)
	if err != nil || got != nil {
		t.Fatal("empty tree query should be nil, nil")
	}
}

func TestTemporalRangeOrderedProperty(t *testing.T) {
	// However entries are inserted, Range output is time-ordered and
	// exactly the entries inside the window.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ix := NewTemporal()
		base := time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC)
		type ent struct {
			id uint64
			at time.Time
		}
		n := 10 + rng.Intn(50)
		ents := make([]ent, n)
		for i := range ents {
			ents[i] = ent{id: uint64(i), at: base.Add(time.Duration(rng.Intn(10000)) * time.Second)}
			ix.Insert(ents[i].id, ents[i].at)
		}
		from := base.Add(time.Duration(rng.Intn(5000)) * time.Second)
		to := from.Add(time.Duration(rng.Intn(5000)) * time.Second)
		got := ix.Range(from, to)
		// Expected membership.
		want := map[uint64]bool{}
		for _, e := range ents {
			if !e.at.Before(from) && !e.at.After(to) {
				want[e.id] = true
			}
		}
		if len(got) != len(want) {
			return false
		}
		at := map[uint64]time.Time{}
		for _, e := range ents {
			at[e.id] = e.at
		}
		for i, id := range got {
			if !want[id] {
				return false
			}
			if i > 0 && at[got[i]].Before(at[got[i-1]]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestInvertedAddRemoveInverseProperty(t *testing.T) {
	// Adding then removing a document restores prior query results.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ix := NewInverted()
		vocab := []string{"a", "b", "c", "d", "e"}
		for i := 0; i < 20; i++ {
			ix.Add(uint64(i), []string{vocab[rng.Intn(len(vocab))]})
		}
		term := vocab[rng.Intn(len(vocab))]
		before := matchIDs(ix.SearchAny([]string{term}))
		ix.Add(999, []string{term, "zzz"})
		ix.Remove(999)
		after := matchIDs(ix.SearchAny([]string{term}))
		if len(before) != len(after) {
			return false
		}
		for i := range before {
			if before[i] != after[i] {
				return false
			}
		}
		return ix.Docs() == 20
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLSHInsertFindsSelfProperty(t *testing.T) {
	// Every inserted vector is its own exact nearest neighbour through
	// the LSH path (self-bucket guarantee).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l, err := NewLSH(8, DefaultLSHConfig(seed))
		if err != nil {
			return false
		}
		vecs := make([][]float64, 30)
		for i := range vecs {
			vecs[i] = randVec(rng, 8)
			if err := l.Insert(uint64(i), vecs[i]); err != nil {
				return false
			}
		}
		for i, v := range vecs {
			got, err := l.TopK(context.Background(), v, 1)
			if err != nil || len(got) == 0 {
				return false
			}
			if got[0].Dist > 1e-12 && got[0].ID != uint64(i) {
				// A different vector may be identical only by collision;
				// with continuous gaussians that has probability zero.
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
