package index

import (
	"math"
	"sort"
)

// Match is a scored search hit. Dist is the true (rooted) L2 distance in
// every slice an exported search returns; internally the index compares
// squared distances everywhere — squared L2 is monotone under sqrt, so
// ordering, top-k truncation, and radius thresholds (against r²) never
// need the root — and converts once, here, on the final matches.
type Match struct {
	ID   uint64
	Dist float64
}

// sortMatches orders by ascending distance, ties by ID, so results are
// deterministic under map iteration.
func sortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Dist != ms[j].Dist {
			return ms[i].Dist < ms[j].Dist
		}
		return ms[i].ID < ms[j].ID
	})
}

// matchWorse is the strict total order the scans select under: greater
// distance loses, ties lose on greater ID. Using a total order (never
// "equal") makes bounded selection deterministic under map iteration,
// exactly like sortMatches.
func matchWorse(a, b Match) bool {
	if a.Dist != b.Dist {
		return a.Dist > b.Dist
	}
	return a.ID > b.ID
}

// topSelector keeps the m best matches offered so far under the
// (Dist, ID) total order, independent of offer order. It replaces
// collect-everything-then-sort in the scan loops: O(n log m) with a
// fixed m-element buffer instead of O(n log n) time and O(n) garbage
// per query. Internally a binary max-heap with the worst kept match at
// the root.
type topSelector struct {
	m  int
	hs []Match
}

func newTopSelector(m int) *topSelector {
	return &topSelector{m: m, hs: make([]Match, 0, m)}
}

// offer considers one match, evicting the current worst if the buffer
// is full and the newcomer beats it. The body is only the reject test —
// small enough to inline into the scan loops, so the overwhelmingly
// common case (candidate loses to everything kept) costs two compares
// and no call. Accepts (O(m log n/m) of them per scan) take the slow
// path.
func (s *topSelector) offer(c Match) {
	if len(s.hs) == s.m && !matchWorse(s.hs[0], c) {
		return
	}
	s.accept(c)
}

// accept inserts a match known to belong in the buffer.
func (s *topSelector) accept(c Match) {
	if len(s.hs) < s.m {
		s.hs = append(s.hs, c)
		i := len(s.hs) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !matchWorse(s.hs[i], s.hs[p]) {
				break
			}
			s.hs[i], s.hs[p] = s.hs[p], s.hs[i]
			i = p
		}
		return
	}
	s.hs[0] = c
	i := 0
	for {
		worst := i
		if l := 2*i + 1; l < len(s.hs) && matchWorse(s.hs[l], s.hs[worst]) {
			worst = l
		}
		if r := 2*i + 2; r < len(s.hs) && matchWorse(s.hs[r], s.hs[worst]) {
			worst = r
		}
		if worst == i {
			return
		}
		s.hs[i], s.hs[worst] = s.hs[worst], s.hs[i]
		i = worst
	}
}

// results returns the kept matches sorted ascending (the selector is
// spent afterwards: the returned slice is its buffer).
func (s *topSelector) results() []Match {
	sortMatches(s.hs)
	return s.hs
}

// finalizeMatches converts squared distances to true L2 distances in
// place, on the final (already truncated) result set. This function is
// the one place index code may call math.Sqrt: the sqrtscan analyzer
// rejects math.Sqrt anywhere else in the package, which is what keeps
// per-candidate roots from creeping back into the scan loops.
func finalizeMatches(ms []Match) {
	for i := range ms {
		ms[i].Dist = math.Sqrt(ms[i].Dist)
	}
}
