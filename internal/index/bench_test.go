package index

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/vecmath"
)

// Read-path microbenchmarks at serving scale: the exact float64 scan vs
// the int8 quantized scan vs the raw kernels, over the same corpus shape
// as the readpath figure (20K vectors, 64 dims).

const (
	benchN   = 20000
	benchDim = 64
)

func benchLSH(b *testing.B) (*LSH, []float64) {
	b.Helper()
	l, err := NewLSH(benchDim, DefaultLSHConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	vec := make([]float64, benchDim)
	for i := 0; i < benchN; i++ {
		for d := range vec {
			vec[d] = rng.NormFloat64()
		}
		if err := l.Insert(uint64(i+1), vec); err != nil {
			b.Fatal(err)
		}
	}
	q := make([]float64, benchDim)
	for d := range q {
		q[d] = rng.NormFloat64()
	}
	return l, q
}

func BenchmarkExactTopK(b *testing.B) {
	l, q := benchLSH(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.ExactTopK(ctx, q, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuantTopK(b *testing.B) {
	l, q := benchLSH(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.QuantTopK(ctx, q, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuantTable(b *testing.B) {
	l, q := benchLSH(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.quantizer.Table(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelSquaredL2(b *testing.B) {
	l, q := benchLSH(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var s float64
		for _, v := range l.vectors {
			s += vecmath.SquaredL2(q, v)
		}
		_ = s
	}
}

func BenchmarkKernelSquaredL2Int8(b *testing.B) {
	l, q := benchLSH(b)
	lut, err := l.quantizer.Table(q)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var s float64
		for pos := 0; pos < len(l.slabIDs); pos++ {
			s += vecmath.SquaredL2Int8(l.row(pos), lut)
		}
		_ = s
	}
}
