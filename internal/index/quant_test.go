package index

import (
	"context"
	"math/rand"
	"testing"
)

// clusteredVecs draws vectors around a handful of centroids — the shape
// visual features actually have, and the regime where quantized
// shortlist selection has to preserve fine-grained ordering.
func clusteredVecs(rng *rand.Rand, n, dim, clusters int) [][]float64 {
	cents := make([][]float64, clusters)
	for c := range cents {
		v := make([]float64, dim)
		for d := range v {
			v[d] = rng.NormFloat64() * 10
		}
		cents[c] = v
	}
	out := make([][]float64, n)
	for i := range out {
		c := cents[i%clusters]
		v := make([]float64, dim)
		for d := range v {
			v[d] = c[d] + rng.NormFloat64()
		}
		out[i] = v
	}
	return out
}

// TestQuantTopKRecall pins the quantized full scan against the exact
// baseline: recall@10 must stay >= 0.9 and the returned distances must
// be true (rooted) distances matching the exact scan's on shared ids.
func TestQuantTopKRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n, dim, k = 2000, 32, 10
	l, err := NewLSH(dim, DefaultLSHConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	vecs := clusteredVecs(rng, n, dim, 12)
	for i, v := range vecs {
		if err := l.Insert(uint64(i+1), v); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	totalRecall := 0.0
	const queries = 40
	for qi := 0; qi < queries; qi++ {
		q := vecs[rng.Intn(n)]
		exact, err := l.ExactTopK(ctx, q, k)
		if err != nil {
			t.Fatal(err)
		}
		quant, err := l.QuantTopK(ctx, q, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(quant) != len(exact) {
			t.Fatalf("query %d: quant returned %d, exact %d", qi, len(quant), len(exact))
		}
		want := make(map[uint64]float64, len(exact))
		for _, m := range exact {
			want[m.ID] = m.Dist
		}
		hits := 0
		for _, m := range quant {
			if d, ok := want[m.ID]; ok {
				hits++
				if diff := m.Dist - d; diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("query %d id %d: quant dist %v != exact dist %v", qi, m.ID, m.Dist, d)
				}
			}
		}
		totalRecall += float64(hits) / float64(k)
	}
	if recall := totalRecall / queries; recall < 0.9 {
		t.Fatalf("quantized recall@%d = %.3f, want >= 0.9", k, recall)
	}
}

// TestWithinRadiusQuantPrefilterExact: the ErrBound-widened prefilter
// must admit no false negatives — radius results must equal a
// full-precision brute-force over the candidate set.
func TestWithinRadiusQuantPrefilterExact(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const n, dim = 1500, 16
	l, err := NewLSH(dim, DefaultLSHConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	vecs := clusteredVecs(rng, n, dim, 8)
	for i, v := range vecs {
		if err := l.Insert(uint64(i+1), v); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	for trial := 0; trial < 20; trial++ {
		q := vecs[rng.Intn(n)]
		r := 2 + rng.Float64()*4
		got, err := l.WithinRadius(ctx, q, r)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force over the same candidate set the index probes.
		cands, err := l.candidates(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		r2 := r * r
		want := 0
		for id := range cands {
			if vecSquaredL2(q, l.vectors[id]) <= r2 {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("trial %d r=%.2f: got %d matches, brute force %d", trial, r, len(got), want)
		}
		for i := 0; i < len(got); i++ {
			if got[i].Dist > r {
				t.Fatalf("trial %d: match %d at dist %v beyond radius %v", trial, got[i].ID, got[i].Dist, r)
			}
			if i > 0 && (got[i].Dist < got[i-1].Dist ||
				(got[i].Dist == got[i-1].Dist && got[i].ID < got[i-1].ID)) {
				t.Fatalf("trial %d: results out of order at %d", trial, i)
			}
		}
	}
}

// vecSquaredL2 is a scalar reference used only by tests in this package.
func vecSquaredL2(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// TestQuantRetrainOnDrift: inserts far outside the trained range must
// retrain the quantizer (Covers goes true again) and keep search usable.
func TestQuantRetrainOnDrift(t *testing.T) {
	l, err := NewLSH(4, DefaultLSHConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 100; i++ {
		v := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		if err := l.Insert(uint64(i+1), v); err != nil {
			t.Fatal(err)
		}
	}
	// A vector three orders of magnitude outside the trained range.
	far := []float64{1000, -1000, 1000, -1000}
	if err := l.Insert(9999, far); err != nil {
		t.Fatal(err)
	}
	if !l.quantizer.Covers(far) {
		t.Fatal("quantizer not retrained to cover drifted insert")
	}
	got, err := l.QuantTopK(context.Background(), far, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != 9999 || got[0].Dist > 1e-6 {
		t.Fatalf("drifted vector not its own nearest neighbour: %+v", got)
	}
}

// TestQuantSlabSwapDelete pins the code-slab swap-delete bookkeeping:
// removing a row moves the last row into its slot, and every map/slab
// structure must agree afterwards. A stale slabPos entry (or a missed
// row copy) makes the quantized scan attribute the swapped-in vector's
// distance to the wrong ID — exactly the corruption this test would
// catch.
func TestQuantSlabSwapDelete(t *testing.T) {
	const dim = 8
	rng := rand.New(rand.NewSource(11))
	l, err := NewLSH(dim, DefaultLSHConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	vecs := clusteredVecs(rng, 32, dim, 4)
	for i, v := range vecs {
		if err := l.Insert(uint64(i+1), v); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()

	check := func(deletedID, swappedID uint64) {
		t.Helper()
		// The swapped-in row's own vector must still find its ID at ~zero
		// distance via the quantized scan (it reads the slab row the
		// delete rewrote).
		got, err := l.QuantTopK(ctx, vecs[swappedID-1], 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 || got[0].ID != swappedID {
			t.Fatalf("after deleting %d, quant scan lost swapped-in row %d: %v", deletedID, swappedID, got)
		}
		if got[0].Dist > 1 {
			t.Fatalf("swapped-in row %d scored distance %v against its own vector; slab row corrupt", swappedID, got[0].Dist)
		}
		// The deleted ID must be gone from every quantized result.
		all, err := l.QuantTopK(ctx, vecs[deletedID-1], len(vecs))
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range all {
			if m.ID == deletedID {
				t.Fatalf("deleted ID %d still surfaces in the quantized scan", deletedID)
			}
		}
	}

	// Delete the first slab row: the last row (ID 32) swaps into slot 0.
	l.Remove(1)
	check(1, 32)
	// Delete the row that was just swapped into the middle of the slab.
	l.Remove(32)
	check(32, 31)
	// Delete the current last row (no swap happens; pure truncation).
	l.Remove(30)
	check(30, 29)
	// Drain everything; the slab must empty cleanly.
	for id := uint64(2); id <= 29; id++ {
		l.Remove(id)
	}
	l.Remove(31)
	if got, err := l.QuantTopK(ctx, vecs[0], 5); err != nil || len(got) != 0 {
		t.Fatalf("drained index returned %v (err %v)", got, err)
	}
	if len(l.slab) != 0 || len(l.slabIDs) != 0 || len(l.slabPos) != 0 {
		t.Fatalf("slab not empty after drain: %d codes, %d ids, %d positions",
			len(l.slab), len(l.slabIDs), len(l.slabPos))
	}
}
