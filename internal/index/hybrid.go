package index

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/geo"
	"repro/internal/vecmath"
)

// HybridItem is an object indexed by both its spatial extent and its
// visual feature vector.
type HybridItem struct {
	ID   uint64
	Rect geo.Rect
	Vec  []float64
}

// HybridTree is the spatial-visual hybrid index of §IV-C (after the
// "hybrid indexes for spatial-visual search" line of work): an R-tree over
// scene rectangles whose nodes additionally maintain a bounding box in
// feature space, so a spatial-visual query prunes subtrees on both
// modalities at once instead of filtering spatially and ranking the
// survivors.
type HybridTree struct {
	cfg  RTreeConfig
	dim  int
	root *hnode
	size int
}

type hnode struct {
	leaf       bool
	rect       geo.Rect
	fmin, fmax []float64
	items      []HybridItem
	children   []*hnode
}

// NewHybridTree returns an empty tree over dim-dimensional features.
func NewHybridTree(dim int, cfg RTreeConfig) (*HybridTree, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("%w: dim %d", ErrBadConfig, dim)
	}
	if cfg.MaxEntries < 4 {
		return nil, fmt.Errorf("%w: MaxEntries %d < 4", ErrBadConfig, cfg.MaxEntries)
	}
	if cfg.MinEntries <= 0 {
		cfg.MinEntries = cfg.MaxEntries * 2 / 5
	}
	if cfg.MinEntries < 2 || cfg.MinEntries > cfg.MaxEntries/2 {
		return nil, fmt.Errorf("%w: MinEntries %d", ErrBadConfig, cfg.MinEntries)
	}
	return &HybridTree{cfg: cfg, dim: dim, root: newHNode(dim, true)}, nil
}

func newHNode(dim int, leaf bool) *hnode {
	n := &hnode{leaf: leaf, fmin: make([]float64, dim), fmax: make([]float64, dim)}
	for i := 0; i < dim; i++ {
		n.fmin[i] = math.Inf(1)
		n.fmax[i] = math.Inf(-1)
	}
	return n
}

// Len returns the number of indexed items.
func (t *HybridTree) Len() int { return t.size }

func (n *hnode) absorbVec(v []float64) {
	for i, x := range v {
		if x < n.fmin[i] {
			n.fmin[i] = x
		}
		if x > n.fmax[i] {
			n.fmax[i] = x
		}
	}
}

func (n *hnode) absorbRect(r geo.Rect) {
	if len(n.items) == 0 && len(n.children) == 0 {
		n.rect = r
		return
	}
	n.rect = n.rect.Union(r)
}

// Insert adds an item.
func (t *HybridTree) Insert(item HybridItem) error {
	if len(item.Vec) != t.dim {
		return fmt.Errorf("%w: got %d, want %d", ErrDimMismatch, len(item.Vec), t.dim)
	}
	if !item.Rect.Valid() {
		return fmt.Errorf("index: hybrid insert invalid rect %+v", item.Rect)
	}
	item.Vec = append([]float64(nil), item.Vec...)
	path := t.chooseLeaf(item.Rect, item.Vec)
	leaf := path[len(path)-1]
	leaf.items = append(leaf.items, item)
	t.size++
	// Split overflowing nodes bottom-up.
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		if hLen(n) <= t.cfg.MaxEntries {
			continue
		}
		a, b := t.split(n)
		if i == 0 {
			root := newHNode(t.dim, false)
			root.children = []*hnode{a, b}
			root.recompute()
			t.root = root
			continue
		}
		parent := path[i-1]
		for j, c := range parent.children {
			if c == n {
				parent.children[j] = a
				break
			}
		}
		parent.children = append(parent.children, b)
	}
	return nil
}

func hLen(n *hnode) int {
	if n.leaf {
		return len(n.items)
	}
	return len(n.children)
}

func (t *HybridTree) chooseLeaf(r geo.Rect, v []float64) []*hnode {
	var path []*hnode
	n := t.root
	for {
		n.absorbRect(r)
		n.absorbVec(v)
		path = append(path, n)
		if n.leaf {
			return path
		}
		best := n.children[0]
		bestEnl := math.Inf(1)
		for _, c := range n.children {
			// Combined enlargement: spatial area growth plus feature
			// volume growth (normalised per dimension).
			enl := c.rect.Enlargement(r) + c.featureEnlargement(v)
			if enl < bestEnl {
				best, bestEnl = c, enl
			}
		}
		n = best
	}
}

// featureEnlargement returns the total per-dimension extension needed to
// absorb v into the node's feature box.
func (n *hnode) featureEnlargement(v []float64) float64 {
	s := 0.0
	for i, x := range v {
		if x < n.fmin[i] {
			s += n.fmin[i] - x
		}
		if x > n.fmax[i] {
			s += x - n.fmax[i]
		}
	}
	return s
}

func (n *hnode) recompute() {
	for i := range n.fmin {
		n.fmin[i] = math.Inf(1)
		n.fmax[i] = math.Inf(-1)
	}
	first := true
	if n.leaf {
		for _, it := range n.items {
			if first {
				n.rect = it.Rect
				first = false
			} else {
				n.rect = n.rect.Union(it.Rect)
			}
			n.absorbVec(it.Vec)
		}
		return
	}
	for _, c := range n.children {
		if first {
			n.rect = c.rect
			first = false
		} else {
			n.rect = n.rect.Union(c.rect)
		}
		for i := range n.fmin {
			if c.fmin[i] < n.fmin[i] {
				n.fmin[i] = c.fmin[i]
			}
			if c.fmax[i] > n.fmax[i] {
				n.fmax[i] = c.fmax[i]
			}
		}
	}
}

// split divides an overflowing node. Unlike a plain R-tree it considers
// three sort axes — latitude, longitude, and the feature dimension with
// the widest spread at this node — and scores each candidate distribution
// by normalised spatial overlap plus normalised feature-box overlap, so
// subtrees become compact in *both* spaces. Tight per-node feature boxes
// are what make the spatial-visual pruning of SearchSpatialVisual
// effective.
func (t *HybridTree) split(n *hnode) (*hnode, *hnode) {
	type entry struct {
		rect  geo.Rect
		fmin  []float64
		fmax  []float64
		item  HybridItem
		child *hnode
	}
	var entries []entry
	if n.leaf {
		for _, it := range n.items {
			entries = append(entries, entry{rect: it.Rect, fmin: it.Vec, fmax: it.Vec, item: it})
		}
	} else {
		for _, c := range n.children {
			entries = append(entries, entry{rect: c.rect, fmin: c.fmin, fmax: c.fmax, child: c})
		}
	}
	// Feature dimension with the widest spread at this node.
	featDim, featSpread := 0, 0.0
	for d := 0; d < t.dim; d++ {
		if s := n.fmax[d] - n.fmin[d]; s > featSpread {
			featDim, featSpread = d, s
		}
	}
	spatialNorm := n.rect.Area()
	if spatialNorm <= 0 {
		spatialNorm = 1
	}
	if featSpread <= 0 {
		featSpread = 1
	}
	// groupBounds accumulates the MBR and feature box of a prefix/suffix.
	type bounds struct {
		rect       geo.Rect
		fmin, fmax []float64
	}
	newBounds := func(e entry) bounds {
		return bounds{
			rect: e.rect,
			fmin: append([]float64(nil), e.fmin...),
			fmax: append([]float64(nil), e.fmax...),
		}
	}
	absorb := func(b *bounds, e entry) {
		b.rect = b.rect.Union(e.rect)
		for d := range b.fmin {
			if e.fmin[d] < b.fmin[d] {
				b.fmin[d] = e.fmin[d]
			}
			if e.fmax[d] > b.fmax[d] {
				b.fmax[d] = e.fmax[d]
			}
		}
	}
	// featOverlap returns the total per-dimension overlap length of two
	// feature boxes, normalised by the node's spread.
	featOverlap := func(a, b bounds) float64 {
		total := 0.0
		for d := range a.fmin {
			lo := math.Max(a.fmin[d], b.fmin[d])
			hi := math.Min(a.fmax[d], b.fmax[d])
			if hi > lo {
				total += hi - lo
			}
		}
		return total / (featSpread * float64(t.dim))
	}

	m := t.cfg.MinEntries
	bestGoodness := math.Inf(1)
	var bestLeft, bestRight []entry
	for axis := 0; axis < 3; axis++ {
		sorted := append([]entry(nil), entries...)
		sort.Slice(sorted, func(i, j int) bool {
			switch axis {
			case 0:
				return sorted[i].rect.MinLat < sorted[j].rect.MinLat
			case 1:
				return sorted[i].rect.MinLon < sorted[j].rect.MinLon
			default:
				return sorted[i].fmin[featDim] < sorted[j].fmin[featDim]
			}
		})
		// Suffix bounds, computed right-to-left.
		suffix := make([]bounds, len(sorted)+1)
		for i := len(sorted) - 1; i >= 0; i-- {
			if i == len(sorted)-1 {
				suffix[i] = newBounds(sorted[i])
			} else {
				b := newBounds(sorted[i])
				absorb(&b, entry{rect: suffix[i+1].rect, fmin: suffix[i+1].fmin, fmax: suffix[i+1].fmax})
				suffix[i] = b
			}
		}
		prefix := newBounds(sorted[0])
		for k := 1; k <= len(sorted)-m; k++ {
			if k > 1 {
				absorb(&prefix, sorted[k-1])
			}
			if k < m {
				continue
			}
			right := suffix[k]
			spatial := prefix.rect.OverlapArea(right.rect) / spatialNorm
			goodness := spatial + featOverlap(prefix, right)
			if goodness < bestGoodness {
				bestGoodness = goodness
				bestLeft = append(bestLeft[:0], sorted[:k]...)
				bestRight = append(bestRight[:0], sorted[k:]...)
			}
		}
	}
	build := func(es []entry) *hnode {
		out := newHNode(t.dim, n.leaf)
		for _, e := range es {
			if n.leaf {
				out.items = append(out.items, e.item)
			} else {
				out.children = append(out.children, e.child)
			}
		}
		out.recompute()
		return out
	}
	return build(bestLeft), build(bestRight)
}

// minFeatureDist lower-bounds the *squared* L2 distance from q to any
// vector inside the node's feature box. The traversal compares it
// against the squared worst-kept distance, so pruning never pays a root.
func (n *hnode) minFeatureDist(q []float64) float64 {
	if hLen(n) == 0 {
		return math.Inf(1)
	}
	s := 0.0
	for i, x := range q {
		if x < n.fmin[i] {
			d := n.fmin[i] - x
			s += d * d
		} else if x > n.fmax[i] {
			d := x - n.fmax[i]
			s += d * d
		}
	}
	return s
}

// SearchSpatialVisual returns up to k items whose rects intersect qRect,
// ranked by ascending L2 distance between their vectors and qVec. Both
// pruning dimensions are applied during traversal, which checks ctx at
// every node descent and aborts the walk once the context is done.
func (t *HybridTree) SearchSpatialVisual(ctx context.Context, qRect geo.Rect, qVec []float64, k int) ([]Match, error) {
	if len(qVec) != t.dim {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrDimMismatch, len(qVec), t.dim)
	}
	if k <= 0 || t.size == 0 {
		return nil, nil
	}
	// Bounded result set as a sorted slice (k is small in practice).
	// Dist fields hold squared distances until the final conversion.
	var best []Match
	worst := func() float64 {
		if len(best) < k {
			return math.Inf(1)
		}
		return best[len(best)-1].Dist
	}
	add := func(m Match) {
		pos := sort.Search(len(best), func(i int) bool {
			if best[i].Dist != m.Dist {
				return best[i].Dist > m.Dist
			}
			return best[i].ID > m.ID
		})
		best = append(best, Match{})
		copy(best[pos+1:], best[pos:])
		best[pos] = m
		if len(best) > k {
			best = best[:k]
		}
	}
	var walk func(n *hnode) error
	walk = func(n *hnode) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if !n.rect.Intersects(qRect) || n.minFeatureDist(qVec) > worst() {
			return nil
		}
		if n.leaf {
			for _, it := range n.items {
				if !it.Rect.Intersects(qRect) {
					continue
				}
				if d2 := vecmath.SquaredL2(qVec, it.Vec); d2 <= worst() {
					add(Match{ID: it.ID, Dist: d2})
				}
			}
			return nil
		}
		// Visit children closest in feature space first to tighten the
		// bound early.
		order := make([]*hnode, len(n.children))
		copy(order, n.children)
		sort.Slice(order, func(i, j int) bool {
			return order[i].minFeatureDist(qVec) < order[j].minFeatureDist(qVec)
		})
		for _, c := range order {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root); err != nil {
		return nil, err
	}
	finalizeMatches(best)
	return best, nil
}

// SearchRect returns IDs of items intersecting qRect (the hybrid tree can
// also serve plain spatial queries).
func (t *HybridTree) SearchRect(qRect geo.Rect) []uint64 {
	if t.size == 0 {
		return nil
	}
	var out []uint64
	var walk func(n *hnode)
	walk = func(n *hnode) {
		if !n.rect.Intersects(qRect) {
			return
		}
		if n.leaf {
			for _, it := range n.items {
				if it.Rect.Intersects(qRect) {
					out = append(out, it.ID)
				}
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return out
}
