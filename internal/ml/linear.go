package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// LinearConfig controls the SGD-trained linear models (logistic regression
// and linear SVM).
type LinearConfig struct {
	Epochs int
	LR     float64
	// Lambda is the L2 regularisation strength.
	Lambda float64
	Seed   int64
}

// DefaultLinearConfig returns the configuration used across the Fig. 6
// sweep: enough epochs to converge on standardized features at harness
// scale.
func DefaultLinearConfig(seed int64) LinearConfig {
	return LinearConfig{Epochs: 60, LR: 0.1, Lambda: 1e-4, Seed: seed}
}

// linearModel holds one weight row per class plus bias (multinomial or
// one-vs-rest layouts share this storage).
type linearModel struct {
	classes int
	dim     int
	w       [][]float64
	b       []float64
	fit     bool
}

func (m *linearModel) init(classes, dim int) {
	m.classes, m.dim = classes, dim
	m.w = make([][]float64, classes)
	for c := range m.w {
		m.w[c] = make([]float64, dim)
	}
	m.b = make([]float64, classes)
	m.fit = true
}

func (m *linearModel) scores(x []float64) ([]float64, error) {
	if !m.fit {
		return nil, ErrNotFitted
	}
	if len(x) != m.dim {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrDimMismatch, len(x), m.dim)
	}
	s := make([]float64, m.classes)
	for c := 0; c < m.classes; c++ {
		v := m.b[c]
		row := m.w[c]
		for j, xv := range x {
			v += row[j] * xv
		}
		s[c] = v
	}
	return s, nil
}

func argmax(v []float64) int {
	best := 0
	for i := range v {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// LogisticRegression is multinomial (softmax) logistic regression trained
// with minibatch-free SGD and L2 regularisation.
type LogisticRegression struct {
	Cfg LinearConfig
	linearModel
}

// NewLogisticRegression returns an unfitted model.
func NewLogisticRegression(cfg LinearConfig) *LogisticRegression {
	return &LogisticRegression{Cfg: cfg}
}

// Name implements Classifier.
func (l *LogisticRegression) Name() string { return "LogReg" }

// Fit implements Classifier.
func (l *LogisticRegression) Fit(d Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	l.init(d.Classes, d.Dim())
	rng := rand.New(rand.NewSource(l.Cfg.Seed))
	order := make([]int, d.Len())
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < l.Cfg.Epochs; epoch++ {
		lr := l.Cfg.LR / (1 + 0.05*float64(epoch))
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, i := range order {
			s, err := l.scores(d.X[i])
			if err != nil {
				return err
			}
			p := softmaxInPlace(s)
			for c := 0; c < l.classes; c++ {
				g := p[c]
				if c == d.Y[i] {
					g -= 1
				}
				row := l.w[c]
				for j, xv := range d.X[i] {
					row[j] -= lr * (g*xv + l.Cfg.Lambda*row[j])
				}
				l.b[c] -= lr * g
			}
		}
	}
	return nil
}

func softmaxInPlace(s []float64) []float64 {
	mx := math.Inf(-1)
	for _, v := range s {
		if v > mx {
			mx = v
		}
	}
	sum := 0.0
	for i, v := range s {
		e := math.Exp(v - mx)
		s[i] = e
		sum += e
	}
	for i := range s {
		s[i] /= sum
	}
	return s
}

// Predict implements Classifier.
func (l *LogisticRegression) Predict(x []float64) (int, error) {
	s, err := l.scores(x)
	if err != nil {
		return 0, err
	}
	return argmax(s), nil
}

// PredictProba implements ProbClassifier.
func (l *LogisticRegression) PredictProba(x []float64) ([]float64, error) {
	s, err := l.scores(x)
	if err != nil {
		return nil, err
	}
	return softmaxInPlace(s), nil
}

// LinearSVM is a one-vs-rest linear support vector machine trained with
// Pegasos-style stochastic subgradient descent on the hinge loss, using
// iterate averaging over the second half of training for stability. The
// paper's best Fig. 6 classifier is an SVM.
type LinearSVM struct {
	Cfg LinearConfig
	linearModel
}

// NewLinearSVM returns an unfitted model.
func NewLinearSVM(cfg LinearConfig) *LinearSVM { return &LinearSVM{Cfg: cfg} }

// Name implements Classifier.
func (s *LinearSVM) Name() string { return "SVM" }

// Fit implements Classifier.
func (s *LinearSVM) Fit(d Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	s.init(d.Classes, d.Dim())
	rng := rand.New(rand.NewSource(s.Cfg.Seed))
	order := make([]int, d.Len())
	for i := range order {
		order[i] = i
	}
	lambda := s.Cfg.Lambda
	if lambda <= 0 {
		lambda = 1e-4
	}
	// Iterate averaging: accumulate weights over the second half of
	// training and use the mean as the final model (averaged Pegasos).
	avgW := make([][]float64, s.classes)
	for c := range avgW {
		avgW[c] = make([]float64, s.dim)
	}
	avgB := make([]float64, s.classes)
	avgFrom := s.Cfg.Epochs / 2
	avgCount := 0
	for epoch := 0; epoch < s.Cfg.Epochs; epoch++ {
		eta := s.Cfg.LR / (1 + 0.05*float64(epoch))
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, i := range order {
			x := d.X[i]
			for c := 0; c < s.classes; c++ {
				yc := -1.0
				if d.Y[i] == c {
					yc = 1
				}
				row := s.w[c]
				margin := s.b[c]
				for j, xv := range x {
					margin += row[j] * xv
				}
				margin *= yc
				// Hinge-loss SGD: always apply L2 shrinkage, add the
				// subgradient on margin violation.
				shrink := 1 - eta*lambda
				if shrink < 0 {
					shrink = 0
				}
				for j := range row {
					row[j] *= shrink
				}
				if margin < 1 {
					for j, xv := range x {
						row[j] += eta * yc * xv
					}
					s.b[c] += eta * yc
				}
			}
		}
		if epoch >= avgFrom {
			for c := 0; c < s.classes; c++ {
				for j, v := range s.w[c] {
					avgW[c][j] += v
				}
				avgB[c] += s.b[c]
			}
			avgCount++
		}
	}
	if avgCount > 0 {
		for c := 0; c < s.classes; c++ {
			for j := range avgW[c] {
				s.w[c][j] = avgW[c][j] / float64(avgCount)
			}
			s.b[c] = avgB[c] / float64(avgCount)
		}
	}
	return nil
}

// Predict implements Classifier: the class with the largest OvR margin.
func (s *LinearSVM) Predict(x []float64) (int, error) {
	sc, err := s.scores(x)
	if err != nil {
		return 0, err
	}
	return argmax(sc), nil
}

// PredictProba implements ProbClassifier with a softmax over margins — a
// crude calibration, sufficient for uncertainty ranking on the edge.
func (s *LinearSVM) PredictProba(x []float64) ([]float64, error) {
	sc, err := s.scores(x)
	if err != nil {
		return nil, err
	}
	return softmaxInPlace(sc), nil
}

// Weights returns a copy of the fitted per-class weight rows.
func (m *linearModel) Weights() ([][]float64, error) {
	if !m.fit {
		return nil, ErrNotFitted
	}
	out := make([][]float64, m.classes)
	for c := range m.w {
		out[c] = append([]float64(nil), m.w[c]...)
	}
	return out, nil
}

// Bias returns a copy of the fitted per-class biases.
func (m *linearModel) Bias() ([]float64, error) {
	if !m.fit {
		return nil, ErrNotFitted
	}
	return append([]float64(nil), m.b...), nil
}

// SetParams restores a fitted state from exported weights — the model
// download/import path of the platform API.
func (m *linearModel) SetParams(w [][]float64, b []float64) error {
	if len(w) == 0 || len(w) != len(b) {
		return fmt.Errorf("%w: %d weight rows, %d biases", ErrDimMismatch, len(w), len(b))
	}
	dim := len(w[0])
	if dim == 0 {
		return fmt.Errorf("%w: empty weight rows", ErrDimMismatch)
	}
	for _, row := range w {
		if len(row) != dim {
			return fmt.Errorf("%w: ragged weight rows", ErrDimMismatch)
		}
	}
	m.init(len(w), dim)
	for c := range w {
		copy(m.w[c], w[c])
	}
	copy(m.b, b)
	return nil
}
