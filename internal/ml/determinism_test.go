package ml

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/par"
)

func clusteredPoints(n, dim, clusters int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		v := make([]float64, dim)
		c := float64(i % clusters)
		for j := range v {
			v[j] = c*3 + rng.NormFloat64()
		}
		pts[i] = v
	}
	return pts
}

// TestKMeansDeterministicAcrossWorkerCounts checks the shard-ordered
// reduction: the fitted codebook, assignments, and inertia are bit-identical
// for any worker count.
func TestKMeansDeterministicAcrossWorkerCounts(t *testing.T) {
	pts := clusteredPoints(700, 8, 5, 11)
	run := func(workers int) *KMeansResult {
		prev := par.SetWorkers(workers)
		defer par.SetWorkers(prev)
		r, err := KMeans(pts, DefaultKMeansConfig(5, 3))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	base := run(1)
	for _, w := range []int{2, 4, 8} {
		r := run(w)
		if r.Iters != base.Iters {
			t.Fatalf("workers=%d: %d iters, want %d", w, r.Iters, base.Iters)
		}
		if math.Float64bits(r.Inertia) != math.Float64bits(base.Inertia) {
			t.Fatalf("workers=%d: inertia %v, want %v", w, r.Inertia, base.Inertia)
		}
		for i := range base.Assign {
			if r.Assign[i] != base.Assign[i] {
				t.Fatalf("workers=%d: assign[%d] = %d, want %d", w, i, r.Assign[i], base.Assign[i])
			}
		}
		for c := range base.Centroids {
			for j := range base.Centroids[c] {
				if math.Float64bits(r.Centroids[c][j]) != math.Float64bits(base.Centroids[c][j]) {
					t.Fatalf("workers=%d: centroid[%d][%d] = %v, want %v",
						w, c, j, r.Centroids[c][j], base.Centroids[c][j])
				}
			}
		}
	}
}

// TestKMeansEarlyExit checks the stable-assignment early exit: on
// well-separated clusters Lloyd converges long before MaxIters.
func TestKMeansEarlyExit(t *testing.T) {
	pts := clusteredPoints(300, 4, 3, 21)
	r, err := KMeans(pts, DefaultKMeansConfig(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	if r.Iters >= 50 {
		t.Fatalf("no early exit: %d iterations on trivially separable clusters", r.Iters)
	}
}

// TestForestAndCVDeterministicAcrossWorkerCounts checks that per-tree seed
// splitting keeps the fitted forest (and the cross-validation grid built on
// top of classifiers like it) worker-count-invariant.
func TestForestAndCVDeterministicAcrossWorkerCounts(t *testing.T) {
	pts := clusteredPoints(200, 6, 4, 31)
	d := Dataset{X: pts, Classes: 4}
	for i := range pts {
		d.Y = append(d.Y, i%4)
	}
	run := func(workers int) ([]int, []float64) {
		prev := par.SetWorkers(workers)
		defer par.SetWorkers(prev)
		f := NewRandomForest(DefaultForestConfig(5))
		if err := f.Fit(d); err != nil {
			t.Fatal(err)
		}
		preds, err := PredictAll(f, d.X)
		if err != nil {
			t.Fatal(err)
		}
		cv, err := CrossValidate(func() Classifier { return NewRandomForest(DefaultForestConfig(5)) }, d, 4, 9)
		if err != nil {
			t.Fatal(err)
		}
		return preds, cv
	}
	basePreds, baseCV := run(1)
	preds8, cv8 := run(8)
	for i := range basePreds {
		if preds8[i] != basePreds[i] {
			t.Fatalf("forest pred[%d] = %d with 8 workers, want %d", i, preds8[i], basePreds[i])
		}
	}
	for k := range baseCV {
		if math.Float64bits(cv8[k]) != math.Float64bits(baseCV[k]) {
			t.Fatalf("CV fold %d = %v with 8 workers, want %v", k, cv8[k], baseCV[k])
		}
	}
}
