package ml

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/par"
)

// TreeConfig controls decision-tree induction.
type TreeConfig struct {
	MaxDepth        int
	MinSamplesSplit int
	// MaxFeatures caps the number of features considered per split;
	// 0 means all (plain CART), sqrt-selection is configured by forests.
	MaxFeatures int
	Seed        int64
}

// DefaultTreeConfig returns CART-style defaults.
func DefaultTreeConfig() TreeConfig {
	return TreeConfig{MaxDepth: 12, MinSamplesSplit: 4}
}

type treeNode struct {
	// Leaf payload.
	leaf  bool
	class int
	probs []float64
	// Internal split.
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
}

// DecisionTree is a CART classifier using Gini impurity with threshold
// splits on continuous features.
type DecisionTree struct {
	Cfg     TreeConfig
	root    *treeNode
	classes int
	dim     int
	rng     *rand.Rand
}

// NewDecisionTree returns an unfitted tree.
func NewDecisionTree(cfg TreeConfig) *DecisionTree {
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 12
	}
	if cfg.MinSamplesSplit < 2 {
		cfg.MinSamplesSplit = 2
	}
	return &DecisionTree{Cfg: cfg}
}

// Name implements Classifier.
func (t *DecisionTree) Name() string { return "DecisionTree" }

// Fit implements Classifier.
func (t *DecisionTree) Fit(d Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	t.classes, t.dim = d.Classes, d.Dim()
	t.rng = rand.New(rand.NewSource(t.Cfg.Seed))
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	t.root = t.build(d, idx, 0)
	return nil
}

func classCounts(d Dataset, idx []int) []int {
	counts := make([]int, d.Classes)
	for _, i := range idx {
		counts[d.Y[i]]++
	}
	return counts
}

func gini(counts []int, total int) float64 {
	if total == 0 {
		return 0
	}
	g := 1.0
	for _, c := range counts {
		p := float64(c) / float64(total)
		g -= p * p
	}
	return g
}

func majority(counts []int) int {
	best := 0
	for c := range counts {
		if counts[c] > counts[best] {
			best = c
		}
	}
	return best
}

func (t *DecisionTree) leafFrom(counts []int, total int) *treeNode {
	probs := make([]float64, len(counts))
	if total > 0 {
		for c, n := range counts {
			probs[c] = float64(n) / float64(total)
		}
	}
	return &treeNode{leaf: true, class: majority(counts), probs: probs}
}

func (t *DecisionTree) build(d Dataset, idx []int, depth int) *treeNode {
	counts := classCounts(d, idx)
	parentGini := gini(counts, len(idx))
	if depth >= t.Cfg.MaxDepth || len(idx) < t.Cfg.MinSamplesSplit || parentGini == 0 {
		return t.leafFrom(counts, len(idx))
	}
	feats := t.candidateFeatures()
	bestFeat, bestThr := -1, 0.0
	bestScore := parentGini // must strictly improve
	for _, f := range feats {
		thr, score, ok := t.bestSplitOn(d, idx, f)
		if ok && score < bestScore-1e-12 {
			bestFeat, bestThr, bestScore = f, thr, score
		}
	}
	if bestFeat < 0 {
		return t.leafFrom(counts, len(idx))
	}
	var left, right []int
	for _, i := range idx {
		if d.X[i][bestFeat] <= bestThr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return t.leafFrom(counts, len(idx))
	}
	return &treeNode{
		feature:   bestFeat,
		threshold: bestThr,
		left:      t.build(d, left, depth+1),
		right:     t.build(d, right, depth+1),
	}
}

// candidateFeatures returns the feature subset considered at a node.
func (t *DecisionTree) candidateFeatures() []int {
	k := t.Cfg.MaxFeatures
	if k <= 0 || k >= t.dim {
		all := make([]int, t.dim)
		for i := range all {
			all[i] = i
		}
		return all
	}
	perm := t.rng.Perm(t.dim)
	return perm[:k]
}

// bestSplitOn finds the weighted-Gini-minimising threshold for feature f
// using candidate thresholds at midpoints between distinct sorted values
// (subsampled for wide nodes to bound cost).
func (t *DecisionTree) bestSplitOn(d Dataset, idx []int, f int) (thr, score float64, ok bool) {
	vals := make([]float64, len(idx))
	for i, j := range idx {
		vals[i] = d.X[j][f]
	}
	sortFloats(vals)
	// Candidate thresholds: midpoints of up to 32 evenly spaced gaps.
	var cands []float64
	step := 1
	if len(vals) > 33 {
		step = len(vals) / 32
	}
	for i := step; i < len(vals); i += step {
		if vals[i] != vals[i-1] {
			cands = append(cands, (vals[i]+vals[i-1])/2)
		}
	}
	if len(cands) == 0 {
		return 0, 0, false
	}
	best := math.Inf(1)
	bestThr := 0.0
	lc := make([]int, d.Classes)
	rc := make([]int, d.Classes)
	for _, c := range cands {
		for i := range lc {
			lc[i], rc[i] = 0, 0
		}
		nl, nr := 0, 0
		for _, j := range idx {
			if d.X[j][f] <= c {
				lc[d.Y[j]]++
				nl++
			} else {
				rc[d.Y[j]]++
				nr++
			}
		}
		if nl == 0 || nr == 0 {
			continue
		}
		w := (float64(nl)*gini(lc, nl) + float64(nr)*gini(rc, nr)) / float64(nl+nr)
		if w < best {
			best, bestThr = w, c
		}
	}
	if math.IsInf(best, 1) {
		return 0, 0, false
	}
	return bestThr, best, true
}

func sortFloats(v []float64) {
	// insertion sort is fine at node sizes; avoid sort import churn
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

func (t *DecisionTree) walk(x []float64) *treeNode {
	n := t.root
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n
}

// Predict implements Classifier.
func (t *DecisionTree) Predict(x []float64) (int, error) {
	if t.root == nil {
		return 0, ErrNotFitted
	}
	if len(x) != t.dim {
		return 0, fmt.Errorf("%w: got %d, want %d", ErrDimMismatch, len(x), t.dim)
	}
	return t.walk(x).class, nil
}

// PredictProba implements ProbClassifier via leaf class frequencies.
func (t *DecisionTree) PredictProba(x []float64) ([]float64, error) {
	if t.root == nil {
		return nil, ErrNotFitted
	}
	if len(x) != t.dim {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrDimMismatch, len(x), t.dim)
	}
	n := t.walk(x)
	out := make([]float64, t.classes)
	copy(out, n.probs)
	return out, nil
}

// Depth returns the height of the fitted tree (0 for a single leaf).
func (t *DecisionTree) Depth() int {
	var depth func(n *treeNode) int
	depth = func(n *treeNode) int {
		if n == nil || n.leaf {
			return 0
		}
		l, r := depth(n.left), depth(n.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return depth(t.root)
}

// ForestConfig controls random-forest training.
type ForestConfig struct {
	Trees int
	Tree  TreeConfig
	Seed  int64
}

// DefaultForestConfig returns a 25-tree forest with sqrt feature sampling.
func DefaultForestConfig(seed int64) ForestConfig {
	return ForestConfig{
		Trees: 25,
		Tree:  TreeConfig{MaxDepth: 12, MinSamplesSplit: 4},
		Seed:  seed,
	}
}

// RandomForest is a bagging ensemble of decision trees with per-node
// feature subsampling.
type RandomForest struct {
	Cfg     ForestConfig
	trees   []*DecisionTree
	classes int
	dim     int
}

// NewRandomForest returns an unfitted forest.
func NewRandomForest(cfg ForestConfig) *RandomForest {
	if cfg.Trees <= 0 {
		cfg.Trees = 25
	}
	return &RandomForest{Cfg: cfg}
}

// Name implements Classifier.
func (f *RandomForest) Name() string { return "RandomForest" }

// Fit implements Classifier. Each tree's bootstrap and split randomness is
// derived from a per-tree seed split off the forest seed, so trees are
// independent and train concurrently over the par worker pool while the
// fitted ensemble stays identical for any worker count.
func (f *RandomForest) Fit(d Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	f.classes, f.dim = d.Classes, d.Dim()
	maxFeats := f.Cfg.Tree.MaxFeatures
	if maxFeats <= 0 {
		maxFeats = int(math.Sqrt(float64(d.Dim())))
		if maxFeats < 1 {
			maxFeats = 1
		}
	}
	trees, err := par.Map(f.Cfg.Trees, func(t int) (*DecisionTree, error) {
		rng := rand.New(rand.NewSource(par.SplitSeed(f.Cfg.Seed, t)))
		// Bootstrap sample.
		idx := make([]int, d.Len())
		for i := range idx {
			idx[i] = rng.Intn(d.Len())
		}
		boot := d.Subset(idx)
		cfg := f.Cfg.Tree
		cfg.MaxFeatures = maxFeats
		cfg.Seed = rng.Int63()
		tree := NewDecisionTree(cfg)
		if err := tree.Fit(boot); err != nil {
			return nil, fmt.Errorf("ml: forest tree %d: %w", t, err)
		}
		return tree, nil
	})
	if err != nil {
		return err
	}
	f.trees = trees
	return nil
}

// PredictProba implements ProbClassifier by averaging tree leaf
// distributions.
func (f *RandomForest) PredictProba(x []float64) ([]float64, error) {
	if len(f.trees) == 0 {
		return nil, ErrNotFitted
	}
	if len(x) != f.dim {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrDimMismatch, len(x), f.dim)
	}
	agg := make([]float64, f.classes)
	for _, t := range f.trees {
		p, err := t.PredictProba(x)
		if err != nil {
			return nil, err
		}
		for c, v := range p {
			agg[c] += v
		}
	}
	for c := range agg {
		agg[c] /= float64(len(f.trees))
	}
	return agg, nil
}

// Predict implements Classifier.
func (f *RandomForest) Predict(x []float64) (int, error) {
	p, err := f.PredictProba(x)
	if err != nil {
		return 0, err
	}
	return argmax(p), nil
}
