package ml

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/par"
)

// ConfusionMatrix counts predictions: M[actual][predicted].
type ConfusionMatrix struct {
	Classes int
	M       [][]int
}

// NewConfusionMatrix returns a zeroed matrix for the given class count.
func NewConfusionMatrix(classes int) *ConfusionMatrix {
	m := make([][]int, classes)
	for i := range m {
		m[i] = make([]int, classes)
	}
	return &ConfusionMatrix{Classes: classes, M: m}
}

// ConfusionFromPredictions tallies actual vs. predicted label slices.
func ConfusionFromPredictions(actual, predicted []int, classes int) (*ConfusionMatrix, error) {
	if len(actual) != len(predicted) {
		return nil, fmt.Errorf("ml: %d actual vs %d predicted labels", len(actual), len(predicted))
	}
	cm := NewConfusionMatrix(classes)
	for i := range actual {
		if err := cm.Add(actual[i], predicted[i]); err != nil {
			return nil, err
		}
	}
	return cm, nil
}

// Add records one (actual, predicted) observation.
func (c *ConfusionMatrix) Add(actual, predicted int) error {
	if actual < 0 || actual >= c.Classes || predicted < 0 || predicted >= c.Classes {
		return fmt.Errorf("ml: confusion add (%d,%d) out of range [0,%d)", actual, predicted, c.Classes)
	}
	c.M[actual][predicted]++
	return nil
}

// Total returns the number of recorded observations.
func (c *ConfusionMatrix) Total() int {
	t := 0
	for _, row := range c.M {
		for _, v := range row {
			t += v
		}
	}
	return t
}

// Accuracy returns the trace fraction.
func (c *ConfusionMatrix) Accuracy() float64 {
	total := c.Total()
	if total == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < c.Classes; i++ {
		correct += c.M[i][i]
	}
	return float64(correct) / float64(total)
}

// ClassMetrics holds per-class precision, recall, F1 and support.
type ClassMetrics struct {
	Precision, Recall, F1 float64
	Support               int
}

// PerClass returns metrics for every class. A class with no predicted
// positives has precision 0; a class with no support has recall 0.
func (c *ConfusionMatrix) PerClass() []ClassMetrics {
	out := make([]ClassMetrics, c.Classes)
	for k := 0; k < c.Classes; k++ {
		tp := c.M[k][k]
		fp, fn := 0, 0
		for j := 0; j < c.Classes; j++ {
			if j == k {
				continue
			}
			fp += c.M[j][k]
			fn += c.M[k][j]
		}
		var p, r float64
		if tp+fp > 0 {
			p = float64(tp) / float64(tp+fp)
		}
		if tp+fn > 0 {
			r = float64(tp) / float64(tp+fn)
		}
		f1 := 0.0
		if p+r > 0 {
			f1 = 2 * p * r / (p + r)
		}
		out[k] = ClassMetrics{Precision: p, Recall: r, F1: f1, Support: tp + fn}
	}
	return out
}

// MacroF1 returns the unweighted mean of per-class F1 scores — the headline
// metric of the paper's Fig. 6.
func (c *ConfusionMatrix) MacroF1() float64 {
	per := c.PerClass()
	if len(per) == 0 {
		return 0
	}
	s := 0.0
	for _, m := range per {
		s += m.F1
	}
	return s / float64(len(per))
}

// WeightedF1 returns the support-weighted mean of per-class F1 scores.
func (c *ConfusionMatrix) WeightedF1() float64 {
	per := c.PerClass()
	total := 0
	s := 0.0
	for _, m := range per {
		s += m.F1 * float64(m.Support)
		total += m.Support
	}
	if total == 0 {
		return 0
	}
	return s / float64(total)
}

// String renders the matrix with optional class names set via Format.
func (c *ConfusionMatrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "confusion (%d classes, n=%d, acc=%.3f)\n", c.Classes, c.Total(), c.Accuracy())
	for i, row := range c.M {
		fmt.Fprintf(&b, "  actual %d: %v\n", i, row)
	}
	return b.String()
}

// EvalResult bundles the metrics one (feature, classifier) cell reports.
type EvalResult struct {
	Confusion *ConfusionMatrix
	MacroF1   float64
	Accuracy  float64
	PerClass  []ClassMetrics
}

// Evaluate fits c on train and scores it on test.
func Evaluate(c Classifier, train, test Dataset) (EvalResult, error) {
	if err := train.Validate(); err != nil {
		return EvalResult{}, fmt.Errorf("ml: train set: %w", err)
	}
	if err := test.Validate(); err != nil {
		return EvalResult{}, fmt.Errorf("ml: test set: %w", err)
	}
	if err := c.Fit(train); err != nil {
		return EvalResult{}, err
	}
	pred, err := PredictAll(c, test.X)
	if err != nil {
		return EvalResult{}, err
	}
	cm, err := ConfusionFromPredictions(test.Y, pred, test.Classes)
	if err != nil {
		return EvalResult{}, err
	}
	return EvalResult{
		Confusion: cm,
		MacroF1:   cm.MacroF1(),
		Accuracy:  cm.Accuracy(),
		PerClass:  cm.PerClass(),
	}, nil
}

// ErrBadFolds reports an invalid k for cross-validation.
var ErrBadFolds = errors.New("ml: folds must be in [2, len(dataset)]")

// CrossValidate performs stratified-free k-fold cross-validation (the paper
// uses 10-fold on the training split) and returns per-fold macro F1 scores.
// Folds are independent, so they fan out over the par worker pool; results
// are collected in fold order.
func CrossValidate(f Factory, d Dataset, folds int, seed int64) ([]float64, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if folds < 2 || folds > d.Len() {
		return nil, fmt.Errorf("%w: folds=%d n=%d", ErrBadFolds, folds, d.Len())
	}
	idx := shuffledIndices(d.Len(), seed)
	return par.Map(folds, func(k int) (float64, error) {
		lo := k * d.Len() / folds
		hi := (k + 1) * d.Len() / folds
		test := d.Subset(idx[lo:hi])
		trainIdx := append(append([]int{}, idx[:lo]...), idx[hi:]...)
		train := d.Subset(trainIdx)
		res, err := Evaluate(f(), train, test)
		if err != nil {
			return 0, fmt.Errorf("ml: fold %d: %w", k, err)
		}
		return res.MacroF1, nil
	})
}

// Mean returns the arithmetic mean of vs (zero for empty input).
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

// Report renders a classification report in the style the paper's
// scikit-learn workflow produced: per-class precision/recall/F1/support
// plus accuracy and macro F1. labels supplies display names (falls back
// to class indices when too short).
func (c *ConfusionMatrix) Report(labels []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %9s %9s %9s %9s\n", "", "precision", "recall", "f1", "support")
	for i, m := range c.PerClass() {
		name := fmt.Sprintf("class %d", i)
		if i < len(labels) {
			name = labels[i]
		}
		fmt.Fprintf(&b, "%-24s %9.3f %9.3f %9.3f %9d\n", name, m.Precision, m.Recall, m.F1, m.Support)
	}
	fmt.Fprintf(&b, "\n%-24s %9.3f\n", "accuracy", c.Accuracy())
	fmt.Fprintf(&b, "%-24s %9.3f\n", "macro f1", c.MacroF1())
	fmt.Fprintf(&b, "%-24s %9.3f\n", "weighted f1", c.WeightedF1())
	return b.String()
}
