package ml

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/par"
)

// KMeansConfig controls Lloyd's algorithm.
type KMeansConfig struct {
	K        int
	MaxIters int
	Seed     int64
	// Tol stops iteration once the summed squared centroid movement falls
	// below it (squared distances avoid a sqrt per centroid per iteration).
	Tol float64
}

// DefaultKMeansConfig returns defaults sized for BoW dictionary training.
func DefaultKMeansConfig(k int, seed int64) KMeansConfig {
	return KMeansConfig{K: k, MaxIters: 50, Seed: seed, Tol: 1e-6}
}

// KMeansResult is a fitted codebook.
type KMeansResult struct {
	Centroids [][]float64
	// Assign maps each input row to its centroid.
	Assign []int
	// Inertia is the final sum of squared distances to assigned centroids.
	Inertia float64
	// Iters is the number of Lloyd iterations executed.
	Iters int
}

// ErrBadK reports an invalid cluster count.
var ErrBadK = errors.New("ml: k must be in [1, len(points)]")

// kmeansShardGrain is the fixed shard size of the parallel assignment and
// accumulation steps. Shard boundaries depend only on the point count, so
// the shard-ordered reduction of centroid sums is bit-identical for any
// worker count.
const kmeansShardGrain = 256

// kmeansShard accumulates one shard's contribution to the update step.
type kmeansShard struct {
	sums    [][]float64
	counts  []int
	changed int
	inertia float64
}

// KMeans clusters points with kMeans++ initialisation followed by Lloyd
// iterations. It is the quantiser behind the SIFT bag-of-words dictionary
// (paper §VII-A: "clustered into 1000 clusters (using kMeans)"). The
// assignment step — the O(n·k·d) hot loop — fans out over the par worker
// pool; per-shard centroid sums are reduced in shard order, keeping the
// fitted codebook bit-identical for any worker count. Assignment compares
// squared distances (no sqrt per point×centroid) and iteration stops as
// soon as no point changes cluster, skipping the redundant update pass.
func KMeans(points [][]float64, cfg KMeansConfig) (*KMeansResult, error) {
	if len(points) == 0 {
		return nil, ErrEmptyDataset
	}
	if cfg.K < 1 || cfg.K > len(points) {
		return nil, fmt.Errorf("%w: k=%d n=%d", ErrBadK, cfg.K, len(points))
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("%w: row %d has %d dims, want %d", ErrDimMismatch, i, len(p), dim)
		}
	}
	if cfg.MaxIters <= 0 {
		cfg.MaxIters = 50
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	cents := kmeansPlusPlus(points, cfg.K, rng)
	assign := make([]int, len(points))
	for i := range assign {
		assign[i] = -1 // no point "keeps" its cluster on the first pass
	}
	shardCount := par.NumShards(len(points), kmeansShardGrain)
	shards := make([]kmeansShard, shardCount)
	for s := range shards {
		shards[s].sums = make([][]float64, cfg.K)
		for c := range shards[s].sums {
			shards[s].sums[c] = make([]float64, dim)
		}
		shards[s].counts = make([]int, cfg.K)
	}
	counts := make([]int, cfg.K)
	iters := 0
	for ; iters < cfg.MaxIters; iters++ {
		// Fused assignment + sharded accumulation (parallel).
		par.ForShards(len(points), kmeansShardGrain, func(s, lo, hi int) {
			sh := &shards[s]
			for c := range sh.sums {
				for j := range sh.sums[c] {
					sh.sums[c][j] = 0
				}
				sh.counts[c] = 0
			}
			sh.changed = 0
			for i := lo; i < hi; i++ {
				p := points[i]
				best, bd := 0, math.Inf(1)
				for c, cent := range cents {
					if d := SquaredL2(p, cent); d < bd {
						best, bd = c, d
					}
				}
				if assign[i] != best {
					sh.changed++
					assign[i] = best
				}
				sh.counts[best]++
				sum := sh.sums[best]
				for j, v := range p {
					sum[j] += v
				}
			}
		})
		// Deterministic reduction in shard order.
		changed := 0
		next := make([][]float64, cfg.K)
		for c := range next {
			next[c] = make([]float64, dim)
			counts[c] = 0
		}
		for s := range shards {
			changed += shards[s].changed
			for c := range next {
				counts[c] += shards[s].counts[c]
				for j, v := range shards[s].sums[c] {
					next[c][j] += v
				}
			}
		}
		if changed == 0 {
			// Assignments are stable, so recomputing centroids would
			// reproduce the current ones exactly: converged.
			break
		}
		moved := 0.0
		for c := range next {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random point.
				copy(next[c], points[rng.Intn(len(points))])
			} else {
				for j := range next[c] {
					next[c][j] /= float64(counts[c])
				}
			}
			moved += SquaredL2(next[c], cents[c])
		}
		cents = next
		if moved < cfg.Tol {
			iters++
			break
		}
	}
	// Final inertia, reduced in shard order for bit-determinism.
	par.ForShards(len(points), kmeansShardGrain, func(s, lo, hi int) {
		acc := 0.0
		for i := lo; i < hi; i++ {
			acc += SquaredL2(points[i], cents[assign[i]])
		}
		shards[s].inertia = acc
	})
	inertia := 0.0
	for s := range shards {
		inertia += shards[s].inertia
	}
	return &KMeansResult{Centroids: cents, Assign: assign, Inertia: inertia, Iters: iters}, nil
}

// kmeansPlusPlus seeds centroids with D² weighting. The per-point nearest-
// centroid distances fan out over the worker pool; the weight total is
// reduced in shard order so the sampled seeds are worker-count-invariant.
func kmeansPlusPlus(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	cents := make([][]float64, 0, k)
	first := points[rng.Intn(len(points))]
	cents = append(cents, append([]float64(nil), first...))
	d2 := make([]float64, len(points))
	partial := make([]float64, par.NumShards(len(points), kmeansShardGrain))
	for len(cents) < k {
		par.ForShards(len(points), kmeansShardGrain, func(s, lo, hi int) {
			acc := 0.0
			for i := lo; i < hi; i++ {
				best := math.Inf(1)
				for _, c := range cents {
					if d := SquaredL2(points[i], c); d < best {
						best = d
					}
				}
				d2[i] = best
				acc += best
			}
			partial[s] = acc
		})
		total := 0.0
		for _, p := range partial {
			total += p
		}
		var next []float64
		if total == 0 {
			next = points[rng.Intn(len(points))]
		} else {
			r := rng.Float64() * total
			acc := 0.0
			next = points[len(points)-1]
			for i, w := range d2 {
				acc += w
				if acc >= r {
					next = points[i]
					break
				}
			}
		}
		cents = append(cents, append([]float64(nil), next...))
	}
	return cents
}

// Quantize returns the index of the nearest centroid to x.
func (r *KMeansResult) Quantize(x []float64) (int, error) {
	if len(r.Centroids) == 0 {
		return 0, ErrNotFitted
	}
	if len(x) != len(r.Centroids[0]) {
		return 0, fmt.Errorf("%w: got %d, want %d", ErrDimMismatch, len(x), len(r.Centroids[0]))
	}
	best, bd := 0, math.Inf(1)
	for c, cent := range r.Centroids {
		if d := SquaredL2(x, cent); d < bd {
			best, bd = c, d
		}
	}
	return best, nil
}
