package ml

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// KMeansConfig controls Lloyd's algorithm.
type KMeansConfig struct {
	K        int
	MaxIters int
	Seed     int64
	// Tol stops iteration once total centroid movement falls below it.
	Tol float64
}

// DefaultKMeansConfig returns defaults sized for BoW dictionary training.
func DefaultKMeansConfig(k int, seed int64) KMeansConfig {
	return KMeansConfig{K: k, MaxIters: 50, Seed: seed, Tol: 1e-6}
}

// KMeansResult is a fitted codebook.
type KMeansResult struct {
	Centroids [][]float64
	// Assign maps each input row to its centroid.
	Assign []int
	// Inertia is the final sum of squared distances to assigned centroids.
	Inertia float64
	// Iters is the number of Lloyd iterations executed.
	Iters int
}

// ErrBadK reports an invalid cluster count.
var ErrBadK = errors.New("ml: k must be in [1, len(points)]")

// KMeans clusters points with kMeans++ initialisation followed by Lloyd
// iterations. It is the quantiser behind the SIFT bag-of-words dictionary
// (paper §VII-A: "clustered into 1000 clusters (using kMeans)").
func KMeans(points [][]float64, cfg KMeansConfig) (*KMeansResult, error) {
	if len(points) == 0 {
		return nil, ErrEmptyDataset
	}
	if cfg.K < 1 || cfg.K > len(points) {
		return nil, fmt.Errorf("%w: k=%d n=%d", ErrBadK, cfg.K, len(points))
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("%w: row %d has %d dims, want %d", ErrDimMismatch, i, len(p), dim)
		}
	}
	if cfg.MaxIters <= 0 {
		cfg.MaxIters = 50
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	cents := kmeansPlusPlus(points, cfg.K, rng)
	assign := make([]int, len(points))
	counts := make([]int, cfg.K)
	iters := 0
	for ; iters < cfg.MaxIters; iters++ {
		// Assignment step.
		for i, p := range points {
			best, bd := 0, math.Inf(1)
			for c, cent := range cents {
				if d := SquaredL2(p, cent); d < bd {
					best, bd = c, d
				}
			}
			assign[i] = best
		}
		// Update step.
		next := make([][]float64, cfg.K)
		for c := range next {
			next[c] = make([]float64, dim)
			counts[c] = 0
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for j, v := range p {
				next[c][j] += v
			}
		}
		moved := 0.0
		for c := range next {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random point.
				copy(next[c], points[rng.Intn(len(points))])
			} else {
				for j := range next[c] {
					next[c][j] /= float64(counts[c])
				}
			}
			moved += math.Sqrt(SquaredL2(next[c], cents[c]))
		}
		cents = next
		if moved < cfg.Tol {
			iters++
			break
		}
	}
	inertia := 0.0
	for i, p := range points {
		inertia += SquaredL2(p, cents[assign[i]])
	}
	return &KMeansResult{Centroids: cents, Assign: assign, Inertia: inertia, Iters: iters}, nil
}

// kmeansPlusPlus seeds centroids with D² weighting.
func kmeansPlusPlus(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	cents := make([][]float64, 0, k)
	first := points[rng.Intn(len(points))]
	cents = append(cents, append([]float64(nil), first...))
	d2 := make([]float64, len(points))
	for len(cents) < k {
		total := 0.0
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range cents {
				if d := SquaredL2(p, c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		var next []float64
		if total == 0 {
			next = points[rng.Intn(len(points))]
		} else {
			r := rng.Float64() * total
			acc := 0.0
			next = points[len(points)-1]
			for i, w := range d2 {
				acc += w
				if acc >= r {
					next = points[i]
					break
				}
			}
		}
		cents = append(cents, append([]float64(nil), next...))
	}
	return cents
}

// Quantize returns the index of the nearest centroid to x.
func (r *KMeansResult) Quantize(x []float64) (int, error) {
	if len(r.Centroids) == 0 {
		return 0, ErrNotFitted
	}
	if len(x) != len(r.Centroids[0]) {
		return 0, fmt.Errorf("%w: got %d, want %d", ErrDimMismatch, len(x), len(r.Centroids[0]))
	}
	best, bd := 0, math.Inf(1)
	for c, cent := range r.Centroids {
		if d := SquaredL2(x, cent); d < bd {
			best, bd = c, d
		}
	}
	return best, nil
}
