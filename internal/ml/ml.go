// Package ml implements the classical machine-learning substrate of TVDP:
// the classifier families the paper sweeps in its Fig. 6 evaluation (kNN,
// naive Bayes, decision tree, random forest, logistic regression, linear
// SVM), the kMeans quantiser behind the SIFT bag-of-words dictionary, and
// the evaluation protocol (train/test splits, k-fold cross-validation,
// confusion matrices, per-class and macro precision/recall/F1).
//
// All estimators follow one interface so the experiment harness can sweep
// feature × classifier grids generically, mirroring how the paper's authors
// swept scikit-learn estimators over a shared feature store.
package ml

import (
	"errors"
	"fmt"
)

// Dataset is a design matrix with integer class labels in [0, Classes).
type Dataset struct {
	X       [][]float64
	Y       []int
	Classes int
}

// Errors shared by the package's estimators.
var (
	ErrEmptyDataset = errors.New("ml: empty dataset")
	ErrNotFitted    = errors.New("ml: classifier not fitted")
	ErrDimMismatch  = errors.New("ml: feature dimension mismatch")
)

// Validate checks the dataset's internal consistency.
func (d Dataset) Validate() error {
	if len(d.X) == 0 {
		return ErrEmptyDataset
	}
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("ml: %d rows but %d labels", len(d.X), len(d.Y))
	}
	if d.Classes <= 0 {
		return fmt.Errorf("ml: classes = %d, want > 0", d.Classes)
	}
	dim := len(d.X[0])
	for i, row := range d.X {
		if len(row) != dim {
			return fmt.Errorf("%w: row %d has %d features, want %d", ErrDimMismatch, i, len(row), dim)
		}
	}
	for i, y := range d.Y {
		if y < 0 || y >= d.Classes {
			return fmt.Errorf("ml: label %d of row %d out of [0,%d)", y, i, d.Classes)
		}
	}
	return nil
}

// Dim returns the feature dimension (zero for an empty dataset).
func (d Dataset) Dim() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// Len returns the number of rows.
func (d Dataset) Len() int { return len(d.X) }

// Subset returns the dataset restricted to the given row indices. The rows
// are shared, not copied.
func (d Dataset) Subset(idx []int) Dataset {
	out := Dataset{Classes: d.Classes, X: make([][]float64, len(idx)), Y: make([]int, len(idx))}
	for i, j := range idx {
		out.X[i] = d.X[j]
		out.Y[i] = d.Y[j]
	}
	return out
}

// Classifier is a multi-class estimator.
type Classifier interface {
	// Name identifies the estimator family in experiment tables.
	Name() string
	// Fit trains on the dataset, replacing any previous fit.
	Fit(d Dataset) error
	// Predict returns the class of one feature vector.
	Predict(x []float64) (int, error)
}

// ProbClassifier is a Classifier that also yields class probabilities
// (needed by the edge component's uncertainty-driven data selection).
type ProbClassifier interface {
	Classifier
	// PredictProba returns a probability (or calibrated score) per class.
	PredictProba(x []float64) ([]float64, error)
}

// PredictAll applies c to every row of xs.
func PredictAll(c Classifier, xs [][]float64) ([]int, error) {
	out := make([]int, len(xs))
	for i, x := range xs {
		p, err := c.Predict(x)
		if err != nil {
			return nil, fmt.Errorf("ml: predicting row %d: %w", i, err)
		}
		out[i] = p
	}
	return out, nil
}

// Factory builds a fresh, unfitted classifier; cross-validation uses it to
// avoid state leaking between folds.
type Factory func() Classifier

// Standard returns the paper's Fig. 6 classifier sweep in display order.
// seed controls the stochastic estimators (forest, SVM, logistic).
func Standard(seed int64) []Factory {
	return []Factory{
		func() Classifier { return NewKNN(5) },
		func() Classifier { return NewGaussianNB() },
		func() Classifier { return NewDecisionTree(DefaultTreeConfig()) },
		func() Classifier { return NewRandomForest(DefaultForestConfig(seed)) },
		func() Classifier { return NewLogisticRegression(DefaultLinearConfig(seed)) },
		func() Classifier { return NewLinearSVM(DefaultLinearConfig(seed)) },
	}
}
