package ml

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// blobs builds an easy 3-class Gaussian-blob dataset.
func blobs(n int, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	centers := [][]float64{{0, 0}, {5, 5}, {-5, 5}}
	d := Dataset{Classes: 3}
	for i := 0; i < n; i++ {
		c := i % 3
		d.X = append(d.X, []float64{
			centers[c][0] + rng.NormFloat64(),
			centers[c][1] + rng.NormFloat64(),
		})
		d.Y = append(d.Y, c)
	}
	return d
}

// rings builds a 2-class dataset a linear model cannot separate but trees
// and kNN can: inner disc vs outer ring.
func rings(n int, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := Dataset{Classes: 2}
	for i := 0; i < n; i++ {
		var r float64
		cls := i % 2
		if cls == 0 {
			r = rng.Float64() * 1.5
		} else {
			r = 3 + rng.Float64()*1.5
		}
		theta := rng.Float64() * 2 * math.Pi
		d.X = append(d.X, []float64{r * math.Cos(theta), r * math.Sin(theta)})
		d.Y = append(d.Y, cls)
	}
	return d
}

func TestDatasetValidate(t *testing.T) {
	good := blobs(30, 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Dataset{}).Validate(); !errors.Is(err, ErrEmptyDataset) {
		t.Fatalf("empty dataset err = %v", err)
	}
	bad := Dataset{X: [][]float64{{1}}, Y: []int{0, 1}, Classes: 2}
	if bad.Validate() == nil {
		t.Fatal("length mismatch accepted")
	}
	bad = Dataset{X: [][]float64{{1}, {2, 3}}, Y: []int{0, 1}, Classes: 2}
	if err := bad.Validate(); !errors.Is(err, ErrDimMismatch) {
		t.Fatalf("ragged rows err = %v", err)
	}
	bad = Dataset{X: [][]float64{{1}}, Y: []int{5}, Classes: 2}
	if bad.Validate() == nil {
		t.Fatal("out-of-range label accepted")
	}
	bad = Dataset{X: [][]float64{{1}}, Y: []int{0}, Classes: 0}
	if bad.Validate() == nil {
		t.Fatal("zero classes accepted")
	}
}

func TestSubset(t *testing.T) {
	d := blobs(9, 2)
	s := d.Subset([]int{0, 3, 6})
	if s.Len() != 3 || s.Classes != 3 {
		t.Fatalf("subset = %+v", s)
	}
	for i, j := range []int{0, 3, 6} {
		if s.Y[i] != d.Y[j] {
			t.Fatal("subset labels wrong")
		}
	}
}

func allClassifiers() []Factory { return Standard(7) }

func TestAllClassifiersLearnBlobs(t *testing.T) {
	d := blobs(240, 3)
	train, test, err := StratifiedSplit(d, 0.8, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range allClassifiers() {
		c := f()
		t.Run(c.Name(), func(t *testing.T) {
			res, err := Evaluate(c, train, test)
			if err != nil {
				t.Fatal(err)
			}
			if res.MacroF1 < 0.9 {
				t.Fatalf("%s blob F1 = %.3f, want >= 0.9", c.Name(), res.MacroF1)
			}
		})
	}
}

func TestNonlinearModelsBeatLinearOnRings(t *testing.T) {
	d := rings(300, 5)
	train, test, err := StratifiedSplit(d, 0.8, 6)
	if err != nil {
		t.Fatal(err)
	}
	score := func(c Classifier) float64 {
		res, err := Evaluate(c, train, test)
		if err != nil {
			t.Fatal(err)
		}
		return res.MacroF1
	}
	knn := score(NewKNN(5))
	tree := score(NewDecisionTree(DefaultTreeConfig()))
	svm := score(NewLinearSVM(DefaultLinearConfig(1)))
	if knn < 0.95 || tree < 0.95 {
		t.Fatalf("nonlinear models failed rings: knn=%.3f tree=%.3f", knn, tree)
	}
	if svm > 0.8 {
		t.Fatalf("linear SVM should not separate rings: %.3f", svm)
	}
}

func TestClassifierErrorPaths(t *testing.T) {
	for _, f := range allClassifiers() {
		c := f()
		if _, err := c.Predict([]float64{1, 2}); !errors.Is(err, ErrNotFitted) {
			t.Errorf("%s unfitted predict err = %v", c.Name(), err)
		}
		if err := c.Fit(Dataset{}); err == nil {
			t.Errorf("%s accepted empty fit", c.Name())
		}
		if err := c.Fit(blobs(30, 1)); err != nil {
			t.Fatalf("%s fit: %v", c.Name(), err)
		}
		if _, err := c.Predict([]float64{1}); !errors.Is(err, ErrDimMismatch) {
			t.Errorf("%s wrong-dim predict err = %v", c.Name(), err)
		}
	}
}

func TestProbClassifiersSumToOne(t *testing.T) {
	d := blobs(60, 8)
	probs := []ProbClassifier{
		NewKNN(5), NewGaussianNB(),
		NewLogisticRegression(DefaultLinearConfig(1)),
		NewLinearSVM(DefaultLinearConfig(1)),
		NewDecisionTree(DefaultTreeConfig()),
		NewRandomForest(DefaultForestConfig(1)),
	}
	for _, c := range probs {
		if err := c.Fit(d); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		p, err := c.PredictProba(d.X[0])
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		sum := 0.0
		for _, v := range p {
			if v < -1e-9 {
				t.Fatalf("%s negative probability %v", c.Name(), v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("%s probabilities sum to %v", c.Name(), sum)
		}
	}
}

func TestKNNMajorityVote(t *testing.T) {
	d := Dataset{
		X:       [][]float64{{0}, {0.1}, {0.2}, {10}},
		Y:       []int{0, 0, 1, 1},
		Classes: 2,
	}
	k := NewKNN(3)
	if err := k.Fit(d); err != nil {
		t.Fatal(err)
	}
	got, err := k.Predict([]float64{0.05})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("knn vote = %d, want 0", got)
	}
}

func TestGaussianNBKnownPosteriors(t *testing.T) {
	// Two well-separated 1-D classes: posterior at a class mean ~= 1.
	d := Dataset{Classes: 2}
	for i := 0; i < 50; i++ {
		d.X = append(d.X, []float64{float64(i%5) * 0.01})
		d.Y = append(d.Y, 0)
		d.X = append(d.X, []float64{10 + float64(i%5)*0.01})
		d.Y = append(d.Y, 1)
	}
	nb := NewGaussianNB()
	if err := nb.Fit(d); err != nil {
		t.Fatal(err)
	}
	p, err := nb.PredictProba([]float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if p[0] < 0.99 {
		t.Fatalf("posterior at class-0 mean = %v", p[0])
	}
}

func TestDecisionTreeDepthRespected(t *testing.T) {
	d := rings(200, 9)
	tree := NewDecisionTree(TreeConfig{MaxDepth: 3, MinSamplesSplit: 2})
	if err := tree.Fit(d); err != nil {
		t.Fatal(err)
	}
	if got := tree.Depth(); got > 3 {
		t.Fatalf("depth = %d, want <= 3", got)
	}
}

func TestDecisionTreePureLeafStopsEarly(t *testing.T) {
	d := Dataset{X: [][]float64{{1}, {2}, {3}}, Y: []int{1, 1, 1}, Classes: 2}
	tree := NewDecisionTree(DefaultTreeConfig())
	if err := tree.Fit(d); err != nil {
		t.Fatal(err)
	}
	if tree.Depth() != 0 {
		t.Fatalf("pure dataset should produce a leaf, depth = %d", tree.Depth())
	}
	got, _ := tree.Predict([]float64{99})
	if got != 1 {
		t.Fatalf("pure leaf predicts %d", got)
	}
}

func TestRandomForestDeterministicBySeed(t *testing.T) {
	d := rings(150, 10)
	preds := func(seed int64) []int {
		f := NewRandomForest(DefaultForestConfig(seed))
		if err := f.Fit(d); err != nil {
			t.Fatal(err)
		}
		out, err := PredictAll(f, d.X)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := preds(3), preds(3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed forests disagree")
		}
	}
}

func TestConfusionMatrixMetrics(t *testing.T) {
	cm := NewConfusionMatrix(2)
	// 8 TP0, 2 FN0->1, 1 FP (1 predicted 0), 9 TP1.
	for i := 0; i < 8; i++ {
		_ = cm.Add(0, 0)
	}
	for i := 0; i < 2; i++ {
		_ = cm.Add(0, 1)
	}
	_ = cm.Add(1, 0)
	for i := 0; i < 9; i++ {
		_ = cm.Add(1, 1)
	}
	if cm.Total() != 20 {
		t.Fatalf("total = %d", cm.Total())
	}
	if math.Abs(cm.Accuracy()-17.0/20) > 1e-12 {
		t.Fatalf("accuracy = %v", cm.Accuracy())
	}
	per := cm.PerClass()
	// class 0: precision 8/9, recall 8/10.
	if math.Abs(per[0].Precision-8.0/9) > 1e-12 || math.Abs(per[0].Recall-0.8) > 1e-12 {
		t.Fatalf("class0 metrics = %+v", per[0])
	}
	if per[0].Support != 10 || per[1].Support != 10 {
		t.Fatalf("supports = %+v", per)
	}
	wantF1 := 2 * (8.0 / 9) * 0.8 / ((8.0 / 9) + 0.8)
	if math.Abs(per[0].F1-wantF1) > 1e-12 {
		t.Fatalf("class0 F1 = %v, want %v", per[0].F1, wantF1)
	}
	if cm.MacroF1() <= 0 || cm.MacroF1() > 1 {
		t.Fatalf("macro F1 = %v", cm.MacroF1())
	}
	if math.Abs(cm.WeightedF1()-cm.MacroF1()) > 1e-12 {
		t.Fatal("balanced supports: weighted must equal macro")
	}
	if err := cm.Add(5, 0); err == nil {
		t.Fatal("out-of-range add accepted")
	}
	if cm.String() == "" {
		t.Fatal("empty string rendering")
	}
}

func TestConfusionFromPredictions(t *testing.T) {
	cm, err := ConfusionFromPredictions([]int{0, 1, 1}, []int{0, 1, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cm.M[1][0] != 1 || cm.M[0][0] != 1 || cm.M[1][1] != 1 {
		t.Fatalf("matrix = %v", cm.M)
	}
	if _, err := ConfusionFromPredictions([]int{0}, []int{0, 1}, 2); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestPerfectAndZeroF1(t *testing.T) {
	cm, _ := ConfusionFromPredictions([]int{0, 1, 2}, []int{0, 1, 2}, 3)
	if cm.MacroF1() != 1 {
		t.Fatalf("perfect F1 = %v", cm.MacroF1())
	}
	cm2, _ := ConfusionFromPredictions([]int{0, 0, 0}, []int{1, 1, 1}, 2)
	if cm2.MacroF1() != 0 {
		t.Fatalf("all-wrong F1 = %v", cm2.MacroF1())
	}
}

func TestTrainTestSplit(t *testing.T) {
	d := blobs(100, 11)
	train, test, err := TrainTestSplit(d, 0.8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != 80 || test.Len() != 20 {
		t.Fatalf("split sizes = %d/%d", train.Len(), test.Len())
	}
	if _, _, err := TrainTestSplit(d, 0, 1); err == nil {
		t.Fatal("frac 0 accepted")
	}
	if _, _, err := TrainTestSplit(d, 1, 1); err == nil {
		t.Fatal("frac 1 accepted")
	}
	// Determinism.
	tr2, _, _ := TrainTestSplit(d, 0.8, 1)
	for i := range train.Y {
		if train.Y[i] != tr2.Y[i] {
			t.Fatal("same-seed splits differ")
		}
	}
}

func TestStratifiedSplitPreservesProportions(t *testing.T) {
	d := blobs(90, 12) // 30 per class
	train, test, err := StratifiedSplit(d, 0.8, 2)
	if err != nil {
		t.Fatal(err)
	}
	count := func(ds Dataset) []int {
		c := make([]int, 3)
		for _, y := range ds.Y {
			c[y]++
		}
		return c
	}
	for c, n := range count(train) {
		if n != 24 {
			t.Fatalf("train class %d count = %d, want 24", c, n)
		}
	}
	for c, n := range count(test) {
		if n != 6 {
			t.Fatalf("test class %d count = %d, want 6", c, n)
		}
	}
}

func TestCrossValidate(t *testing.T) {
	d := blobs(90, 13)
	scores, err := CrossValidate(func() Classifier { return NewKNN(3) }, d, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 5 {
		t.Fatalf("fold count = %d", len(scores))
	}
	if Mean(scores) < 0.9 {
		t.Fatalf("CV mean F1 = %v", Mean(scores))
	}
	if _, err := CrossValidate(func() Classifier { return NewKNN(3) }, d, 1, 1); !errors.Is(err, ErrBadFolds) {
		t.Fatalf("folds=1 err = %v", err)
	}
}

func TestStandardizer(t *testing.T) {
	xs := [][]float64{{1, 10}, {3, 10}, {5, 10}}
	s, err := FitStandardizer(xs)
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.TransformAll(xs)
	if err != nil {
		t.Fatal(err)
	}
	// Column 0 standardized: mean 0.
	m := (out[0][0] + out[1][0] + out[2][0]) / 3
	if math.Abs(m) > 1e-12 {
		t.Fatalf("standardized mean = %v", m)
	}
	// Constant column maps to zeros, not NaN.
	for _, row := range out {
		if row[1] != 0 || math.IsNaN(row[1]) {
			t.Fatalf("constant column transformed to %v", row[1])
		}
	}
	if _, err := s.Transform([]float64{1}); !errors.Is(err, ErrDimMismatch) {
		t.Fatal("dim mismatch accepted")
	}
	if _, err := FitStandardizer(nil); !errors.Is(err, ErrEmptyDataset) {
		t.Fatal("empty fit accepted")
	}
}

func TestKMeansRecoversBlobs(t *testing.T) {
	d := blobs(150, 14)
	res, err := KMeans(d.X, DefaultKMeansConfig(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 3 {
		t.Fatalf("centroids = %d", len(res.Centroids))
	}
	// Each true center should have a centroid within 1 unit.
	for _, c := range [][]float64{{0, 0}, {5, 5}, {-5, 5}} {
		best := math.Inf(1)
		for _, cent := range res.Centroids {
			if d := math.Sqrt(SquaredL2(c, cent)); d < best {
				best = d
			}
		}
		if best > 1 {
			t.Fatalf("no centroid near %v (nearest %.2f)", c, best)
		}
	}
	// Assignments are consistent with Quantize.
	for i, p := range d.X {
		q, err := res.Quantize(p)
		if err != nil {
			t.Fatal(err)
		}
		if q != res.Assign[i] {
			t.Fatalf("assign[%d]=%d but Quantize=%d", i, res.Assign[i], q)
		}
	}
}

func TestKMeansValidation(t *testing.T) {
	if _, err := KMeans(nil, DefaultKMeansConfig(2, 1)); !errors.Is(err, ErrEmptyDataset) {
		t.Fatal("empty accepted")
	}
	pts := [][]float64{{1}, {2}}
	if _, err := KMeans(pts, DefaultKMeansConfig(3, 1)); !errors.Is(err, ErrBadK) {
		t.Fatal("k>n accepted")
	}
	if _, err := KMeans([][]float64{{1}, {2, 3}}, DefaultKMeansConfig(1, 1)); !errors.Is(err, ErrDimMismatch) {
		t.Fatal("ragged accepted")
	}
	// k == n degenerates to one point per cluster with zero inertia.
	res, err := KMeans(pts, DefaultKMeansConfig(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia > 1e-9 {
		t.Fatalf("k=n inertia = %v", res.Inertia)
	}
}

func TestKMeansInertiaDecreasesWithK(t *testing.T) {
	d := blobs(120, 15)
	var prev float64 = math.Inf(1)
	for _, k := range []int{1, 2, 3, 6} {
		res, err := KMeans(d.X, DefaultKMeansConfig(k, 2))
		if err != nil {
			t.Fatal(err)
		}
		if res.Inertia > prev+1e-9 {
			t.Fatalf("inertia increased with k=%d: %v > %v", k, res.Inertia, prev)
		}
		prev = res.Inertia
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean wrong")
	}
}

func TestEvaluateValidatesInputs(t *testing.T) {
	if _, err := Evaluate(NewKNN(1), Dataset{}, blobs(10, 1)); err == nil {
		t.Fatal("empty train accepted")
	}
	if _, err := Evaluate(NewKNN(1), blobs(10, 1), Dataset{}); err == nil {
		t.Fatal("empty test accepted")
	}
}

func TestAccuracyEqualsWeightedRecallProperty(t *testing.T) {
	// Identity: accuracy == sum(recall_c * support_c) / total.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		classes := 2 + rng.Intn(4)
		n := 20 + rng.Intn(80)
		actual := make([]int, n)
		pred := make([]int, n)
		for i := range actual {
			actual[i] = rng.Intn(classes)
			pred[i] = rng.Intn(classes)
		}
		cm, err := ConfusionFromPredictions(actual, pred, classes)
		if err != nil {
			return false
		}
		weighted := 0.0
		for _, m := range cm.PerClass() {
			weighted += m.Recall * float64(m.Support)
		}
		return math.Abs(cm.Accuracy()-weighted/float64(n)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTrainTestSplitPartitionProperty(t *testing.T) {
	// Train and test always partition the dataset: sizes sum and no row
	// appears twice (checked via label multiset).
	f := func(seed int64) bool {
		d := blobs(60, seed)
		train, test, err := TrainTestSplit(d, 0.7, seed)
		if err != nil {
			return false
		}
		if train.Len()+test.Len() != d.Len() {
			return false
		}
		count := func(ds Dataset) map[int]int {
			m := map[int]int{}
			for _, y := range ds.Y {
				m[y]++
			}
			return m
		}
		all := count(d)
		tr, te := count(train), count(test)
		for c, n := range all {
			if tr[c]+te[c] != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMacroF1BoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		classes := 2 + rng.Intn(3)
		n := 10 + rng.Intn(50)
		actual := make([]int, n)
		pred := make([]int, n)
		for i := range actual {
			actual[i] = rng.Intn(classes)
			pred[i] = rng.Intn(classes)
		}
		cm, _ := ConfusionFromPredictions(actual, pred, classes)
		m := cm.MacroF1()
		w := cm.WeightedF1()
		return m >= 0 && m <= 1 && w >= 0 && w <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReportRendering(t *testing.T) {
	cm, _ := ConfusionFromPredictions([]int{0, 1, 1}, []int{0, 1, 0}, 2)
	rep := cm.Report([]string{"clean", "tent"})
	for _, want := range []string{"precision", "clean", "tent", "accuracy", "macro f1"} {
		if !containsStr(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
	// Falls back to class indices when labels are short.
	rep = cm.Report(nil)
	if !containsStr(rep, "class 0") {
		t.Fatalf("report missing fallback names:\n%s", rep)
	}
}

func containsStr(s, sub string) bool {
	return strings.Contains(s, sub)
}
