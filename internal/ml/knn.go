package ml

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/vecmath"
)

// KNN is a k-nearest-neighbour classifier with Euclidean distance and
// majority vote (ties broken by the nearer neighbour set, then lower class
// id for determinism).
type KNN struct {
	K    int
	data Dataset
	fit  bool
}

// NewKNN returns a kNN classifier; k is clamped to at least 1.
func NewKNN(k int) *KNN {
	if k < 1 {
		k = 1
	}
	return &KNN{K: k}
}

// Name implements Classifier.
func (k *KNN) Name() string { return fmt.Sprintf("kNN(k=%d)", k.K) }

// Fit implements Classifier. kNN is a lazy learner: fitting just retains
// the training set.
func (k *KNN) Fit(d Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	k.data = d
	k.fit = true
	return nil
}

// SquaredL2 returns the squared Euclidean distance between equal-length
// vectors; kNN and kMeans share the blocked kernel in internal/vecmath,
// which panics on length mismatch (Dataset.Validate rules that out for
// fitted data).
func SquaredL2(a, b []float64) float64 {
	return vecmath.SquaredL2(a, b)
}

type neighbour struct {
	dist  float64
	label int
}

// Predict implements Classifier.
func (k *KNN) Predict(x []float64) (int, error) {
	if !k.fit {
		return 0, ErrNotFitted
	}
	if len(x) != k.data.Dim() {
		return 0, fmt.Errorf("%w: got %d, want %d", ErrDimMismatch, len(x), k.data.Dim())
	}
	p, err := k.PredictProba(x)
	if err != nil {
		return 0, err
	}
	best := 0
	for i := range p {
		if p[i] > p[best] {
			best = i
		}
	}
	return best, nil
}

// PredictProba implements ProbClassifier: the vote share per class among
// the k nearest neighbours.
func (k *KNN) PredictProba(x []float64) ([]float64, error) {
	if !k.fit {
		return nil, ErrNotFitted
	}
	if len(x) != k.data.Dim() {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrDimMismatch, len(x), k.data.Dim())
	}
	kk := k.K
	if kk > k.data.Len() {
		kk = k.data.Len()
	}
	ns := make([]neighbour, k.data.Len())
	for i, row := range k.data.X {
		ns[i] = neighbour{dist: SquaredL2(x, row), label: k.data.Y[i]}
	}
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].dist != ns[j].dist {
			return ns[i].dist < ns[j].dist
		}
		return ns[i].label < ns[j].label
	})
	votes := make([]float64, k.data.Classes)
	for _, n := range ns[:kk] {
		votes[n.label] += 1 / float64(kk)
	}
	return votes, nil
}

// GaussianNB is a Gaussian naive Bayes classifier: features are modelled
// as class-conditionally independent normals.
type GaussianNB struct {
	classes  int
	dim      int
	logPrior []float64
	mean     [][]float64
	variance [][]float64
	fit      bool
}

// NewGaussianNB returns an unfitted Gaussian naive Bayes classifier.
func NewGaussianNB() *GaussianNB { return &GaussianNB{} }

// Name implements Classifier.
func (g *GaussianNB) Name() string { return "NaiveBayes" }

// Fit implements Classifier.
func (g *GaussianNB) Fit(d Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	g.classes, g.dim = d.Classes, d.Dim()
	counts := make([]int, d.Classes)
	g.mean = make([][]float64, d.Classes)
	g.variance = make([][]float64, d.Classes)
	for c := 0; c < d.Classes; c++ {
		g.mean[c] = make([]float64, g.dim)
		g.variance[c] = make([]float64, g.dim)
	}
	for i, row := range d.X {
		c := d.Y[i]
		counts[c]++
		for j, v := range row {
			g.mean[c][j] += v
		}
	}
	for c := 0; c < d.Classes; c++ {
		if counts[c] == 0 {
			continue
		}
		for j := range g.mean[c] {
			g.mean[c][j] /= float64(counts[c])
		}
	}
	for i, row := range d.X {
		c := d.Y[i]
		for j, v := range row {
			dv := v - g.mean[c][j]
			g.variance[c][j] += dv * dv
		}
	}
	const varFloor = 1e-9
	for c := 0; c < d.Classes; c++ {
		for j := range g.variance[c] {
			if counts[c] > 0 {
				g.variance[c][j] /= float64(counts[c])
			}
			if g.variance[c][j] < varFloor {
				g.variance[c][j] = varFloor
			}
		}
	}
	g.logPrior = make([]float64, d.Classes)
	for c := range g.logPrior {
		if counts[c] == 0 {
			g.logPrior[c] = math.Inf(-1)
			continue
		}
		g.logPrior[c] = math.Log(float64(counts[c]) / float64(d.Len()))
	}
	g.fit = true
	return nil
}

func (g *GaussianNB) logLikelihoods(x []float64) ([]float64, error) {
	if !g.fit {
		return nil, ErrNotFitted
	}
	if len(x) != g.dim {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrDimMismatch, len(x), g.dim)
	}
	ll := make([]float64, g.classes)
	for c := 0; c < g.classes; c++ {
		s := g.logPrior[c]
		for j, v := range x {
			d := v - g.mean[c][j]
			s += -0.5*math.Log(2*math.Pi*g.variance[c][j]) - d*d/(2*g.variance[c][j])
		}
		ll[c] = s
	}
	return ll, nil
}

// Predict implements Classifier.
func (g *GaussianNB) Predict(x []float64) (int, error) {
	ll, err := g.logLikelihoods(x)
	if err != nil {
		return 0, err
	}
	best := 0
	for c := range ll {
		if ll[c] > ll[best] {
			best = c
		}
	}
	return best, nil
}

// PredictProba implements ProbClassifier via normalised posteriors.
func (g *GaussianNB) PredictProba(x []float64) ([]float64, error) {
	ll, err := g.logLikelihoods(x)
	if err != nil {
		return nil, err
	}
	mx := math.Inf(-1)
	for _, v := range ll {
		if v > mx {
			mx = v
		}
	}
	sum := 0.0
	out := make([]float64, len(ll))
	for i, v := range ll {
		e := math.Exp(v - mx)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
	return out, nil
}
