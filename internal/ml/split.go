package ml

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// shuffledIndices returns a seeded permutation of [0, n).
func shuffledIndices(n int, seed int64) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	return idx
}

// TrainTestSplit splits d into a training set with trainFrac of the rows
// and a test set with the remainder, after a seeded shuffle. The paper's
// protocol is an 80/20 split.
func TrainTestSplit(d Dataset, trainFrac float64, seed int64) (train, test Dataset, err error) {
	if err := d.Validate(); err != nil {
		return Dataset{}, Dataset{}, err
	}
	if trainFrac <= 0 || trainFrac >= 1 {
		return Dataset{}, Dataset{}, fmt.Errorf("ml: trainFrac %.3f out of (0,1)", trainFrac)
	}
	idx := shuffledIndices(d.Len(), seed)
	cut := int(float64(d.Len()) * trainFrac)
	if cut == 0 || cut == d.Len() {
		return Dataset{}, Dataset{}, fmt.Errorf("ml: split leaves an empty side (n=%d frac=%.3f)", d.Len(), trainFrac)
	}
	return d.Subset(idx[:cut]), d.Subset(idx[cut:]), nil
}

// StratifiedSplit splits d preserving per-class proportions. Every class
// must contribute at least one row to each side.
func StratifiedSplit(d Dataset, trainFrac float64, seed int64) (train, test Dataset, err error) {
	if err := d.Validate(); err != nil {
		return Dataset{}, Dataset{}, err
	}
	if trainFrac <= 0 || trainFrac >= 1 {
		return Dataset{}, Dataset{}, fmt.Errorf("ml: trainFrac %.3f out of (0,1)", trainFrac)
	}
	byClass := make(map[int][]int)
	for i, y := range d.Y {
		byClass[y] = append(byClass[y], i)
	}
	rng := rand.New(rand.NewSource(seed))
	var trainIdx, testIdx []int
	classes := make([]int, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Ints(classes) // deterministic iteration
	for _, c := range classes {
		rows := byClass[c]
		rng.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
		cut := int(float64(len(rows)) * trainFrac)
		if cut == 0 {
			cut = 1
		}
		if cut == len(rows) {
			cut = len(rows) - 1
		}
		if cut <= 0 {
			return Dataset{}, Dataset{}, fmt.Errorf("ml: class %d has too few rows (%d) to stratify", c, len(rows))
		}
		trainIdx = append(trainIdx, rows[:cut]...)
		testIdx = append(testIdx, rows[cut:]...)
	}
	rng.Shuffle(len(trainIdx), func(i, j int) { trainIdx[i], trainIdx[j] = trainIdx[j], trainIdx[i] })
	rng.Shuffle(len(testIdx), func(i, j int) { testIdx[i], testIdx[j] = testIdx[j], testIdx[i] })
	return d.Subset(trainIdx), d.Subset(testIdx), nil
}

// Standardizer performs per-feature z-score normalisation fitted on a
// training set and applied to any split, so test data never leaks into the
// statistics.
type Standardizer struct {
	Mean, Std []float64
}

// FitStandardizer computes per-column mean and standard deviation.
func FitStandardizer(xs [][]float64) (*Standardizer, error) {
	if len(xs) == 0 {
		return nil, ErrEmptyDataset
	}
	dim := len(xs[0])
	mean := make([]float64, dim)
	std := make([]float64, dim)
	for _, row := range xs {
		if len(row) != dim {
			return nil, ErrDimMismatch
		}
		for j, v := range row {
			mean[j] += v
		}
	}
	n := float64(len(xs))
	for j := range mean {
		mean[j] /= n
	}
	for _, row := range xs {
		for j, v := range row {
			d := v - mean[j]
			std[j] += d * d
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] / n)
		if std[j] < 1e-12 {
			std[j] = 1 // constant feature: leave centered at zero
		}
	}
	return &Standardizer{Mean: mean, Std: std}, nil
}

// Transform returns a standardized copy of x.
func (s *Standardizer) Transform(x []float64) ([]float64, error) {
	if len(x) != len(s.Mean) {
		return nil, ErrDimMismatch
	}
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = (v - s.Mean[j]) / s.Std[j]
	}
	return out, nil
}

// TransformAll standardizes every row.
func (s *Standardizer) TransformAll(xs [][]float64) ([][]float64, error) {
	out := make([][]float64, len(xs))
	for i, x := range xs {
		t, err := s.Transform(x)
		if err != nil {
			return nil, fmt.Errorf("ml: standardizing row %d: %w", i, err)
		}
		out[i] = t
	}
	return out, nil
}
