package feature

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/imagesim"
	"repro/internal/nn"
	"repro/internal/vecmath"
)

func solid(c imagesim.RGB) *imagesim.Image {
	img := imagesim.MustNew(16, 16)
	img.Fill(c)
	return img
}

// textured returns an image with strong corners/edges for the detector.
func textured(seed int64) *imagesim.Image {
	rng := rand.New(rand.NewSource(seed))
	img := imagesim.MustNew(48, 48)
	img.Fill(imagesim.RGB{R: 30, G: 30, B: 30})
	for i := 0; i < 8; i++ {
		x := 8 + rng.Intn(30)
		y := 8 + rng.Intn(30)
		img.FillRect(x, y, x+5, y+5, imagesim.RGB{R: 220, G: 220, B: 220})
	}
	return img
}

func TestColorHistogramBasics(t *testing.T) {
	ch := NewColorHistogram()
	if ch.Dim() != 50 {
		t.Fatalf("paper config dim = %d, want 50", ch.Dim())
	}
	v, err := ch.Extract(solid(imagesim.RGB{R: 255, G: 0, B: 0}))
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 50 {
		t.Fatalf("vector len = %d", len(v))
	}
	// Each of the three sections is a probability distribution.
	sums := []float64{0, 0, 0}
	for i, x := range v {
		if x < 0 {
			t.Fatalf("negative bin %d = %v", i, x)
		}
		switch {
		case i < 20:
			sums[0] += x
		case i < 40:
			sums[1] += x
		default:
			sums[2] += x
		}
	}
	for s, sum := range sums {
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("section %d sums to %v", s, sum)
		}
	}
	// Pure red: hue bin 0 holds all mass.
	if v[0] != 1 {
		t.Fatalf("red hue bin = %v, want 1", v[0])
	}
}

func TestColorHistogramSeparatesColors(t *testing.T) {
	noisy := func(base imagesim.RGB, seed int64) *imagesim.Image {
		rng := rand.New(rand.NewSource(seed))
		img := imagesim.MustNew(24, 24)
		img.Fill(base)
		return imagesim.AddGaussianNoise(img, 20, rng)
	}
	ch := NewColorHistogram()
	red, _ := ch.Extract(noisy(imagesim.RGB{R: 200, G: 10, B: 10}, 1))
	green, _ := ch.Extract(noisy(imagesim.RGB{R: 10, G: 200, B: 10}, 2))
	red2, _ := ch.Extract(noisy(imagesim.RGB{R: 200, G: 10, B: 10}, 3))
	dSame := l2(red, red2)
	dDiff := l2(red, green)
	if dSame >= dDiff {
		t.Fatalf("same-color distance %v >= cross-color %v", dSame, dDiff)
	}
}

func TestColorHistogramErrors(t *testing.T) {
	ch := NewColorHistogram()
	if _, err := ch.Extract(nil); !errors.Is(err, ErrNilImage) {
		t.Fatal("nil image accepted")
	}
	bad := &ColorHistogram{HBins: 0, SBins: 1, VBins: 1}
	if _, err := bad.Extract(solid(imagesim.RGB{})); err == nil {
		t.Fatal("zero bins accepted")
	}
}

func l2(a, b []float64) float64 {
	return math.Sqrt(vecmath.SquaredL2(a, b))
}

func TestDetectKeypointsFindsCorners(t *testing.T) {
	kps, err := DetectKeypoints(textured(1), DefaultSIFTConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(kps) == 0 {
		t.Fatal("no keypoints on textured image")
	}
	for _, kp := range kps {
		if len(kp.Descriptor) != DefaultSIFTConfig().DescriptorDim() {
			t.Fatalf("descriptor dim = %d", len(kp.Descriptor))
		}
		// Descriptors are ~unit L2 norm.
		if n := l2(kp.Descriptor, make([]float64, len(kp.Descriptor))); math.Abs(n-1) > 1e-6 {
			t.Fatalf("descriptor norm = %v", n)
		}
		if kp.Response <= 0 {
			t.Fatalf("non-positive response %v", kp.Response)
		}
	}
}

func TestDetectKeypointsFlatImageEmpty(t *testing.T) {
	kps, err := DetectKeypoints(solid(imagesim.RGB{R: 128, G: 128, B: 128}), DefaultSIFTConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(kps) != 0 {
		t.Fatalf("flat image produced %d keypoints", len(kps))
	}
}

func TestDetectKeypointsCapAndValidation(t *testing.T) {
	cfg := DefaultSIFTConfig()
	cfg.MaxKeypoints = 3
	kps, err := DetectKeypoints(textured(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(kps) > 3 {
		t.Fatalf("cap ignored: %d keypoints", len(kps))
	}
	// Strongest-first ordering.
	for i := 1; i < len(kps); i++ {
		if kps[i].Response > kps[i-1].Response {
			t.Fatal("keypoints not ordered by response")
		}
	}
	if _, err := DetectKeypoints(nil, cfg); !errors.Is(err, ErrNilImage) {
		t.Fatal("nil image accepted")
	}
	bad := cfg
	bad.GridCells = 0
	if _, err := DetectKeypoints(textured(1), bad); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestBoWTrainAndExtract(t *testing.T) {
	var train []*imagesim.Image
	for i := int64(0); i < 6; i++ {
		train = append(train, textured(i))
	}
	bow, err := TrainBoW(train, DefaultSIFTConfig(), 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if bow.Dim() == 0 || bow.Dim() > 8 {
		t.Fatalf("vocab size = %d", bow.Dim())
	}
	v, err := bow.Extract(textured(99))
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, x := range v {
		if x < 0 {
			t.Fatal("negative word count")
		}
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("BoW not L1-normalised: %v", sum)
	}
	// Flat image: zero vector, no error.
	flat, err := bow.Extract(solid(imagesim.RGB{R: 100, G: 100, B: 100}))
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range flat {
		if x != 0 {
			t.Fatal("flat image should map to zero BoW vector")
		}
	}
}

func TestBoWErrors(t *testing.T) {
	if _, err := TrainBoW([]*imagesim.Image{solid(imagesim.RGB{})}, DefaultSIFTConfig(), 4, 1); err == nil {
		t.Fatal("keypoint-free training set accepted")
	}
	b := &BoW{Cfg: DefaultSIFTConfig()}
	if _, err := b.Extract(textured(1)); !errors.Is(err, ErrNoVocabulary) {
		t.Fatal("untrained BoW extract accepted")
	}
	if _, err := b.Extract(nil); !errors.Is(err, ErrNilImage) {
		t.Fatal("nil image accepted")
	}
}

func TestImageToTensor(t *testing.T) {
	img := solid(imagesim.RGB{R: 255, G: 0, B: 0})
	tns, err := ImageToTensor(img, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(tns) != 3*8*8 {
		t.Fatalf("tensor len = %d", len(tns))
	}
	// Per-image normalization applies, so check the layout relatively:
	// the red plane dominates and G/B planes are equal.
	if tns[0] <= tns[64] || tns[64] != tns[128] {
		t.Fatalf("channel layout wrong: %v %v %v", tns[0], tns[64], tns[128])
	}
	// Zero mean, unit variance.
	mean, varsum := 0.0, 0.0
	for _, v := range tns {
		mean += v
	}
	mean /= float64(len(tns))
	for _, v := range tns {
		varsum += (v - mean) * (v - mean)
	}
	if math.Abs(mean) > 1e-9 || math.Abs(varsum/float64(len(tns))-1) > 1e-9 {
		t.Fatalf("tensor not standardized: mean=%v var=%v", mean, varsum/float64(len(tns)))
	}
	if _, err := ImageToTensor(nil, 8); !errors.Is(err, ErrNilImage) {
		t.Fatal("nil image accepted")
	}
}

func TestTrainCNNAndExtract(t *testing.T) {
	// Two visually distinct classes: red-dominant vs blue-dominant.
	rng := rand.New(rand.NewSource(4))
	var imgs []*imagesim.Image
	var labels []int
	for i := 0; i < 40; i++ {
		img := imagesim.MustNew(16, 16)
		cls := i % 2
		for j := range img.Pix {
			n := uint8(rng.Intn(60))
			if cls == 0 {
				img.Pix[j] = imagesim.RGB{R: 180 + n/2, G: n, B: n}
			} else {
				img.Pix[j] = imagesim.RGB{R: n, G: n, B: 180 + n/2}
			}
		}
		imgs = append(imgs, img)
		labels = append(labels, cls)
	}
	cfg := CNNTrainConfig{
		Net: nn.FeatureNetConfig{
			In: nn.Shape{C: 3, H: 16, W: 16}, Conv1: 4, Conv2: 8, Hidden: 16,
			Classes: 2, KernelSz: 3, Seed: 2,
		},
		Train: nn.TrainConfig{Epochs: 6, BatchSize: 8, LR: 0.05, Momentum: 0.9, Seed: 3},
	}
	ex, err := TrainCNN(context.Background(), imgs, labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Dim() != 16 {
		t.Fatalf("feature dim = %d", ex.Dim())
	}
	// Features of same-class images are closer than cross-class.
	f0a, _ := ex.Extract(imgs[0])
	f0b, _ := ex.Extract(imgs[2])
	f1, _ := ex.Extract(imgs[1])
	if l2(f0a, f0b) >= l2(f0a, f1) {
		t.Fatalf("CNN features not class-separated: same=%.3f cross=%.3f", l2(f0a, f0b), l2(f0a, f1))
	}
	if ex.Kind() != KindCNN {
		t.Fatal("kind wrong")
	}
}

func TestTrainCNNValidation(t *testing.T) {
	if _, err := TrainCNN(context.Background(), nil, nil, DefaultCNNTrainConfig(2)); err == nil {
		t.Fatal("empty training accepted")
	}
	if _, err := TrainCNN(context.Background(), []*imagesim.Image{solid(imagesim.RGB{})}, []int{0, 1}, DefaultCNNTrainConfig(2)); err == nil {
		t.Fatal("length mismatch accepted")
	}
	bad := DefaultCNNTrainConfig(2)
	bad.Net.In = nn.Shape{C: 3, H: 8, W: 16}
	if _, err := TrainCNN(context.Background(), []*imagesim.Image{solid(imagesim.RGB{})}, []int{0}, bad); err == nil {
		t.Fatal("non-square input accepted")
	}
	un := &CNNExtractor{}
	if _, err := un.Extract(solid(imagesim.RGB{})); !errors.Is(err, ErrNotTrained) {
		t.Fatal("untrained extract accepted")
	}
}

func TestExtractAll(t *testing.T) {
	ch := NewColorHistogram()
	vs, err := ExtractAll(ch, []*imagesim.Image{solid(imagesim.RGB{R: 255}), solid(imagesim.RGB{B: 255})})
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 || len(vs[0]) != 50 {
		t.Fatalf("ExtractAll shape wrong")
	}
	if _, err := ExtractAll(ch, []*imagesim.Image{nil}); err == nil {
		t.Fatal("nil element accepted")
	}
}

func TestKinds(t *testing.T) {
	if NewColorHistogram().Kind() != KindColorHist {
		t.Fatal("color kind")
	}
	if (&BoW{}).Kind() != KindSIFTBoW {
		t.Fatal("bow kind")
	}
}
