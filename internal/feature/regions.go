package feature

import (
	"sort"

	"repro/internal/imagesim"
)

// Region detection. The paper's annotation descriptor optionally bounds
// "a visual part of the image" (§IV-A); this detector proposes those
// parts: pixels that deviate strongly from the local background are
// grouped into connected components and returned as bounding boxes,
// largest first. It is deliberately simple — a saliency proposer, not an
// object detector — but it grounds region-level annotations end to end.

// Region is one proposed salient part of an image, in pixel coordinates
// with an exclusive upper bound ([X0,X1) × [Y0,Y1)).
type Region struct {
	X0, Y0, X1, Y1 int
	// Area is the number of salient pixels in the component (not the
	// box area).
	Area int
}

// Width returns the box width.
func (r Region) Width() int { return r.X1 - r.X0 }

// Height returns the box height.
func (r Region) Height() int { return r.Y1 - r.Y0 }

// RegionConfig controls detection.
type RegionConfig struct {
	// Threshold is the minimum per-channel deviation (0-255 units) from
	// the row-local background for a pixel to count as salient.
	Threshold float64
	// MinArea discards components smaller than this many pixels.
	MinArea int
	// MaxRegions caps the output (largest areas win); 0 = unlimited.
	MaxRegions int
}

// DefaultRegionConfig returns thresholds tuned for the synthetic street
// scenes (objects deviate strongly from the banded backdrop).
func DefaultRegionConfig() RegionConfig {
	return RegionConfig{Threshold: 45, MinArea: 12, MaxRegions: 8}
}

// DetectRegions proposes salient regions of img.
func DetectRegions(img *imagesim.Image, cfg RegionConfig) ([]Region, error) {
	if img == nil {
		return nil, ErrNilImage
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = 45
	}
	if cfg.MinArea <= 0 {
		cfg.MinArea = 1
	}
	w, h := img.W, img.H
	// Row-local background: the median gray of each row (the backdrop is
	// horizontally banded, so rows are good background units).
	gray := img.GrayPlane()
	rowMedian := make([]float64, h)
	buf := make([]float64, w)
	for y := 0; y < h; y++ {
		copy(buf, gray[y*w:(y+1)*w])
		sort.Float64s(buf)
		rowMedian[y] = buf[w/2]
	}
	salient := make([]bool, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			d := gray[y*w+x] - rowMedian[y]
			if d < 0 {
				d = -d
			}
			salient[y*w+x] = d >= cfg.Threshold
		}
	}
	// Connected components (4-connectivity) via iterative flood fill.
	seen := make([]bool, w*h)
	var out []Region
	var stack []int
	for start := range salient {
		if !salient[start] || seen[start] {
			continue
		}
		stack = append(stack[:0], start)
		seen[start] = true
		reg := Region{X0: w, Y0: h, X1: 0, Y1: 0}
		for len(stack) > 0 {
			p := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			x, y := p%w, p/w
			reg.Area++
			if x < reg.X0 {
				reg.X0 = x
			}
			if y < reg.Y0 {
				reg.Y0 = y
			}
			if x+1 > reg.X1 {
				reg.X1 = x + 1
			}
			if y+1 > reg.Y1 {
				reg.Y1 = y + 1
			}
			for _, q := range [4]int{p - 1, p + 1, p - w, p + w} {
				if q < 0 || q >= w*h {
					continue
				}
				// Prevent row wrap-around on horizontal moves.
				if (q == p-1 || q == p+1) && q/w != y {
					continue
				}
				if salient[q] && !seen[q] {
					seen[q] = true
					stack = append(stack, q)
				}
			}
		}
		if reg.Area >= cfg.MinArea {
			out = append(out, reg)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Area != out[j].Area {
			return out[i].Area > out[j].Area
		}
		if out[i].Y0 != out[j].Y0 {
			return out[i].Y0 < out[j].Y0
		}
		return out[i].X0 < out[j].X0
	})
	if cfg.MaxRegions > 0 && len(out) > cfg.MaxRegions {
		out = out[:cfg.MaxRegions]
	}
	return out, nil
}
