package feature

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/imagesim"
	"repro/internal/nn"
)

// CNNExtractor produces "CNN features": the post-ReLU penultimate
// activations of a small convolutional network fine-tuned on labelled
// training images (the reproduction's stand-in for the paper's
// Caffe transfer-learning step, §VII-A).
type CNNExtractor struct {
	Net  *nn.Network
	In   nn.Shape
	dim  int
	fit  bool
	side int
}

// CNNTrainConfig bundles the fine-tuning hyperparameters.
type CNNTrainConfig struct {
	Net   nn.FeatureNetConfig
	Train nn.TrainConfig
	// Augment adds this many augmented copies of every training image
	// (flips, crops, noise) before fine-tuning; it is the convnet's
	// defence against overfitting small labelled corpora.
	Augment int
	// AugmentSeed seeds the augmentation pipeline.
	AugmentSeed int64
}

// DefaultCNNTrainConfig returns the Fig. 6/7 harness configuration.
func DefaultCNNTrainConfig(classes int) CNNTrainConfig {
	return CNNTrainConfig{
		Net: nn.DefaultFeatureNetConfig(classes),
		Train: nn.TrainConfig{
			Epochs: 12, BatchSize: 16, LR: 0.01, Momentum: 0.9, Seed: 1,
		},
		Augment:     2,
		AugmentSeed: 1,
	}
}

// ErrNotTrained reports extraction before fine-tuning.
var ErrNotTrained = errors.New("feature: CNN extractor not trained")

// ImageToTensor converts an image to a (3, side, side) channel-major
// tensor with [0,1] values, resizing as needed.
func ImageToTensor(img *imagesim.Image, side int) ([]float64, error) {
	if img == nil {
		return nil, ErrNilImage
	}
	scaled := img
	if img.W != side || img.H != side {
		var err error
		scaled, err = img.Resize(side, side)
		if err != nil {
			return nil, err
		}
	}
	plane := side * side
	out := make([]float64, 3*plane)
	for i, p := range scaled.Pix {
		out[i] = float64(p.R) / 255
		out[plane+i] = float64(p.G) / 255
		out[2*plane+i] = float64(p.B) / 255
	}
	normalizeTensor(out)
	return out, nil
}

// normalizeTensor applies per-image zero-mean/unit-variance scaling — the
// standard CNN preprocessing step that makes the learned features robust
// to the capture-time illumination variance in street imagery.
func normalizeTensor(t []float64) {
	mean := 0.0
	for _, v := range t {
		mean += v
	}
	mean /= float64(len(t))
	varsum := 0.0
	for _, v := range t {
		d := v - mean
		varsum += d * d
	}
	std := math.Sqrt(varsum / float64(len(t)))
	if std < 1e-9 {
		std = 1
	}
	for i := range t {
		t[i] = (t[i] - mean) / std
	}
}

// TrainCNN fine-tunes a feature network on labelled images and returns an
// extractor over its penultimate layer. Cancellation is honoured between
// tensor-build records and between SGD minibatches (via nn.TrainConfig's
// Stop hook, which this function wires to ctx when the caller has not set
// its own).
func TrainCNN(ctx context.Context, imgs []*imagesim.Image, labels []int, cfg CNNTrainConfig) (*CNNExtractor, error) {
	if len(imgs) == 0 {
		return nil, errors.New("feature: empty CNN training set")
	}
	if len(imgs) != len(labels) {
		return nil, fmt.Errorf("feature: %d images but %d labels", len(imgs), len(labels))
	}
	if cfg.Net.In.H != cfg.Net.In.W {
		return nil, fmt.Errorf("feature: CNN input must be square, got %v", cfg.Net.In)
	}
	side := cfg.Net.In.H
	xs := make([][]float64, 0, len(imgs)*(1+cfg.Augment))
	ys := make([]int, 0, cap(xs))
	aug := imagesim.NewAugmentor(cfg.AugmentSeed, imagesim.OpFlipH, imagesim.OpCrop, imagesim.OpNoise)
	for i, img := range imgs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		t, err := ImageToTensor(img, side)
		if err != nil {
			return nil, fmt.Errorf("feature: CNN training image %d: %w", i, err)
		}
		xs = append(xs, t)
		ys = append(ys, labels[i])
		for a := 0; a < cfg.Augment; a++ {
			t, err := ImageToTensor(aug.Apply(img), side)
			if err != nil {
				return nil, fmt.Errorf("feature: augmenting training image %d: %w", i, err)
			}
			xs = append(xs, t)
			ys = append(ys, labels[i])
		}
	}
	net := nn.BuildFeatureNet(cfg.Net)
	if cfg.Train.Stop == nil {
		cfg.Train.Stop = ctx.Err
	}
	if _, err := net.Train(xs, ys, cfg.Train); err != nil {
		return nil, fmt.Errorf("feature: CNN fine-tuning: %w", err)
	}
	return &CNNExtractor{Net: net, In: cfg.Net.In, dim: cfg.Net.Hidden, fit: true, side: side}, nil
}

// Kind implements Extractor.
func (c *CNNExtractor) Kind() Kind { return KindCNN }

// Dim implements Extractor.
func (c *CNNExtractor) Dim() int { return c.dim }

// Extract implements Extractor.
func (c *CNNExtractor) Extract(img *imagesim.Image) ([]float64, error) {
	if !c.fit {
		return nil, ErrNotTrained
	}
	t, err := ImageToTensor(img, c.side)
	if err != nil {
		return nil, err
	}
	// Skip the final Dense classifier head; the preceding ReLU output is
	// the stored feature.
	return c.Net.FeatureVector(t, 1)
}
