package feature

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/imagesim"
	"repro/internal/ml"
	"repro/internal/par"
)

// Keypoint is one detected interest point with its local descriptor.
type Keypoint struct {
	X, Y       int
	Response   float64
	Descriptor []float64
}

// SIFTConfig sizes the simplified SIFT pipeline: a difference-of-Gaussians
// response for detection and a gradient-orientation-histogram descriptor
// over a square patch, matching the structure (not the full scale-space
// machinery) of Lowe's detector.
type SIFTConfig struct {
	// MaxKeypoints caps detections per image (strongest responses win).
	MaxKeypoints int
	// PatchRadius is the half-size of the descriptor patch.
	PatchRadius int
	// GridCells splits the patch into GridCells x GridCells spatial cells.
	GridCells int
	// OrientBins is the number of gradient-orientation bins per cell.
	OrientBins int
	// ResponseThreshold discards weak DoG responses.
	ResponseThreshold float64
}

// DefaultSIFTConfig returns the harness configuration: 4x4 cells of
// 8 orientation bins (the classic 128-d layout) over 8-pixel-radius
// patches, up to 40 keypoints per image.
func DefaultSIFTConfig() SIFTConfig {
	return SIFTConfig{
		MaxKeypoints: 40, PatchRadius: 8, GridCells: 4, OrientBins: 8,
		ResponseThreshold: 4,
	}
}

// DescriptorDim returns the per-keypoint descriptor length.
func (c SIFTConfig) DescriptorDim() int { return c.GridCells * c.GridCells * c.OrientBins }

// DetectKeypoints runs the simplified SIFT detector and descriptor on img.
func DetectKeypoints(img *imagesim.Image, cfg SIFTConfig) ([]Keypoint, error) {
	if img == nil {
		return nil, ErrNilImage
	}
	if cfg.PatchRadius < 1 || cfg.GridCells < 1 || cfg.OrientBins < 1 {
		return nil, fmt.Errorf("feature: invalid SIFT config %+v", cfg)
	}
	gray := img.GrayPlane()
	w, h := img.W, img.H
	// Two Gaussian blurs (sigma ratio ~1.6) approximated by box passes.
	g1 := boxBlur(gray, w, h, 1)
	g2 := boxBlur(gray, w, h, 2)
	dog := make([]float64, len(gray))
	for i := range dog {
		dog[i] = g1[i] - g2[i]
	}
	// Local extrema of |DoG| above threshold, away from borders.
	margin := cfg.PatchRadius + 1
	var kps []Keypoint
	for y := margin; y < h-margin; y++ {
		for x := margin; x < w-margin; x++ {
			v := dog[y*w+x]
			if math.Abs(v) < cfg.ResponseThreshold {
				continue
			}
			if isLocalExtremum(dog, w, x, y, v) {
				kps = append(kps, Keypoint{X: x, Y: y, Response: math.Abs(v)})
			}
		}
	}
	sort.Slice(kps, func(i, j int) bool {
		if kps[i].Response != kps[j].Response {
			return kps[i].Response > kps[j].Response
		}
		if kps[i].Y != kps[j].Y {
			return kps[i].Y < kps[j].Y
		}
		return kps[i].X < kps[j].X
	})
	if cfg.MaxKeypoints > 0 && len(kps) > cfg.MaxKeypoints {
		kps = kps[:cfg.MaxKeypoints]
	}
	for i := range kps {
		kps[i].Descriptor = describePatch(g1, w, h, kps[i].X, kps[i].Y, cfg)
	}
	return kps, nil
}

func isLocalExtremum(dog []float64, w, x, y int, v float64) bool {
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			n := dog[(y+dy)*w+x+dx]
			if v > 0 && n >= v {
				return false
			}
			if v < 0 && n <= v {
				return false
			}
		}
	}
	return true
}

// boxBlur performs `passes` 3x3 box filter passes (border clamped).
func boxBlur(src []float64, w, h, passes int) []float64 {
	cur := append([]float64(nil), src...)
	next := make([]float64, len(src))
	at := func(buf []float64, x, y int) float64 {
		if x < 0 {
			x = 0
		}
		if x >= w {
			x = w - 1
		}
		if y < 0 {
			y = 0
		}
		if y >= h {
			y = h - 1
		}
		return buf[y*w+x]
	}
	for p := 0; p < passes; p++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				s := 0.0
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						s += at(cur, x+dx, y+dy)
					}
				}
				next[y*w+x] = s / 9
			}
		}
		cur, next = next, cur
	}
	return cur
}

// describePatch builds the grid-of-orientation-histograms descriptor,
// L2-normalised with the SIFT 0.2 clamp-and-renormalise step.
func describePatch(gray []float64, w, h, cx, cy int, cfg SIFTConfig) []float64 {
	desc := make([]float64, cfg.DescriptorDim())
	r := cfg.PatchRadius
	cell := float64(2*r) / float64(cfg.GridCells)
	at := func(x, y int) float64 {
		if x < 0 {
			x = 0
		}
		if x >= w {
			x = w - 1
		}
		if y < 0 {
			y = 0
		}
		if y >= h {
			y = h - 1
		}
		return gray[y*w+x]
	}
	for dy := -r; dy < r; dy++ {
		for dx := -r; dx < r; dx++ {
			x, y := cx+dx, cy+dy
			gx := at(x+1, y) - at(x-1, y)
			gy := at(x, y+1) - at(x, y-1)
			mag := math.Hypot(gx, gy)
			if mag == 0 {
				continue
			}
			theta := math.Atan2(gy, gx) // [-pi, pi]
			bin := int((theta + math.Pi) / (2 * math.Pi) * float64(cfg.OrientBins))
			if bin >= cfg.OrientBins {
				bin = cfg.OrientBins - 1
			}
			gcx := int(float64(dx+r) / cell)
			gcy := int(float64(dy+r) / cell)
			if gcx >= cfg.GridCells {
				gcx = cfg.GridCells - 1
			}
			if gcy >= cfg.GridCells {
				gcy = cfg.GridCells - 1
			}
			desc[(gcy*cfg.GridCells+gcx)*cfg.OrientBins+bin] += mag
		}
	}
	l2normalize(desc)
	for i, v := range desc {
		if v > 0.2 {
			desc[i] = 0.2
		}
	}
	l2normalize(desc)
	return desc
}

func l2normalize(v []float64) {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	if s == 0 {
		return
	}
	n := math.Sqrt(s)
	for i := range v {
		v[i] /= n
	}
}

// BoW is a trained bag-of-visual-words vocabulary: keypoint descriptors
// are quantised against a kMeans codebook and pooled into a normalised
// word-count vector (paper §IV-A, "SIFT-BoW").
type BoW struct {
	Cfg      SIFTConfig
	Codebook *ml.KMeansResult
}

// ErrNoVocabulary reports quantisation before training.
var ErrNoVocabulary = errors.New("feature: BoW vocabulary not trained")

// TrainBoW extracts keypoints from the training images and clusters their
// descriptors into a k-word vocabulary. The paper uses k=1000 over 80% of
// the 22K-image corpus; the harness default scales k down with the corpus.
// Detection fans out per image; descriptors are flattened in image order so
// the kMeans input (and therefore the codebook) is order-deterministic.
func TrainBoW(imgs []*imagesim.Image, cfg SIFTConfig, k int, seed int64) (*BoW, error) {
	perImage, err := par.Map(len(imgs), func(i int) ([][]float64, error) {
		kps, err := DetectKeypoints(imgs[i], cfg)
		if err != nil {
			return nil, fmt.Errorf("feature: BoW training image %d: %w", i, err)
		}
		ds := make([][]float64, len(kps))
		for j, kp := range kps {
			ds[j] = kp.Descriptor
		}
		return ds, nil
	})
	if err != nil {
		return nil, err
	}
	var descs [][]float64
	for _, ds := range perImage {
		descs = append(descs, ds...)
	}
	if len(descs) == 0 {
		return nil, errors.New("feature: no keypoints detected in BoW training set")
	}
	if k > len(descs) {
		k = len(descs)
	}
	code, err := ml.KMeans(descs, ml.DefaultKMeansConfig(k, seed))
	if err != nil {
		return nil, fmt.Errorf("feature: BoW clustering: %w", err)
	}
	return &BoW{Cfg: cfg, Codebook: code}, nil
}

// Kind implements Extractor.
func (b *BoW) Kind() Kind { return KindSIFTBoW }

// Dim implements Extractor.
func (b *BoW) Dim() int {
	if b.Codebook == nil {
		return 0
	}
	return len(b.Codebook.Centroids)
}

// Extract implements Extractor: histogram of quantised keypoint words,
// L1-normalised (all-zero for images with no detected keypoints).
func (b *BoW) Extract(img *imagesim.Image) ([]float64, error) {
	if img == nil {
		return nil, ErrNilImage
	}
	if b.Codebook == nil {
		return nil, ErrNoVocabulary
	}
	kps, err := DetectKeypoints(img, b.Cfg)
	if err != nil {
		return nil, err
	}
	hist := make([]float64, b.Dim())
	for _, kp := range kps {
		w, err := b.Codebook.Quantize(kp.Descriptor)
		if err != nil {
			return nil, err
		}
		hist[w]++
	}
	if len(kps) > 0 {
		for i := range hist {
			hist[i] /= float64(len(kps))
		}
	}
	return hist, nil
}
