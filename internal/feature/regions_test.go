package feature

import (
	"errors"
	"testing"

	"repro/internal/imagesim"
)

func TestDetectRegionsFindsObjects(t *testing.T) {
	img := imagesim.MustNew(40, 40)
	img.Fill(imagesim.RGB{R: 120, G: 120, B: 120})
	// Two bright objects of different sizes.
	img.FillRect(5, 5, 15, 12, imagesim.RGB{R: 250, G: 250, B: 250})
	img.FillRect(25, 25, 30, 30, imagesim.RGB{R: 10, G: 10, B: 10})
	regs, err := DetectRegions(img, DefaultRegionConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 2 {
		t.Fatalf("regions = %+v", regs)
	}
	// Largest first.
	if regs[0].Area < regs[1].Area {
		t.Fatal("regions not area-ordered")
	}
	big := regs[0]
	if big.X0 != 5 || big.Y0 != 5 || big.X1 != 15 || big.Y1 != 12 {
		t.Fatalf("big region box = %+v", big)
	}
	if big.Width() != 10 || big.Height() != 7 {
		t.Fatalf("big region dims = %dx%d", big.Width(), big.Height())
	}
	if big.Area != 70 {
		t.Fatalf("big region area = %d", big.Area)
	}
}

func TestDetectRegionsUniformImageEmpty(t *testing.T) {
	img := imagesim.MustNew(20, 20)
	img.Fill(imagesim.RGB{R: 99, G: 99, B: 99})
	regs, err := DetectRegions(img, DefaultRegionConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("uniform image produced regions: %+v", regs)
	}
}

func TestDetectRegionsMinAreaAndCap(t *testing.T) {
	img := imagesim.MustNew(40, 40)
	img.Fill(imagesim.RGB{R: 120, G: 120, B: 120})
	// Many tiny specks and one large block.
	for i := 0; i < 10; i++ {
		img.Set(2+i*3, 2, imagesim.RGB{R: 255, G: 255, B: 255})
	}
	// Keep the block under half the row width: the detector's row-median
	// background model assumes objects are a row minority.
	img.FillRect(10, 20, 24, 35, imagesim.RGB{R: 255, G: 255, B: 255})
	cfg := RegionConfig{Threshold: 45, MinArea: 12, MaxRegions: 1}
	regs, err := DetectRegions(img, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 {
		t.Fatalf("regions = %+v", regs)
	}
	if regs[0].Area != 14*15 {
		t.Fatalf("kept region area = %d", regs[0].Area)
	}
}

func TestDetectRegionsNoRowWraparound(t *testing.T) {
	// A salient pixel at a row's right edge must not merge with one at
	// the next row's left edge.
	img := imagesim.MustNew(10, 4)
	img.Fill(imagesim.RGB{R: 120, G: 120, B: 120})
	img.Set(9, 1, imagesim.RGB{R: 255, G: 255, B: 255})
	img.Set(0, 2, imagesim.RGB{R: 255, G: 255, B: 255})
	regs, err := DetectRegions(img, RegionConfig{Threshold: 45, MinArea: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 2 {
		t.Fatalf("wrap-around merge: %+v", regs)
	}
}

func TestDetectRegionsNil(t *testing.T) {
	if _, err := DetectRegions(nil, DefaultRegionConfig()); !errors.Is(err, ErrNilImage) {
		t.Fatal("nil accepted")
	}
}

func TestDetectRegionsOnSyntheticScenes(t *testing.T) {
	// Object-bearing classes should propose at least one region more
	// often than clean scenes do. (Statistical: illumination noise can
	// trip either way on single images.)
	img := imagesim.MustNew(48, 48)
	img.Fill(imagesim.RGB{R: 130, G: 130, B: 130})
	img.FillRect(10, 25, 30, 37, imagesim.RGB{R: 40, G: 30, B: 20}) // a couch
	regs, err := DetectRegions(img, DefaultRegionConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) == 0 {
		t.Fatal("no region proposed for a clear object")
	}
}
