package feature

import (
	"context"
	"math"
	"testing"

	"repro/internal/imagesim"
	"repro/internal/par"
	"repro/internal/synth"
)

// TestCNNExtractionDeterministicAcrossWorkerCounts trains the feature net
// and extracts CNN features with one worker and with eight: the sharded
// gradient reduction and the stateless inference path must make both the
// trained weights and every extracted vector bit-identical.
func TestCNNExtractionDeterministicAcrossWorkerCounts(t *testing.T) {
	g, err := synth.NewGenerator(synth.DefaultConfig(40, 13))
	if err != nil {
		t.Fatal(err)
	}
	recs := g.Generate(40)
	imgs := make([]*imagesim.Image, len(recs))
	labels := make([]int, len(recs))
	for i, r := range recs {
		imgs[i] = r.Image
		labels[i] = int(r.Class)
	}
	run := func(workers int) [][]float64 {
		prev := par.SetWorkers(workers)
		defer par.SetWorkers(prev)
		cfg := DefaultCNNTrainConfig(synth.NumClasses)
		cfg.Train.Epochs = 2
		cfg.Augment = 1
		cnn, err := TrainCNN(context.Background(), imgs, labels, cfg)
		if err != nil {
			t.Fatal(err)
		}
		feats, err := ExtractAll(cnn, imgs)
		if err != nil {
			t.Fatal(err)
		}
		return feats
	}
	base := run(1)
	got := run(8)
	for i := range base {
		for j := range base[i] {
			if math.Float64bits(base[i][j]) != math.Float64bits(got[i][j]) {
				t.Fatalf("feature[%d][%d]: %v (1 worker) != %v (8 workers)",
					i, j, base[i][j], got[i][j])
			}
		}
	}
}

// TestBoWDeterministicAcrossWorkerCounts checks the parallel keypoint
// fan-out and sharded kMeans under the BoW trainer.
func TestBoWDeterministicAcrossWorkerCounts(t *testing.T) {
	g, err := synth.NewGenerator(synth.DefaultConfig(30, 17))
	if err != nil {
		t.Fatal(err)
	}
	recs := g.Generate(30)
	imgs := make([]*imagesim.Image, len(recs))
	for i, r := range recs {
		imgs[i] = r.Image
	}
	run := func(workers int) [][]float64 {
		prev := par.SetWorkers(workers)
		defer par.SetWorkers(prev)
		bow, err := TrainBoW(imgs, DefaultSIFTConfig(), 8, 3)
		if err != nil {
			t.Fatal(err)
		}
		feats, err := ExtractAll(bow, imgs)
		if err != nil {
			t.Fatal(err)
		}
		return feats
	}
	base := run(1)
	got := run(8)
	for i := range base {
		for j := range base[i] {
			if math.Float64bits(base[i][j]) != math.Float64bits(got[i][j]) {
				t.Fatalf("hist[%d][%d]: %v (1 worker) != %v (8 workers)",
					i, j, base[i][j], got[i][j])
			}
		}
	}
}
