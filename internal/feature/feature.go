// Package feature implements TVDP's visual descriptors (paper §IV-A):
// HSV colour histograms, a SIFT-style local-keypoint pipeline quantised
// into a bag-of-words, and CNN features taken from the penultimate layer
// of a small fine-tuned convnet. Every extractor implements one interface
// so the data-management layer can store, and the analysis layer can
// sweep, feature families uniformly.
package feature

import (
	"errors"
	"fmt"

	"repro/internal/imagesim"
	"repro/internal/par"
)

// Kind identifies a feature family in the store and experiment tables.
type Kind string

// The three visual descriptor families of the paper.
const (
	KindColorHist Kind = "color_hist"
	KindSIFTBoW   Kind = "sift_bow"
	KindCNN       Kind = "cnn"
)

// Extractor converts an image into a fixed-length feature vector.
type Extractor interface {
	// Kind identifies the feature family.
	Kind() Kind
	// Dim returns the output vector length.
	Dim() int
	// Extract computes the feature vector of img.
	Extract(img *imagesim.Image) ([]float64, error)
}

// ErrNilImage reports a nil image input.
var ErrNilImage = errors.New("feature: nil image")

// ExtractAll applies e to every image, fanning the per-image work out over
// the par worker pool with index-ordered results. Every Extractor in this
// package is safe for concurrent Extract calls (colour histograms and SIFT
// are pure; the CNN extractor uses the network's stateless inference path).
func ExtractAll(e Extractor, imgs []*imagesim.Image) ([][]float64, error) {
	return par.Map(len(imgs), func(i int) ([]float64, error) {
		v, err := e.Extract(imgs[i])
		if err != nil {
			return nil, fmt.Errorf("feature: image %d: %w", i, err)
		}
		return v, nil
	})
}

// ColorHistogram is the HSV colour histogram descriptor. The paper's
// configuration discretises hue, saturation, and value into 20, 20, and 10
// bins respectively and concatenates the three marginal histograms
// (50 dimensions), each L1-normalised.
type ColorHistogram struct {
	HBins, SBins, VBins int
}

// NewColorHistogram returns the paper's 20/20/10 configuration.
func NewColorHistogram() *ColorHistogram {
	return &ColorHistogram{HBins: 20, SBins: 20, VBins: 10}
}

// Kind implements Extractor.
func (c *ColorHistogram) Kind() Kind { return KindColorHist }

// Dim implements Extractor.
func (c *ColorHistogram) Dim() int { return c.HBins + c.SBins + c.VBins }

// Extract implements Extractor.
func (c *ColorHistogram) Extract(img *imagesim.Image) ([]float64, error) {
	if img == nil {
		return nil, ErrNilImage
	}
	if c.HBins <= 0 || c.SBins <= 0 || c.VBins <= 0 {
		return nil, fmt.Errorf("feature: non-positive histogram bins %d/%d/%d", c.HBins, c.SBins, c.VBins)
	}
	out := make([]float64, c.Dim())
	h := out[:c.HBins]
	s := out[c.HBins : c.HBins+c.SBins]
	v := out[c.HBins+c.SBins:]
	for _, px := range img.Pix {
		hsv := px.ToHSV()
		h[binOf(hsv.H/360, c.HBins)]++
		s[binOf(hsv.S, c.SBins)]++
		v[binOf(hsv.V, c.VBins)]++
	}
	n := float64(len(img.Pix))
	for i := range out {
		out[i] /= n
	}
	return out, nil
}

// binOf maps a unit-interval value to one of n bins, clamping the
// endpoint into the last bin.
func binOf(unit float64, n int) int {
	b := int(unit * float64(n))
	if b < 0 {
		b = 0
	}
	if b >= n {
		b = n - 1
	}
	return b
}
