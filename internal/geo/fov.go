package geo

import (
	"errors"
	"fmt"
	"math"
)

// FOV is the field-of-view spatial descriptor of an image (paper Fig. 3):
// camera location L, compass viewing direction θ, viewable angle α, and
// maximum visible distance R. It describes the pie-slice-shaped region of
// the Earth's surface the image depicts, and is a strictly richer spatial
// representation than the bare GPS point.
type FOV struct {
	// Camera is the camera location L at capture time.
	Camera Point `json:"camera"`
	// Direction is the compass viewing direction θ in degrees [0, 360).
	Direction float64 `json:"direction"`
	// Angle is the viewable angle α in degrees (0, 360].
	Angle float64 `json:"angle"`
	// Radius is the maximum visible distance R in meters.
	Radius float64 `json:"radius"`
}

// ErrInvalidFOV reports an FOV with out-of-range parameters.
var ErrInvalidFOV = errors.New("geo: invalid FOV")

// Validate checks the FOV parameter ranges.
func (f FOV) Validate() error {
	if err := f.Camera.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidFOV, err)
	}
	if f.Direction < 0 || f.Direction >= 360 || math.IsNaN(f.Direction) {
		return fmt.Errorf("%w: direction %.3f out of [0,360)", ErrInvalidFOV, f.Direction)
	}
	if f.Angle <= 0 || f.Angle > 360 || math.IsNaN(f.Angle) {
		return fmt.Errorf("%w: angle %.3f out of (0,360]", ErrInvalidFOV, f.Angle)
	}
	if f.Radius <= 0 || math.IsNaN(f.Radius) {
		return fmt.Errorf("%w: radius %.3f must be positive", ErrInvalidFOV, f.Radius)
	}
	return nil
}

// Contains reports whether ground point p is visible in the FOV: within
// Radius meters of the camera and within Angle/2 degrees of the viewing
// direction. The camera location itself is always contained.
func (f FOV) Contains(p Point) bool {
	d := Haversine(f.Camera, p)
	if d > f.Radius {
		return false
	}
	if d == 0 || f.Angle >= 360 {
		return true
	}
	return AngularDiff(Bearing(f.Camera, p), f.Direction) <= f.Angle/2
}

// SceneLocation returns the minimum bounding rectangle of the viewable
// scene (paper §IV-A "Scene Location"): the MBR of the camera point, the
// two sector edge endpoints, the arc midpoint, and any compass-axis extreme
// of the arc that falls inside the sector. This most accurately represents
// the semantic spatial extent of the image scene.
func (f FOV) SceneLocation() Rect {
	pts := []Point{f.Camera}
	half := f.Angle / 2
	// Sector edge endpoints and arc midpoint.
	for _, off := range []float64{-half, 0, +half} {
		pts = append(pts, Destination(f.Camera, NormalizeBearing(f.Direction+off), f.Radius))
	}
	// Arc extremes at the compass axes (N/E/S/W) reached within the sector.
	for _, axis := range []float64{0, 90, 180, 270} {
		if AngularDiff(axis, f.Direction) <= half {
			pts = append(pts, Destination(f.Camera, axis, f.Radius))
		}
	}
	return RectFromPoints(pts)
}

// IntersectsRect conservatively reports whether the FOV sector may overlap
// rectangle r. It first tests scene-MBR overlap, then refines by sampling
// the sector boundary; it never returns false for a true intersection of
// the MBR approximation used by the indexes.
func (f FOV) IntersectsRect(r Rect) bool {
	mbr := f.SceneLocation()
	if !mbr.Intersects(r) {
		return false
	}
	if r.Contains(f.Camera) {
		return true
	}
	// Sample sector interior on a fan grid: cheap, robust refinement.
	const rays, steps = 9, 4
	half := f.Angle / 2
	for i := 0; i < rays; i++ {
		brg := f.Direction - half + f.Angle*float64(i)/float64(rays-1)
		for s := 1; s <= steps; s++ {
			p := Destination(f.Camera, NormalizeBearing(brg), f.Radius*float64(s)/steps)
			if r.Contains(p) {
				return true
			}
		}
	}
	// Rect corners inside the sector also count.
	for _, p := range []Point{
		{r.MinLat, r.MinLon}, {r.MinLat, r.MaxLon},
		{r.MaxLat, r.MinLon}, {r.MaxLat, r.MaxLon},
	} {
		if f.Contains(p) {
			return true
		}
	}
	return false
}

// CoverageArea returns the area of the FOV sector in square meters
// (planar approximation: α/360 · πR², accurate at street scales).
func (f FOV) CoverageArea() float64 {
	return f.Angle / 360 * math.Pi * f.Radius * f.Radius
}

// Overlap returns a [0,1] score for how much f and g view the same region:
// the Jaccard overlap of their scene MBRs damped by viewing-direction
// disagreement. It is the redundancy measure used by the crowdsourcing
// coverage model to discount near-duplicate captures.
func (f FOV) Overlap(g FOV) float64 {
	a, b := f.SceneLocation(), g.SceneLocation()
	inter := a.OverlapArea(b)
	if inter == 0 {
		return 0
	}
	union := a.Area() + b.Area() - inter
	if union <= 0 {
		return 0
	}
	jac := inter / union
	dirPenalty := 1 - AngularDiff(f.Direction, g.Direction)/180
	return jac * dirPenalty
}
