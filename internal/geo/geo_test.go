package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// la is downtown Los Angeles, the anchor of every synthetic city in TVDP.
var la = Point{Lat: 34.0522, Lon: -118.2437}

func TestPointValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Point
		ok   bool
	}{
		{"origin", Point{0, 0}, true},
		{"la", la, true},
		{"north pole", Point{90, 0}, true},
		{"south pole", Point{-90, 0}, true},
		{"dateline", Point{0, 180}, true},
		{"lat too high", Point{90.01, 0}, false},
		{"lat too low", Point{-91, 0}, false},
		{"lon too high", Point{0, 180.5}, false},
		{"lon too low", Point{0, -181}, false},
		{"nan lat", Point{math.NaN(), 0}, false},
		{"nan lon", Point{0, math.NaN()}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.p.Validate()
			if (err == nil) != c.ok {
				t.Fatalf("Validate(%v) err=%v, want ok=%v", c.p, err, c.ok)
			}
		})
	}
}

func TestHaversineKnownDistances(t *testing.T) {
	ny := Point{Lat: 40.7128, Lon: -74.0060}
	d := Haversine(la, ny)
	// LA-NYC great circle is about 3936 km.
	if d < 3.90e6 || d > 3.97e6 {
		t.Fatalf("LA-NYC distance = %.0f m, want ~3936 km", d)
	}
	if Haversine(la, la) != 0 {
		t.Fatalf("self distance = %v, want 0", Haversine(la, la))
	}
}

func TestHaversineSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a := Point{Lat: rng.Float64()*170 - 85, Lon: rng.Float64()*358 - 179}
		b := Point{Lat: rng.Float64()*170 - 85, Lon: rng.Float64()*358 - 179}
		d1, d2 := Haversine(a, b), Haversine(b, a)
		if math.Abs(d1-d2) > 1e-6 {
			t.Fatalf("asymmetric haversine: %v vs %v", d1, d2)
		}
		if d1 < 0 {
			t.Fatalf("negative distance %v", d1)
		}
	}
}

func TestHaversineTriangleInequality(t *testing.T) {
	f := func(a1, o1, a2, o2, a3, o3 float64) bool {
		p := func(a, o float64) Point {
			return Point{Lat: math.Mod(math.Abs(a), 85), Lon: math.Mod(math.Abs(o), 179)}
		}
		x, y, z := p(a1, o1), p(a2, o2), p(a3, o3)
		return Haversine(x, z) <= Haversine(x, y)+Haversine(y, z)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDestinationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		start := Point{Lat: rng.Float64()*120 - 60, Lon: rng.Float64()*340 - 170}
		brg := rng.Float64() * 360
		dist := rng.Float64() * 50000
		end := Destination(start, brg, dist)
		got := Haversine(start, end)
		if math.Abs(got-dist) > 1.0 { // within 1 m over <=50 km
			t.Fatalf("Destination dist mismatch: want %.3f got %.3f", dist, got)
		}
	}
}

func TestDestinationBearingConsistency(t *testing.T) {
	// Traveling east from LA should land east of LA at same-ish latitude.
	e := Destination(la, 90, 10000)
	if e.Lon <= la.Lon {
		t.Fatalf("eastward destination lon %v not > %v", e.Lon, la.Lon)
	}
	if math.Abs(e.Lat-la.Lat) > 0.01 {
		t.Fatalf("eastward destination changed latitude too much: %v", e.Lat)
	}
	b := Bearing(la, e)
	if AngularDiff(b, 90) > 1 {
		t.Fatalf("bearing to eastward point = %v, want ~90", b)
	}
}

func TestNormalizeBearing(t *testing.T) {
	cases := map[float64]float64{0: 0, 360: 0, -90: 270, 450: 90, 720.5: 0.5, -720: 0}
	for in, want := range cases {
		if got := NormalizeBearing(in); math.Abs(got-want) > 1e-9 {
			t.Errorf("NormalizeBearing(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestAngularDiff(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{0, 0, 0}, {0, 180, 180}, {10, 350, 20}, {90, 270, 180}, {359, 1, 2},
	}
	for _, c := range cases {
		if got := AngularDiff(c.a, c.b); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("AngularDiff(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := AngularDiff(c.b, c.a); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("AngularDiff(%v,%v) = %v, want %v (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestRectBasics(t *testing.T) {
	r := NewRect(Point{2, 3}, Point{1, 5})
	want := Rect{MinLat: 1, MinLon: 3, MaxLat: 2, MaxLon: 5}
	if r != want {
		t.Fatalf("NewRect = %+v, want %+v", r, want)
	}
	if !r.Valid() {
		t.Fatal("rect should be valid")
	}
	if !r.Contains(Point{1.5, 4}) || r.Contains(Point{0, 4}) || r.Contains(Point{1.5, 6}) {
		t.Fatal("Contains wrong")
	}
	if c := r.Center(); c != (Point{1.5, 4}) {
		t.Fatalf("Center = %v", c)
	}
	if a := r.Area(); a != 2 {
		t.Fatalf("Area = %v, want 2", a)
	}
	if m := r.Margin(); m != 3 {
		t.Fatalf("Margin = %v, want 3", m)
	}
}

func TestRectSetOps(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	b := Rect{1, 1, 3, 3}
	c := Rect{5, 5, 6, 6}
	if !a.Intersects(b) || a.Intersects(c) {
		t.Fatal("Intersects wrong")
	}
	u := a.Union(b)
	if u != (Rect{0, 0, 3, 3}) {
		t.Fatalf("Union = %+v", u)
	}
	ix, ok := a.Intersection(b)
	if !ok || ix != (Rect{1, 1, 2, 2}) {
		t.Fatalf("Intersection = %+v ok=%v", ix, ok)
	}
	if _, ok := a.Intersection(c); ok {
		t.Fatal("disjoint intersection should be empty")
	}
	if got := a.OverlapArea(b); got != 1 {
		t.Fatalf("OverlapArea = %v, want 1", got)
	}
	if !u.ContainsRect(a) || !u.ContainsRect(b) {
		t.Fatal("union must contain operands")
	}
	if a.Enlargement(b) != u.Area()-a.Area() {
		t.Fatal("Enlargement identity broken")
	}
}

func TestRectUnionProperties(t *testing.T) {
	f := func(a1, o1, a2, o2, a3, o3, a4, o4 float64) bool {
		m := func(v float64) float64 { return math.Mod(v, 80) }
		r1 := NewRect(Point{m(a1), m(o1)}, Point{m(a2), m(o2)})
		r2 := NewRect(Point{m(a3), m(o3)}, Point{m(a4), m(o4)})
		u := r1.Union(r2)
		return u.ContainsRect(r1) && u.ContainsRect(r2) &&
			u.Area() >= r1.Area() && u.Area() >= r2.Area() &&
			u == r2.Union(r1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRectFromPoints(t *testing.T) {
	pts := []Point{{1, 2}, {-1, 5}, {0, 0}}
	r := RectFromPoints(pts)
	for _, p := range pts {
		if !r.Contains(p) {
			t.Fatalf("MBR %+v does not contain %v", r, p)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("RectFromPoints(nil) should panic")
		}
	}()
	RectFromPoints(nil)
}

func TestRectBuffer(t *testing.T) {
	r := Rect{la.Lat, la.Lon, la.Lat, la.Lon} // degenerate point rect
	b := r.Buffer(100)
	if !b.ContainsRect(r) {
		t.Fatal("buffered rect must contain original")
	}
	// 100 m buffer spans ~200 m north-south.
	ns := Haversine(Point{b.MinLat, la.Lon}, Point{b.MaxLat, la.Lon})
	if ns < 195 || ns > 205 {
		t.Fatalf("buffer NS extent = %.1f m, want ~200", ns)
	}
}

func TestDistancePointRect(t *testing.T) {
	r := NewRect(Destination(la, 0, 100), Destination(la, 135, 100))
	if d := DistancePointRect(r.Center(), r); d != 0 {
		t.Fatalf("inside distance = %v, want 0", d)
	}
	far := Destination(la, 270, 5000)
	d := DistancePointRect(far, r)
	if d < 4000 || d > 6000 {
		t.Fatalf("outside distance = %v, want ~5000", d)
	}
}

func TestMetersPerDegree(t *testing.T) {
	if v := MetersPerDegreeLon(0); math.Abs(v-MetersPerDegreeLat) > 1e-6 {
		t.Fatalf("equator m/deg lon = %v, want %v", v, MetersPerDegreeLat)
	}
	if v := MetersPerDegreeLon(60); math.Abs(v-MetersPerDegreeLat/2) > 1 {
		t.Fatalf("60N m/deg lon = %v, want half of %v", v, MetersPerDegreeLat)
	}
}

func TestFOVValidate(t *testing.T) {
	good := FOV{Camera: la, Direction: 45, Angle: 60, Radius: 100}
	if err := good.Validate(); err != nil {
		t.Fatalf("good FOV rejected: %v", err)
	}
	bad := []FOV{
		{Camera: Point{100, 0}, Direction: 0, Angle: 60, Radius: 100},
		{Camera: la, Direction: -1, Angle: 60, Radius: 100},
		{Camera: la, Direction: 360, Angle: 60, Radius: 100},
		{Camera: la, Direction: 0, Angle: 0, Radius: 100},
		{Camera: la, Direction: 0, Angle: 361, Radius: 100},
		{Camera: la, Direction: 0, Angle: 60, Radius: 0},
		{Camera: la, Direction: 0, Angle: 60, Radius: -5},
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("bad FOV %d accepted: %+v", i, f)
		}
	}
}

func TestFOVContains(t *testing.T) {
	f := FOV{Camera: la, Direction: 0, Angle: 90, Radius: 1000} // facing north
	if !f.Contains(la) {
		t.Fatal("camera location must be contained")
	}
	north := Destination(la, 0, 500)
	if !f.Contains(north) {
		t.Fatal("point straight ahead must be contained")
	}
	tooFar := Destination(la, 0, 1500)
	if f.Contains(tooFar) {
		t.Fatal("point beyond radius must not be contained")
	}
	behind := Destination(la, 180, 500)
	if f.Contains(behind) {
		t.Fatal("point behind camera must not be contained")
	}
	edge := Destination(la, 44, 500) // just inside the 45-degree half-angle
	if !f.Contains(edge) {
		t.Fatal("point just inside sector edge must be contained")
	}
	outside := Destination(la, 50, 500)
	if f.Contains(outside) {
		t.Fatal("point outside sector must not be contained")
	}
}

func TestFOVOmnidirectional(t *testing.T) {
	f := FOV{Camera: la, Direction: 0, Angle: 360, Radius: 300}
	for brg := 0.0; brg < 360; brg += 30 {
		if !f.Contains(Destination(la, brg, 200)) {
			t.Fatalf("360-degree FOV must contain bearing %v", brg)
		}
	}
}

func TestSceneLocationContainsSector(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		f := FOV{
			Camera:    Point{Lat: 34 + rng.Float64(), Lon: -118 + rng.Float64()},
			Direction: rng.Float64() * 360,
			Angle:     10 + rng.Float64()*350,
			Radius:    50 + rng.Float64()*2000,
		}
		mbr := f.SceneLocation()
		if !mbr.Contains(f.Camera) {
			t.Fatalf("scene MBR must contain camera: %+v", f)
		}
		// Every sampled visible point must be inside the MBR.
		half := f.Angle / 2
		for j := 0; j < 20; j++ {
			brg := NormalizeBearing(f.Direction - half + rng.Float64()*f.Angle)
			p := Destination(f.Camera, brg, rng.Float64()*f.Radius)
			if !mbr.Contains(p) {
				t.Fatalf("visible point %v outside scene MBR %+v (fov %+v)", p, mbr, f)
			}
		}
	}
}

func TestSceneLocationNorthFacingIncludesArcTop(t *testing.T) {
	f := FOV{Camera: la, Direction: 0, Angle: 90, Radius: 1000}
	mbr := f.SceneLocation()
	top := Destination(la, 0, 1000)
	if mbr.MaxLat < top.Lat-1e-9 {
		t.Fatalf("north-facing scene MBR MaxLat %v below arc top %v", mbr.MaxLat, top.Lat)
	}
}

func TestFOVIntersectsRect(t *testing.T) {
	f := FOV{Camera: la, Direction: 0, Angle: 60, Radius: 1000}
	ahead := Destination(la, 0, 600)
	r1 := NewRect(Destination(ahead, 315, 50), Destination(ahead, 135, 50))
	if !f.IntersectsRect(r1) {
		t.Fatal("rect straight ahead must intersect")
	}
	behind := Destination(la, 180, 600)
	r2 := NewRect(Destination(behind, 315, 50), Destination(behind, 135, 50))
	if f.IntersectsRect(r2) {
		t.Fatal("rect behind camera must not intersect")
	}
	// Rect containing the camera always intersects.
	r3 := NewRect(Destination(la, 315, 20), Destination(la, 135, 20))
	if !f.IntersectsRect(r3) {
		t.Fatal("rect containing camera must intersect")
	}
}

func TestFOVCoverageArea(t *testing.T) {
	full := FOV{Camera: la, Direction: 0, Angle: 360, Radius: 100}
	if got, want := full.CoverageArea(), math.Pi*100*100; math.Abs(got-want) > 1e-6 {
		t.Fatalf("full circle area = %v, want %v", got, want)
	}
	half := FOV{Camera: la, Direction: 0, Angle: 180, Radius: 100}
	if got, want := half.CoverageArea(), math.Pi*100*100/2; math.Abs(got-want) > 1e-6 {
		t.Fatalf("half circle area = %v, want %v", got, want)
	}
}

func TestFOVOverlap(t *testing.T) {
	f := FOV{Camera: la, Direction: 0, Angle: 60, Radius: 500}
	same := f
	if ov := f.Overlap(same); ov < 0.99 {
		t.Fatalf("identical FOVs overlap = %v, want ~1", ov)
	}
	opposite := FOV{Camera: la, Direction: 180, Angle: 60, Radius: 500}
	if ov := f.Overlap(opposite); ov > 0.2 {
		t.Fatalf("opposite-facing overlap = %v, want small", ov)
	}
	farAway := FOV{Camera: Destination(la, 90, 5000), Direction: 0, Angle: 60, Radius: 500}
	if ov := f.Overlap(farAway); ov != 0 {
		t.Fatalf("disjoint FOVs overlap = %v, want 0", ov)
	}
	// Overlap is symmetric.
	g := FOV{Camera: Destination(la, 0, 100), Direction: 20, Angle: 80, Radius: 400}
	if a, b := f.Overlap(g), g.Overlap(f); math.Abs(a-b) > 1e-9 {
		t.Fatalf("overlap not symmetric: %v vs %v", a, b)
	}
}

func TestFOVContainsImpliesSceneMBR(t *testing.T) {
	// Property: any point the FOV contains lies inside its scene MBR.
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 60; i++ {
		f := FOV{
			Camera:    Point{Lat: 33 + rng.Float64()*2, Lon: -119 + rng.Float64()*2},
			Direction: rng.Float64() * 360,
			Angle:     20 + rng.Float64()*340,
			Radius:    50 + rng.Float64()*1500,
		}
		mbr := f.SceneLocation()
		for j := 0; j < 20; j++ {
			p := Destination(f.Camera, rng.Float64()*360, rng.Float64()*f.Radius*1.2)
			if f.Contains(p) && !mbr.Contains(p) {
				t.Fatalf("contained point %v outside scene MBR %+v (fov %+v)", p, mbr, f)
			}
		}
	}
}

func TestIntersectsRectConsistentWithContains(t *testing.T) {
	// A degenerate rect at a contained point must intersect the FOV.
	rng := rand.New(rand.NewSource(32))
	for i := 0; i < 60; i++ {
		f := FOV{
			Camera:    Point{Lat: 34 + rng.Float64(), Lon: -118 + rng.Float64()},
			Direction: rng.Float64() * 360,
			Angle:     30 + rng.Float64()*300,
			Radius:    100 + rng.Float64()*800,
		}
		p := Destination(f.Camera, rng.Float64()*360, rng.Float64()*f.Radius)
		if !f.Contains(p) {
			continue
		}
		r := Rect{MinLat: p.Lat, MinLon: p.Lon, MaxLat: p.Lat, MaxLon: p.Lon}
		if !f.IntersectsRect(r) {
			t.Fatalf("FOV contains %v but IntersectsRect says no (fov %+v)", p, f)
		}
	}
}
