// Package geo provides the geospatial substrate for TVDP: geographic
// points, bounding rectangles, bearings, great-circle distances, and the
// camera field-of-view (FOV) model the platform uses as its primary
// spatial descriptor (paper §IV-A, Fig. 3).
//
// Coordinates are WGS84 degrees: latitude in [-90, 90], longitude in
// (-180, 180]. Distances are meters. Bearings are compass degrees in
// [0, 360) measured clockwise from true north.
package geo

import (
	"errors"
	"fmt"
	"math"
)

// EarthRadiusMeters is the mean Earth radius used for all great-circle math.
const EarthRadiusMeters = 6371000.0

// Point is a geographic location in WGS84 degrees.
type Point struct {
	Lat float64 `json:"lat"`
	Lon float64 `json:"lon"`
}

// ErrInvalidPoint reports a latitude or longitude outside its legal range.
var ErrInvalidPoint = errors.New("geo: invalid point")

// Validate reports whether p lies within the legal WGS84 ranges.
func (p Point) Validate() error {
	if math.IsNaN(p.Lat) || math.IsNaN(p.Lon) {
		return fmt.Errorf("%w: NaN coordinate", ErrInvalidPoint)
	}
	if p.Lat < -90 || p.Lat > 90 {
		return fmt.Errorf("%w: latitude %.6f out of [-90,90]", ErrInvalidPoint, p.Lat)
	}
	if p.Lon < -180 || p.Lon > 180 {
		return fmt.Errorf("%w: longitude %.6f out of [-180,180]", ErrInvalidPoint, p.Lon)
	}
	return nil
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.6f,%.6f)", p.Lat, p.Lon)
}

func deg2rad(d float64) float64 { return d * math.Pi / 180 }
func rad2deg(r float64) float64 { return r * 180 / math.Pi }

// Haversine returns the great-circle distance between a and b in meters.
func Haversine(a, b Point) float64 {
	la1, lo1 := deg2rad(a.Lat), deg2rad(a.Lon)
	la2, lo2 := deg2rad(b.Lat), deg2rad(b.Lon)
	dla := la2 - la1
	dlo := lo2 - lo1
	s := math.Sin(dla/2)*math.Sin(dla/2) +
		math.Cos(la1)*math.Cos(la2)*math.Sin(dlo/2)*math.Sin(dlo/2)
	return 2 * EarthRadiusMeters * math.Asin(math.Min(1, math.Sqrt(s)))
}

// Bearing returns the initial compass bearing in degrees [0,360) when
// traveling from a to b along the great circle.
func Bearing(a, b Point) float64 {
	la1, la2 := deg2rad(a.Lat), deg2rad(b.Lat)
	dlo := deg2rad(b.Lon - a.Lon)
	y := math.Sin(dlo) * math.Cos(la2)
	x := math.Cos(la1)*math.Sin(la2) - math.Sin(la1)*math.Cos(la2)*math.Cos(dlo)
	return NormalizeBearing(rad2deg(math.Atan2(y, x)))
}

// Destination returns the point reached by traveling dist meters from p on
// the given compass bearing (degrees).
func Destination(p Point, bearingDeg, dist float64) Point {
	la1 := deg2rad(p.Lat)
	lo1 := deg2rad(p.Lon)
	brg := deg2rad(bearingDeg)
	ad := dist / EarthRadiusMeters
	la2 := math.Asin(math.Sin(la1)*math.Cos(ad) + math.Cos(la1)*math.Sin(ad)*math.Cos(brg))
	lo2 := lo1 + math.Atan2(math.Sin(brg)*math.Sin(ad)*math.Cos(la1),
		math.Cos(ad)-math.Sin(la1)*math.Sin(la2))
	lon := rad2deg(lo2)
	// Normalize longitude into (-180, 180].
	for lon > 180 {
		lon -= 360
	}
	for lon <= -180 {
		lon += 360
	}
	return Point{Lat: rad2deg(la2), Lon: lon}
}

// NormalizeBearing maps an arbitrary degree value into [0, 360).
func NormalizeBearing(deg float64) float64 {
	d := math.Mod(deg, 360)
	if d < 0 {
		d += 360
	}
	return d
}

// AngularDiff returns the absolute smallest angle in degrees [0,180]
// between two compass bearings.
func AngularDiff(a, b float64) float64 {
	d := math.Abs(NormalizeBearing(a) - NormalizeBearing(b))
	if d > 180 {
		d = 360 - d
	}
	return d
}

// Rect is an axis-aligned geographic bounding rectangle. MinLat <= MaxLat
// and MinLon <= MaxLon; rectangles never wrap the antimeridian (the
// synthetic cities used throughout TVDP stay well inside a hemisphere).
type Rect struct {
	MinLat float64 `json:"min_lat"`
	MinLon float64 `json:"min_lon"`
	MaxLat float64 `json:"max_lat"`
	MaxLon float64 `json:"max_lon"`
}

// NewRect returns the rectangle spanning the two corner points in any order.
func NewRect(a, b Point) Rect {
	return Rect{
		MinLat: math.Min(a.Lat, b.Lat),
		MinLon: math.Min(a.Lon, b.Lon),
		MaxLat: math.Max(a.Lat, b.Lat),
		MaxLon: math.Max(a.Lon, b.Lon),
	}
}

// RectFromPoints returns the minimum bounding rectangle of pts.
// It panics if pts is empty.
func RectFromPoints(pts []Point) Rect {
	if len(pts) == 0 {
		panic("geo: RectFromPoints with no points")
	}
	r := Rect{MinLat: pts[0].Lat, MaxLat: pts[0].Lat, MinLon: pts[0].Lon, MaxLon: pts[0].Lon}
	for _, p := range pts[1:] {
		r = r.ExtendPoint(p)
	}
	return r
}

// Valid reports whether r is a well-formed rectangle.
func (r Rect) Valid() bool {
	return r.MinLat <= r.MaxLat && r.MinLon <= r.MaxLon &&
		!math.IsNaN(r.MinLat) && !math.IsNaN(r.MinLon) &&
		!math.IsNaN(r.MaxLat) && !math.IsNaN(r.MaxLon)
}

// Center returns the midpoint of r.
func (r Rect) Center() Point {
	return Point{Lat: (r.MinLat + r.MaxLat) / 2, Lon: (r.MinLon + r.MaxLon) / 2}
}

// Contains reports whether p lies inside or on the border of r.
func (r Rect) Contains(p Point) bool {
	return p.Lat >= r.MinLat && p.Lat <= r.MaxLat &&
		p.Lon >= r.MinLon && p.Lon <= r.MaxLon
}

// ContainsRect reports whether r fully contains o.
func (r Rect) ContainsRect(o Rect) bool {
	return o.MinLat >= r.MinLat && o.MaxLat <= r.MaxLat &&
		o.MinLon >= r.MinLon && o.MaxLon <= r.MaxLon
}

// Intersects reports whether r and o share any point.
func (r Rect) Intersects(o Rect) bool {
	return r.MinLat <= o.MaxLat && o.MinLat <= r.MaxLat &&
		r.MinLon <= o.MaxLon && o.MinLon <= r.MaxLon
}

// Union returns the smallest rectangle containing both r and o.
func (r Rect) Union(o Rect) Rect {
	return Rect{
		MinLat: math.Min(r.MinLat, o.MinLat),
		MinLon: math.Min(r.MinLon, o.MinLon),
		MaxLat: math.Max(r.MaxLat, o.MaxLat),
		MaxLon: math.Max(r.MaxLon, o.MaxLon),
	}
}

// Intersection returns the overlap of r and o and whether it is non-empty.
func (r Rect) Intersection(o Rect) (Rect, bool) {
	out := Rect{
		MinLat: math.Max(r.MinLat, o.MinLat),
		MinLon: math.Max(r.MinLon, o.MinLon),
		MaxLat: math.Min(r.MaxLat, o.MaxLat),
		MaxLon: math.Min(r.MaxLon, o.MaxLon),
	}
	if !out.Valid() {
		return Rect{}, false
	}
	return out, true
}

// ExtendPoint returns r grown to include p.
func (r Rect) ExtendPoint(p Point) Rect {
	return Rect{
		MinLat: math.Min(r.MinLat, p.Lat),
		MinLon: math.Min(r.MinLon, p.Lon),
		MaxLat: math.Max(r.MaxLat, p.Lat),
		MaxLon: math.Max(r.MaxLon, p.Lon),
	}
}

// Area returns the rectangle's area in squared degrees. It is a pure
// index-ordering metric (R-tree enlargement heuristics), not a physical area.
func (r Rect) Area() float64 {
	if !r.Valid() {
		return 0
	}
	return (r.MaxLat - r.MinLat) * (r.MaxLon - r.MinLon)
}

// Margin returns the half-perimeter in degrees (R*-tree split heuristic).
func (r Rect) Margin() float64 {
	if !r.Valid() {
		return 0
	}
	return (r.MaxLat - r.MinLat) + (r.MaxLon - r.MinLon)
}

// Enlargement returns how much r's area grows if extended to include o.
func (r Rect) Enlargement(o Rect) float64 {
	return r.Union(o).Area() - r.Area()
}

// OverlapArea returns the area of the intersection of r and o in squared
// degrees (zero when disjoint).
func (r Rect) OverlapArea(o Rect) float64 {
	ix, ok := r.Intersection(o)
	if !ok {
		return 0
	}
	return ix.Area()
}

// Buffer returns r expanded by approximately meters on every side, using
// the local meters-per-degree scale at the rectangle's center latitude.
func (r Rect) Buffer(meters float64) Rect {
	c := r.Center()
	dLat := meters / MetersPerDegreeLat
	dLon := meters / MetersPerDegreeLon(c.Lat)
	return Rect{
		MinLat: r.MinLat - dLat,
		MinLon: r.MinLon - dLon,
		MaxLat: r.MaxLat + dLat,
		MaxLon: r.MaxLon + dLon,
	}
}

// MetersPerDegreeLat is the (nearly constant) north-south meters per degree
// of latitude.
const MetersPerDegreeLat = EarthRadiusMeters * math.Pi / 180

// MetersPerDegreeLon returns the east-west meters per degree of longitude at
// the given latitude.
func MetersPerDegreeLon(lat float64) float64 {
	return MetersPerDegreeLat * math.Cos(deg2rad(lat))
}

// DistancePointRect returns the great-circle distance in meters from p to
// the nearest point of r (zero when p is inside r).
func DistancePointRect(p Point, r Rect) float64 {
	q := Point{
		Lat: clamp(p.Lat, r.MinLat, r.MaxLat),
		Lon: clamp(p.Lon, r.MinLon, r.MaxLon),
	}
	return Haversine(p, q)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
