package edge

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/nn"
)

func TestInferenceSimShapeMatchesFig8(t *testing.T) {
	sim := NewInferenceSim(1)
	// Desktop runs every model in under ~200 ms ("tens of milliseconds
	// in most cases").
	for _, m := range nn.Profiles() {
		lat := sim.MeanInfer(m, Desktop, 224, 20)
		if lat > 200*time.Millisecond {
			t.Fatalf("desktop %s latency = %v", m.Name, lat)
		}
	}
	// RPI needs thousands of ms for the heavy model.
	inc := sim.MeanInfer(nn.InceptionV3, RaspberryPi3B, 224, 20)
	if inc < time.Second {
		t.Fatalf("RPI InceptionV3 latency = %v, want seconds", inc)
	}
	// RPI is roughly 1.5 orders of magnitude slower than desktop.
	ratio := float64(sim.MeanInfer(nn.MobileNetV1, RaspberryPi3B, 224, 50)) /
		float64(sim.MeanInfer(nn.MobileNetV1, Desktop, 224, 50))
	if lg := math.Log10(ratio); lg < 1.0 || lg > 2.0 {
		t.Fatalf("RPI/desktop ratio = %.1fx (log10 %.2f), want ~1.5 orders", ratio, lg)
	}
	// Smartphone sits between.
	phone := sim.MeanInfer(nn.MobileNetV1, Smartphone, 224, 20)
	desk := sim.MeanInfer(nn.MobileNetV1, Desktop, 224, 20)
	rpi := sim.MeanInfer(nn.MobileNetV1, RaspberryPi3B, 224, 20)
	if !(desk < phone && phone < rpi) {
		t.Fatalf("ordering wrong: desktop %v phone %v rpi %v", desk, phone, rpi)
	}
}

func TestInferenceScalesWithImageSize(t *testing.T) {
	sim := NewInferenceSim(2)
	small := sim.MeanInfer(nn.InceptionV3, RaspberryPi3B, 128, 30)
	large := sim.MeanInfer(nn.InceptionV3, RaspberryPi3B, 224, 30)
	if large <= small {
		t.Fatalf("larger input not slower: %v vs %v", small, large)
	}
}

func TestDispatchPrefersAccuracyWithinBudget(t *testing.T) {
	sim := NewInferenceSim(3)
	// Desktop, generous budget: InceptionV3 (most accurate) wins.
	d, err := Dispatch(Desktop, nn.Profiles(), Constraints{MaxLatency: time.Second}, sim)
	if err != nil {
		t.Fatal(err)
	}
	if d.Model.Name != "InceptionV3" || !d.MetConstraints {
		t.Fatalf("desktop dispatch = %+v", d)
	}
	// RPI with a 1-second budget cannot run InceptionV3; a MobileNet is
	// chosen and among those that fit, V2 is more accurate.
	d, err = Dispatch(RaspberryPi3B, nn.Profiles(), Constraints{MaxLatency: time.Second}, sim)
	if err != nil {
		t.Fatal(err)
	}
	if d.Model.Name == "InceptionV3" {
		t.Fatalf("RPI dispatch chose InceptionV3 under 1s budget (lat %v)", d.EstimatedLatency)
	}
	if !d.MetConstraints {
		t.Fatalf("RPI dispatch should satisfy 1s with a MobileNet: %+v", d)
	}
}

func TestDispatchFallsBackToFastest(t *testing.T) {
	sim := NewInferenceSim(4)
	// Impossible budget: fall back to the fastest fitting model.
	d, err := Dispatch(RaspberryPi3B, nn.Profiles(), Constraints{MaxLatency: time.Microsecond}, sim)
	if err != nil {
		t.Fatal(err)
	}
	if d.MetConstraints {
		t.Fatal("microsecond budget cannot be met")
	}
	if d.Model.Name != "MobileNetV2" {
		t.Fatalf("fallback = %s, want the lightest model", d.Model.Name)
	}
}

func TestDispatchMemoryFilter(t *testing.T) {
	tiny := DeviceProfile{Name: "tiny", GFLOPS: 1, MemoryMB: 100}
	d, err := Dispatch(tiny, nn.Profiles(), Constraints{}, NewInferenceSim(5))
	if err != nil {
		t.Fatal(err)
	}
	// InceptionV3 needs 300 MB; only the MobileNets fit.
	if d.Model.MinMemoryMB > 100 {
		t.Fatalf("memory filter leaked %s", d.Model.Name)
	}
	none := DeviceProfile{Name: "none", GFLOPS: 1, MemoryMB: 10}
	if _, err := Dispatch(none, nn.Profiles(), Constraints{}, NewInferenceSim(5)); err == nil {
		t.Fatal("10 MB device should fit nothing")
	}
	if _, err := Dispatch(Desktop, nil, Constraints{}, nil); !errors.Is(err, ErrNoModels) {
		t.Fatal("empty registry accepted")
	}
}

func TestTransferTime(t *testing.T) {
	// 100 Mbps, 12.5 MB -> 1 s.
	got := TransferTime(Desktop, 12_500_000)
	if math.Abs(got.Seconds()-1) > 0.01 {
		t.Fatalf("transfer time = %v", got)
	}
	if TransferTime(DeviceProfile{}, 1000) != 0 {
		t.Fatal("zero bandwidth should yield 0")
	}
}

// learnTask builds a linearly separable 3-class task over 8 dims.
func learnTask(n int, seed int64) (xs [][]float64, ys []int) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		c := i % 3
		v := make([]float64, 8)
		for j := range v {
			v[j] = rng.NormFloat64() * 0.3
		}
		v[c] += 3
		xs = append(xs, v)
		ys = append(ys, c)
	}
	return xs, ys
}

func newTestServer(t *testing.T, seedN int) *Server {
	t.Helper()
	x, y := learnTask(seedN, 1)
	s, err := NewServer(8, 3, 16, x, y, 2)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewServerValidation(t *testing.T) {
	x, y := learnTask(9, 1)
	if _, err := NewServer(0, 3, 8, x, y, 1); err == nil {
		t.Fatal("dim 0 accepted")
	}
	if _, err := NewServer(8, 1, 8, x, y, 1); err == nil {
		t.Fatal("1 class accepted")
	}
	if _, err := NewServer(8, 3, 8, nil, nil, 1); err == nil {
		t.Fatal("empty seed accepted")
	}
	if _, err := NewServer(8, 3, 8, x, y[:3], 1); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestServerIngestRetrains(t *testing.T) {
	s := newTestServer(t, 30)
	v1 := s.Version
	x, y := learnTask(9, 3)
	var samples []Sample
	for i := range x {
		samples = append(samples, Sample{Vec: x[i], Label: y[i]})
	}
	if err := s.Ingest(samples); err != nil {
		t.Fatal(err)
	}
	if s.Version != v1+1 {
		t.Fatalf("version = %d, want %d", s.Version, v1+1)
	}
	if err := s.Ingest([]Sample{{Vec: []float64{1}, Label: 0}}); err == nil {
		t.Fatal("bad dim accepted")
	}
	if err := s.Ingest([]Sample{{Vec: make([]float64, 8), Label: 9}}); err == nil {
		t.Fatal("bad label accepted")
	}
}

func TestSelectUncertaintyPrefersAmbiguous(t *testing.T) {
	s := newTestServer(t, 60)
	d := &Device{Profile: Smartphone}
	s.SyncDevice(d)
	// Local buffer: 5 easy samples (far from boundary) and 5 ambiguous
	// ones (between classes 0 and 1).
	for i := 0; i < 5; i++ {
		v := make([]float64, 8)
		v[0] = 5
		d.Local = append(d.Local, Sample{Vec: v, Label: 0})
	}
	for i := 0; i < 5; i++ {
		v := make([]float64, 8)
		v[0], v[1] = 1.5, 1.5
		d.Local = append(d.Local, Sample{Vec: v, Label: 0})
	}
	sel, bytes, err := d.Select(SelectUncertainty, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 5 {
		t.Fatalf("selected %d", len(sel))
	}
	if bytes != 5*VecBytes(8) {
		t.Fatalf("bytes = %d", bytes)
	}
	// All selected should be the ambiguous ones (v[0]==v[1]==1.5).
	for _, smp := range sel {
		if smp.Vec[0] != 1.5 {
			t.Fatalf("uncertainty selected an easy sample: %+v", smp.Vec)
		}
	}
	if len(d.Local) != 5 {
		t.Fatalf("local buffer = %d after selection", len(d.Local))
	}
}

func TestSelectErrorsAndEdgeCases(t *testing.T) {
	d := &Device{Profile: Desktop}
	if sel, b, err := d.Select(SelectRandom, 5, 1); err != nil || sel != nil || b != 0 {
		t.Fatal("empty buffer select should be a no-op")
	}
	d.Local = []Sample{{Vec: []float64{1}, Label: 0}}
	if _, _, err := d.Select(SelectUncertainty, 1, 1); err == nil {
		t.Fatal("uncertainty without model accepted")
	}
	if _, _, err := d.Select("bogus", 1, 1); err == nil {
		t.Fatal("bogus strategy accepted")
	}
	if sel, _, err := d.Select(SelectRandom, 0, 1); err != nil || sel != nil {
		t.Fatal("maxSamples=0 should be a no-op")
	}
}

func TestLoopImprovesAccuracy(t *testing.T) {
	// Seed the server with a tiny, noisy subset; edge devices hold the
	// bulk of the data. The loop should lift accuracy substantially.
	seedX, seedY := learnTask(12, 4)
	s, err := NewServer(8, 3, 16, seedX, seedY, 5)
	if err != nil {
		t.Fatal(err)
	}
	testX, testY := learnTask(120, 6)
	var devices []*Device
	for i := 0; i < 3; i++ {
		d := &Device{Profile: Smartphone}
		x, y := learnTask(60, int64(10+i))
		for j := range x {
			d.Local = append(d.Local, Sample{Vec: x[j], Label: y[j]})
		}
		devices = append(devices, d)
	}
	reports, err := Loop(s, devices, SelectUncertainty, 10, 4, testX, testY, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) < 3 {
		t.Fatalf("rounds = %d", len(reports))
	}
	first, last := reports[0], reports[len(reports)-1]
	if last.Accuracy < first.Accuracy {
		t.Fatalf("accuracy fell: %v -> %v", first.Accuracy, last.Accuracy)
	}
	if last.Accuracy < 0.9 {
		t.Fatalf("final accuracy = %v", last.Accuracy)
	}
	// Feature uploads are much cheaper than raw images.
	for _, r := range reports[1:] {
		if r.Uploaded > 0 && r.UploadedBytes >= r.RawBytes {
			t.Fatalf("feature upload (%d B) not cheaper than raw (%d B)", r.UploadedBytes, r.RawBytes)
		}
	}
	if _, err := Loop(s, nil, SelectRandom, 1, 1, testX, testY, 1); err == nil {
		t.Fatal("no devices accepted")
	}
}

func TestLoopStopsWhenDrained(t *testing.T) {
	seedX, seedY := learnTask(12, 8)
	s, err := NewServer(8, 3, 16, seedX, seedY, 9)
	if err != nil {
		t.Fatal(err)
	}
	testX, testY := learnTask(30, 10)
	d := &Device{Profile: Desktop}
	x, y := learnTask(6, 11)
	for j := range x {
		d.Local = append(d.Local, Sample{Vec: x[j], Label: y[j]})
	}
	reports, err := Loop(s, []*Device{d}, SelectRandom, 10, 10, testX, testY, 12)
	if err != nil {
		t.Fatal(err)
	}
	// Round 1 drains the buffer; round 2 uploads nothing and stops.
	if len(reports) > 3 {
		t.Fatalf("drained loop ran %d rounds", len(reports))
	}
}

func TestDevicesList(t *testing.T) {
	ds := Devices()
	if len(ds) != 3 {
		t.Fatalf("devices = %d", len(ds))
	}
	if ds[0].Class != ClassDesktop || ds[1].Class != ClassRaspberry || ds[2].Class != ClassSmartphone {
		t.Fatal("device order wrong")
	}
}
