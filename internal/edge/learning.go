package edge

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/nn"
)

// Crowd-based learning (paper §VI, Fig. 4): the server trains a family of
// model variants, dispatches them to edge devices, and improves the model
// from edge-collected data. To limit bandwidth, each device runs a
// distributed selection algorithm that prioritises its locally collected
// samples and transmits only a selected subset — and transmits extracted
// feature vectors rather than raw images.

// Sample is one locally collected, locally featurised observation.
type Sample struct {
	Vec   []float64
	Label int
}

// RawImageBytes is the wire size of one raw capture the feature-vector
// upload avoids (a 224x224 RGB JPEG-ish payload).
const RawImageBytes = 224 * 224 * 3 / 10 // ~15 KB with 10:1 compression

// VecBytes returns the wire size of one feature-vector upload.
func VecBytes(dim int) int64 { return int64(dim)*8 + 16 }

// SelectionStrategy names a distributed data-selection algorithm.
type SelectionStrategy string

// Selection strategies: uncertainty-prioritised (highest predictive
// entropy first) and a random baseline (ablation A5).
const (
	SelectUncertainty SelectionStrategy = "uncertainty"
	SelectRandom      SelectionStrategy = "random"
)

// Device is one participating edge node in the learning loop.
type Device struct {
	Profile DeviceProfile
	// Local holds the device's collected samples not yet uploaded.
	Local []Sample
	// Model is the device's current copy of the server model.
	Model *nn.Network
	// ModelVersion tracks staleness.
	ModelVersion int
}

// Server coordinates the loop.
type Server struct {
	// Classes and Dim describe the task.
	Classes, Dim int
	// Hidden sizes the MLP head retrained each round.
	Hidden int
	// Train holds the accumulated server-side training set.
	TrainX [][]float64
	TrainY []int
	// Model is the current global model; Version increments per retrain.
	Model   *nn.Network
	Version int
	// Seed drives retraining.
	Seed int64
}

// NewServer initialises a server with seed training data and trains the
// first model version.
func NewServer(dim, classes, hidden int, seedX [][]float64, seedY []int, seed int64) (*Server, error) {
	if dim <= 0 || classes <= 1 {
		return nil, fmt.Errorf("edge: bad task shape dim=%d classes=%d", dim, classes)
	}
	if len(seedX) == 0 || len(seedX) != len(seedY) {
		return nil, errors.New("edge: server needs a non-empty seed training set")
	}
	if hidden <= 0 {
		hidden = 32
	}
	s := &Server{Classes: classes, Dim: dim, Hidden: hidden, Seed: seed}
	s.TrainX = append(s.TrainX, seedX...)
	s.TrainY = append(s.TrainY, seedY...)
	if err := s.retrain(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Server) retrain() error {
	s.Version++
	m := nn.BuildMLP(s.Dim, s.Hidden, s.Classes, s.Seed+int64(s.Version))
	cfg := nn.TrainConfig{Epochs: 30, BatchSize: 16, LR: 0.05, Momentum: 0.9, Seed: s.Seed + int64(s.Version)}
	if _, err := m.Train(s.TrainX, s.TrainY, cfg); err != nil {
		return fmt.Errorf("edge: retraining v%d: %w", s.Version, err)
	}
	s.Model = m
	return nil
}

// Ingest absorbs uploaded samples and retrains.
func (s *Server) Ingest(samples []Sample) error {
	for _, smp := range samples {
		if len(smp.Vec) != s.Dim {
			return fmt.Errorf("edge: ingest sample dim %d, want %d", len(smp.Vec), s.Dim)
		}
		if smp.Label < 0 || smp.Label >= s.Classes {
			return fmt.Errorf("edge: ingest label %d out of range", smp.Label)
		}
		s.TrainX = append(s.TrainX, smp.Vec)
		s.TrainY = append(s.TrainY, smp.Label)
	}
	return s.retrain()
}

// Accuracy evaluates the current global model.
func (s *Server) Accuracy(testX [][]float64, testY []int) (float64, error) {
	return s.Model.Accuracy(testX, testY)
}

// SyncDevice pushes the current model version to a device (the "download
// machine learning models" API of §V).
func (s *Server) SyncDevice(d *Device) {
	d.Model = s.Model
	d.ModelVersion = s.Version
}

// entropy returns the Shannon entropy of a distribution.
func entropy(p []float64) float64 {
	h := 0.0
	for _, v := range p {
		if v > 1e-12 {
			h -= v * math.Log(v)
		}
	}
	return h
}

// Select chooses up to maxSamples local samples to upload under the given
// strategy, removing them from the device's local buffer and returning
// the upload plus its wire size in bytes.
func (d *Device) Select(strategy SelectionStrategy, maxSamples int, seed int64) ([]Sample, int64, error) {
	if maxSamples <= 0 || len(d.Local) == 0 {
		return nil, 0, nil
	}
	if maxSamples > len(d.Local) {
		maxSamples = len(d.Local)
	}
	order := make([]int, len(d.Local))
	for i := range order {
		order[i] = i
	}
	switch strategy {
	case SelectUncertainty:
		if d.Model == nil {
			return nil, 0, errors.New("edge: uncertainty selection needs a local model")
		}
		type scored struct {
			idx int
			h   float64
		}
		ss := make([]scored, len(d.Local))
		for i, smp := range d.Local {
			logits, err := d.Model.Forward(smp.Vec)
			if err != nil {
				return nil, 0, err
			}
			ss[i] = scored{idx: i, h: entropy(nn.Softmax(logits))}
		}
		sort.Slice(ss, func(i, j int) bool {
			if ss[i].h != ss[j].h {
				return ss[i].h > ss[j].h
			}
			return ss[i].idx < ss[j].idx
		})
		for i, s := range ss {
			order[i] = s.idx
		}
	case SelectRandom:
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	default:
		return nil, 0, fmt.Errorf("edge: unknown selection strategy %q", strategy)
	}
	picked := order[:maxSamples]
	sort.Ints(picked)
	out := make([]Sample, 0, maxSamples)
	var bytes int64
	kept := d.Local[:0]
	pickedSet := make(map[int]bool, len(picked))
	for _, i := range picked {
		pickedSet[i] = true
	}
	for i, smp := range d.Local {
		if pickedSet[i] {
			out = append(out, smp)
			bytes += VecBytes(len(smp.Vec))
		} else {
			kept = append(kept, smp)
		}
	}
	d.Local = kept
	return out, bytes, nil
}

// RoundReport summarises one learning-loop round.
type RoundReport struct {
	Round         int
	Uploaded      int
	UploadedBytes int64
	// RawBytes is what uploading raw images instead would have cost.
	RawBytes int64
	Accuracy float64
	Version  int
}

// Loop runs the full crowd-based learning cycle for `rounds` iterations:
// sync models to devices, select/upload per device, retrain, evaluate.
func Loop(s *Server, devices []*Device, strategy SelectionStrategy, perDevice, rounds int,
	testX [][]float64, testY []int, seed int64) ([]RoundReport, error) {
	if len(devices) == 0 {
		return nil, errors.New("edge: no devices")
	}
	acc, err := s.Accuracy(testX, testY)
	if err != nil {
		return nil, err
	}
	reports := []RoundReport{{Round: 0, Accuracy: acc, Version: s.Version}}
	for round := 1; round <= rounds; round++ {
		var uploads []Sample
		var bytes, raw int64
		for di, d := range devices {
			s.SyncDevice(d)
			sel, b, err := d.Select(strategy, perDevice, seed+int64(round*100+di))
			if err != nil {
				return nil, err
			}
			uploads = append(uploads, sel...)
			bytes += b
			raw += int64(len(sel)) * RawImageBytes
		}
		if len(uploads) > 0 {
			if err := s.Ingest(uploads); err != nil {
				return nil, err
			}
		}
		acc, err := s.Accuracy(testX, testY)
		if err != nil {
			return nil, err
		}
		reports = append(reports, RoundReport{
			Round: round, Uploaded: len(uploads), UploadedBytes: bytes,
			RawBytes: raw, Accuracy: acc, Version: s.Version,
		})
		if len(uploads) == 0 {
			break // devices drained
		}
	}
	return reports, nil
}
