// Package edge implements TVDP's Action service (paper §VI, Fig. 4): a
// capability-aware model dispatcher over heterogeneous edge devices, a
// calibrated inference-time simulator standing in for the paper's physical
// desktop / Raspberry Pi / smartphone testbed (Fig. 8), and the
// crowd-based learning loop that selects and uploads edge-collected data
// to improve the server model while accounting for bandwidth.
package edge

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/nn"
)

// DeviceClass groups devices by rough capability tier.
type DeviceClass string

// Device classes of the Fig. 8 evaluation.
const (
	ClassDesktop    DeviceClass = "desktop"
	ClassRaspberry  DeviceClass = "raspberry_pi"
	ClassSmartphone DeviceClass = "smartphone"
)

// DeviceProfile is the capability description the dispatcher reasons
// about: effective sustained compute, memory, network, and a fixed
// per-inference overhead.
type DeviceProfile struct {
	Name  string
	Class DeviceClass
	// GFLOPS is the effective sustained throughput for convnet inference
	// (calibrated so the simulated Fig. 8 matches the published shape:
	// desktop in tens of ms, RPI ~1.5 orders of magnitude slower).
	GFLOPS float64
	// MemoryMB bounds which models fit.
	MemoryMB float64
	// BandwidthMbps is the uplink used by the learning loop.
	BandwidthMbps float64
	// OverheadMs is the fixed per-inference runtime cost.
	OverheadMs float64
}

// The calibrated device set of Fig. 8.
var (
	Desktop = DeviceProfile{
		Name: "Desktop", Class: ClassDesktop,
		GFLOPS: 50, MemoryMB: 16000, BandwidthMbps: 100, OverheadMs: 2,
	}
	RaspberryPi3B = DeviceProfile{
		Name: "Raspberry PI 3 B+", Class: ClassRaspberry,
		GFLOPS: 1.2, MemoryMB: 900, BandwidthMbps: 20, OverheadMs: 30,
	}
	Smartphone = DeviceProfile{
		Name: "Smartphone", Class: ClassSmartphone,
		GFLOPS: 8, MemoryMB: 3000, BandwidthMbps: 30, OverheadMs: 8,
	}
)

// Devices returns the Fig. 8 device set in paper order.
func Devices() []DeviceProfile {
	return []DeviceProfile{Desktop, RaspberryPi3B, Smartphone}
}

// InferenceSim produces deterministic-but-jittered inference times from
// model FLOP counts and device throughput.
type InferenceSim struct {
	rng *rand.Rand
	// Jitter is the +- fraction of multiplicative noise per trial.
	Jitter float64
}

// NewInferenceSim returns a simulator with the given seed and 10% jitter.
func NewInferenceSim(seed int64) *InferenceSim {
	return &InferenceSim{rng: rand.New(rand.NewSource(seed)), Jitter: 0.1}
}

// Infer returns one simulated inference latency for the model on the
// device at the given square input size.
func (s *InferenceSim) Infer(m nn.ModelProfile, d DeviceProfile, imgSide int) time.Duration {
	flops := m.FLOPsAt(imgSide)
	base := flops/(d.GFLOPS*1e9) + d.OverheadMs/1000
	noise := 1 + (s.rng.Float64()*2-1)*s.Jitter
	return time.Duration(base * noise * float64(time.Second))
}

// MeanInfer returns the mean latency over trials.
func (s *InferenceSim) MeanInfer(m nn.ModelProfile, d DeviceProfile, imgSide, trials int) time.Duration {
	if trials <= 0 {
		trials = 1
	}
	var total time.Duration
	for i := 0; i < trials; i++ {
		total += s.Infer(m, d, imgSide)
	}
	return total / time.Duration(trials)
}

// Constraints bound a dispatch decision.
type Constraints struct {
	// MaxLatency is the acceptable per-inference latency (0 = unbounded).
	MaxLatency time.Duration
	// ImageSide is the input resolution the device will run.
	ImageSide int
	// Trials is the number of simulated trials for the latency estimate.
	Trials int
}

// ErrNoModels reports a dispatch over an empty registry.
var ErrNoModels = errors.New("edge: no models to dispatch")

// Decision records a dispatch outcome.
type Decision struct {
	Model nn.ModelProfile
	// EstimatedLatency is the simulated mean latency driving the choice.
	EstimatedLatency time.Duration
	// MetConstraints is false when no model satisfied the constraints
	// and the fastest-fitting fallback was chosen.
	MetConstraints bool
}

// Dispatch picks the most accurate model that fits the device's memory
// and the latency constraint; when none qualifies it falls back to the
// lowest-latency model that fits memory. This is the "smartly dispatching
// the suitable model based on resource capacities" behaviour of §VII.
func Dispatch(d DeviceProfile, models []nn.ModelProfile, c Constraints, sim *InferenceSim) (Decision, error) {
	if len(models) == 0 {
		return Decision{}, ErrNoModels
	}
	if c.ImageSide <= 0 {
		c.ImageSide = 224
	}
	if c.Trials <= 0 {
		c.Trials = 10
	}
	if sim == nil {
		sim = NewInferenceSim(1)
	}
	type scored struct {
		m   nn.ModelProfile
		lat time.Duration
	}
	var fits []scored
	for _, m := range models {
		if m.MinMemoryMB > d.MemoryMB {
			continue
		}
		fits = append(fits, scored{m: m, lat: sim.MeanInfer(m, d, c.ImageSide, c.Trials)})
	}
	if len(fits) == 0 {
		return Decision{}, fmt.Errorf("edge: no model fits %.0f MB on %s", d.MemoryMB, d.Name)
	}
	best := -1
	for i, f := range fits {
		if c.MaxLatency > 0 && f.lat > c.MaxLatency {
			continue
		}
		if best < 0 || f.m.BaseAccuracy > fits[best].m.BaseAccuracy {
			best = i
		}
	}
	if best >= 0 {
		return Decision{Model: fits[best].m, EstimatedLatency: fits[best].lat, MetConstraints: true}, nil
	}
	// Fallback: fastest model that fits memory.
	fast := 0
	for i, f := range fits {
		if f.lat < fits[fast].lat {
			fast = i
		}
	}
	return Decision{Model: fits[fast].m, EstimatedLatency: fits[fast].lat, MetConstraints: false}, nil
}

// TransferTime returns how long moving `bytes` over the device uplink
// takes.
func TransferTime(d DeviceProfile, bytes int64) time.Duration {
	if d.BandwidthMbps <= 0 {
		return 0
	}
	seconds := float64(bytes*8) / (d.BandwidthMbps * 1e6)
	return time.Duration(seconds * float64(time.Second))
}
