// Package vecmath holds the distance kernels of the read hot path. Every
// candidate scan in the platform — LSH re-rank, hybrid-tree leaf probes,
// exact baselines, kNN/kMeans — funnels through these three functions, so
// they are written for throughput: 4-way unrolled with independent
// accumulators (breaking the loop-carried dependence so the FPU pipelines
// stay full) and a bounds-check-eliminating reslice up front.
//
// Contract: the float64 kernels panic on length mismatch. Equal lengths
// are a structural invariant everywhere vectors meet (indexes reject
// mismatched inserts and queries with index.ErrDimMismatch before any
// kernel runs), so a mismatch reaching this package is a bug upstream —
// silently truncating to the shorter vector, as the three pre-vecmath
// copies of this loop did, would corrupt distances instead of surfacing
// it. The panic contract is tested once, in this package, for all callers.
package vecmath

// SquaredL2 returns the squared Euclidean distance between two
// equal-length vectors. It panics if len(a) != len(b) (see the package
// contract). Callers that need the true distance take one math.Sqrt of
// the result after all comparisons are done: squared distance is
// monotone under sqrt, so ordering and thresholding (against r²) never
// need the root.
func SquaredL2(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("vecmath: SquaredL2 length mismatch")
	}
	b = b[:len(a)]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s0 += d * d
	}
	return (s0 + s1) + (s2 + s3)
}

// Dot returns the inner product of two equal-length vectors. It panics
// if len(a) != len(b) (see the package contract).
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("vecmath: Dot length mismatch")
	}
	b = b[:len(a)]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// SquaredL2Int8 returns the asymmetric squared distance between a
// full-precision query and an int8-quantized vector, via a per-query
// lookup table built once by quant.Scalar.Table: lut[d*256+l] is the
// squared per-dimension distance between the query's d-th coordinate and
// reconstruction level l. The scan is dequantize-free — one byte load,
// one table load, one add per dimension; no multiplies — which is what
// makes quantized candidate scans memory-bandwidth-cheap. It panics if
// len(lut) != 256*len(codes).
// The loop walks the table forward four rows (one 1024-entry block) at a
// time instead of computing lut[i*256+...] absolute offsets: indexing a
// reslied constant-size block keeps the bounds checks out of the
// per-element address arithmetic, which measures ~20% faster than the
// absolute-offset form at serving scale.
func SquaredL2Int8(codes []int8, lut []float64) float64 {
	if len(lut) != 256*len(codes) {
		panic("vecmath: SquaredL2Int8 table size mismatch")
	}
	var s0, s1, s2, s3 float64
	i := 0
	tbl := lut
	for ; i+4 <= len(codes); i += 4 {
		blk := tbl[:1024]
		s0 += blk[int(codes[i])+128]
		s1 += blk[256+int(codes[i+1])+128]
		s2 += blk[512+int(codes[i+2])+128]
		s3 += blk[768+int(codes[i+3])+128]
		tbl = tbl[1024:]
	}
	for ; i < len(codes); i++ {
		s0 += tbl[int(codes[i])+128]
		tbl = tbl[256:]
	}
	return (s0 + s1) + (s2 + s3)
}
