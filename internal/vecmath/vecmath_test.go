package vecmath

import (
	"math"
	"math/rand"
	"testing"
)

// naive reference implementations the unrolled kernels must agree with.
func naiveSquaredL2(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func naiveDot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// TestKernelsMatchNaive sweeps dimensions across the unroll boundary
// (0..67) so remainder handling of every residue class is exercised.
func TestKernelsMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for dim := 0; dim <= 67; dim++ {
		a := make([]float64, dim)
		b := make([]float64, dim)
		for i := range a {
			a[i] = rng.NormFloat64() * 10
			b[i] = rng.NormFloat64() * 10
		}
		if got, want := SquaredL2(a, b), naiveSquaredL2(a, b); math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("SquaredL2 dim %d: got %v want %v", dim, got, want)
		}
		if got, want := Dot(a, b), naiveDot(a, b); math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("Dot dim %d: got %v want %v", dim, got, want)
		}
	}
}

// TestLengthMismatchPanics pins the package contract: mismatched lengths
// are a structural bug upstream and must panic, not truncate. This is
// the single shared test of the contract for every caller that
// deduplicated its local L2 loop onto this package.
func TestLengthMismatchPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: mismatched lengths did not panic", name)
			}
		}()
		f()
	}
	a, b := make([]float64, 4), make([]float64, 5)
	mustPanic("SquaredL2", func() { SquaredL2(a, b) })
	mustPanic("Dot", func() { Dot(a, b) })
	mustPanic("SquaredL2Int8", func() { SquaredL2Int8(make([]int8, 4), make([]float64, 256*3)) })
}

// TestSquaredL2Int8Lookup checks the ADC kernel against a hand-built
// table: lut[d*256+l] keyed by the biased byte of the int8 code.
func TestSquaredL2Int8Lookup(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for dim := 0; dim <= 9; dim++ {
		lut := make([]float64, 256*dim)
		for i := range lut {
			lut[i] = rng.Float64()
		}
		codes := make([]int8, dim)
		want := 0.0
		for d := range codes {
			codes[d] = int8(rng.Intn(256) - 128)
			want += lut[d*256+int(codes[d])+128]
		}
		if got := SquaredL2Int8(codes, lut); math.Abs(got-want) > 1e-12*(1+want) {
			t.Fatalf("SquaredL2Int8 dim %d: got %v want %v", dim, got, want)
		}
	}
}

func BenchmarkSquaredL2(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := make([]float64, 64)
	y := make([]float64, 64)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += SquaredL2(x, y)
	}
	_ = sink
}

func BenchmarkSquaredL2Int8(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	lut := make([]float64, 256*64)
	for i := range lut {
		lut[i] = rng.Float64()
	}
	codes := make([]int8, 64)
	for i := range codes {
		codes[i] = int8(rng.Intn(256) - 128)
	}
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += SquaredL2Int8(codes, lut)
	}
	_ = sink
}
