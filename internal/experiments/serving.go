package experiments

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/geo"
	"repro/internal/imagesim"
	"repro/internal/store"
)

// Serving-path throughput benchmark (`tvdp-bench -figure serving`): a
// mixed read/write workload against the store, run twice — once through a
// wrapper that reimposes the pre-PR global RWMutex (every write holds one
// exclusive lock across the whole mutation, durability wait included,
// which also serialises WAL appends back to one fsync per write), and
// once against the store's native concurrent path (per-subsystem locks +
// group-commit WAL). The ratio of the two is the headline speedup.

// ServingConfig sizes one serving benchmark run.
type ServingConfig struct {
	// Clients is the number of concurrent workload goroutines.
	Clients int
	// ReadFrac in [0,1] is the probability an op is a read.
	ReadFrac float64
	// Duration is the measured wall-clock window per mode.
	Duration time.Duration
	// Preload seeds the store with this many images before timing.
	Preload int
	// Sync enables SyncEveryWrite (fsync-bound writes — the regime group
	// commit targets).
	Sync bool
	// Seed drives the per-client workload RNGs.
	Seed int64
}

// DefaultServingConfig mirrors the acceptance setup: 8 clients, evenly
// mixed reads and writes, synced writes.
func DefaultServingConfig() ServingConfig {
	return ServingConfig{Clients: 8, ReadFrac: 0.5, Duration: 2 * time.Second, Preload: 64, Sync: true, Seed: 1}
}

// ServingModeResult is one mode's measurements.
type ServingModeResult struct {
	Mode           string  `json:"mode"`
	Ops            uint64  `json:"ops"`
	Reads          uint64  `json:"reads"`
	Writes         uint64  `json:"writes"`
	OpsPerSec      float64 `json:"ops_per_sec"`
	P50Ms          float64 `json:"p50_ms"`
	P99Ms          float64 `json:"p99_ms"`
	Fsyncs         uint64  `json:"fsyncs"`
	FsyncsPerWrite float64 `json:"fsyncs_per_write"`
	ElapsedS       float64 `json:"elapsed_s"`
}

// ServingResult is the full two-mode comparison written to
// BENCH_serving.json.
type ServingResult struct {
	Figure         string            `json:"figure"`
	Clients        int               `json:"clients"`
	ReadFrac       float64           `json:"read_frac"`
	SyncEveryWrite bool              `json:"sync_every_write"`
	Baseline       ServingModeResult `json:"baseline_global_mutex"`
	Concurrent     ServingModeResult `json:"concurrent"`
	// SpeedupX is concurrent ops/sec over baseline ops/sec.
	SpeedupX float64 `json:"speedup_x"`
}

// globalLock reimposes the seed's single store-wide RWMutex on top of the
// store, emulating the pre-PR serving path for an honest baseline: reads
// share a read lock, every write holds the exclusive lock until its WAL
// append + fsync completed (so writes cannot batch: the committer only
// ever sees one frame at a time).
type globalLock struct{ mu sync.RWMutex }

func (g *globalLock) read(f func())  { g.mu.RLock(); f(); g.mu.RUnlock() }
func (g *globalLock) write(f func()) { g.mu.Lock(); f(); g.mu.Unlock() }

// noLock is the native concurrent path (the store locks internally).
type noLock struct{}

func (noLock) read(f func())  { f() }
func (noLock) write(f func()) { f() }

type locker interface {
	read(func())
	write(func())
}

func servingImage(rng *rand.Rand, px *imagesim.Image) store.Image {
	brg := rng.Float64() * 360
	cam := geo.Destination(laCenter, brg, 200+rng.Float64()*5000)
	return store.Image{
		FOV:                geo.FOV{Camera: cam, Direction: brg, Angle: 60, Radius: 100},
		Pixels:             px,
		TimestampCapturing: time.Date(2019, 2, 1, 8, 0, 0, 0, time.UTC).Add(time.Duration(rng.Intn(86400)) * time.Second),
		WorkerID:           "bench",
	}
}

func runServingMode(mode string, lk locker, cfg ServingConfig) (ServingModeResult, error) {
	dir, err := os.MkdirTemp("", "tvdp-serving-*")
	if err != nil {
		return ServingModeResult{}, err
	}
	defer os.RemoveAll(dir)
	scfg := store.DefaultConfig()
	scfg.Dir = dir
	scfg.SyncEveryWrite = cfg.Sync
	st, err := store.Open(scfg)
	if err != nil {
		return ServingModeResult{}, err
	}
	defer st.Close()

	// Tiny raster: the bench measures serving-path overhead (locking, WAL
	// batching, fsyncs), so the per-op payload encode cost is kept small.
	px := imagesim.MustNew(4, 4)
	px.Fill(imagesim.RGB{R: 90, G: 110, B: 130})
	seedRng := rand.New(rand.NewSource(cfg.Seed))
	for i := 0; i < cfg.Preload; i++ {
		if _, err := st.AddImage(servingImage(seedRng, px)); err != nil {
			return ServingModeResult{}, err
		}
	}
	preStats := st.WALStats()

	type clientOut struct {
		lat           []time.Duration
		reads, writes uint64
		err           error
	}
	outs := make([]clientOut, cfg.Clients)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	sw := startStopwatch()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(c)*7919))
			out := &outs[c]
			for {
				select {
				case <-stop:
					return
				default:
				}
				isRead := rng.Float64() < cfg.ReadFrac
				op := startStopwatch()
				if isRead {
					// Constant-cost metadata point read over the preloaded set
					// (IDs 1..Preload): reads cost the same in both modes and at
					// any store size, so the comparison isolates the serving
					// path rather than result-set growth.
					lk.read(func() {
						if _, err := st.Describe(uint64(rng.Intn(cfg.Preload)) + 1); err != nil {
							out.err = err
						}
					})
					out.reads++
				} else {
					lk.write(func() {
						if _, err := st.AddImage(servingImage(rng, px)); err != nil {
							out.err = err
						}
					})
					out.writes++
				}
				out.lat = append(out.lat, op.elapsed())
				if out.err != nil {
					return
				}
			}
		}(c)
	}
	time.Sleep(cfg.Duration)
	close(stop)
	wg.Wait()
	elapsed := sw.elapsed()

	var all []time.Duration
	res := ServingModeResult{Mode: mode, ElapsedS: elapsed.Seconds()}
	for c := range outs {
		if outs[c].err != nil {
			return ServingModeResult{}, fmt.Errorf("serving bench client %d: %w", c, outs[c].err)
		}
		all = append(all, outs[c].lat...)
		res.Reads += outs[c].reads
		res.Writes += outs[c].writes
	}
	res.Ops = res.Reads + res.Writes
	res.OpsPerSec = float64(res.Ops) / elapsed.Seconds()
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return float64(all[i]) / float64(time.Millisecond)
	}
	res.P50Ms = pct(0.50)
	res.P99Ms = pct(0.99)
	post := st.WALStats()
	res.Fsyncs = post.Fsyncs - preStats.Fsyncs
	if res.Writes > 0 {
		res.FsyncsPerWrite = float64(res.Fsyncs) / float64(res.Writes)
	}
	return res, nil
}

// RunServing runs the mixed workload in both modes and returns the
// comparison.
func RunServing(cfg ServingConfig) (*ServingResult, error) {
	if cfg.Clients <= 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("experiments: serving config needs clients > 0 and duration > 0")
	}
	if cfg.ReadFrac > 0 && cfg.Preload <= 0 {
		return nil, fmt.Errorf("experiments: serving config needs preload > 0 when reads are enabled")
	}
	base, err := runServingMode("baseline_global_mutex", &globalLock{}, cfg)
	if err != nil {
		return nil, err
	}
	conc, err := runServingMode("concurrent", noLock{}, cfg)
	if err != nil {
		return nil, err
	}
	r := &ServingResult{
		Figure:         "serving",
		Clients:        cfg.Clients,
		ReadFrac:       cfg.ReadFrac,
		SyncEveryWrite: cfg.Sync,
		Baseline:       base,
		Concurrent:     conc,
	}
	if base.OpsPerSec > 0 {
		r.SpeedupX = conc.OpsPerSec / base.OpsPerSec
	}
	return r, nil
}

// WriteJSON writes the result as indented JSON (BENCH_serving.json).
func (r *ServingResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Render returns the result as a text table.
func (r *ServingResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Serving throughput — %d clients, %.0f%% reads, SyncEveryWrite=%v\n",
		r.Clients, r.ReadFrac*100, r.SyncEveryWrite)
	fmt.Fprintf(&b, "%-24s %10s %9s %9s %9s %14s\n", "mode", "ops/sec", "p50 ms", "p99 ms", "ops", "fsyncs/write")
	for _, m := range []ServingModeResult{r.Baseline, r.Concurrent} {
		fmt.Fprintf(&b, "%-24s %10.0f %9.3f %9.3f %9d %14.3f\n",
			m.Mode, m.OpsPerSec, m.P50Ms, m.P99Ms, m.Ops, m.FsyncsPerWrite)
	}
	fmt.Fprintf(&b, "speedup: %.2fx\n", r.SpeedupX)
	return b.String()
}
