package experiments

import "time"

// stopwatch is this package's single audited wall-clock escape hatch.
// experiments is inside tvdp-lint's determinism scope — figure *data*
// (recalls, accuracies, coverage curves) must replay bit-identically from
// seeds — but throughput and latency numbers are measurements of the run
// itself and have to read the real clock. Routing every elapsed-time read
// through here keeps the nondeterminism in one place, with the two nolint
// justifications below, instead of scattering clock reads (and nolint
// comments) across every ablation.
//
// Discipline for callers: a stopwatch value may flow into reported
// QPS/latency fields, never into anything a determinism test compares.
type stopwatch struct{ t0 time.Time }

// startStopwatch begins a wall-clock measurement.
func startStopwatch() stopwatch {
	//tvdp:nolint determinism wall-clock benchmark timing; elapsed values feed reported QPS/latency only, never figure data
	return stopwatch{t0: time.Now()}
}

// elapsed returns the wall-clock time since the stopwatch started.
func (s stopwatch) elapsed() time.Duration {
	//tvdp:nolint determinism wall-clock benchmark timing; elapsed values feed reported QPS/latency only, never figure data
	return time.Since(s.t0)
}
