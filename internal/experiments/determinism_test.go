package experiments

import (
	"math"
	"testing"

	"repro/internal/par"
)

// detScale is a deliberately tiny corpus: the determinism contract is about
// bit patterns, not model quality, so the cheapest end-to-end pipeline run
// that exercises every parallel stage (synthesis, BoW, kMeans, CNN
// training, extraction, Fig. 6 classification) is enough.
var detScale = Scale{N: 75, BoWVocab: 8, CNNEpochs: 2, CNNAugment: 1, Seed: 7}

// buildAt builds the detScale corpus and its Fig. 6 table with a fixed
// worker count, restoring the previous override afterwards.
func buildAt(t *testing.T, workers int) (*Corpus, *Fig6Result) {
	t.Helper()
	prev := par.SetWorkers(workers)
	defer par.SetWorkers(prev)
	c, err := BuildCorpus(detScale)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunFig6(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	return c, r
}

// TestPipelineDeterministicAcrossWorkerCounts is the regression test for
// the par layer's core contract: the full analysis pipeline — corpus
// synthesis, SIFT-BoW vocabulary training, CNN fine-tuning, feature
// extraction, and the Fig. 6 classifier grid — produces bit-identical
// results with one worker and with eight.
func TestPipelineDeterministicAcrossWorkerCounts(t *testing.T) {
	c1, r1 := buildAt(t, 1)
	c8, r8 := buildAt(t, 8)

	// Every feature vector of every family must match bit for bit.
	for _, kind := range FeatureNames {
		f1, f8 := c1.Features[kind], c8.Features[kind]
		if len(f1) != len(f8) {
			t.Fatalf("%s: %d vs %d vectors", kind, len(f1), len(f8))
		}
		for i := range f1 {
			if len(f1[i]) != len(f8[i]) {
				t.Fatalf("%s[%d]: dim %d vs %d", kind, i, len(f1[i]), len(f8[i]))
			}
			for j := range f1[i] {
				if math.Float64bits(f1[i][j]) != math.Float64bits(f8[i][j]) {
					t.Fatalf("%s[%d][%d]: %v (1 worker) != %v (8 workers)",
						kind, i, j, f1[i][j], f8[i][j])
				}
			}
		}
	}

	// Rendered corpora must match pixel for pixel.
	for i := range c1.Records {
		p1, p8 := c1.Records[i].Image.Pix, c8.Records[i].Image.Pix
		if len(p1) != len(p8) {
			t.Fatalf("record %d: %d vs %d pixels", i, len(p1), len(p8))
		}
		for j := range p1 {
			if p1[j] != p8[j] {
				t.Fatalf("record %d pixel %d: %v != %v", i, j, p1[j], p8[j])
			}
		}
		if c1.Records[i].WorkerID != c8.Records[i].WorkerID ||
			!c1.Records[i].CapturedAt.Equal(c8.Records[i].CapturedAt) {
			t.Fatalf("record %d metadata differs across worker counts", i)
		}
	}

	// The downstream F1 tables must agree exactly.
	for _, kind := range FeatureNames {
		for _, clf := range ClassifierNames {
			v1, v8 := r1.F1[kind][clf], r8.F1[kind][clf]
			if math.Float64bits(v1) != math.Float64bits(v8) {
				t.Fatalf("F1[%s][%s]: %v (1 worker) != %v (8 workers)", kind, clf, v1, v8)
			}
		}
	}
}

// TestBuildCorpusRepeatable guards same-worker-count reproducibility: two
// builds at the same seed and worker count are identical (the baseline the
// cross-worker test depends on).
func TestBuildCorpusRepeatable(t *testing.T) {
	prev := par.SetWorkers(3)
	defer par.SetWorkers(prev)
	a, err := BuildCorpus(detScale)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildCorpus(detScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range FeatureNames {
		for i := range a.Features[kind] {
			for j := range a.Features[kind][i] {
				if math.Float64bits(a.Features[kind][i][j]) != math.Float64bits(b.Features[kind][i][j]) {
					t.Fatalf("%s[%d][%d] differs between identical builds", kind, i, j)
				}
			}
		}
	}
}
