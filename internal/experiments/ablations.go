package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/crowd"
	"repro/internal/edge"
	"repro/internal/feature"
	"repro/internal/geo"
	"repro/internal/imagesim"
	"repro/internal/index"
	"repro/internal/ml"
	"repro/internal/query"
	"repro/internal/store"
	"repro/internal/synth"
)

func queryEngine(st *store.Store) *query.Engine { return query.New(st) }

// Ablation studies for the design choices called out in DESIGN.md. Each
// returns a rendered table; timings use wall clock over repeated query
// batches (the root benchmarks re-expose the same inner loops under
// testing.B for precise numbers).

var laCenter = geo.Point{Lat: 34.0522, Lon: -118.2437}

func randomScenes(n int, seed int64) []index.SpatialItem {
	rng := rand.New(rand.NewSource(seed))
	items := make([]index.SpatialItem, n)
	for i := range items {
		cam := geo.Destination(laCenter, rng.Float64()*360, rng.Float64()*8000)
		f := geo.FOV{Camera: cam, Direction: rng.Float64() * 360, Angle: 40 + rng.Float64()*40, Radius: 60 + rng.Float64()*120}
		items[i] = index.SpatialItem{ID: uint64(i), Rect: f.SceneLocation()}
	}
	return items
}

func queryRects(n int, sizeM float64, seed int64) []geo.Rect {
	rng := rand.New(rand.NewSource(seed))
	out := make([]geo.Rect, n)
	for i := range out {
		c := geo.Destination(laCenter, rng.Float64()*360, rng.Float64()*7000)
		out[i] = geo.NewRect(geo.Destination(c, 315, sizeM), geo.Destination(c, 135, sizeM))
	}
	return out
}

// A1Result compares spatial access paths.
type A1Result struct {
	N       int
	Queries int
	// QPS and mean hits per structure.
	QPS  map[string]float64
	Hits map[string]float64
}

// RunA1SpatialIndexes times range queries over the R-tree, the uniform
// grid, and a linear scan on an identical workload.
func RunA1SpatialIndexes(n, queries int, seed int64) (*A1Result, error) {
	items := randomScenes(n, seed)
	qs := queryRects(queries, 500, seed+1)

	rt, err := index.NewRTree(index.DefaultRTreeConfig())
	if err != nil {
		return nil, err
	}
	bounds := geo.NewRect(geo.Destination(laCenter, 315, 12000), geo.Destination(laCenter, 135, 12000))
	grid, err := index.NewGrid(bounds, 64, 64)
	if err != nil {
		return nil, err
	}
	scan := index.NewLinearScan()
	for _, it := range items {
		if err := rt.Insert(it); err != nil {
			return nil, err
		}
		if err := grid.Insert(it); err != nil {
			return nil, err
		}
		scan.Insert(it)
	}
	out := &A1Result{N: n, Queries: queries, QPS: map[string]float64{}, Hits: map[string]float64{}}
	run := func(name string, search func(geo.Rect) []uint64) {
		sw := startStopwatch()
		hits := 0
		for _, q := range qs {
			hits += len(search(q))
		}
		el := sw.elapsed()
		out.QPS[name] = float64(queries) / el.Seconds()
		out.Hits[name] = float64(hits) / float64(queries)
	}
	run("rtree", rt.SearchRect)
	run("grid", grid.SearchRect)
	run("scan", scan.SearchRect)
	return out, nil
}

// Render implements the table output.
func (r *A1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "A1 — Spatial range query throughput (N=%d, %d queries)\n", r.N, r.Queries)
	for _, name := range []string{"rtree", "grid", "scan"} {
		fmt.Fprintf(&b, "%-8s %12.0f q/s  (mean hits %.1f)\n", name, r.QPS[name], r.Hits[name])
	}
	return b.String()
}

// A2Result compares LSH against exact scan for visual top-k.
type A2Result struct {
	N, Dim, K int
	Recall    float64
	LSHQPS    float64
	ExactQPS  float64
}

// RunA2LSHvsExact measures top-k recall and throughput of the LSH index
// against the exact linear scan on clustered vectors.
func RunA2LSHvsExact(n, dim, k, queries int, seed int64) (*A2Result, error) {
	lsh, err := index.NewLSH(dim, index.DefaultLSHConfig(seed))
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	clusterOf := func(i int) float64 { return float64(i % 20) }
	for i := 0; i < n; i++ {
		v := make([]float64, dim)
		for j := range v {
			v[j] = clusterOf(i) + rng.NormFloat64()*0.25
		}
		if err := lsh.Insert(uint64(i), v); err != nil {
			return nil, err
		}
	}
	qs := make([][]float64, queries)
	for qi := range qs {
		v := make([]float64, dim)
		c := clusterOf(qi)
		for j := range v {
			v[j] = c + rng.NormFloat64()*0.25
		}
		qs[qi] = v
	}
	hits, total := 0, 0
	sw := startStopwatch()
	approx := make([][]index.Match, queries)
	for qi, q := range qs {
		ms, err := lsh.TopK(context.Background(), q, k)
		if err != nil {
			return nil, err
		}
		approx[qi] = ms
	}
	lshDur := sw.elapsed()
	sw = startStopwatch()
	for qi, q := range qs {
		exact, err := lsh.ExactTopK(context.Background(), q, k)
		if err != nil {
			return nil, err
		}
		aset := map[uint64]bool{}
		for _, m := range approx[qi] {
			aset[m.ID] = true
		}
		for _, m := range exact {
			total++
			if aset[m.ID] {
				hits++
			}
		}
	}
	exactDur := sw.elapsed()
	return &A2Result{
		N: n, Dim: dim, K: k,
		Recall:   float64(hits) / float64(total),
		LSHQPS:   float64(queries) / lshDur.Seconds(),
		ExactQPS: float64(queries) / exactDur.Seconds(),
	}, nil
}

// Render implements the table output.
func (r *A2Result) Render() string {
	return fmt.Sprintf(
		"A2 — LSH vs exact top-%d (N=%d, dim=%d)\nlsh    %12.0f q/s  recall %.3f\nexact  %12.0f q/s  recall 1.000\n",
		r.K, r.N, r.Dim, r.LSHQPS, r.Recall, r.ExactQPS)
}

// A3Result compares the hybrid tree against the two-phase plan.
type A3Result struct {
	N         int
	HybridQPS float64
	TwoQPS    float64
	Agreement float64
}

// RunA3Hybrid measures single-pass hybrid spatial-visual queries against
// the two-phase r-tree-filter + visual-re-rank plan over one store.
func RunA3Hybrid(n, queries int, seed int64) (*A3Result, error) {
	const kind = "color_hist"
	cfg := store.DefaultConfig()
	cfg.HybridKinds = []string{kind}
	st, err := store.Open(cfg)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	g, err := synth.NewGenerator(synth.DefaultConfig(n, seed))
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	dim := 16
	for i := 0; i < n; i++ {
		rec := g.Render(synth.Class(i % synth.NumClasses))
		id, err := st.AddImage(store.Image{FOV: rec.FOV, Pixels: rec.Image, TimestampCapturing: rec.CapturedAt})
		if err != nil {
			return nil, err
		}
		v := make([]float64, dim)
		for j := range v {
			v[j] = float64(int(rec.Class)) + rng.NormFloat64()*0.3
		}
		if err := st.PutFeature(id, kind, v); err != nil {
			return nil, err
		}
	}
	eng := queryEngine(st)
	qs := queryRects(queries, 2500, seed+2)
	qvs := make([][]float64, queries)
	for i := range qvs {
		v := make([]float64, dim)
		c := float64(i % synth.NumClasses)
		for j := range v {
			v[j] = c + rng.NormFloat64()*0.3
		}
		qvs[i] = v
	}
	const k = 10
	agree, total := 0, 0
	sw := startStopwatch()
	hybridRes := make([][]uint64, queries)
	for i := range qs {
		ms, ok, err := st.SearchHybrid(context.Background(), kind, qs[i], qvs[i], k)
		if err != nil || !ok {
			return nil, fmt.Errorf("experiments: hybrid unavailable: %v", err)
		}
		ids := make([]uint64, len(ms))
		for j, m := range ms {
			ids[j] = m.ID
		}
		hybridRes[i] = ids
	}
	hybridDur := sw.elapsed()
	sw = startStopwatch()
	for i := range qs {
		rs, err := eng.TwoPhaseSpatialVisual(context.Background(), qs[i], kind, qvs[i], k)
		if err != nil {
			return nil, err
		}
		for j := range rs {
			total++
			if j < len(hybridRes[i]) && rs[j].ID == hybridRes[i][j] {
				agree++
			}
		}
	}
	twoDur := sw.elapsed()
	out := &A3Result{
		N:         n,
		HybridQPS: float64(queries) / hybridDur.Seconds(),
		TwoQPS:    float64(queries) / twoDur.Seconds(),
	}
	if total > 0 {
		out.Agreement = float64(agree) / float64(total)
	} else {
		out.Agreement = 1
	}
	return out, nil
}

// Render implements the table output.
func (r *A3Result) Render() string {
	return fmt.Sprintf(
		"A3 — Hybrid spatial-visual vs two-phase (N=%d)\nhybrid     %10.0f q/s\ntwo-phase  %10.0f q/s\nrank agreement %.3f\n",
		r.N, r.HybridQPS, r.TwoQPS, r.Agreement)
}

// A4Result compares crowdsourcing assignment strategies.
type A4Result struct {
	Rounds map[string]int
	Final  map[string]float64
	Travel map[string]float64
}

// RunA4Crowd runs the same campaign under each assignment strategy and
// reports rounds-to-target, final coverage, and total travel.
func RunA4Crowd(seed int64) (*A4Result, error) {
	out := &A4Result{Rounds: map[string]int{}, Final: map[string]float64{}, Travel: map[string]float64{}}
	region := geo.NewRect(geo.Destination(laCenter, 315, 1200), geo.Destination(laCenter, 135, 1200))
	for _, strat := range []crowd.Strategy{crowd.StrategyGreedy, crowd.StrategyEntropy, crowd.StrategyRandom} {
		model, err := crowd.NewCoverageModel(region, 8, 8, 1, 1)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed))
		workers := make([]crowd.Worker, 10)
		for i := range workers {
			workers[i] = crowd.Worker{
				ID:         fmt.Sprintf("w%d", i),
				Location:   geo.Destination(laCenter, rng.Float64()*360, rng.Float64()*1500),
				MaxTravelM: 800,
				Capacity:   4,
			}
		}
		c := crowd.Campaign{ID: 1, Region: region, TargetCoverage: 0.95, MaxRounds: 12, Strategy: strat}
		runner, err := crowd.NewRunner(c, model, workers, crowd.DefaultCaptureFunc(2, 140, seed), nil, seed)
		if err != nil {
			return nil, err
		}
		reports, err := runner.Run()
		if err != nil {
			return nil, err
		}
		final := reports[len(reports)-1]
		out.Rounds[string(strat)] = final.Round
		out.Final[string(strat)] = final.Coverage
		travel := 0.0
		for _, rep := range reports {
			travel += rep.TravelM
		}
		out.Travel[string(strat)] = travel
	}
	return out, nil
}

// Render implements the table output.
func (r *A4Result) Render() string {
	var b strings.Builder
	b.WriteString("A4 — Campaign assignment strategies (target coverage 0.95)\n")
	for _, s := range []string{"greedy", "entropy", "random"} {
		fmt.Fprintf(&b, "%-8s rounds=%2d final=%.3f travel=%.0f m\n", s, r.Rounds[s], r.Final[s], r.Travel[s])
	}
	return b.String()
}

// A5Result compares edge data-selection strategies.
type A5Result struct {
	// AccuracyByRound[strategy] is the test accuracy per round.
	AccuracyByRound map[string][]float64
	// BytesPerRound is the per-round feature upload volume.
	BytesPerRound int64
	// RawBytesPerRound is the counterfactual raw-image volume.
	RawBytesPerRound int64
}

// RunA5EdgeSelection runs the crowd-learning loop with
// uncertainty-prioritised vs random selection on identical devices and
// data. The server's seed set covers only half the label space — the
// realistic cold-start of a crowd-sourced model — so selection quality
// determines how fast the missing classes are learned. Uploads are small
// per round to keep bandwidth (the paper's constraint) binding.
func RunA5EdgeSelection(seed int64) (*A5Result, error) {
	const dim, classes, perDevice, rounds = 12, 4, 4, 4
	makeTask := func(n int, s int64, classSet []int) ([][]float64, []int) {
		rng := rand.New(rand.NewSource(s))
		var xs [][]float64
		var ys []int
		for i := 0; i < n; i++ {
			c := classSet[i%len(classSet)]
			v := make([]float64, dim)
			for j := range v {
				v[j] = rng.NormFloat64() * 0.6
			}
			v[c] += 2.2
			xs = append(xs, v)
			ys = append(ys, c)
		}
		return xs, ys
	}
	allClasses := []int{0, 1, 2, 3}
	testX, testY := makeTask(200, seed+50, allClasses)
	out := &A5Result{AccuracyByRound: map[string][]float64{}}
	for _, strat := range []edge.SelectionStrategy{edge.SelectUncertainty, edge.SelectRandom} {
		// Cold start: the server has seen classes 0 and 1 only.
		seedX, seedY := makeTask(16, seed, []int{0, 1})
		srv, err := edge.NewServer(dim, classes, 24, seedX, seedY, seed)
		if err != nil {
			return nil, err
		}
		var devices []*edge.Device
		for i := 0; i < 3; i++ {
			d := &edge.Device{Profile: edge.Smartphone}
			// Device data skews toward the classes the server already
			// knows; the informative minority is what selection must find.
			x, y := makeTask(50, seed+int64(i+1), []int{0, 1, 0, 1, 0, 1, 2, 3})
			for j := range x {
				d.Local = append(d.Local, edge.Sample{Vec: x[j], Label: y[j]})
			}
			devices = append(devices, d)
		}
		reports, err := edge.Loop(srv, devices, strat, perDevice, rounds, testX, testY, seed)
		if err != nil {
			return nil, err
		}
		var accs []float64
		for _, rep := range reports {
			accs = append(accs, rep.Accuracy)
			if rep.Round == 1 {
				out.BytesPerRound = rep.UploadedBytes
				out.RawBytesPerRound = rep.RawBytes
			}
		}
		out.AccuracyByRound[string(strat)] = accs
	}
	return out, nil
}

// Render implements the table output.
func (r *A5Result) Render() string {
	var b strings.Builder
	b.WriteString("A5 — Edge data selection: accuracy per round\n")
	for _, s := range []string{"uncertainty", "random"} {
		fmt.Fprintf(&b, "%-12s", s)
		for _, a := range r.AccuracyByRound[s] {
			fmt.Fprintf(&b, " %6.3f", a)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "feature upload per round: %d B (raw images would be %d B, %.0fx more)\n",
		r.BytesPerRound, r.RawBytesPerRound, float64(r.RawBytesPerRound)/float64(maxI64(r.BytesPerRound, 1)))
	return b.String()
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// A6Result measures storage-engine ingest and recovery.
type A6Result struct {
	N            int
	IngestPerSec float64
	ReopenMs     float64
	Recovered    int
}

// RunA6Store measures WAL-backed ingest throughput and recovery by
// writing n images to a fresh store, closing it, and reopening.
func RunA6Store(dir string, n int, seed int64) (*A6Result, error) {
	cfg := store.DefaultConfig()
	cfg.Dir = dir
	st, err := store.Open(cfg)
	if err != nil {
		return nil, err
	}
	g, err := synth.NewGenerator(synth.DefaultConfig(n, seed))
	if err != nil {
		return nil, err
	}
	recs := g.Generate(n)
	sw := startStopwatch()
	for _, rec := range recs {
		if _, err := st.AddImage(store.Image{FOV: rec.FOV, Pixels: rec.Image, TimestampCapturing: rec.CapturedAt}); err != nil {
			return nil, err
		}
	}
	ingest := sw.elapsed()
	if err := st.Close(); err != nil {
		return nil, err
	}
	sw = startStopwatch()
	st2, err := store.Open(cfg)
	if err != nil {
		return nil, err
	}
	reopen := sw.elapsed()
	defer st2.Close()
	return &A6Result{
		N:            n,
		IngestPerSec: float64(n) / ingest.Seconds(),
		ReopenMs:     float64(reopen) / float64(time.Millisecond),
		Recovered:    st2.NumImages(),
	}, nil
}

// Render implements the table output.
func (r *A6Result) Render() string {
	return fmt.Sprintf("A6 — Store ingest %d imgs: %.0f img/s; recovery replay %.1f ms; recovered %d/%d\n",
		r.N, r.IngestPerSec, r.ReopenMs, r.Recovered, r.N)
}

// A7Result compares the inverted index against a keyword scan.
type A7Result struct {
	Docs        int
	InvertedQPS float64
	ScanQPS     float64
}

// RunA7Text measures keyword query throughput with the inverted index
// against a naive per-document scan.
func RunA7Text(docs, queries int, seed int64) (*A7Result, error) {
	rng := rand.New(rand.NewSource(seed))
	// Realistic keyword vocabularies are wide: class words crossed with
	// street/neighbourhood qualifiers.
	base := []string{"tent", "trash", "weeds", "couch", "clean", "graffiti", "street", "sidewalk", "alley", "curb"}
	vocab := make([]string, 0, len(base)*50)
	for _, w := range base {
		for d := 0; d < 50; d++ {
			vocab = append(vocab, fmt.Sprintf("%s%02d", w, d))
		}
	}
	ix := index.NewInverted()
	raw := make([][]string, docs)
	for i := 0; i < docs; i++ {
		kws := []string{vocab[rng.Intn(len(vocab))], vocab[rng.Intn(len(vocab))]}
		raw[i] = kws
		ix.Add(uint64(i), kws)
	}
	qs := make([]string, queries)
	for i := range qs {
		qs[i] = vocab[rng.Intn(len(vocab))]
	}
	sw := startStopwatch()
	for _, q := range qs {
		_ = ix.SearchAny([]string{q})
	}
	invDur := sw.elapsed()
	sw = startStopwatch()
	for _, q := range qs {
		var hits []uint64
		for i, kws := range raw {
			for _, k := range kws {
				if k == q {
					hits = append(hits, uint64(i))
					break
				}
			}
		}
		_ = hits
	}
	scanDur := sw.elapsed()
	return &A7Result{
		Docs:        docs,
		InvertedQPS: float64(queries) / invDur.Seconds(),
		ScanQPS:     float64(queries) / scanDur.Seconds(),
	}, nil
}

// Render implements the table output.
func (r *A7Result) Render() string {
	return fmt.Sprintf("A7 — Keyword search over %d docs\ninverted %12.0f q/s\nscan     %12.0f q/s\n",
		r.Docs, r.InvertedQPS, r.ScanQPS)
}

// A8Result measures what CNN training-time augmentation buys.
type A8Result struct {
	N int
	// F1 per augmentation level (augmented copies per training image).
	F1ByAugment map[int]float64
}

// RunA8Augmentation trains the CNN feature extractor with and without
// augmented training copies (the §IV-B augmented-image machinery) and
// compares SVM macro-F1 on the same test split.
func RunA8Augmentation(n int, seed int64) (*A8Result, error) {
	out := &A8Result{N: n, F1ByAugment: map[int]float64{}}
	for _, aug := range []int{0, 2} {
		s := Scale{N: n, BoWVocab: 16, CNNEpochs: 8, CNNAugment: aug, Seed: seed}
		c, err := buildCNNOnlyCorpus(s)
		if err != nil {
			return nil, err
		}
		train, test, err := c.datasets(string(feature.KindCNN))
		if err != nil {
			return nil, err
		}
		res, err := ml.Evaluate(ml.NewLinearSVM(ml.DefaultLinearConfig(seed)), train, test)
		if err != nil {
			return nil, err
		}
		out.F1ByAugment[aug] = res.MacroF1
	}
	return out, nil
}

// buildCNNOnlyCorpus is BuildCorpus minus the SIFT-BoW stage (the A8
// ablation only needs CNN features; BoW extraction dominates runtime).
func buildCNNOnlyCorpus(s Scale) (*Corpus, error) {
	g, err := synth.NewGenerator(synth.DefaultConfig(s.N, s.Seed))
	if err != nil {
		return nil, err
	}
	c := &Corpus{Scale: s, Records: g.Generate(s.N), Features: make(map[string][][]float64)}
	imgs := make([]*imagesim.Image, s.N)
	c.Labels = make([]int, s.N)
	for i, r := range c.Records {
		imgs[i] = r.Image
		c.Labels[i] = int(r.Class)
	}
	for i := 0; i < s.N; i++ {
		if (i/synth.NumClasses)%5 == 4 {
			c.TestIdx = append(c.TestIdx, i)
		} else {
			c.TrainIdx = append(c.TrainIdx, i)
		}
	}
	trainImgs := make([]*imagesim.Image, len(c.TrainIdx))
	trainLabels := make([]int, len(c.TrainIdx))
	for i, j := range c.TrainIdx {
		trainImgs[i] = imgs[j]
		trainLabels[i] = c.Labels[j]
	}
	cfg := feature.DefaultCNNTrainConfig(synth.NumClasses)
	cfg.Train.Epochs = s.CNNEpochs
	cfg.Augment = s.CNNAugment
	cfg.Train.Seed = s.Seed
	cfg.AugmentSeed = s.Seed
	cnn, err := feature.TrainCNN(context.Background(), trainImgs, trainLabels, cfg)
	if err != nil {
		return nil, err
	}
	feats, err := feature.ExtractAll(cnn, imgs)
	if err != nil {
		return nil, err
	}
	c.Features[string(feature.KindCNN)] = feats
	return c, nil
}

// Render implements the table output.
func (r *A8Result) Render() string {
	return fmt.Sprintf(
		"A8 — CNN training augmentation (N=%d)\nno augmentation   F1=%.3f\n2x augmentation   F1=%.3f\n",
		r.N, r.F1ByAugment[0], r.F1ByAugment[2])
}
