package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// Short smoke run of the persistence benchmark: both engines complete,
// the segment mode actually flushes, and the JSON report round-trips
// with the keys ci.sh checks.
func TestRunPersistenceSmoke(t *testing.T) {
	cfg := PersistenceConfig{
		Clients:        4,
		ReadFrac:       0.5,
		Duration:       300 * time.Millisecond,
		Preload:        64,
		SnapshotEvery:  16,
		FlushThreshold: 4 << 10,
		Seed:           1,
	}
	r, err := RunPersistence(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Figure != "persistence" {
		t.Fatalf("figure = %q", r.Figure)
	}
	for _, m := range []PersistenceModeResult{r.Snapshot, r.Segment} {
		if m.Ops == 0 || m.OpsPerSec <= 0 {
			t.Fatalf("mode %q did no work: %+v", m.Mode, m)
		}
		if m.MaxStallMs < m.P99Ms {
			t.Fatalf("mode %q: max stall %.3fms below p99 %.3fms", m.Mode, m.MaxStallMs, m.P99Ms)
		}
	}
	// Each engine must exercise its own compaction machinery during the
	// window, or the comparison is vacuous.
	if r.Snapshot.Snapshots == 0 {
		t.Fatalf("snapshot mode never snapshotted: %+v", r.Snapshot)
	}
	if r.Segment.Flushes == 0 {
		t.Fatalf("segment mode never flushed: %+v", r.Segment)
	}
	if r.Segment.Snapshots != 0 || r.Snapshot.Flushes != 0 {
		t.Fatalf("engine counters crossed: snapshot=%+v segment=%+v", r.Snapshot, r.Segment)
	}

	path := filepath.Join(t.TempDir(), "BENCH_persistence.json")
	if err := r.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back PersistenceResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Segment.OpsPerSec != r.Segment.OpsPerSec || back.StallImprovementX != r.StallImprovementX {
		t.Fatal("JSON round-trip mismatch")
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}
