package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"testing"

	"repro/internal/feature"
	"repro/internal/imagesim"
	"repro/internal/index"
	"repro/internal/query"
	"repro/internal/store"
)

// Read-path raw-speed benchmark (`tvdp-bench -figure readpath`), the
// evaluation artefact of the quantized-scan + result-cache PR. Two
// phases:
//
//   - Quality, on the real synthetic corpus: for colour-histogram and CNN
//     features, quantized top-k recall against the exact scan and top-k
//     label purity (the retrieval-quality proxy behind Fig. 6). The
//     Fig. 6 verdict — CNN features retrieve better than colour — must
//     hold identically under quantization, or the speedup is bought with
//     the paper's result.
//   - Timing, on a jitter-replicated corpus at TimingN vectors: the same
//     top-k query served three ways through the store + query engine —
//     exact full-precision scan, int8 quantized scan with exact re-rank,
//     and the exact scan behind the generation-stamped result cache.
//     Quantization pays off at corpus scale (the per-query LUT build is
//     O(dim·256), amortized over TimingN candidates), which is why the
//     timing phase does not reuse the small quality corpus.

// ReadpathConfig sizes one readpath benchmark run.
type ReadpathConfig struct {
	// Scale sizes the quality-phase corpus (features are genuinely
	// trained and extracted at this scale).
	Scale Scale
	// K is the top-k depth for both phases.
	K int
	// Queries is the number of quality-phase probe queries per kind.
	Queries int
	// TimingN is the jitter-replicated vector count the timing store
	// serves.
	TimingN int
	// TimingQueries is the number of timed queries per mode.
	TimingQueries int
	// QueryVecs is the size of the rotating query set (smaller than
	// TimingQueries, so the cached mode sees repeats).
	QueryVecs int
	// Seed drives replication jitter and query selection.
	Seed int64
}

// DefaultReadpathConfig mirrors the acceptance setup: smoke-scale
// quality corpus, 20K-vector timing store, top-10.
func DefaultReadpathConfig() ReadpathConfig {
	return ReadpathConfig{
		Scale:         SmokeScale(),
		K:             10,
		Queries:       40,
		TimingN:       20000,
		TimingQueries: 240,
		QueryVecs:     32,
		Seed:          7,
	}
}

// ReadpathQuality is one feature kind's quantization-quality row.
type ReadpathQuality struct {
	Kind string `json:"kind"`
	// RecallAtK is quantized top-k recall against the exact scan.
	RecallAtK float64 `json:"recall_at_k"`
	// ExactPurity / QuantPurity are the mean fraction of top-k
	// neighbours (self excluded) sharing the query's class label.
	ExactPurity float64 `json:"exact_label_purity"`
	QuantPurity float64 `json:"quant_label_purity"`
}

// ReadpathModeResult is one serving mode's measurements.
type ReadpathModeResult struct {
	Mode        string  `json:"mode"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	ElapsedS    float64 `json:"elapsed_s"`
}

// ReadpathResult is the full comparison written to BENCH_readpath.json.
type ReadpathResult struct {
	Figure  string            `json:"figure"`
	K       int               `json:"k"`
	CorpusN int               `json:"corpus_n"`
	TimingN int               `json:"timing_n"`
	Dim     int               `json:"dim"`
	Quality []ReadpathQuality `json:"quality"`
	// MinRecall is the worst per-kind quantized recall — the acceptance
	// number (>= 0.9).
	MinRecall float64 `json:"min_recall"`
	// OrderingPreserved reports that CNN >= colour label purity holds in
	// both the exact and the quantized ranking (the Fig. 6 verdict).
	OrderingPreserved bool               `json:"fig6_ordering_preserved"`
	Exact             ReadpathModeResult `json:"exact"`
	Quant             ReadpathModeResult `json:"quantized"`
	Cached            ReadpathModeResult `json:"cached"`
	QuantSpeedupX     float64            `json:"quant_speedup_x"`
	CachedSpeedupX    float64            `json:"cached_speedup_x"`
	CacheStats        query.CacheStats   `json:"cache_stats"`
}

// readpathQuality measures quantized recall and label purity for one
// feature kind on the corpus, via a dedicated index (no store needed:
// quality is a property of the scan, not the serving path).
func readpathQuality(c *Corpus, kind string, cfg ReadpathConfig) (ReadpathQuality, error) {
	feats := c.Features[kind]
	if len(feats) == 0 {
		return ReadpathQuality{}, fmt.Errorf("experiments: no features of kind %q", kind)
	}
	lsh, err := index.NewLSH(len(feats[0]), index.DefaultLSHConfig(cfg.Seed))
	if err != nil {
		return ReadpathQuality{}, err
	}
	for i, v := range feats {
		if err := lsh.Insert(uint64(i+1), v); err != nil {
			return ReadpathQuality{}, err
		}
	}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(cfg.Seed))
	q := ReadpathQuality{Kind: kind}
	queries := cfg.Queries
	if queries > len(c.TestIdx) {
		queries = len(c.TestIdx)
	}
	purity := func(self uint64, label int, ms []index.Match) float64 {
		same, total := 0, 0
		for _, m := range ms {
			if m.ID == self {
				continue
			}
			total++
			if c.Labels[m.ID-1] == label {
				same++
			}
		}
		if total == 0 {
			return 0
		}
		return float64(same) / float64(total)
	}
	for qi := 0; qi < queries; qi++ {
		ti := c.TestIdx[rng.Intn(len(c.TestIdx))]
		self, label, vec := uint64(ti+1), c.Labels[ti], feats[ti]
		exact, err := lsh.ExactTopK(ctx, vec, cfg.K)
		if err != nil {
			return ReadpathQuality{}, err
		}
		quant, err := lsh.QuantTopK(ctx, vec, cfg.K)
		if err != nil {
			return ReadpathQuality{}, err
		}
		inExact := make(map[uint64]bool, len(exact))
		for _, m := range exact {
			inExact[m.ID] = true
		}
		hits := 0
		for _, m := range quant {
			if inExact[m.ID] {
				hits++
			}
		}
		q.RecallAtK += float64(hits) / float64(cfg.K)
		q.ExactPurity += purity(self, label, exact)
		q.QuantPurity += purity(self, label, quant)
	}
	q.RecallAtK /= float64(queries)
	q.ExactPurity /= float64(queries)
	q.QuantPurity /= float64(queries)
	return q, nil
}

// buildTimingStore replicates the corpus CNN vectors with per-dimension
// jitter out to TimingN and serves them from an in-memory store, so the
// timed path is the production one: store locks, feature index, query
// engine.
func buildTimingStore(c *Corpus, cfg ReadpathConfig) (*store.Store, [][]float64, error) {
	base := c.Features[string(feature.KindCNN)]
	dim := len(base[0])
	// Per-dimension jitter amplitude: 2% of the observed span, so the
	// replicated clusters stay tight (quantization has to preserve
	// fine-grained ordering) while every vector is distinct.
	lo, hi := make([]float64, dim), make([]float64, dim)
	copy(lo, base[0])
	copy(hi, base[0])
	for _, v := range base {
		for d, x := range v {
			if x < lo[d] {
				lo[d] = x
			}
			if x > hi[d] {
				hi[d] = x
			}
		}
	}
	jitter := make([]float64, dim)
	for d := range jitter {
		jitter[d] = 0.02 * (hi[d] - lo[d])
	}
	st, err := store.Open(store.DefaultConfig())
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	// Tiny raster, as in the serving bench: the timed path is the scan,
	// not payload encoding.
	px := imagesim.MustNew(4, 4)
	px.Fill(imagesim.RGB{R: 90, G: 110, B: 130})
	replicate := func(out []float64) {
		src := base[rng.Intn(len(base))]
		for d, x := range src {
			out[d] = x + rng.NormFloat64()*jitter[d]
		}
	}
	vec := make([]float64, dim)
	for i := 0; i < cfg.TimingN; i++ {
		id, err := st.AddImage(servingImage(rng, px))
		if err != nil {
			st.Close()
			return nil, nil, err
		}
		replicate(vec)
		if err := st.PutFeature(id, string(feature.KindCNN), vec); err != nil {
			st.Close()
			return nil, nil, err
		}
	}
	qvecs := make([][]float64, cfg.QueryVecs)
	for i := range qvecs {
		qvecs[i] = make([]float64, dim)
		replicate(qvecs[i])
	}
	return st, qvecs, nil
}

// timeReadpathMode runs TimingQueries sequential queries through eng and
// measures latency percentiles, throughput, and (via testing.Benchmark)
// allocations per query.
func timeReadpathMode(mode string, eng *query.Engine, qvecs [][]float64, cfg ReadpathConfig, clause func([]float64) query.Query) (ReadpathModeResult, error) {
	ctx := context.Background()
	lat := make([]float64, 0, cfg.TimingQueries)
	sw := startStopwatch()
	for i := 0; i < cfg.TimingQueries; i++ {
		q := clause(qvecs[i%len(qvecs)])
		op := startStopwatch()
		if _, _, err := eng.Run(ctx, q); err != nil {
			return ReadpathModeResult{}, fmt.Errorf("readpath %s query %d: %w", mode, i, err)
		}
		lat = append(lat, op.elapsed().Seconds()*1e3)
	}
	elapsed := sw.elapsed().Seconds()
	sort.Float64s(lat)
	pct := func(p float64) float64 {
		if len(lat) == 0 {
			return 0
		}
		return lat[int(p*float64(len(lat)-1))]
	}
	res := ReadpathModeResult{
		Mode:      mode,
		OpsPerSec: float64(cfg.TimingQueries) / elapsed,
		P50Ms:     pct(0.50),
		P99Ms:     pct(0.99),
		ElapsedS:  elapsed,
	}
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := eng.Run(ctx, clause(qvecs[i%len(qvecs)])); err != nil {
				b.Fatal(err)
			}
		}
	})
	res.AllocsPerOp = br.AllocsPerOp()
	res.BytesPerOp = br.AllocedBytesPerOp()
	return res, nil
}

// RunReadpath builds the quality corpus and runs both phases.
func RunReadpath(cfg ReadpathConfig) (*ReadpathResult, error) {
	c, err := BuildCorpus(cfg.Scale)
	if err != nil {
		return nil, err
	}
	return RunReadpathCorpus(c, cfg)
}

// RunReadpathCorpus runs the readpath benchmark over a prebuilt corpus
// (tests reuse the cached smoke corpus; CNN training dominates).
func RunReadpathCorpus(c *Corpus, cfg ReadpathConfig) (*ReadpathResult, error) {
	if cfg.K <= 0 || cfg.Queries <= 0 || cfg.TimingN <= 0 || cfg.TimingQueries <= 0 || cfg.QueryVecs <= 0 {
		return nil, fmt.Errorf("experiments: readpath config needs positive K, Queries, TimingN, TimingQueries, QueryVecs")
	}
	r := &ReadpathResult{
		Figure:  "readpath",
		K:       cfg.K,
		CorpusN: len(c.Records),
		TimingN: cfg.TimingN,
	}

	// Phase 1: quantization quality on the real corpus.
	for _, kind := range []string{string(feature.KindColorHist), string(feature.KindCNN)} {
		q, err := readpathQuality(c, kind, cfg)
		if err != nil {
			return nil, err
		}
		r.Quality = append(r.Quality, q)
	}
	r.MinRecall = r.Quality[0].RecallAtK
	for _, q := range r.Quality[1:] {
		if q.RecallAtK < r.MinRecall {
			r.MinRecall = q.RecallAtK
		}
	}
	colour, cnn := r.Quality[0], r.Quality[1]
	r.OrderingPreserved = cnn.ExactPurity >= colour.ExactPurity && cnn.QuantPurity >= colour.QuantPurity

	// Phase 2: serving-path timing at scale.
	st, qvecs, err := buildTimingStore(c, cfg)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	r.Dim = len(qvecs[0])
	kind := string(feature.KindCNN)
	exactClause := func(v []float64) query.Query {
		return query.Query{Visual: &query.VisualClause{Kind: kind, Vec: v, K: cfg.K, Exact: true}}
	}
	quantClause := func(v []float64) query.Query {
		return query.Query{Visual: &query.VisualClause{Kind: kind, Vec: v, K: cfg.K, Quant: true}}
	}
	uncached := query.New(st)
	if r.Exact, err = timeReadpathMode("exact", uncached, qvecs, cfg, exactClause); err != nil {
		return nil, err
	}
	if r.Quant, err = timeReadpathMode("quantized", uncached, qvecs, cfg, quantClause); err != nil {
		return nil, err
	}
	cached := query.NewCached(st, 0)
	if r.Cached, err = timeReadpathMode("cached", cached, qvecs, cfg, exactClause); err != nil {
		return nil, err
	}
	r.CacheStats = cached.Stats()
	if r.Exact.OpsPerSec > 0 {
		r.QuantSpeedupX = r.Quant.OpsPerSec / r.Exact.OpsPerSec
		r.CachedSpeedupX = r.Cached.OpsPerSec / r.Exact.OpsPerSec
	}
	return r, nil
}

// WriteJSON writes the result as indented JSON (BENCH_readpath.json).
func (r *ReadpathResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Render returns the result as text tables.
func (r *ReadpathResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Read path — corpus %d (quality), %d vectors x %d dims (timing), top-%d\n",
		r.CorpusN, r.TimingN, r.Dim, r.K)
	fmt.Fprintf(&b, "%-12s %10s %14s %14s\n", "kind", "recall@k", "exact purity", "quant purity")
	for _, q := range r.Quality {
		fmt.Fprintf(&b, "%-12s %10.3f %14.3f %14.3f\n", q.Kind, q.RecallAtK, q.ExactPurity, q.QuantPurity)
	}
	fmt.Fprintf(&b, "fig6 ordering preserved under quantization: %v\n\n", r.OrderingPreserved)
	fmt.Fprintf(&b, "%-12s %12s %10s %10s %12s %12s\n", "mode", "ops/sec", "p50 ms", "p99 ms", "allocs/op", "bytes/op")
	for _, m := range []ReadpathModeResult{r.Exact, r.Quant, r.Cached} {
		fmt.Fprintf(&b, "%-12s %12.0f %10.3f %10.3f %12d %12d\n",
			m.Mode, m.OpsPerSec, m.P50Ms, m.P99Ms, m.AllocsPerOp, m.BytesPerOp)
	}
	fmt.Fprintf(&b, "quantized speedup: %.2fx   cached speedup: %.2fx (hits %d / misses %d / shared %d)\n",
		r.QuantSpeedupX, r.CachedSpeedupX, r.CacheStats.Hits, r.CacheStats.Misses, r.CacheStats.Shared)
	return b.String()
}
