package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/feature"
	"repro/internal/imagesim"
	"repro/internal/ingest"
	"repro/internal/store"
	"repro/internal/synth"
)

// Ingestion-tier benchmark (`tvdp-bench -figure ingest`): the same paced
// upload workload run through the pipeline's two ack disciplines —
// inline (the legacy path: the client ack waits for persist + feature
// extraction + index insert) and streaming (ack at WAL commit; heavy
// extraction and index maintenance happen on partitioned pipeline
// workers behind the ack). Extraction runs the paper's full feature
// stack — colour histogram, SIFT-BoW (dense keypoint budget), and the
// CNN — so the analysis stage costs several ms per image, dominating
// the sub-ms persist. That is what the staged pipeline buys: ack
// latency decoupled from analysis cost at identical offered load and
// identical durability. The recall probe then checks the cost side of
// the ledger — the online-maintained ANN index over streamed inserts
// must match the inline build's recall.

// IngestConfig sizes one ingestion benchmark run.
type IngestConfig struct {
	// Clients is the number of concurrent upload goroutines.
	Clients int
	// Records is the total record count submitted per mode (the same
	// synthetic corpus, same seed, both modes).
	Records int
	// TargetOps paces the offered load at this many uploads/sec across
	// all clients (0 = unpaced). Paced is the honest comparison: both
	// modes see identical arrivals, chosen inside capacity, so ack
	// latency measures the ack discipline rather than queueing at
	// saturation.
	TargetOps int
	// BoWVocab / BoWTrain size the SIFT-BoW extractor (vocabulary size,
	// training images); CNNEpochs trains the CNN extractor on the same
	// slice. Together the three families make extraction expensive.
	BoWVocab  int
	BoWTrain  int
	CNNEpochs int
	// Partitions / QueueDepth configure the streaming pipeline. When a
	// partition's queue fills, admission sheds and the client backs off
	// and resubmits; the retry wait counts into that record's ack
	// latency (backpressure is not free and is not hidden).
	Partitions int
	QueueDepth int
	// Queries / K drive the recall probe: K-NN over the SIFT-BoW index
	// for Queries probe vectors, approximate vs exact, per mode.
	Queries int
	K       int
	// Seed drives corpus generation, client striping, and probes.
	Seed int64
}

// DefaultIngestConfig paces 4 clients at 60 uploads/sec for 360
// records. The three-family extraction stack costs ~7 ms/image, so the
// offered load uses under half the single CPU for analysis — streaming
// keeps headroom (its acks stay persist-bound) while inline clients pay
// the full analysis cost inside every ack, which is the comparison the
// figure exists to make.
func DefaultIngestConfig() IngestConfig {
	return IngestConfig{
		Clients:    4,
		Records:    720,
		TargetOps:  60,
		BoWVocab:   64,
		BoWTrain:   60,
		CNNEpochs:  2,
		Partitions: 2,
		QueueDepth: 64,
		Queries:    40,
		K:          10,
		Seed:       1,
	}
}

// IngestModeResult is one ack discipline's measurements.
type IngestModeResult struct {
	Mode    string `json:"mode"`
	Records int    `json:"records"`
	// Ack percentiles: submit-to-ack, the latency an uploading camera
	// sees. For streaming this includes any ErrBusy backoff+resubmit.
	AckP50Ms float64 `json:"ack_p50_ms"`
	AckP95Ms float64 `json:"ack_p95_ms"`
	AckP99Ms float64 `json:"ack_p99_ms"`
	AckMaxMs float64 `json:"ack_max_ms"`
	// Sheds counts admissions refused with ErrBusy (each was backed off
	// and resubmitted — at-least-once with nothing persisted on a shed).
	Sheds uint64 `json:"sheds"`
	// SubmitS is the submit window (last ack − first submit); DrainS the
	// further wait until extraction and indexing fully caught up.
	SubmitS   float64 `json:"submit_s"`
	DrainS    float64 `json:"drain_s"`
	OpsPerSec float64 `json:"ops_per_sec"`
	// RecallAtK is the online ANN index's recall against an exact scan
	// over the same store, averaged across the probe set.
	RecallAtK float64 `json:"recall_at_k"`
}

// IngestResult is the full comparison written to BENCH_ingest.json.
type IngestResult struct {
	Figure    string           `json:"figure"`
	Clients   int              `json:"clients"`
	TargetOps int              `json:"target_ops"`
	BoWVocab  int              `json:"bow_vocab"`
	K         int              `json:"k"`
	Inline    IngestModeResult `json:"inline"`
	Streaming IngestModeResult `json:"streaming"`
	// AckP99ImprovementX is inline ack p99 over streaming ack p99
	// (higher = the staged pipeline wins).
	AckP99ImprovementX float64 `json:"ack_p99_improvement_x"`
	// RecallDelta is inline recall − streaming recall; parity means
	// online index maintenance gave nothing away (≈ 0).
	RecallDelta float64 `json:"recall_delta"`
}

// heavyIngestSIFT is DefaultSIFTConfig with the keypoint budget opened
// up (5x the detections, permissive response threshold) — the dense
// setting that makes per-image extraction cost representative of real
// feature stacks rather than the harness's smoke sizing.
func heavyIngestSIFT() feature.SIFTConfig {
	return feature.SIFTConfig{
		MaxKeypoints: 200, PatchRadius: 10, GridCells: 4, OrientBins: 8,
		ResponseThreshold: 0.5,
	}
}

// trainIngestExtractors builds the heavy extractors both modes share
// (SIFT-BoW and CNN). Training happens once, outside both timed
// windows, on its own corpus slice.
func trainIngestExtractors(cfg IngestConfig) (*feature.BoW, *feature.CNNExtractor, error) {
	g, err := synth.NewGenerator(synth.DefaultConfig(cfg.BoWTrain, cfg.Seed+101))
	if err != nil {
		return nil, nil, err
	}
	imgs := make([]*imagesim.Image, 0, cfg.BoWTrain)
	labels := make([]int, 0, cfg.BoWTrain)
	for _, rec := range g.Generate(cfg.BoWTrain) {
		imgs = append(imgs, rec.Image)
		labels = append(labels, int(rec.Class))
	}
	bow, err := feature.TrainBoW(imgs, heavyIngestSIFT(), cfg.BoWVocab, cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	ccfg := feature.DefaultCNNTrainConfig(len(synth.ClassNames))
	ccfg.Train.Epochs = cfg.CNNEpochs
	ccfg.Train.Seed = cfg.Seed
	ccfg.Augment = 0
	cnn, err := feature.TrainCNN(context.Background(), imgs, labels, ccfg)
	if err != nil {
		return nil, nil, err
	}
	return bow, cnn, nil
}

func runIngestMode(mode string, cfg IngestConfig, recs []synth.Record, bow *feature.BoW, cnn *feature.CNNExtractor) (IngestModeResult, error) {
	dir, err := os.MkdirTemp("", "tvdp-ingest-*")
	if err != nil {
		return IngestModeResult{}, err
	}
	defer os.RemoveAll(dir)
	scfg := store.DefaultConfig()
	scfg.Dir = dir
	st, err := store.Open(scfg)
	if err != nil {
		return IngestModeResult{}, err
	}
	defer st.Close()
	svc := analysis.NewService(st)
	svc.RegisterExtractor(feature.NewColorHistogram())
	svc.RegisterExtractor(bow)
	svc.RegisterExtractor(cnn)
	pipe := ingest.New(st, svc, ingest.Config{Partitions: cfg.Partitions, QueueDepth: cfg.QueueDepth})
	ctx := context.Background()
	pipe.Start(ctx)
	defer pipe.Close()

	type clientOut struct {
		lat []time.Duration
		err error
	}
	outs := make([]clientOut, cfg.Clients)
	var interval time.Duration
	if cfg.TargetOps > 0 {
		interval = time.Duration(float64(cfg.Clients) * float64(time.Second) / float64(cfg.TargetOps))
	}
	sw := startStopwatch()
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			out := &outs[c]
			clock := startStopwatch()
			// Client c owns records c, c+Clients, c+2*Clients, ... — a
			// deterministic striping that also spreads WorkerIDs (and so
			// pipeline partitions) across clients.
			n := 0
			for i := c; i < len(recs); i += cfg.Clients {
				if interval > 0 {
					if ahead := time.Duration(n)*interval - clock.elapsed(); ahead > 0 {
						time.Sleep(ahead)
					}
				}
				n++
				rec := ingest.Record{
					Image: store.Image{
						FOV:                recs[i].FOV,
						Pixels:             recs[i].Image,
						TimestampCapturing: recs[i].CapturedAt,
						TimestampUploading: recs[i].UploadedAt,
						WorkerID:           recs[i].WorkerID,
					},
					Keywords: recs[i].Keywords,
				}
				op := startStopwatch()
				var err error
				if mode == "inline" {
					_, _, err = pipe.SubmitSync(ctx, rec)
				} else {
					for {
						_, err = pipe.SubmitAsync(ctx, rec)
						if !errors.Is(err, ingest.ErrBusy) {
							break
						}
						// Shed: nothing persisted; back off and resubmit.
						// The wait stays inside this record's ack latency.
						time.Sleep(time.Millisecond)
					}
				}
				if err != nil {
					out.err = err
					return
				}
				out.lat = append(out.lat, op.elapsed())
			}
		}(c)
	}
	wg.Wait()
	submitS := sw.elapsed()
	drainSW := startStopwatch()
	if err := pipe.Drain(ctx); err != nil {
		return IngestModeResult{}, err
	}
	drainS := drainSW.elapsed()

	var all []time.Duration
	for c := range outs {
		if outs[c].err != nil {
			return IngestModeResult{}, fmt.Errorf("ingest bench client %d: %w", c, outs[c].err)
		}
		all = append(all, outs[c].lat...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		return float64(all[int(p*float64(len(all)-1))]) / float64(time.Millisecond)
	}
	res := IngestModeResult{
		Mode:      mode,
		Records:   len(all),
		AckP50Ms:  pct(0.50),
		AckP95Ms:  pct(0.95),
		AckP99Ms:  pct(0.99),
		Sheds:     pipe.Stats().Shed,
		SubmitS:   submitS.Seconds(),
		DrainS:    drainS.Seconds(),
		OpsPerSec: float64(len(all)) / submitS.Seconds(),
	}
	if len(all) > 0 {
		res.AckMaxMs = float64(all[len(all)-1]) / float64(time.Millisecond)
	}
	res.RecallAtK, err = ingestRecall(ctx, st, bow, recs, cfg)
	if err != nil {
		return IngestModeResult{}, err
	}
	return res, nil
}

// ingestRecall probes the SIFT-BoW ANN index built by this mode's
// inserts: approximate top-K vs an exact scan over the same store,
// averaged over cfg.Queries probe vectors drawn from the corpus.
func ingestRecall(ctx context.Context, st *store.Store, bow *feature.BoW, recs []synth.Record, cfg IngestConfig) (float64, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 17))
	kind := string(feature.KindSIFTBoW)
	var total float64
	for q := 0; q < cfg.Queries; q++ {
		vec, err := bow.Extract(recs[rng.Intn(len(recs))].Image)
		if err != nil {
			return 0, err
		}
		approx, err := st.SearchVisual(ctx, kind, vec, cfg.K)
		if err != nil {
			return 0, err
		}
		exact, err := st.SearchVisualExact(ctx, kind, vec, cfg.K)
		if err != nil {
			return 0, err
		}
		truth := make(map[uint64]bool, len(exact))
		for _, m := range exact {
			truth[m.ID] = true
		}
		hit := 0
		for _, m := range approx {
			if truth[m.ID] {
				hit++
			}
		}
		if len(exact) > 0 {
			total += float64(hit) / float64(len(exact))
		}
	}
	return total / float64(cfg.Queries), nil
}

// RunIngest runs the paced upload workload under both ack disciplines
// and returns the comparison.
func RunIngest(cfg IngestConfig) (*IngestResult, error) {
	if cfg.Clients <= 0 || cfg.Records <= 0 {
		return nil, fmt.Errorf("experiments: ingest config needs clients > 0 and records > 0")
	}
	if cfg.BoWVocab <= 0 || cfg.BoWTrain <= 0 || cfg.CNNEpochs <= 0 || cfg.Queries <= 0 || cfg.K <= 0 {
		return nil, fmt.Errorf("experiments: ingest config needs extractor sizing and probe counts > 0")
	}
	bow, cnn, err := trainIngestExtractors(cfg)
	if err != nil {
		return nil, err
	}
	g, err := synth.NewGenerator(synth.DefaultConfig(cfg.Records, cfg.Seed))
	if err != nil {
		return nil, err
	}
	recs := g.Generate(cfg.Records)
	inline, err := runIngestMode("inline", cfg, recs, bow, cnn)
	if err != nil {
		return nil, err
	}
	streaming, err := runIngestMode("streaming", cfg, recs, bow, cnn)
	if err != nil {
		return nil, err
	}
	r := &IngestResult{
		Figure:    "ingest",
		Clients:   cfg.Clients,
		TargetOps: cfg.TargetOps,
		BoWVocab:  cfg.BoWVocab,
		K:         cfg.K,
		Inline:    inline,
		Streaming: streaming,
	}
	if streaming.AckP99Ms > 0 {
		r.AckP99ImprovementX = inline.AckP99Ms / streaming.AckP99Ms
	}
	r.RecallDelta = inline.RecallAtK - streaming.RecallAtK
	return r, nil
}

// WriteJSON writes the result as indented JSON (BENCH_ingest.json).
func (r *IngestResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Render returns the result as a text table.
func (r *IngestResult) Render() string {
	var b strings.Builder
	pace := "unpaced"
	if r.TargetOps > 0 {
		pace = fmt.Sprintf("paced at %d uploads/sec", r.TargetOps)
	}
	fmt.Fprintf(&b, "Ingestion tier — %d clients, %s, BoW vocab %d\n", r.Clients, pace, r.BoWVocab)
	fmt.Fprintf(&b, "%-10s %8s %9s %9s %9s %9s %6s %8s %8s %10s\n",
		"mode", "records", "p50 ms", "p95 ms", "p99 ms", "max ms", "sheds", "submit s", "drain s", "recall@K")
	for _, m := range []IngestModeResult{r.Inline, r.Streaming} {
		fmt.Fprintf(&b, "%-10s %8d %9.3f %9.3f %9.3f %9.1f %6d %8.2f %8.2f %10.3f\n",
			m.Mode, m.Records, m.AckP50Ms, m.AckP95Ms, m.AckP99Ms, m.AckMaxMs, m.Sheds, m.SubmitS, m.DrainS, m.RecallAtK)
	}
	fmt.Fprintf(&b, "ack p99 improvement: %.2fx   recall delta: %+.3f\n",
		r.AckP99ImprovementX, r.RecallDelta)
	return b.String()
}
