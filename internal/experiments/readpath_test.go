package experiments

import "testing"

// TestRunReadpathSmoke runs both phases at reduced timing scale and pins
// the acceptance shape: quantized recall >= 0.9 against the exact scan,
// the Fig. 6 CNN-over-colour ordering intact under quantization, and all
// three serving modes measured.
func TestRunReadpathSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a corpus and a timing store; skipped in -short")
	}
	c := smoke(t)
	cfg := DefaultReadpathConfig()
	cfg.TimingN = 1500
	cfg.TimingQueries = 24
	cfg.QueryVecs = 8
	r, err := RunReadpathCorpus(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Quality) != 2 {
		t.Fatalf("want 2 quality rows (colour, cnn), got %d", len(r.Quality))
	}
	if r.MinRecall < 0.9 {
		t.Errorf("quantized recall@%d = %.3f, want >= 0.9 (quality rows: %+v)", r.K, r.MinRecall, r.Quality)
	}
	if !r.OrderingPreserved {
		t.Errorf("Fig. 6 ordering (CNN >= colour purity) broke under quantization: %+v", r.Quality)
	}
	for _, m := range []ReadpathModeResult{r.Exact, r.Quant, r.Cached} {
		if m.OpsPerSec <= 0 || m.P50Ms < 0 || m.P99Ms < m.P50Ms {
			t.Errorf("mode %s has degenerate timing: %+v", m.Mode, m)
		}
		if m.AllocsPerOp <= 0 {
			t.Errorf("mode %s did not measure allocations: %+v", m.Mode, m)
		}
	}
	// The cached mode cycles QueryVecs distinct queries with no writes in
	// between, so everything after the first pass must be a cache hit.
	if r.CacheStats.Hits == 0 {
		t.Errorf("cached mode recorded no cache hits: %+v", r.CacheStats)
	}
	if got := r.Render(); got == "" {
		t.Error("Render returned empty output")
	}
}
