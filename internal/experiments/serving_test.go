package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// Short smoke run of the serving benchmark: both modes complete, counters
// are sane, and the JSON report round-trips with the keys ci.sh checks.
func TestRunServingSmoke(t *testing.T) {
	cfg := ServingConfig{Clients: 4, ReadFrac: 0.5, Duration: 250 * time.Millisecond, Preload: 16, Sync: true, Seed: 1}
	r, err := RunServing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Figure != "serving" {
		t.Fatalf("figure = %q", r.Figure)
	}
	for _, m := range []ServingModeResult{r.Baseline, r.Concurrent} {
		if m.Ops == 0 || m.OpsPerSec <= 0 {
			t.Fatalf("mode %q did no work: %+v", m.Mode, m)
		}
		if m.Writes > 0 && m.Fsyncs == 0 {
			t.Fatalf("mode %q wrote %d ops with zero fsyncs under SyncEveryWrite", m.Mode, m.Writes)
		}
	}
	// The baseline cannot batch (writes serialised), so it must fsync once
	// per write; the concurrent path must never exceed that.
	if r.Baseline.Writes > 0 && r.Baseline.FsyncsPerWrite < 0.99 {
		t.Fatalf("baseline batched fsyncs (%.3f/write) — globalLock emulation broken", r.Baseline.FsyncsPerWrite)
	}
	if r.Concurrent.FsyncsPerWrite > r.Baseline.FsyncsPerWrite+0.01 {
		t.Fatalf("concurrent fsyncs/write %.3f exceeds baseline %.3f",
			r.Concurrent.FsyncsPerWrite, r.Baseline.FsyncsPerWrite)
	}

	path := filepath.Join(t.TempDir(), "BENCH_serving.json")
	if err := r.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back ServingResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Concurrent.OpsPerSec != r.Concurrent.OpsPerSec || back.SpeedupX != r.SpeedupX {
		t.Fatal("JSON round-trip mismatch")
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}
