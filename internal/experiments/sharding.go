package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/geo"
	"repro/internal/imagesim"
	"repro/internal/shard"
	"repro/internal/store"
)

// Sharding scaling benchmark (`tvdp-bench -figure sharding`): the same
// mixed read/write workload the serving figure uses, run against shard
// coordinators of increasing width (1 → 2 → 4 → 8) with WAL
// auto-compaction enabled. Compaction is where sharding pays even on a
// single core and a single disk: a snapshot rewrites the whole corpus
// under every write lock, so an unsharded store periodically stalls all
// clients for an O(corpus) rewrite, while a sharded deployment rewrites
// O(corpus/N) units that block only the owning shard — the other shards
// keep serving through the stall, and total compaction bytes drop by a
// factor of N. The run also asserts the merge-determinism contract:
// every partition-invariant query must return bit-identical results at
// every shard count.

// ShardingConfig sizes one sharding benchmark run.
type ShardingConfig struct {
	// Counts are the shard widths to sweep.
	Counts []int
	// Clients is the number of concurrent workload goroutines.
	Clients int
	// ReadFrac in [0,1] is the probability an op is a read.
	ReadFrac float64
	// Duration is the measured wall-clock window per width.
	Duration time.Duration
	// Preload seeds each deployment with this many images before timing.
	Preload int
	// Sync enables SyncEveryWrite.
	Sync bool
	// SnapshotEvery auto-compacts each shard's WAL after this many
	// logged ops — the stall sharding amortises.
	SnapshotEvery int
	// Seed drives workload RNGs and the determinism-check corpus.
	Seed int64
}

// DefaultShardingConfig is the 1→2→4→8 sweep in the compaction-bound
// regime: a large preloaded corpus, frequent auto-compaction, group
// commit without per-write fsync (the snapshot itself still fsyncs).
// SyncEveryWrite stays off by default because a per-batch fsync on one
// shared disk is deliberately *not* what this figure measures — see the
// package comment.
func DefaultShardingConfig() ShardingConfig {
	return ShardingConfig{
		Counts:        []int{1, 2, 4, 8},
		Clients:       12,
		ReadFrac:      0.5,
		Duration:      2 * time.Second,
		Preload:       8000,
		Sync:          false,
		SnapshotEvery: 256,
		Seed:          1,
	}
}

// ShardingPoint is one shard width's measurements.
type ShardingPoint struct {
	Shards    int     `json:"shards"`
	Ops       uint64  `json:"ops"`
	Reads     uint64  `json:"reads"`
	Writes    uint64  `json:"writes"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
	MaxMs     float64 `json:"max_ms"`
	ElapsedS  float64 `json:"elapsed_s"`
	// SpeedupX is this width's ops/sec over the 1-shard point.
	SpeedupX float64 `json:"speedup_x"`
}

// ShardingResult is the full sweep written to BENCH_sharding.json.
type ShardingResult struct {
	Figure         string          `json:"figure"`
	Clients        int             `json:"clients"`
	ReadFrac       float64         `json:"read_frac"`
	SyncEveryWrite bool            `json:"sync_every_write"`
	SnapshotEvery  int             `json:"snapshot_every"`
	Points         []ShardingPoint `json:"points"`
	// TopKInvariant reports the merge-determinism check: bit-identical
	// results for every partition-invariant query at every shard count
	// (and against a bare unsharded store).
	TopKInvariant bool `json:"topk_invariant"`
}

func runShardingPoint(n int, cfg ShardingConfig) (ShardingPoint, error) {
	dir, err := os.MkdirTemp("", "tvdp-sharding-*")
	if err != nil {
		return ShardingPoint{}, err
	}
	defer os.RemoveAll(dir)
	co, err := shard.Open(shard.Config{
		Dir: dir, ShardCount: n,
		SyncEveryWrite: cfg.Sync, SnapshotEvery: cfg.SnapshotEvery,
	})
	if err != nil {
		return ShardingPoint{}, err
	}
	defer co.Close()

	px := imagesim.MustNew(4, 4)
	px.Fill(imagesim.RGB{R: 90, G: 110, B: 130})
	seedRng := rand.New(rand.NewSource(cfg.Seed))
	preloaded := make([]uint64, 0, cfg.Preload)
	for i := 0; i < cfg.Preload; i++ {
		id, err := co.AddImage(servingImage(seedRng, px))
		if err != nil {
			return ShardingPoint{}, err
		}
		preloaded = append(preloaded, id)
	}

	type clientOut struct {
		lat           []time.Duration
		reads, writes uint64
		err           error
	}
	outs := make([]clientOut, cfg.Clients)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	sw := startStopwatch()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(c)*7919))
			out := &outs[c]
			for {
				select {
				case <-stop:
					return
				default:
				}
				isRead := rng.Float64() < cfg.ReadFrac
				op := startStopwatch()
				if isRead {
					// Point read routed to the owning shard (same cost at
					// any width, so scaling comes from write parallelism).
					if _, err := co.Describe(preloaded[rng.Intn(len(preloaded))]); err != nil {
						out.err = err
					}
					out.reads++
				} else {
					if _, err := co.AddImage(servingImage(rng, px)); err != nil {
						out.err = err
					}
					out.writes++
				}
				out.lat = append(out.lat, op.elapsed())
				if out.err != nil {
					return
				}
			}
		}(c)
	}
	time.Sleep(cfg.Duration)
	close(stop)
	wg.Wait()
	elapsed := sw.elapsed()

	var all []time.Duration
	res := ShardingPoint{Shards: n, ElapsedS: elapsed.Seconds()}
	for c := range outs {
		if outs[c].err != nil {
			return ShardingPoint{}, fmt.Errorf("sharding bench client %d (n=%d): %w", c, n, outs[c].err)
		}
		all = append(all, outs[c].lat...)
		res.Reads += outs[c].reads
		res.Writes += outs[c].writes
	}
	res.Ops = res.Reads + res.Writes
	res.OpsPerSec = float64(res.Ops) / elapsed.Seconds()
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return float64(all[i]) / float64(time.Millisecond)
	}
	res.P50Ms = pct(0.50)
	res.P99Ms = pct(0.99)
	if len(all) > 0 {
		res.MaxMs = float64(all[len(all)-1]) / float64(time.Millisecond)
	}
	return res, nil
}

// checkTopKInvariance seeds identical in-memory deployments at every
// width plus a bare store, then compares every partition-invariant query
// for bit-identical output.
func checkTopKInvariance(cfg ShardingConfig) (bool, error) {
	ctx := context.Background()
	bare, err := store.Open(store.DefaultConfig())
	if err != nil {
		return false, err
	}
	defer bare.Close()
	backends := []store.Backend{bare}
	for _, n := range cfg.Counts {
		co, err := shard.Open(shard.Config{ShardCount: n})
		if err != nil {
			return false, err
		}
		defer co.Close()
		backends = append(backends, co)
	}
	const corpus = 200
	kw := []string{"street", "garbage", "clean", "truck", "overflow", "bin"}
	for _, b := range backends {
		rng := rand.New(rand.NewSource(cfg.Seed))
		px := imagesim.MustNew(4, 4)
		px.Fill(imagesim.RGB{R: 90, G: 110, B: 130})
		for i := 0; i < corpus; i++ {
			id, err := b.AddImage(servingImage(rng, px))
			if err != nil {
				return false, err
			}
			if err := b.AddKeywords(id, []string{kw[i%len(kw)], kw[(i*2+1)%len(kw)]}); err != nil {
				return false, err
			}
			vec := []float64{rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10}
			if err := b.PutFeature(id, "hist", vec); err != nil {
				return false, err
			}
		}
	}
	qvec := []float64{5, 5, 5}
	from := time.Date(2019, 2, 1, 8, 0, 0, 0, time.UTC)
	region := geo.NewRect(geo.Destination(laCenter, 315, 4000), geo.Destination(laCenter, 135, 4000))
	queries := []func(store.Backend) (any, error){
		func(b store.Backend) (any, error) { return b.SearchVisualExact(ctx, "hist", qvec, 10) },
		func(b store.Backend) (any, error) { return b.SearchText(ctx, []string{"garbage", "truck"}) },
		func(b store.Backend) (any, error) { return b.SearchTextAll(ctx, []string{"garbage", "clean"}) },
		func(b store.Backend) (any, error) { return b.SearchTime(ctx, from, from.Add(12*time.Hour)) },
		func(b store.Backend) (any, error) { return b.SearchScene(ctx, region) },
		func(b store.Backend) (any, error) { return b.SearchNearest(ctx, laCenter, 20) },
	}
	for qi, run := range queries {
		want, err := run(backends[0])
		if err != nil {
			return false, err
		}
		for bi, b := range backends[1:] {
			got, err := run(b)
			if err != nil {
				return false, err
			}
			if !reflect.DeepEqual(got, want) {
				_ = qi
				_ = bi
				return false, nil
			}
		}
	}
	return true, nil
}

// RunSharding sweeps the shard widths and runs the determinism check.
func RunSharding(cfg ShardingConfig) (*ShardingResult, error) {
	if len(cfg.Counts) == 0 || cfg.Clients <= 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("experiments: sharding config needs counts, clients > 0, and duration > 0")
	}
	if cfg.ReadFrac > 0 && cfg.Preload <= 0 {
		return nil, fmt.Errorf("experiments: sharding config needs preload > 0 when reads are enabled")
	}
	r := &ShardingResult{
		Figure:         "sharding",
		Clients:        cfg.Clients,
		ReadFrac:       cfg.ReadFrac,
		SyncEveryWrite: cfg.Sync,
		SnapshotEvery:  cfg.SnapshotEvery,
	}
	for _, n := range cfg.Counts {
		p, err := runShardingPoint(n, cfg)
		if err != nil {
			return nil, err
		}
		r.Points = append(r.Points, p)
	}
	if base := r.Points[0].OpsPerSec; base > 0 {
		for i := range r.Points {
			r.Points[i].SpeedupX = r.Points[i].OpsPerSec / base
		}
	}
	inv, err := checkTopKInvariance(cfg)
	if err != nil {
		return nil, err
	}
	r.TopKInvariant = inv
	return r, nil
}

// WriteJSON writes the result as indented JSON (BENCH_sharding.json).
func (r *ShardingResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Render returns the result as a text table.
func (r *ShardingResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sharding scaling — %d clients, %.0f%% reads, SyncEveryWrite=%v, SnapshotEvery=%d\n",
		r.Clients, r.ReadFrac*100, r.SyncEveryWrite, r.SnapshotEvery)
	fmt.Fprintf(&b, "%-8s %10s %9s %9s %9s %9s %9s\n", "shards", "ops/sec", "p50 ms", "p99 ms", "max ms", "ops", "speedup")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-8d %10.0f %9.3f %9.3f %9.1f %9d %8.2fx\n",
			p.Shards, p.OpsPerSec, p.P50Ms, p.P99Ms, p.MaxMs, p.Ops, p.SpeedupX)
	}
	fmt.Fprintf(&b, "top-k merge invariant across shard counts: %v\n", r.TopKInvariant)
	return b.String()
}
