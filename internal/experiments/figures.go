package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/edge"
	"repro/internal/ml"
	"repro/internal/nn"
	"repro/internal/synth"
)

// ClassifierNames lists the Fig. 6 sweep in display order (must match
// ml.Standard).
var ClassifierNames = []string{"kNN(k=5)", "NaiveBayes", "DecisionTree", "RandomForest", "LogReg", "SVM"}

// Fig6Result is the feature × classifier macro-F1 grid.
type Fig6Result struct {
	Scale Scale
	// F1[feature][classifier].
	F1 map[string]map[string]float64
	// CVMean[feature][classifier] is the 10-fold cross-validation mean
	// on the training split (the paper's protocol).
	CVMean map[string]map[string]float64
}

// RunFig6 evaluates every (feature, classifier) pair: fit on the 80%
// split, report macro F1 on the 20% test split, plus k-fold CV on train.
// folds <= 1 skips cross-validation (it dominates runtime).
func RunFig6(c *Corpus, folds int) (*Fig6Result, error) {
	out := &Fig6Result{
		Scale:  c.Scale,
		F1:     make(map[string]map[string]float64),
		CVMean: make(map[string]map[string]float64),
	}
	for _, kind := range FeatureNames {
		train, test, err := c.datasets(kind)
		if err != nil {
			return nil, err
		}
		out.F1[kind] = make(map[string]float64)
		out.CVMean[kind] = make(map[string]float64)
		for _, f := range ml.Standard(c.Scale.Seed) {
			clf := f()
			res, err := ml.Evaluate(clf, train, test)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig6 %s/%s: %w", kind, clf.Name(), err)
			}
			out.F1[kind][clf.Name()] = res.MacroF1
			if folds > 1 {
				scores, err := ml.CrossValidate(f, train, folds, c.Scale.Seed)
				if err != nil {
					return nil, fmt.Errorf("experiments: fig6 CV %s/%s: %w", kind, clf.Name(), err)
				}
				out.CVMean[kind][clf.Name()] = ml.Mean(scores)
			}
		}
	}
	return out, nil
}

// Render prints the grid in the paper's layout (classifiers × features).
func (r *Fig6Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 6 — Macro F1 per classifier and image feature (N=%d)\n", r.Scale.N)
	fmt.Fprintf(&b, "%-14s", "classifier")
	for _, kind := range FeatureNames {
		fmt.Fprintf(&b, " %12s", kind)
	}
	b.WriteString("\n")
	for _, clf := range ClassifierNames {
		fmt.Fprintf(&b, "%-14s", clf)
		for _, kind := range FeatureNames {
			fmt.Fprintf(&b, " %12.3f", r.F1[kind][clf])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Best returns the best classifier and F1 for a feature.
func (r *Fig6Result) Best(kind string) (string, float64) {
	bestName, bestF1 := "", -1.0
	for _, clf := range ClassifierNames {
		if v := r.F1[kind][clf]; v > bestF1 {
			bestName, bestF1 = clf, v
		}
	}
	return bestName, bestF1
}

// Fig7Result is the per-category F1 of SVM under each feature family.
type Fig7Result struct {
	Scale Scale
	// F1[feature][class].
	F1 map[string][]float64
}

// RunFig7 fits the paper's best classifier (SVM) per feature family and
// reports per-class F1 over the five cleanliness categories.
func RunFig7(c *Corpus) (*Fig7Result, error) {
	out := &Fig7Result{Scale: c.Scale, F1: make(map[string][]float64)}
	for _, kind := range FeatureNames {
		train, test, err := c.datasets(kind)
		if err != nil {
			return nil, err
		}
		clf := ml.NewLinearSVM(ml.DefaultLinearConfig(c.Scale.Seed))
		res, err := ml.Evaluate(clf, train, test)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig7 %s: %w", kind, err)
		}
		per := make([]float64, synth.NumClasses)
		for cls, m := range res.PerClass {
			per[cls] = m.F1
		}
		out.F1[kind] = per
	}
	return out, nil
}

// Render prints the per-category table.
func (r *Fig7Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 7 — SVM per-category F1 per image feature (N=%d)\n", r.Scale.N)
	fmt.Fprintf(&b, "%-22s", "category")
	for _, kind := range FeatureNames {
		fmt.Fprintf(&b, " %12s", kind)
	}
	b.WriteString("\n")
	for cls := 0; cls < synth.NumClasses; cls++ {
		fmt.Fprintf(&b, "%-22s", synth.Class(cls).String())
		for _, kind := range FeatureNames {
			fmt.Fprintf(&b, " %12.3f", r.F1[kind][cls])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// CNNBestWorst returns the best and worst category under CNN features.
func (r *Fig7Result) CNNBestWorst() (best, worst synth.Class) {
	per := r.F1[FeatureNames[2]]
	for cls := 1; cls < len(per); cls++ {
		if per[cls] > per[best] {
			best = synth.Class(cls)
		}
		if per[cls] < per[worst] {
			worst = synth.Class(cls)
		}
	}
	return best, worst
}

// Fig8Result is the inference-time table: model × device × image size.
type Fig8Result struct {
	ImageSides []int
	// MeanMs[model][device][sideIdx].
	MeanMs map[string]map[string][]float64
}

// RunFig8 simulates the edge inference-time evaluation: three pretrained
// model profiles on three device classes over an image-size sweep,
// `trials` runs each.
func RunFig8(seed int64, trials int) *Fig8Result {
	if trials <= 0 {
		trials = 50
	}
	sim := edge.NewInferenceSim(seed)
	out := &Fig8Result{
		ImageSides: []int{128, 160, 192, 224},
		MeanMs:     make(map[string]map[string][]float64),
	}
	for _, m := range nn.Profiles() {
		out.MeanMs[m.Name] = make(map[string][]float64)
		for _, d := range edge.Devices() {
			series := make([]float64, len(out.ImageSides))
			for i, side := range out.ImageSides {
				series[i] = float64(sim.MeanInfer(m, d, side, trials)) / float64(time.Millisecond)
			}
			out.MeanMs[m.Name][d.Name] = series
		}
	}
	return out
}

// Render prints mean latencies with their base-10 logs (the paper plots
// log10 ms).
func (r *Fig8Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 8 — Mean inference time (ms) per model, device, image size\n")
	fmt.Fprintf(&b, "%-14s %-18s", "model", "device")
	for _, s := range r.ImageSides {
		fmt.Fprintf(&b, " %9dpx", s)
	}
	b.WriteString("   log10@224\n")
	for _, m := range nn.Profiles() {
		for _, d := range edge.Devices() {
			fmt.Fprintf(&b, "%-14s %-18s", m.Name, d.Name)
			series := r.MeanMs[m.Name][d.Name]
			for _, v := range series {
				fmt.Fprintf(&b, " %11.1f", v)
			}
			fmt.Fprintf(&b, "   %8.2f\n", log10(series[len(series)-1]))
		}
	}
	return b.String()
}

func log10(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Log10(v)
}
