// Package experiments regenerates every figure of the paper's evaluation
// (§VII) plus the ablation studies listed in DESIGN.md. Each experiment
// returns a structured result with a text rendering that mirrors the
// paper's presentation, so `cmd/tvdp-bench` and the root benchmarks share
// one implementation.
package experiments

import (
	"context"
	"fmt"

	"repro/internal/feature"
	"repro/internal/imagesim"
	"repro/internal/ml"
	"repro/internal/synth"
)

// Scale sizes an experiment run. The paper's corpus is 22K images with a
// 1000-word BoW vocabulary; the default scale keeps single-core runs in
// minutes while preserving every qualitative result.
type Scale struct {
	// N is the corpus size.
	N int
	// BoWVocab is the SIFT-BoW dictionary size.
	BoWVocab int
	// CNNEpochs controls feature-net fine-tuning.
	CNNEpochs int
	// CNNAugment is the augmented copies per training image.
	CNNAugment int
	// Seed drives the whole pipeline.
	Seed int64
}

// DefaultScale is the harness scale: ~75 s for the full Fig. 6 grid on
// one core.
func DefaultScale() Scale {
	return Scale{N: 1000, BoWVocab: 64, CNNEpochs: 12, CNNAugment: 2, Seed: 1}
}

// SmokeScale is for tests: seconds, not minutes.
func SmokeScale() Scale {
	return Scale{N: 150, BoWVocab: 16, CNNEpochs: 3, CNNAugment: 0, Seed: 5}
}

// PaperScale matches the paper's corpus and vocabulary sizes. Expect
// hours on one core.
func PaperScale() Scale {
	return Scale{N: 22000, BoWVocab: 1000, CNNEpochs: 12, CNNAugment: 2, Seed: 1}
}

// FeatureNames lists the Fig. 6 feature families in paper order.
var FeatureNames = []string{
	string(feature.KindColorHist),
	string(feature.KindSIFTBoW),
	string(feature.KindCNN),
}

// Corpus is a generated dataset with train/test split and extracted
// features, shared by Fig. 6 and Fig. 7.
type Corpus struct {
	Scale    Scale
	Records  []synth.Record
	Labels   []int
	TrainIdx []int
	TestIdx  []int
	// Features[kind][i] is the vector of record i.
	Features map[string][][]float64
}

// BuildCorpus generates the synthetic LASAN-style corpus, splits it
// 80/20 stratified (the paper's protocol), and extracts all three
// feature families — training BoW and the CNN on the training split only
// so no test information leaks into the representations.
func BuildCorpus(s Scale) (*Corpus, error) {
	if s.N < 50 {
		return nil, fmt.Errorf("experiments: N=%d too small for a 5-class 80/20 split", s.N)
	}
	g, err := synth.NewGenerator(synth.DefaultConfig(s.N, s.Seed))
	if err != nil {
		return nil, err
	}
	c := &Corpus{Scale: s, Records: g.Generate(s.N), Features: make(map[string][][]float64)}
	imgs := make([]*imagesim.Image, s.N)
	c.Labels = make([]int, s.N)
	for i, r := range c.Records {
		imgs[i] = r.Image
		c.Labels[i] = int(r.Class)
	}
	// Deterministic stratified 80/20 split: records cycle classes, so
	// blocks of NumClasses are class-balanced; every 5th block tests.
	for i := 0; i < s.N; i++ {
		if (i/synth.NumClasses)%5 == 4 {
			c.TestIdx = append(c.TestIdx, i)
		} else {
			c.TrainIdx = append(c.TrainIdx, i)
		}
	}
	trainImgs := make([]*imagesim.Image, len(c.TrainIdx))
	trainLabels := make([]int, len(c.TrainIdx))
	for i, j := range c.TrainIdx {
		trainImgs[i] = imgs[j]
		trainLabels[i] = c.Labels[j]
	}

	// Colour histogram: stateless.
	colorF, err := feature.ExtractAll(feature.NewColorHistogram(), imgs)
	if err != nil {
		return nil, fmt.Errorf("experiments: colour features: %w", err)
	}
	c.Features[string(feature.KindColorHist)] = colorF

	// SIFT-BoW: vocabulary from the training split.
	bow, err := feature.TrainBoW(trainImgs, feature.DefaultSIFTConfig(), s.BoWVocab, s.Seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: BoW training: %w", err)
	}
	bowF, err := feature.ExtractAll(bow, imgs)
	if err != nil {
		return nil, fmt.Errorf("experiments: BoW features: %w", err)
	}
	c.Features[string(feature.KindSIFTBoW)] = bowF

	// CNN: fine-tuned on the training split.
	cnnCfg := feature.DefaultCNNTrainConfig(synth.NumClasses)
	cnnCfg.Train.Epochs = s.CNNEpochs
	cnnCfg.Augment = s.CNNAugment
	cnnCfg.Train.Seed = s.Seed
	cnnCfg.AugmentSeed = s.Seed
	cnn, err := feature.TrainCNN(context.Background(), trainImgs, trainLabels, cnnCfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: CNN training: %w", err)
	}
	cnnF, err := feature.ExtractAll(cnn, imgs)
	if err != nil {
		return nil, fmt.Errorf("experiments: CNN features: %w", err)
	}
	c.Features[string(feature.KindCNN)] = cnnF
	return c, nil
}

// datasets returns standardized train/test ml.Datasets for one feature
// kind (standardizer fitted on train only).
func (c *Corpus) datasets(kind string) (train, test ml.Dataset, err error) {
	feats, ok := c.Features[kind]
	if !ok {
		return ml.Dataset{}, ml.Dataset{}, fmt.Errorf("experiments: no features of kind %q", kind)
	}
	full := ml.Dataset{X: feats, Y: c.Labels, Classes: synth.NumClasses}
	train = full.Subset(c.TrainIdx)
	test = full.Subset(c.TestIdx)
	std, err := ml.FitStandardizer(train.X)
	if err != nil {
		return ml.Dataset{}, ml.Dataset{}, err
	}
	if train.X, err = std.TransformAll(train.X); err != nil {
		return ml.Dataset{}, ml.Dataset{}, err
	}
	if test.X, err = std.TransformAll(test.X); err != nil {
		return ml.Dataset{}, ml.Dataset{}, err
	}
	return train, test, nil
}
