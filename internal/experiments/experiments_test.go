package experiments

import (
	"strings"
	"testing"

	"repro/internal/synth"
)

// buildSmoke caches one smoke-scale corpus across tests in this package
// (CNN training dominates; build it once).
var smokeCorpus *Corpus

func smoke(t *testing.T) *Corpus {
	t.Helper()
	if smokeCorpus == nil {
		c, err := BuildCorpus(SmokeScale())
		if err != nil {
			t.Fatal(err)
		}
		smokeCorpus = c
	}
	return smokeCorpus
}

func TestBuildCorpusShape(t *testing.T) {
	c := smoke(t)
	if len(c.Records) != 150 || len(c.TrainIdx)+len(c.TestIdx) != 150 {
		t.Fatalf("corpus sizes: %d records, %d/%d split", len(c.Records), len(c.TrainIdx), len(c.TestIdx))
	}
	// 80/20 split.
	if len(c.TestIdx) != 30 {
		t.Fatalf("test size = %d", len(c.TestIdx))
	}
	// Stratified: every class appears in both splits.
	count := func(idx []int) []int {
		out := make([]int, synth.NumClasses)
		for _, i := range idx {
			out[c.Labels[i]]++
		}
		return out
	}
	for cls, n := range count(c.TestIdx) {
		if n != 6 {
			t.Fatalf("test class %d count = %d", cls, n)
		}
	}
	for _, kind := range FeatureNames {
		feats, ok := c.Features[kind]
		if !ok || len(feats) != 150 {
			t.Fatalf("features %s: %d", kind, len(feats))
		}
	}
	if _, err := BuildCorpus(Scale{N: 10}); err == nil {
		t.Fatal("tiny corpus accepted")
	}
}

func TestFig6SmokeShape(t *testing.T) {
	c := smoke(t)
	r, err := RunFig6(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range FeatureNames {
		for _, clf := range ClassifierNames {
			f1, ok := r.F1[kind][clf]
			if !ok {
				t.Fatalf("missing cell %s/%s", kind, clf)
			}
			if f1 < 0 || f1 > 1 {
				t.Fatalf("F1 out of range: %s/%s = %v", kind, clf, f1)
			}
		}
	}
	// The headline ordering must hold even at smoke scale for the best
	// classifier per feature: CNN > colour.
	_, bestCNN := r.Best(FeatureNames[2])
	_, bestColor := r.Best(FeatureNames[0])
	if bestCNN <= bestColor {
		t.Fatalf("CNN best (%.3f) not above colour best (%.3f)", bestCNN, bestColor)
	}
	if !strings.Contains(r.Render(), "Fig. 6") {
		t.Fatal("render missing header")
	}
}

func TestFig6CrossValidation(t *testing.T) {
	c := smoke(t)
	r, err := RunFig6(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	if v := r.CVMean[FeatureNames[0]]["SVM"]; v <= 0 || v > 1 {
		t.Fatalf("CV mean = %v", v)
	}
}

func TestFig7Smoke(t *testing.T) {
	c := smoke(t)
	r, err := RunFig7(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range FeatureNames {
		if len(r.F1[kind]) != synth.NumClasses {
			t.Fatalf("per-class F1 for %s = %v", kind, r.F1[kind])
		}
	}
	best, worst := r.CNNBestWorst()
	if best == worst {
		t.Fatal("best == worst category")
	}
	if !strings.Contains(r.Render(), "Overgrown Vegetation") {
		t.Fatal("render missing category names")
	}
}

func TestFig8Shape(t *testing.T) {
	r := RunFig8(1, 10)
	// Desktop under 200 ms at 224 for every model; RPI over 1 s for
	// InceptionV3.
	if v := r.MeanMs["MobileNetV2"]["Desktop"][3]; v > 50 {
		t.Fatalf("desktop MobileNetV2 = %v ms", v)
	}
	if v := r.MeanMs["InceptionV3"]["Raspberry PI 3 B+"][3]; v < 1000 {
		t.Fatalf("RPI InceptionV3 = %v ms", v)
	}
	// Latency grows with image size.
	series := r.MeanMs["MobileNetV1"]["Smartphone"]
	for i := 1; i < len(series); i++ {
		if series[i] <= series[i-1] {
			t.Fatalf("latency not increasing with size: %v", series)
		}
	}
	if !strings.Contains(r.Render(), "log10@224") {
		t.Fatal("render missing log column")
	}
}

func TestA1(t *testing.T) {
	r, err := RunA1SpatialIndexes(2000, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Index structures must beat the scan and agree on result counts.
	if r.QPS["rtree"] <= r.QPS["scan"] {
		t.Fatalf("rtree (%.0f q/s) not faster than scan (%.0f q/s)", r.QPS["rtree"], r.QPS["scan"])
	}
	if r.Hits["rtree"] != r.Hits["scan"] || r.Hits["grid"] != r.Hits["scan"] {
		t.Fatalf("hit counts disagree: %+v", r.Hits)
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestA2(t *testing.T) {
	r, err := RunA2LSHvsExact(3000, 16, 10, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Recall < 0.6 {
		t.Fatalf("LSH recall = %v", r.Recall)
	}
	if r.LSHQPS <= r.ExactQPS {
		t.Fatalf("LSH (%.0f q/s) not faster than exact (%.0f q/s)", r.LSHQPS, r.ExactQPS)
	}
}

func TestA3(t *testing.T) {
	r, err := RunA3Hybrid(600, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Agreement < 0.999 {
		t.Fatalf("hybrid vs two-phase agreement = %v", r.Agreement)
	}
	if r.HybridQPS <= 0 || r.TwoQPS <= 0 {
		t.Fatalf("throughputs: %+v", r)
	}
}

func TestA4(t *testing.T) {
	r, err := RunA4Crowd(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"greedy", "entropy", "random"} {
		if r.Final[s] <= 0 {
			t.Fatalf("%s achieved no coverage", s)
		}
	}
	// The informed strategies should not be worse than random.
	if r.Final["greedy"] < r.Final["random"]-0.05 {
		t.Fatalf("greedy (%.3f) clearly worse than random (%.3f)", r.Final["greedy"], r.Final["random"])
	}
}

func TestA5(t *testing.T) {
	r, err := RunA5EdgeSelection(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"uncertainty", "random"} {
		accs := r.AccuracyByRound[s]
		if len(accs) < 2 {
			t.Fatalf("%s rounds = %d", s, len(accs))
		}
		if accs[len(accs)-1] < accs[0] {
			t.Fatalf("%s accuracy fell: %v", s, accs)
		}
	}
	// Uncertainty selection recovers the server's missing classes in the
	// first round; random needs several.
	u, rd := r.AccuracyByRound["uncertainty"], r.AccuracyByRound["random"]
	if u[1] <= rd[1] {
		t.Fatalf("uncertainty round-1 accuracy %.3f not above random %.3f", u[1], rd[1])
	}
	if r.BytesPerRound >= r.RawBytesPerRound {
		t.Fatalf("feature bytes %d not below raw %d", r.BytesPerRound, r.RawBytesPerRound)
	}
}

func TestA6(t *testing.T) {
	r, err := RunA6Store(t.TempDir(), 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Recovered != 100 {
		t.Fatalf("recovered %d/100", r.Recovered)
	}
	if r.IngestPerSec <= 0 {
		t.Fatalf("ingest rate = %v", r.IngestPerSec)
	}
}

func TestA7(t *testing.T) {
	r, err := RunA7Text(5000, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.InvertedQPS <= r.ScanQPS {
		t.Fatalf("inverted (%.0f q/s) not faster than scan (%.0f q/s)", r.InvertedQPS, r.ScanQPS)
	}
}

func TestA8Augmentation(t *testing.T) {
	r, err := RunA8Augmentation(150, 1)
	if err != nil {
		t.Fatal(err)
	}
	for aug, f1 := range r.F1ByAugment {
		if f1 <= 0 || f1 > 1 {
			t.Fatalf("aug=%d F1 = %v", aug, f1)
		}
	}
	if len(r.F1ByAugment) != 2 {
		t.Fatalf("levels = %v", r.F1ByAugment)
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}
