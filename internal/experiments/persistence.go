package experiments

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/imagesim"
	"repro/internal/store"
)

// Persistence-engine benchmark (`tvdp-bench -figure persistence`): the
// same sustained mixed read/write workload run against the two
// persistence engines — the legacy snapshot engine (full corpus rewrite
// under all six locks every SnapshotEvery mutations) and the segment
// engine (memtable freeze-swap + background segment flush/compaction).
// Throughput barely moves; the headline is the tail: the snapshot
// engine's compaction stalls every in-flight op for the whole corpus
// rewrite, so its p99 and max single-op stall grow with corpus size,
// while the segment engine's freeze-swap holds the locks for O(queued
// frames) regardless of corpus size.

// PersistenceConfig sizes one persistence benchmark run.
type PersistenceConfig struct {
	// Clients is the number of concurrent workload goroutines.
	Clients int
	// ReadFrac in [0,1] is the probability an op is a read.
	ReadFrac float64
	// Duration is the measured wall-clock window per mode.
	Duration time.Duration
	// Preload seeds the store with this many images before timing — the
	// corpus a snapshot rewrite has to carry.
	Preload int
	// TargetOps paces the workload at this many total ops/sec across all
	// clients (0 = unpaced: every client issues ops back-to-back). Paced
	// is the honest engine comparison — both engines see the identical
	// offered load, chosen inside both engines' capacity, so a latency
	// spike is an engine stall, not queueing at saturation. It also
	// matches the platform's reality: cameras upload at their own rate;
	// a persistence stall shows up as a log-jam, not reduced throughput.
	TargetOps int
	// SnapshotEvery is the snapshot engine's auto-compaction threshold
	// (mutations per snapshot).
	SnapshotEvery int
	// FlushThreshold is the segment engine's memtable flush trigger in
	// WAL bytes, chosen so both engines compact at a comparable cadence.
	FlushThreshold int64
	// Seed drives the per-client workload RNGs.
	Seed int64
}

// DefaultPersistenceConfig mirrors the serving figure's unsynced regime
// with a corpus large enough that full-snapshot rewrites visibly stall:
// 8 clients, evenly mixed ops, 8000 preloaded images, a snapshot every
// 256 mutations vs a segment flush every 128 KiB of WAL (roughly the
// same cadence for this workload's frame sizes), paced at 4000 ops/sec
// — about half the snapshot engine's measured saturation point, so both
// engines run the identical workload with headroom.
func DefaultPersistenceConfig() PersistenceConfig {
	return PersistenceConfig{
		Clients:        8,
		ReadFrac:       0.5,
		Duration:       2 * time.Second,
		Preload:        8000,
		TargetOps:      4000,
		SnapshotEvery:  256,
		FlushThreshold: 128 << 10,
		Seed:           1,
	}
}

// PersistenceModeResult is one engine's measurements.
type PersistenceModeResult struct {
	Mode      string  `json:"mode"`
	Ops       uint64  `json:"ops"`
	Reads     uint64  `json:"reads"`
	Writes    uint64  `json:"writes"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
	// MaxStallMs is the worst single-op latency observed — the direct
	// measure of the stop-the-world stall this figure is about.
	MaxStallMs float64 `json:"max_stall_ms"`
	// Snapshots / Flushes / Compactions count the engine's background
	// persistence operations during the measured window.
	Snapshots   uint64  `json:"snapshots"`
	Flushes     uint64  `json:"flushes"`
	Compactions uint64  `json:"compactions"`
	Segments    int     `json:"segments"`
	ElapsedS    float64 `json:"elapsed_s"`
}

// PersistenceResult is the full two-engine comparison written to
// BENCH_persistence.json.
type PersistenceResult struct {
	Figure    string                `json:"figure"`
	Clients   int                   `json:"clients"`
	ReadFrac  float64               `json:"read_frac"`
	Preload   int                   `json:"preload"`
	TargetOps int                   `json:"target_ops"`
	Snapshot  PersistenceModeResult `json:"snapshot"`
	Segment   PersistenceModeResult `json:"segment"`
	// P99ImprovementX is snapshot p99 over segment p99 (higher = segment
	// wins); StallImprovementX the same for the max single-op stall.
	P99ImprovementX   float64 `json:"p99_improvement_x"`
	StallImprovementX float64 `json:"stall_improvement_x"`
}

func runPersistenceMode(mode string, cfg PersistenceConfig) (PersistenceModeResult, error) {
	dir, err := os.MkdirTemp("", "tvdp-persistence-*")
	if err != nil {
		return PersistenceModeResult{}, err
	}
	defer os.RemoveAll(dir)
	scfg := store.DefaultConfig()
	scfg.Dir = dir
	switch mode {
	case "snapshot":
		scfg.Engine = store.EngineSnapshot
		scfg.SnapshotEvery = cfg.SnapshotEvery
	case "segment":
		scfg.Engine = store.EngineSegment
		scfg.FlushThreshold = cfg.FlushThreshold
	default:
		return PersistenceModeResult{}, fmt.Errorf("experiments: unknown persistence mode %q", mode)
	}
	st, err := store.Open(scfg)
	if err != nil {
		return PersistenceModeResult{}, err
	}
	defer st.Close()

	// Tiny raster, as in serving.go: the figure measures persistence
	// stalls, not payload encode cost.
	px := imagesim.MustNew(4, 4)
	px.Fill(imagesim.RGB{R: 90, G: 110, B: 130})
	seedRng := rand.New(rand.NewSource(cfg.Seed))
	for i := 0; i < cfg.Preload; i++ {
		if _, err := st.AddImage(servingImage(seedRng, px)); err != nil {
			return PersistenceModeResult{}, err
		}
	}
	preStats := st.EngineStats()

	type clientOut struct {
		lat           []time.Duration
		reads, writes uint64
		err           error
	}
	outs := make([]clientOut, cfg.Clients)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	sw := startStopwatch()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(c)*7919))
			out := &outs[c]
			// Paced mode: op n fires at n×interval on this client's own
			// clock. A stalled op makes the next ones late; they then run
			// back-to-back until the schedule is caught up, so a stall
			// shows up in latency without deflating the offered load.
			var interval time.Duration
			if cfg.TargetOps > 0 {
				interval = time.Duration(float64(cfg.Clients) * float64(time.Second) / float64(cfg.TargetOps))
			}
			clock := startStopwatch()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				if interval > 0 {
					if ahead := time.Duration(n)*interval - clock.elapsed(); ahead > 0 {
						time.Sleep(ahead)
					}
				}
				isRead := rng.Float64() < cfg.ReadFrac
				op := startStopwatch()
				if isRead {
					if _, err := st.Describe(uint64(rng.Intn(cfg.Preload)) + 1); err != nil {
						out.err = err
					}
					out.reads++
				} else {
					if _, err := st.AddImage(servingImage(rng, px)); err != nil {
						out.err = err
					}
					out.writes++
				}
				out.lat = append(out.lat, op.elapsed())
				if out.err != nil {
					return
				}
			}
		}(c)
	}
	time.Sleep(cfg.Duration)
	close(stop)
	wg.Wait()
	elapsed := sw.elapsed()
	// Drain outside the timed window: one explicit compaction pass so the
	// reported counters always reflect the workload reaching disk, even
	// when the background worker's in-flight pass outlives a short window.
	if err := st.Snapshot(); err != nil {
		return PersistenceModeResult{}, err
	}

	var all []time.Duration
	res := PersistenceModeResult{Mode: mode, ElapsedS: elapsed.Seconds()}
	for c := range outs {
		if outs[c].err != nil {
			return PersistenceModeResult{}, fmt.Errorf("persistence bench client %d: %w", c, outs[c].err)
		}
		all = append(all, outs[c].lat...)
		res.Reads += outs[c].reads
		res.Writes += outs[c].writes
	}
	res.Ops = res.Reads + res.Writes
	res.OpsPerSec = float64(res.Ops) / elapsed.Seconds()
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return float64(all[i]) / float64(time.Millisecond)
	}
	res.P50Ms = pct(0.50)
	res.P99Ms = pct(0.99)
	if len(all) > 0 {
		res.MaxStallMs = float64(all[len(all)-1]) / float64(time.Millisecond)
	}
	post := st.EngineStats()
	res.Snapshots = post.Snapshots - preStats.Snapshots
	res.Flushes = post.Flushes - preStats.Flushes
	res.Compactions = post.Compactions - preStats.Compactions
	res.Segments = post.Segments
	return res, nil
}

// RunPersistence runs the workload under both engines and returns the
// comparison.
func RunPersistence(cfg PersistenceConfig) (*PersistenceResult, error) {
	if cfg.Clients <= 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("experiments: persistence config needs clients > 0 and duration > 0")
	}
	if cfg.Preload <= 0 {
		return nil, fmt.Errorf("experiments: persistence config needs preload > 0")
	}
	if cfg.SnapshotEvery <= 0 || cfg.FlushThreshold <= 0 {
		return nil, fmt.Errorf("experiments: persistence config needs SnapshotEvery > 0 and FlushThreshold > 0")
	}
	snap, err := runPersistenceMode("snapshot", cfg)
	if err != nil {
		return nil, err
	}
	seg, err := runPersistenceMode("segment", cfg)
	if err != nil {
		return nil, err
	}
	r := &PersistenceResult{
		Figure:    "persistence",
		Clients:   cfg.Clients,
		ReadFrac:  cfg.ReadFrac,
		Preload:   cfg.Preload,
		TargetOps: cfg.TargetOps,
		Snapshot:  snap,
		Segment:   seg,
	}
	if seg.P99Ms > 0 {
		r.P99ImprovementX = snap.P99Ms / seg.P99Ms
	}
	if seg.MaxStallMs > 0 {
		r.StallImprovementX = snap.MaxStallMs / seg.MaxStallMs
	}
	return r, nil
}

// WriteJSON writes the result as indented JSON (BENCH_persistence.json).
func (r *PersistenceResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Render returns the result as a text table.
func (r *PersistenceResult) Render() string {
	var b strings.Builder
	pace := "unpaced (saturating)"
	if r.TargetOps > 0 {
		pace = fmt.Sprintf("paced at %d ops/sec", r.TargetOps)
	}
	fmt.Fprintf(&b, "Persistence engines — %d clients, %.0f%% reads, %d preloaded images, %s\n",
		r.Clients, r.ReadFrac*100, r.Preload, pace)
	fmt.Fprintf(&b, "%-10s %10s %9s %9s %12s %6s %7s %7s\n",
		"engine", "ops/sec", "p50 ms", "p99 ms", "max stall ms", "snaps", "flushes", "compact")
	for _, m := range []PersistenceModeResult{r.Snapshot, r.Segment} {
		fmt.Fprintf(&b, "%-10s %10.0f %9.3f %9.3f %12.1f %6d %7d %7d\n",
			m.Mode, m.OpsPerSec, m.P50Ms, m.P99Ms, m.MaxStallMs, m.Snapshots, m.Flushes, m.Compactions)
	}
	fmt.Fprintf(&b, "p99 improvement: %.2fx   max-stall improvement: %.2fx\n",
		r.P99ImprovementX, r.StallImprovementX)
	return b.String()
}
