// Package lockorderfix is the lockorder analyzer's golden fixture: a
// Store-shaped struct carrying the six subsystem mutexes, with functions
// that violate (and respect) the documented acquisition order. Lines that
// must be flagged carry want-comment expectations (see lint_test.go).
package lockorderfix

import (
	"os"
	"sync"
)

type Store struct {
	catalogMu sync.RWMutex
	imagesMu  sync.RWMutex
	featMu    sync.RWMutex
	annMu     sync.RWMutex
	kwMu      sync.RWMutex
	geoMu     sync.RWMutex
}

// scratchReorder is the acceptance-criterion case: geoMu taken before
// catalogMu, the exact inversion the documentation forbids.
func (s *Store) scratchReorder() {
	s.geoMu.Lock()
	s.catalogMu.Lock() // want "acquires catalogMu while holding geoMu"
	s.catalogMu.Unlock()
	s.geoMu.Unlock()
}

// okOrder follows the table and must stay clean.
func (s *Store) okOrder() {
	s.catalogMu.Lock()
	s.imagesMu.Lock()
	s.geoMu.Lock()
	s.geoMu.Unlock()
	s.imagesMu.Unlock()
	s.catalogMu.Unlock()
}

// okSkip skips locks, which the discipline allows.
func (s *Store) okSkip() {
	s.imagesMu.RLock()
	s.kwMu.Lock()
	s.kwMu.Unlock()
	s.imagesMu.RUnlock()
}

// lockKw leaves kwMu held for its caller (the helper half of the one-level
// call-graph case).
func (s *Store) lockKw() {
	s.kwMu.Lock()
}

// viaCall inverts the order through one call level: the splice of lockKw's
// acquisition makes the later imagesMu lock an inversion.
func (s *Store) viaCall() {
	s.lockKw()
	s.imagesMu.Lock() // want "acquires imagesMu while holding kwMu"
	s.imagesMu.Unlock()
	s.kwMu.Unlock()
}

// reacquire self-deadlocks: the second RLock can block behind a waiting
// writer that arrived between the two.
func (s *Store) reacquire() {
	s.featMu.RLock()
	s.featMu.RLock() // want "re-acquires featMu"
	s.featMu.RUnlock()
	s.featMu.RUnlock()
}

// syncUnderLock blocks every annotation reader behind an fsync.
func (s *Store) syncUnderLock(f *os.File) error {
	s.annMu.Lock()
	defer s.annMu.Unlock()
	err := f.Sync() // want "blocking file I/O"
	return err
}

// renameHelper does file I/O directly; ioViaCall reaches it through the
// call graph while holding a lock.
func renameHelper(from, to string) error {
	return os.Rename(from, to)
}

func (s *Store) ioViaCall() error {
	s.geoMu.Lock()
	defer s.geoMu.Unlock()
	err := renameHelper("a", "b") // want "blocking file I/O"
	return err
}

// okIOUnlocked performs the same I/O with no lock held and must stay
// clean.
func (s *Store) okIOUnlocked() error {
	s.geoMu.Lock()
	s.geoMu.Unlock()
	return renameHelper("a", "b")
}

// Coordinator is the shard-coordinator shape: it owns several Stores and
// fans work out across them. The analyzer is name-based, so coordinator
// code touching shard mutexes answers to the same table order as the
// store itself.
type Coordinator struct {
	shards []*Store
}

// okFanOut probes each shard's text index in table order and must stay
// clean — the per-shard scatter loop is the conforming coordinator shape.
func (c *Coordinator) okFanOut() {
	for _, s := range c.shards {
		s.kwMu.RLock()
		s.geoMu.RLock()
		s.geoMu.RUnlock()
		s.kwMu.RUnlock()
	}
}

// mergeInverted holds a shard's geoMu (spatial merge) while reaching back
// into its catalog — the exact inversion a scatter-gather merge is
// tempted into.
func (c *Coordinator) mergeInverted() {
	for _, s := range c.shards {
		s.geoMu.RLock()
		s.catalogMu.RLock() // want "acquires catalogMu while holding geoMu"
		s.catalogMu.RUnlock()
		s.geoMu.RUnlock()
	}
}

// syncShardsUnderLock fsyncs a marker file while holding a shard's
// subsystem lock — every reader of that shard stalls behind the disk.
func (c *Coordinator) syncShardsUnderLock(f *os.File) error {
	for _, s := range c.shards {
		s.kwMu.Lock()
		err := f.Sync() // want "blocking file I/O"
		s.kwMu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}
