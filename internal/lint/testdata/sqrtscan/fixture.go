// Package sqrtscanfix is the sqrtscan analyzer's golden fixture:
// per-candidate math.Sqrt calls that must be flagged, next to the
// squared-comparison idiom that must not be. The blessed finalize site
// lives in match.go, which the analyzer skips by filename.
package sqrtscanfix

import "math"

type match struct {
	id   uint64
	dist float64
}

// scanWithSqrt roots every candidate distance — the per-candidate libm
// call the read path forbids.
func scanWithSqrt(q []float64, vecs map[uint64][]float64, r float64) []match {
	var out []match
	for id, v := range vecs {
		s := 0.0
		for i := range q {
			d := q[i] - v[i]
			s += d * d
		}
		if math.Sqrt(s) <= r { // want "math.Sqrt in index scan code"
			out = append(out, match{id: id, dist: s})
		}
	}
	return out
}

// thresholdSqrt hides the Sqrt in a helper expression; still a scan-path
// root.
func thresholdSqrt(s2 float64) float64 {
	return math.Sqrt(s2) // want "math.Sqrt in index scan code"
}

// scanSquared compares against r*r and keeps distances squared — the
// sanctioned idiom.
func scanSquared(q []float64, vecs map[uint64][]float64, r float64) []match {
	var out []match
	r2 := r * r
	for id, v := range vecs {
		s := 0.0
		for i := range q {
			d := q[i] - v[i]
			s += d * d
		}
		if s <= r2 {
			out = append(out, match{id: id, dist: s})
		}
	}
	return out
}
