// Package errdiscardfix is the errdiscard analyzer's golden fixture: every
// discard shape the analyzer flags, next to the handled forms it must not.
package errdiscardfix

import "os"

func discards(f *os.File, data []byte) {
	f.Write(data)   // want "Write error discarded"
	f.Sync()        // want "Sync error discarded"
	defer f.Close() // want "Close error discarded"
	_ = f.Sync()    // want "Sync error discarded"
}

func goDiscard(f *os.File) {
	go f.Close() // want "Close error discarded"
}

// handles propagates every error: must stay clean.
func handles(f *os.File, data []byte) error {
	if _, err := f.Write(data); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

// deferredCapture is the closure idiom the store uses: must stay clean.
func deferredCapture(f *os.File) (err error) {
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return nil
}

// pipeline is the ingest-tier shape: Close drains queues and joins
// workers, and its error reports records that failed during the drain.
type pipeline struct{}

func (p *pipeline) Close() error { return nil }

// shutdownDiscard drops the drain error — failed-record counts from the
// shutdown path vanish silently.
func shutdownDiscard(p *pipeline) {
	defer p.Close() // want "Close error discarded"
}

// shutdownHandles propagates the drain error: must stay clean.
func shutdownHandles(p *pipeline) error {
	return p.Close()
}
