// Package fsyncorderfix is the fsyncorder analyzer's golden fixture: the
// full temp+rename+dir-fsync install chain next to the two ways a new
// install path can break it.
package fsyncorderfix

import (
	"os"
	"path/filepath"
)

// fsyncDir is the package's directory-fsync helper, mirroring the store's.
func fsyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// installGood is the canonical chain: write temp, fsync it, rename into
// place, fsync the directory.
func installGood(dir string, data []byte) error {
	tmp := filepath.Join(dir, "artifact.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, "artifact")); err != nil {
		return err
	}
	return fsyncDir(dir)
}

// installTorn renames without syncing the temp file first: a crash can
// install a torn artifact.
func installTorn(dir string, data []byte) error {
	tmp := filepath.Join(dir, "artifact.tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, "artifact")); err != nil { // want "without a preceding fsync"
		return err
	}
	return fsyncDir(dir)
}

// installEvaporating syncs the file but never the directory: the rename
// itself can be lost with the directory's dirty metadata.
func installEvaporating(dir string, data []byte) error {
	tmp := filepath.Join(dir, "artifact.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, "artifact")) // want "not followed by a directory fsync"
}

// swapTemp moves a scratch file between scratch names — never durable,
// so the discipline is waived explicitly.
func swapTemp(dir string) error {
	//tvdp:nolint fsyncorder scratch-to-scratch move, nothing durable installed
	return os.Rename(filepath.Join(dir, "a.tmp"), filepath.Join(dir, "b.tmp"))
}
