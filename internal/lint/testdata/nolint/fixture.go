// Package nolintfix exercises the suppression machinery: a justified
// directive silences its finding; a bare directive (no reason) silences
// nothing and is itself reported; a justified directive whose finding no
// longer exists is reported as stale. The expectations for this fixture
// are asserted explicitly in lint_test.go rather than via want comments,
// because a want comment appended to a directive line would parse as the
// directive's justification.
package nolintfix

import "time"

// justified documents why the clock read is acceptable; the directive
// carries a reason, so the determinism finding is suppressed.
func justified() time.Time {
	//tvdp:nolint determinism fixture exercises a justified suppression
	return time.Now()
}

// unjustified has a bare directive: missing its reason, it suppresses
// nothing — the time.Now finding below survives, and the directive itself
// is reported by the synthetic nolint analyzer.
func unjustified() time.Time {
	//tvdp:nolint determinism
	return time.Now()
}

// stale has a well-formed directive excusing a finding that no longer
// exists — determinism runs, fires nothing here, and the dead
// suppression is reported as stale.
func stale() time.Time {
	//tvdp:nolint determinism this once excused a clock read, since removed
	return time.Time{}
}

// unjudged names an analyzer that is not part of the fixture run; the
// directive is left alone rather than reported stale, because a partial
// run cannot know whether lockorder would have fired.
func unjudged() time.Time {
	//tvdp:nolint lockorder fixture directive outside the run set
	return time.Time{}
}
