// Package golifecyclefix is the golifecycle analyzer's golden fixture:
// the three provable join shapes (WaitGroup, done-channel handshake,
// close-drained queue) next to the leaks the analyzer must flag.
package golifecyclefix

import (
	"os"
	"sync"
)

// waitGroupJoin is shape 1: the body signals a WaitGroup the spawner
// waits on.
func waitGroupJoin(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = i * i
		}(i)
	}
	wg.Wait()
}

// worker is the done-channel shape split across methods, exactly like
// the store's committer: run closes done, stop receives from it.
type worker struct {
	wake chan struct{}
	stop chan struct{}
	done chan struct{}
}

func (w *worker) start() {
	go w.run()
}

func (w *worker) run() {
	defer close(w.done)
	for {
		select {
		case <-w.wake:
		case <-w.stop:
			return
		}
	}
}

func (w *worker) join() {
	close(w.stop)
	<-w.done
}

// drainedQueue is shape 3: the goroutine ranges a channel that close()
// elsewhere in the package terminates.
type drainedQueue struct {
	jobs chan int
}

func (q *drainedQueue) start() {
	go func() {
		for j := range q.jobs {
			_ = j
		}
	}()
}

func (q *drainedQueue) close() {
	close(q.jobs)
}

// leak has no join handle at all.
func leak() {
	go func() { // want "no provable join path"
		for {
		}
	}()
}

// fireAndForget closes a channel nobody receives from — still a leak
// from the spawner's point of view.
func fireAndForget() {
	orphan := make(chan struct{})
	go func() { // want "no provable join path"
		defer close(orphan)
	}()
}

// foreignTarget spawns another package's function; its body cannot be
// inspected, so no join path is provable.
func foreignTarget() {
	go os.Clearenv() // want "not a same-package function"
}

// toleratedLeak shows the escape hatch for a deliberately detached
// goroutine.
func toleratedLeak() {
	//tvdp:nolint golifecycle process-lifetime janitor, exits with the process
	go func() {
		for {
		}
	}()
}

// consumerGroup is the ingest-pipeline shape: one goroutine per
// partition ranging a close-drained queue, joined through a WaitGroup.
// Both provable shapes compose, so this must stay clean.
type consumerGroup struct {
	queues []chan int
	wg     sync.WaitGroup
}

func (c *consumerGroup) start() {
	for _, q := range c.queues {
		c.wg.Add(1)
		go func(q chan int) {
			defer c.wg.Done()
			for rec := range q {
				_ = rec
			}
		}(q)
	}
}

func (c *consumerGroup) close() {
	for _, q := range c.queues {
		close(q)
	}
	c.wg.Wait()
}

// spawnPerRecord is the pipeline anti-shape: a goroutine per submitted
// record with no handle — Close has nothing to join, so acked records
// can still be mid-extraction when the store shuts down under them.
func spawnPerRecord(records []int) {
	for _, rec := range records {
		go func(rec int) { // want "no provable join path"
			_ = rec * rec
		}(rec)
	}
}
