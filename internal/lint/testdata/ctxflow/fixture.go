// Package ctxflowfix is the ctxflow analyzer's golden fixture: every
// violation of the request-lifecycle contract — a buried ctx parameter, a
// root context minted mid-chain, a context stored in a struct — next to
// the conforming forms it must not flag.
package ctxflowfix

import "context"

// ctxFirst is the conforming shape: must stay clean.
func ctxFirst(ctx context.Context, n int) error {
	return ctx.Err()
}

// noCtx takes no context at all: must stay clean.
func noCtx(a, b int) int { return a + b }

// buried hides the context behind a value parameter.
func buried(n int, ctx context.Context) error { // want "context.Context is not the first parameter"
	return ctx.Err()
}

type service struct{}

// run buries the context in a method signature; the receiver does not
// count as a parameter, so ctx-first on a method means first after the
// receiver: must stay clean.
func (s service) run(ctx context.Context, id uint64) error { return ctx.Err() }

// lookup buries the context behind the id.
func (s service) lookup(id uint64, ctx context.Context) error { // want "context.Context is not the first parameter"
	return ctx.Err()
}

// literals is the same rule applied to function literals.
func literals() {
	ok := func(ctx context.Context, s string) error { return ctx.Err() }
	bad := func(s string, ctx context.Context) error { // want "context.Context is not the first parameter"
		return ctx.Err()
	}
	_, _ = ok, bad
}

// searcher shows the rule reaching interface method signatures.
type searcher interface {
	Search(ctx context.Context, q string) error
	Lookup(q string, ctx context.Context) error // want "context.Context is not the first parameter"
}

// holder stores a context across calls — the stored deadline outlives the
// request that carried it.
type holder struct {
	name string
	ctx  context.Context // want "context.Context stored in a struct field"
}

// stopHook is the sanctioned alternative for context-free packages: must
// stay clean.
type stopHook struct {
	Stop func() error
}

// originate mints a fresh root inside the (fixture-scoped) request path.
func originate() context.Context {
	return context.Background() // want "originates a root context in a request path"
}

// todoRoot is the same hole spelled TODO.
func todoRoot(q string) error {
	ctx := context.TODO() // want "originates a root context in a request path"
	_ = q
	return ctx.Err()
}

// derive flows the caller's context onward — deriving is fine, minting is
// not: must stay clean.
func derive(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithCancel(ctx)
}

func use(h holder) string { return h.name }

// fanOutMint is the coordinator-shaped violation: a scatter-gather
// helper minting a fresh root for its per-shard probes instead of
// deriving from the caller's — the probes would outlive a cancelled
// request.
func fanOutMint(shards []int, probe func(context.Context, int) error) error {
	for i := range shards {
		ctx := context.Background() // want "originates a root context in a request path"
		if err := probe(ctx, i); err != nil {
			return err
		}
	}
	return nil
}

// fanOutDerive is the conforming coordinator shape: per-shard probe
// contexts derive from the caller's (deadline slicing), so cancellation
// propagates into every shard: must stay clean.
func fanOutDerive(ctx context.Context, shards []int, probe func(context.Context, int) error) error {
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	for i := range shards {
		if err := probe(pctx, i); err != nil {
			return err
		}
	}
	return nil
}

// gather buries the context in a coordinator-shaped merge callback type;
// the rule reaches function-typed parameters' own signatures via the
// interface/field checks only when declared, so the explicit bad probe
// shape is spelled out here.
func gather(results []int, ctx context.Context) error { // want "context.Context is not the first parameter"
	_ = results
	return ctx.Err()
}

// workerMint is the ingest-pipeline-shaped violation: a partition worker
// minting a fresh root per dequeued record. Extraction launched under
// that root outlives pipeline shutdown — cancellation from Close never
// reaches it.
func workerMint(queue chan int, process func(context.Context, int) error) {
	for rec := range queue {
		ctx := context.Background() // want "originates a root context in a request path"
		_ = process(ctx, rec)
	}
}

// workerDerive is the conforming pipeline-worker shape: the worker loop
// runs under the context its Start received, so Close's cancel reaches
// every in-flight record: must stay clean.
func workerDerive(ctx context.Context, queue chan int, process func(context.Context, int) error) {
	for rec := range queue {
		if err := process(ctx, rec); err != nil {
			return
		}
	}
}

// submitRecord buries the context behind the record in a pipeline
// admission signature.
func submitRecord(rec int, ctx context.Context) error { // want "context.Context is not the first parameter"
	_ = rec
	return ctx.Err()
}
