// Package determinismfix is the determinism analyzer's golden fixture:
// clock reads, global-RNG draws, and map-iteration-order leaks that must
// be flagged, next to the seeded/sorted idioms that must not be.
package determinismfix

import (
	"math/rand"
	"sort"
	"time"
)

func clockRead() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since reads the wall clock"
}

func globalRNG() int {
	return rand.Intn(10) // want "rand.Intn draws from the global clock-seeded RNG"
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { // want "rand.Shuffle draws from the global clock-seeded RNG"
		xs[i], xs[j] = xs[j], xs[i]
	})
}

// seededOK draws from a caller-seeded stream: the sanctioned path.
func seededOK(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

func mapOrderLeak(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "leaks iteration order into an ordered output"
	}
	return out
}

// mapOrderSorted collects then sorts: deterministic, must stay clean.
func mapOrderSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// mapIntoMap builds another map: order cannot leak, must stay clean.
func mapIntoMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// loopLocalAppend appends to a slice born inside the loop body: it cannot
// outlive an iteration, so order cannot leak. Must stay clean.
func loopLocalAppend(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}
