// Package guardedbyfix is the guardedby analyzer's golden fixture: every
// access shape the checker must flag, next to the locking idioms it must
// accept — the early-return unlock closure, deferred unlocks, RLock
// reads, requires contracts, alternation, and serial exemptions.
package guardedbyfix

import (
	"sort"
	"sync"
)

type box struct {
	mu sync.RWMutex
	// count is the plainly guarded field.
	//tvdp:guardedby mu
	count int
	//tvdp:guardedby mu
	items map[string]int

	alt sync.Mutex
	// either may be covered by mu or alt.
	//tvdp:guardedby mu|alt
	either int

	// loose has no annotation; access is never checked.
	loose int

	//tvdp:guardedby // want "guardedby annotation names no mutex"
	broken int
}

// readLocked is the canonical read: RLock suffices.
func (b *box) readLocked() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.count
}

// writeLocked is the canonical write.
func (b *box) writeLocked(n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.count = n
	b.items["k"] = n
	delete(b.items, "j")
}

func (b *box) readUnlocked() int {
	return b.count + b.loose // want "read of count"
}

func (b *box) writeUnderRLock(n int) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	b.count = n // want "write to count"
}

func (b *box) writeAfterUnlock(n int) {
	b.mu.Lock()
	b.count = n
	b.mu.Unlock()
	b.count = n // want "write to count"
}

// earlyReturn exercises the store's unlock-closure idiom: the error
// branch releases and bails, the fall-through path is still locked.
func (b *box) earlyReturn(n int) bool {
	b.mu.Lock()
	unlock := func() { b.mu.Unlock() }
	if n < 0 {
		unlock()
		return false
	}
	b.count = n
	unlock()
	return true
}

// afterClosureUnlock shows the closure's release escaping to the caller's
// flow: past the unconditional unlock() the lock is gone.
func (b *box) afterClosureUnlock(n int) {
	b.mu.Lock()
	unlock := func() { b.mu.Unlock() }
	b.count = n
	unlock()
	b.count = n // want "write to count"
}

// callbackUnderLock: an inline literal runs where it appears, so the
// sort.Search callback reads under the caller's lock.
func (b *box) callbackUnderLock() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return sort.Search(8, func(i int) bool { return b.count > i })
}

// goroutineInheritsNothing: a spawned body starts with no locks held.
func (b *box) goroutineInheritsNothing(done chan struct{}) {
	b.mu.Lock()
	defer b.mu.Unlock()
	go func() {
		b.count++ // want "write to count"
		close(done)
	}()
	<-done
}

// applyCount is a requires contract: callers must hold mu exclusively.
//
//tvdp:requires mu
func (b *box) applyCount(n int) {
	b.count = n
}

// readCount needs mu at least read-held.
//
//tvdp:requires mu:r
func (b *box) readCount() int {
	return b.count
}

func (b *box) goodCaller(n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.applyCount(n)
}

func (b *box) readCaller() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.readCount()
}

func (b *box) badCaller(n int) {
	b.applyCount(n) // want "call to applyCount requires mu held"
}

func (b *box) rlockIsNotEnough(n int) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	b.applyCount(n) // want "call to applyCount requires mu held"
}

// lockBoth / unlockBoth exercise the one-level splice: their lock traffic
// lands at the call site.
func (b *box) lockBoth() {
	b.mu.Lock()
	b.alt.Lock()
}

func (b *box) unlockBoth() {
	b.alt.Unlock()
	b.mu.Unlock()
}

func (b *box) splicedCaller(n int) {
	b.lockBoth()
	b.count = n
	b.either = n
	b.unlockBoth()
}

// eitherAlt: holding the second alternative also satisfies mu|alt.
func (b *box) eitherAlt(n int) {
	b.alt.Lock()
	defer b.alt.Unlock()
	b.either = n
}

func (b *box) neitherAlt(n int) {
	b.either = n // want "write to either"
}

// trySkip mirrors maybeCompact: TryLock whose failure branch bails.
func (b *box) trySkip(n int) {
	if !b.mu.TryLock() {
		return
	}
	defer b.mu.Unlock()
	b.count = n
}

// initBox runs before the box is shared.
//
//tvdp:serial runs during construction, before any goroutine sees b
func initBox(b *box) {
	b.count = 1
	b.items = map[string]int{}
	b.applyCount(2)
}

// badSerial lacks a justification, so it exempts nothing.
//
//tvdp:serial // want "serial annotation has no justification"
func badSerial(b *box) {
	b.count = 3 // want "write to count"
}

// suppressed shows the escape hatch for a deliberate lock-free access.
func suppressed(b *box) int {
	//tvdp:nolint guardedby read is a racy stats peek, tolerated by design
	return b.count
}
