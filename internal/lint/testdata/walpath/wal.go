// Package walpathfix is the walpath analyzer's golden fixture: a miniature
// WAL layer (walBackend, walWriter, walPayloads — the names the analyzer
// keys on) whose files wal.go and committer.go may touch the backend, and
// a rogue.go that must not.
package walpathfix

type walBackend interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

type walWriter struct {
	b walBackend
}

type payloadEncoder struct{}

func (payloadEncoder) encode(op int) ([]byte, error) { return []byte{byte(op)}, nil }

var walPayloads payloadEncoder

// encodeFrame is the only sanctioned wrapper around the raw encoder.
func encodeFrame(op int) ([]byte, error) {
	return walPayloads.encode(op)
}

// append writes one frame; legal here because this is wal.go.
func (w *walWriter) append(frame []byte) error {
	_, err := w.b.Write(frame)
	return err
}
