package walpathfix

// commit batches frames to the backend; legal here because this is
// committer.go.
func commit(w *walWriter, frames [][]byte) error {
	for _, f := range frames {
		if _, err := w.b.Write(f); err != nil {
			return err
		}
	}
	return w.b.Sync()
}
