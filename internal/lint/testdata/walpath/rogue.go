package walpathfix

// rogueAppend bypasses the committer and writes the log directly.
func rogueAppend(w *walWriter, frame []byte) error {
	if err := w.append(frame); err != nil { // want "direct walWriter.append call outside the WAL layer"
		return err
	}
	return w.b.Sync() // want "direct walBackend.Sync call outside the WAL layer"
}

// rogueEncode emits a raw payload with no length+CRC framing.
func rogueEncode(op int) ([]byte, error) {
	return walPayloads.encode(op) // want "raw walPayloads.encode call outside wal.go"
}
