package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The guardedby analyzer machine-checks the lock map that used to live in
// prose. Three annotations form the grammar:
//
//	//tvdp:guardedby <mu>[|<mu>...]
//	    on a struct field: every read of the field must hold one of the
//	    named mutexes (RLock suffices), every write must hold one
//	    exclusively. Alternation encodes fields legally covered by more
//	    than one regime (Store.gen is written under flushMu by the
//	    segment engine and under the all-six quiesce — geoMu being the
//	    innermost witness — by the snapshot engine).
//
//	//tvdp:requires <clause>[,<clause>...]   clause = <mu>[|<mu>...][:r]
//	    on a function: callers must hold every clause at the call site.
//	    A clause is satisfied by holding any one of its alternatives;
//	    the :r suffix downgrades it to "at least read-held". The
//	    declared locks seed the function's own held-set, so its guarded
//	    accesses are checked under the contract it advertises.
//
//	//tvdp:serial <reason>
//	    on a function: it runs before the store is shared (Open,
//	    recovery, migration), so lock requirements are vacuous inside it
//	    and its calls to //tvdp:requires functions are exempt. The
//	    reason is mandatory, exactly as for nolint.
//
// The checker is intra-procedural with the same one-level same-package
// splice lockorder uses, plus enough flow sensitivity for the store's
// idioms: an early-return branch that releases and bails does not poison
// the fall-through path, `unlock := func() {...}` closures execute at
// their call sites, `go func` bodies start with an empty held-set, and a
// deferred Unlock keeps its mutex held to the end of the function.
// Held-sets track mutex *names* (s.featMu and a local featMu alias are
// the same lock for checking purposes) — a deliberate approximation that
// matches how the store names its locks.

const (
	guardedPrefix  = "tvdp:guardedby"
	requiresPrefix = "tvdp:requires"
	serialPrefix   = "tvdp:serial"
)

// GuardedBy is the analyzer. It is annotation-driven: packages without
// annotations produce no findings, so it needs no path scope.
type GuardedBy struct{}

// NewGuardedBy returns the production-configured analyzer.
func NewGuardedBy() *GuardedBy { return &GuardedBy{} }

func (g *GuardedBy) Name() string { return "guardedby" }

// Doc describes the analyzer in one line.
func (g *GuardedBy) Doc() string {
	return "fields annotated //tvdp:guardedby must be accessed under their mutex; //tvdp:requires contracts are checked at every call site"
}

// reqClause is one comma-separated element of a requires list (or the
// single clause of a guardedby annotation): alternative mutex names, any
// one of which satisfies the clause, and whether read-held suffices.
type reqClause struct {
	alts []string
	read bool
}

func (rc reqClause) String() string {
	s := strings.Join(rc.alts, "|")
	if rc.read {
		s += ":r"
	}
	return s
}

// gbAnnotations is one package's parsed annotation set.
type gbAnnotations struct {
	fieldGuards map[*types.Var]reqClause
	fieldNames  map[*types.Var]string
	funcReqs    map[*types.Func][]reqClause
	serial      map[*types.Func]bool
	bad         []Finding
}

// annotationLine extracts the body of an annotation comment with the
// given prefix, if the comment is one. A "//" inside the body starts a
// trailing remark and is cut off.
func annotationLine(comment, prefix string) (string, bool) {
	body := strings.TrimSpace(strings.TrimPrefix(comment, "//"))
	rest, ok := strings.CutPrefix(body, prefix)
	if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
		return "", false
	}
	rest, _, _ = strings.Cut(rest, "//")
	return strings.TrimSpace(rest), true
}

// parseClause parses "<mu>[|<mu>...][:r]". Every alternative must be a
// plain identifier.
func parseClause(spec string) (reqClause, bool) {
	var rc reqClause
	if rest, ok := strings.CutSuffix(spec, ":r"); ok {
		rc.read = true
		spec = rest
	}
	for _, m := range strings.Split(spec, "|") {
		if m = strings.TrimSpace(m); m != "" && isIdent(m) {
			rc.alts = append(rc.alts, m)
		} else {
			return reqClause{}, false
		}
	}
	return rc, len(rc.alts) > 0
}

func isIdent(s string) bool {
	for i, r := range s {
		alpha := r == '_' || 'a' <= r && r <= 'z' || 'A' <= r && r <= 'Z'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return s != ""
}

// collectAnnotations scans a package for guardedby/requires/serial
// annotations. Malformed ones are reported and ignored.
func collectAnnotations(pkg *Package) *gbAnnotations {
	ann := &gbAnnotations{
		fieldGuards: map[*types.Var]reqClause{},
		fieldNames:  map[*types.Var]string{},
		funcReqs:    map[*types.Func][]reqClause{},
		serial:      map[*types.Func]bool{},
	}
	malformed := func(pos token.Pos, msg, hint string) {
		ann.bad = append(ann.bad, Finding{
			Analyzer: "guardedby",
			Pos:      posOf(pkg, pos),
			Message:  msg,
			Hint:     hint,
		})
	}
	fieldComments := func(f *ast.Field) []*ast.Comment {
		var cs []*ast.Comment
		if f.Doc != nil {
			cs = append(cs, f.Doc.List...)
		}
		if f.Comment != nil {
			cs = append(cs, f.Comment.List...)
		}
		return cs
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, f := range st.Fields.List {
				for _, c := range fieldComments(f) {
					rest, ok := annotationLine(c.Text, guardedPrefix)
					if !ok {
						continue
					}
					spec, _, _ := strings.Cut(rest, " ")
					rc, ok := parseClause(spec)
					if !ok {
						malformed(c.Pos(), "guardedby annotation names no mutex", "write //tvdp:guardedby <mu>")
						continue
					}
					for _, name := range f.Names {
						if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
							ann.fieldGuards[v] = rc
							ann.fieldNames[v] = name.Name
						}
					}
				}
			}
			return true
		})
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if rest, ok := annotationLine(c.Text, requiresPrefix); ok {
					spec, _, _ := strings.Cut(rest, " ")
					var clauses []reqClause
					good := spec != ""
					for _, part := range strings.Split(spec, ",") {
						rc, ok := parseClause(part)
						if !ok {
							good = false
							break
						}
						clauses = append(clauses, rc)
					}
					if !good {
						malformed(c.Pos(), "requires annotation names no mutex", "write //tvdp:requires <mu>[,<mu>...]")
						continue
					}
					ann.funcReqs[fn] = append(ann.funcReqs[fn], clauses...)
				}
				if rest, ok := annotationLine(c.Text, serialPrefix); ok {
					if rest == "" {
						malformed(c.Pos(), "serial annotation has no justification; it exempts nothing", "append a reason: //tvdp:serial <why this runs single-threaded>")
						continue
					}
					ann.serial[fn] = true
				}
			}
		}
	}
	return ann
}

// gbHeld is the checker's held-set: mutex names held exclusively, names
// held at least for reading, and alternation groups seeded by requires
// clauses (one unknown member of the group is write-held).
type gbHeld struct {
	write  map[string]bool
	read   map[string]bool
	groups []map[string]bool
}

func newGBHeld() *gbHeld {
	return &gbHeld{write: map[string]bool{}, read: map[string]bool{}}
}

func (h *gbHeld) clone() *gbHeld {
	c := newGBHeld()
	for n := range h.write {
		c.write[n] = true
	}
	for n := range h.read {
		c.read[n] = true
	}
	c.groups = h.groups // seeded at entry, never mutated
	return c
}

// intersect narrows h to the locks provably held in both h and o.
func (h *gbHeld) intersect(o *gbHeld) {
	for n := range h.write {
		if !o.write[n] {
			delete(h.write, n)
			if o.read[n] {
				h.read[n] = true
			}
		}
	}
	for n := range h.read {
		if !o.read[n] && !o.write[n] {
			delete(h.read, n)
		}
	}
}

// groupCovers reports whether a seeded alternation group proves one of
// alts is held: every group member must be an accepted alternative.
func (h *gbHeld) groupCovers(alts []string) bool {
	ok := func(g map[string]bool) bool {
		for m := range g {
			found := false
			for _, a := range alts {
				if a == m {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return len(g) > 0
	}
	for _, g := range h.groups {
		if ok(g) {
			return true
		}
	}
	return false
}

func (h *gbHeld) writeHeld(alts []string) bool {
	for _, a := range alts {
		if h.write[a] {
			return true
		}
	}
	return h.groupCovers(alts)
}

func (h *gbHeld) readHeld(alts []string) bool {
	for _, a := range alts {
		if h.read[a] || h.write[a] {
			return true
		}
	}
	return h.groupCovers(alts)
}

func (h *gbHeld) describe() string {
	var names []string
	for n := range h.write {
		names = append(names, n)
	}
	for n := range h.read {
		names = append(names, n+" (read)")
	}
	if len(names) == 0 {
		return "no locks"
	}
	sortStrings(names)
	return strings.Join(names, ", ")
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// gbChecker walks one function.
type gbChecker struct {
	pkg      *Package
	ann      *gbAnnotations
	events   map[*types.Func][]lockEvent
	closures map[types.Object]*ast.FuncLit
	splicing map[types.Object]bool
	fname    string
	out      []Finding
}

// Check runs the analyzer over one package.
func (g *GuardedBy) Check(pkg *Package) []Finding {
	ann := collectAnnotations(pkg)
	out := ann.bad
	if len(ann.fieldGuards) == 0 && len(ann.funcReqs) == 0 {
		return out
	}

	// Pre-pass: per-function direct mutex events for the one-level splice
	// (lockAll/unlockAll and friends), generalized to any mutex name.
	events := map[*types.Func][]lockEvent{}
	var decls []*ast.FuncDecl
	for _, file := range pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			decls = append(decls, fd)
			events[fn] = directMutexEvents(pkg, fd)
		}
	}

	for _, fd := range decls {
		fn := pkg.Info.Defs[fd.Name].(*types.Func)
		if ann.serial[fn] {
			continue
		}
		c := &gbChecker{
			pkg:      pkg,
			ann:      ann,
			events:   events,
			closures: boundClosures(pkg, fd),
			splicing: map[types.Object]bool{},
			fname:    fd.Name.Name,
		}
		held := newGBHeld()
		for _, rc := range ann.funcReqs[fn] {
			switch {
			case len(rc.alts) == 1 && rc.read:
				held.read[rc.alts[0]] = true
			case len(rc.alts) == 1:
				held.write[rc.alts[0]] = true
			default:
				g := map[string]bool{}
				for _, a := range rc.alts {
					g[a] = true
				}
				held.groups = append(held.groups, g)
			}
		}
		c.stmts(fd.Body.List, held)
		out = append(out, c.out...)
	}
	return out
}

// directMutexEvents collects a function's own sync.(RW)Mutex traffic in
// source order, deferred events last — the splice payload.
func directMutexEvents(pkg *Package, fd *ast.FuncDecl) []lockEvent {
	var events, deferred []lockEvent
	var walk func(n ast.Node, sink *[]lockEvent)
	walk = func(n ast.Node, sink *[]lockEvent) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt:
				walk(n.Call, &deferred)
				return false
			case *ast.CallExpr:
				if ev, ok := classifyMutexOp(pkg, n); ok {
					*sink = append(*sink, ev)
				}
			}
			return true
		})
	}
	walk(fd.Body, &events)
	return append(events, deferred...)
}

// classifyMutexOp recognises <expr>.<mu>.Lock/RLock/TryLock/TryRLock/
// Unlock/RUnlock where the method genuinely belongs to package sync.
func classifyMutexOp(pkg *Package, call *ast.CallExpr) (lockEvent, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}, false
	}
	method := sel.Sel.Name
	switch method {
	case "Lock", "RLock", "TryLock", "TryRLock", "Unlock", "RUnlock":
	default:
		return lockEvent{}, false
	}
	fn, _ := pkg.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockEvent{}, false
	}
	name, ok := mutexName(sel.X)
	if !ok {
		return lockEvent{}, false
	}
	ev := lockEvent{pos: call.Pos(), what: name}
	switch method {
	case "Lock", "TryLock":
		ev.kind = evAcquire
	case "RLock", "TryRLock":
		ev.kind, ev.rlock = evAcquire, true
	default:
		ev.kind = evRelease
	}
	return ev, true
}

// boundClosures maps `name := func() {...}` bindings so the checker can
// execute the closure at its call sites — the store's unlock idiom.
func boundClosures(pkg *Package, fd *ast.FuncDecl) map[types.Object]*ast.FuncLit {
	out := map[types.Object]*ast.FuncLit{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		lit, ok := as.Rhs[0].(*ast.FuncLit)
		if !ok {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		var obj types.Object
		if as.Tok == token.DEFINE {
			obj = pkg.Info.Defs[id]
		} else {
			obj = pkg.Info.Uses[id]
		}
		if obj != nil {
			out[obj] = lit
		}
		return true
	})
	return out
}

func (c *gbChecker) report(pos token.Pos, msg, hint string) {
	c.out = append(c.out, Finding{
		Analyzer: "guardedby",
		Pos:      posOf(c.pkg, pos),
		Message:  msg,
		Hint:     hint,
	})
}

// stmts walks a statement list; true means the tail is unreachable.
func (c *gbChecker) stmts(list []ast.Stmt, h *gbHeld) bool {
	for _, st := range list {
		if c.stmt(st, h) {
			return true
		}
	}
	return false
}

func (c *gbChecker) stmt(s ast.Stmt, h *gbHeld) bool {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		return c.stmts(s.List, h)
	case *ast.ExprStmt:
		c.expr(s.X, h, false)
	case *ast.SendStmt:
		c.expr(s.Chan, h, false)
		c.expr(s.Value, h, false)
	case *ast.IncDecStmt:
		c.expr(s.X, h, true)
	case *ast.AssignStmt:
		if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
			if _, isLit := s.Rhs[0].(*ast.FuncLit); isLit {
				if id, ok := s.Lhs[0].(*ast.Ident); ok {
					obj := c.pkg.Info.Defs[id]
					if obj == nil {
						obj = c.pkg.Info.Uses[id]
					}
					if obj != nil && c.closures[obj] != nil {
						return false // body executes at its call sites
					}
				}
			}
		}
		for _, r := range s.Rhs {
			c.expr(r, h, false)
		}
		for _, l := range s.Lhs {
			c.expr(l, h, true)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, sp := range gd.Specs {
				if vs, ok := sp.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.expr(v, h, false)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.expr(r, h, false)
		}
		return true
	case *ast.BranchStmt:
		return s.Tok != token.FALLTHROUGH
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, h)
	case *ast.IfStmt:
		c.stmt(s.Init, h)
		c.expr(s.Cond, h, false)
		bodyH := h.clone()
		bt := c.stmts(s.Body.List, bodyH)
		if s.Else != nil {
			elseH := h.clone()
			et := c.stmt(s.Else, elseH)
			switch {
			case bt && et:
				return true
			case bt:
				*h = *elseH
			case et:
				*h = *bodyH
			default:
				*h = *bodyH
				h.intersect(elseH)
			}
		} else if !bt {
			h.intersect(bodyH)
		}
	case *ast.ForStmt:
		c.stmt(s.Init, h)
		if s.Cond != nil {
			c.expr(s.Cond, h, false)
		}
		bh := h.clone()
		c.stmts(s.Body.List, bh)
		c.stmt(s.Post, bh)
	case *ast.RangeStmt:
		c.expr(s.X, h, false)
		bh := h.clone()
		c.stmts(s.Body.List, bh)
	case *ast.SwitchStmt:
		c.stmt(s.Init, h)
		if s.Tag != nil {
			c.expr(s.Tag, h, false)
		}
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				ch := h.clone()
				for _, e := range cl.List {
					c.expr(e, ch, false)
				}
				c.stmts(cl.Body, ch)
			}
		}
	case *ast.TypeSwitchStmt:
		c.stmt(s.Init, h)
		c.stmt(s.Assign, h)
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				ch := h.clone()
				c.stmts(cl.Body, ch)
			}
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CommClause); ok {
				ch := h.clone()
				c.stmt(cl.Comm, ch)
				c.stmts(cl.Body, ch)
			}
		}
	case *ast.DeferStmt:
		c.deferCall(s.Call, h)
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			c.expr(a, h, false)
		}
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			// A spawned goroutine inherits nothing: its body starts with
			// an empty held-set.
			c.stmts(lit.Body.List, newGBHeld())
		}
	}
	return false
}

// deferCall handles a deferred call: a deferred Unlock keeps its mutex
// held for the remainder of the function (it runs at exit), a deferred
// closure is checked against the held-set at the defer site, and a
// deferred same-package call still has its requires contract checked.
func (c *gbChecker) deferCall(call *ast.CallExpr, h *gbHeld) {
	if _, ok := classifyMutexOp(c.pkg, call); ok {
		return
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		bh := h.clone()
		c.stmts(lit.Body.List, bh)
		return
	}
	for _, a := range call.Args {
		c.expr(a, h, false)
	}
	if fn := funcObj(c.pkg.Info, call); fn != nil && fn.Pkg() == c.pkg.Pkg {
		c.checkRequires(fn, call.Pos(), h)
	}
}

func (c *gbChecker) expr(e ast.Expr, h *gbHeld, write bool) {
	switch e := e.(type) {
	case nil:
	case *ast.SelectorExpr:
		c.expr(e.X, h, false)
		c.checkAccess(e, h, write)
	case *ast.IndexExpr:
		c.expr(e.X, h, write)
		c.expr(e.Index, h, false)
	case *ast.IndexListExpr:
		c.expr(e.X, h, write)
		for _, ix := range e.Indices {
			c.expr(ix, h, false)
		}
	case *ast.SliceExpr:
		c.expr(e.X, h, write)
		c.expr(e.Low, h, false)
		c.expr(e.High, h, false)
		c.expr(e.Max, h, false)
	case *ast.StarExpr:
		c.expr(e.X, h, write)
	case *ast.ParenExpr:
		c.expr(e.X, h, write)
	case *ast.UnaryExpr:
		c.expr(e.X, h, false)
	case *ast.BinaryExpr:
		c.expr(e.X, h, false)
		c.expr(e.Y, h, false)
	case *ast.CallExpr:
		c.call(e, h)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if _, isIdent := kv.Key.(*ast.Ident); !isIdent {
					c.expr(kv.Key, h, false)
				}
				c.expr(kv.Value, h, false)
				continue
			}
			c.expr(el, h, false)
		}
	case *ast.FuncLit:
		// A literal used inline (sort.Search callback, IIFE argument)
		// executes where it appears: check it under the current held-set.
		bh := h.clone()
		c.stmts(e.Body.List, bh)
	case *ast.TypeAssertExpr:
		c.expr(e.X, h, false)
	}
}

func (c *gbChecker) call(call *ast.CallExpr, h *gbHeld) {
	// Mutex traffic mutates the held-set and is never a guarded access.
	if ev, ok := classifyMutexOp(c.pkg, call); ok {
		switch {
		case ev.kind == evAcquire && ev.rlock:
			h.read[ev.what] = true
		case ev.kind == evAcquire:
			h.write[ev.what] = true
		default:
			delete(h.write, ev.what)
			delete(h.read, ev.what)
		}
		return
	}

	// delete(m, k) writes its map argument.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isB := c.pkg.Info.Uses[id].(*types.Builtin); isB && b.Name() == "delete" && len(call.Args) == 2 {
			c.expr(call.Args[0], h, true)
			c.expr(call.Args[1], h, false)
			return
		}
		// Bound closure call: the body executes here and its lock
		// effects (the unlock idiom) escape into this flow.
		var obj types.Object = c.pkg.Info.Uses[id]
		if lit := c.closures[obj]; lit != nil && !c.splicing[obj] {
			for _, a := range call.Args {
				c.expr(a, h, false)
			}
			c.splicing[obj] = true
			c.stmts(lit.Body.List, h)
			delete(c.splicing, obj)
			return
		}
	}

	c.expr(call.Fun, h, false)
	for _, a := range call.Args {
		c.expr(a, h, false)
	}

	if fn := funcObj(c.pkg.Info, call); fn != nil && fn.Pkg() == c.pkg.Pkg {
		c.checkRequires(fn, call.Pos(), h)
		// One-level splice: the callee's own mutex traffic (lockAll,
		// unlockAll, self-locking helpers) happens at this call site.
		for _, ev := range c.events[fn] {
			switch {
			case ev.kind == evAcquire && ev.rlock:
				h.read[ev.what] = true
			case ev.kind == evAcquire:
				h.write[ev.what] = true
			case ev.kind == evRelease:
				delete(h.write, ev.what)
				delete(h.read, ev.what)
			}
		}
	}
}

func (c *gbChecker) checkRequires(fn *types.Func, pos token.Pos, h *gbHeld) {
	for _, rc := range c.ann.funcReqs[fn] {
		ok := rc.read && h.readHeld(rc.alts) || !rc.read && h.writeHeld(rc.alts)
		if !ok {
			c.report(pos,
				fmt.Sprintf("%s: call to %s requires %s held, but caller holds %s", c.fname, fn.Name(), rc, h.describe()),
				"acquire the declared lock before the call, or mark the caller //tvdp:serial if it runs before the store is shared")
		}
	}
}

func (c *gbChecker) checkAccess(sel *ast.SelectorExpr, h *gbHeld, write bool) {
	obj := c.pkg.Info.Uses[sel.Sel]
	v, ok := obj.(*types.Var)
	if !ok || !v.IsField() {
		return
	}
	rc, ok := c.ann.fieldGuards[v]
	if !ok {
		return
	}
	name := c.ann.fieldNames[v]
	if write {
		if !h.writeHeld(rc.alts) {
			c.report(sel.Sel.Pos(),
				fmt.Sprintf("%s: write to %s (guarded by %s) holding %s", c.fname, name, strings.Join(rc.alts, "|"), h.describe()),
				"hold "+strings.Join(rc.alts, " or ")+" exclusively across the write")
		}
		return
	}
	if !h.readHeld(rc.alts) {
		c.report(sel.Sel.Pos(),
			fmt.Sprintf("%s: read of %s (guarded by %s) holding %s", c.fname, name, strings.Join(rc.alts, "|"), h.describe()),
			"hold "+strings.Join(rc.alts, " or ")+" (read lock suffices) across the read")
	}
}
