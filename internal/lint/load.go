package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Loading strategy: walk the module tree for directories holding non-test
// .go files, parse each as one package, topologically sort by
// module-internal imports, and type-check in that order. Stdlib imports
// resolve through go/importer's source importer; module-internal imports
// resolve through the packages already checked — a two-level chain that
// keeps the whole loader inside the standard library.

// chainImporter serves module-internal packages from the checked set and
// delegates everything else to the stdlib source importer.
type chainImporter struct {
	std  types.Importer
	pkgs map[string]*types.Package
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.pkgs[path]; ok {
		return p, nil
	}
	return c.std.Import(path)
}

// newInfo allocates the types.Info maps every analyzer relies on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

// modulePath reads the module declaration from <root>/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: reading go.mod: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module declaration in %s/go.mod", root)
}

// parsedPkg is one directory's worth of parsed-but-unchecked files.
type parsedPkg struct {
	path  string
	files []*ast.File
	// deps are the module-internal import paths (the topo-sort edges).
	deps []string
}

// LoadModule parses and type-checks every non-test package under root
// (skipping testdata and hidden directories) and returns them sorted by
// import path.
func LoadModule(root string) ([]*Package, error) {
	mod, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()

	dirs := map[string]bool{}
	err = filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != root && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(p, ".go") && !strings.HasSuffix(p, "_test.go") {
			dirs[filepath.Dir(p)] = true
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("lint: walking module: %w", err)
	}

	parsed := map[string]*parsedPkg{}
	for dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		ip := mod
		if rel != "." {
			ip = mod + "/" + filepath.ToSlash(rel)
		}
		pp, err := parseDir(fset, dir, ip, mod)
		if err != nil {
			return nil, err
		}
		if len(pp.files) > 0 {
			parsed[ip] = pp
		}
	}

	order, err := topoSort(parsed)
	if err != nil {
		return nil, err
	}

	imp := &chainImporter{
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: make(map[string]*types.Package, len(order)),
	}
	var out []*Package
	for _, ip := range order {
		pkg, err := check(fset, parsed[ip].files, ip, imp)
		if err != nil {
			return nil, err
		}
		imp.pkgs[ip] = pkg.Pkg
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadFixture parses and type-checks a single standalone directory — the
// analyzer test fixtures under testdata/, which the module walk skips on
// purpose. The package gets the import path "fixture/<dirname>"; fixtures
// may import only the standard library.
func LoadFixture(dir string) (*Package, error) {
	fset := token.NewFileSet()
	ip := "fixture/" + filepath.Base(dir)
	pp, err := parseDir(fset, dir, ip, "")
	if err != nil {
		return nil, err
	}
	if len(pp.files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in fixture %s", dir)
	}
	imp := &chainImporter{std: importer.ForCompiler(fset, "source", nil)}
	return check(fset, pp.files, ip, imp)
}

func parseDir(fset *token.FileSet, dir, importPath, mod string) (*parsedPkg, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: reading %s: %w", dir, err)
	}
	pp := &parsedPkg{path: importPath}
	seenDep := map[string]bool{}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		pp.files = append(pp.files, f)
		if mod == "" {
			continue
		}
		for _, im := range f.Imports {
			v, err := strconv.Unquote(im.Path.Value)
			if err != nil {
				continue
			}
			if (v == mod || strings.HasPrefix(v, mod+"/")) && !seenDep[v] {
				seenDep[v] = true
				pp.deps = append(pp.deps, v)
			}
		}
	}
	return pp, nil
}

// topoSort orders packages so every module-internal dependency is checked
// before its importers. Iteration is over sorted keys so the order (and
// therefore any type-check error surfaced first) is stable run to run.
func topoSort(parsed map[string]*parsedPkg) ([]string, error) {
	keys := make([]string, 0, len(parsed))
	for k := range parsed {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	const (
		visiting = 1
		done     = 2
	)
	state := map[string]int{}
	var order []string
	var visit func(string, []string) error
	visit = func(p string, stack []string) error {
		switch state[p] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle: %s", strings.Join(append(stack, p), " -> "))
		}
		state[p] = visiting
		pp, ok := parsed[p]
		if !ok {
			// An import of a module path with no Go files (or outside the
			// tree); let the type checker report it with position info.
			state[p] = done
			return nil
		}
		for _, d := range pp.deps {
			if err := visit(d, append(stack, p)); err != nil {
				return err
			}
		}
		state[p] = done
		order = append(order, p)
		return nil
	}
	for _, k := range keys {
		if err := visit(k, nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}

func check(fset *token.FileSet, files []*ast.File, importPath string, imp types.Importer) (*Package, error) {
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	return &Package{Path: importPath, Fset: fset, Files: files, Pkg: tpkg, Info: info}, nil
}
