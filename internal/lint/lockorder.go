package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The lockorder analyzer enforces the store's deadlock-avoidance
// discipline, documented on the Store type: subsystem locks are always
// acquired in the fixed order catalogMu → imagesMu → featMu → annMu →
// kwMu → geoMu. `go test -race` cannot see a lock-order inversion — an
// inversion deadlocks only under the losing interleaving, which a finite
// test run may never produce — so the order is checked statically.
//
// The model is intra-procedural with a one-level splice of the
// same-package call graph: each function's Lock/RLock/Unlock/RUnlock
// sequence on table mutexes is extracted in source order, calls to
// same-package functions inline the callee's direct lock events at the
// call site, and the combined stream is replayed against a held-set.
// Acquiring a mutex while holding one that ranks after it is a finding, as
// is re-acquiring a mutex already held.
//
// The analyzer also flags blocking file I/O performed while any subsystem
// lock is held (fsync, file writes, renames — directly or through the
// same-package call graph at any depth). Holding every lock across a
// snapshot's fsync is the one sanctioned exception and carries its nolint
// justification in store.go.
//
// Approximations, chosen to match the store's idiom: function literals are
// treated as executing where they are defined (the `unlock := func() {...}`
// helpers release their locks on every path before the next lock-relevant
// operation, so this is safe here), and deferred calls run at function
// exit.

// StoreLockOrder is the canonical subsystem-mutex acquisition order. A
// test asserts this table against the RWMutex field order declared on
// store.Store, so the analyzer and the documentation cannot drift apart.
var StoreLockOrder = []string{"catalogMu", "imagesMu", "featMu", "annMu", "kwMu", "geoMu"}

// LockOrder is the analyzer. Order lists mutex field names from first- to
// last-acquired.
type LockOrder struct {
	Order []string
}

// NewLockOrder returns the production-configured analyzer.
func NewLockOrder() *LockOrder {
	return &LockOrder{Order: StoreLockOrder}
}

func (l *LockOrder) Name() string { return "lockorder" }

// Doc describes the analyzer in one line.
func (l *LockOrder) Doc() string {
	return "subsystem mutexes must be acquired in the documented order, and file I/O must not run under them"
}

type lockEvKind int

const (
	evAcquire lockEvKind = iota
	evRelease
	evIO
	evCall
)

type lockEvent struct {
	kind   lockEvKind
	rank   int
	rlock  bool
	pos    token.Pos
	what   string      // mutex name, or I/O description
	callee *types.Func // for evCall
}

// funcLockInfo is one function's summary.
type funcLockInfo struct {
	name   string
	events []lockEvent // direct events + call markers, source order, defers last
	io     bool        // performs file I/O directly
}

// Check runs the analyzer over one package.
func (l *LockOrder) Check(pkg *Package) []Finding {
	rank := map[string]int{}
	for i, m := range l.Order {
		rank[m] = i
	}

	// Pass 1: per-function direct summaries.
	infos := map[*types.Func]*funcLockInfo{}
	var decls []*ast.FuncDecl
	for _, file := range pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			decls = append(decls, fd)
			infos[obj] = l.summarize(pkg, fd, rank)
		}
	}

	// Pass 2: transitive does-file-I/O over the same-package call graph.
	ioTrans := map[*types.Func]bool{}
	var reaches func(fn *types.Func, seen map[*types.Func]bool) bool
	reaches = func(fn *types.Func, seen map[*types.Func]bool) bool {
		if v, ok := ioTrans[fn]; ok {
			return v
		}
		if seen[fn] {
			return false
		}
		seen[fn] = true
		info := infos[fn]
		if info == nil {
			return false
		}
		if info.io {
			ioTrans[fn] = true
			return true
		}
		for _, ev := range info.events {
			if ev.kind == evCall && reaches(ev.callee, seen) {
				ioTrans[fn] = true
				return true
			}
		}
		ioTrans[fn] = false
		return false
	}
	for fn := range infos {
		reaches(fn, map[*types.Func]bool{})
	}

	// Pass 3: replay each function's effective event stream.
	var out []Finding
	for _, fd := range decls {
		obj := pkg.Info.Defs[fd.Name].(*types.Func)
		out = append(out, l.replay(pkg, obj, infos, ioTrans)...)
	}
	return out
}

// summarize extracts a function's direct lock/IO/call events in source
// order. Deferred statements contribute their events at the end of the
// stream (function exit); function literals contribute inline where they
// are defined.
func (l *LockOrder) summarize(pkg *Package, fd *ast.FuncDecl, rank map[string]int) *funcLockInfo {
	info := &funcLockInfo{name: fd.Name.Name}
	var deferred []lockEvent
	var walk func(n ast.Node, sink *[]lockEvent)
	walk = func(n ast.Node, sink *[]lockEvent) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt:
				walk(n.Call, &deferred)
				return false
			case *ast.CallExpr:
				if ev, ok := l.classify(pkg, n, rank); ok {
					*sink = append(*sink, ev)
					if ev.kind == evIO {
						info.io = true
					}
				}
				return true
			}
			return true
		})
	}
	walk(fd.Body, &info.events)
	info.events = append(info.events, deferred...)
	return info
}

// classify maps one call expression to a lock event, if it is one.
func (l *LockOrder) classify(pkg *Package, call *ast.CallExpr, rank map[string]int) (lockEvent, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		// Plain identifier call: possibly a same-package function.
		if fn := funcObj(pkg.Info, call); fn != nil && fn.Pkg() == pkg.Pkg {
			return lockEvent{kind: evCall, pos: call.Pos(), callee: fn}, true
		}
		return lockEvent{}, false
	}
	method := sel.Sel.Name

	// Lock-table traffic: <recv>.<mutex>.Lock() where <mutex> is a table
	// name and the method really is sync.(RW)Mutex locking.
	switch method {
	case "Lock", "RLock", "Unlock", "RUnlock":
		if fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
			if name, ok := mutexName(sel.X); ok {
				if r, ok := rank[name]; ok {
					ev := lockEvent{rank: r, pos: call.Pos(), what: name}
					switch method {
					case "Lock":
						ev.kind = evAcquire
					case "RLock":
						ev.kind, ev.rlock = evAcquire, true
					default:
						ev.kind = evRelease
					}
					return ev, true
				}
			}
		}
		return lockEvent{}, false
	}

	if what, ok := l.ioCall(pkg, call, sel); ok {
		return lockEvent{kind: evIO, pos: call.Pos(), what: what}, true
	}
	if fn := funcObj(pkg.Info, call); fn != nil && fn.Pkg() == pkg.Pkg {
		return lockEvent{kind: evCall, pos: call.Pos(), callee: fn}, true
	}
	return lockEvent{}, false
}

// mutexName extracts the mutex field/variable name from the receiver
// expression of a Lock call: s.geoMu.Lock() or geoMu.Lock().
func mutexName(x ast.Expr) (string, bool) {
	switch x := ast.Unparen(x).(type) {
	case *ast.SelectorExpr:
		return x.Sel.Name, true
	case *ast.Ident:
		return x.Name, true
	}
	return "", false
}

// ioCall reports whether a call is blocking file I/O: os package file
// operations, methods on *os.File, or write/sync/close traffic on a
// file-like interface (one declaring both Write and Sync — the WAL
// backend shape).
func (l *LockOrder) ioCall(pkg *Package, call *ast.CallExpr, sel *ast.SelectorExpr) (string, bool) {
	fn, _ := pkg.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil {
		return "", false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "os" {
		switch fn.Name() {
		case "Rename", "Remove", "RemoveAll", "Open", "OpenFile", "Create",
			"ReadFile", "WriteFile", "Truncate", "Mkdir", "MkdirAll", "ReadDir":
			return "os." + fn.Name(), true
		}
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	switch fn.Name() {
	case "Write", "WriteString", "Sync", "Close", "Truncate", "ReadFrom":
	default:
		return "", false
	}
	recv := deref(sig.Recv().Type())
	if named, ok := recv.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "os" && obj.Name() == "File" {
			return "(*os.File)." + fn.Name(), true
		}
	}
	if iface, ok := recv.Underlying().(*types.Interface); ok && fileLike(iface) {
		return "backend " + fn.Name(), true
	}
	return "", false
}

// fileLike reports whether an interface has both Write and Sync in its
// method set — the shape of a WAL/file backend, as opposed to an arbitrary
// io.Writer (whose Write is routinely an in-memory buffer append).
func fileLike(iface *types.Interface) bool {
	var hasWrite, hasSync bool
	for i := 0; i < iface.NumMethods(); i++ {
		switch iface.Method(i).Name() {
		case "Write":
			hasWrite = true
		case "Sync":
			hasSync = true
		}
	}
	return hasWrite && hasSync
}

// replay expands one function's event stream (splicing callee lock events
// one level deep, and I/O reachability at any depth) and checks it against
// the held-set.
func (l *LockOrder) replay(pkg *Package, fn *types.Func, infos map[*types.Func]*funcLockInfo, ioTrans map[*types.Func]bool) []Finding {
	info := infos[fn]
	var stream []lockEvent
	for _, ev := range info.events {
		if ev.kind != evCall {
			stream = append(stream, ev)
			continue
		}
		callee := infos[ev.callee]
		if callee == nil {
			continue
		}
		// One-level splice: the callee's direct lock events happen at the
		// call site, in the callee's order.
		for _, cev := range callee.events {
			if cev.kind == evAcquire || cev.kind == evRelease {
				spliced := cev
				spliced.pos = ev.pos
				spliced.what = cev.what + " (via " + callee.name + ")"
				stream = append(stream, spliced)
			}
		}
		if ioTrans[ev.callee] {
			stream = append(stream, lockEvent{kind: evIO, pos: ev.pos, what: callee.name + " (does file I/O)"})
		}
	}

	held := map[int]lockEvent{}
	heldNames := func() string {
		ranks := make([]int, 0, len(held))
		for r := range held {
			ranks = append(ranks, r)
		}
		sort.Ints(ranks)
		names := make([]string, len(ranks))
		for i, r := range ranks {
			names[i] = l.Order[r]
		}
		return strings.Join(names, ", ")
	}

	var out []Finding
	for _, ev := range stream {
		switch ev.kind {
		case evAcquire:
			for r := len(l.Order) - 1; r >= 0; r-- {
				if _, ok := held[r]; ok && r > ev.rank {
					out = append(out, Finding{
						Analyzer: l.Name(),
						Pos:      posOf(pkg, ev.pos),
						Message: fmt.Sprintf("%s: acquires %s while holding %s; the order is %s",
							info.name, ev.what, l.Order[r], strings.Join(l.Order, " → ")),
						Hint: "acquire subsystem locks in table order (release and re-acquire if necessary)",
					})
					break
				}
			}
			if prev, dup := held[ev.rank]; dup {
				out = append(out, Finding{
					Analyzer: l.Name(),
					Pos:      posOf(pkg, ev.pos),
					Message:  fmt.Sprintf("%s: re-acquires %s already held (first at line %d)", info.name, ev.what, posOf(pkg, prev.pos).Line),
					Hint:     "a second Lock on a held (RW)Mutex self-deadlocks; restructure so each path locks once",
				})
			}
			held[ev.rank] = ev
		case evRelease:
			delete(held, ev.rank)
		case evIO:
			if len(held) > 0 {
				out = append(out, Finding{
					Analyzer: l.Name(),
					Pos:      posOf(pkg, ev.pos),
					Message:  fmt.Sprintf("%s: blocking file I/O (%s) while holding %s", info.name, ev.what, heldNames()),
					Hint:     "move the I/O outside the critical section (encode before locking, enqueue to the committer)",
				})
			}
		}
	}
	return out
}
