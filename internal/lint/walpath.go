package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// The walpath analyzer confines WAL writes to the group-commit path.
// Since PR 3, durability correctness rests on two facts: every frame is
// written by the committer goroutine (so log order matches apply order and
// batches coalesce fsyncs), and every frame's bytes come from encodeFrame
// (so each is a standalone CRC-framed gob stream recovery can verify).
// Nothing stops a future mutation from "just appending" to the log
// directly — it would even pass every test that doesn't crash mid-write.
// This analyzer is that stop:
//
//   - Methods on the walWriter type and on the walBackend interface
//     (Write/Sync/Close/append) may be called only from the WAL layer's
//     own files: wal.go, committer.go, the fault-injection shim
//     faultfs.go, and — since PR 8 — the segment engine's durability
//     files (segment.go writes blobs through the backend hook so crash
//     sweeps can tear them; engine.go and manifest.go orchestrate
//     rotation and installs).
//   - walPayloads.encode — the raw payload encoder — may be called only
//     from wal.go, where encodeFrame wraps it in the length+CRC framing.
//
// The rules key on the type names, not the package name, so the fixture
// package under testdata exercises them without importing the store.

// WALPath is the analyzer. AllowedFiles lists base filenames permitted to
// touch the backend; EncoderFile is where raw payload encoding may live.
type WALPath struct {
	WriterType   string
	BackendType  string
	PayloadVar   string
	AllowedFiles []string
	EncoderFile  string
}

// NewWALPath returns the production-configured analyzer.
func NewWALPath() *WALPath {
	return &WALPath{
		WriterType:   "walWriter",
		BackendType:  "walBackend",
		PayloadVar:   "walPayloads",
		AllowedFiles: []string{"wal.go", "committer.go", "faultfs.go", "segment.go", "manifest.go", "engine.go"},
		EncoderFile:  "wal.go",
	}
}

func (w *WALPath) Name() string { return "walpath" }

// Doc describes the analyzer in one line.
func (w *WALPath) Doc() string {
	return "WAL backend writes are confined to the committer/WAL layer, and all frames go through encodeFrame"
}

// Check runs the analyzer over one package.
func (w *WALPath) Check(pkg *Package) []Finding {
	// Only packages that declare the WAL writer type are interesting.
	if pkg.Pkg.Scope().Lookup(w.WriterType) == nil && pkg.Pkg.Scope().Lookup(w.BackendType) == nil {
		return nil
	}
	allowed := map[string]bool{}
	for _, f := range w.AllowedFiles {
		allowed[f] = true
	}
	var out []Finding
	for _, file := range pkg.Files {
		base := filepath.Base(posOf(pkg, file.Pos()).Filename)
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, _ := pkg.Info.Uses[sel.Sel].(*types.Func)
			if fn == nil {
				return true
			}
			if !allowed[base] {
				if recv := recvTypeName(fn); recv != nil && recv.Pkg() == pkg.Pkg &&
					(recv.Name() == w.WriterType || recv.Name() == w.BackendType) {
					out = append(out, Finding{
						Analyzer: w.Name(),
						Pos:      posOf(pkg, call.Pos()),
						Message: fmt.Sprintf("direct %s.%s call outside the WAL layer (%s)",
							recv.Name(), fn.Name(), strings.Join(w.AllowedFiles, ", ")),
						Hint: "mutations must pre-encode frames and enqueue them on the group-commit committer",
					})
				}
			}
			if base != w.EncoderFile && fn.Name() == "encode" {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && id.Name == w.PayloadVar {
					out = append(out, Finding{
						Analyzer: w.Name(),
						Pos:      posOf(pkg, call.Pos()),
						Message:  fmt.Sprintf("raw %s.encode call outside %s bypasses frame framing", w.PayloadVar, w.EncoderFile),
						Hint:     "call encodeFrame: every durable payload needs its length+CRC32C header",
					})
				}
			}
			return true
		})
	}
	return out
}

// recvTypeName returns the type name of a method's named receiver, nil for
// plain functions or unnamed receivers.
func recvTypeName(fn *types.Func) *types.TypeName {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	if named, ok := deref(sig.Recv().Type()).(*types.Named); ok {
		return named.Obj()
	}
	return nil
}
