package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// The fsyncorder analyzer enforces the persistence tier's install
// discipline: a durable artifact is built in a temp file, fsynced,
// renamed into place, and the directory is fsynced so the rename itself
// survives a crash. Concretely, inside every function in scope, each
// os.Rename call must be
//
//   - preceded (in source order, same function) by a Sync call on the
//     file being installed — (*os.File).Sync or any error-returning Sync
//     method, which covers the walBackend interface — and
//   - followed by a call to the package's fsyncDir helper.
//
// Skipping the first risks renaming an empty or torn file into place;
// skipping the second risks the rename evaporating with the directory's
// dirty metadata. The check is deliberately syntactic (source order, one
// function at a time): install paths in this codebase are straight-line,
// and a new one that smears the chain across helpers should be rewritten
// or carry an explicit nolint justification.

// FsyncOrder is the analyzer. Scope limits it to persistence packages.
type FsyncOrder struct {
	Scope []string
}

// FsyncOrderScope is the production configuration: the store package,
// which owns wal.go, segment.go, manifest.go, and engine.go. Covering
// the whole package (rather than a file list) means a new install path
// in a new file is checked the day it lands.
var FsyncOrderScope = []string{"repro/internal/store"}

// NewFsyncOrder returns the production-configured analyzer.
func NewFsyncOrder() *FsyncOrder { return &FsyncOrder{Scope: FsyncOrderScope} }

func (f *FsyncOrder) Name() string { return "fsyncorder" }

// Doc describes the analyzer in one line.
func (f *FsyncOrder) Doc() string {
	return "every os.Rename installing a durable artifact must follow a source-file fsync and precede a directory fsync"
}

func (f *FsyncOrder) inScope(path string) bool {
	for _, p := range f.Scope {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// Check runs the analyzer over one package.
func (f *FsyncOrder) Check(pkg *Package) []Finding {
	if !f.inScope(pkg.Path) {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Name.Name == "fsyncDir" {
				continue
			}
			out = append(out, f.checkFunc(pkg, fd)...)
		}
	}
	return out
}

func (f *FsyncOrder) checkFunc(pkg *Package, fd *ast.FuncDecl) []Finding {
	var renames, syncs, dirFsyncs []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isOSRename(pkg, call):
			renames = append(renames, call)
		case isFileSync(pkg, call):
			syncs = append(syncs, call)
		case isDirFsync(pkg, call):
			dirFsyncs = append(dirFsyncs, call)
		}
		return true
	})
	var out []Finding
	for _, r := range renames {
		ok := false
		for _, s := range syncs {
			if s.Pos() < r.Pos() {
				ok = true
				break
			}
		}
		if !ok {
			out = append(out, Finding{
				Analyzer: "fsyncorder",
				Pos:      posOf(pkg, r.Pos()),
				Message:  fd.Name.Name + ": os.Rename without a preceding fsync of the source file",
				Hint:     "Sync the temp file before renaming it into place, or the rename can install a torn artifact",
			})
		}
		ok = false
		for _, d := range dirFsyncs {
			if d.Pos() > r.Pos() {
				ok = true
				break
			}
		}
		if !ok {
			out = append(out, Finding{
				Analyzer: "fsyncorder",
				Pos:      posOf(pkg, r.Pos()),
				Message:  fd.Name.Name + ": os.Rename not followed by a directory fsync",
				Hint:     "call fsyncDir on the containing directory after the rename, or the rename itself can be lost on crash",
			})
		}
	}
	return out
}

// isOSRename matches os.Rename.
func isOSRename(pkg *Package, call *ast.CallExpr) bool {
	fn := funcObj(pkg.Info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "os" && fn.Name() == "Rename"
}

// isFileSync matches an error-returning method call named Sync — the
// (*os.File).Sync shape, and by extension walBackend and any file-like
// wrapper.
func isFileSync(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Sync" {
		return false
	}
	fn, _ := pkg.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return false
	}
	named, ok := sig.Results().At(0).Type().(*types.Named)
	return ok && named.Obj().Name() == "error"
}

// isDirFsync matches a call to the package's fsyncDir helper.
func isDirFsync(pkg *Package, call *ast.CallExpr) bool {
	fn := funcObj(pkg.Info, call)
	return fn != nil && fn.Pkg() == pkg.Pkg && fn.Name() == "fsyncDir"
}
