package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"testing"
)

// The golden harness: each fixture package under testdata/ marks the lines
// an analyzer must flag with `// want "<substring>"`. A test passes when
// every want comment is matched by a finding on its line and every finding
// lands on a want comment — unexpected findings are false positives,
// unmatched wants are false negatives, and both fail loudly.

var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

// fixtureWants scans a fixture directory's sources for want comments,
// keyed by "<basename>:<line>".
func fixtureWants(t *testing.T, dir string) map[string][]string {
	t.Helper()
	wants := map[string][]string{}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("reading fixture file: %v", err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				key := fmt.Sprintf("%s:%d", e.Name(), i+1)
				wants[key] = append(wants[key], m[1])
			}
		}
	}
	return wants
}

func runFixture(t *testing.T, dir string, analyzers []Analyzer) []Finding {
	t.Helper()
	pkg, err := LoadFixture(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	return Run([]*Package{pkg}, analyzers)
}

func dump(fs []Finding) string {
	var b strings.Builder
	for _, f := range fs {
		b.WriteString("  " + f.String() + "\n")
	}
	return b.String()
}

func TestAnalyzerFixtures(t *testing.T) {
	fixtureScope := []string{"fixture"}
	cases := []struct {
		name      string
		analyzers []Analyzer
	}{
		{"lockorder", []Analyzer{NewLockOrder()}},
		{"determinism", []Analyzer{&Determinism{Scope: fixtureScope}}},
		{"walpath", []Analyzer{NewWALPath()}},
		{"errdiscard", []Analyzer{&ErrDiscard{
			Scope:   fixtureScope,
			Methods: []string{"Close", "Sync", "Flush", "Write"},
		}}},
		{"ctxflow", []Analyzer{&CtxFlow{BackgroundScope: fixtureScope}}},
		{"sqrtscan", []Analyzer{&SqrtScan{Scope: fixtureScope, AllowFiles: SqrtScanAllowFiles}}},
		{"guardedby", []Analyzer{NewGuardedBy()}},
		{"golifecycle", []Analyzer{&GoLifecycle{Scope: fixtureScope}}},
		{"fsyncorder", []Analyzer{&FsyncOrder{Scope: fixtureScope}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := filepath.Join("testdata", tc.name)
			wants := fixtureWants(t, dir)
			if len(wants) == 0 {
				t.Fatalf("fixture %s has no want comments", dir)
			}
			for _, f := range runFixture(t, dir, tc.analyzers) {
				key := fmt.Sprintf("%s:%d", filepath.Base(f.Pos.Filename), f.Pos.Line)
				matched := -1
				for i, sub := range wants[key] {
					if strings.Contains(f.Message, sub) {
						matched = i
						break
					}
				}
				if matched < 0 {
					t.Errorf("unexpected finding (false positive): %s", f)
					continue
				}
				wants[key] = append(wants[key][:matched], wants[key][matched+1:]...)
				if len(wants[key]) == 0 {
					delete(wants, key)
				}
			}
			for key, subs := range wants {
				for _, sub := range subs {
					t.Errorf("missing finding (false negative) at %s: want message containing %q", key, sub)
				}
			}
		})
	}
}

// TestGeoBeforeCatalogIsCaught pins the acceptance case by name: a scratch
// store function that takes geoMu before catalogMu must be flagged as a
// lock-order inversion.
func TestGeoBeforeCatalogIsCaught(t *testing.T) {
	findings := runFixture(t, filepath.Join("testdata", "lockorder"), []Analyzer{NewLockOrder()})
	for _, f := range findings {
		if f.Analyzer == "lockorder" && strings.Contains(f.Message, "acquires catalogMu while holding geoMu") {
			return
		}
	}
	t.Fatalf("lockorder missed the geoMu-before-catalogMu inversion; findings:\n%s", dump(findings))
}

// TestNolintDirectives checks every half of the escape hatch: a directive
// with a reason suppresses its finding, a bare directive suppresses
// nothing — the original finding survives and the directive itself is
// reported — and a well-formed directive that no longer suppresses
// anything is reported as stale (but only when the analyzers it names
// actually ran).
func TestNolintDirectives(t *testing.T) {
	findings := runFixture(t, filepath.Join("testdata", "nolint"),
		[]Analyzer{&Determinism{Scope: []string{"fixture"}}})
	if len(findings) != 3 {
		t.Fatalf("want exactly 3 findings (bare directive + surviving time.Now + stale directive), got %d:\n%s",
			len(findings), dump(findings))
	}
	bare, surviving, stale := findings[0], findings[1], findings[2]
	if bare.Analyzer != "nolint" || !strings.Contains(bare.Message, "no justification") {
		t.Errorf("first finding should report the reasonless directive, got: %s", bare)
	}
	if surviving.Analyzer != "determinism" || !strings.Contains(surviving.Message, "time.Now") {
		t.Errorf("second finding should be the unsuppressed time.Now, got: %s", surviving)
	}
	if surviving.Pos.Line != bare.Pos.Line+1 {
		t.Errorf("the surviving finding should sit directly under the bare directive (directive line %d, finding line %d)",
			bare.Pos.Line, surviving.Pos.Line)
	}
	if stale.Analyzer != "nolint" || !strings.Contains(stale.Message, "stale") {
		t.Errorf("third finding should report the stale directive, got: %s", stale)
	}
	if !strings.Contains(stale.Message, "determinism") {
		t.Errorf("stale finding should name the suppressed analyzer, got: %s", stale)
	}
}

// TestStoreLockOrderMatchesStoreDecl parses internal/store/store.go and
// asserts the analyzer's mutex table equals the Store struct's
// sync.RWMutex fields in declaration order — the same order the Store doc
// comment documents — so the checker and the code cannot drift apart.
// compactMu is a plain sync.Mutex and is deliberately outside the table.
func TestStoreLockOrderMatchesStoreDecl(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filepath.Join("..", "store", "store.go"), nil, 0)
	if err != nil {
		t.Fatalf("parsing store.go: %v", err)
	}
	var got []string
	ast.Inspect(f, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok || ts.Name.Name != "Store" {
			return true
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			return true
		}
		for _, fld := range st.Fields.List {
			sel, ok := fld.Type.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			pkgID, ok := sel.X.(*ast.Ident)
			if !ok || pkgID.Name != "sync" || sel.Sel.Name != "RWMutex" {
				continue
			}
			for _, name := range fld.Names {
				got = append(got, name.Name)
			}
		}
		return false
	})
	if !reflect.DeepEqual(got, StoreLockOrder) {
		t.Fatalf("lockorder table drifted from store.Store's RWMutex declaration order:\n  store.go: %v\n  analyzer: %v",
			got, StoreLockOrder)
	}
}

// TestStoreGuardedByMatchesStoreDecl pins the guardedby annotation set
// against store.Store's fields: every guarded field carries exactly the
// expected clause, and every subsystem mutex in the lock order guards at
// least one field. Adding a field to Store (or rewiring a guard) must
// update this table in the same change.
func TestStoreGuardedByMatchesStoreDecl(t *testing.T) {
	want := map[string]string{
		"classifications": "catalogMu",
		"classByName":     "catalogMu",
		"users":           "catalogMu",
		"apiKeys":         "catalogMu",
		"videos":          "catalogMu",
		"campaigns":       "catalogMu",
		"images":          "imagesMu",
		"ids":             "imagesMu",
		"features":        "featMu",
		"visual":          "featMu",
		"hybrid":          "featMu",
		"annotations":     "annMu",
		"byLabel":         "annMu",
		"keywords":        "kwMu",
		"text":            "kwMu",
		"spatial":         "geoMu",
		"temporal":        "geoMu",
		"gen":             "flushMu|geoMu",
		"walOps":          "compactMu",
		"memFreed":        "memThrottleMu",
	}
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filepath.Join("..", "store", "store.go"), nil, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing store.go: %v", err)
	}
	got := map[string]string{}
	ast.Inspect(f, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok || ts.Name.Name != "Store" {
			return true
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			return true
		}
		for _, fld := range st.Fields.List {
			var groups []*ast.CommentGroup
			if fld.Doc != nil {
				groups = append(groups, fld.Doc)
			}
			if fld.Comment != nil {
				groups = append(groups, fld.Comment)
			}
			for _, cg := range groups {
				for _, c := range cg.List {
					rest, ok := annotationLine(c.Text, guardedPrefix)
					if !ok {
						continue
					}
					spec, _, _ := strings.Cut(rest, " ")
					for _, name := range fld.Names {
						got[name.Name] = spec
					}
				}
			}
		}
		return false
	})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("guardedby annotations drifted from the pinned lock map:\n  store.go: %v\n  pinned:   %v", got, want)
	}
	guardedMus := map[string]bool{}
	for _, spec := range got {
		for _, mu := range strings.Split(spec, "|") {
			guardedMus[mu] = true
		}
	}
	for _, mu := range StoreLockOrder {
		if !guardedMus[mu] {
			t.Errorf("subsystem lock %s guards no annotated field", mu)
		}
	}
}

// TestModuleIsLintClean runs the full production configuration over the
// whole module — the same gate ci.sh enforces — so a regression shows up
// in `go test` too, with the findings in the failure message.
func TestModuleIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the entire module; skipped in -short")
	}
	pkgs, err := LoadModule(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if findings := Run(pkgs, DefaultAnalyzers()); len(findings) > 0 {
		t.Errorf("tree is not lint-clean (%d findings):\n%s", len(findings), dump(findings))
	}
}
