package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// The determinism analyzer guards the par layer's contract: for the same
// inputs and seeds, pipeline results are bit-identical regardless of
// worker count or run count. The race detector is orthogonal here — a
// pipeline can be perfectly race-free and still unreproducible because it
// read the clock, drew from the global RNG, or let map iteration order
// leak into an ordered output. Those three are exactly what this analyzer
// forbids inside the pipeline packages:
//
//  1. time.Now / time.Since — wall-clock reads. Timestamps must be inputs
//     (parameters, injected clocks); genuine wall-clock measurement
//     (benchmark timing) is the nolint escape hatch's intended use.
//  2. The global math/rand stream (rand.Intn, rand.Float64, rand.Shuffle,
//     ...) — shared, lock-ordered, seeded from the clock since Go 1.20.
//     Stochastic work must draw from rand.New(rand.NewSource(seed)) with a
//     seed derived via par.SplitSeed.
//  3. `for ... range m` over a map that appends to a slice declared
//     outside the loop — iteration order is randomized per run, so the
//     slice's element order is too. Sorting the slice afterwards in the
//     same function is recognized and allowed.

// Determinism is the analyzer. Scope lists import-path prefixes the
// contract applies to; packages outside it are skipped entirely.
type Determinism struct {
	Scope []string
}

// DeterminismScope is the production scope: the pipeline packages named in
// the par contract, plus crowd and edge, whose campaign-assignment and
// edge-learning runs must stay replayable end to end.
var DeterminismScope = []string{
	"repro/internal/par",
	"repro/internal/synth",
	"repro/internal/feature",
	"repro/internal/ml",
	"repro/internal/nn",
	"repro/internal/experiments",
	"repro/internal/crowd",
	"repro/internal/edge",
}

// NewDeterminism returns the production-configured analyzer.
func NewDeterminism() *Determinism {
	return &Determinism{Scope: DeterminismScope}
}

func (d *Determinism) Name() string { return "determinism" }

// Doc describes the analyzer in one line.
func (d *Determinism) Doc() string {
	return "pipeline packages must not read the clock, the global RNG, or map iteration order into ordered outputs"
}

func (d *Determinism) inScope(path string) bool {
	for _, p := range d.Scope {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// Check runs the analyzer over one package.
func (d *Determinism) Check(pkg *Package) []Finding {
	if !d.inScope(pkg.Path) {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, d.checkFunc(pkg, fd)...)
		}
	}
	return out
}

func (d *Determinism) checkFunc(pkg *Package, fd *ast.FuncDecl) []Finding {
	var out []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if f := d.checkCall(pkg, fd, n); f != nil {
				out = append(out, *f)
			}
		case *ast.RangeStmt:
			out = append(out, d.checkMapRange(pkg, fd, n)...)
		}
		return true
	})
	return out
}

func (d *Determinism) checkCall(pkg *Package, fd *ast.FuncDecl, call *ast.CallExpr) *Finding {
	fn := funcObj(pkg.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" || fn.Name() == "Since" {
			return &Finding{
				Analyzer: d.Name(),
				Pos:      posOf(pkg, call.Pos()),
				Message:  fmt.Sprintf("%s: time.%s reads the wall clock inside a determinism-scoped package", fd.Name.Name, fn.Name()),
				Hint:     "take timestamps as parameters or inject a clock; wall-clock benchmark timing belongs in the stopwatch helper",
			}
		}
	case "math/rand", "math/rand/v2":
		// Constructors are the sanctioned path; everything else at package
		// level draws from the shared clock-seeded stream.
		if fn.Type().(*types.Signature).Recv() != nil {
			return nil // method on a *rand.Rand the caller seeded
		}
		switch fn.Name() {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			return nil
		}
		return &Finding{
			Analyzer: d.Name(),
			Pos:      posOf(pkg, call.Pos()),
			Message:  fmt.Sprintf("%s: rand.%s draws from the global clock-seeded RNG stream", fd.Name.Name, fn.Name()),
			Hint:     "use rand.New(rand.NewSource(par.SplitSeed(seed, i))) so the stream is replayable and worker-count independent",
		}
	}
	return nil
}

// checkMapRange flags `for k := range m { out = append(out, ...) }` where
// m is a map and out outlives the loop, unless out is later passed to a
// sort call in the same function.
func (d *Determinism) checkMapRange(pkg *Package, fd *ast.FuncDecl, rng *ast.RangeStmt) []Finding {
	tv, ok := pkg.Info.Types[rng.X]
	if !ok {
		return nil
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return nil
	}
	var out []Finding
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range asg.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pkg, call) || i >= len(asg.Lhs) {
				continue
			}
			target, ok := ast.Unparen(asg.Lhs[i]).(*ast.Ident)
			if !ok || target.Name == "_" {
				continue
			}
			obj := pkg.Info.Uses[target]
			if obj == nil {
				obj = pkg.Info.Defs[target]
			}
			if obj == nil {
				continue
			}
			// Only outputs that outlive the loop can leak iteration order.
			if rng.Pos() <= obj.Pos() && obj.Pos() <= rng.End() {
				continue
			}
			if sortedLater(pkg, fd, obj) {
				continue
			}
			out = append(out, Finding{
				Analyzer: d.Name(),
				Pos:      posOf(pkg, asg.Pos()),
				Message:  fmt.Sprintf("%s: append to %q inside range over a map leaks iteration order into an ordered output", fd.Name.Name, target.Name),
				Hint:     "iterate sorted keys, or sort " + target.Name + " before it escapes",
			})
		}
		return true
	})
	return out
}

func isBuiltinAppend(pkg *Package, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pkg.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedLater reports whether obj is referenced inside a sort.*/slices.*
// call somewhere in the same function — the "collect then sort" idiom that
// makes map-order appends deterministic again.
func sortedLater(pkg *Package, fd *ast.FuncDecl, obj types.Object) bool {
	sorted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := funcObj(pkg.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		// The sorted value must be (part of) an argument expression.
		for _, arg := range call.Args {
			found := false
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pkg.Info.Uses[id] == obj {
					found = true
					return false
				}
				return true
			})
			if found {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}
