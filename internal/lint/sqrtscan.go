package lint

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"strings"
)

// The sqrtscan analyzer guards the index read path's raw-speed contract:
// candidate scans compare *squared* distances — squared L2 is monotone in
// true L2, so ordering, top-k cuts, and r² thresholds are unaffected —
// and the single math.Sqrt per returned match happens in finalizeMatches
// just before results leave the package. A Sqrt inside a scan loop costs
// one libm call per candidate instead of one per result; the PR that
// removed them must stay removed, and this analyzer is the regression
// fence: any math.Sqrt in a scoped package outside the allowed files is
// a finding.

// SqrtScan is the analyzer. Scope lists import-path prefixes the
// contract applies to; AllowFiles lists base filenames within scope
// where math.Sqrt is legitimate (the finalize step).
type SqrtScan struct {
	Scope      []string
	AllowFiles []string
}

// SqrtScanScope is the production scope: the index package, whose scan
// loops are the hottest distance code in the platform.
var SqrtScanScope = []string{
	"repro/internal/index",
}

// SqrtScanAllowFiles names the one blessed Sqrt site: match.go, where
// finalizeMatches converts the surviving squared distances.
var SqrtScanAllowFiles = []string{"match.go"}

// NewSqrtScan returns the production-configured analyzer.
func NewSqrtScan() *SqrtScan {
	return &SqrtScan{Scope: SqrtScanScope, AllowFiles: SqrtScanAllowFiles}
}

func (s *SqrtScan) Name() string { return "sqrtscan" }

// Doc describes the analyzer in one line.
func (s *SqrtScan) Doc() string {
	return "index scan code must compare squared distances; math.Sqrt is confined to the finalize step"
}

func (s *SqrtScan) inScope(path string) bool {
	for _, p := range s.Scope {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func (s *SqrtScan) allowed(filename string) bool {
	base := filepath.Base(filename)
	for _, f := range s.AllowFiles {
		if base == f {
			return true
		}
	}
	return false
}

// Check runs the analyzer over one package.
func (s *SqrtScan) Check(pkg *Package) []Finding {
	if !s.inScope(pkg.Path) {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		if s.allowed(pkg.Fset.Position(file.Pos()).Filename) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := funcObj(pkg.Info, call)
				if fn == nil || fn.Pkg() == nil ||
					fn.Pkg().Path() != "math" || fn.Name() != "Sqrt" {
					return true
				}
				out = append(out, Finding{
					Analyzer: s.Name(),
					Pos:      posOf(pkg, call.Pos()),
					Message:  fmt.Sprintf("%s: math.Sqrt in index scan code — distances must stay squared until finalizeMatches", fd.Name.Name),
					Hint:     "compare squared distances (squared L2 is order-preserving); root once per returned match in finalizeMatches",
				})
				return true
			})
		}
	}
	return out
}
