package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// The ctxflow analyzer enforces the request-lifecycle contract introduced
// with the context refactor: every request that enters the API travels as
// one context from handler to index probe, so a client disconnect or a
// deadline reaches the innermost scan loop. Three rules keep that chain
// unbroken:
//
//  1. Where a function takes a context.Context, it is the first
//     parameter. A buried ctx is invisible at call sites and invites a
//     second, divergent context being threaded alongside it.
//  2. Request-path packages never originate a fresh root with
//     context.Background() or context.TODO(). A root minted mid-chain
//     silently detaches everything below it from the caller's deadline —
//     the search keeps scanning after the client is gone. Lifecycle
//     boundaries (cmd/, examples/, the experiments harness, the platform
//     core's own Serve loop) legitimately originate contexts and sit
//     outside the scope.
//  3. No struct stores a context.Context in a field. A stored context
//     outlives the request it belonged to; the next caller inherits a
//     dead deadline. Contexts flow through parameters only (the nn
//     package's Stop func() error hook is the sanctioned pattern for
//     ctx-free packages).
//
// Rules 1 and 3 are structural and apply everywhere the analyzer runs;
// rule 2 is scoped to the packages that sit strictly below the API's
// context origination point.

// CtxFlow is the analyzer. BackgroundScope lists the import-path prefixes
// where rule 2 (no Background/TODO origination) applies.
type CtxFlow struct {
	BackgroundScope []string
}

// CtxFlowBackgroundScope is the production rule-2 scope: the layers every
// request flows through after the API has originated its context.
var CtxFlowBackgroundScope = []string{
	"repro/internal/api",
	"repro/internal/query",
	"repro/internal/shard",
	"repro/internal/store",
	"repro/internal/analysis",
	"repro/internal/par",
	"repro/internal/ingest",
}

// NewCtxFlow returns the production-configured analyzer.
func NewCtxFlow() *CtxFlow {
	return &CtxFlow{BackgroundScope: CtxFlowBackgroundScope}
}

func (c *CtxFlow) Name() string { return "ctxflow" }

// Doc describes the analyzer in one line.
func (c *CtxFlow) Doc() string {
	return "contexts flow ctx-first through parameters; request paths never mint Background/TODO roots or store a context in a struct"
}

func (c *CtxFlow) inBackgroundScope(path string) bool {
	for _, p := range c.BackgroundScope {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// Check runs the analyzer over one package.
func (c *CtxFlow) Check(pkg *Package) []Finding {
	var out []Finding
	banRoots := c.inBackgroundScope(pkg.Path)
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncType:
				// Covers declared funcs and methods, function literals,
				// interface methods, and named function types alike.
				out = append(out, c.checkParams(pkg, n)...)
			case *ast.StructType:
				out = append(out, c.checkFields(pkg, n)...)
			case *ast.CallExpr:
				if !banRoots {
					return true
				}
				fn := funcObj(pkg.Info, n)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
					return true
				}
				if name := fn.Name(); name == "Background" || name == "TODO" {
					out = append(out, Finding{
						Analyzer: c.Name(),
						Pos:      posOf(pkg, n.Pos()),
						Message:  "context." + name + "() originates a root context in a request path",
						Hint:     "accept a ctx parameter and derive from it; only lifecycle boundaries (main, Serve, clients) may mint roots",
					})
				}
			}
			return true
		})
	}
	return out
}

// checkParams flags a context.Context parameter that is not the first
// parameter of its signature.
func (c *CtxFlow) checkParams(pkg *Package, ft *ast.FuncType) []Finding {
	if ft.Params == nil {
		return nil
	}
	var out []Finding
	idx := 0
	for _, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1 // unnamed parameter still occupies a position
		}
		if isContextType(pkg, field.Type) && idx > 0 {
			out = append(out, Finding{
				Analyzer: c.Name(),
				Pos:      posOf(pkg, field.Pos()),
				Message:  "context.Context is not the first parameter",
				Hint:     "move ctx to the front: func F(ctx context.Context, ...)",
			})
		}
		idx += n
	}
	return out
}

// checkFields flags struct fields whose type is context.Context.
func (c *CtxFlow) checkFields(pkg *Package, st *ast.StructType) []Finding {
	var out []Finding
	for _, field := range st.Fields.List {
		if !isContextType(pkg, field.Type) {
			continue
		}
		out = append(out, Finding{
			Analyzer: c.Name(),
			Pos:      posOf(pkg, field.Pos()),
			Message:  "context.Context stored in a struct field",
			Hint:     "pass ctx as a parameter; a stored context outlives its request (use a Stop func() error hook if the package must stay context-free)",
		})
	}
	return out
}

// isContextType reports whether the expression's type is context.Context.
func isContextType(pkg *Package, expr ast.Expr) bool {
	tv, ok := pkg.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
