package lint

import (
	"go/token"
	"strings"
)

// Inline suppression. The directive
//
//	//tvdp:nolint <analyzer>[,<analyzer>...] <reason>
//
// silences the named analyzers on its own line and on the line directly
// below it (so a comment-only line can shield the statement it precedes).
// The reason is not decoration: a directive without one suppresses nothing
// and is itself reported, which is what keeps "shut the tool up" honest —
// every escape hatch in the tree carries its justification next to the
// code it excuses. The inventory is also kept live: a directive that
// suppresses nothing, in a run where every analyzer it names executed,
// is reported as stale so dead suppressions cannot accumulate.

const nolintPrefix = "tvdp:nolint"

// directive is one parsed, well-formed nolint comment.
type directive struct {
	analyzers map[string]bool
	names     []string // declaration order, for stale messages
	line      int
	file      string
	used      bool // suppressed at least one finding this run
}

// directiveSet indexes directives by file and line for suppression lookups.
type directiveSet map[string]map[int]*directive

// suppresses reports whether a finding is covered by a directive on its
// line or the line above, marking the directive used if so.
func (ds directiveSet) suppresses(f Finding) bool {
	lines := ds[f.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, ln := range [2]int{f.Pos.Line, f.Pos.Line - 1} {
		if d := lines[ln]; d != nil && d.analyzers[f.Analyzer] {
			d.used = true
			return true
		}
	}
	return false
}

// stale reports directives that suppressed nothing even though every
// analyzer they name ran — dead suppressions that would otherwise
// outlive the finding they once excused. Directives naming an analyzer
// outside the run set are left alone (a fixture or single-analyzer run
// cannot judge them).
func (ds directiveSet) stale(ran map[string]bool) []Finding {
	var out []Finding
	for _, lines := range ds {
		for _, d := range lines {
			if d.used {
				continue
			}
			all := true
			for name := range d.analyzers {
				if !ran[name] {
					all = false
					break
				}
			}
			if !all {
				continue
			}
			out = append(out, Finding{
				Analyzer: "nolint",
				Pos:      token.Position{Filename: d.file, Line: d.line, Column: 1},
				Message:  "nolint directive for " + strings.Join(d.names, ",") + " suppresses nothing here (stale)",
				Hint:     "the finding it excused is gone; delete the directive",
			})
		}
	}
	return out
}

// parseDirectives scans a package's comments for nolint directives.
// Malformed ones — no analyzer list, or no justification — come back as
// findings of the synthetic "nolint" analyzer and are excluded from the
// suppression set.
func parseDirectives(pkg *Package) (directiveSet, []Finding) {
	ds := directiveSet{}
	var bad []Finding
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text, ok := nolintText(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				names, reason := splitDirective(text)
				if len(names) == 0 {
					bad = append(bad, Finding{
						Analyzer: "nolint",
						Pos:      pos,
						Message:  "nolint directive names no analyzer",
						Hint:     "write //tvdp:nolint <analyzer> <reason>",
					})
					continue
				}
				if reason == "" {
					bad = append(bad, Finding{
						Analyzer: "nolint",
						Pos:      pos,
						Message:  "nolint directive for " + strings.Join(names, ",") + " has no justification; it suppresses nothing",
						Hint:     "append a reason: //tvdp:nolint " + strings.Join(names, ",") + " <why this is safe>",
					})
					continue
				}
				d := &directive{analyzers: map[string]bool{}, names: names, line: pos.Line, file: pos.Filename}
				for _, n := range names {
					d.analyzers[n] = true
				}
				if ds[pos.Filename] == nil {
					ds[pos.Filename] = map[int]*directive{}
				}
				ds[pos.Filename][pos.Line] = d
			}
		}
	}
	return ds, bad
}

// nolintText extracts the directive body from a comment, if it is one.
func nolintText(comment string) (string, bool) {
	var body string
	switch {
	case strings.HasPrefix(comment, "//"):
		body = strings.TrimPrefix(comment, "//")
	case strings.HasPrefix(comment, "/*"):
		body = strings.TrimSuffix(strings.TrimPrefix(comment, "/*"), "*/")
	default:
		return "", false
	}
	body = strings.TrimSpace(body)
	rest, ok := strings.CutPrefix(body, nolintPrefix)
	if !ok {
		return "", false
	}
	return strings.TrimSpace(rest), true
}

// splitDirective separates the analyzer list from the justification.
func splitDirective(text string) (names []string, reason string) {
	list, rest, _ := strings.Cut(text, " ")
	for _, n := range strings.Split(list, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names, strings.TrimSpace(rest)
}

// posOf is a tiny helper analyzers share.
func posOf(pkg *Package, pos token.Pos) token.Position { return pkg.Fset.Position(pos) }
