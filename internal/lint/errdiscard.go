package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// The errdiscard analyzer closes the quiet durability holes: a discarded
// Close, Sync, Flush, or Write error in the storage or API layer. A WAL
// whose final fsync error vanished is a log that lies about what is
// durable; a snapshot temp file whose Close error was dropped can install
// a truncated snapshot. `go vet` does not flag these (dropping an error
// is legal Go), and -race never will, so the rule lives here, scoped to
// the packages where a lost write error costs data or masks a failed
// read fan-out: internal/store, internal/api, internal/shard, and
// internal/query.
//
// Flagged shapes, when the method is named Close/Sync/Flush/Write and
// returns an error:
//
//	f.Close()            // expression statement
//	defer f.Close()      // deferred discard
//	go f.Close()         // goroutine discard
//	_ = f.Close()        // blank assignment
//
// Read-side closes whose error genuinely cannot lose data (a read-only
// fd, an HTTP response body) are the intended nolint sites — with the
// justification spelled out.

// ErrDiscard is the analyzer. Scope lists import-path prefixes it applies
// to; Methods is the checked method-name set.
type ErrDiscard struct {
	Scope   []string
	Methods []string
}

// ErrDiscardScope is the production scope: the layers where a lost
// write/close error can silently cost durable data, plus the shard
// fan-out and query cache tiers, whose goroutines and cache fills
// discard errors the same way.
var ErrDiscardScope = []string{
	"repro/internal/store",
	"repro/internal/api",
	"repro/internal/shard",
	"repro/internal/query",
	"repro/internal/ingest",
}

// NewErrDiscard returns the production-configured analyzer.
func NewErrDiscard() *ErrDiscard {
	return &ErrDiscard{
		Scope:   ErrDiscardScope,
		Methods: []string{"Close", "Sync", "Flush", "Write"},
	}
}

func (e *ErrDiscard) Name() string { return "errdiscard" }

// Doc describes the analyzer in one line.
func (e *ErrDiscard) Doc() string {
	return "Close/Sync/Flush/Write errors in the store, api, shard, and query layers must be handled, not dropped"
}

func (e *ErrDiscard) inScope(path string) bool {
	for _, p := range e.Scope {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// Check runs the analyzer over one package.
func (e *ErrDiscard) Check(pkg *Package) []Finding {
	if !e.inScope(pkg.Path) {
		return nil
	}
	methods := map[string]bool{}
	for _, m := range e.Methods {
		methods[m] = true
	}
	var out []Finding
	report := func(call *ast.CallExpr, how string) {
		fn := e.checkedMethod(pkg, call, methods)
		if fn == nil {
			return
		}
		out = append(out, Finding{
			Analyzer: e.Name(),
			Pos:      posOf(pkg, call.Pos()),
			Message:  fmt.Sprintf("%s error discarded (%s)", fn.Name(), how),
			Hint:     "handle it — propagate, errors.Join into the returned error, or log; a dropped " + fn.Name() + " error can hide lost writes",
		})
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
					report(call, "call result unused")
				}
			case *ast.DeferStmt:
				report(n.Call, "deferred without capturing the error")
			case *ast.GoStmt:
				report(n.Call, "goroutine result unused")
			case *ast.AssignStmt:
				if !allBlank(n.Lhs) {
					return true
				}
				for _, rhs := range n.Rhs {
					if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
						report(call, "assigned to _")
					}
				}
			}
			return true
		})
	}
	return out
}

// checkedMethod returns the called method if it is one of the checked
// names and its signature returns an error.
func (e *ErrDiscard) checkedMethod(pkg *Package, call *ast.CallExpr, methods map[string]bool) *types.Func {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, _ := pkg.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil || !methods[fn.Name()] {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
			return fn
		}
	}
	return nil
}

func allBlank(lhs []ast.Expr) bool {
	for _, l := range lhs {
		id, ok := ast.Unparen(l).(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}
