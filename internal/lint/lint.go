// Package lint is TVDP's in-tree static-analysis engine. It exists because
// the platform's most load-bearing invariants — the store's six-lock
// acquisition order, the pipeline's determinism contract, the rule that
// every WAL frame flows through the group-commit committer — are invisible
// to the compiler and to `go test -race`. The race detector observes one
// schedule; these analyzers read the source and reject programs whose
// *possible* schedules or replays violate the contracts.
//
// The engine is stdlib-only: packages are parsed with go/parser and
// type-checked with go/types, stdlib imports resolve through go/importer's
// source importer, and module-internal imports resolve through the checked
// packages themselves (see load.go). No golang.org/x/tools dependency.
//
// Findings can be suppressed inline with
//
//	//tvdp:nolint <analyzer>[,<analyzer>...] <reason>
//
// on the offending line or the line directly above it. The reason is
// mandatory: a directive without one suppresses nothing and is itself
// reported (see nolint.go).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Finding is one invariant violation: where, which analyzer, what broke,
// and a one-line hint at the idiomatic fix.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
	Hint     string
}

// String renders the finding in the file:line:col form editors understand.
func (f Finding) String() string {
	s := fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
	if f.Hint != "" {
		s += " (fix: " + f.Hint + ")"
	}
	return s
}

// Package is one loaded, type-checked package handed to analyzers.
type Package struct {
	// Path is the import path ("repro/internal/store"); fixture packages
	// loaded from a bare directory get "fixture/<dirname>".
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Analyzer is one invariant checker. Check must be deterministic: same
// package in, same findings out, in a stable order.
type Analyzer interface {
	// Name is the registry key used in findings and nolint directives.
	Name() string
	// Doc is the one-line description `tvdp-lint -list` prints.
	Doc() string
	Check(pkg *Package) []Finding
}

// DefaultAnalyzers returns the production-configured analyzer registry.
func DefaultAnalyzers() []Analyzer {
	return []Analyzer{
		NewLockOrder(),
		NewDeterminism(),
		NewWALPath(),
		NewErrDiscard(),
		NewCtxFlow(),
		NewSqrtScan(),
		NewGuardedBy(),
		NewGoLifecycle(),
		NewFsyncOrder(),
	}
}

// Run executes every analyzer over every package, applies nolint
// suppression, and returns the surviving findings sorted by position.
// Malformed directives (no justification) are reported as findings of the
// synthetic "nolint" analyzer and do not suppress anything; well-formed
// directives that suppressed nothing — judged only when every analyzer
// they name is part of this run — are reported as stale.
func Run(pkgs []*Package, analyzers []Analyzer) []Finding {
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name()] = true
	}
	var out []Finding
	for _, pkg := range pkgs {
		dirs, bad := parseDirectives(pkg)
		out = append(out, bad...)
		for _, a := range analyzers {
			for _, f := range a.Check(pkg) {
				if dirs.suppresses(f) {
					continue
				}
				out = append(out, f)
			}
		}
		out = append(out, dirs.stale(ran)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out
}

// funcObj resolves a call expression to the package-level *types.Func it
// invokes (through a plain identifier or a method/package selector), or nil
// when the callee is not a statically known function (function values,
// built-ins, conversions).
func funcObj(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// deref unwraps pointer types.
func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}
