package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The golifecycle analyzer proves that every goroutine the serving tiers
// spawn can be joined: the committer, flush worker, and compactor must
// all be drained by Close, and the shard fan-out must not outlive its
// query. A `go` statement passes if its body exhibits one of three join
// shapes:
//
//  1. WaitGroup: the body calls Done on a sync.WaitGroup (the spawner is
//     expected to Wait; pairing Add/Wait is lockorder-of-the-future work,
//     but an un-Done'd goroutine is the leak that actually bites).
//  2. Done-channel: the body closes a channel that some function in the
//     package receives from (select, unary receive, or range) — the
//     committer's close(c.done) / <-c.done handshake.
//  3. Drained queue: the body ranges over a channel that the package
//     closes somewhere — a worker that exits when its feed is closed.
//
// Anything else — including `go pkg.Func()` into another package, whose
// body we cannot inspect — is a finding. Channels are matched by their
// types.Object (the field or variable), not by name.

// GoLifecycle is the analyzer. Scope limits it to the packages whose
// goroutines must provably join.
type GoLifecycle struct {
	Scope []string
}

// GoLifecycleScope is the production configuration: the serving tiers.
var GoLifecycleScope = []string{
	"repro/internal/store",
	"repro/internal/shard",
	"repro/internal/query",
	"repro/internal/api",
	"repro/internal/ingest",
}

// NewGoLifecycle returns the production-configured analyzer.
func NewGoLifecycle() *GoLifecycle { return &GoLifecycle{Scope: GoLifecycleScope} }

func (g *GoLifecycle) Name() string { return "golifecycle" }

// Doc describes the analyzer in one line.
func (g *GoLifecycle) Doc() string {
	return "every go statement in the serving tiers must have a provable join path (WaitGroup, done-channel, or close-drained queue)"
}

func (g *GoLifecycle) inScope(path string) bool {
	for _, p := range g.Scope {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// chanObj resolves an expression to the object of a channel-typed field
// or variable, the identity used to pair close sites with receive sites.
func chanObj(pkg *Package, e ast.Expr) types.Object {
	var obj types.Object
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = pkg.Info.Uses[e]
	case *ast.SelectorExpr:
		obj = pkg.Info.Uses[e.Sel]
	}
	if obj == nil {
		return nil
	}
	if _, ok := obj.Type().Underlying().(*types.Chan); !ok {
		return nil
	}
	return obj
}

// closeTarget returns the channel object if call is close(ch).
func closeTarget(pkg *Package, call *ast.CallExpr) types.Object {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || len(call.Args) != 1 {
		return nil
	}
	if b, ok := pkg.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "close" {
		return nil
	}
	return chanObj(pkg, call.Args[0])
}

// Check runs the analyzer over one package.
func (g *GoLifecycle) Check(pkg *Package) []Finding {
	if !g.inScope(pkg.Path) {
		return nil
	}

	// Package-wide facts: which channel objects are received from, which
	// are closed, and each function's body for go-method resolution.
	received := map[types.Object]bool{}
	closed := map[types.Object]bool{}
	bodies := map[*types.Func]*ast.BlockStmt{}
	for _, file := range pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				bodies[fn] = fd.Body
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					if obj := chanObj(pkg, n.X); obj != nil {
						received[obj] = true
					}
				}
			case *ast.RangeStmt:
				if obj := chanObj(pkg, n.X); obj != nil {
					received[obj] = true
				}
			case *ast.CallExpr:
				if obj := closeTarget(pkg, n); obj != nil {
					closed[obj] = true
				}
			}
			return true
		})
	}

	// joined reports whether a goroutine body proves one of the three
	// join shapes.
	joined := func(body *ast.BlockStmt) bool {
		ok := false
		ast.Inspect(body, func(n ast.Node) bool {
			if ok {
				return false
			}
			switch n := n.(type) {
			case *ast.CallExpr:
				// Shape 1: wg.Done().
				if sel, isSel := ast.Unparen(n.Fun).(*ast.SelectorExpr); isSel && sel.Sel.Name == "Done" {
					if fn, isFn := pkg.Info.Uses[sel.Sel].(*types.Func); isFn && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
						ok = true
					}
				}
				// Shape 2: close(ch) where the package receives from ch.
				if obj := closeTarget(pkg, n); obj != nil && received[obj] {
					ok = true
				}
			case *ast.RangeStmt:
				// Shape 3: ranging a channel the package closes.
				if obj := chanObj(pkg, n.X); obj != nil && closed[obj] {
					ok = true
				}
			}
			return true
		})
		return ok
	}

	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			var body *ast.BlockStmt
			switch {
			case isFuncLit(gs.Call.Fun):
				body = ast.Unparen(gs.Call.Fun).(*ast.FuncLit).Body
			default:
				if fn := funcObj(pkg.Info, gs.Call); fn != nil && fn.Pkg() == pkg.Pkg {
					body = bodies[fn]
				}
			}
			if body == nil {
				out = append(out, Finding{
					Analyzer: "golifecycle",
					Pos:      posOf(pkg, gs.Pos()),
					Message:  "goroutine target is not a same-package function; no join path is provable",
					Hint:     "spawn a local function (or literal) that signals a WaitGroup or closes a drained channel",
				})
				return true
			}
			if !joined(body) {
				out = append(out, Finding{
					Analyzer: "golifecycle",
					Pos:      posOf(pkg, gs.Pos()),
					Message:  "goroutine has no provable join path (no WaitGroup.Done, no close of a received channel, no range over a closed channel)",
					Hint:     "give the goroutine a join handle: defer wg.Done(), defer close(done) with a matching receive, or range a queue that Close drains",
				})
			}
			return true
		})
	}
	return out
}

func isFuncLit(e ast.Expr) bool {
	_, ok := ast.Unparen(e).(*ast.FuncLit)
	return ok
}
