package query

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/feature"
	"repro/internal/geo"
	"repro/internal/imagesim"
	"repro/internal/store"
	"repro/internal/synth"
)

var la = geo.Point{Lat: 34.0522, Lon: -118.2437}

// fixture builds a store with 30 images laid out on a ring around LA:
// image i sits at bearing i*12 degrees, 500 m out, captured i minutes
// after the epoch, with feature vector {i, 0}, label i%5, and keyword
// tagging from the class pools.
type fixture struct {
	st      *store.Store
	eng     *Engine
	ids     []uint64
	classID uint64
	epoch   time.Time
}

func setup(t *testing.T, hybrid bool) *fixture {
	t.Helper()
	cfg := store.DefaultConfig()
	if hybrid {
		cfg.HybridKinds = []string{string(feature.KindColorHist)}
	}
	st, err := store.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	classID, err := st.CreateClassification("street_cleanliness", synth.ClassNames[:])
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{st: st, eng: New(st), classID: classID,
		epoch: time.Date(2019, 2, 1, 6, 0, 0, 0, time.UTC)}
	kw := []string{"tent", "trash", "weeds", "couch", "clean"}
	for i := 0; i < 30; i++ {
		px := imagesim.MustNew(8, 8)
		cam := geo.Destination(la, float64(i*12), 500)
		id, err := st.AddImage(store.Image{
			FOV:                geo.FOV{Camera: cam, Direction: 0, Angle: 60, Radius: 80},
			Pixels:             px,
			TimestampCapturing: f.epoch.Add(time.Duration(i) * time.Minute),
			WorkerID:           "w",
		})
		if err != nil {
			t.Fatal(err)
		}
		f.ids = append(f.ids, id)
		if err := st.PutFeature(id, string(feature.KindColorHist), []float64{float64(i), 0}); err != nil {
			t.Fatal(err)
		}
		if err := st.Annotate(store.Annotation{
			ImageID: id, ClassificationID: classID, Label: i % 5,
			Confidence: 0.5 + float64(i%5)*0.1, Source: store.SourceMachine,
		}); err != nil {
			t.Fatal(err)
		}
		if err := st.AddKeywords(id, []string{kw[i%5]}); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func TestEmptyQuery(t *testing.T) {
	f := setup(t, false)
	if _, _, err := f.eng.Run(context.Background(), Query{}); !errors.Is(err, ErrEmptyQuery) {
		t.Fatalf("err = %v", err)
	}
}

func TestSpatialRange(t *testing.T) {
	f := setup(t, false)
	// Rect around image 0's camera.
	img, _ := f.st.GetImage(f.ids[0])
	r := geo.NewRect(geo.Destination(img.FOV.Camera, 315, 150), geo.Destination(img.FOV.Camera, 135, 150))
	got, err := f.eng.SpatialRange(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, res := range got {
		if res.ID == f.ids[0] {
			found = true
		}
	}
	if !found {
		t.Fatalf("image 0 not in spatial range: %+v", got)
	}
	if len(got) > 6 {
		t.Fatalf("range too wide: %d hits", len(got))
	}
}

func TestKNearest(t *testing.T) {
	f := setup(t, false)
	img, _ := f.st.GetImage(f.ids[7])
	got, err := f.eng.KNearest(context.Background(), img.FOV.Camera, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].ID != f.ids[7] {
		t.Fatalf("knearest = %+v", got)
	}
}

func TestVisualTopK(t *testing.T) {
	f := setup(t, false)
	got, err := f.eng.VisualTopK(context.Background(), string(feature.KindColorHist), []float64{12, 0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || got[0].ID != f.ids[12] {
		t.Fatalf("visual top = %+v", got)
	}
	if got[0].Score != 0 {
		t.Fatalf("exact match score = %v", got[0].Score)
	}
}

func TestVisualExactAndRadius(t *testing.T) {
	f := setup(t, false)
	got, plan, err := f.eng.Run(context.Background(), Query{Visual: &VisualClause{
		Kind: string(feature.KindColorHist), Vec: []float64{12, 0}, K: 3, Exact: true}})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Driving != "visual" || got[0].ID != f.ids[12] {
		t.Fatalf("exact visual: plan=%v got=%+v", plan, got)
	}
	got, _, err = f.eng.Run(context.Background(), Query{Visual: &VisualClause{
		Kind: string(feature.KindColorHist), Vec: []float64{12, 0}, Radius: 1.5}})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range got {
		if r.Score > 1.5 {
			t.Fatalf("radius exceeded: %+v", r)
		}
	}
}

func TestCategorical(t *testing.T) {
	f := setup(t, false)
	got, err := f.eng.ByLabel(context.Background(), "street_cleanliness", "Encampment")
	if err != nil {
		t.Fatal(err)
	}
	// Encampment = class 2; images 2, 7, 12, ...
	if len(got) != 6 {
		t.Fatalf("encampment count = %d", len(got))
	}
	for _, r := range got {
		anns := f.st.AnnotationsFor(r.ID)
		if anns[0].Label != int(synth.Encampment) {
			t.Fatalf("wrong label in results: %+v", anns)
		}
	}
	if _, err := f.eng.ByLabel(context.Background(), "street_cleanliness", "NoSuchLabel"); err == nil {
		t.Fatal("unknown label accepted")
	}
	if _, err := f.eng.ByLabel(context.Background(), "nope", "Clean"); err == nil {
		t.Fatal("unknown classification accepted")
	}
}

func TestCategoricalMinConfidence(t *testing.T) {
	f := setup(t, false)
	// Encampment annotations carry confidence 0.7 in the fixture.
	got, _, err := f.eng.Run(context.Background(), Query{Categorical: &CategoricalClause{
		Classification: "street_cleanliness", Label: "Encampment", MinConfidence: 0.9}})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("high-confidence filter passed %d", len(got))
	}
	got, _, err = f.eng.Run(context.Background(), Query{Categorical: &CategoricalClause{
		Classification: "street_cleanliness", Label: "Encampment", MinConfidence: 0.6}})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("mid-confidence filter passed %d", len(got))
	}
}

func TestTextual(t *testing.T) {
	f := setup(t, false)
	got, err := f.eng.ByKeywords(context.Background(), "tent")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("tent matches = %d", len(got))
	}
	got, plan, err := f.eng.Run(context.Background(), Query{Textual: &TextualClause{Terms: []string{"tent", "trash"}, MatchAll: true}})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Driving != "textual" || len(got) != 0 {
		t.Fatalf("conjunctive over disjoint keywords: %+v", got)
	}
}

func TestTemporal(t *testing.T) {
	f := setup(t, false)
	got, err := f.eng.TimeRange(context.Background(), f.epoch, f.epoch.Add(4*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("temporal hits = %d", len(got))
	}
}

func TestHybridSpatialVisualUsesHybridTree(t *testing.T) {
	f := setup(t, true)
	everywhere := geo.NewRect(geo.Destination(la, 315, 2000), geo.Destination(la, 135, 2000))
	got, plan, err := f.eng.SpatialVisual(context.Background(), everywhere, string(feature.KindColorHist), []float64{5, 0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Driving != "hybrid" {
		t.Fatalf("plan = %v", plan)
	}
	if got[0].ID != f.ids[5] {
		t.Fatalf("hybrid top = %+v", got)
	}
}

func TestHybridFallsBackToTwoPhase(t *testing.T) {
	f := setup(t, false) // no hybrid tree maintained
	everywhere := geo.NewRect(geo.Destination(la, 315, 2000), geo.Destination(la, 135, 2000))
	got, plan, err := f.eng.SpatialVisual(context.Background(), everywhere, string(feature.KindColorHist), []float64{5, 0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Driving == "hybrid" {
		t.Fatalf("unexpected hybrid plan: %v", plan)
	}
	if got[0].ID != f.ids[5] {
		t.Fatalf("two-phase top = %+v", got)
	}
	// The explicit two-phase helper agrees.
	tp, err := f.eng.TwoPhaseSpatialVisual(context.Background(), everywhere, string(feature.KindColorHist), []float64{5, 0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tp) != len(got) {
		t.Fatalf("two-phase %d vs planner %d", len(tp), len(got))
	}
	for i := range tp {
		if tp[i].ID != got[i].ID {
			t.Fatalf("two-phase order differs at %d: %v vs %v", i, tp[i], got[i])
		}
	}
}

func TestHybridAndTwoPhaseAgree(t *testing.T) {
	f := setup(t, true)
	everywhere := geo.NewRect(geo.Destination(la, 315, 2000), geo.Destination(la, 135, 2000))
	hy, plan, err := f.eng.SpatialVisual(context.Background(), everywhere, string(feature.KindColorHist), []float64{13, 0}, 5)
	if err != nil || plan.Driving != "hybrid" {
		t.Fatalf("hybrid run: %v %v", plan, err)
	}
	tp, err := f.eng.TwoPhaseSpatialVisual(context.Background(), everywhere, string(feature.KindColorHist), []float64{13, 0}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(hy) != len(tp) {
		t.Fatalf("result sizes differ: %d vs %d", len(hy), len(tp))
	}
	for i := range hy {
		if hy[i].ID != tp[i].ID || math.Abs(math.Sqrt(tp[i].Score)-hy[i].Score) > 1e-9 {
			t.Fatalf("rank %d differs: hybrid %+v two-phase %+v", i, hy[i], tp[i])
		}
	}
}

func TestCategoricalSpatialCombination(t *testing.T) {
	f := setup(t, false)
	// Encampment images near image 2's camera only.
	img, _ := f.st.GetImage(f.ids[2])
	r := geo.NewRect(geo.Destination(img.FOV.Camera, 315, 200), geo.Destination(img.FOV.Camera, 135, 200))
	got, plan, err := f.eng.Run(context.Background(), Query{
		Categorical: &CategoricalClause{Classification: "street_cleanliness", Label: "Encampment"},
		Spatial:     &SpatialClause{Rect: &r},
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Driving != "categorical" {
		t.Fatalf("plan = %v", plan)
	}
	if len(got) == 0 {
		t.Fatal("no results")
	}
	for _, res := range got {
		im, _ := f.st.GetImage(res.ID)
		if !im.Scene.Intersects(r) {
			t.Fatalf("spatial filter leaked %d", res.ID)
		}
	}
}

func TestTemporalTextualCombination(t *testing.T) {
	f := setup(t, false)
	got, plan, err := f.eng.Run(context.Background(), Query{
		Temporal: &TemporalClause{From: f.epoch, To: f.epoch.Add(9 * time.Minute)},
		Textual:  &TextualClause{Terms: []string{"tent"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Driving != "temporal" {
		t.Fatalf("plan = %v", plan)
	}
	// Images 0..9 with keyword tent: ids 0 and 5.
	if len(got) != 2 {
		t.Fatalf("combined hits = %d (%+v)", len(got), got)
	}
}

func TestVisualRerankWithCategoricalDriver(t *testing.T) {
	f := setup(t, false)
	got, plan, err := f.eng.Run(context.Background(), Query{
		Categorical: &CategoricalClause{Classification: "street_cleanliness", Label: "Clean"},
		Visual:      &VisualClause{Kind: string(feature.KindColorHist), Vec: []float64{14, 0}, K: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Driving != "categorical" {
		t.Fatalf("plan = %v", plan)
	}
	// Clean = label 4: images 4, 9, 14, 19, 24, 29. Nearest to 14: 14 then
	// 9 or 19 (tie broken by id).
	if len(got) != 2 || got[0].ID != f.ids[14] || got[1].ID != f.ids[9] {
		t.Fatalf("re-ranked = %+v", got)
	}
}

func TestLimit(t *testing.T) {
	f := setup(t, false)
	got, _, err := f.eng.Run(context.Background(), Query{
		Textual: &TextualClause{Terms: []string{"tent"}},
		Limit:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("limit ignored: %d", len(got))
	}
}

func TestPlanString(t *testing.T) {
	f := setup(t, false)
	_, plan, err := f.eng.Run(context.Background(), Query{Textual: &TextualClause{Terms: []string{"tent"}}})
	if err != nil {
		t.Fatal(err)
	}
	if plan.String() == "" || plan.Driving == "" {
		t.Fatal("plan rendering empty")
	}
}

func TestSpatialTextualHelper(t *testing.T) {
	f := setup(t, false)
	// Region around image 0 only; image 0 carries keyword "tent".
	img, _ := f.st.GetImage(f.ids[0])
	r := geo.NewRect(geo.Destination(img.FOV.Camera, 315, 200), geo.Destination(img.FOV.Camera, 135, 200))
	got, plan, err := f.eng.SpatialTextual(context.Background(), r, "tent")
	if err != nil {
		t.Fatal(err)
	}
	// Disjunctive text ranks below a spatial rect in driver selectivity,
	// so the r-tree drives and keywords filter.
	if plan.Driving != "spatial" {
		t.Fatalf("plan = %v", plan)
	}
	if len(got) != 1 || got[0].ID != f.ids[0] {
		t.Fatalf("spatial-textual = %+v", got)
	}
	// Outside the region: no hits even though the keyword matches.
	far := geo.NewRect(geo.Destination(la, 0, 50000), geo.Destination(la, 0, 51000))
	got, _, err = f.eng.SpatialTextual(context.Background(), far, "tent")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("far region matched: %+v", got)
	}
}

func TestCrossSchemeCategoricals(t *testing.T) {
	f := setup(t, false)
	// A second, orthogonal scheme: even-indexed images are "tagged".
	gid, err := f.st.CreateClassification("graffiti", []string{"No Graffiti", "Graffiti"})
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range f.ids {
		label := 0
		if i%2 == 0 {
			label = 1
		}
		if err := f.st.Annotate(store.Annotation{
			ImageID: id, ClassificationID: gid, Label: label, Confidence: 1,
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Encampment (i%5==2: 2,7,12,17,22,27) AND Graffiti (even): 2,12,22.
	got, plan, err := f.eng.Run(context.Background(), Query{
		Categorical: &CategoricalClause{Classification: "street_cleanliness", Label: "Encampment"},
		Categoricals: []CategoricalClause{
			{Classification: "graffiti", Label: "Graffiti"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Driving != "categorical" {
		t.Fatalf("plan = %v", plan)
	}
	if len(got) != 3 {
		t.Fatalf("cross-scheme hits = %d (%+v)", len(got), got)
	}
	for _, r := range got {
		idx := -1
		for i, id := range f.ids {
			if id == r.ID {
				idx = i
			}
		}
		if idx%5 != 2 || idx%2 != 0 {
			t.Fatalf("wrong hit index %d", idx)
		}
	}
	// List-only form (no sugar field) also works.
	got2, _, err := f.eng.Run(context.Background(), Query{
		Categoricals: []CategoricalClause{
			{Classification: "graffiti", Label: "Graffiti"},
			{Classification: "street_cleanliness", Label: "Encampment"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != 3 {
		t.Fatalf("list-form hits = %d", len(got2))
	}
}

// --- cancellation semantics -----------------------------------------------

// TestRunCancelledReturnsPromptly pins the request-lifecycle contract at
// the query layer: a context cancelled before (or during) Run surfaces
// context.Canceled — not a partial result set — and does so at the next
// checkpoint, for every clause family.
func TestRunCancelledReturnsPromptly(t *testing.T) {
	f := setup(t, false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := geo.NewRect(geo.Destination(la, 315, 600), geo.Destination(la, 135, 600))
	queries := []Query{
		{Spatial: &SpatialClause{Rect: &r}},
		{Visual: &VisualClause{Kind: string(feature.KindColorHist), Vec: []float64{3, 0}, K: 5}},
		{Categorical: &CategoricalClause{Classification: "street_cleanliness", Label: "Encampment"}},
		{Textual: &TextualClause{Terms: []string{"tent"}}},
		{Temporal: &TemporalClause{From: f.epoch, To: f.epoch.Add(time.Hour)}},
		{
			Categorical: &CategoricalClause{Classification: "street_cleanliness", Label: "Clean"},
			Visual:      &VisualClause{Kind: string(feature.KindColorHist), Vec: []float64{14, 0}, K: 2},
		},
	}
	for i, q := range queries {
		if _, _, err := f.eng.Run(ctx, q); !errors.Is(err, context.Canceled) {
			t.Errorf("query %d: err = %v, want context.Canceled", i, err)
		}
	}
}

// TestRunDeadlineExceeded drives an already-expired deadline through Run
// and expects context.DeadlineExceeded — the error the API layer maps to
// HTTP 504.
func TestRunDeadlineExceeded(t *testing.T) {
	f := setup(t, false)
	ctx, cancel := context.WithDeadline(context.Background(), f.epoch) // long past
	defer cancel()
	_, _, err := f.eng.Run(ctx, Query{Textual: &TextualClause{Terms: []string{"tent"}}})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestHelpersPropagateCancellation covers the convenience entry points —
// each must observe the caller's context, not swallow it.
func TestHelpersPropagateCancellation(t *testing.T) {
	f := setup(t, false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := geo.NewRect(geo.Destination(la, 315, 600), geo.Destination(la, 135, 600))
	checks := []struct {
		name string
		call func() error
	}{
		{"SpatialRange", func() error { _, err := f.eng.SpatialRange(ctx, r); return err }},
		{"KNearest", func() error { _, err := f.eng.KNearest(ctx, la, 3); return err }},
		{"VisualTopK", func() error {
			_, err := f.eng.VisualTopK(ctx, string(feature.KindColorHist), []float64{1, 0}, 3)
			return err
		}},
		{"ByLabel", func() error { _, err := f.eng.ByLabel(ctx, "street_cleanliness", "Clean"); return err }},
		{"ByKeywords", func() error { _, err := f.eng.ByKeywords(ctx, "tent"); return err }},
		{"TimeRange", func() error { _, err := f.eng.TimeRange(ctx, f.epoch, f.epoch.Add(time.Hour)); return err }},
		{"SpatialTextual", func() error { _, _, err := f.eng.SpatialTextual(ctx, r, "tent"); return err }},
		{"TwoPhaseSpatialVisual", func() error {
			_, err := f.eng.TwoPhaseSpatialVisual(ctx, r, string(feature.KindColorHist), []float64{1, 0}, 3)
			return err
		}},
	}
	for _, c := range checks {
		if err := c.call(); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", c.name, err)
		}
	}
}
