// Package query is TVDP's query engine (paper §IV-C). It exposes the five
// single-modal query types — spatial, visual, categorical, textual,
// temporal — and hybrid combinations of them over the store's secondary
// indexes, with a small planner that picks the driving index by estimated
// selectivity and explains the chosen plan.
package query

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/geo"
	"repro/internal/index"
	"repro/internal/store"
	"repro/internal/vecmath"
)

// scanCheckpoint is the cancellation-poll cadence of the engine's
// candidate loops (filter predicates, visual re-rank, two-phase fetch):
// ctx.Err is consulted once per this many candidates, bounding how much
// work a cancelled query performs past the cancellation instant.
const scanCheckpoint = 256

// Engine executes queries against one store, optionally through a
// generation-stamped singleflight result cache (see cache.go).
type Engine struct {
	st    store.Backend
	cache *resultCache
}

// New returns an uncached engine over st: every Run executes.
func New(st store.Backend) *Engine { return &Engine{st: st} }

// defaultCacheCapacity bounds the cached engine's LRU when the caller
// passes a non-positive capacity.
const defaultCacheCapacity = 512

// NewCached returns an engine whose Run memoizes results in a bounded
// LRU keyed by the canonicalized query, deduplicates concurrent
// identical executions (singleflight), and invalidates on any store
// write via the store's mutation generation. capacity <= 0 selects
// defaultCacheCapacity.
func NewCached(st store.Backend, capacity int) *Engine {
	if capacity <= 0 {
		capacity = defaultCacheCapacity
	}
	return &Engine{st: st, cache: newResultCache(capacity)}
}

// Result is one ranked hit.
type Result struct {
	ID uint64
	// Score is clause-dependent: visual distance (ascending is better),
	// TF-IDF score (descending is better), or 0 for unranked filters.
	Score float64
}

// SpatialClause restricts results to a geographic region or ranks by
// proximity to a point.
type SpatialClause struct {
	// Rect filters to scenes intersecting the rectangle.
	Rect *geo.Rect
	// Near ranks by proximity to the point (used with K).
	Near *geo.Point
	// K bounds Near-driven results.
	K int
}

// VisualClause ranks by feature-space similarity to an example image's
// feature vector.
type VisualClause struct {
	Kind string
	Vec  []float64
	// K bounds results; Radius instead returns all within the distance
	// when > 0.
	K      int
	Radius float64
	// Exact forces a full-precision linear scan instead of LSH (ground
	// truth).
	Exact bool
	// Quant forces a linear scan over int8 quantized codes with exact
	// re-rank of the shortlist — the fast approximate baseline. Exact
	// wins when both are set.
	Quant bool
}

// CategoricalClause filters to images annotated with a label.
type CategoricalClause struct {
	Classification string
	Label          string
	// MinConfidence drops weaker machine annotations.
	MinConfidence float64
}

// TextualClause filters/ranks by manual keywords.
type TextualClause struct {
	Terms []string
	// MatchAll requires every term (conjunctive).
	MatchAll bool
}

// TemporalClause filters by capture time.
type TemporalClause struct {
	From, To time.Time
}

// Query combines clauses; nil clauses are absent. The engine intersects
// all present clauses and ranks by the most informative one.
type Query struct {
	Spatial     *SpatialClause
	Visual      *VisualClause
	Categorical *CategoricalClause
	// Categoricals holds additional label restrictions, possibly under
	// different classification schemes — the cross-scheme translational
	// query of §VII-B (e.g. Encampment AND Graffiti). The most selective
	// drives; the rest filter.
	Categoricals []CategoricalClause
	Textual      *TextualClause
	Temporal     *TemporalClause
	// Limit bounds the result count (0 = no bound).
	Limit int
}

// categoricals merges the sugar field into the list form.
func (q Query) categoricals() []CategoricalClause {
	var out []CategoricalClause
	if q.Categorical != nil {
		out = append(out, *q.Categorical)
	}
	return append(out, q.Categoricals...)
}

// Plan records how a query executed, for observability and tests.
type Plan struct {
	Driving string
	Steps   []string
}

// String implements fmt.Stringer.
func (p Plan) String() string {
	return fmt.Sprintf("driving=%s steps=[%s]", p.Driving, strings.Join(p.Steps, " -> "))
}

// ErrEmptyQuery reports a query with no clauses.
var ErrEmptyQuery = errors.New("query: no clauses")

// Run plans and executes q. The engine checks ctx at every stage boundary
// and at scanCheckpoint cadence inside candidate loops; a cancelled query
// returns ctx's error (context.Canceled / DeadlineExceeded) promptly,
// bounded by one checkpoint grain of work. On a cached engine
// (NewCached) Run may serve a memoized result or share a concurrent
// identical execution; the plan then records it as a cache step.
func (e *Engine) Run(ctx context.Context, q Query) ([]Result, Plan, error) {
	if e.cache != nil {
		return e.runCached(ctx, q)
	}
	return e.runUncached(ctx, q)
}

func (e *Engine) runUncached(ctx context.Context, q Query) ([]Result, Plan, error) {
	if q.Spatial == nil && q.Visual == nil && q.Categorical == nil &&
		len(q.Categoricals) == 0 && q.Textual == nil && q.Temporal == nil {
		return nil, Plan{}, ErrEmptyQuery
	}
	var plan Plan
	if err := ctx.Err(); err != nil {
		return nil, plan, err
	}

	// Single-pass hybrid path: spatial rect + visual top-k over a kind
	// with a maintained hybrid tree.
	if q.Spatial != nil && q.Spatial.Rect != nil && q.Visual != nil && q.Visual.K > 0 &&
		q.Visual.Radius == 0 && !q.Visual.Exact && !q.Visual.Quant &&
		len(q.categoricals()) == 0 && q.Textual == nil && q.Temporal == nil {
		ms, ok, err := e.st.SearchHybrid(ctx, q.Visual.Kind, *q.Spatial.Rect, q.Visual.Vec, q.Visual.K)
		if err != nil {
			return nil, plan, err
		}
		if ok {
			plan.Driving = "hybrid"
			plan.Steps = append(plan.Steps, "hybrid-tree spatial-visual search")
			out := make([]Result, len(ms))
			for i, m := range ms {
				out[i] = Result{ID: m.ID, Score: m.Dist}
			}
			return clip(out, q.Limit), plan, nil
		}
	}

	// Pick the driving clause by typical selectivity: categorical >
	// conjunctive text > temporal > spatial rect > visual > disjunctive
	// text > spatial near.
	cands, ordered, err := e.drive(ctx, q, &plan)
	if err != nil {
		return nil, plan, err
	}
	// Apply remaining clauses as filters.
	cands, err = e.filter(ctx, q, cands, &plan)
	if err != nil {
		return nil, plan, err
	}
	// Rank.
	out, err := e.rank(ctx, q, cands, ordered, &plan)
	if err != nil {
		return nil, plan, err
	}
	return clip(out, q.Limit), plan, nil
}

func clip(rs []Result, limit int) []Result {
	if limit > 0 && len(rs) > limit {
		return rs[:limit]
	}
	return rs
}

// candidate carries per-id state through filtering.
type candidate struct {
	id    uint64
	score float64
	// scored marks ids whose score came from the driving index.
	scored bool
}

// drive evaluates the most selective clause into a candidate list.
// ordered reports that the returned order is meaningful (distance or time)
// and must be preserved absent a re-ranking clause.
func (e *Engine) drive(ctx context.Context, q Query, plan *Plan) (cands []candidate, ordered bool, err error) {
	cats := q.categoricals()
	switch {
	case len(cats) > 0:
		plan.Driving = "categorical"
		plan.Steps = append(plan.Steps, "label index lookup")
		ids, err := e.labelIDs(ctx, cats[0])
		if err != nil {
			return nil, false, err
		}
		return asCandidates(ids), false, nil
	case q.Textual != nil && q.Textual.MatchAll:
		plan.Driving = "textual"
		plan.Steps = append(plan.Steps, "inverted index conjunctive lookup")
		ms, err := e.st.SearchTextAll(ctx, q.Textual.Terms)
		if err != nil {
			return nil, false, err
		}
		out := make([]candidate, len(ms))
		for i, m := range ms {
			out[i] = candidate{id: m.ID, score: m.Dist, scored: true}
		}
		return out, true, nil
	case q.Temporal != nil:
		plan.Driving = "temporal"
		plan.Steps = append(plan.Steps, "temporal index range scan")
		ids, err := e.st.SearchTime(ctx, q.Temporal.From, q.Temporal.To)
		if err != nil {
			return nil, false, err
		}
		return asCandidates(ids), true, nil
	case q.Spatial != nil && q.Spatial.Rect != nil:
		plan.Driving = "spatial"
		plan.Steps = append(plan.Steps, "r-tree range search")
		ids, err := e.st.SearchScene(ctx, *q.Spatial.Rect)
		if err != nil {
			return nil, false, err
		}
		return asCandidates(ids), false, nil
	case q.Visual != nil:
		plan.Driving = "visual"
		ms, err := e.visualMatches(ctx, *q.Visual, plan)
		if err != nil {
			return nil, false, err
		}
		out := make([]candidate, len(ms))
		for i, m := range ms {
			out[i] = candidate{id: m.id, score: m.score, scored: true}
		}
		return out, true, nil
	case q.Textual != nil:
		plan.Driving = "textual"
		plan.Steps = append(plan.Steps, "inverted index disjunctive lookup")
		ms, err := e.st.SearchText(ctx, q.Textual.Terms)
		if err != nil {
			return nil, false, err
		}
		out := make([]candidate, len(ms))
		for i, m := range ms {
			out[i] = candidate{id: m.ID, score: m.Dist, scored: true}
		}
		return out, true, nil
	case q.Spatial != nil && q.Spatial.Near != nil:
		plan.Driving = "spatial"
		plan.Steps = append(plan.Steps, "r-tree nearest-k search")
		k := q.Spatial.K
		if k <= 0 {
			k = q.Limit
		}
		if k <= 0 {
			k = 10
		}
		ids, err := e.st.SearchNearest(ctx, *q.Spatial.Near, k)
		if err != nil {
			return nil, false, err
		}
		return asCandidates(ids), true, nil
	default:
		return nil, false, fmt.Errorf("query: spatial clause needs Rect or Near")
	}
}

type scoredID struct {
	id    uint64
	score float64
}

func (e *Engine) visualMatches(ctx context.Context, v VisualClause, plan *Plan) ([]scoredID, error) {
	switch {
	case v.Exact:
		plan.Steps = append(plan.Steps, "exact visual scan")
		ms, err := e.st.SearchVisualExact(ctx, v.Kind, v.Vec, maxInt(v.K, 1))
		if err != nil {
			return nil, err
		}
		return toScored(ms), nil
	case v.Quant:
		plan.Steps = append(plan.Steps, "quantized visual scan")
		ms, err := e.st.SearchVisualQuant(ctx, v.Kind, v.Vec, maxInt(v.K, 1))
		if err != nil {
			return nil, err
		}
		return toScored(ms), nil
	case v.Radius > 0:
		plan.Steps = append(plan.Steps, "lsh radius probe")
		ms, err := e.st.SearchVisualRadius(ctx, v.Kind, v.Vec, v.Radius)
		if err != nil {
			return nil, err
		}
		return toScored(ms), nil
	default:
		plan.Steps = append(plan.Steps, "lsh top-k probe")
		ms, err := e.st.SearchVisual(ctx, v.Kind, v.Vec, maxInt(v.K, 1))
		if err != nil {
			return nil, err
		}
		return toScored(ms), nil
	}
}

func toScored(ms []index.Match) []scoredID {
	out := make([]scoredID, len(ms))
	for i, m := range ms {
		out[i] = scoredID{id: m.ID, score: m.Dist}
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func asCandidates(ids []uint64) []candidate {
	out := make([]candidate, len(ids))
	for i, id := range ids {
		out[i] = candidate{id: id}
	}
	return out
}

func (e *Engine) labelIDs(ctx context.Context, c CategoricalClause) ([]uint64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cls, err := e.st.ClassificationByName(c.Classification)
	if err != nil {
		return nil, err
	}
	label := -1
	for i, l := range cls.Labels {
		if l == c.Label {
			label = i
			break
		}
	}
	if label < 0 {
		return nil, fmt.Errorf("query: classification %q has no label %q", c.Classification, c.Label)
	}
	ids := e.st.ImagesByLabel(cls.ID, label)
	if c.MinConfidence <= 0 {
		return ids, nil
	}
	var out []uint64
	for i, id := range ids {
		if i%scanCheckpoint == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		for _, a := range e.st.AnnotationsFor(id) {
			if a.ClassificationID == cls.ID && a.Label == label && a.Confidence >= c.MinConfidence {
				out = append(out, id)
				break
			}
		}
	}
	return out, nil
}

// filter applies every non-driving clause as a predicate, polling ctx
// every scanCheckpoint candidates of the predicate loop.
func (e *Engine) filter(ctx context.Context, q Query, cands []candidate, plan *Plan) ([]candidate, error) {
	preds := make([]func(candidate) (bool, error), 0, 4)

	if q.Spatial != nil && q.Spatial.Rect != nil && plan.Driving != "spatial" && plan.Driving != "hybrid" {
		plan.Steps = append(plan.Steps, "spatial filter")
		r := *q.Spatial.Rect
		preds = append(preds, func(c candidate) (bool, error) {
			d, err := e.st.Describe(c.id)
			if err != nil {
				return false, err
			}
			return d.Scene.Intersects(r), nil
		})
	}
	if q.Temporal != nil && plan.Driving != "temporal" {
		plan.Steps = append(plan.Steps, "temporal filter")
		tc := *q.Temporal
		preds = append(preds, func(c candidate) (bool, error) {
			d, err := e.st.Describe(c.id)
			if err != nil {
				return false, err
			}
			ts := d.CapturedAt
			return !ts.Before(tc.From) && !ts.After(tc.To), nil
		})
	}
	cats := q.categoricals()
	// When categorical drove, the first clause is already applied; the
	// remaining clauses (possibly under other classification schemes)
	// filter.
	if plan.Driving == "categorical" {
		cats = cats[1:]
	}
	for _, cat := range cats {
		plan.Steps = append(plan.Steps, "categorical filter")
		ids, err := e.labelIDs(ctx, cat)
		if err != nil {
			return nil, err
		}
		set := make(map[uint64]bool, len(ids))
		for _, id := range ids {
			set[id] = true
		}
		preds = append(preds, func(c candidate) (bool, error) { return set[c.id], nil })
	}
	if q.Textual != nil && plan.Driving != "textual" {
		plan.Steps = append(plan.Steps, "textual filter")
		var ms []index.Match
		var err error
		if q.Textual.MatchAll {
			ms, err = e.st.SearchTextAll(ctx, q.Textual.Terms)
		} else {
			ms, err = e.st.SearchText(ctx, q.Textual.Terms)
		}
		if err != nil {
			return nil, err
		}
		set := make(map[uint64]bool, len(ms))
		for _, m := range ms {
			set[m.ID] = true
		}
		preds = append(preds, func(c candidate) (bool, error) { return set[c.id], nil })
	}

	if len(preds) == 0 {
		return cands, nil
	}
	out := cands[:0]
	for i, c := range cands {
		if i%scanCheckpoint == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		keep := true
		for _, p := range preds {
			ok, err := p(c)
			if err != nil {
				return nil, err
			}
			if !ok {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, c)
		}
	}
	return out, nil
}

// rank orders the surviving candidates, polling ctx every scanCheckpoint
// candidates of the visual re-rank scoring loop.
func (e *Engine) rank(ctx context.Context, q Query, cands []candidate, ordered bool, plan *Plan) ([]Result, error) {
	// Visual clause not used as driver: score candidates by feature
	// distance now.
	if q.Visual != nil && plan.Driving != "visual" && plan.Driving != "hybrid" {
		plan.Steps = append(plan.Steps, "visual re-rank")
		for i := range cands {
			if i%scanCheckpoint == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			vec, err := e.st.GetFeature(cands[i].id, q.Visual.Kind)
			if err != nil {
				// Images without the feature rank last.
				cands[i].score = -1
				cands[i].scored = false
				continue
			}
			if len(vec) != len(q.Visual.Vec) {
				return nil, fmt.Errorf("%w: query vec has %d dims, feature %q has %d",
					index.ErrDimMismatch, len(q.Visual.Vec), q.Visual.Kind, len(vec))
			}
			cands[i].score = vecmath.SquaredL2(vec, q.Visual.Vec)
			cands[i].scored = true
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].scored != cands[j].scored {
				return cands[i].scored
			}
			if cands[i].score != cands[j].score {
				return cands[i].score < cands[j].score
			}
			return cands[i].id < cands[j].id
		})
		if q.Visual.K > 0 && len(cands) > q.Visual.K {
			cands = cands[:q.Visual.K]
		}
	} else if plan.Driving == "textual" {
		// Text scores rank descending.
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].score != cands[j].score {
				return cands[i].score > cands[j].score
			}
			return cands[i].id < cands[j].id
		})
	} else if !ordered && !anyScored(cands) {
		sort.Slice(cands, func(i, j int) bool { return cands[i].id < cands[j].id })
	}
	out := make([]Result, len(cands))
	for i, c := range cands {
		out[i] = Result{ID: c.id, Score: c.score}
	}
	return out, nil
}

func anyScored(cands []candidate) bool {
	for _, c := range cands {
		if c.scored {
			return true
		}
	}
	return false
}
