package query

import (
	"container/list"
	"context"
	"math"
	"strconv"
	"strings"
	"sync"
)

// The result cache memoizes whole query executions behind a
// generation-stamped, singleflight-deduplicated LRU:
//
//   - Every entry is stamped with the store's data-plane mutation
//     generation observed *before* the query executed. A lookup serves
//     the entry only while store.Generation() still equals the stamp, so
//     any write — image, feature, annotation, keyword, classification,
//     video, delete — invalidates the whole cache at once. Conservative,
//     but never stale, and free on the write path (one atomic add).
//   - Concurrent identical queries collapse onto one execution
//     (singleflight): the first caller becomes the leader and runs the
//     query; followers block on its completion and share the result if
//     the leader saw the same generation and no error. A follower whose
//     generation differs, or whose leader failed (including leader
//     context cancellation), re-executes independently — a cancelled
//     leader must not poison unrelated callers.
//   - Capacity is bounded by LRU eviction.
//
// The cached path gives exactly the uncached path's consistency: store
// reads take per-call locks, so neither path snapshots across clauses.

// CacheStats counts cache outcomes since engine construction.
type CacheStats struct {
	// Hits served a stored result at a matching generation.
	Hits uint64
	// Misses executed the query (leader executions and independent
	// re-executions after a failed or mismatched flight).
	Misses uint64
	// Shared piggybacked on a concurrent leader's execution.
	Shared uint64
}

type cacheEntry struct {
	key  string
	gen  uint64
	out  []Result
	plan Plan
}

// flight is one in-progress leader execution followers may wait on.
type flight struct {
	done chan struct{}
	gen  uint64
	out  []Result
	plan Plan
	err  error
}

type resultCache struct {
	mu       sync.Mutex
	capacity int
	//tvdp:guardedby mu
	ll *list.List // front = most recently used
	//tvdp:guardedby mu
	entries map[string]*list.Element
	//tvdp:guardedby mu
	inflight map[string]*flight
	//tvdp:guardedby mu
	stats CacheStats
}

func newResultCache(capacity int) *resultCache {
	if capacity < 1 {
		capacity = 1
	}
	return &resultCache{
		capacity: capacity,
		ll:       list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*flight),
	}
}

// lookup returns a copy of the entry under key if it exists at exactly
// generation gen; a stale entry is evicted on sight.
func (c *resultCache) lookup(key string, gen uint64) ([]Result, Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	elem, ok := c.entries[key]
	if !ok {
		return nil, Plan{}, false
	}
	ent := elem.Value.(*cacheEntry)
	if ent.gen != gen {
		c.ll.Remove(elem)
		delete(c.entries, key)
		return nil, Plan{}, false
	}
	c.ll.MoveToFront(elem)
	c.stats.Hits++
	return copyResults(ent.out), copyPlan(ent.plan, "result-cache hit"), true
}

// insert stores a successful execution, evicting the LRU tail past
// capacity. The entry only ever serves while Generation() == gen, so
// inserting a result whose execution raced a write is harmless: the
// generation has already moved on and the entry is dead on arrival.
func (c *resultCache) insert(key string, gen uint64, out []Result, plan Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if elem, ok := c.entries[key]; ok {
		c.ll.Remove(elem)
		delete(c.entries, key)
	}
	ent := &cacheEntry{key: key, gen: gen, out: copyResults(out), plan: copyPlan(plan)}
	c.entries[key] = c.ll.PushFront(ent)
	for c.ll.Len() > c.capacity {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.entries, tail.Value.(*cacheEntry).key)
	}
}

func copyResults(rs []Result) []Result {
	out := make([]Result, len(rs))
	copy(out, rs)
	return out
}

// copyPlan deep-copies the steps slice (appending to a shared backing
// array from two goroutines would race) and tacks on any extra steps.
func copyPlan(p Plan, extra ...string) Plan {
	steps := make([]string, 0, len(p.Steps)+len(extra))
	steps = append(steps, p.Steps...)
	steps = append(steps, extra...)
	return Plan{Driving: p.Driving, Steps: steps}
}

// Stats returns a snapshot of the cache counters; zero-valued for an
// uncached engine.
func (e *Engine) Stats() CacheStats {
	if e.cache == nil {
		return CacheStats{}
	}
	e.cache.mu.Lock()
	defer e.cache.mu.Unlock()
	return e.cache.stats
}

// runCached wraps runUncached in the generation-stamped singleflight
// cache. See the package comment above for the protocol.
func (e *Engine) runCached(ctx context.Context, q Query) ([]Result, Plan, error) {
	if err := ctx.Err(); err != nil {
		return nil, Plan{}, err
	}
	key := canonicalKey(q)
	gen := e.st.Generation()
	if out, plan, ok := e.cache.lookup(key, gen); ok {
		return out, plan, nil
	}

	c := e.cache
	c.mu.Lock()
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		select {
		case <-f.done:
		case <-ctx.Done():
			return nil, Plan{}, ctx.Err()
		}
		if f.err == nil && f.gen == gen {
			c.mu.Lock()
			c.stats.Shared++
			c.mu.Unlock()
			return copyResults(f.out), copyPlan(f.plan, "shared in-flight execution"), nil
		}
		// Leader failed or ran at another generation: run independently
		// rather than serving its result or its error.
		c.mu.Lock()
		c.stats.Misses++
		c.mu.Unlock()
		return e.runUncached(ctx, q)
	}
	f := &flight{done: make(chan struct{}), gen: gen}
	c.inflight[key] = f
	c.stats.Misses++
	c.mu.Unlock()

	out, plan, err := e.runUncached(ctx, q)
	// The flight must hold its own copies: out is returned to the leader's
	// caller below, and callers may mutate their results in place. Storing
	// the slice itself would alias the leader's return value with every
	// follower's copyResults source — a caller-visible data race.
	if err == nil {
		f.out, f.plan = copyResults(out), copyPlan(plan)
	}
	f.err = err
	c.mu.Lock()
	delete(c.inflight, key)
	c.mu.Unlock()
	close(f.done)
	if err == nil {
		c.insert(key, gen, out, plan)
	}
	return out, plan, err
}

// canonicalKey flattens every clause field into a deterministic string.
// Floats are rendered as IEEE-754 bit patterns (no formatting loss, and
// distinct NaN payloads stay distinct); strings are length-prefixed so
// no delimiter collision can alias two different queries.
func canonicalKey(q Query) string {
	var b strings.Builder
	f := func(x float64) {
		b.WriteString(strconv.FormatUint(math.Float64bits(x), 16))
		b.WriteByte(',')
	}
	i := func(x int) {
		b.WriteString(strconv.Itoa(x))
		b.WriteByte(',')
	}
	s := func(x string) {
		b.WriteString(strconv.Itoa(len(x)))
		b.WriteByte(':')
		b.WriteString(x)
		b.WriteByte(',')
	}
	bo := func(x bool) {
		if x {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
		b.WriteByte(',')
	}
	if sp := q.Spatial; sp != nil {
		b.WriteString("sp|")
		if sp.Rect != nil {
			b.WriteString("r|")
			f(sp.Rect.MinLat)
			f(sp.Rect.MinLon)
			f(sp.Rect.MaxLat)
			f(sp.Rect.MaxLon)
		}
		if sp.Near != nil {
			b.WriteString("n|")
			f(sp.Near.Lat)
			f(sp.Near.Lon)
		}
		i(sp.K)
	}
	if v := q.Visual; v != nil {
		b.WriteString("vi|")
		s(v.Kind)
		i(len(v.Vec))
		for _, x := range v.Vec {
			f(x)
		}
		i(v.K)
		f(v.Radius)
		bo(v.Exact)
		bo(v.Quant)
	}
	for _, c := range q.categoricals() {
		b.WriteString("ca|")
		s(c.Classification)
		s(c.Label)
		f(c.MinConfidence)
	}
	if t := q.Textual; t != nil {
		b.WriteString("tx|")
		i(len(t.Terms))
		for _, term := range t.Terms {
			s(term)
		}
		bo(t.MatchAll)
	}
	if t := q.Temporal; t != nil {
		b.WriteString("tm|")
		b.WriteString(strconv.FormatInt(t.From.UnixNano(), 16))
		b.WriteByte(',')
		b.WriteString(strconv.FormatInt(t.To.UnixNano(), 16))
		b.WriteByte(',')
	}
	b.WriteString("l|")
	i(q.Limit)
	return b.String()
}
