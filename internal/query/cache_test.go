package query

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/feature"
	"repro/internal/index"
	"repro/internal/store"
)

// cachedFixture mirrors setup but routes the engine through NewCached.
func cachedFixture(t *testing.T, capacity int) *fixture {
	t.Helper()
	f := setup(t, false)
	f.eng = NewCached(f.st, capacity)
	return f
}

func kwQuery(term string) Query {
	return Query{Textual: &TextualClause{Terms: []string{term}}}
}

// TestCacheHitThenWriteInvalidates: a repeat query is served from cache;
// any store write bumps the generation and forces re-execution, and the
// re-executed result reflects the write.
func TestCacheHitThenWriteInvalidates(t *testing.T) {
	f := cachedFixture(t, 0)
	ctx := context.Background()
	q := kwQuery("tent")

	first, _, err := f.eng.Run(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	second, plan, err := f.eng.Run(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if st := f.eng.Stats(); st.Hits != 1 || st.Misses != 1 || st.Shared != 0 {
		t.Fatalf("stats after repeat = %+v, want 1 hit / 1 miss", st)
	}
	if len(second) != len(first) {
		t.Fatalf("cached result len %d != fresh %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("cached result differs at %d: %+v vs %+v", i, first[i], second[i])
		}
	}
	if s := plan.String(); !strings.Contains(s, "result-cache hit") {
		t.Fatalf("hit plan lacks cache step: %s", s)
	}

	// A write of any kind invalidates: tag one more image with "tent".
	if err := f.st.AddKeywords(f.ids[1], []string{"tent"}); err != nil {
		t.Fatal(err)
	}
	third, _, err := f.eng.Run(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if st := f.eng.Stats(); st.Misses != 2 {
		t.Fatalf("stats after write = %+v, want a second miss", st)
	}
	if len(third) != len(first)+1 {
		t.Fatalf("post-write result has %d hits, want %d", len(third), len(first)+1)
	}
}

// TestCacheSingleflightShare drives the follower path deterministically:
// with a flight installed for the key, Run blocks until the leader
// completes and then shares its result without executing.
func TestCacheSingleflightShare(t *testing.T) {
	f := cachedFixture(t, 0)
	ctx := context.Background()
	q := kwQuery("trash")

	want, _, err := New(f.st).Run(ctx, q)
	if err != nil {
		t.Fatal(err)
	}

	key := canonicalKey(q)
	gen := f.st.Generation()
	c := f.eng.cache
	fl := &flight{done: make(chan struct{}), gen: gen}
	c.mu.Lock()
	c.inflight[key] = fl
	c.mu.Unlock()

	type res struct {
		out  []Result
		plan Plan
		err  error
	}
	got := make(chan res, 1)
	go func() {
		out, plan, err := f.eng.Run(ctx, q)
		got <- res{out, plan, err}
	}()

	select {
	case r := <-got:
		t.Fatalf("follower returned before leader completed: %+v", r)
	case <-time.After(20 * time.Millisecond):
	}

	// Complete the leader's flight.
	fl.out, fl.plan = want, Plan{Driving: "textual"}
	c.mu.Lock()
	delete(c.inflight, key)
	c.mu.Unlock()
	close(fl.done)

	r := <-got
	if r.err != nil {
		t.Fatal(r.err)
	}
	if len(r.out) != len(want) {
		t.Fatalf("shared result len %d != leader's %d", len(r.out), len(want))
	}
	if s := r.plan.String(); !strings.Contains(s, "shared in-flight execution") {
		t.Fatalf("follower plan lacks share step: %s", s)
	}
	if st := f.eng.Stats(); st.Shared != 1 || st.Misses != 0 {
		t.Fatalf("stats = %+v, want exactly one share", st)
	}
}

// TestCacheSingleflightLeaderErrorNotShared: a follower whose leader
// failed (or ran at a different generation) re-executes independently
// instead of inheriting the leader's outcome.
func TestCacheSingleflightLeaderErrorNotShared(t *testing.T) {
	f := cachedFixture(t, 0)
	ctx := context.Background()
	q := kwQuery("weeds")

	key := canonicalKey(q)
	c := f.eng.cache
	fl := &flight{done: make(chan struct{}), gen: f.st.Generation(), err: context.Canceled}
	c.mu.Lock()
	c.inflight[key] = fl
	c.mu.Unlock()
	close(fl.done) // leader already failed

	out, _, err := f.eng.Run(ctx, q)
	if err != nil {
		t.Fatalf("follower inherited leader error: %v", err)
	}
	if len(out) == 0 {
		t.Fatal("independent re-execution returned nothing")
	}
	if st := f.eng.Stats(); st.Misses != 1 || st.Shared != 0 {
		t.Fatalf("stats = %+v, want one miss, no shares", st)
	}
}

// TestCacheConcurrentIdentical hammers one query from many goroutines
// under the race detector: every call must succeed with the same result,
// and every call is accounted exactly once in the stats.
func TestCacheConcurrentIdentical(t *testing.T) {
	f := cachedFixture(t, 0)
	ctx := context.Background()
	q := Query{Visual: &VisualClause{Kind: string(feature.KindColorHist), Vec: []float64{3, 0}, K: 5, Exact: true}}

	want, _, err := New(f.st).Run(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	const callers = 16
	var wg sync.WaitGroup
	errs := make([]error, callers)
	outs := make([][]Result, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], _, errs[i] = f.eng.Run(ctx, q)
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if len(outs[i]) != len(want) {
			t.Fatalf("caller %d: %d results, want %d", i, len(outs[i]), len(want))
		}
		for j := range want {
			if outs[i][j] != want[j] {
				t.Fatalf("caller %d result %d = %+v, want %+v", i, j, outs[i][j], want[j])
			}
		}
	}
	st := f.eng.Stats()
	if st.Hits+st.Misses+st.Shared != callers {
		t.Fatalf("stats %+v do not account for %d calls", st, callers)
	}
	if st.Misses < 1 {
		t.Fatalf("stats %+v: at least one execution required", st)
	}
}

// TestCacheLRUBound: the cache never holds more than its capacity and
// evicts least-recently-used keys first.
func TestCacheLRUBound(t *testing.T) {
	f := cachedFixture(t, 2)
	ctx := context.Background()
	qs := []Query{kwQuery("tent"), kwQuery("trash"), kwQuery("weeds")}
	for _, q := range qs {
		if _, _, err := f.eng.Run(ctx, q); err != nil {
			t.Fatal(err)
		}
	}
	c := f.eng.cache
	c.mu.Lock()
	n, ll := len(c.entries), c.ll.Len()
	_, oldest := c.entries[canonicalKey(qs[0])]
	c.mu.Unlock()
	if n != 2 || ll != 2 {
		t.Fatalf("cache holds %d entries (list %d), want capacity 2", n, ll)
	}
	if oldest {
		t.Fatal("least-recently-used entry not evicted")
	}
	// Re-running the evicted query is a miss; the resident ones are hits.
	if _, _, err := f.eng.Run(ctx, qs[0]); err != nil {
		t.Fatal(err)
	}
	if st := f.eng.Stats(); st.Misses != 4 || st.Hits != 0 {
		t.Fatalf("stats = %+v, want 4 misses after eviction", st)
	}
}

// TestCanonicalKeyDistinguishesQueries: near-miss queries must not alias.
func TestCanonicalKeyDistinguishesQueries(t *testing.T) {
	base := Query{Visual: &VisualClause{Kind: "cnn", Vec: []float64{1, 2}, K: 5}}
	variants := []Query{
		{Visual: &VisualClause{Kind: "cnn", Vec: []float64{1, 2}, K: 6}},
		{Visual: &VisualClause{Kind: "cnn", Vec: []float64{1, 2.5}, K: 5}},
		{Visual: &VisualClause{Kind: "cnn2", Vec: []float64{1, 2}, K: 5}},
		{Visual: &VisualClause{Kind: "cnn", Vec: []float64{1, 2}, K: 5, Exact: true}},
		{Visual: &VisualClause{Kind: "cnn", Vec: []float64{1, 2}, K: 5, Quant: true}},
		{Visual: &VisualClause{Kind: "cnn", Vec: []float64{1, 2}, K: 5}, Limit: 3},
		{Visual: &VisualClause{Kind: "cnn", Vec: []float64{1, 2}, K: 5},
			Textual: &TextualClause{Terms: []string{"a"}}},
	}
	seen := map[string]bool{canonicalKey(base): true}
	for i, v := range variants {
		k := canonicalKey(v)
		if seen[k] {
			t.Fatalf("variant %d aliases an earlier query: %q", i, k)
		}
		seen[k] = true
	}
	if canonicalKey(base) != canonicalKey(base) {
		t.Fatal("key not deterministic")
	}
}

// gatedBackend wraps the fixture store but parks SearchText until the
// gate opens, so a test can hold a leader mid-flight while followers
// queue behind its singleflight entry.
type gatedBackend struct {
	store.Backend
	gate chan struct{}
}

func (g *gatedBackend) SearchText(ctx context.Context, terms []string) ([]index.Match, error) {
	<-g.gate
	return g.Backend.SearchText(ctx, terms)
}

// TestCacheFlightMutationIsolation pins the singleflight aliasing fix:
// the leader's returned slice must not share a backing array with what
// followers copy out of the flight. Before the fix, the flight stored
// the leader's own result slice, so a leader's caller mutating its
// results raced with — and corrupted — every follower's copy. The gate
// makes the overlap deterministic: the follower is provably parked on
// the flight before the leader completes, then the leader's caller
// scribbles over its result while the follower reads its share.
func TestCacheFlightMutationIsolation(t *testing.T) {
	f := setup(t, false)
	gb := &gatedBackend{Backend: f.st, gate: make(chan struct{})}
	eng := NewCached(gb, 0)
	ctx := context.Background()
	q := kwQuery("trash")

	want, _, err := New(f.st).Run(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("fixture query returned nothing; the test needs results to mutate")
	}

	leaderOut := make(chan []Result, 1)
	go func() {
		out, _, err := eng.Run(ctx, q)
		if err != nil {
			t.Error(err)
		}
		leaderOut <- out
	}()
	// Wait until the leader has installed its flight (it is now parked on
	// the gate inside SearchText).
	key := canonicalKey(q)
	c := eng.cache
	for {
		c.mu.Lock()
		_, inflight := c.inflight[key]
		c.mu.Unlock()
		if inflight {
			break
		}
		time.Sleep(time.Millisecond)
	}
	followerOut := make(chan []Result, 1)
	go func() {
		out, _, err := eng.Run(ctx, q)
		if err != nil {
			t.Error(err)
		}
		followerOut <- out
	}()
	// Give the follower time to park on the flight's done channel, then
	// release the leader.
	time.Sleep(10 * time.Millisecond)
	close(gb.gate)

	out := <-leaderOut
	for j := range out {
		// Mutate in place, as an API handler post-processing its response
		// may; with aliasing this scribbles over the follower's source.
		out[j] = Result{ID: ^uint64(0), Score: -1}
	}
	got := <-followerOut
	for j := range got {
		if got[j] != want[j] {
			t.Fatalf("follower result corrupted by leader-caller mutation at %d: %+v", j, got[j])
		}
	}
	if st := eng.Stats(); st.Shared != 1 {
		t.Fatalf("stats = %+v; the follower did not take the share path, test proved nothing", st)
	}
}
