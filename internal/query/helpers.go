package query

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/geo"
	"repro/internal/index"
	"repro/internal/vecmath"
)

// Convenience wrappers over Run for the common single- and dual-modal
// query shapes the REST API and examples use. Each takes the caller's
// request context and inherits Run's cancellation contract.

// SpatialRange returns images whose scenes intersect r.
func (e *Engine) SpatialRange(ctx context.Context, r geo.Rect) ([]Result, error) {
	out, _, err := e.Run(ctx, Query{Spatial: &SpatialClause{Rect: &r}})
	return out, err
}

// KNearest returns the k images closest to p.
func (e *Engine) KNearest(ctx context.Context, p geo.Point, k int) ([]Result, error) {
	out, _, err := e.Run(ctx, Query{Spatial: &SpatialClause{Near: &p, K: k}})
	return out, err
}

// VisualTopK returns the k most similar images under a feature kind.
func (e *Engine) VisualTopK(ctx context.Context, kind string, vec []float64, k int) ([]Result, error) {
	out, _, err := e.Run(ctx, Query{Visual: &VisualClause{Kind: kind, Vec: vec, K: k}})
	return out, err
}

// ByLabel returns images annotated with the label.
func (e *Engine) ByLabel(ctx context.Context, classification, label string) ([]Result, error) {
	out, _, err := e.Run(ctx, Query{Categorical: &CategoricalClause{Classification: classification, Label: label}})
	return out, err
}

// ByKeywords returns images matching any keyword, TF-IDF ranked.
func (e *Engine) ByKeywords(ctx context.Context, terms ...string) ([]Result, error) {
	out, _, err := e.Run(ctx, Query{Textual: &TextualClause{Terms: terms}})
	return out, err
}

// TimeRange returns images captured in [from, to].
func (e *Engine) TimeRange(ctx context.Context, from, to time.Time) ([]Result, error) {
	out, _, err := e.Run(ctx, Query{Temporal: &TemporalClause{From: from, To: to}})
	return out, err
}

// SpatialVisual returns the k visually closest images within r; the
// planner uses the hybrid tree when the store maintains one.
func (e *Engine) SpatialVisual(ctx context.Context, r geo.Rect, kind string, vec []float64, k int) ([]Result, Plan, error) {
	return e.Run(ctx, Query{
		Spatial: &SpatialClause{Rect: &r},
		Visual:  &VisualClause{Kind: kind, Vec: vec, K: k},
	})
}

// TwoPhaseSpatialVisual forces the two-phase plan — r-tree filter, then
// per-candidate visual re-rank — regardless of hybrid availability. It is
// the baseline of ablation A3. The fetch loop polls ctx every
// scanCheckpoint candidates between feature-fetch rounds.
func (e *Engine) TwoPhaseSpatialVisual(ctx context.Context, r geo.Rect, kind string, vec []float64, k int) ([]Result, error) {
	ids, err := e.st.SearchScene(ctx, r)
	if err != nil {
		return nil, err
	}
	type sc struct {
		id uint64
		d  float64
	}
	out := make([]sc, 0, len(ids))
	for i, id := range ids {
		if i%scanCheckpoint == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		f, err := e.st.GetFeature(id, kind)
		if err != nil {
			continue // images without the feature are not rankable
		}
		if len(f) != len(vec) {
			return nil, fmt.Errorf("%w: query vec has %d dims, feature %q has %d",
				index.ErrDimMismatch, len(vec), kind, len(f))
		}
		out = append(out, sc{id: id, d: vecmath.SquaredL2(f, vec)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].d != out[j].d {
			return out[i].d < out[j].d
		}
		return out[i].id < out[j].id
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	rs := make([]Result, len(out))
	for i, s := range out {
		rs[i] = Result{ID: s.id, Score: s.d}
	}
	return rs, nil
}

// SpatialTextual returns keyword matches restricted to a geographic
// region — the spatial-textual hybrid query the paper names in §IV-C.
func (e *Engine) SpatialTextual(ctx context.Context, r geo.Rect, terms ...string) ([]Result, Plan, error) {
	return e.Run(ctx, Query{
		Spatial: &SpatialClause{Rect: &r},
		Textual: &TextualClause{Terms: terms},
	})
}
