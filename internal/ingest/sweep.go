package ingest

import "context"

// sweepCheckpoint is the cancellation-poll cadence of the sweep scan.
const sweepCheckpoint = 64

// Sweep is the at-least-once recovery pass: it scans the backend for rows
// missing any registered feature kind — the persisted-but-unextracted
// window left by a crash, a cancelled shutdown, or a failed extraction —
// and re-queues them. Core runs it once on open, after Start; it can also
// be invoked on demand. Returns the number of rows re-queued.
//
// Admission here blocks (ctx-cancellable) instead of shedding: recovery
// work must not be lost to a momentarily full queue, and the caller is a
// background scan, not a latency-sensitive client.
func (p *Pipeline) Sweep(ctx context.Context) (int, error) {
	want := p.svc.ExtractorKinds()
	if len(want) == 0 {
		return 0, nil
	}
	n := 0
	for i, id := range p.st.ImageIDs() {
		if i%sweepCheckpoint == 0 {
			if err := ctx.Err(); err != nil {
				return n, err
			}
		}
		if len(missingKinds(p.st.FeatureKinds(id), want)) == 0 {
			continue
		}
		p.mu.Lock()
		if rec := p.pending[id]; rec != nil && rec.State == StateQueued {
			p.mu.Unlock()
			continue // already on a queue
		}
		if !p.started || p.stopped {
			p.mu.Unlock()
			return n, ErrStopped
		}
		p.mu.Unlock()
		part := p.partitionForID(id)
		select {
		case part.slots <- struct{}{}:
		case <-ctx.Done():
			return n, ctx.Err()
		}
		if err := p.enqueue(part, task{ids: []uint64{id}, swept: true}); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}
