package ingest

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/feature"
	"repro/internal/geo"
	"repro/internal/imagesim"
	"repro/internal/store"
)

var la = geo.Point{Lat: 34.0522, Lon: -118.2437}

// testRecord builds one valid submission. seq is stamped into the first
// pixel's red channel so test extractors can recover submission order.
func testRecord(t *testing.T, seq int, workerID string) Record {
	t.Helper()
	if seq < 0 || seq > 255 {
		t.Fatalf("seq %d out of pixel range", seq)
	}
	px := imagesim.MustNew(16, 16)
	px.Fill(imagesim.RGB{R: 100, G: 120, B: 140})
	px.Pix[0] = imagesim.RGB{R: uint8(seq), G: 1, B: 1}
	brg := float64(seq % 359)
	return Record{
		Image: store.Image{
			FOV:                geo.FOV{Camera: geo.Destination(la, brg, 500), Direction: brg, Angle: 60, Radius: 100},
			Pixels:             px,
			TimestampCapturing: time.Date(2019, 2, 1, 8, 0, 0, 0, time.UTC).Add(time.Duration(seq) * time.Minute),
			TimestampUploading: time.Date(2019, 3, 1, 12, 0, 0, 0, time.UTC),
			WorkerID:           workerID,
		},
		Keywords: []string{"garbage", fmt.Sprintf("seq-%d", seq)},
	}
}

// testExtractor is a controllable feature.Extractor: it can block until
// released, fail on request, and records the seq stamps it saw in order.
type testExtractor struct {
	kind feature.Kind

	mu      sync.Mutex
	seen    []int
	failSeq map[int]bool // seq values whose extraction errors
	gate    chan struct{}
}

func newTestExtractor() *testExtractor {
	return &testExtractor{kind: "test_kind", failSeq: map[int]bool{}}
}

func (e *testExtractor) Kind() feature.Kind { return e.kind }
func (e *testExtractor) Dim() int           { return 4 }

func (e *testExtractor) Extract(img *imagesim.Image) ([]float64, error) {
	e.mu.Lock()
	gate := e.gate
	e.mu.Unlock()
	if gate != nil {
		<-gate
	}
	seq := int(img.Pix[0].R)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.failSeq[seq] {
		return nil, fmt.Errorf("induced failure for seq %d", seq)
	}
	e.seen = append(e.seen, seq)
	return []float64{float64(seq), 1, 2, 3}, nil
}

// block makes subsequent Extract calls wait; the returned func releases
// them all.
func (e *testExtractor) block() (release func()) {
	gate := make(chan struct{})
	e.mu.Lock()
	e.gate = gate
	e.mu.Unlock()
	return func() {
		e.mu.Lock()
		e.gate = nil
		e.mu.Unlock()
		close(gate)
	}
}

func (e *testExtractor) order() []int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]int(nil), e.seen...)
}

// testEnv is a memory store, a service with one controllable extractor,
// and a started pipeline.
func testEnv(t *testing.T, cfg Config) (*store.Store, *analysis.Service, *testExtractor, *Pipeline) {
	t.Helper()
	st, err := store.Open(store.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	svc := analysis.NewService(st)
	ex := newTestExtractor()
	svc.RegisterExtractor(ex)
	p := New(st, svc, cfg)
	if err := p.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := p.Close(); err != nil {
			t.Errorf("pipeline close: %v", err)
		}
	})
	return st, svc, ex, p
}

func drain(t *testing.T, p *Pipeline) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := p.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestAsyncSubmitExtractsAndIndexes(t *testing.T) {
	st, _, _, p := testEnv(t, Config{Partitions: 2, QueueDepth: 8})
	ctx := context.Background()
	var ids []uint64
	for i := 0; i < 6; i++ {
		id, err := p.SubmitAsync(ctx, testRecord(t, i, fmt.Sprintf("w-%d", i%3)))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, id)
	}
	drain(t, p)
	for _, id := range ids {
		kinds := st.FeatureKinds(id)
		if len(kinds) != 1 || kinds[0] != "test_kind" {
			t.Fatalf("image %d kinds = %v", id, kinds)
		}
		if got := p.Status(id); got.State != "done" {
			t.Fatalf("status(%d) = %+v", id, got)
		}
		if kw := st.KeywordsFor(id); len(kw) != 2 {
			t.Fatalf("image %d keywords = %v", id, kw)
		}
	}
	// The rows are visible to search: the LSH index was maintained
	// online by the worker, not by a rebuild.
	matches, err := st.SearchVisual(ctx, "test_kind", []float64{0, 1, 2, 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("no visual matches after online indexing")
	}
	s := p.Stats()
	if s.Persisted != 6 || s.Extracted != 6 || s.Shed != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestAckPrecedesExtraction(t *testing.T) {
	st, _, ex, p := testEnv(t, Config{Partitions: 1, QueueDepth: 8})
	release := ex.block()
	id, err := p.SubmitAsync(context.Background(), testRecord(t, 1, "w-1"))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	// Acked and WAL-durable, but extraction is still gated.
	if _, err := st.GetImage(id); err != nil {
		t.Fatalf("row not persisted at ack: %v", err)
	}
	if kinds := st.FeatureKinds(id); len(kinds) != 0 {
		t.Fatalf("features %v present before extraction", kinds)
	}
	if got := p.Status(id); got.State != string(StateQueued) {
		t.Fatalf("status = %+v", got)
	}
	release()
	drain(t, p)
	if kinds := st.FeatureKinds(id); len(kinds) != 1 {
		t.Fatalf("kinds after drain = %v", kinds)
	}
}

func TestBackpressureShedsBeforePersist(t *testing.T) {
	st, _, ex, p := testEnv(t, Config{Partitions: 1, QueueDepth: 2})
	release := ex.block()
	ctx := context.Background()
	admitted := 0
	sawBusy := false
	// Queue depth 2: with the worker gated, at most 2 entries are
	// admitted (held slots); everything past that sheds with nothing
	// persisted.
	for i := 0; i < 6; i++ {
		_, err := p.SubmitAsync(ctx, testRecord(t, i, "w-1"))
		switch {
		case err == nil:
			admitted++
		case errors.Is(err, ErrBusy):
			sawBusy = true
		default:
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if !sawBusy {
		t.Fatal("no ErrBusy from a full queue")
	}
	if admitted > 2 {
		t.Fatalf("admitted %d > queue depth 2", admitted)
	}
	// ErrBusy must mean "nothing persisted": a shed client's retry must
	// not create a duplicate row.
	if n := st.NumImages(); n != admitted {
		t.Fatalf("NumImages = %d, admitted = %d (shed submissions persisted rows)", n, admitted)
	}
	if s := p.Stats(); s.Shed == 0 {
		t.Fatalf("stats = %+v", s)
	}
	release()
	drain(t, p)
}

func TestPerSourceOrderingPreserved(t *testing.T) {
	_, _, ex, p := testEnv(t, Config{Partitions: 4, QueueDepth: 64})
	ctx := context.Background()
	// One source, many records: every record hashes to the same
	// partition, so extraction order must equal submission order even
	// with 4 workers running.
	const n = 40
	for i := 0; i < n; i++ {
		if _, err := p.SubmitAsync(ctx, testRecord(t, i, "cam-7")); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	drain(t, p)
	order := ex.order()
	if len(order) != n {
		t.Fatalf("extracted %d records, want %d", len(order), n)
	}
	for i, seq := range order {
		if seq != i {
			t.Fatalf("out-of-order extraction: position %d has seq %d (order %v)", i, seq, order)
		}
	}
}

func TestFailedExtractionTrackedAndSweepRedrives(t *testing.T) {
	st, _, ex, p := testEnv(t, Config{Partitions: 2, QueueDepth: 8})
	ctx := context.Background()
	ex.mu.Lock()
	ex.failSeq[3] = true
	ex.mu.Unlock()
	id, err := p.SubmitAsync(ctx, testRecord(t, 3, "w-1"))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	drain(t, p)
	got := p.Status(id)
	if got.State != string(StateFailed) || got.Attempts != 1 || got.Err == "" {
		t.Fatalf("status after failure = %+v", got)
	}
	if len(st.FeatureKinds(id)) != 0 {
		t.Fatal("failed extraction wrote features")
	}
	// Clear the fault; the sweep re-drives the persisted row.
	ex.mu.Lock()
	delete(ex.failSeq, 3)
	ex.mu.Unlock()
	n, err := p.Sweep(ctx)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if n != 1 {
		t.Fatalf("sweep re-drove %d rows, want 1", n)
	}
	drain(t, p)
	if kinds := st.FeatureKinds(id); len(kinds) != 1 {
		t.Fatalf("kinds after sweep = %v", kinds)
	}
	if s := p.Stats(); s.Swept != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestSweepSkipsCompleteAndQueuedRows(t *testing.T) {
	st, _, ex, p := testEnv(t, Config{Partitions: 1, QueueDepth: 8})
	ctx := context.Background()
	// One complete row.
	doneID, err := p.SubmitAsync(ctx, testRecord(t, 1, "w-1"))
	if err != nil {
		t.Fatal(err)
	}
	drain(t, p)
	// One row still on the queue behind the gate.
	release := ex.block()
	defer release()
	if _, err := p.SubmitAsync(ctx, testRecord(t, 2, "w-1")); err != nil {
		t.Fatal(err)
	}
	n, err := p.Sweep(ctx)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if n != 0 {
		t.Fatalf("sweep re-drove %d rows, want 0 (one done, one queued)", n)
	}
	if got := p.Status(doneID); got.State != "done" {
		t.Fatalf("status = %+v", got)
	}
	_ = st
}

func TestRefreshHookFiresOffPath(t *testing.T) {
	var mu sync.Mutex
	fired := 0
	cfg := Config{Partitions: 1, QueueDepth: 16, RefreshEvery: 2,
		OnRefresh: func(context.Context) error {
			mu.Lock()
			fired++
			mu.Unlock()
			return nil
		}}
	_, _, _, p := testEnv(t, cfg)
	ctx := context.Background()
	for i := 0; i < 6; i++ {
		if _, err := p.SubmitAsync(ctx, testRecord(t, i, "w-1")); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	drain(t, p)
	// Wait for the refresher to consume the signal: Drain covers the
	// workers, not the hook goroutine, so poll briefly.
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		f := fired
		mu.Unlock()
		if f >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("refresh hook never fired (stats %+v)", p.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestVideoAsyncExtractsAllFrames(t *testing.T) {
	st, _, _, p := testEnv(t, Config{Partitions: 2, QueueDepth: 4})
	ctx := context.Background()
	frames := make([]store.Frame, 0, 3)
	for i := 0; i < 3; i++ {
		rec := testRecord(t, 10+i, "drone-1")
		frames = append(frames, store.Frame{
			Pixels: rec.Image.Pixels, FOV: rec.Image.FOV,
			CapturedAt: rec.Image.TimestampCapturing, Keywords: rec.Keywords,
		})
	}
	videoID, frameIDs, err := p.SubmitVideoAsync(ctx, VideoRecord{Description: "flight", WorkerID: "drone-1", Frames: frames})
	if err != nil {
		t.Fatalf("submit video: %v", err)
	}
	if videoID == 0 || len(frameIDs) != 3 {
		t.Fatalf("video %d frames %v", videoID, frameIDs)
	}
	drain(t, p)
	for _, id := range frameIDs {
		if kinds := st.FeatureKinds(id); len(kinds) != 1 {
			t.Fatalf("frame %d kinds = %v", id, kinds)
		}
	}
	v, err := st.GetVideo(videoID)
	if err != nil || len(v.FrameIDs) != 3 {
		t.Fatalf("video row = %+v err %v", v, err)
	}
}

func TestVideoSyncPartialFailureKeepsFrames(t *testing.T) {
	st, _, ex, p := testEnv(t, Config{Partitions: 1, QueueDepth: 4})
	ctx := context.Background()
	ex.mu.Lock()
	ex.failSeq[21] = true
	ex.mu.Unlock()
	frames := make([]store.Frame, 0, 3)
	for i := 0; i < 3; i++ {
		rec := testRecord(t, 20+i, "drone-2")
		frames = append(frames, store.Frame{
			Pixels: rec.Image.Pixels, FOV: rec.Image.FOV,
			CapturedAt: rec.Image.TimestampCapturing,
		})
	}
	videoID, results, err := p.SubmitVideoSync(ctx, VideoRecord{Description: "run", WorkerID: "drone-2", Frames: frames})
	// A per-frame extraction failure is not a video error: frames are
	// durable and a retry would duplicate them.
	if err != nil {
		t.Fatalf("sync video returned error for per-frame failure: %v", err)
	}
	if videoID == 0 || len(results) != 3 {
		t.Fatalf("video %d results %+v", videoID, results)
	}
	var failed, ok int
	for _, r := range results {
		if r.Err != "" {
			failed++
			if len(st.FeatureKinds(r.ID)) != 0 {
				t.Fatalf("failed frame %d has features", r.ID)
			}
			if got := p.Status(r.ID); got.State != string(StateFailed) {
				t.Fatalf("failed frame status = %+v", got)
			}
		} else {
			ok++
			if len(st.FeatureKinds(r.ID)) != 1 {
				t.Fatalf("ok frame %d missing features", r.ID)
			}
		}
	}
	if failed != 1 || ok != 2 {
		t.Fatalf("failed=%d ok=%d", failed, ok)
	}
	// The failed frame rides the sweep once the fault clears.
	ex.mu.Lock()
	delete(ex.failSeq, 21)
	ex.mu.Unlock()
	if n, err := p.Sweep(ctx); err != nil || n != 1 {
		t.Fatalf("sweep = %d, %v", n, err)
	}
	drain(t, p)
	for _, r := range results {
		if len(st.FeatureKinds(r.ID)) != 1 {
			t.Fatalf("frame %d not recovered", r.ID)
		}
	}
}

func TestKeywordFailureStillReturnsID(t *testing.T) {
	st, _, _, p := testEnv(t, Config{Partitions: 1, QueueDepth: 4})
	ctx := context.Background()
	rec := testRecord(t, 5, "w-1")
	rec.Keywords = []string{} // AddKeywords never called: baseline sanity
	if id, err := p.SubmitAsync(ctx, rec); err != nil || id == 0 {
		t.Fatalf("submit = %d, %v", id, err)
	}
	drain(t, p)
	// Close the store out from under the pipeline: AddImage fails, so no
	// ID; nothing persisted.
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if id, err := p.SubmitAsync(ctx, testRecord(t, 6, "w-1")); !errors.Is(err, ErrStopped) || id != 0 {
		t.Fatalf("submit after close = %d, %v", id, err)
	}
}

func TestSubmitSyncMatchesInlineSemantics(t *testing.T) {
	st, _, _, p := testEnv(t, Config{Partitions: 1, QueueDepth: 4})
	ctx := context.Background()
	id, kinds, err := p.SubmitSync(ctx, testRecord(t, 9, "w-9"))
	if err != nil {
		t.Fatalf("sync submit: %v", err)
	}
	if id == 0 || len(kinds) != 1 || kinds[0] != "test_kind" {
		t.Fatalf("sync submit = %d %v", id, kinds)
	}
	if got := st.FeatureKinds(id); len(got) != 1 {
		t.Fatalf("kinds = %v", got)
	}
	// Already-extracted rows are a no-op for ExtractMissing: a second
	// sync submit of the same pixels makes a NEW row (new ID), but
	// re-driving the same ID extracts nothing.
	if got := p.Status(id); got.State != "done" {
		t.Fatalf("status = %+v", got)
	}
}

func TestDrainImmediateWhenIdle(t *testing.T) {
	_, _, _, p := testEnv(t, Config{Partitions: 1, QueueDepth: 4})
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := p.Drain(ctx); err != nil {
		t.Fatalf("idle drain: %v", err)
	}
}

func TestCloseIsIdempotentAndDrainsQueue(t *testing.T) {
	st, _, _, p := testEnv(t, Config{Partitions: 2, QueueDepth: 8})
	ctx := context.Background()
	var ids []uint64
	for i := 0; i < 4; i++ {
		id, err := p.SubmitAsync(ctx, testRecord(t, i, "w-1"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	// Close drains: every queued row finished extraction.
	for _, id := range ids {
		if kinds := st.FeatureKinds(id); len(kinds) != 1 {
			t.Fatalf("image %d kinds after close = %v", id, kinds)
		}
	}
}
