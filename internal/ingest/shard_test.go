package ingest

// The pipeline programs against store.Backend, so a shard.Coordinator
// threads through unchanged: placement stays the coordinator's hash
// routing, and Generation() keeps its write-monotonic cache-coherence
// semantics with pipeline workers as the writers.

import (
	"context"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/shard"
)

func TestPipelineOverShardCoordinator(t *testing.T) {
	co, err := shard.Open(shard.Config{Dir: t.TempDir(), ShardCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { co.Close() })
	svc := analysis.NewService(co)
	ext := newTestExtractor()
	svc.RegisterExtractor(ext)
	p := New(co, svc, Config{Partitions: 2, QueueDepth: 16})
	p.Start(context.Background())
	t.Cleanup(func() { p.Close() })

	g0 := co.Generation()
	const n = 12
	ids := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		id, err := p.SubmitAsync(context.Background(), testRecord(t, i, "worker-"+string(rune('a'+i%3))))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := p.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	// Writes moved the composed generation; the pipeline didn't bypass it.
	g1 := co.Generation()
	if g1 <= g0 {
		t.Fatalf("generation did not advance: %d -> %d", g0, g1)
	}
	// Placement contract intact: every routed row is readable through the
	// coordinator and carries its extracted feature.
	if co.NumImages() != n {
		t.Fatalf("coordinator holds %d images, want %d", co.NumImages(), n)
	}
	for _, id := range ids {
		if _, err := co.GetImage(id); err != nil {
			t.Fatalf("routed row %d unreadable: %v", id, err)
		}
		if kinds := co.FeatureKinds(id); len(kinds) != 1 {
			t.Fatalf("row %d features = %v", id, kinds)
		}
	}
	// Scatter-gather search sees the online-maintained per-shard indexes.
	vec, err := co.GetFeature(ids[0], string(ext.kind))
	if err != nil {
		t.Fatal(err)
	}
	res, err := co.SearchVisual(context.Background(), string(ext.kind), vec, 3)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range res {
		if m.ID == ids[0] {
			found = true
		}
	}
	if !found {
		t.Fatalf("row %d missing from scatter-gather search: %+v", ids[0], res)
	}
	// Reads leave the generation untouched — the coherence stamp is
	// write-only, pipeline or not.
	if g2 := co.Generation(); g2 != g1 {
		t.Fatalf("reads moved the generation: %d -> %d", g1, g2)
	}
}
