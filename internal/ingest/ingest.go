// Package ingest is the streaming ingestion tier: a staged pipeline
// (decode → durable persist → extract → index) that decouples the client
// ack from feature extraction. The design follows the Kafka smart-city
// guidelines (PAPERS.md): partitioned, consumer-group-style workers keyed
// by source/worker ID so one source's records stay ordered, bounded
// queues whose overflow surfaces as ErrBusy at admission (HTTP 429), and
// at-least-once handoff — the client is acked as soon as the row is
// WAL-durable (store.AddImage commit), extraction and index maintenance
// lag behind on the partition workers, and a pending-extraction sweep on
// open re-drives any row that crashed in the persisted-but-unextracted
// window.
//
// Stage map and the ack point:
//
//	decode (caller) → admit (slot or ErrBusy) → persist (WAL commit) ─ack─→ client
//	                                                 │
//	                                                 └→ partition queue → extract → index
//	                                                         └→ every N records: off-path refresh hook
//
// The pipeline programs against store.Backend, so it runs unchanged over
// one *store.Store or a shard.Coordinator — placement and Generation()
// semantics are the backend's business, not ours.
package ingest

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/analysis"
	"repro/internal/store"
)

// Pipeline errors.
var (
	// ErrBusy reports a full partition queue at admission. Nothing was
	// persisted; the client should back off and retry (HTTP 429).
	ErrBusy = errors.New("ingest: pipeline busy")
	// ErrStopped reports a pipeline that is shut down or was never
	// started. Submissions that already persisted their rows return it
	// alongside the assigned ID; the sweep re-drives those rows on the
	// next open.
	ErrStopped = errors.New("ingest: pipeline stopped")
)

// Config sizes the pipeline.
type Config struct {
	// Partitions is the number of consumer-group workers. Records hash
	// to a partition by source key (worker ID), so per-source order is
	// preserved; more partitions add cross-source parallelism.
	Partitions int
	// QueueDepth bounds each partition's queue, counted in admission
	// units (one image or one whole video per unit). A full queue sheds
	// new work as ErrBusy instead of buffering without bound.
	QueueDepth int
	// RefreshEvery fires the off-path refresh hook after every N
	// extracted records (0 disables). The hook is where periodic
	// quantization/BoW retrain or snapshotting plugs in without ever
	// blocking the ingest path.
	RefreshEvery int
	// OnRefresh is the hook body. Nil means the counter still advances
	// but firing is a no-op.
	OnRefresh func(context.Context) error
}

// DefaultConfig returns sizing suitable for the 1-CPU reference box: two
// partitions (ingest extraction overlaps serving, not itself) and a
// 64-deep queue per partition.
func DefaultConfig() Config {
	return Config{Partitions: 2, QueueDepth: 64}
}

func (c *Config) sanitize() {
	if c.Partitions <= 0 {
		c.Partitions = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.RefreshEvery < 0 {
		c.RefreshEvery = 0
	}
}

// Record is one image submission.
type Record struct {
	// Image carries FOV, pixels, timestamps, worker and campaign IDs.
	// A zero ID lets the backend allocate; the assigned ID is returned.
	Image store.Image
	// Keywords are attached after the image row commits.
	Keywords []string
}

// VideoRecord is one video submission: ordered key frames from one
// source.
type VideoRecord struct {
	Description string
	WorkerID    string
	Frames      []store.Frame
}

// FrameResult reports one frame of a sync video submission: its assigned
// ID, the feature kinds extracted, and the extraction error if any. A
// failed frame is still persisted and rides the pending sweep.
type FrameResult struct {
	ID    uint64
	Kinds []string
	Err   string
}

// State classifies a record the pipeline still tracks.
type State string

// Record states. Records that finish extraction leave the tracking map;
// Status infers "done" from the store.
const (
	StateQueued State = "queued"
	StateFailed State = "failed"
)

// PendingRecord is one tracked record: persisted, not yet (successfully)
// extracted.
type PendingRecord struct {
	ID       uint64
	State    State
	Attempts int
	Err      string
}

// Stats counts pipeline activity since construction.
type Stats struct {
	// Submitted counts admission attempts (records offered).
	Submitted uint64
	// Shed counts admissions rejected with ErrBusy.
	Shed uint64
	// Persisted counts rows acked WAL-durable (frames count singly).
	Persisted uint64
	// Extracted counts records whose extraction completed.
	Extracted uint64
	// Failed counts extraction attempts that errored.
	Failed uint64
	// Swept counts rows re-driven by the pending-extraction sweep.
	Swept uint64
	// Refreshes counts off-path refresh hook firings.
	Refreshes uint64
	// RefreshErr is the most recent refresh hook error ("" if none).
	RefreshErr string
}

// task is one queue entry: rows already persisted, awaiting extraction.
type task struct {
	ids   []uint64
	swept bool
}

// partition is one consumer-group member: a bounded queue drained by a
// single worker goroutine, so entries from one source process in
// submission order.
type partition struct {
	mu sync.Mutex
	// closed gates sends on tasks; set once by Pipeline.Close.
	//
	//tvdp:guardedby mu
	closed bool
	// tasks is the bounded queue. Sends only happen with a slot token
	// held and mu locked, which makes them provably non-blocking.
	tasks chan task
	// slots is the admission semaphore: one token per queue entry,
	// acquired before persist, released by the worker after the entry
	// finishes processing. cap(slots) == cap(tasks), so queued plus
	// in-process work is bounded by QueueDepth.
	slots chan struct{}
}

// Pipeline is the staged ingestion tier. Construct with New, launch
// workers with Start, submit with SubmitAsync/SubmitSync/SubmitVideo*,
// and Close to drain. Safe for concurrent use.
type Pipeline struct {
	st    store.Backend
	svc   *analysis.Service
	cfg   Config
	parts []*partition

	// wg joins the partition workers and the refresher.
	wg sync.WaitGroup
	// refreshCh coalesces refresh requests; the refresher drains it and
	// Close closes it.
	refreshCh chan struct{}

	mu sync.Mutex
	// started/stopped sequence Start/Close; Submit* requires started and
	// not stopped.
	//
	//tvdp:guardedby mu
	started bool
	//tvdp:guardedby mu
	stopped bool
	// pending tracks persisted-but-unextracted records.
	//
	//tvdp:guardedby mu
	pending map[uint64]*PendingRecord
	// outstanding counts queue entries not yet fully processed; Drain
	// waits for zero.
	//
	//tvdp:guardedby mu
	outstanding int
	// waiters are Drain callers parked until outstanding hits zero.
	//
	//tvdp:guardedby mu
	waiters []chan struct{}
	// sinceRefresh counts extracted records since the hook last fired.
	//
	//tvdp:guardedby mu
	sinceRefresh int
	//tvdp:guardedby mu
	stats Stats
}

// New builds a pipeline over st and svc. Call Start before submitting.
func New(st store.Backend, svc *analysis.Service, cfg Config) *Pipeline {
	cfg.sanitize()
	p := &Pipeline{
		st:        st,
		svc:       svc,
		cfg:       cfg,
		pending:   make(map[uint64]*PendingRecord),
		refreshCh: make(chan struct{}, 1),
	}
	for i := 0; i < cfg.Partitions; i++ {
		p.parts = append(p.parts, &partition{
			tasks: make(chan task, cfg.QueueDepth),
			slots: make(chan struct{}, cfg.QueueDepth),
		})
	}
	return p
}

// Start launches one worker per partition plus the refresher. ctx bounds
// the extraction work: cancelling it makes in-flight and queued work
// return fast (rows stay persisted and are swept on the next open); it
// does not replace Close, which remains the join point.
func (p *Pipeline) Start(ctx context.Context) error {
	p.mu.Lock()
	if p.started {
		p.mu.Unlock()
		return errors.New("ingest: already started")
	}
	if p.stopped {
		p.mu.Unlock()
		return ErrStopped
	}
	p.started = true
	p.mu.Unlock()
	for _, part := range p.parts {
		part := part
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for t := range part.tasks {
				p.process(ctx, t)
				<-part.slots
			}
		}()
	}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for range p.refreshCh {
			p.runRefresh(ctx)
		}
	}()
	return nil
}

// Close stops admission, drains the queues, and joins every worker.
// Queued entries are still processed (cancel the Start ctx first for a
// fast shutdown; unprocessed rows stay persisted for the sweep). Close is
// idempotent and must precede the backend's Close.
func (p *Pipeline) Close() error {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return nil
	}
	p.stopped = true
	started := p.started
	p.mu.Unlock()
	for _, part := range p.parts {
		part.mu.Lock()
		part.closed = true
		close(part.tasks)
		part.mu.Unlock()
	}
	close(p.refreshCh)
	if started {
		p.wg.Wait()
	}
	return nil
}

// partitionFor hashes a source key onto a partition, the consumer-group
// keying that keeps one source's records ordered.
func (p *Pipeline) partitionFor(sourceKey string) *partition {
	// FNV-1a, inlined: the string form of hash/fnv returns a Write error
	// that never fires but would still need discarding.
	const offset32, prime32 = 2166136261, 16777619
	h := uint32(offset32)
	for i := 0; i < len(sourceKey); i++ {
		h ^= uint32(sourceKey[i])
		h *= prime32
	}
	return p.parts[int(h)%len(p.parts)]
}

// partitionForID spreads sweep re-drives by row ID (source ordering is
// moot for rows being re-driven after a crash).
func (p *Pipeline) partitionForID(id uint64) *partition {
	return p.parts[int(id%uint64(len(p.parts)))]
}

// admit takes one admission slot without blocking, or sheds.
func (p *Pipeline) admit(part *partition) error {
	p.mu.Lock()
	if !p.started || p.stopped {
		p.mu.Unlock()
		return ErrStopped
	}
	p.stats.Submitted++
	p.mu.Unlock()
	select {
	case part.slots <- struct{}{}:
		return nil
	default:
		p.mu.Lock()
		p.stats.Shed++
		p.mu.Unlock()
		return ErrBusy
	}
}

// release returns an unused admission slot (persist failed before the
// entry reached the queue).
func (p *Pipeline) release(part *partition) {
	<-part.slots
}

// enqueue hands a persisted task to its partition, transferring the
// caller's slot token to the queue entry. The send cannot block: the
// token bounds queue occupancy below capacity.
func (p *Pipeline) enqueue(part *partition, t task) error {
	p.mu.Lock()
	for _, id := range t.ids {
		p.pending[id] = &PendingRecord{ID: id, State: StateQueued}
	}
	p.outstanding++
	p.mu.Unlock()
	part.mu.Lock()
	if part.closed {
		part.mu.Unlock()
		p.mu.Lock()
		for _, id := range t.ids {
			delete(p.pending, id)
		}
		p.outstanding--
		wake := p.takeWaitersLocked()
		p.mu.Unlock()
		wakeAll(wake)
		p.release(part)
		return ErrStopped
	}
	part.tasks <- t
	part.mu.Unlock()
	return nil
}

// persistImage commits the image row (the ack point) and then its
// keywords. A non-zero returned ID means the row is WAL-durable even when
// err != nil — the keyword attach failed and the caller must surface the
// ID so the client can recover without re-uploading.
func (p *Pipeline) persistImage(rec Record) (uint64, error) {
	id, err := p.st.AddImage(rec.Image)
	if err != nil {
		return 0, err
	}
	p.mu.Lock()
	p.stats.Persisted++
	p.mu.Unlock()
	if len(rec.Keywords) > 0 {
		if err := p.st.AddKeywords(id, rec.Keywords); err != nil {
			return id, fmt.Errorf("image %d persisted, keywords failed: %w", id, err)
		}
	}
	return id, nil
}

// SubmitAsync admits, persists, and queues one image. It returns once the
// row is WAL-durable; extraction and indexing follow on the partition
// worker. ErrBusy means nothing was persisted. A non-zero ID alongside an
// error means the row is durable but keywords or queueing failed.
func (p *Pipeline) SubmitAsync(ctx context.Context, rec Record) (uint64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	part := p.partitionFor(rec.Image.WorkerID)
	if err := p.admit(part); err != nil {
		return 0, err
	}
	id, err := p.persistImage(rec)
	if id == 0 {
		p.release(part)
		return 0, err
	}
	if qerr := p.enqueue(part, task{ids: []uint64{id}}); qerr != nil {
		return id, errors.Join(err, qerr)
	}
	return id, err
}

// SubmitSync is the compatibility path: persist and extract inline on the
// caller's goroutine, returning the kinds written. The admission queue is
// not involved; callers pay full extraction latency, exactly as the
// pre-pipeline upload handlers did.
func (p *Pipeline) SubmitSync(ctx context.Context, rec Record) (uint64, []string, error) {
	if err := ctx.Err(); err != nil {
		return 0, nil, err
	}
	id, err := p.persistImage(rec)
	if id == 0 {
		return 0, nil, err
	}
	kinds, xerr := p.extractRecord(ctx, id)
	return id, kinds, errors.Join(err, xerr)
}

// SubmitVideoAsync admits, persists, and queues a whole video. The video
// — frames, keywords, video row — commits as one WAL batch (one
// durability wait), then every frame's extraction queues as one entry on
// the source's partition, preserving frame order.
func (p *Pipeline) SubmitVideoAsync(ctx context.Context, v VideoRecord) (uint64, []uint64, error) {
	if err := ctx.Err(); err != nil {
		return 0, nil, err
	}
	part := p.partitionFor(v.WorkerID)
	if err := p.admit(part); err != nil {
		return 0, nil, err
	}
	videoID, frameIDs, err := p.st.AddVideo(v.Description, v.WorkerID, v.Frames)
	if err != nil {
		p.release(part)
		return 0, nil, err
	}
	p.mu.Lock()
	p.stats.Persisted += uint64(len(frameIDs))
	p.mu.Unlock()
	if qerr := p.enqueue(part, task{ids: frameIDs}); qerr != nil {
		return videoID, frameIDs, qerr
	}
	return videoID, frameIDs, nil
}

// SubmitVideoSync persists a video and extracts its frames inline. A
// frame whose extraction fails is reported in its FrameResult and left
// for the pending sweep — it is NOT an error for the video: the frames
// are durable, and failing the call would invite a duplicating retry.
// The returned error is non-nil only when persistence itself failed.
func (p *Pipeline) SubmitVideoSync(ctx context.Context, v VideoRecord) (uint64, []FrameResult, error) {
	if err := ctx.Err(); err != nil {
		return 0, nil, err
	}
	videoID, frameIDs, err := p.st.AddVideo(v.Description, v.WorkerID, v.Frames)
	if err != nil {
		return 0, nil, err
	}
	p.mu.Lock()
	p.stats.Persisted += uint64(len(frameIDs))
	p.mu.Unlock()
	results := make([]FrameResult, 0, len(frameIDs))
	for _, id := range frameIDs {
		fr := FrameResult{ID: id}
		kinds, xerr := p.extractRecord(ctx, id)
		fr.Kinds = kinds
		if xerr != nil {
			fr.Err = xerr.Error()
		}
		results = append(results, fr)
	}
	return videoID, results, nil
}

// extractRecord extracts missing kinds for one row and maintains the
// tracking map and stats. Used by both the sync paths and the workers.
func (p *Pipeline) extractRecord(ctx context.Context, id uint64) ([]string, error) {
	kinds, err := p.svc.ExtractMissing(ctx, id)
	p.mu.Lock()
	if err != nil {
		p.stats.Failed++
		rec := p.pending[id]
		if rec == nil {
			rec = &PendingRecord{ID: id}
			p.pending[id] = rec
		}
		rec.State = StateFailed
		rec.Attempts++
		rec.Err = err.Error()
	} else {
		p.stats.Extracted++
		delete(p.pending, id)
		if p.cfg.RefreshEvery > 0 {
			p.sinceRefresh++
			if p.sinceRefresh >= p.cfg.RefreshEvery {
				p.sinceRefresh = 0
				select {
				case p.refreshCh <- struct{}{}:
				default: // a refresh is already requested
				}
			}
		}
	}
	p.mu.Unlock()
	return kinds, err
}

// process runs one queue entry on a partition worker.
func (p *Pipeline) process(ctx context.Context, t task) {
	for _, id := range t.ids {
		_, err := p.extractRecord(ctx, id)
		if t.swept && err == nil {
			p.mu.Lock()
			p.stats.Swept++
			p.mu.Unlock()
		}
	}
	p.mu.Lock()
	p.outstanding--
	var wake []chan struct{}
	if p.outstanding == 0 {
		wake = p.takeWaitersLocked()
	}
	p.mu.Unlock()
	wakeAll(wake)
}

// runRefresh fires the off-path refresh hook.
func (p *Pipeline) runRefresh(ctx context.Context) {
	fn := p.cfg.OnRefresh
	var err error
	if fn != nil {
		err = fn(ctx)
	}
	p.mu.Lock()
	p.stats.Refreshes++
	if err != nil {
		p.stats.RefreshErr = err.Error()
	}
	p.mu.Unlock()
}

//tvdp:requires mu
func (p *Pipeline) takeWaitersLocked() []chan struct{} {
	if p.outstanding != 0 {
		return nil
	}
	w := p.waiters
	p.waiters = nil
	return w
}

func wakeAll(ws []chan struct{}) {
	for _, w := range ws {
		close(w)
	}
}

// Drain blocks until every queued entry has been processed (successfully
// or not) or ctx is done. It does not stop admission; use Close for
// shutdown.
func (p *Pipeline) Drain(ctx context.Context) error {
	p.mu.Lock()
	if p.outstanding == 0 {
		p.mu.Unlock()
		return nil
	}
	ch := make(chan struct{})
	p.waiters = append(p.waiters, ch)
	p.mu.Unlock()
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Pending lists tracked records (persisted, not yet successfully
// extracted), ascending by ID.
func (p *Pipeline) Pending() []PendingRecord {
	p.mu.Lock()
	out := make([]PendingRecord, 0, len(p.pending))
	for _, r := range p.pending {
		out = append(out, *r)
	}
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// RecordStatus is Status's answer for one row.
type RecordStatus struct {
	ID uint64 `json:"id"`
	// State is "queued", "failed", "done", or "unknown" (no such row or
	// nothing tracked and no features yet).
	State    string   `json:"state"`
	Attempts int      `json:"attempts,omitempty"`
	Err      string   `json:"error,omitempty"`
	Kinds    []string `json:"feature_kinds,omitempty"`
}

// Status reports one row's ingest progress. Rows the pipeline no longer
// tracks are classified from the store: every registered kind present
// means done.
func (p *Pipeline) Status(id uint64) RecordStatus {
	p.mu.Lock()
	rec := p.pending[id]
	if rec != nil {
		out := RecordStatus{ID: id, State: string(rec.State), Attempts: rec.Attempts, Err: rec.Err}
		p.mu.Unlock()
		return out
	}
	p.mu.Unlock()
	have := p.st.FeatureKinds(id)
	if missingKinds(have, p.svc.ExtractorKinds()) == nil && len(have) > 0 {
		return RecordStatus{ID: id, State: "done", Kinds: have}
	}
	return RecordStatus{ID: id, State: "unknown", Kinds: have}
}

// Stats returns a snapshot of the counters.
func (p *Pipeline) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// missingKinds returns the members of want (sorted) absent from have
// (sorted).
func missingKinds(have, want []string) []string {
	var out []string
	i := 0
	for _, w := range want {
		for i < len(have) && have[i] < w {
			i++
		}
		if i < len(have) && have[i] == w {
			continue
		}
		out = append(out, w)
	}
	return out
}
