package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
)

// Segment file format (segment engine). A segment is one frozen memtable
// window, serialised sorted and immutable:
//
//	magic (8 bytes) | payload length (4 LE) | CRC32C of payload (4 LE) | payload
//
// The payload is a single gob-encoded segmentData. The whole file is
// written to a temp name through the walBackend hook (so the crash
// sweeps can tear it at any byte), fsynced, renamed into place, and the
// directory fsynced — a crash mid-write leaves only a *.tmp that the
// next open discards, and a bit flip anywhere in the payload fails the
// checksum instead of loading silently wrong rows. The manifest
// (manifest.go) uses the same framing with its own magic.

const (
	segBlobHeaderSize = 16
	// maxSegBlob bounds a claimed payload size; anything larger is
	// corruption, not an allocation request.
	maxSegBlob = 1 << 31
	// segSyncChunk bounds the dirty bytes behind any single fsync while a
	// blob is written: flush/compaction outputs run to many megabytes, and
	// one fsync over all of them forces a journal transaction big enough
	// to stall every concurrent WAL append behind it (the stall the
	// persistence figure measures). Syncing every chunk keeps each device
	// burst small so foreground commits interleave.
	segSyncChunk = 1 << 20
)

var segMagic = [8]byte{0xB7, 'T', 'V', 'S', 'E', 'G', 'v', '1'}

// segName returns segment file n's name. Numbers come from the
// manifest's NextSeg counter and are never reused, so a crashed flush's
// orphan output can never collide with a live segment.
func segName(n uint64) string { return fmt.Sprintf("seg-%06d.seg", n) }

// isSegName reports whether base is a segment filename (orphan sweep).
func isSegName(base string) bool {
	return strings.HasPrefix(base, "seg-") && strings.HasSuffix(base, ".seg")
}

// segmentData is the gob-serialised content of one segment: the sorted
// net effect of a memtable window. NextID is the ID-allocator high-water
// mark at freeze, which keeps IDs from being reused even after
// compaction drops the highest row. Tombstones list images deleted in
// the window whose older copies may live in earlier segments; they apply
// before the segment's own rows.
type segmentData struct {
	NextID          uint64
	Tombstones      []uint64
	Images          []*Image
	Features        []*Feature
	Classifications []*Classification
	Annotations     []*Annotation
	Keywords        []keywordOp
	Users           []*User
	APIKeys         []*APIKey
	Videos          []*Video
	Campaigns       []*CampaignRec
}

// rows counts the data rows in the segment (manifest observability).
func (seg *segmentData) rows() int {
	return len(seg.Images) + len(seg.Features) + len(seg.Classifications) +
		len(seg.Annotations) + len(seg.Keywords) + len(seg.Users) +
		len(seg.APIKeys) + len(seg.Videos) + len(seg.Campaigns) + len(seg.Tombstones)
}

// writeBlob atomically installs a checksummed single-payload file
// (segment or manifest): temp file through the walBackend hook, one
// header write, one payload write, fsync, rename, directory fsync.
func writeBlob(dir, name string, magic [8]byte, payload []byte) (int64, error) {
	if len(payload) > maxSegBlob {
		return 0, fmt.Errorf("store: %s payload is %d bytes, over the %d-byte limit", name, len(payload), maxSegBlob)
	}
	path := filepath.Join(dir, name)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, fmt.Errorf("store: creating %s: %w", name, err)
	}
	b := newWALBackend(f)
	fail := func(err error) (int64, error) {
		err = errors.Join(err, b.Close())
		os.Remove(tmp)
		return 0, fmt.Errorf("store: writing %s: %w", name, err)
	}
	hdr := make([]byte, segBlobHeaderSize)
	copy(hdr, magic[:])
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[12:], crc32.Checksum(payload, walCRCTable))
	if _, err := b.Write(hdr); err != nil {
		return fail(err)
	}
	for off := 0; off < len(payload); off += segSyncChunk {
		end := off + segSyncChunk
		if end > len(payload) {
			end = len(payload)
		}
		if _, err := b.Write(payload[off:end]); err != nil {
			return fail(err)
		}
		if end < len(payload) {
			if err := b.Sync(); err != nil {
				return fail(err)
			}
		}
	}
	if err := b.Sync(); err != nil {
		return fail(err)
	}
	if err := b.Close(); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("store: installing %s: %w", name, err)
	}
	if err := fsyncDir(dir); err != nil {
		return 0, err
	}
	return int64(segBlobHeaderSize + len(payload)), nil
}

// readBlob reads and verifies a checksummed single-payload file. Any
// mismatch — magic, length, checksum — is ErrWALCorrupt: an installed
// blob was fully durable before its rename, so damage is media
// corruption, never a tolerable torn tail.
func readBlob(dir, name string, magic [8]byte) ([]byte, error) {
	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		return nil, fmt.Errorf("store: reading %s: %w", name, err)
	}
	if len(data) < segBlobHeaderSize || !bytes.Equal(data[:8], magic[:]) {
		return nil, fmt.Errorf("%w: bad magic in %s", ErrWALCorrupt, name)
	}
	length := int(binary.LittleEndian.Uint32(data[8:]))
	sum := binary.LittleEndian.Uint32(data[12:])
	if length < 0 || length > maxSegBlob || segBlobHeaderSize+length != len(data) {
		return nil, fmt.Errorf("%w: %s claims %d payload bytes, file has %d", ErrWALCorrupt, name, length, len(data)-segBlobHeaderSize)
	}
	payload := data[segBlobHeaderSize:]
	if crc32.Checksum(payload, walCRCTable) != sum {
		return nil, fmt.Errorf("%w: checksum mismatch in %s", ErrWALCorrupt, name)
	}
	return payload, nil
}

// writeSegment serialises and atomically installs one segment, returning
// its on-disk size.
func writeSegment(dir, name string, seg *segmentData) (int64, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(seg); err != nil {
		return 0, fmt.Errorf("store: encoding segment %s: %w", name, err)
	}
	return writeBlob(dir, name, segMagic, buf.Bytes())
}

// readSegment loads and verifies one segment.
func readSegment(dir, name string) (*segmentData, error) {
	payload, err := readBlob(dir, name, segMagic)
	if err != nil {
		return nil, err
	}
	var seg segmentData
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&seg); err != nil {
		return nil, fmt.Errorf("%w: undecodable segment %s: %v", ErrWALCorrupt, name, err)
	}
	return &seg, nil
}
