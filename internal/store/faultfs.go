package store

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
)

// Fault-injection harness for crash-recovery tests. A faultFile sits
// between the walWriter and the real file (via the newWALBackend hook)
// and misbehaves once a configured byte offset — counted across all
// writes through this backend — is reached. The three modes model the
// three ways storage betrays a log writer:
//
//   - faultCut: the process dies before the crossing write hits the disk;
//     nothing at or past the offset is persisted and every later
//     operation fails, like writes after a kill.
//   - faultShortWrite: the kernel persists only a prefix of the crossing
//     write before the crash — the classic torn write.
//   - faultBitFlip: one bit at the offset is silently inverted and the
//     writer keeps going, modelling media corruption that only a
//     checksum can catch.

type faultMode int

const (
	faultCut faultMode = iota
	faultShortWrite
	faultBitFlip
)

var errFaultInjected = errors.New("store: fault injected")

// faultFile wraps a WAL backend and injects a single fault at offset.
type faultFile struct {
	f       walBackend
	mode    faultMode
	offset  int64
	written int64
	tripped bool
}

func (ff *faultFile) Write(p []byte) (int, error) {
	if ff.tripped && ff.mode != faultBitFlip {
		return 0, errFaultInjected
	}
	end := ff.written + int64(len(p))
	if ff.mode == faultBitFlip {
		if !ff.tripped && ff.written <= ff.offset && ff.offset < end {
			q := append([]byte(nil), p...)
			q[ff.offset-ff.written] ^= 0x40
			p = q
			ff.tripped = true
		}
		n, err := ff.f.Write(p)
		ff.written += int64(n)
		return n, err
	}
	if end <= ff.offset {
		n, err := ff.f.Write(p)
		ff.written += int64(n)
		return n, err
	}
	ff.tripped = true
	if ff.mode == faultCut || ff.offset <= ff.written {
		return 0, errFaultInjected
	}
	n, err := ff.f.Write(p[:ff.offset-ff.written])
	ff.written += int64(n)
	if err != nil {
		return n, err
	}
	return n, errFaultInjected
}

func (ff *faultFile) Sync() error {
	if ff.tripped && ff.mode != faultBitFlip {
		return errFaultInjected
	}
	return ff.f.Sync()
}

func (ff *faultFile) Close() error { return ff.f.Close() }

// installFault routes every subsequently opened WAL backend through a
// fresh faultFile and returns a func restoring the plain-file backend.
// Offsets count bytes written through that backend, not absolute file
// positions (they coincide for a log opened from scratch).
func installFault(mode faultMode, offset int64) (restore func()) {
	return installFaultFunc(mode, offset, func(string) bool { return true })
}

// installFaultMatch is installFault restricted to files whose base name
// has the given prefix — segment-engine crash sweeps use it to tear
// exactly one write site (the segment blob, the manifest, one WAL
// generation) while every other file behaves. The blob writers create
// "<name>.tmp" files, so the prefix matches both the temp file and its
// final name.
func installFaultMatch(mode faultMode, offset int64, prefix string) (restore func()) {
	return installFaultFunc(mode, offset, func(base string) bool {
		return strings.HasPrefix(base, prefix)
	})
}

func installFaultFunc(mode faultMode, offset int64, match func(base string) bool) (restore func()) {
	prev := newWALBackend
	newWALBackend = func(f *os.File) walBackend {
		if !match(filepath.Base(f.Name())) {
			return f
		}
		return &faultFile{f: f, mode: mode, offset: offset}
	}
	return func() { newWALBackend = prev }
}
