// Package store is TVDP's embedded storage engine. It implements the
// paper's Fig. 2 ER schema — Images with FOV and scene-location spatial
// descriptors, visual features, content classifications and annotations,
// manual keywords, users and API keys — over an in-memory table set with
// write-ahead-log durability and snapshot compaction, plus the secondary
// indexes of §IV-C (R-tree, LSH, inverted, temporal) maintained on write.
package store

import (
	"errors"
	"time"

	"repro/internal/geo"
	"repro/internal/imagesim"
)

// ImageOrigin distinguishes original captures from augmented derivatives
// (paper §IV-B).
type ImageOrigin string

// Image origins.
const (
	OriginOriginal  ImageOrigin = "original"
	OriginAugmented ImageOrigin = "augmented"
)

// AnnotationSource distinguishes the two annotation paths of §IV-A.
type AnnotationSource string

// Annotation sources.
const (
	SourceHuman   AnnotationSource = "human"
	SourceMachine AnnotationSource = "machine"
)

// Image is the Images entity: one stored visual datum (a video is stored
// as a sequence of key-frame Images, each with its own FOV).
type Image struct {
	ID uint64
	// Origin marks originals vs augmented derivatives; augmented images
	// reference their source via ParentID.
	Origin   ImageOrigin
	ParentID uint64
	// FOV is the spatial descriptor (camera GPS, direction θ, angle α,
	// visible distance R).
	FOV geo.FOV
	// Scene is the derived scene-location MBR, precomputed at ingest.
	Scene geo.Rect
	// Pixels is the raster payload.
	Pixels *imagesim.Image
	// TimestampCapturing / TimestampUploading are the temporal
	// descriptors.
	TimestampCapturing time.Time
	TimestampUploading time.Time
	// WorkerID identifies the capturing device/worker; CampaignID links
	// crowdsourced captures to their campaign (0 = none).
	WorkerID   string
	CampaignID uint64
	// VideoID links video key frames to their Video entity (0 = a still
	// image); FrameIndex orders frames within the video.
	VideoID    uint64
	FrameIndex int
}

// Feature is the Image_Visual_Features entity: one feature vector of one
// family for one image.
type Feature struct {
	ImageID uint64
	Kind    string
	Vec     []float64
}

// Classification is the Image_Content_Classification entity: one named
// labelling scheme (e.g. "street_cleanliness") with its label vocabulary
// (Image_Content_Classification_Types).
type Classification struct {
	ID     uint64
	Name   string
	Labels []string
}

// Annotation is the Image_Content_Annotation entity: one label assigned
// to an image (or a region of it) under a classification scheme.
type Annotation struct {
	ImageID          uint64
	ClassificationID uint64
	// Label indexes into the classification's Labels.
	Label int
	// Confidence is 1 for human annotations, the model score otherwise.
	Confidence float64
	Source     AnnotationSource
	// Region optionally bounds the annotated part of the image in pixel
	// coordinates (nil = whole image).
	Region *PixelRect
	// AnnotatedAt records when the annotation was produced.
	AnnotatedAt time.Time
}

// PixelRect is an image-space bounding box.
type PixelRect struct {
	X0, Y0, X1, Y1 int
}

// User is a platform participant (government, researcher, community or
// academic partner).
type User struct {
	ID   uint64
	Name string
	Role string
}

// APIKey authorises REST access for a user.
type APIKey struct {
	Key    string
	UserID uint64
	Issued time.Time
}

// Errors returned by store operations.
var (
	ErrNotFound       = errors.New("store: not found")
	ErrClosed         = errors.New("store: closed")
	ErrInvalid        = errors.New("store: invalid argument")
	ErrDuplicate      = errors.New("store: duplicate")
	ErrUnknownLabel   = errors.New("store: label out of range for classification")
	ErrUnknownFeature = errors.New("store: no such feature kind for image")
	// ErrWALCorrupt flags mid-log damage recovery cannot repair: a frame
	// that fails its checksum (or is otherwise impossible) with intact
	// data behind it. A torn tail is NOT corruption — that is repaired on
	// open by truncating to the last whole frame.
	ErrWALCorrupt = errors.New("store: WAL corrupt")
)
