package store

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Durability layout: <dir>/snapshot.gob holds a full state image;
// <dir>/wal.gob holds operations applied since the snapshot. Open loads
// the snapshot (if any) and replays the WAL; Snapshot() compacts by
// writing a fresh snapshot and truncating the WAL.

const (
	snapshotFile = "snapshot.gob"
	walFile      = "wal.gob"
)

// walOp is one durable mutation. Exactly one payload field is set,
// selected by Kind.
type walOp struct {
	Kind           string
	Image          *Image
	Feature        *Feature
	Classification *Classification
	Annotation     *Annotation
	Keyword        *keywordOp
	User           *User
	APIKey         *APIKey
	Video          *Video
	Campaign       *CampaignRec
	DeleteImageID  uint64
}

type keywordOp struct {
	ImageID uint64
	Words   []string
}

// WAL op kinds.
const (
	opAddImage      = "add_image"
	opAddFeature    = "add_feature"
	opAddClass      = "add_classification"
	opAddAnnotation = "add_annotation"
	opAddKeywords   = "add_keywords"
	opAddUser       = "add_user"
	opAddAPIKey     = "add_api_key"
	opAddVideo      = "add_video"
	opAddCampaign   = "add_campaign"
	opDeleteImage   = "delete_image"
)

// walWriter appends ops to the log file.
type walWriter struct {
	f   *os.File
	enc *gob.Encoder
	// syncEvery forces an fsync per append (slower, stronger durability).
	syncEvery bool
}

func openWAL(dir string, syncEvery bool) (*walWriter, error) {
	f, err := os.OpenFile(filepath.Join(dir, walFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening WAL: %w", err)
	}
	return &walWriter{f: f, enc: gob.NewEncoder(f), syncEvery: syncEvery}, nil
}

func (w *walWriter) append(op walOp) error {
	if err := w.enc.Encode(op); err != nil {
		return fmt.Errorf("store: appending WAL op %s: %w", op.Kind, err)
	}
	if w.syncEvery {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("store: syncing WAL: %w", err)
		}
	}
	return nil
}

func (w *walWriter) close() error {
	if w == nil || w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// replayWAL streams ops from the log, invoking apply for each. A
// truncated trailing record (torn write) ends replay without error; any
// other decode failure is surfaced.
func replayWAL(dir string, apply func(walOp) error) error {
	f, err := os.Open(filepath.Join(dir, walFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: opening WAL for replay: %w", err)
	}
	defer f.Close()
	dec := gob.NewDecoder(f)
	for {
		var op walOp
		err := dec.Decode(&op)
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil
		}
		if err != nil {
			return fmt.Errorf("store: replaying WAL: %w", err)
		}
		if err := apply(op); err != nil {
			return fmt.Errorf("store: applying WAL op %s: %w", op.Kind, err)
		}
	}
}

// snapshotState is the gob-serialised full state.
type snapshotState struct {
	NextID          uint64
	Images          []*Image
	Features        []*Feature
	Classifications []*Classification
	Annotations     []*Annotation
	Keywords        []keywordOp
	Users           []*User
	APIKeys         []*APIKey
	Videos          []*Video
	Campaigns       []*CampaignRec
}

func writeSnapshot(dir string, st *snapshotState) error {
	tmp := filepath.Join(dir, snapshotFile+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: creating snapshot: %w", err)
	}
	if err := gob.NewEncoder(f).Encode(st); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: encoding snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: syncing snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, snapshotFile)); err != nil {
		return fmt.Errorf("store: installing snapshot: %w", err)
	}
	return nil
}

func readSnapshot(dir string) (*snapshotState, error) {
	f, err := os.Open(filepath.Join(dir, snapshotFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: opening snapshot: %w", err)
	}
	defer f.Close()
	var st snapshotState
	if err := gob.NewDecoder(f).Decode(&st); err != nil {
		return nil, fmt.Errorf("store: decoding snapshot: %w", err)
	}
	return &st, nil
}

func truncateWAL(dir string) error {
	err := os.Truncate(filepath.Join(dir, walFile), 0)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	return err
}
