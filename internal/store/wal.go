package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
)

// Durability layout (snapshot engine): <dir>/snapshot.gob holds a full
// state image tagged with a generation number; <dir>/wal.gob holds
// operations applied since the snapshot of the same generation. Open
// loads the snapshot (if any), replays a generation-matching WAL, and
// discards a stale one; Snapshot() compacts by installing a fresh
// snapshot and starting a new log. The segment engine (engine.go) reuses
// the same frame format over per-generation log files (wal-%06d.log).
//
// WAL v2 record format. The file starts with a 16-byte header:
//
//	magic (8 bytes) | generation (8 bytes, little-endian)
//
// followed by self-delimiting frames:
//
//	payload length (4 bytes LE) | CRC32C of payload (4 bytes LE) | payload
//
// Each payload is one walOp encoded by a *fresh* gob encoder, so every
// frame is a complete gob stream on its own. That independence is what
// makes append-after-reopen safe: the v1 format shared one encoder per
// file session, so each reopen restarted gob's type-descriptor numbering
// mid-stream and the next replay died with "duplicate type received".
//
// Recovery walks frames until the first one that is incomplete or fails
// its checksum at end-of-file — a torn write — and repairs the log by
// truncating it there. A checksum failure or impossible length with
// further data behind it is mid-log corruption and surfaces as
// ErrWALCorrupt instead of being silently dropped. Legacy v1 logs (a bare
// gob stream, recognisable because a gob stream can never begin with the
// magic's first byte) are replayed once and rewritten in place as v2.

const (
	snapshotFile = "snapshot.gob"
	walFile      = "wal.gob"

	walHeaderSize      = 16
	walFrameHeaderSize = 8
	// maxWALRecord bounds a frame's claimed payload size; anything larger
	// is treated as corruption rather than attempted as an allocation.
	maxWALRecord = 1 << 28
)

// walMagic identifies a v2 log. The first byte (0xB6) can never open a
// legacy v1 file: gob streams start with a uvarint byte count whose first
// byte is either <= 0x7F or >= 0xF8, so 0xB6 is unreachable.
var walMagic = [8]byte{0xB6, 'T', 'V', 'W', 'A', 'L', 'v', '2'}

var walCRCTable = crc32.MakeTable(crc32.Castagnoli)

// walOp is one durable mutation. Exactly one payload field is set,
// selected by Kind.
type walOp struct {
	Kind           string
	Image          *Image
	Feature        *Feature
	Classification *Classification
	Annotation     *Annotation
	Keyword        *keywordOp
	User           *User
	APIKey         *APIKey
	Video          *Video
	Campaign       *CampaignRec
	DeleteImageID  uint64
}

type keywordOp struct {
	ImageID uint64
	Words   []string
}

// WAL op kinds.
const (
	opAddImage      = "add_image"
	opAddFeature    = "add_feature"
	opAddClass      = "add_classification"
	opAddAnnotation = "add_annotation"
	opAddKeywords   = "add_keywords"
	opAddUser       = "add_user"
	opAddAPIKey     = "add_api_key"
	opAddVideo      = "add_video"
	opAddCampaign   = "add_campaign"
	opDeleteImage   = "delete_image"
)

// walBackend is the file surface the writer appends through. It exists so
// fault-injection tests can interpose a failing or corrupting wrapper
// (see faultfs.go) between the writer and the real file.
type walBackend interface {
	io.Writer
	Sync() error
	Close() error
}

// newWALBackend wraps every freshly opened WAL file; tests swap it to
// inject faults at chosen byte offsets.
var newWALBackend = func(f *os.File) walBackend { return f }

// walWriter appends CRC-framed ops to the log file.
type walWriter struct {
	b walBackend
	// sync is the durability mode; SyncImmediate forces an fsync per
	// append (slower, stronger durability).
	sync WALSyncMode
}

// walName returns the per-generation log filename the segment engine
// uses; the snapshot engine keeps the single fixed walFile name.
func walName(gen uint64) string { return fmt.Sprintf("wal-%06d.log", gen) }

// parseWALName extracts the generation from a per-generation log name
// ("wal-<gen>.log"). walName's %06d is only a *minimum* print width —
// generations past 999999 grow to seven digits and beyond — so the
// parse takes every digit rather than a fixed width (a width-limited
// Sscanf would read only the first six and break the chain check after
// ~1M flushes).
func parseWALName(base string) (uint64, bool) {
	digits, ok := strings.CutPrefix(base, "wal-")
	if !ok {
		return 0, false
	}
	digits, ok = strings.CutSuffix(digits, ".log")
	if !ok || digits == "" {
		return 0, false
	}
	gen, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 0, false
	}
	return gen, true
}

func walHeader(gen uint64) []byte {
	h := make([]byte, walHeaderSize)
	copy(h, walMagic[:])
	binary.LittleEndian.PutUint64(h[8:], gen)
	return h
}

// walPayloadEncoder amortises gob type descriptors across frames. Every
// frame payload must stay a self-contained gob stream (recovery decodes
// each frame with a fresh decoder), but a fresh encoder per frame spends
// most of its time re-serialising the walOp type graph. gob emits the
// full static type graph once, up front, on an encoder's first Encode of
// a type; this cache captures those descriptor bytes and prepends them to
// the bare value message a long-lived encoder produces per op — the same
// wire bytes a fresh encoder would emit, at a fraction of the CPU.
type walPayloadEncoder struct {
	mu     sync.Mutex
	enc    *gob.Encoder
	buf    bytes.Buffer
	prefix []byte
}

var walPayloads walPayloadEncoder

func (e *walPayloadEncoder) encode(op walOp) ([]byte, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.enc == nil {
		// Prime: the first Encode yields descriptors + value; encoding the
		// same op again yields the value message alone, so the descriptor
		// prefix falls out by length subtraction.
		e.buf.Reset()
		enc := gob.NewEncoder(&e.buf)
		if err := enc.Encode(op); err != nil {
			return nil, err
		}
		full := append([]byte(nil), e.buf.Bytes()...)
		e.buf.Reset()
		if err := enc.Encode(op); err != nil {
			return nil, err
		}
		e.prefix = full[:len(full)-e.buf.Len()]
		e.enc = enc
		return full, nil
	}
	e.buf.Reset()
	if err := e.enc.Encode(op); err != nil {
		// The shared encoder's sent-type state is unknown after a failed
		// encode; drop it so the next frame re-primes from scratch.
		e.enc = nil
		e.prefix = nil
		return nil, err
	}
	out := make([]byte, 0, len(e.prefix)+e.buf.Len())
	out = append(out, e.prefix...)
	out = append(out, e.buf.Bytes()...)
	return out, nil
}

// encodeFrame serialises one op as a self-contained frame: length, CRC32C,
// then a standalone gob payload (type descriptors via walPayloads).
func encodeFrame(op walOp) ([]byte, error) {
	payload, err := walPayloads.encode(op)
	if err != nil {
		return nil, err
	}
	if len(payload) > maxWALRecord {
		// Refuse to write what recovery would refuse to read.
		return nil, fmt.Errorf("op payload is %d bytes, over the %d-byte frame limit", len(payload), maxWALRecord)
	}
	frame := make([]byte, walFrameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, walCRCTable))
	copy(frame[walFrameHeaderSize:], payload)
	return frame, nil
}

// append writes one op as a single frame (one Write call, so a crash
// mid-append leaves at most one torn frame at the tail).
func (w *walWriter) append(op walOp) error {
	if w.b == nil {
		return fmt.Errorf("store: appending WAL op %s: log closed", op.Kind)
	}
	frame, err := encodeFrame(op)
	if err != nil {
		return fmt.Errorf("store: encoding WAL op %s: %w", op.Kind, err)
	}
	if _, err := w.b.Write(frame); err != nil {
		return fmt.Errorf("store: appending WAL op %s: %w", op.Kind, err)
	}
	if w.sync == SyncImmediate {
		if err := w.b.Sync(); err != nil {
			return fmt.Errorf("store: syncing WAL: %w", err)
		}
	}
	return nil
}

func (w *walWriter) close() error {
	if w == nil || w.b == nil {
		return nil
	}
	err := w.b.Sync()
	if cerr := w.b.Close(); err == nil {
		err = cerr
	}
	w.b = nil
	return err
}

// createWAL atomically installs a fresh generation-gen log named name
// containing ops (nil for an empty log) and returns a writer positioned
// for append. The temp-file + rename + directory-fsync sequence
// guarantees a crash leaves either the previous log or the complete new
// one, never a half-written header.
func createWAL(dir, name string, gen uint64, ops []walOp, sync WALSyncMode) (*walWriter, error) {
	path := filepath.Join(dir, name)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: creating WAL: %w", err)
	}
	b := newWALBackend(f)
	fail := func(err error) (*walWriter, error) {
		// A failed close can mean buffered bytes never hit the disk; it
		// belongs in the reported error alongside whatever failed first.
		err = errors.Join(err, b.Close())
		os.Remove(tmp)
		return nil, fmt.Errorf("store: creating WAL: %w", err)
	}
	if _, err := b.Write(walHeader(gen)); err != nil {
		return fail(err)
	}
	for _, op := range ops {
		frame, err := encodeFrame(op)
		if err != nil {
			return fail(err)
		}
		if _, err := b.Write(frame); err != nil {
			return fail(err)
		}
	}
	if err := b.Sync(); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fail(err)
	}
	if err := fsyncDir(dir); err != nil {
		return fail(err)
	}
	return &walWriter{b: b, sync: sync}, nil
}

// openWALAppend opens an existing, already-validated log for appending.
func openWALAppend(dir, name string, sync WALSyncMode) (*walWriter, error) {
	f, err := os.OpenFile(filepath.Join(dir, name), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening WAL: %w", err)
	}
	return &walWriter{b: newWALBackend(f), sync: sync}, nil
}

// recoverWAL replays the log through apply, repairing crash damage as it
// goes, and returns a writer ready for new appends. snapGen is the
// generation of the snapshot recovery started from (0 when there is
// none); a log from an older generation is a leftover of a crash between
// snapshot install and WAL reset, and is discarded instead of replayed —
// its ops are already inside the snapshot, and replaying them would
// double-apply. Legacy v1 logs are replayed and migrated to v2 in place.
func recoverWAL(dir string, snapGen uint64, sync WALSyncMode, apply func(walOp) error) (*walWriter, error) {
	path := filepath.Join(dir, walFile)
	// A crash can strand the temp file of an in-progress reset or
	// migration; it never became durable state, so drop it.
	os.Remove(path + ".tmp")

	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return createWAL(dir, walFile, snapGen, nil, sync)
	}
	if err != nil {
		return nil, fmt.Errorf("store: reading WAL: %w", err)
	}

	if len(data) > 0 && data[0] != walMagic[0] {
		// Legacy v1: one continuous gob stream.
		ops, err := decodeLegacyWAL(data)
		if err != nil {
			return nil, err
		}
		for _, op := range ops {
			if err := apply(op); err != nil {
				return nil, fmt.Errorf("store: applying WAL op %s: %w", op.Kind, err)
			}
		}
		return createWAL(dir, walFile, snapGen, ops, sync)
	}

	if len(data) < walHeaderSize {
		// Empty file, or a v2 header torn mid-write: nothing was durable
		// yet, so restart with a clean log.
		if err := os.Remove(path); err != nil {
			return nil, fmt.Errorf("store: resetting torn WAL header: %w", err)
		}
		if err := fsyncDir(dir); err != nil {
			return nil, err
		}
		return createWAL(dir, walFile, snapGen, nil, sync)
	}
	if !bytes.Equal(data[:8], walMagic[:]) {
		return nil, fmt.Errorf("%w: bad magic in WAL header", ErrWALCorrupt)
	}
	gen := binary.LittleEndian.Uint64(data[8:walHeaderSize])
	if gen < snapGen {
		// Stale log from before the current snapshot (crash landed between
		// snapshot rename and WAL reset). Everything in it is already in
		// the snapshot.
		if err := os.Remove(path); err != nil {
			return nil, fmt.Errorf("store: discarding stale WAL: %w", err)
		}
		if err := fsyncDir(dir); err != nil {
			return nil, err
		}
		return createWAL(dir, walFile, snapGen, nil, sync)
	}
	if gen > snapGen {
		return nil, fmt.Errorf("%w: WAL generation %d ahead of snapshot generation %d (snapshot missing?)", ErrWALCorrupt, gen, snapGen)
	}

	n, torn, err := walkWALFrames(data[walHeaderSize:], apply)
	if err != nil {
		return nil, err
	}
	if torn {
		// Repair on open: cut the torn tail so the log ends on a frame
		// boundary and stays appendable.
		if err := repairTornTail(path, int64(walHeaderSize+n)); err != nil {
			return nil, err
		}
	}
	return openWALAppend(dir, walFile, sync)
}

// walkWALFrames walks the frame region of a v2 log (everything after the
// 16-byte header), feeding each decoded op to apply. It returns the
// number of bytes consumed by complete, valid frames and whether the tail
// past that point is torn (incomplete, or a checksum failure confined to
// the final frame). Mid-log damage — an impossible length or a checksum
// mismatch with further data behind it — is ErrWALCorrupt, never silently
// skipped.
func walkWALFrames(data []byte, apply func(walOp) error) (consumed int, torn bool, err error) {
	off := 0
	for off < len(data) {
		if len(data)-off < walFrameHeaderSize {
			return off, true, nil
		}
		length := int(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if length == 0 || length > maxWALRecord {
			// A torn write is always a strict prefix of valid bytes, so a
			// fully-present-but-impossible length means corruption.
			return off, false, fmt.Errorf("%w: frame at offset %d claims %d-byte payload", ErrWALCorrupt, off, length)
		}
		end := off + walFrameHeaderSize + length
		if end > len(data) {
			return off, true, nil
		}
		payload := data[off+walFrameHeaderSize : end]
		if crc32.Checksum(payload, walCRCTable) != sum {
			if end == len(data) {
				// Damage confined to the final frame is indistinguishable
				// from a torn append; drop that frame and keep the prefix.
				return off, true, nil
			}
			return off, false, fmt.Errorf("%w: checksum mismatch in frame at offset %d", ErrWALCorrupt, off)
		}
		var op walOp
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&op); err != nil {
			return off, false, fmt.Errorf("%w: undecodable frame at offset %d: %v", ErrWALCorrupt, off, err)
		}
		if err := apply(op); err != nil {
			return off, false, fmt.Errorf("store: applying WAL op %s: %w", op.Kind, err)
		}
		off = end
	}
	return off, false, nil
}

func repairTornTail(path string, keep int64) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: repairing torn WAL tail: %w", err)
	}
	err = f.Truncate(keep)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("store: repairing torn WAL tail: %w", err)
	}
	return nil
}

// decodeLegacyWAL reads a v1 single-stream log, tolerating a torn tail
// the same way the v1 replayer did.
func decodeLegacyWAL(data []byte) ([]walOp, error) {
	dec := gob.NewDecoder(bytes.NewReader(data))
	var ops []walOp
	for {
		var op walOp
		err := dec.Decode(&op)
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return ops, nil
		}
		if err != nil {
			return nil, fmt.Errorf("%w: legacy WAL: %v", ErrWALCorrupt, err)
		}
		ops = append(ops, op)
	}
}

// fsyncDir makes a just-renamed or just-removed directory entry durable.
func fsyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: syncing directory: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("store: syncing directory: %w", err)
	}
	return nil
}

// snapshotState is the gob-serialised full state. Generation pairs the
// snapshot with the WAL that follows it; a legacy snapshot decodes with
// Generation 0, matching legacy WALs.
type snapshotState struct {
	Generation      uint64
	NextID          uint64
	Images          []*Image
	Features        []*Feature
	Classifications []*Classification
	Annotations     []*Annotation
	Keywords        []keywordOp
	Users           []*User
	APIKeys         []*APIKey
	Videos          []*Video
	Campaigns       []*CampaignRec
}

func writeSnapshot(dir string, st *snapshotState) error {
	tmp := filepath.Join(dir, snapshotFile+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: creating snapshot: %w", err)
	}
	if err := gob.NewEncoder(f).Encode(st); err != nil {
		err = errors.Join(err, f.Close())
		os.Remove(tmp)
		return fmt.Errorf("store: encoding snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		err = errors.Join(err, f.Close())
		os.Remove(tmp)
		return fmt.Errorf("store: syncing snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, snapshotFile)); err != nil {
		return fmt.Errorf("store: installing snapshot: %w", err)
	}
	return fsyncDir(dir)
}

func readSnapshot(dir string) (*snapshotState, error) {
	// An interrupted writeSnapshot can leave a temp file behind; it was
	// never installed, so it is dead weight.
	os.Remove(filepath.Join(dir, snapshotFile+".tmp"))
	f, err := os.Open(filepath.Join(dir, snapshotFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: opening snapshot: %w", err)
	}
	//tvdp:nolint errdiscard read-only fd: a close error after a successful decode cannot lose data
	defer f.Close()
	var st snapshotState
	if err := gob.NewDecoder(f).Decode(&st); err != nil {
		return nil, fmt.Errorf("store: decoding snapshot: %w", err)
	}
	return &st, nil
}
