package store

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/geo"
	"repro/internal/imagesim"
)

// TestTornWALTailIsTolerated simulates a crash mid-append: the WAL's last
// bytes are truncated and recovery must load the intact prefix without
// error.
func TestTornWALTailIsTolerated(t *testing.T) {
	dir := t.TempDir()
	s := snapStore(t, dir)
	var ids []uint64
	for i := 0; i < 20; i++ {
		id, err := s.AddImage(testImage(t, float64(i*17%360)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail off the WAL.
	walPath := filepath.Join(dir, walFile)
	info, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath, info.Size()-25); err != nil {
		t.Fatal(err)
	}
	r := snapStore(t, dir)
	defer r.Close()
	// At most the final record is lost; everything before must be intact.
	if n := r.NumImages(); n < 19 || n > 20 {
		t.Fatalf("recovered %d images from torn WAL", n)
	}
	if _, err := r.GetImage(ids[0]); err != nil {
		t.Fatalf("early image lost: %v", err)
	}
	// The store remains writable after torn-tail recovery.
	if _, err := r.AddImage(testImage(t, 200)); err != nil {
		t.Fatalf("write after torn recovery: %v", err)
	}
}

// TestCorruptSnapshotSurfacesError ensures a mangled snapshot does not
// silently produce an empty store.
func TestCorruptSnapshotSurfacesError(t *testing.T) {
	dir := t.TempDir()
	s := snapStore(t, dir)
	if _, err := s.AddImage(testImage(t, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := os.WriteFile(filepath.Join(dir, snapshotFile), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Dir = dir
	cfg.Engine = EngineSnapshot
	if _, err := Open(cfg); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}

// TestWALRoundTripProperty drives a random op sequence against a durable
// store, reopens it, and checks that observable state matches a
// memory-only twin that executed the same sequence.
func TestWALRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dir := t.TempDir()
		durable := diskStore(t, dir)
		mem := memStore(t)
		classID1, err := durable.CreateClassification("c", []string{"a", "b", "c"})
		if err != nil {
			t.Fatal(err)
		}
		classID2, err := mem.CreateClassification("c", []string{"a", "b", "c"})
		if err != nil {
			t.Fatal(err)
		}
		var dIDs, mIDs []uint64
		ops := 30 + rng.Intn(30)
		for i := 0; i < ops; i++ {
			switch op := rng.Intn(10); {
			case op < 5 || len(dIDs) == 0: // add image
				img := Image{
					FOV: geo.FOV{
						Camera:    geo.Destination(la, rng.Float64()*360, rng.Float64()*2000),
						Direction: rng.Float64() * 359,
						Angle:     30 + rng.Float64()*90,
						Radius:    50 + rng.Float64()*100,
					},
					Pixels:             imagesim.MustNew(8, 8),
					TimestampCapturing: time.Unix(1e9+int64(rng.Intn(1e6)), 0).UTC(),
				}
				d, err := durable.AddImage(img)
				if err != nil {
					t.Fatal(err)
				}
				m, err := mem.AddImage(img)
				if err != nil {
					t.Fatal(err)
				}
				dIDs = append(dIDs, d)
				mIDs = append(mIDs, m)
			case op < 7: // feature
				j := rng.Intn(len(dIDs))
				vec := []float64{rng.Float64(), rng.Float64()}
				if err := durable.PutFeature(dIDs[j], "f", vec); err != nil {
					t.Fatal(err)
				}
				if err := mem.PutFeature(mIDs[j], "f", vec); err != nil {
					t.Fatal(err)
				}
			case op < 8: // annotation
				j := rng.Intn(len(dIDs))
				label := rng.Intn(3)
				a := Annotation{Label: label, Confidence: 1, Source: SourceHuman}
				a.ImageID, a.ClassificationID = dIDs[j], classID1
				if err := durable.Annotate(a); err != nil {
					t.Fatal(err)
				}
				a.ImageID, a.ClassificationID = mIDs[j], classID2
				if err := mem.Annotate(a); err != nil {
					t.Fatal(err)
				}
			case op < 9: // keywords
				j := rng.Intn(len(dIDs))
				words := []string{"kw" + string(rune('a'+rng.Intn(5)))}
				if err := durable.AddKeywords(dIDs[j], words); err != nil {
					t.Fatal(err)
				}
				if err := mem.AddKeywords(mIDs[j], words); err != nil {
					t.Fatal(err)
				}
			default: // delete
				j := rng.Intn(len(dIDs))
				if err := durable.DeleteImage(dIDs[j]); err != nil {
					t.Fatal(err)
				}
				if err := mem.DeleteImage(mIDs[j]); err != nil {
					t.Fatal(err)
				}
				dIDs = append(dIDs[:j], dIDs[j+1:]...)
				mIDs = append(mIDs[:j], mIDs[j+1:]...)
			}
		}
		durable.Close()
		recovered := diskStore(t, dir)
		defer recovered.Close()
		// Observable state must match the memory twin.
		if recovered.NumImages() != mem.NumImages() {
			t.Logf("image counts differ: %d vs %d", recovered.NumImages(), mem.NumImages())
			return false
		}
		for i, id := range dIDs {
			rImg, err := recovered.GetImage(id)
			if err != nil {
				t.Logf("recovered image %d missing: %v", id, err)
				return false
			}
			mImg, err := mem.GetImage(mIDs[i])
			if err != nil {
				t.Fatal(err)
			}
			if rImg.FOV != mImg.FOV || !rImg.TimestampCapturing.Equal(mImg.TimestampCapturing) {
				t.Logf("image %d state differs", id)
				return false
			}
			if len(recovered.AnnotationsFor(id)) != len(mem.AnnotationsFor(mIDs[i])) {
				t.Logf("annotation counts differ for %d", id)
				return false
			}
			if len(recovered.KeywordsFor(id)) != len(mem.KeywordsFor(mIDs[i])) {
				t.Logf("keyword counts differ for %d", id)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotThenWALProperty mixes snapshots into the op stream.
func TestSnapshotThenWALProperty(t *testing.T) {
	dir := t.TempDir()
	s := diskStore(t, dir)
	want := 0
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 50; i++ {
		if _, err := s.AddImage(testImage(t, float64(rng.Intn(360)))); err != nil {
			t.Fatal(err)
		}
		want++
		if i%13 == 12 {
			if err := s.Snapshot(); err != nil {
				t.Fatal(err)
			}
		}
	}
	s.Close()
	r := diskStore(t, dir)
	defer r.Close()
	if r.NumImages() != want {
		t.Fatalf("recovered %d, want %d", r.NumImages(), want)
	}
}

func TestAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.Dir = dir
	cfg.Engine = EngineSnapshot
	cfg.SnapshotEvery = 10
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 35; i++ {
		if _, err := s.AddImage(testImage(t, float64(i*10%360))); err != nil {
			t.Fatal(err)
		}
	}
	// Three compactions should have fired: the WAL holds at most the
	// last few ops while the snapshot carries the rest.
	walInfo, err := os.Stat(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	snapInfo, err := os.Stat(filepath.Join(dir, snapshotFile))
	if err != nil {
		t.Fatalf("auto-compaction never wrote a snapshot: %v", err)
	}
	if walInfo.Size() >= snapInfo.Size() {
		t.Fatalf("wal (%d B) not smaller than snapshot (%d B)", walInfo.Size(), snapInfo.Size())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := snapStore(t, dir)
	defer r.Close()
	if r.NumImages() != 35 {
		t.Fatalf("recovered %d/35 after auto-compaction", r.NumImages())
	}
}
